// Benchmarks regenerating the paper's evaluation (one per table/figure) and
// the ablations called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Shapes to look for (EXPERIMENTS.md records a full run):
//   - Fig5/Fig6: Better ≤ Naive at every support level, both growing fast
//     as support falls; Tall slower than Short in absolute terms.
//   - Fig7: candidates per large itemset higher at fanout 9 than fanout 3.
//   - Backends: Cumulate < Basic; Partition competitive.
package negmine_test

import (
	"fmt"
	"sync"
	"testing"

	"negmine"

	"negmine/internal/bench"
	"negmine/internal/count"
	"negmine/internal/gen"
	"negmine/internal/negative"
)

// benchScale divides the paper's 50,000 transactions for benchmark runs;
// the 8,000-item universe is kept, preserving relative supports.
const benchScale = 25

// benchMaxK caps stage-1 level depth so a single benchmark iteration stays
// in the hundreds of milliseconds.
const benchMaxK = 3

var (
	datasetOnce sync.Once
	shortDS     *bench.Dataset
	tallDS      *bench.Dataset
	datasetErr  error
)

func datasets(b *testing.B) (*bench.Dataset, *bench.Dataset) {
	b.Helper()
	datasetOnce.Do(func() {
		shortDS, datasetErr = bench.Short(benchScale, 1)
		if datasetErr != nil {
			return
		}
		tallDS, datasetErr = bench.Tall(benchScale, 1)
	})
	if datasetErr != nil {
		b.Fatal(datasetErr)
	}
	return shortDS, tallDS
}

func mineNegative(b *testing.B, ds *bench.Dataset, minSupPct float64, alg negative.Algorithm) *negative.Result {
	b.Helper()
	res, err := negative.Mine(ds.DB, ds.Tax, negative.Options{
		MinSupport: minSupPct / 100,
		MinRI:      0.5,
		Algorithm:  alg,
		Gen:        gen.Options{Algorithm: gen.Cumulate, MaxK: benchMaxK},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig5Short regenerates Figure 5: Naive vs Better on the "Short"
// dataset across minimum supports.
func BenchmarkFig5Short(b *testing.B) {
	short, _ := datasets(b)
	for _, alg := range []negative.Algorithm{negative.Naive, negative.Improved} {
		for _, pct := range []float64{2, 1.5, 1} {
			b.Run(fmt.Sprintf("%v/minsup=%.1f%%", alg, pct), func(b *testing.B) {
				var negSec float64
				for i := 0; i < b.N; i++ {
					res := mineNegative(b, short, pct, alg)
					negSec += res.Timing.Negative.Seconds()
				}
				b.ReportMetric(negSec/float64(b.N), "neg-sec/op")
			})
		}
	}
}

// BenchmarkFig6Tall regenerates Figure 6: the same sweep on "Tall".
func BenchmarkFig6Tall(b *testing.B) {
	_, tall := datasets(b)
	for _, alg := range []negative.Algorithm{negative.Naive, negative.Improved} {
		for _, pct := range []float64{2, 1.5, 1} {
			b.Run(fmt.Sprintf("%v/minsup=%.1f%%", alg, pct), func(b *testing.B) {
				var negSec float64
				for i := 0; i < b.N; i++ {
					res := mineNegative(b, tall, pct, alg)
					negSec += res.Timing.Negative.Seconds()
				}
				b.ReportMetric(negSec/float64(b.N), "neg-sec/op")
			})
		}
	}
}

// BenchmarkFig7Candidates regenerates Figure 7: negative candidates per
// large itemset as a function of taxonomy fanout. The candidates/large
// metric is the figure's y-axis.
func BenchmarkFig7Candidates(b *testing.B) {
	short, tall := datasets(b)
	for _, ds := range []*bench.Dataset{short, tall} {
		b.Run(fmt.Sprintf("%s/fanout=%v", ds.Name, ds.Params.Fanout), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res := mineNegative(b, ds, 1.5, negative.Improved)
				large := len(res.Large.Large())
				if large > 0 {
					ratio = float64(res.TotalCandidates()) / float64(large)
				}
			}
			b.ReportMetric(ratio, "cands/large")
		})
	}
}

// BenchmarkTable12Example runs the paper's worked example end to end
// (Tables 1 and 2 plus the Perrier =/=> Bryers rule).
func BenchmarkTable12Example(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunPaperExample()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Result.Rules) == 0 {
			b.Fatal("worked example produced no rules")
		}
	}
}

// BenchmarkBackends compares the stage-1 miners (ablation: Basic vs
// Cumulate vs EstMerge vs Partition) on identical input.
func BenchmarkBackends(b *testing.B) {
	short, _ := datasets(b)
	const minSup = 0.015
	run := func(name string, mine func() (int, error)) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mine(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("Basic", func() (int, error) {
		res, err := gen.Mine(short.DB, short.Tax, gen.Options{MinSupport: minSup, Algorithm: gen.Basic, MaxK: benchMaxK})
		if err != nil {
			return 0, err
		}
		return len(res.Large()), nil
	})
	run("Cumulate", func() (int, error) {
		res, err := gen.Mine(short.DB, short.Tax, gen.Options{MinSupport: minSup, Algorithm: gen.Cumulate, MaxK: benchMaxK})
		if err != nil {
			return 0, err
		}
		return len(res.Large()), nil
	})
	run("EstMerge", func() (int, error) {
		res, err := gen.Mine(short.DB, short.Tax, gen.Options{MinSupport: minSup, Algorithm: gen.EstMerge, MaxK: benchMaxK, SampleSize: 400})
		if err != nil {
			return 0, err
		}
		return len(res.Large()), nil
	})
	run("Partition", func() (int, error) {
		res, err := negmine.MinePartition(short.DB, negmine.PartitionOptions{
			MinSupport: minSup, NumPartitions: 4, MaxK: benchMaxK, Taxonomy: short.Tax,
		})
		if err != nil {
			return 0, err
		}
		return len(res.Large()), nil
	})
}

// BenchmarkCountingBackends compares the counting engines — Agrawal-Srikant
// hash tree vs vertical TID bitmap — on the Improved algorithm's negative
// stage, Short and Tall presets. cmd/experiments -countbench isolates the
// same comparison to just the counting pass and records it (with the
// speedup) in BENCH_counting.json.
func BenchmarkCountingBackends(b *testing.B) {
	short, tall := datasets(b)
	for _, ds := range []*bench.Dataset{short, tall} {
		for _, backend := range []count.Backend{count.BackendHashTree, count.BackendBitmap} {
			b.Run(fmt.Sprintf("%s/%s", ds.Name, backend), func(b *testing.B) {
				var negSec float64
				for i := 0; i < b.N; i++ {
					opt := negative.Options{
						MinSupport: 0.015,
						MinRI:      0.5,
						Algorithm:  negative.Improved,
						Gen:        gen.Options{Algorithm: gen.Cumulate, MaxK: benchMaxK},
					}
					opt.Count.Backend = backend
					opt.Gen.Count.Backend = backend
					res, err := negative.Mine(ds.DB, ds.Tax, opt)
					if err != nil {
						b.Fatal(err)
					}
					negSec += res.Timing.Negative.Seconds()
				}
				b.ReportMetric(negSec/float64(b.N), "neg-sec/op")
			})
		}
	}
}

// BenchmarkAblationTaxonomyCompression measures the improved algorithm with
// and without the "delete small 1-itemsets from the taxonomy" optimization
// (paper §2.2's first optimization).
func BenchmarkAblationTaxonomyCompression(b *testing.B) {
	short, _ := datasets(b)
	for _, disabled := range []bool{false, true} {
		name := "compressed"
		if disabled {
			name = "full-taxonomy"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := negative.Mine(short.DB, short.Tax, negative.Options{
					MinSupport:                 0.015,
					MinRI:                      0.5,
					Gen:                        gen.Options{Algorithm: gen.Cumulate, MaxK: benchMaxK},
					DisableTaxonomyCompression: disabled,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMemoryBound measures the §2.5 candidate memory bound:
// smaller bounds mean more counting passes.
func BenchmarkAblationMemoryBound(b *testing.B) {
	short, _ := datasets(b)
	for _, bound := range []int{0, 1000, 100} {
		b.Run(fmt.Sprintf("maxCands=%d", bound), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := negative.Mine(short.DB, short.Tax, negative.Options{
					MinSupport:    0.015,
					MinRI:         0.5,
					Gen:           gen.Options{Algorithm: gen.Cumulate, MaxK: benchMaxK},
					MaxCandidates: bound,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelCounting measures the sharded-scan counting speedup.
func BenchmarkParallelCounting(b *testing.B) {
	short, _ := datasets(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := gen.Options{MinSupport: 0.015, Algorithm: gen.Cumulate, MaxK: benchMaxK}
				opt.Count.Parallelism = workers
				if _, err := gen.Mine(short.DB, short.Tax, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
