package negmine_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"negmine"
)

const exampleTaxonomy = `
beverages soda
beverages juice
soda coke
soda pepsi
snacks chips
snacks pretzels
`

// 20 baskets: coke dominates chips baskets; pepsi sells well but almost
// never with chips — the negative-association setup of the paper's
// Example 1.
const exampleBaskets = `
coke chips
coke chips
coke chips
coke chips
coke chips
coke chips
coke chips
coke chips
coke
coke
pepsi
pepsi
pepsi
pepsi
pepsi chips
juice chips
juice chips
coke pretzels
coke pretzels
pretzels
`

func loadExample(t *testing.T) (*negmine.Taxonomy, *negmine.MemDB, *negmine.Dictionary) {
	t.Helper()
	tax, err := negmine.ParseTaxonomy(strings.NewReader(exampleTaxonomy))
	if err != nil {
		t.Fatal(err)
	}
	db, err := negmine.ReadBaskets(strings.NewReader(exampleBaskets), tax.Dictionary())
	if err != nil {
		t.Fatal(err)
	}
	return tax, db, tax.Dictionary()
}

func TestPublicEndToEnd(t *testing.T) {
	tax, db, dict := loadExample(t)

	// Classic frequent mining + positive rules.
	freq, err := negmine.MineFrequent(db, negmine.FrequentOptions{MinSupport: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(freq.Levels) < 2 {
		t.Fatalf("frequent levels = %d", len(freq.Levels))
	}
	rules, err := negmine.GenerateRules(freq, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	coke, _ := dict.Lookup("coke")
	chips, _ := dict.Lookup("chips")
	foundPositive := false
	for _, r := range rules {
		if r.Antecedent.Equal(negmine.NewItemset(chips)) && r.Consequent.Equal(negmine.NewItemset(coke)) {
			foundPositive = true
		}
	}
	if !foundPositive {
		t.Errorf("missing positive rule chips=>coke in %v", rules)
	}

	// Generalized mining sees categories.
	genRes, err := negmine.MineGeneralized(db, tax, negmine.GeneralizedOptions{
		MinSupport: 0.25, Algorithm: negmine.Cumulate,
	})
	if err != nil {
		t.Fatal(err)
	}
	soda, _ := dict.Lookup("soda")
	if !genRes.Table.Contains(negmine.NewItemset(soda)) {
		t.Error("generalized mining missed the soda category")
	}

	// Partition agrees with Apriori.
	part, err := negmine.MinePartition(db, negmine.PartitionOptions{MinSupport: 0.25, NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Large()) != len(freq.Large()) {
		t.Errorf("partition mined %d itemsets, apriori %d", len(part.Large()), len(freq.Large()))
	}

	// Negative mining: coke dominates soda-with-chips baskets, so pepsi
	// should be negatively associated with chips.
	negRes, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{
		MinSupport: 0.15,
		MinRI:      0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pepsi, _ := dict.Lookup("pepsi")
	foundNeg := false
	for _, n := range negRes.Negatives {
		if n.Set.Contains(pepsi) && n.Set.Contains(chips) {
			foundNeg = true
		}
	}
	if !foundNeg {
		var sets []string
		for _, n := range negRes.Negatives {
			sets = append(sets, n.Set.Format(tax.Name))
		}
		t.Errorf("expected {pepsi chips} negative itemset; got %v", sets)
	}
}

func TestPublicFileRoundTrip(t *testing.T) {
	_, db, _ := loadExample(t)
	path := filepath.Join(t.TempDir(), "db.nmtx")
	if err := negmine.SaveDB(path, db); err != nil {
		t.Fatal(err)
	}
	f, err := negmine.OpenDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Count() != db.Count() {
		t.Errorf("file count %d, want %d", f.Count(), db.Count())
	}
	mem, err := negmine.LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	st1, _ := negmine.CollectStats(db)
	st2, _ := negmine.CollectStats(mem)
	if st1 != st2 {
		t.Errorf("stats differ: %+v vs %+v", st1, st2)
	}
}

func TestPublicDataGeneration(t *testing.T) {
	p := negmine.ScaleDataParams(negmine.ShortDataParams(), 50)
	p.Seed = 3
	tax, db, err := negmine.GenerateData(p)
	if err != nil {
		t.Fatal(err)
	}
	if db.Count() != p.NumTransactions || tax.Leaves().Len() != p.NumItems {
		t.Errorf("generated %d txs, %d leaves", db.Count(), tax.Leaves().Len())
	}
	// The whole pipeline runs on generated data. A MaxK bound keeps this
	// smoke test fast — heavily scaled-down data is much denser than the
	// paper's full-size datasets.
	res, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{
		MinSupport: 0.1, MinRI: 0.3, Algorithm: negmine.Improved,
		Gen: negmine.GeneralizedOptions{MaxK: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Large == nil {
		t.Fatal("no stage-1 result")
	}
}

func TestEstimateExported(t *testing.T) {
	if negmine.EstimateNegativeCandidates(2, 3) != 19 {
		t.Error("estimate formula wrong through facade")
	}
}

func TestFrequentVariantsAgree(t *testing.T) {
	_, db, _ := loadExample(t)
	base, err := negmine.MineFrequent(db, negmine.FrequentOptions{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tid, err := negmine.MineFrequentTid(db, negmine.FrequentOptions{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := negmine.MineFrequentHybrid(db, negmine.HybridOptions{
		Options: negmine.FrequentOptions{MinSupport: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*negmine.MiningResult{"tid": tid, "hybrid": hyb} {
		a, b := base.Large(), res.Large()
		if len(a) != len(b) {
			t.Fatalf("%s mined %d itemsets, apriori %d", name, len(b), len(a))
		}
		for i := range a {
			if !a[i].Set.Equal(b[i].Set) || a[i].Count != b[i].Count {
				t.Fatalf("%s itemset %d differs", name, i)
			}
		}
	}
}

func TestPruneInterestingFacade(t *testing.T) {
	tax, db, _ := loadExample(t)
	res, err := negmine.MineGeneralized(db, tax, negmine.GeneralizedOptions{
		MinSupport: 0.2, Algorithm: negmine.Cumulate,
	})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := negmine.GenerateRules(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := negmine.PruneInteresting(rules, res, tax, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) > len(rules) {
		t.Errorf("pruning grew rules: %d > %d", len(kept), len(rules))
	}
	if _, err := negmine.PruneInteresting(rules, res, tax, 0.2); err == nil {
		t.Error("R < 1 accepted")
	}
}

func TestExportFacade(t *testing.T) {
	tax, db, _ := loadExample(t)
	res, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{MinSupport: 0.15, MinRI: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := negmine.WriteNegativeJSON(&buf, res, 0.15, 0.3, tax.Name); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "negConfidence") {
		t.Error("JSON missing negConfidence")
	}
	buf.Reset()
	if err := negmine.WriteNegativeCSV(&buf, res, tax.Name); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "antecedent,") {
		t.Error("CSV header missing")
	}
	freq, _ := negmine.MineFrequent(db, negmine.FrequentOptions{MinSupport: 0.25})
	rules, _ := negmine.GenerateRules(freq, 0.6)
	buf.Reset()
	if err := negmine.WritePositiveJSON(&buf, rules, tax.Name); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "confidence") {
		t.Error("positive JSON malformed")
	}
	buf.Reset()
	if err := negmine.WritePositiveCSV(&buf, rules, tax.Name); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "support,confidence") {
		t.Error("positive CSV malformed")
	}
}

func TestFacadeConstructors(t *testing.T) {
	if negmine.NewItemset(3, 1, 3).String() != "{1 3}" {
		t.Error("NewItemset wrong")
	}
	d := negmine.NewDictionary()
	if d.Intern("x") != 0 {
		t.Error("dictionary wrong")
	}
	b := negmine.NewTaxonomyBuilder()
	b.Link("p", "c")
	tax, err := b.Build()
	if err != nil || tax.Size() != 2 {
		t.Errorf("builder: %v, size %d", err, tax.Size())
	}
	db, err := negmine.NewMemDB([]negmine.Transaction{{TID: 1, Items: negmine.NewItemset(1)}})
	if err != nil || db.Count() != 1 {
		t.Errorf("NewMemDB: %v", err)
	}
	if _, err := negmine.ReadBasketsInts(strings.NewReader("1 2\n")); err != nil {
		t.Errorf("ReadBasketsInts: %v", err)
	}
	if _, err := negmine.ParseTaxonomy(strings.NewReader("a b c\n")); err == nil {
		t.Error("bad taxonomy accepted")
	}
	if negmine.TallDataParams().Fanout != 3 {
		t.Error("TallDataParams wrong")
	}
}
