// Crossmarketing: generate a synthetic supermarket with the paper's §3.1
// data generator, mine negative rules, and rank them as a marketing analyst
// would — strongest "customers who buy X avoid Y" signals first. This is
// the paper's motivating application (better shelf placement, no wasted
// cross-promotions between substitutes).
//
//	go run ./examples/crossmarketing
package main

import (
	"fmt"
	"log"
	"sort"

	"negmine"
)

func main() {
	// A mid-size store: the paper's "Short" proportions at 1/10 the
	// transaction volume (8,000 products, shallow category tree).
	params := negmine.ShortDataParams()
	params.NumTransactions = 5000
	params.Seed = 42

	fmt.Println("generating synthetic store data (nested-logit consumer model)...")
	tax, db, err := negmine.GenerateData(params)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := negmine.CollectStats(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d baskets, %.1f items/basket, %d products in a %d-level taxonomy\n\n",
		stats.Transactions, stats.AvgLen, tax.Leaves().Len(), tax.Height()+1)

	opt := negmine.NegativeOptions{
		MinSupport: 0.015,
		MinRI:      0.5,
		Algorithm:  negmine.Improved,
		Gen:        negmine.GeneralizedOptions{Algorithm: negmine.Cumulate},
	}
	opt.Count.Parallelism = 4
	opt.Gen.Count.Parallelism = 4

	res, err := negmine.MineNegative(db, tax, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1: %d generalized large itemsets (%v)\n",
		len(res.Large.Large()), res.Timing.Stage1.Round(1000000))
	fmt.Printf("stage 2+3: %d candidates → %d negative itemsets → %d rules (%v)\n\n",
		res.TotalCandidates(), len(res.Negatives), len(res.Rules),
		res.Timing.Negative.Round(1000000))

	// Rank rules by interest and show the top signals.
	rules := append([]negmine.NegativeRule(nil), res.Rules...)
	sort.Slice(rules, func(i, j int) bool { return rules[i].RI > rules[j].RI })
	n := len(rules)
	if n > 15 {
		n = 15
	}
	fmt.Printf("top %d negative associations (of %d):\n", n, len(rules))
	for _, r := range rules[:n] {
		fmt.Printf("  %-40s RI=%.2f (expected %.3f%%, saw %.3f%%)\n",
			r.Antecedent.Format(tax.Name)+" =/=> "+r.Consequent.Format(tax.Name),
			r.RI, r.Expected*100, r.Actual*100)
	}
	if len(rules) == 0 {
		fmt.Println("  (none — try lowering -MinRI or MinSupport)")
	}
}
