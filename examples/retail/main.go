// Retail: the paper's worked example (§2.1.1, Figure 2, Tables 1–2),
// rebuilt as a concrete transaction database. Frozen yogurt and bottled
// water sell together; within those categories, Bryers buyers
// systematically avoid Perrier — the strong negative association the paper
// derives by hand.
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"strings"

	"negmine"
)

const taxonomySrc = `
noncarbonated bottledjuices
noncarbonated bottledwater
bottledwater perrier
bottledwater evian
desserts frozenyogurt
desserts icecreams
frozenyogurt bryers
frozenyogurt healthychoice
`

func main() {
	tax, err := negmine.ParseTaxonomy(strings.NewReader(taxonomySrc))
	if err != nil {
		log.Fatal(err)
	}
	id := func(name string) negmine.Item {
		x, ok := tax.Dictionary().Lookup(name)
		if !ok {
			log.Fatalf("unknown item %q", name)
		}
		return x
	}

	// 1,000 baskets reproducing the paper's supports at 1:100 scale:
	// Bryers 200, HealthyChoice 100, Evian 120, Perrier 80; Bryers never
	// sells with Perrier.
	db := &negmine.MemDB{}
	add := func(n int, names ...string) {
		for i := 0; i < n; i++ {
			items := make([]negmine.Item, len(names))
			for j, nm := range names {
				items[j] = id(nm)
			}
			db.Append(negmine.Transaction{TID: int64(db.Count() + 1), Items: negmine.NewItemset(items...)})
		}
	}
	add(75, "bryers", "evian")
	add(125, "bryers")
	add(42, "healthychoice", "evian")
	add(25, "healthychoice", "perrier")
	add(33, "healthychoice")
	add(3, "evian")
	add(55, "perrier")
	add(642) // other baskets touching neither category

	fmt.Println("taxonomy:")
	fmt.Println(tax)

	res, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{
		MinSupport: 0.04, // the paper's 4,000 of 100,000
		MinRI:      0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table 1 — supports:")
	for _, name := range []string{"bryers", "healthychoice", "evian", "perrier",
		"frozenyogurt", "bottledwater"} {
		c, _ := res.Large.Table.Count(negmine.NewItemset(id(name)))
		fmt.Printf("  %-15s %4d\n", name, c)
	}
	fyBW := negmine.NewItemset(id("frozenyogurt"), id("bottledwater"))
	c, _ := res.Large.Table.Count(fyBW)
	fmt.Printf("  %-15s %4d\n", "yogurt+water", c)

	fmt.Println("\nTable 2 — negative itemsets (expected vs actual):")
	for _, n := range res.Negatives {
		fmt.Printf("  %-28s expected %5.1f  actual %3d\n",
			n.Set.Format(tax.Name), n.Expected*float64(n.N), n.Count)
	}

	fmt.Println("\nstrong negative rules (MinSup 4%, MinRI 0.5):")
	for _, r := range res.Rules {
		fmt.Printf("  %s\n", r.Format(tax.Name))
	}
	fmt.Println("\nThe paper's conclusion — customers who buy Perrier do not buy")
	fmt.Println("Bryers — appears above, derived automatically from the data")
	fmt.Println("plus the taxonomy.")
}
