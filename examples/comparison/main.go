// Comparison: run the paper's two negative-mining drivers (Naive vs the
// improved "Better") and all four frequent-itemset backends (Basic,
// Cumulate, EstMerge, Partition) on the same synthetic dataset, confirming
// they produce identical results while differing in passes and time.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"time"

	"negmine"
)

func main() {
	params := negmine.ShortDataParams()
	params.NumTransactions = 4000
	params.Seed = 7
	tax, db, err := negmine.GenerateData(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d transactions, %d items, taxonomy height %d\n\n",
		db.Count(), tax.Leaves().Len(), tax.Height())

	const minSup, minRI = 0.02, 0.5

	// 1. Stage-1 backends must agree exactly.
	fmt.Println("stage-1 backends (generalized large itemsets at 2% support):")
	type backend struct {
		name string
		run  func() (*negmine.MiningResult, error)
	}
	backends := []backend{
		{"Basic", func() (*negmine.MiningResult, error) {
			return negmine.MineGeneralized(db, tax, negmine.GeneralizedOptions{MinSupport: minSup, Algorithm: negmine.Basic})
		}},
		{"Cumulate", func() (*negmine.MiningResult, error) {
			return negmine.MineGeneralized(db, tax, negmine.GeneralizedOptions{MinSupport: minSup, Algorithm: negmine.Cumulate})
		}},
		{"EstMerge", func() (*negmine.MiningResult, error) {
			return negmine.MineGeneralized(db, tax, negmine.GeneralizedOptions{MinSupport: minSup, Algorithm: negmine.EstMerge, SampleSize: 500})
		}},
		{"Partition", func() (*negmine.MiningResult, error) {
			return negmine.MinePartition(db, negmine.PartitionOptions{MinSupport: minSup, NumPartitions: 4, Taxonomy: tax})
		}},
	}
	var counts []int
	for _, b := range backends {
		start := time.Now()
		res, err := b.run()
		if err != nil {
			log.Fatalf("%s: %v", b.name, err)
		}
		n := len(res.Large())
		counts = append(counts, n)
		fmt.Printf("  %-10s %5d large itemsets in %v\n", b.name, n, time.Since(start).Round(time.Millisecond))
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			log.Fatalf("backends disagree: %v", counts)
		}
	}
	fmt.Println("  all backends agree ✓")

	// 2. Naive vs Better negative drivers.
	fmt.Println("\nnegative drivers (MinRI 0.5):")
	for _, alg := range []negmine.NegativeAlgorithm{negmine.Naive, negmine.Improved} {
		res, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{
			MinSupport: minSup, MinRI: minRI, Algorithm: alg,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s stage1 %8v | negative stages %8v | %d negative itemsets, %d rules\n",
			alg, res.Timing.Stage1.Round(time.Millisecond),
			res.Timing.Negative.Round(time.Millisecond),
			len(res.Negatives), len(res.Rules))
	}
	fmt.Println("\nBoth drivers return identical rule sets; Better makes n+1 database")
	fmt.Println("passes where Naive makes ~2n (visible on disk-resident data).")
}
