// Quickstart: mine positive and negative association rules from a small
// hand-written grocery dataset using only the public negmine API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"negmine"
)

// The item taxonomy: one "parent child" edge per line.
const taxonomySrc = `
beverages soda
beverages juice
soda coke
soda pepsi
snacks chips
snacks pretzels
`

// One basket per line. Coke dominates the chips baskets; pepsi sells fine
// on its own but almost never with chips — the classic negative
// association.
const basketsSrc = `
coke chips
coke chips
coke chips
coke chips
coke chips
coke chips
coke chips
coke chips
coke
coke
pepsi
pepsi
pepsi
pepsi
pepsi chips
juice chips
juice chips
coke pretzels
coke pretzels
pretzels
`

func main() {
	tax, err := negmine.ParseTaxonomy(strings.NewReader(taxonomySrc))
	if err != nil {
		log.Fatal(err)
	}
	db, err := negmine.ReadBaskets(strings.NewReader(basketsSrc), tax.Dictionary())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d baskets over taxonomy:\n%s\n", db.Count(), tax)

	// 1. Classic frequent itemsets and positive rules.
	freq, err := negmine.MineFrequent(db, negmine.FrequentOptions{MinSupport: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	rules, err := negmine.GenerateRules(freq, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("positive rules (minsup 25%, minconf 60%):")
	for _, r := range rules {
		fmt.Printf("  %s\n", r.Format(tax.Name))
	}

	// 2. Negative rules: what do chips buyers avoid?
	res, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{
		MinSupport: 0.15, // antecedent, consequent and large itemsets all need 15% support
		MinRI:      0.3,  // rule interest: how far below expectation the pair must fall
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnegative itemsets (actual support far below expected):")
	for _, n := range res.Negatives {
		fmt.Printf("  %s  expected %.2f, actual %.2f\n", n.Set.Format(tax.Name), n.Expected, n.Actual())
	}
	fmt.Println("\nnegative rules:")
	for _, r := range res.Rules {
		fmt.Printf("  %s\n", r.Format(tax.Name))
	}
}
