// Substitutes: the paper's §4.1 future work, implemented — inject domain
// knowledge beyond the taxonomy by declaring groups of substitutable
// products. A store brand and a national brand live in different taxonomy
// subtrees, so taxonomy-driven candidate generation alone never compares
// them; a substitute group makes them sibling-like and surfaces the
// negative rule. Results are also exported as JSON.
//
//	go run ./examples/substitutes
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"negmine"
)

const taxonomySrc = `
nationalbrands nbbeverages
nbbeverages coke
nbbeverages springwater
storebrands sbbeverages
sbbeverages storecola
sbbeverages storewater
snacks chips
snacks salsa
`

func main() {
	tax, err := negmine.ParseTaxonomy(strings.NewReader(taxonomySrc))
	if err != nil {
		log.Fatal(err)
	}
	id := func(n string) negmine.Item {
		x, ok := tax.Dictionary().Lookup(n)
		if !ok {
			log.Fatalf("unknown item %q", n)
		}
		return x
	}

	// Coke moves with chips; the store cola sells plenty, but its buyers
	// skip the chips aisle.
	db := &negmine.MemDB{}
	add := func(n int, names ...string) {
		for i := 0; i < n; i++ {
			items := make([]negmine.Item, len(names))
			for j, nm := range names {
				items[j] = id(nm)
			}
			db.Append(negmine.Transaction{TID: int64(db.Count() + 1), Items: negmine.NewItemset(items...)})
		}
	}
	add(40, "coke", "chips")
	add(10, "coke")
	add(30, "storecola")
	add(15, "springwater")
	add(5, "salsa")

	base := negmine.NegativeOptions{MinSupport: 0.1, MinRI: 0.4}

	// Taxonomy only: coke and storecola are unrelated in the hierarchy.
	res, err := negmine.MineNegative(db, tax, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("taxonomy only:")
	printRules(res, tax)

	// With substitute knowledge: the analyst knows shoppers treat the two
	// colas as interchangeable.
	withSubs := base
	withSubs.Substitutes = []negmine.Itemset{
		negmine.NewItemset(id("coke"), id("storecola")),
	}
	res2, err := negmine.MineNegative(db, tax, withSubs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith substitute group {coke, storecola}:")
	printRules(res2, tax)

	fmt.Println("\nJSON export of the substitute-aware run:")
	// (The same writer backs `negmine -format json`.)
	if err := exportJSON(res2, tax); err != nil {
		log.Fatal(err)
	}
}

func printRules(res *negmine.NegativeResult, tax *negmine.Taxonomy) {
	if len(res.Rules) == 0 {
		fmt.Println("  (no negative rules)")
		return
	}
	for _, r := range res.Rules {
		fmt.Printf("  %s\n", r.Format(tax.Name))
	}
}

func exportJSON(res *negmine.NegativeResult, tax *negmine.Taxonomy) error {
	return negmine.WriteNegativeJSON(os.Stdout, res, 0.1, 0.4, tax.Name)
}
