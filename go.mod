module negmine

go 1.22
