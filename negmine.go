// Package negmine is a library for mining positive and — its reason for
// existing — strong negative association rules from transaction databases,
// reproducing "Mining for Strong Negative Associations in a Large Database
// of Customer Transactions" (Savasere, Omiecinski & Navathe, ICDE 1998).
//
// A negative association rule X =/=> Y states that customers who buy X are
// unlikely to buy Y. Naively, almost every itemset combination never
// co-occurs, so the paper constrains the search with an item taxonomy: only
// combinations whose expected support can be derived from discovered
// positive associations plus the taxonomy's uniformity assumption are
// considered, and only those whose actual support falls far below that
// expectation are reported.
//
// # Quick start
//
//	dict := negmine.NewDictionary()
//	db, _ := negmine.ReadBaskets(strings.NewReader(baskets), dict)
//	tax, _ := negmine.ParseTaxonomy(strings.NewReader(taxonomyEdges))
//	res, _ := negmine.MineNegative(db, tax, negmine.NegativeOptions{
//		MinSupport: 0.05,
//		MinRI:      0.5,
//	})
//	for _, r := range res.Rules {
//		fmt.Println(r.Format(tax.Name))
//	}
//
// The building blocks are exported too: classic Apriori (MineFrequent),
// taxonomy-aware mining with the Basic/Cumulate/EstMerge algorithms
// (MineGeneralized), the two-pass Partition miner (MinePartition), the
// paper's synthetic retail data generator (GenerateData), and a binary
// transaction file format (SaveDB/LoadDB).
package negmine

import (
	"io"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/datagen"
	"negmine/internal/gen"
	"negmine/internal/govern"
	"negmine/internal/item"
	"negmine/internal/negative"
	"negmine/internal/partition"
	"negmine/internal/report"
	"negmine/internal/rulestore"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// Core data types, aliased from the implementation packages so values flow
// freely between the public API and the internals.
type (
	// Item identifies a product or taxonomy category.
	Item = item.Item
	// Itemset is a sorted, duplicate-free set of items.
	Itemset = item.Itemset
	// Dictionary maps item names to ids and back.
	Dictionary = item.Dictionary
	// CountedSet pairs an itemset with its absolute support count.
	CountedSet = item.CountedSet
	// SupportTable maps itemsets to support counts.
	SupportTable = item.SupportTable

	// Transaction is one customer basket.
	Transaction = txdb.Transaction
	// DB is a scannable transaction database (in-memory or on-disk).
	DB = txdb.DB
	// MemDB is the in-memory database implementation.
	MemDB = txdb.MemDB
	// FileDB is the on-disk binary database implementation.
	FileDB = txdb.FileDB
	// DBStats summarizes a database.
	DBStats = txdb.Stats

	// Taxonomy is the immutable item hierarchy.
	Taxonomy = taxonomy.Taxonomy
	// TaxonomyBuilder constructs taxonomies incrementally.
	TaxonomyBuilder = taxonomy.Builder
	// TaxonomySpec parameterizes random taxonomy generation.
	TaxonomySpec = taxonomy.GenSpec

	// FrequentOptions configures classic Apriori mining.
	FrequentOptions = apriori.Options
	// MiningResult holds frequent (or generalized) itemsets by level.
	MiningResult = apriori.Result
	// Rule is a positive association rule.
	Rule = apriori.Rule

	// GeneralizedOptions configures taxonomy-aware mining.
	GeneralizedOptions = gen.Options
	// GenAlgorithm selects Basic, Cumulate or EstMerge.
	GenAlgorithm = gen.Algorithm

	// PartitionOptions configures the two-pass Partition miner.
	PartitionOptions = partition.Options

	// NegativeOptions configures negative rule mining.
	NegativeOptions = negative.Options
	// NegativeAlgorithm selects the Naive or Improved driver.
	NegativeAlgorithm = negative.Algorithm
	// NegativeResult is the outcome of negative mining.
	NegativeResult = negative.Result
	// NegativeItemset is a confirmed negative itemset.
	NegativeItemset = negative.Itemset
	// NegativeRule is a rule X =/=> Y.
	NegativeRule = negative.Rule
	// NegativeCandidate is a candidate negative itemset with its expected
	// support.
	NegativeCandidate = negative.Candidate

	// DataParams parameterizes the synthetic retail data generator.
	DataParams = datagen.Params

	// CountOptions tunes support counting (parallelism, hash tree width,
	// transaction transform, counting backend, memory budget).
	CountOptions = count.Options
	// CountBackend selects the support-counting engine.
	CountBackend = count.Backend
	// MemBudget is a process-wide memory ledger that bounds mining's
	// dominant allocations (bitmap matrices, hash trees, partition buffers).
	// Set CountOptions.Mem; an exhausted budget degrades counting to
	// cheaper engines and narrows partitioning before it ever fails.
	MemBudget = govern.Budget
)

// Support-counting backends (set CountOptions.Backend; the default
// AutoBackend picks the bitmap engine for memory-resident databases whose
// bitmap matrix fits the budget, the hash tree otherwise).
const (
	AutoBackend     = count.BackendAuto
	HashTreeBackend = count.BackendHashTree
	BitmapBackend   = count.BackendBitmap
)

// ParseCountBackend converts a backend flag value ("auto", "hashtree",
// "bitmap") into a CountBackend.
func ParseCountBackend(s string) (CountBackend, error) { return count.ParseBackend(s) }

// NewMemBudget returns a memory budget capped at total bytes (≤ 0 =
// unlimited, but reservations are still tracked).
func NewMemBudget(total int64) *MemBudget { return govern.NewBudget(total) }

// DefaultMemBudget sizes a budget to the process's detected memory limit
// (GOMEMLIMIT, else the cgroup limit) with headroom for the runtime, or
// unlimited when no limit is discoverable.
func DefaultMemBudget() *MemBudget { return govern.DefaultBudget() }

// ParseByteSize converts a human byte-size flag value ("512MiB", "2g",
// "1048576") into bytes.
func ParseByteSize(s string) (int64, error) { return govern.ParseBytes(s) }

// Generalized mining algorithms (stage 1 of negative mining).
const (
	Basic    = gen.Basic
	Cumulate = gen.Cumulate
	EstMerge = gen.EstMerge
)

// Negative mining drivers.
const (
	// Improved is the paper's "Better" algorithm: n+1 database passes.
	Improved = negative.Improved
	// Naive interleaves large-itemset and negative passes per level.
	Naive = negative.Naive
)

// NegativeFilter selects the negative-itemset acceptance test.
type NegativeFilter = negative.Filter

// Negative-itemset filters (the paper states the condition two ways).
const (
	// DeviationFilter is the §2 condition: expected − actual ≥ MinSup·MinRI.
	DeviationFilter = negative.DeviationFilter
	// AbsoluteFilter is Figure 3's literal condition: actual < MinSup·MinRI.
	AbsoluteFilter = negative.AbsoluteFilter
)

// NewItemset builds an itemset from arbitrary items (sorted, deduplicated).
func NewItemset(items ...Item) Itemset { return item.New(items...) }

// NewDictionary returns an empty item-name dictionary.
func NewDictionary() *Dictionary { return item.NewDictionary() }

// NewTaxonomyBuilder returns an empty taxonomy builder.
func NewTaxonomyBuilder() *TaxonomyBuilder { return taxonomy.NewBuilder() }

// ParseTaxonomy reads the "parent child" edge-per-line text format.
func ParseTaxonomy(r io.Reader) (*Taxonomy, error) { return taxonomy.Parse(r) }

// NewMemDB builds an in-memory database from transactions (validated).
func NewMemDB(txs []Transaction) (*MemDB, error) { return txdb.NewMemDB(txs) }

// FromItemsets builds an in-memory database assigning sequential TIDs.
func FromItemsets(sets ...[]Item) *MemDB { return txdb.FromItemsets(sets...) }

// ReadBaskets parses the one-basket-per-line named-item text format.
func ReadBaskets(r io.Reader, dict *Dictionary) (*MemDB, error) {
	return txdb.ReadBaskets(r, dict)
}

// ReadBasketsInts parses one-basket-per-line integer-id baskets.
func ReadBasketsInts(r io.Reader) (*MemDB, error) { return txdb.ReadBasketsInts(r) }

// SaveDB writes db to path in the library's binary format.
func SaveDB(path string, db DB) error { return txdb.WriteFile(path, db) }

// OpenDB opens a binary transaction file for streaming scans (the file is
// not loaded into memory; every mining pass streams it).
func OpenDB(path string) (*FileDB, error) { return txdb.OpenFile(path) }

// LoadDB reads a binary transaction file fully into memory.
func LoadDB(path string) (*MemDB, error) { return txdb.Load(path) }

// CollectStats summarizes db in one scan.
func CollectStats(db DB) (DBStats, error) { return txdb.Collect(db) }

// MineFrequent runs classic Apriori (no taxonomy).
func MineFrequent(db DB, opt FrequentOptions) (*MiningResult, error) {
	return apriori.Mine(db, opt)
}

// MineFrequentTid runs the AprioriTid variant: after pass 1 the raw data is
// never rescanned; later levels derive containment from candidate-id lists.
func MineFrequentTid(db DB, opt FrequentOptions) (*MiningResult, error) {
	return apriori.MineTid(db, opt)
}

// HybridOptions configures MineFrequentHybrid.
type HybridOptions = apriori.HybridOptions

// MineFrequentHybrid runs AprioriHybrid: hash-tree passes until the id-list
// representation fits the switch budget, then AprioriTid for the rest.
func MineFrequentHybrid(db DB, opt HybridOptions) (*MiningResult, error) {
	return apriori.MineHybrid(db, opt)
}

// PruneInteresting keeps only the R-interesting generalized rules — those
// not already predicted (within factor r) by a close ancestor rule under
// the taxonomy's uniformity assumption (Srikant–Agrawal VLDB '95 §3).
func PruneInteresting(rules []Rule, res *MiningResult, tax *Taxonomy, r float64) ([]Rule, error) {
	return gen.PruneInteresting(rules, res, tax, r)
}

// GenerateRules derives positive association rules from a mining result.
func GenerateRules(res *MiningResult, minConfidence float64) ([]Rule, error) {
	return apriori.GenRules(res, minConfidence)
}

// MineGeneralized finds taxonomy-aware large itemsets with the selected
// algorithm (Basic, Cumulate or EstMerge).
func MineGeneralized(db DB, tax *Taxonomy, opt GeneralizedOptions) (*MiningResult, error) {
	return gen.Mine(db, tax, opt)
}

// MinePartition runs the two-pass Partition algorithm (with generalized
// semantics when opt.Taxonomy is set).
func MinePartition(db DB, opt PartitionOptions) (*MiningResult, error) {
	return partition.Mine(db, opt)
}

// MineNegative runs the paper's full pipeline: generalized large itemsets,
// taxonomy-guided negative candidates, and negative rule generation.
func MineNegative(db DB, tax *Taxonomy, opt NegativeOptions) (*NegativeResult, error) {
	return negative.Mine(db, tax, opt)
}

// GenerateData synthesizes a retail dataset (taxonomy + transactions) with
// the paper's §3.1 generator. See ShortDataParams and TallDataParams for
// the paper's configurations.
func GenerateData(p DataParams) (*Taxonomy, *MemDB, error) { return datagen.Generate(p) }

// ShortDataParams returns the paper's "Short" (fanout 9) dataset parameters.
func ShortDataParams() DataParams { return datagen.Short() }

// TallDataParams returns the paper's "Tall" (fanout 3) dataset parameters.
func TallDataParams() DataParams { return datagen.Tall() }

// ScaleDataParams shrinks dataset parameters by an integer factor for
// laptop-scale runs, preserving proportions.
func ScaleDataParams(p DataParams, factor int) DataParams { return datagen.Scaled(p, factor) }

// EstimateNegativeCandidates evaluates the paper's §2.1.2 closed-form
// candidate-count estimate for itemset size k and taxonomy fanout f.
func EstimateNegativeCandidates(k int, f float64) float64 {
	return negative.EstimateCandidates(k, f)
}

// RuleStore indexes one run's negative rules by name for lookups and
// run-to-run comparison.
type RuleStore = rulestore.Store

// RuleDiff is the comparison of two runs' rule sets.
type RuleDiff = rulestore.Diff

// NewRuleStore indexes a mining result's rules by item names.
func NewRuleStore(res *NegativeResult, name func(Item) string) *RuleStore {
	return rulestore.New(res, name)
}

// LoadRuleStore reads a store from a report previously written with
// WriteNegativeJSON.
func LoadRuleStore(r io.Reader) (*RuleStore, error) { return rulestore.Load(r) }

// CompareRules diffs two rule stores (appeared / disappeared / RI drifted
// beyond riTolerance).
func CompareRules(old, new *RuleStore, riTolerance float64) *RuleDiff {
	return rulestore.Compare(old, new, riTolerance)
}

// NegativeReport is the exportable, name-resolved form of a negative mining
// run — the JSON document WriteNegativeJSON emits and cmd/negmined serves.
type NegativeReport = report.NegativeReport

// BuildNegativeReport converts a mining result into its exportable form
// without serializing it — the in-process path from MineNegative to a
// serving snapshot.
func BuildNegativeReport(res *NegativeResult, minSup, minRI float64, name func(Item) string) *NegativeReport {
	return report.BuildNegative(res, minSup, minRI, name)
}

// ReadNegativeReport parses a report previously written by
// WriteNegativeJSON.
func ReadNegativeReport(r io.Reader) (*NegativeReport, error) {
	return report.ReadNegativeJSON(r)
}

// RuleStoreFromReport indexes an already-parsed report (LoadRuleStore
// without the JSON round-trip).
func RuleStoreFromReport(rep *NegativeReport) *RuleStore {
	return rulestore.FromReport(rep)
}

// MineNegativeReport runs the full negative pipeline and returns the
// exportable report form in one call. It is the hot re-mining entrypoint
// cmd/negmined invokes on /reload: the daemon builds a fresh snapshot from
// the returned report and atomically swaps it in.
func MineNegativeReport(db DB, tax *Taxonomy, opt NegativeOptions) (*NegativeReport, error) {
	res, err := MineNegative(db, tax, opt)
	if err != nil {
		return nil, err
	}
	return BuildNegativeReport(res, opt.MinSupport, opt.MinRI, tax.Name), nil
}

// ExplainRule renders a step-by-step derivation of a negative rule — the
// source large itemset, the child/sibling swap, expected vs actual support
// and the RI computation — for auditability.
func ExplainRule(r NegativeRule, res *NegativeResult, name func(Item) string) string {
	return negative.Explain(r, res.Large.Table, name)
}

// WriteNegativeJSON exports a negative mining run (rules + negative
// itemsets + thresholds) as indented JSON.
func WriteNegativeJSON(w io.Writer, res *NegativeResult, minSup, minRI float64, name func(Item) string) error {
	return report.WriteNegativeJSON(w, res, minSup, minRI, name)
}

// WriteNegativeCSV exports the negative rules as CSV.
func WriteNegativeCSV(w io.Writer, res *NegativeResult, name func(Item) string) error {
	return report.WriteNegativeCSV(w, res, name)
}

// WritePositiveJSON exports positive rules as a JSON array.
func WritePositiveJSON(w io.Writer, rules []Rule, name func(Item) string) error {
	return report.WritePositiveJSON(w, rules, name)
}

// WritePositiveCSV exports positive rules as CSV.
func WritePositiveCSV(w io.Writer, rules []Rule, name func(Item) string) error {
	return report.WritePositiveCSV(w, rules, name)
}
