package incr

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"negmine/internal/datagen"
	"negmine/internal/item"
	"negmine/internal/negative"
	"negmine/internal/report"
	"negmine/internal/seglog"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// testData generates a small synthetic taxonomy + basket stream.
func testData(t testing.TB, n int, seed int64) (*taxonomy.Taxonomy, []item.Itemset) {
	t.Helper()
	p := datagen.Scaled(datagen.Short(), 50)
	p.NumTransactions = n
	p.Seed = seed
	tax, db, err := datagen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var baskets []item.Itemset
	if err := db.Scan(func(tx txdb.Transaction) error {
		baskets = append(baskets, tx.Items.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return tax, baskets
}

// miningOpts uses a support floor high enough that even the smallest
// segment a test seals keeps a meaningful local threshold: Partition's
// phase I degenerates when ceil(minSup·|segment|) approaches 1 (every
// subset of every basket is locally large), which is the documented reason
// segments must be sized sensibly, not confetti.
func miningOpts() negative.Options {
	return negative.Options{MinSupport: 0.15, MinRI: 0.3}
}

// batchMine runs the batch Improved pipeline over the same transactions the
// log holds.
func batchMine(t *testing.T, log *seglog.Log, tax *taxonomy.Taxonomy) *negative.Result {
	t.Helper()
	var txs []txdb.Transaction
	if err := log.Scan(func(tx txdb.Transaction) error {
		txs = append(txs, txdb.Transaction{TID: tx.TID, Items: tx.Items.Clone()})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	db, err := txdb.NewMemDB(txs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := negative.Mine(db, tax, miningOpts())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// reportBytes renders a result to the canonical JSON report.
func reportBytes(t *testing.T, res *negative.Result) []byte {
	t.Helper()
	opt := miningOpts()
	var buf bytes.Buffer
	name := func(x item.Item) string { return fmt.Sprintf("i%d", int(x)) }
	if err := report.WriteNegativeJSON(&buf, res, opt.MinSupport, opt.MinRI, name); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fillLog appends baskets in batches and seals every sealEvery batches.
func fillLog(t *testing.T, log *seglog.Log, baskets []item.Itemset, batch, sealEvery int) {
	t.Helper()
	if batch <= 0 {
		batch = 50
	}
	b := 0
	for lo := 0; lo < len(baskets); lo += batch {
		hi := lo + batch
		if hi > len(baskets) {
			hi = len(baskets)
		}
		if _, _, err := log.Append(baskets[lo:hi]); err != nil {
			t.Fatal(err)
		}
		b++
		if sealEvery > 0 && b%sealEvery == 0 {
			if err := log.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestRefreshMatchesBatchMine is the core equivalence test: an incremental
// refresh over a segmented log must produce a byte-identical rule report to
// a batch mine of the same transactions.
func TestRefreshMatchesBatchMine(t *testing.T) {
	tax, baskets := testData(t, 600, 1)
	log, err := seglog.Open(t.TempDir(), seglog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	fillLog(t, log, baskets, 60, 3)

	m := New(tax, miningOpts())
	got, err := m.Refresh(log)
	if err != nil {
		t.Fatal(err)
	}
	want := batchMine(t, log, tax)
	gb, wb := reportBytes(t, got), reportBytes(t, want)
	if !bytes.Equal(gb, wb) {
		t.Fatalf("incremental report differs from batch:\nincr:  %s\nbatch: %s", gb, wb)
	}
	if len(want.Rules) == 0 {
		t.Fatal("test data produced no negative rules — the equivalence check is vacuous")
	}
	if st := m.LastStats(); st.NewSegments == 0 || st.N != 600 {
		t.Fatalf("refresh stats: %+v", st)
	}
}

// TestRefreshPropertyRandomSplits replays random base+delta splits of the
// same stream: whatever the segment boundaries and refresh schedule, every
// refresh must match the batch report for the data so far.
func TestRefreshPropertyRandomSplits(t *testing.T) {
	tax, baskets := testData(t, 400, 2)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		log, err := seglog.Open(t.TempDir(), seglog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := New(tax, miningOpts())
		// Random split into 2–4 chunks with random batch/seal cadence.
		cuts := []int{0, len(baskets)}
		for c := rng.Intn(3); c > 0; c-- {
			cuts = append(cuts, 1+rng.Intn(len(baskets)-1))
		}
		sortInts(cuts)
		for i := 1; i < len(cuts); i++ {
			chunk := baskets[cuts[i-1]:cuts[i]]
			if len(chunk) == 0 {
				continue
			}
			fillLog(t, log, chunk, 60+rng.Intn(60), 2+rng.Intn(2))
			got, err := m.Refresh(log)
			if err != nil {
				t.Fatal(err)
			}
			want := batchMine(t, log, tax)
			gb, wb := reportBytes(t, got), reportBytes(t, want)
			if !bytes.Equal(gb, wb) {
				t.Fatalf("trial %d, chunk %d: incremental report differs from batch", trial, i)
			}
		}
		log.Close()
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestReplicaDeltaScansOnlyNewSegments is the acceptance check for the
// refresh cost model: when the delta replicates the base distribution (the
// steady state of a live feed, made exact here by appending a replica of a
// base block), the candidate sets are stable, so a refresh after a 10%
// delta must scan the new segment only — every old-segment count comes
// from the cache.
func TestReplicaDeltaScansOnlyNewSegments(t *testing.T) {
	tax, baskets := testData(t, 500, 3)
	block := baskets[:50]
	log, err := seglog.Open(t.TempDir(), seglog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	// Base: ten sealed segments, each one replica of the block, so relative
	// supports are exactly the block's and stay fixed as replicas arrive.
	for i := 0; i < 10; i++ {
		fillLog(t, log, block, len(block), 1)
	}

	m := New(tax, miningOpts())
	base, err := m.Refresh(log)
	if err != nil {
		t.Fatal(err)
	}

	// 10% delta: one more replica segment.
	fillLog(t, log, block, len(block), 1)
	got, err := m.Refresh(log)
	if err != nil {
		t.Fatal(err)
	}
	st := m.LastStats()
	if st.NewSegments != 1 {
		t.Fatalf("delta refresh mined %d new segments, want 1 (stats %+v)", st.NewSegments, st)
	}
	if st.OldSegmentScans != 0 {
		t.Fatalf("delta refresh scanned %d old segments, want 0 (stats %+v)", st.OldSegmentScans, st)
	}
	if st.CacheHits == 0 {
		t.Fatalf("delta refresh hit the cache %d times — caching is not engaged", st.CacheHits)
	}
	// And still exactly equal to the batch result.
	want := batchMine(t, log, tax)
	gb, wb := reportBytes(t, got), reportBytes(t, want)
	if !bytes.Equal(gb, wb) {
		t.Fatal("delta refresh report differs from batch")
	}
	if len(base.Rules) == 0 && len(got.Rules) == 0 {
		t.Fatal("no rules mined before or after the delta — the test is vacuous")
	}
}

// TestRefreshSurvivesCompaction compacts the log between refreshes; the
// merged segment is new to the cache and the result must stay exact.
func TestRefreshSurvivesCompaction(t *testing.T) {
	tax, baskets := testData(t, 400, 4)
	log, err := seglog.Open(t.TempDir(), seglog.Options{CompactUnder: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	fillLog(t, log, baskets, 100, 1)

	m := New(tax, miningOpts())
	if _, err := m.Refresh(log); err != nil {
		t.Fatal(err)
	}
	if did, err := log.Compact(); err != nil || !did {
		t.Fatalf("compact: did=%v err=%v", did, err)
	}
	got, err := m.Refresh(log)
	if err != nil {
		t.Fatal(err)
	}
	want := batchMine(t, log, tax)
	gb, wb := reportBytes(t, got), reportBytes(t, want)
	if !bytes.Equal(gb, wb) {
		t.Fatal("post-compaction refresh report differs from batch")
	}
}
