// Package incr refreshes negative-rule results incrementally over a
// segmented transaction log (internal/seglog), treating each sealed
// segment as one partition of the Partition algorithm the paper's authors
// built stage 1 on.
//
// A Miner caches two things per sealed segment: the segment's locally
// large itemsets (phase I) and the segment's exact support counts for
// every itemset it has ever been asked about. Both are immutable facts
// about an immutable file, so a refresh only scans segments it has not
// seen before — phase I mines the new segments, the global candidate
// union is re-counted from the caches, and cache misses (a candidate
// first seen now that an old segment never reported) trigger targeted
// counting scans of exactly the segments missing it. When the delta's
// item distribution matches the base — the steady state of a live feed —
// candidate sets are stable, there are no misses, and the refresh cost is
// proportional to the new data only.
//
// Stages 2 and 3 (negative candidate generation, counting, rule
// extraction) run through negative.MineWithCounts with a CountFunc backed
// by the same per-segment caches, so a refresh produces exactly the rule
// set a batch re-mine of the whole log would: both paths execute the same
// stage-2/3 code over equal stage-1 results and exact counts.
package incr

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/fault"
	"negmine/internal/item"
	"negmine/internal/negative"
	"negmine/internal/partition"
	"negmine/internal/seglog"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// PointMerge is the failpoint (see internal/fault) evaluated after the
// per-segment phase but before the global merge and stage-2/3 run.
const PointMerge = "incr.merge"

// RefreshStats describes what one Refresh actually did.
type RefreshStats struct {
	// Segments and N are the sealed segment and transaction totals the
	// refresh mined over.
	Segments int
	N        int
	// NewSegments is how many segments were phase-I mined this refresh
	// (segments not in the cache — new or freshly compacted).
	NewSegments int
	// CountScans is the number of per-segment counting scans this refresh
	// issued; OldSegmentScans is the subset that hit segments already
	// cached before the refresh began — zero when the candidate sets were
	// stable, the "only new segments scanned" property.
	CountScans      int
	OldSegmentScans int
	// CacheHits and CacheMisses count per-(segment, itemset) support
	// lookups during the counting phases.
	CacheHits   int
	CacheMisses int
	// Duration is the refresh wall time.
	Duration time.Duration
}

// segCache is everything the Miner remembers about one sealed segment.
type segCache struct {
	txns   int
	local  []item.Itemset   // locally large itemsets (phase I result)
	counts map[item.Key]int // exact support counts, by itemset key
}

// segKey identifies a sealed segment for caching purposes. The CRC rides
// along with the ID because IDs alone are not stable identities across every
// log history: a replication follower that adopts a primary's segments, or a
// log rebuilt in place, can present a recycled ID with different content.
// Keying on (ID, CRC) turns any such collision into a harmless cache miss
// instead of mining stale counts.
type segKey struct {
	id  int64
	crc uint32
}

func segKeyOf(e seglog.SegmentEntry) segKey { return segKey{id: e.ID, crc: e.CRC} }

// Miner incrementally mines a segment log. The zero value is not usable;
// see New. A Miner is safe for concurrent use, but refreshes serialize.
type Miner struct {
	tax *taxonomy.Taxonomy
	opt negative.Options

	mu    sync.Mutex
	segs  map[segKey]*segCache
	stats RefreshStats // last refresh
}

// New returns a Miner refreshing with the given taxonomy and mining
// options (the same Options a batch negative.Mine call would take; the
// Algorithm field is ignored — incremental refresh always follows the
// Improved schedule).
func New(tax *taxonomy.Taxonomy, opt negative.Options) *Miner {
	return &Miner{tax: tax, opt: opt, segs: map[segKey]*segCache{}}
}

// LastStats returns the statistics of the most recent Refresh.
func (m *Miner) LastStats() RefreshStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Refresh seals the log's active segment and mines the complete log,
// reusing every cached per-segment result. The returned Result is
// identical to negative.Mine over the same transactions.
func (m *Miner) Refresh(log *seglog.Log) (*negative.Result, error) {
	if err := log.Seal(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	rs := &refreshState{known: map[segKey]bool{}}
	st := &rs.st

	views := log.SealedViews()
	live := make(map[segKey]bool, len(views))
	for _, v := range views {
		live[segKeyOf(v.Entry)] = true
		st.N += v.Entry.Txns
	}
	st.Segments = len(views)
	// Drop caches of segments that no longer exist (compacted away, or
	// replaced under a recycled ID — the CRC in the key catches those).
	for k := range m.segs {
		if !live[k] {
			delete(m.segs, k)
		}
	}
	for k := range m.segs {
		rs.known[k] = true
	}

	// Phase I on segments we have not seen: buffer, extend, mine locally.
	minSup := m.opt.MinSupport
	for _, v := range views {
		if _, ok := m.segs[segKeyOf(v.Entry)]; ok {
			continue
		}
		st.NewSegments++
		part := make([]item.Itemset, 0, v.Entry.Txns)
		err := v.DB.Scan(func(tx txdb.Transaction) error {
			part = append(part, m.tax.Extend(tx.Items))
			return nil
		})
		if err != nil {
			return nil, err
		}
		sc := &segCache{txns: v.Entry.Txns, counts: map[item.Key]int{}}
		sc.local = partition.LocallyLarge(part, minSup, m.opt.Gen.MaxK, m.tax)
		// Phase I already knows these sets' exact local counts are at least
		// the local minimum, but not their values; count them now while the
		// segment is hot so later refreshes never return to it.
		if err := m.countInto(v, sc, sc.local, rs); err != nil {
			return nil, err
		}
		m.segs[segKeyOf(v.Entry)] = sc
	}

	if err := fault.Hit(PointMerge); err != nil {
		return nil, fmt.Errorf("incr: %w", err)
	}

	// Merge: the union of locally large itemsets is a superset of the
	// globally large ones; count the union exactly everywhere and keep the
	// sets meeting the global threshold, assembling the result exactly as
	// partition.Mine (and therefore gen.Mine) would.
	union := map[item.Key]item.Itemset{}
	for _, sc := range m.segs {
		for _, s := range sc.local {
			union[s.Key()] = s
		}
	}
	cands := make([]item.Itemset, 0, len(union))
	for _, s := range union {
		cands = append(cands, s)
	}
	counts, err := m.countEverywhere(views, cands, rs)
	if err != nil {
		return nil, err
	}
	large := &apriori.Result{
		Table:    item.NewSupportTable(st.N),
		N:        st.N,
		MinCount: apriori.MinCount(minSup, st.N),
	}
	bySize := map[int][]item.CountedSet{}
	maxK := 0
	for i, s := range cands {
		if counts[i] >= large.MinCount {
			bySize[s.Len()] = append(bySize[s.Len()], item.CountedSet{Set: s, Count: counts[i]})
			if s.Len() > maxK {
				maxK = s.Len()
			}
		}
	}
	for k := 1; k <= maxK; k++ {
		level := bySize[k]
		if len(level) == 0 {
			break // L_k empty ⇒ all longer levels empty too
		}
		sort.Slice(level, func(i, j int) bool { return level[i].Set.Compare(level[j].Set) < 0 })
		large.Levels = append(large.Levels, level)
		for _, cs := range level {
			large.Table.Put(cs.Set, cs.Count)
		}
	}

	// Stages 2 and 3 through the shared seam, counting from the caches.
	opt := m.opt
	opt.Algorithm = negative.Improved
	res, err := negative.MineWithCounts(large, m.tax, opt, func(groups [][]item.Itemset, _ []count.TransformInto) ([][]int, error) {
		out := make([][]int, len(groups))
		for gi, g := range groups {
			c, err := m.countEverywhere(views, g, rs)
			if err != nil {
				return nil, err
			}
			out[gi] = c
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	st.Duration = time.Since(start)
	m.stats = *st
	return res, nil
}

// refreshState carries one refresh's statistics plus the set of segment
// keys that were already cached when the refresh began — a counting scan
// against one of those is old-segment work the steady state avoids.
type refreshState struct {
	st    RefreshStats
	known map[segKey]bool
}

// countEverywhere returns, for each set, its exact support count over all
// sealed segments, filling per-segment cache misses with targeted counting
// scans.
func (m *Miner) countEverywhere(views []seglog.SegmentView, sets []item.Itemset, rs *refreshState) ([]int, error) {
	total := make([]int, len(sets))
	for _, v := range views {
		sc := m.segs[segKeyOf(v.Entry)]
		var missing []item.Itemset
		for _, s := range sets {
			if _, ok := sc.counts[s.Key()]; !ok {
				missing = append(missing, s)
			}
		}
		rs.st.CacheHits += len(sets) - len(missing)
		if len(missing) > 0 {
			if err := m.countInto(v, sc, missing, rs); err != nil {
				return nil, err
			}
		}
		for i, s := range sets {
			c, ok := sc.counts[s.Key()]
			if !ok {
				return nil, fmt.Errorf("incr: segment %d: count for %v missing after scan", v.Entry.ID, s)
			}
			total[i] += c
		}
	}
	return total, nil
}

// countInto counts sets exactly over one segment and caches the results.
// Counting is done under the full ancestor extension; for any itemset that
// is exactly the count a gen.ExtendTransform-restricted pass would produce
// (a set's own items are always inside the restriction's used set).
func (m *Miner) countInto(v seglog.SegmentView, sc *segCache, sets []item.Itemset, rs *refreshState) error {
	if len(sets) == 0 {
		return nil
	}
	rs.st.CountScans++
	rs.st.CacheMisses += len(sets)
	if rs.known[segKeyOf(v.Entry)] {
		rs.st.OldSegmentScans++
	}
	bySize := map[int][]item.Itemset{}
	maxK := 0
	for _, s := range sets {
		bySize[s.Len()] = append(bySize[s.Len()], s)
		if s.Len() > maxK {
			maxK = s.Len()
		}
	}
	var sizes []int
	for k := 1; k <= maxK; k++ {
		if len(bySize[k]) > 0 {
			sizes = append(sizes, k)
		}
	}
	groups := make([][]item.Itemset, len(sizes))
	for gi, k := range sizes {
		groups[gi] = bySize[k]
	}
	cnt := m.opt.Count
	cnt.TransformInto = m.tax.ExtendInto
	cnt.Tax = m.tax
	counts, err := count.Multi(v.DB, groups, cnt)
	if err != nil {
		return err
	}
	for gi := range groups {
		for j, s := range groups[gi] {
			sc.counts[s.Key()] = counts[gi][j]
		}
	}
	return nil
}
