package incr

import (
	"bytes"
	"errors"
	"testing"

	"negmine/internal/fault"
	"negmine/internal/seglog"
)

// TestChaosMergeFaultThenRetry arms the merge failpoint: the refresh fails
// after the per-segment phase, and a retry (the daemon's next trigger)
// completes with a result identical to an undisturbed batch mine — the
// caches populated before the failure are reused, never corrupted.
func TestChaosMergeFaultThenRetry(t *testing.T) {
	tax, baskets := testData(t, 300, 9)
	log, err := seglog.Open(t.TempDir(), seglog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	fillLog(t, log, baskets, 100, 1)

	m := New(tax, miningOpts())
	off := fault.Enable(PointMerge, fault.Error("killed"))
	_, err = m.Refresh(log)
	off()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("refresh error = %v, want injected fault", err)
	}

	got, err := m.Refresh(log)
	if err != nil {
		t.Fatal(err)
	}
	st := m.LastStats()
	if st.NewSegments != 0 {
		t.Fatalf("retry re-mined %d segments the failed refresh already cached", st.NewSegments)
	}
	want := batchMine(t, log, tax)
	if !bytes.Equal(reportBytes(t, got), reportBytes(t, want)) {
		t.Fatal("post-fault refresh differs from batch")
	}
}
