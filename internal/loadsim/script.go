package loadsim

import (
	"encoding/json"
	"fmt"
	"time"

	"negmine/internal/datagen"
	"negmine/internal/stats"
)

// wire mirrors of the serve-layer request bodies (kept local so loadsim
// can also drive a router or a fake daemon without importing serve).
type ingestBody struct {
	Baskets [][]string `json:"baskets"`
}

type scoreBody struct {
	Basket []string `json:"basket"`
	Limit  int      `json:"limit,omitempty"`
}

// Script expands cfg into the full deterministic op sequence. It is a pure
// function of (cfg, dict): the same inputs produce byte-identical ops —
// bodies included — regardless of how fast the run later executes them.
// Tracer items are reserved out of the background item pool first, so the
// stream can never accidentally bump a tracer's engineered support.
func Script(cfg Config, dict Dict) ([]Op, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tracers, err := ChooseTracers(dict, cfg.Tracers)
	if err != nil {
		return nil, err
	}
	reserved := reservedItems(tracers)
	items := make([]string, 0, len(dict.Items))
	for _, it := range dict.Items {
		if !reserved[it] {
			items = append(items, it)
		}
	}
	if len(items) < 2 {
		return nil, fmt.Errorf("loadsim: %d background items after reserving tracers, want ≥ 2", len(items))
	}

	zipf, err := datagen.NewZipf(len(items), cfg.Zipf)
	if err != nil {
		return nil, err
	}
	sched := datagen.DriftSchedule{N: len(items), Phases: cfg.DriftPhases}
	src := stats.NewSource(cfg.Seed)
	mix := stats.NewWeightedChoice([]float64{cfg.MixIngest, cfg.MixScore, cfg.MixRules})

	inBurst := func(t time.Duration) bool {
		return cfg.BurstLen > 0 && t >= cfg.BurstStart && t < cfg.BurstStart+cfg.BurstLen
	}
	// drawItem samples one item name under the current drift phase; during
	// the burst window draws concentrate on the hottest ranks (the flash
	// sale: everyone is buying the same few things).
	drawItem := func(phase int, burst bool) string {
		rank := zipf.Sample(src)
		if burst {
			hot := cfg.BurstHot
			if hot > len(items) {
				hot = len(items)
			}
			if src.Float64() < 0.7 {
				rank = src.Intn(hot)
			}
		}
		return items[sched.Item(phase, rank)]
	}
	drawBasket := func(phase int, burst bool) []string {
		target := src.PoissonAtLeast(cfg.BasketMean, 1)
		if target > len(items) {
			target = len(items)
		}
		basket := make([]string, 0, target)
		seen := map[string]bool{}
		for len(basket) < target {
			it := drawItem(phase, burst)
			if seen[it] {
				// Duplicate: fall back to a uniform redraw so a tiny pool
				// cannot stall the script.
				it = items[sched.Item(phase, src.Intn(len(items)))]
				if seen[it] {
					continue
				}
			}
			seen[it] = true
			basket = append(basket, it)
		}
		return basket
	}

	var ops []Op
	t := time.Duration(0)
	event := 0
	for t < cfg.Duration {
		burst := inBurst(t)
		phase := 0
		if cfg.DriftPhases > 1 && cfg.DriftEvery > 0 {
			phase = (event / cfg.DriftEvery) % cfg.DriftPhases
		}
		op := Op{At: t, Kind: mix.Sample(src)}
		switch op.Kind {
		case OpIngest:
			baskets := make([][]string, cfg.IngestBatch)
			for i := range baskets {
				baskets[i] = drawBasket(phase, burst)
			}
			op.Body, err = json.Marshal(ingestBody{Baskets: baskets})
			op.Txns = len(baskets)
		case OpScore:
			op.Body, err = json.Marshal(scoreBody{Basket: drawBasket(phase, burst), Limit: cfg.ScoreLimit})
		case OpRules:
			op.Item = drawItem(phase, burst)
		}
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		event++
		amp := 1.0
		if burst {
			amp = cfg.BurstAmp
		}
		t += time.Duration(float64(time.Second) / (cfg.RPS * amp))
	}
	return ops, nil
}

// ScriptTxns sums the transactions a script's ingest ops will append.
func ScriptTxns(ops []Op) int {
	n := 0
	for _, op := range ops {
		n += op.Txns
	}
	return n
}
