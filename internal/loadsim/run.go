package loadsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// workerStats is one worker's private tally — merged after the pool drains,
// so the hot path takes no locks.
type workerStats struct {
	sent    [opKinds]int64
	ok      [opKinds]int64
	partial [opKinds]int64
	shed    [opKinds]int64
	err4xx  [opKinds]int64
	err5xx  [opKinds]int64
	netErr  [opKinds]int64
	lat     [opKinds][]time.Duration
}

// Run executes cfg against cfg.Target: it scripts the op stream, paces it
// through a bounded queue into a worker pool, plants tracer itemsets in
// parallel, and polls /rules until every tracer's negative rule is visible
// (or PollTimeout expires). ctx cancels the run early; whatever was measured
// by then is still returned.
func Run(ctx context.Context, cfg Config, dict Dict) (*Result, error) {
	cfg = cfg.withDefaults()
	ops, err := Script(cfg, dict)
	if err != nil {
		return nil, err
	}
	tracers, err := ChooseTracers(dict, cfg.Tracers)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 15 * time.Second}

	// Tracer plant sizing needs the target's current transaction count so
	// planted pairs land above the mining support threshold after the run's
	// own ingest traffic is added.
	seedTxns := cfg.SeedTxns
	if len(tracers) > 0 && seedTxns == 0 {
		if seedTxns, err = fetchTxnCount(ctx, client, cfg.Target); err != nil {
			return nil, fmt.Errorf("loadsim: reading seed txn count: %w", err)
		}
	}
	plantPerTracer, err := plantSize(cfg, seedTxns, ScriptTxns(ops), len(tracers))
	if err != nil {
		return nil, err
	}

	// Tracer controller runs alongside the load: plant, then poll.
	tc := &tracerControl{
		cfg:     cfg,
		client:  client,
		tracers: tracers,
		perTr:   plantPerTracer,
	}
	var tracerWG sync.WaitGroup
	if len(tracers) > 0 {
		tracerWG.Add(1)
		go func() {
			defer tracerWG.Done()
			tc.run(ctx)
		}()
	}

	// Producer/worker pipeline: the producer paces ops by their virtual
	// time; the bounded queue backpressures it when workers fall behind, so
	// achieved throughput honestly reflects what the target sustained.
	opCh := make(chan Op, cfg.QueueDepth)
	stats := make([]workerStats, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(ws *workerStats) {
			defer wg.Done()
			for op := range opCh {
				execOp(client, cfg.Target, op, ws)
			}
		}(&stats[w])
	}
produce:
	for _, op := range ops {
		if d := time.Until(start.Add(op.At)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				break produce
			}
		}
		select {
		case opCh <- op:
		case <-ctx.Done():
			break produce
		}
	}
	close(opCh)
	wg.Wait()
	elapsed := time.Since(start)
	tracerWG.Wait()

	return assemble(cfg, ops, stats, elapsed, tc, seedTxns), nil
}

// execOp issues one scripted request and classifies the outcome.
func execOp(client *http.Client, target string, op Op, ws *workerStats) {
	var (
		resp *http.Response
		err  error
	)
	ws.sent[op.Kind]++
	t0 := time.Now()
	switch op.Kind {
	case OpIngest:
		resp, err = client.Post(target+"/ingest", "application/json", bytes.NewReader(op.Body))
	case OpScore:
		resp, err = client.Post(target+"/score", "application/json", bytes.NewReader(op.Body))
	case OpRules:
		resp, err = client.Get(target + "/rules?item=" + url.QueryEscape(op.Item))
	}
	d := time.Since(t0)
	if err != nil {
		ws.netErr[op.Kind]++
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ws.lat[op.Kind] = append(ws.lat[op.Kind], d)
	switch {
	case resp.StatusCode == http.StatusPartialContent:
		ws.partial[op.Kind]++
	case resp.StatusCode < 300:
		ws.ok[op.Kind]++
	case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
		// Admission control shedding under overload is the documented
		// contract, not a server failure — tallied separately from 5xx.
		ws.shed[op.Kind]++
	case resp.StatusCode >= 500:
		ws.err5xx[op.Kind]++
	case resp.StatusCode >= 400:
		ws.err4xx[op.Kind]++
	default:
		ws.ok[op.Kind]++
	}
}

// assemble merges per-worker stats and the tracer outcome into a Result.
func assemble(cfg Config, ops []Op, stats []workerStats, elapsed time.Duration, tc *tracerControl, seedTxns int) *Result {
	res := &Result{
		Target:          cfg.Target,
		Seed:            cfg.Seed,
		Ops:             len(ops),
		DurationSeconds: cfg.Duration.Seconds(),
		ElapsedSeconds:  elapsed.Seconds(),
	}
	var offered [opKinds]int64
	for _, op := range ops {
		offered[op.Kind]++
	}
	scripted := cfg.Duration.Seconds()
	if scripted > 0 {
		res.OfferedRPS = float64(len(ops)) / scripted
	}
	var totalSent int64
	for kind := 0; kind < opKinds; kind++ {
		ep := EndpointResult{Endpoint: OpName(kind), Offered: offered[kind]}
		var lat []time.Duration
		for i := range stats {
			ws := &stats[i]
			ep.Sent += ws.sent[kind]
			ep.OK += ws.ok[kind]
			ep.Partial += ws.partial[kind]
			ep.Shed += ws.shed[kind]
			ep.Err4xx += ws.err4xx[kind]
			ep.Err5xx += ws.err5xx[kind]
			ep.NetErr += ws.netErr[kind]
			lat = append(lat, ws.lat[kind]...)
		}
		if scripted > 0 {
			ep.OfferedRPS = float64(ep.Offered) / scripted
		}
		ep.MeanMs, ep.P50Ms, ep.P99Ms, ep.P999Ms = quantiles(lat)
		totalSent += ep.Sent
		res.Endpoints = append(res.Endpoints, ep)
	}
	if elapsed > 0 {
		res.AchievedRPS = float64(totalSent) / elapsed.Seconds()
	}
	if len(tc.tracers) > 0 {
		res.Freshness = tc.result()
	}
	return res
}

// plantSize solves for baskets-per-side per tracer: each side ({A,X} and
// {B}) must hold ≥ 2× the mining support threshold of the FINAL transaction
// count — which itself includes the plants — so the count is the fixed point
// of K = ceil(2·minsup·(seed + script + 2·K·tracers)).
func plantSize(cfg Config, seedTxns, scriptTxns, tracers int) (int, error) {
	if tracers == 0 {
		return 0, nil
	}
	margin := 2.0
	if margin*cfg.MinSupport*float64(2*tracers) >= 0.5 {
		return 0, fmt.Errorf("loadsim: %d tracers at minsup %v cannot all cross the threshold", tracers, cfg.MinSupport)
	}
	k := 1
	for i := 0; i < 64; i++ {
		final := seedTxns + scriptTxns + 2*k*tracers
		next := int(math.Ceil(margin * cfg.MinSupport * float64(final)))
		if next < 1 {
			next = 1
		}
		if next <= k {
			break
		}
		k = next
	}
	return k, nil
}

// tracerControl plants the tracer baskets and polls /rules until every
// engineered negative rule is served.
type tracerControl struct {
	cfg     Config
	client  *http.Client
	tracers []Tracer
	perTr   int // baskets per side per tracer

	mu          sync.Mutex
	plantErrs   int64
	plantTxns   int
	ackedAt     []time.Time // per tracer: last plant batch acknowledged
	visibleAt   []time.Time // per tracer: first poll serving the rule (zero = not yet)
	pollLatency []float64   // freshness samples, seconds
}

func (tc *tracerControl) run(ctx context.Context) {
	tc.ackedAt = make([]time.Time, len(tc.tracers))
	tc.visibleAt = make([]time.Time, len(tc.tracers))
	tc.plant(ctx)
	tc.poll(ctx)
}

// plant ingests, for each tracer, perTr baskets of {A,X} and perTr baskets
// of {B} — interleaved in IngestBatch-sized requests so the engineered
// supports arrive together. {A,B} is never ingested: actual support of the
// sibling-replacement candidate stays 0 while its expected support ≈ sup(B).
func (tc *tracerControl) plant(ctx context.Context) {
	for i, tr := range tc.tracers {
		var baskets [][]string
		for k := 0; k < tc.perTr; k++ {
			baskets = append(baskets, []string{tr.Antecedent, tr.Partner}, []string{tr.Consequent})
		}
		for off := 0; off < len(baskets); off += tc.cfg.IngestBatch {
			end := off + tc.cfg.IngestBatch
			if end > len(baskets) {
				end = len(baskets)
			}
			if ctx.Err() != nil {
				return
			}
			if tc.postBatch(ctx, baskets[off:end]) {
				tc.mu.Lock()
				tc.plantTxns += end - off
				tc.ackedAt[i] = time.Now()
				tc.mu.Unlock()
			}
		}
	}
}

// postBatch sends one /ingest request, retrying transient failures (sheds,
// 5xx, transport errors) with backoff. Returns whether the batch was acked.
func (tc *tracerControl) postBatch(ctx context.Context, baskets [][]string) bool {
	body, _ := json.Marshal(ingestBody{Baskets: baskets})
	backoff := 50 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		if ctx.Err() != nil {
			return false
		}
		resp, err := tc.client.Post(tc.cfg.Target+"/ingest", "application/json", bytes.NewReader(body))
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode < 300 {
				return true
			}
			if resp.StatusCode < 500 && resp.StatusCode != http.StatusServiceUnavailable {
				break // hard client error: retrying won't help
			}
		}
		tc.mu.Lock()
		tc.plantErrs++
		tc.mu.Unlock()
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return false
		}
		backoff *= 2
	}
	return false
}

// poll hits GET /rules?item=<antecedent> for each not-yet-visible tracer
// every PollEvery until all are visible or PollTimeout expires. The
// freshness sample is (first poll serving the rule) − (last plant ack).
func (tc *tracerControl) poll(ctx context.Context) {
	deadline := time.Now().Add(tc.cfg.PollTimeout)
	tick := time.NewTicker(tc.cfg.PollEvery)
	defer tick.Stop()
	for {
		pending := 0
		for i, tr := range tc.tracers {
			tc.mu.Lock()
			planted, seen := !tc.ackedAt[i].IsZero(), !tc.visibleAt[i].IsZero()
			tc.mu.Unlock()
			if !planted || seen {
				continue
			}
			pending++
			if tc.ruleVisible(ctx, tr) {
				now := time.Now()
				tc.mu.Lock()
				tc.visibleAt[i] = now
				tc.pollLatency = append(tc.pollLatency, now.Sub(tc.ackedAt[i]).Seconds())
				tc.mu.Unlock()
				pending--
			}
		}
		if pending == 0 || time.Now().After(deadline) || ctx.Err() != nil {
			return
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return
		}
	}
}

// ruleVisible asks the target for the tracer antecedent's rules and checks
// for one whose antecedent contains A and consequent contains B.
func (tc *tracerControl) ruleVisible(ctx context.Context, tr Tracer) bool {
	if ctx.Err() != nil {
		return false
	}
	resp, err := tc.client.Get(tc.cfg.Target + "/rules?item=" + url.QueryEscape(tr.Antecedent))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		_, _ = io.Copy(io.Discard, resp.Body)
		return false
	}
	var doc struct {
		Rules []struct {
			Antecedent []string `json:"antecedent"`
			Consequent []string `json:"consequent"`
		} `json:"rules"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&doc); err != nil {
		return false
	}
	for _, r := range doc.Rules {
		if contains(r.Antecedent, tr.Antecedent) && contains(r.Consequent, tr.Consequent) {
			return true
		}
	}
	return false
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// result snapshots the tracer outcome as a FreshnessResult.
func (tc *tracerControl) result() *FreshnessResult {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	fr := &FreshnessResult{
		Tracers:     len(tc.tracers),
		PlantTxns:   tc.plantTxns,
		PlantErrors: tc.plantErrs,
	}
	samples := append([]float64(nil), tc.pollLatency...)
	for i := range samples {
		for j := i; j > 0 && samples[j] < samples[j-1]; j-- {
			samples[j], samples[j-1] = samples[j-1], samples[j]
		}
	}
	fr.Visible = len(samples)
	fr.Missed = fr.Tracers - fr.Visible
	fr.SamplesSeconds = samples
	if len(samples) > 0 {
		fr.P50Seconds = secondsQuantile(samples, 0.50)
		fr.P99Seconds = secondsQuantile(samples, 0.99)
		fr.MaxSeconds = samples[len(samples)-1]
	}
	return fr
}

// fetchTxnCount reads the target's /metrics ingest block and returns the
// transactions currently in the log (sealed + active).
func fetchTxnCount(ctx context.Context, client *http.Client, target string) (int, error) {
	if ctx.Err() != nil {
		return 0, ctx.Err()
	}
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	var doc struct {
		Ingest *struct {
			SealedTxns int `json:"sealedTxns"`
			ActiveTxns int `json:"activeTxns"`
		} `json:"ingest"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return 0, err
	}
	if doc.Ingest == nil {
		return 0, fmt.Errorf("target has no ingest block in /metrics (not running with -ingest-dir?)")
	}
	return doc.Ingest.SealedTxns + doc.Ingest.ActiveTxns, nil
}
