package loadsim

import (
	"sort"
	"time"
)

// EndpointResult is one endpoint's outcome tally and latency distribution.
// Quantiles are exact (computed from every recorded sample, not bucketed).
type EndpointResult struct {
	Endpoint string `json:"endpoint"`
	// Offered counts scripted ops; Sent is how many were actually issued
	// (the run may be cancelled early), and the rest classify responses:
	// OK (2xx except 206), Partial (206 degraded reads through a router),
	// Shed (503 carrying Retry-After), Err4xx / Err5xx by status class,
	// NetErr transport failures.
	Offered    int64   `json:"offered"`
	Sent       int64   `json:"sent"`
	OK         int64   `json:"ok"`
	Partial    int64   `json:"partial206"`
	Shed       int64   `json:"shed"`
	Err4xx     int64   `json:"err4xx"`
	Err5xx     int64   `json:"err5xx"`
	NetErr     int64   `json:"netErrors"`
	OfferedRPS float64 `json:"offeredRps"`
	MeanMs     float64 `json:"meanMs"`
	P50Ms      float64 `json:"p50Ms"`
	P99Ms      float64 `json:"p99Ms"`
	P999Ms     float64 `json:"p999Ms"`
}

// FreshnessResult is the tracer-itemset freshness distribution: for each
// tracer, the delta between the acknowledged plant completion and the first
// /rules poll that served the engineered negative rule.
type FreshnessResult struct {
	Tracers     int     `json:"tracers"`
	Visible     int     `json:"visible"`
	Missed      int     `json:"missed"` // not visible before PollTimeout
	PlantTxns   int     `json:"plantTxns"`
	PlantErrors int64   `json:"plantErrors,omitempty"`
	P50Seconds  float64 `json:"p50Seconds"`
	P99Seconds  float64 `json:"p99Seconds"`
	MaxSeconds  float64 `json:"maxSeconds"`
	// SamplesSeconds lists every visible tracer's freshness, sorted.
	SamplesSeconds []float64 `json:"samplesSeconds,omitempty"`
}

// Result is one run's full outcome, shaped for the BENCH_serving.json
// workload section.
type Result struct {
	Target          string           `json:"target"`
	Seed            int64            `json:"seed"`
	Ops             int              `json:"ops"`
	DurationSeconds float64          `json:"durationSeconds"` // scripted length
	ElapsedSeconds  float64          `json:"elapsedSeconds"`  // load-phase wall time
	OfferedRPS      float64          `json:"offeredRps"`
	AchievedRPS     float64          `json:"achievedRps"`
	Endpoints       []EndpointResult `json:"endpoints"`
	Freshness       *FreshnessResult `json:"freshness,omitempty"`
}

// Endpoint returns the named endpoint's result (nil when absent).
func (r *Result) Endpoint(name string) *EndpointResult {
	for i := range r.Endpoints {
		if r.Endpoints[i].Endpoint == name {
			return &r.Endpoints[i]
		}
	}
	return nil
}

// Errors5xx sums hard server errors across endpoints (sheds and partial
// responses are part of the overload contract and counted separately).
func (r *Result) Errors5xx() int64 {
	var n int64
	for _, ep := range r.Endpoints {
		n += ep.Err5xx
	}
	return n
}

// quantiles returns exact (mean, p50, p99, p999) in milliseconds. lat is
// sorted in place.
func quantiles(lat []time.Duration) (mean, p50, p99, p999 float64) {
	if len(lat) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)))
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i].Seconds() * 1e3
	}
	return sum.Seconds() * 1e3 / float64(len(lat)), at(0.50), at(0.99), at(0.999)
}

// secondsQuantile returns the exact q-quantile of sorted samples.
func secondsQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
