package loadsim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// testDict is a hand-built dictionary: 20 background items plus two sibling
// groups tracer selection can draw from.
func testDict() Dict {
	d := Dict{SiblingGroups: [][]string{
		{"apparel/boots", "apparel/anorak", "apparel/cap"},
		{"snacks/chips", "snacks/dip", "snacks/salsa"},
	}}
	for i := 0; i < 20; i++ {
		d.Items = append(d.Items, fmt.Sprintf("bg/item%02d", i))
	}
	for _, g := range d.SiblingGroups {
		d.Items = append(d.Items, g...)
	}
	return d
}

func TestChooseTracersDeterministic(t *testing.T) {
	d := testDict()
	tr, err := ChooseTracers(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted-order triple from each group, independent of group-slice order.
	want := []Tracer{
		{Antecedent: "apparel/anorak", Partner: "apparel/boots", Consequent: "apparel/cap"},
		{Antecedent: "snacks/chips", Partner: "snacks/dip", Consequent: "snacks/salsa"},
	}
	if !reflect.DeepEqual(tr, want) {
		t.Fatalf("tracers = %+v, want %+v", tr, want)
	}
	if _, err := ChooseTracers(d, 3); err == nil {
		t.Fatal("ChooseTracers accepted more tracers than sibling groups")
	}
}

func TestScriptDeterministicAndTracerFree(t *testing.T) {
	cfg := Config{Seed: 7, Duration: 2 * time.Second, RPS: 200, Tracers: 2,
		DriftPhases: 4, DriftEvery: 50, Zipf: 1.1}
	a, err := Script(cfg, testDict())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Script(cfg, testDict())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (cfg, dict) produced different scripts")
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := Script(cfg2, testDict())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scripts")
	}

	// Background traffic must never mention a reserved tracer item.
	reserved := map[string]bool{}
	tr, _ := ChooseTracers(testDict(), cfg.Tracers)
	for _, x := range tr {
		reserved[x.Antecedent], reserved[x.Partner], reserved[x.Consequent] = true, true, true
	}
	for _, op := range a {
		if op.Item != "" && reserved[op.Item] {
			t.Fatalf("rules op queries reserved tracer item %q", op.Item)
		}
		for item := range reserved {
			if op.Body != nil && containsBytes(op.Body, item) {
				t.Fatalf("op body mentions reserved tracer item %q", item)
			}
		}
	}
}

func containsBytes(b []byte, s string) bool {
	return len(s) > 0 && len(b) >= len(s) && stringIndex(string(b), s) >= 0
}

func stringIndex(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}

// TestScriptBurstShaping verifies the flash-sale window carries ~BurstAmp×
// the baseline op density in virtual time.
func TestScriptBurstShaping(t *testing.T) {
	cfg := Config{Seed: 3, Duration: 10 * time.Second, RPS: 100,
		BurstStart: 3 * time.Second, BurstLen: 2 * time.Second, BurstAmp: 4}
	ops, err := Script(cfg, testDict())
	if err != nil {
		t.Fatal(err)
	}
	var inBurst, outside int
	for _, op := range ops {
		if op.At >= cfg.BurstStart && op.At < cfg.BurstStart+cfg.BurstLen {
			inBurst++
		} else {
			outside++
		}
	}
	wantBurst := cfg.BurstAmp * cfg.RPS * cfg.BurstLen.Seconds()        // 800
	wantOut := cfg.RPS * (cfg.Duration - cfg.BurstLen).Seconds()        // 800
	for _, c := range []struct {
		name string
		got  int
		want float64
	}{{"burst window", inBurst, wantBurst}, {"baseline", outside, wantOut}} {
		if ratio := float64(c.got) / c.want; ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s ops = %d, want ≈ %.0f (ratio %.3f)", c.name, c.got, c.want, ratio)
		}
	}
}

// fakeDaemon implements just enough of the negmined wire surface for the
// simulator: /ingest acks baskets, /score and /rules answer, and /rules
// reveals a tracer rule a fixed delay after the last ingest.
type fakeDaemon struct {
	mu          sync.Mutex
	log         []string // "METHOD path body" in arrival order
	txns        int
	lastIngest  time.Time
	revealAfter time.Duration // 0 = never reveal
	tracer      Tracer
}

func (f *fakeDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var in struct {
			Baskets [][]string `json:"baskets"`
		}
		if err := json.Unmarshal(body, &in); err != nil || len(in.Baskets) == 0 {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.log = append(f.log, "POST /ingest "+string(body))
		f.txns += len(in.Baskets)
		f.lastIngest = time.Now()
		f.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"accepted":%d}`, len(in.Baskets))
	})
	mux.HandleFunc("POST /score", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		f.mu.Lock()
		f.log = append(f.log, "POST /score "+string(body))
		f.mu.Unlock()
		fmt.Fprint(w, `{"matches":[]}`)
	})
	mux.HandleFunc("GET /rules", func(w http.ResponseWriter, r *http.Request) {
		item := r.URL.Query().Get("item")
		f.mu.Lock()
		f.log = append(f.log, "GET /rules "+item)
		visible := f.revealAfter > 0 && !f.lastIngest.IsZero() &&
			time.Since(f.lastIngest) >= f.revealAfter && item == f.tracer.Antecedent
		f.mu.Unlock()
		if visible {
			fmt.Fprintf(w, `{"item":%q,"rules":[{"antecedent":[%q],"consequent":[%q],"ruleInterest":1.0}]}`,
				item, f.tracer.Antecedent, f.tracer.Consequent)
			return
		}
		fmt.Fprintf(w, `{"item":%q,"rules":[]}`, item)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		n := f.txns
		f.mu.Unlock()
		fmt.Fprintf(w, `{"ingest":{"sealedTxns":%d,"activeTxns":0}}`, n)
	})
	return mux
}

func (f *fakeDaemon) requests() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.log...)
}

// TestRunDeterministicStream replays the same config twice against fresh
// fake daemons with a single worker and checks the daemon saw the identical
// request sequence — the simulator's core reproducibility contract.
func TestRunDeterministicStream(t *testing.T) {
	runOnce := func() []string {
		fd := &fakeDaemon{}
		srv := httptest.NewServer(fd.handler())
		defer srv.Close()
		cfg := Config{Target: srv.URL, Seed: 11, Duration: 300 * time.Millisecond,
			RPS: 400, Workers: 1, Tracers: 0}
		res, err := Run(context.Background(), cfg, testDict())
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors5xx() != 0 {
			t.Fatalf("fake daemon produced 5xx: %+v", res.Endpoints)
		}
		return fd.requests()
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 {
		t.Fatal("no requests recorded")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("request streams differ across identical runs:\nrun1 %d reqs, run2 %d reqs", len(a), len(b))
	}
}

// TestRunFreshnessBetweenPolls checks the freshness math when the tracer
// rule appears between polls: the sample must span plant-ack → first
// successful poll, so it lands in [reveal, reveal + poll cadence + slack].
func TestRunFreshnessBetweenPolls(t *testing.T) {
	reveal := 250 * time.Millisecond
	fd := &fakeDaemon{revealAfter: reveal}
	srv := httptest.NewServer(fd.handler())
	defer srv.Close()

	dict := testDict()
	tr, err := ChooseTracers(dict, 1)
	if err != nil {
		t.Fatal(err)
	}
	fd.tracer = tr[0]

	cfg := Config{Target: srv.URL, Seed: 5, Duration: 100 * time.Millisecond,
		RPS: 50, Workers: 2, Tracers: 1,
		MixScore: 1, // keep scripted load off /ingest so only plants move the clock
		MinSupport: 0.01, SeedTxns: 100,
		PollEvery: 50 * time.Millisecond, PollTimeout: 5 * time.Second}
	res, err := Run(context.Background(), cfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Freshness
	if fr == nil {
		t.Fatal("no freshness result")
	}
	if fr.Tracers != 1 || fr.Visible != 1 || fr.Missed != 0 {
		t.Fatalf("tracer accounting = %+v", fr)
	}
	if fr.PlantTxns == 0 {
		t.Fatal("no plant transactions recorded")
	}
	got := time.Duration(fr.P50Seconds * float64(time.Second))
	// Lower bound: the rule cannot be seen before the daemon reveals it.
	// Upper bound: one poll interval past reveal, plus scheduling slack.
	if got < reveal-50*time.Millisecond || got > reveal+cfg.PollEvery+400*time.Millisecond {
		t.Fatalf("freshness sample %v outside [%v, %v]", got, reveal, reveal+cfg.PollEvery)
	}
	if fr.P99Seconds < fr.P50Seconds || fr.MaxSeconds < fr.P99Seconds {
		t.Fatalf("quantile ordering violated: %+v", fr)
	}
}

// TestRunNeverVisible checks the missed-tracer path: a daemon that never
// serves the rule yields Visible 0 / Missed 1 after PollTimeout.
func TestRunNeverVisible(t *testing.T) {
	fd := &fakeDaemon{} // revealAfter 0: never visible
	srv := httptest.NewServer(fd.handler())
	defer srv.Close()
	dict := testDict()
	cfg := Config{Target: srv.URL, Seed: 5, Duration: 50 * time.Millisecond,
		RPS: 40, Workers: 2, Tracers: 1, MixScore: 1,
		MinSupport: 0.01, SeedTxns: 50,
		PollEvery: 20 * time.Millisecond, PollTimeout: 200 * time.Millisecond}
	res, err := Run(context.Background(), cfg, dict)
	if err != nil {
		t.Fatal(err)
	}
	if res.Freshness == nil || res.Freshness.Visible != 0 || res.Freshness.Missed != 1 {
		t.Fatalf("freshness = %+v, want 0 visible / 1 missed", res.Freshness)
	}
}

func TestPlantSize(t *testing.T) {
	cfg := Config{MinSupport: 0.02}.withDefaults()
	k, err := plantSize(cfg, 1000, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed point: each side must be ≥ 2×minsup of the final count.
	final := 1000 + 500 + 2*k*2
	if float64(k) < 2*cfg.MinSupport*float64(final) {
		t.Fatalf("plant size %d below 2×minsup of final %d txns", k, final)
	}
	if float64(k) > 2*cfg.MinSupport*float64(final)+2 {
		t.Fatalf("plant size %d overshoots (final %d)", k, final)
	}
	if _, err := plantSize(Config{MinSupport: 0.2}.withDefaults(), 0, 0, 10); err == nil {
		t.Fatal("infeasible tracer count accepted")
	}
}
