// Package loadsim is the production workload simulator: it drives a live
// negmined (or negrouter) with a configurable mix of POST /ingest,
// POST /score and GET /rules traffic shaped like real retail demand —
// zipfian basket popularity, seasonal drift (the popularity curve rotating
// across the dictionary on a schedule) and flash-sale bursts (a transient
// rate spike concentrated on a few hot items).
//
// The request stream is scripted, not improvised: Script is a pure
// function of (Config, Dict) producing the full op sequence with virtual
// timestamps, so a fixed seed identifies the traffic bit-for-bit and a run
// can be replayed or diffed. Execution (Run) is a producer/worker pipeline
// with a bounded queue — the producer paces ops by their virtual time, the
// workers execute them, and when the target can't keep up the queue
// backpressures the producer, which is exactly the achieved-vs-offered gap
// the result reports.
//
// Rule freshness is measured end to end with tracer itemsets: synthetic
// sibling triples (A, X, B) reserved out of the background traffic, where
// the simulator injects {A,X} baskets and {B} baskets — never {A,B}
// together — at a rate engineered to cross the miner's support threshold.
// The sibling-replacement candidate {A,B} then has expected support ≈
// sup(B) and actual support 0, so the rule A ⇒ ¬B must appear with
// RI ≈ 1 once a refresh covers the planted transactions. The simulator
// records when the last plant batch was acknowledged and polls /rules
// until the rule is served; the deltas form the ingest→visible freshness
// distribution (p50/p99).
package loadsim

import (
	"fmt"
	"sort"
	"time"

	"negmine/internal/item"
	"negmine/internal/taxonomy"
)

// Dict is the item universe the simulator samples from: the leaf item
// names the target daemon's dictionary accepts, plus the sibling groups
// (leaves sharing one taxonomy parent) tracer selection draws triples from.
type Dict struct {
	Items         []string
	SiblingGroups [][]string
}

// DictFromTaxonomy extracts the Dict from a taxonomy file's hierarchy:
// every leaf name, grouped by parent category.
func DictFromTaxonomy(tax *taxonomy.Taxonomy) Dict {
	var d Dict
	byParent := map[item.Item][]string{}
	var parents []item.Item
	for _, l := range tax.Leaves() {
		d.Items = append(d.Items, tax.Name(l))
		p := tax.Parent(l)
		if p == item.None {
			continue
		}
		if _, ok := byParent[p]; !ok {
			parents = append(parents, p)
		}
		byParent[p] = append(byParent[p], tax.Name(l))
	}
	for _, p := range parents {
		if g := byParent[p]; len(g) >= 3 {
			d.SiblingGroups = append(d.SiblingGroups, g)
		}
	}
	return d
}

// Op kinds, in mix-weight order.
const (
	OpIngest = iota
	OpScore
	OpRules
	opKinds
)

var opNames = [opKinds]string{"ingest", "score", "rules"}

// OpName returns the endpoint name of an op kind.
func OpName(kind int) string {
	if kind < 0 || kind >= opKinds {
		return "?"
	}
	return opNames[kind]
}

// Op is one scripted request: its virtual-time offset from run start, the
// endpoint, and the pre-marshalled body (POST ops) or query item (rules).
type Op struct {
	At   time.Duration
	Kind int
	Body []byte // /ingest and /score JSON body; nil for /rules
	Item string // /rules query item
	Txns int    // transactions this op appends (ingest only)
}

// Tracer is one planted sibling triple: baskets {Antecedent, Partner} and
// {Consequent} are injected so the negative rule
// Antecedent ⇒ ¬Consequent must eventually be served.
type Tracer struct {
	Antecedent string // A: only ever bought together with Partner
	Partner    string // X: the large itemset {A,X} the candidate comes from
	Consequent string // B: sibling of X, only ever bought alone
}

// Config parameterizes one simulation run.
type Config struct {
	Target string // base URL of the negmined/negrouter under test
	Seed   int64

	// Traffic shape. Duration is the scripted (virtual) length; RPS the
	// offered request rate at amplitude 1; Workers the executor pool size;
	// QueueDepth the bounded op queue (0 = 2×Workers).
	Duration   time.Duration
	RPS        float64
	Workers    int
	QueueDepth int

	// Endpoint mix weights (normalized internally).
	MixIngest float64
	MixScore  float64
	MixRules  float64

	// Basket model: mean basket length (Poisson ≥ 1), baskets per /ingest
	// request, zipf popularity skew, and the drift schedule (the rank→item
	// rotation advances every DriftEvery ops through DriftPhases phases;
	// DriftPhases ≤ 1 disables drift).
	BasketMean  float64
	IngestBatch int
	Zipf        float64
	DriftEvery  int
	DriftPhases int

	// Flash-sale burst: during [BurstStart, BurstStart+BurstLen) of virtual
	// time the offered rate is multiplied by BurstAmp and item draws
	// concentrate on the BurstHot hottest ranks. BurstLen = 0 disables.
	BurstStart time.Duration
	BurstLen   time.Duration
	BurstAmp   float64
	BurstHot   int

	// Tracer freshness probes. Tracers is how many sibling triples to
	// plant; MinSupport must match the target's mining threshold so plants
	// are sized to cross it; SeedTxns is the transaction count already in
	// the target's log (0 = read from /metrics at run start). PollEvery is
	// the /rules poll cadence and PollTimeout the per-run give-up.
	Tracers     int
	MinSupport  float64
	SeedTxns    int
	PollEvery   time.Duration
	PollTimeout time.Duration

	// ScoreLimit bounds /score responses (0 = server default).
	ScoreLimit int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.RPS <= 0 {
		c.RPS = 200
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.MixIngest == 0 && c.MixScore == 0 && c.MixRules == 0 {
		c.MixIngest, c.MixScore, c.MixRules = 0.2, 0.4, 0.4
	}
	if c.BasketMean < 1 {
		c.BasketMean = 4
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = 16
	}
	if c.BurstLen > 0 && c.BurstAmp <= 0 {
		c.BurstAmp = 4
	}
	if c.BurstLen > 0 && c.BurstHot <= 0 {
		c.BurstHot = 4
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 0.02
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 250 * time.Millisecond
	}
	if c.PollTimeout <= 0 {
		c.PollTimeout = c.Duration + 30*time.Second
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.MixIngest < 0 || c.MixScore < 0 || c.MixRules < 0:
		return fmt.Errorf("loadsim: negative mix weight")
	case c.Zipf < 0:
		return fmt.Errorf("loadsim: Zipf = %v, want ≥ 0", c.Zipf)
	case c.BurstLen > 0 && c.BurstAmp < 1:
		return fmt.Errorf("loadsim: BurstAmp = %v, want ≥ 1", c.BurstAmp)
	case c.Tracers < 0:
		return fmt.Errorf("loadsim: Tracers = %d", c.Tracers)
	case c.MinSupport >= 1:
		return fmt.Errorf("loadsim: MinSupport = %v, want < 1", c.MinSupport)
	}
	return nil
}

// ChooseTracers picks n sibling triples from the dictionary's groups, one
// per group, in group order — a pure function, so the same Dict always
// yields the same tracers (and Script reserves the same items).
func ChooseTracers(dict Dict, n int) ([]Tracer, error) {
	if n == 0 {
		return nil, nil
	}
	var out []Tracer
	for _, g := range dict.SiblingGroups {
		if len(g) < 3 {
			continue
		}
		// Sorted for independence from taxonomy-walk order.
		sorted := append([]string(nil), g...)
		sort.Strings(sorted)
		out = append(out, Tracer{Antecedent: sorted[0], Partner: sorted[1], Consequent: sorted[2]})
		if len(out) == n {
			return out, nil
		}
	}
	return nil, fmt.Errorf("loadsim: want %d tracers but only %d sibling groups of ≥ 3 leaves", n, len(out))
}

// reservedItems is the set of item names tracer triples occupy; background
// traffic must never sample them or the engineered supports drift.
func reservedItems(tracers []Tracer) map[string]bool {
	r := make(map[string]bool, 3*len(tracers))
	for _, t := range tracers {
		r[t.Antecedent], r[t.Partner], r[t.Consequent] = true, true, true
	}
	return r
}
