package stats

import (
	"math"
	"testing"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged on Float64")
		}
		if a.Poisson(7) != b.Poisson(7) {
			t.Fatal("same seed diverged on Poisson")
		}
	}
	c := NewSource(43)
	same := true
	a2 := NewSource(42)
	for i := 0; i < 20; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestPoissonMoments(t *testing.T) {
	// Sample mean and variance of Poisson(λ) must both be ≈ λ,
	// across both the Knuth and the PTRS regimes.
	src := NewSource(1)
	for _, mean := range []float64{0.5, 3, 9, 29.5, 40, 200} {
		const n = 20000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(src.Poisson(mean))
		}
		m, v := Mean(xs), Variance(xs)
		tol := 4 * math.Sqrt(mean/float64(n)) * math.Sqrt(mean) // generous
		if math.Abs(m-mean) > math.Max(tol, 0.05*mean) {
			t.Errorf("Poisson(%v): sample mean %v", mean, m)
		}
		if math.Abs(v-mean) > 0.15*mean+0.2 {
			t.Errorf("Poisson(%v): sample variance %v", mean, v)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	src := NewSource(2)
	if got := src.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := src.Poisson(-3); got != 0 {
		t.Errorf("Poisson(-3) = %d", got)
	}
	for i := 0; i < 100; i++ {
		if got := src.PoissonAtLeast(0.1, 1); got < 1 {
			t.Fatalf("PoissonAtLeast returned %d < 1", got)
		}
	}
}

func TestExpAndNormalMoments(t *testing.T) {
	src := NewSource(3)
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Exp(2.5)
	}
	if m := Mean(xs); math.Abs(m-2.5) > 0.1 {
		t.Errorf("Exp mean = %v, want ≈2.5", m)
	}
	for i := range xs {
		xs[i] = src.Normal(0.5, 0.1)
	}
	if m := Mean(xs); math.Abs(m-0.5) > 0.01 {
		t.Errorf("Normal mean = %v, want ≈0.5", m)
	}
	if v := Variance(xs); math.Abs(v-0.01) > 0.002 {
		t.Errorf("Normal variance = %v, want ≈0.01", v)
	}
}

func TestLogFactorial(t *testing.T) {
	// Check against direct summation for a range spanning table and series.
	acc := 0.0
	for n := 1; n <= 200; n++ {
		acc += math.Log(float64(n))
		got := logFactorial(n)
		if math.Abs(got-acc) > 1e-6*math.Max(1, acc) {
			t.Errorf("logFactorial(%d) = %v, want %v", n, got, acc)
		}
	}
	if logFactorial(0) != 0 {
		t.Errorf("logFactorial(0) = %v", logFactorial(0))
	}
	if !math.IsNaN(logFactorial(-1)) {
		t.Error("logFactorial(-1) should be NaN")
	}
}

func TestWeightedChoice(t *testing.T) {
	src := NewSource(4)
	wc := NewWeightedChoice([]float64{1, 0, 3})
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[wc.Sample(src)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ≈3", ratio)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"zero-sum": {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights did not panic", name)
				}
			}()
			NewWeightedChoice(weights)
		}()
	}
}

func TestNormalize(t *testing.T) {
	w := []float64{1, 3}
	Normalize(w)
	if w[0] != 0.25 || w[1] != 0.75 {
		t.Errorf("Normalize = %v", w)
	}
	z := []float64{0, 0}
	Normalize(z) // must not divide by zero
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize(zero) = %v", z)
	}
}

func TestMeanVarianceEdge(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{5}) != 0 {
		t.Error("edge cases of Mean/Variance should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance([]float64{1, 2, 3}); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Variance = %v", got)
	}
}
