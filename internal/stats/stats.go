// Package stats provides the random distributions the synthetic data
// generator (paper §3.1) is specified in terms of: Poisson (taxonomy fanout,
// cluster/itemset/transaction sizes), exponential (cluster and itemset
// weights) and normal (corruption levels). All sampling goes through an
// explicitly seeded Source so every experiment is reproducible bit-for-bit.
package stats

import (
	"math"
	"math/rand"
)

// Source is a seeded random source for the generator. It wraps math/rand so
// all consumers share one stream and one seed.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform integer in [0,n). n must be > 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 { return s.rng.ExpFloat64() * mean }

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return s.rng.NormFloat64()*stddev + mean
}

// Poisson returns a Poisson-distributed integer with the given mean.
//
// For small means it uses Knuth's multiplication method; for large means it
// uses the PTRS transformed-rejection sampler of Hörmann (1993), which is
// exact and O(1) expected time.
func (s *Source) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		return s.poissonKnuth(mean)
	default:
		return s.poissonPTRS(mean)
	}
}

// PoissonAtLeast samples Poisson(mean) but never returns less than min. The
// generator uses it for sizes that must be positive (a cluster of zero
// categories or an itemset of zero items is meaningless).
func (s *Source) PoissonAtLeast(mean float64, min int) int {
	if n := s.Poisson(mean); n >= min {
		return n
	}
	return min
}

func (s *Source) poissonKnuth(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm for mean >= 10.
func (s *Source) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := s.rng.Float64() - 0.5
		v := s.rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lhs := math.Log(v * invAlpha / (a/(us*us) + b))
		rhs := -mean + k*math.Log(mean) - logFactorial(int(k))
		if lhs <= rhs {
			return int(k)
		}
	}
}

// logFactorial returns ln(n!) using a small table for n < 16 and the
// Stirling/Lanczos-quality series otherwise.
func logFactorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	if n < len(logFactTable) {
		return logFactTable[n]
	}
	x := float64(n + 1)
	return (x-0.5)*math.Log(x) - x + 0.5*math.Log(2*math.Pi) +
		1/(12*x) - 1/(360*x*x*x)
}

var logFactTable = func() [16]float64 {
	var t [16]float64
	acc := 0.0
	for i := 2; i < len(t); i++ {
		acc += math.Log(float64(i))
		t[i] = acc
	}
	return t
}()

// WeightedChoice selects an index from weights (which need not be
// normalized) proportionally to its weight. It panics if weights is empty or
// sums to a non-positive value.
type WeightedChoice struct {
	cum []float64 // cumulative weights
}

// NewWeightedChoice precomputes a cumulative table for repeated sampling.
func NewWeightedChoice(weights []float64) *WeightedChoice {
	if len(weights) == 0 {
		panic("stats: empty weight vector")
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		acc += w
		cum[i] = acc
	}
	if acc <= 0 {
		panic("stats: weights sum to zero")
	}
	return &WeightedChoice{cum: cum}
}

// Sample draws one index according to the weights.
func (w *WeightedChoice) Sample(s *Source) int {
	target := s.Float64() * w.cum[len(w.cum)-1]
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Normalize scales weights in place so they sum to 1. A zero-sum vector is
// left untouched.
func Normalize(weights []float64) {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		return
	}
	for i := range weights {
		weights[i] /= sum
	}
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}
