// Package hashtree implements the hash tree of Agrawal & Srikant ("Fast
// Algorithms for Mining Association Rules", VLDB 1994) used to count, for
// each transaction, which of a (possibly very large) set of equal-size
// candidate itemsets it contains.
//
// Interior nodes hash on the item at their depth; leaves hold candidate
// indices. A Tree is immutable after Build and safe for concurrent use; all
// mutable counting state lives in per-worker Counters, which are merged
// after a parallel scan.
package hashtree

import (
	"fmt"

	"negmine/internal/item"
)

// branch is the fan-out of interior nodes.
const branch = 16

// DefaultMaxLeaf is the leaf capacity at which a leaf splits into an
// interior node.
const DefaultMaxLeaf = 24

// Tree indexes a set of candidate k-itemsets for fast subset counting.
type Tree struct {
	k     int
	cands []item.Itemset
	root  *node
}

type node struct {
	// Exactly one of leaf / kids is used.
	leaf []int32 // candidate indices
	kids *[branch]*node
}

func hashItem(x item.Item) int { return int(uint32(x)*2654435761) % branch }

// Build constructs a tree over candidates, all of which must have the same
// length k ≥ 1. maxLeaf ≤ 0 selects DefaultMaxLeaf. Candidates are not
// copied; the caller must not mutate them afterwards.
func Build(cands []item.Itemset, maxLeaf int) (*Tree, error) {
	if len(cands) == 0 {
		return &Tree{root: &node{}}, nil
	}
	if maxLeaf <= 0 {
		maxLeaf = DefaultMaxLeaf
	}
	k := cands[0].Len()
	if k < 1 {
		return nil, fmt.Errorf("hashtree: empty candidate itemset")
	}
	t := &Tree{k: k, cands: cands, root: &node{}}
	for i, c := range cands {
		if c.Len() != k {
			return nil, fmt.Errorf("hashtree: candidate %d has length %d, want %d", i, c.Len(), k)
		}
		t.insert(t.root, int32(i), 0, maxLeaf)
	}
	return t, nil
}

func (t *Tree) insert(n *node, idx int32, depth, maxLeaf int) {
	if n.kids != nil {
		c := t.cands[idx]
		h := hashItem(c[depth])
		child := n.kids[h]
		if child == nil {
			child = &node{}
			n.kids[h] = child
		}
		t.insert(child, idx, depth+1, maxLeaf)
		return
	}
	n.leaf = append(n.leaf, idx)
	// Split an overfull leaf unless all k items have been hashed already.
	if len(n.leaf) > maxLeaf && depth < t.k {
		old := n.leaf
		n.leaf = nil
		n.kids = new([branch]*node)
		for _, i := range old {
			t.insert(n, i, depth, maxLeaf)
		}
	}
}

// EstimateBytes estimates the resident size of a tree over n candidates
// probed by `counters` per-worker Counters — the number a memory budget
// reserves before Build. Candidate itemsets themselves are caller-owned and
// not charged. The tree costs a leaf index entry per candidate plus interior
// nodes amortized over DefaultMaxLeaf-sized leaves; each counter keeps a
// count and a last-seen sequence number per candidate.
func EstimateBytes(n, counters int) int64 {
	if n <= 0 {
		return 0
	}
	if counters < 1 {
		counters = 1
	}
	const (
		perCandTree    = 4 + 24 // leaf slot + amortized node overhead
		perCandCounter = 8 + 8  // counts + last entries
	)
	return int64(n) * (perCandTree + int64(counters)*perCandCounter)
}

// K returns the candidate size (0 for an empty tree).
func (t *Tree) K() int { return t.k }

// Len returns the number of candidates.
func (t *Tree) Len() int { return len(t.cands) }

// Candidates returns the indexed candidates (shared slice).
func (t *Tree) Candidates() []item.Itemset { return t.cands }

// Counter accumulates per-candidate support counts against one Tree. It is
// not safe for concurrent use; run one Counter per goroutine and Merge.
type Counter struct {
	tree   *Tree
	counts []int
	last   []int64 // sequence number of the last transaction that touched a candidate
	seq    int64
	stack  []frame // reusable traversal stack: Add allocates nothing at steady state
}

// frame is one suspended step of the tree walk: probe n with transaction
// items from position start at hash depth depth.
type frame struct {
	n            *node
	start, depth int32
}

// NewCounter returns a zeroed counter for t.
func (t *Tree) NewCounter() *Counter {
	return &Counter{
		tree:   t,
		counts: make([]int, len(t.cands)),
		last:   make([]int64, len(t.cands)),
		stack:  make([]frame, 0, 64),
	}
}

// Add counts every candidate that is a subset of tx. tx must be sorted.
func (c *Counter) Add(tx item.Itemset) {
	if c.tree.k == 0 || tx.Len() < c.tree.k {
		return
	}
	c.seq++
	c.visit(tx, nil)
}

// AddCollect is Add, additionally invoking hit with the index of every
// matched candidate (each exactly once per transaction, ascending order not
// guaranteed). AprioriHybrid uses it to materialize per-transaction
// candidate-id lists at its switch-over pass.
func (c *Counter) AddCollect(tx item.Itemset, hit func(idx int32)) {
	if c.tree.k == 0 || tx.Len() < c.tree.k {
		return
	}
	c.seq++
	c.visit(tx, hit)
}

// visit walks the tree iteratively with the counter's reusable stack (the
// recursive form allocated a call frame per level on the hot path). Node
// visit order differs from the recursion but counts do not depend on it:
// the last/seq marks examine each candidate at most once per transaction.
func (c *Counter) visit(tx item.Itemset, hit func(int32)) {
	k := c.tree.k
	stack := append(c.stack[:0], frame{n: c.tree.root})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.n.kids == nil {
			for _, idx := range f.n.leaf {
				if c.last[idx] == c.seq {
					continue // already examined via another path this transaction
				}
				c.last[idx] = c.seq
				if c.tree.cands[idx].SubsetOf(tx) {
					c.counts[idx]++
					if hit != nil {
						hit(idx)
					}
				}
			}
			continue
		}
		// Try each remaining transaction item as the next hashed element; a
		// candidate needs k-depth more items, so stop when too few remain.
		for i := int(f.start); len(tx)-i >= k-int(f.depth); i++ {
			if child := f.n.kids[hashItem(tx[i])]; child != nil {
				stack = append(stack, frame{n: child, start: int32(i + 1), depth: f.depth + 1})
			}
		}
	}
	c.stack = stack[:0] // keep grown capacity for the next transaction
}

// Count returns the accumulated count of candidate i (by Build order).
func (c *Counter) Count(i int) int { return c.counts[i] }

// Counts returns the full count vector (shared slice).
func (c *Counter) Counts() []int { return c.counts }

// Merge adds other's counts into c. Both must come from the same Tree.
func (c *Counter) Merge(other *Counter) {
	if other.tree != c.tree {
		panic("hashtree: merging counters from different trees")
	}
	for i, n := range other.counts {
		c.counts[i] += n
	}
}
