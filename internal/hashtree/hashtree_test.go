package hashtree

import (
	"math/rand"
	"testing"

	"negmine/internal/item"
)

func TestEmptyTree(t *testing.T) {
	tr, err := Build(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.K() != 0 {
		t.Errorf("Len/K = %d/%d", tr.Len(), tr.K())
	}
	c := tr.NewCounter()
	c.Add(item.New(1, 2, 3)) // must not panic
}

func TestBuildRejectsMixedSizes(t *testing.T) {
	_, err := Build([]item.Itemset{item.New(1, 2), item.New(3)}, 0)
	if err == nil {
		t.Fatal("mixed candidate sizes accepted")
	}
	_, err = Build([]item.Itemset{{}}, 0)
	if err == nil {
		t.Fatal("empty candidate accepted")
	}
}

func TestCountSimple(t *testing.T) {
	cands := []item.Itemset{
		item.New(1, 2),
		item.New(1, 3),
		item.New(2, 3),
		item.New(4, 5),
	}
	tr, err := Build(cands, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.NewCounter()
	c.Add(item.New(1, 2, 3)) // contains {1,2},{1,3},{2,3}
	c.Add(item.New(1, 2))    // contains {1,2}
	c.Add(item.New(4))       // too short for k=2
	c.Add(item.New(4, 5, 9)) // contains {4,5}
	want := []int{2, 1, 1, 1}
	for i, w := range want {
		if got := c.Count(i); got != w {
			t.Errorf("Count(%v) = %d, want %d", cands[i], got, w)
		}
	}
}

func TestNoDoubleCountAcrossPaths(t *testing.T) {
	// Force tiny leaves so the tree splits heavily; a candidate reachable
	// via several hash paths in one transaction must still count once.
	var cands []item.Itemset
	for a := item.Item(0); a < 12; a++ {
		for b := a + 1; b < 12; b++ {
			cands = append(cands, item.New(a, b))
		}
	}
	tr, err := Build(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.NewCounter()
	tx := item.New(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
	c.Add(tx)
	for i := range cands {
		if got := c.Count(i); got != 1 {
			t.Fatalf("candidate %v counted %d times", cands[i], got)
		}
	}
}

// referenceCount is the trivially correct counting implementation the tree
// is validated against.
func referenceCount(cands []item.Itemset, txs []item.Itemset) []int {
	out := make([]int, len(cands))
	for _, tx := range txs {
		for i, c := range cands {
			if c.SubsetOf(tx) {
				out[i]++
			}
		}
	}
	return out
}

func TestRandomAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		k := 1 + r.Intn(4)
		nItems := 30
		seen := map[item.Key]bool{}
		target := 60
		if target > nItems && k == 1 {
			target = nItems - 5 // only nItems distinct 1-itemsets exist
		}
		var cands []item.Itemset
		for len(cands) < target {
			raw := make([]item.Item, k)
			for j := range raw {
				raw[j] = item.Item(r.Intn(nItems))
			}
			c := item.New(raw...)
			if c.Len() != k || seen[c.Key()] {
				continue
			}
			seen[c.Key()] = true
			cands = append(cands, c)
		}
		var txs []item.Itemset
		for i := 0; i < 150; i++ {
			n := r.Intn(10)
			raw := make([]item.Item, n)
			for j := range raw {
				raw[j] = item.Item(r.Intn(nItems))
			}
			txs = append(txs, item.New(raw...))
		}
		maxLeaf := 1 + r.Intn(8)
		tr, err := Build(cands, maxLeaf)
		if err != nil {
			t.Fatal(err)
		}
		c := tr.NewCounter()
		for _, tx := range txs {
			c.Add(tx)
		}
		want := referenceCount(cands, txs)
		for i := range cands {
			if c.Count(i) != want[i] {
				t.Fatalf("trial %d (k=%d, maxLeaf=%d): candidate %v counted %d, want %d",
					trial, k, maxLeaf, cands[i], c.Count(i), want[i])
			}
		}
	}
}

func TestMerge(t *testing.T) {
	cands := []item.Itemset{item.New(1, 2), item.New(2, 3)}
	tr, _ := Build(cands, 0)
	a, b := tr.NewCounter(), tr.NewCounter()
	a.Add(item.New(1, 2))
	b.Add(item.New(1, 2, 3))
	b.Add(item.New(2, 3))
	a.Merge(b)
	if a.Count(0) != 2 || a.Count(1) != 2 {
		t.Errorf("merged counts = %v", a.Counts())
	}
}

func TestMergeDifferentTreesPanics(t *testing.T) {
	t1, _ := Build([]item.Itemset{item.New(1)}, 0)
	t2, _ := Build([]item.Itemset{item.New(1)}, 0)
	defer func() {
		if recover() == nil {
			t.Error("cross-tree merge did not panic")
		}
	}()
	t1.NewCounter().Merge(t2.NewCounter())
}

func TestK1Candidates(t *testing.T) {
	cands := []item.Itemset{item.New(3), item.New(7), item.New(9)}
	tr, err := Build(cands, 1) // forces splits at depth 0
	if err != nil {
		t.Fatal(err)
	}
	c := tr.NewCounter()
	c.Add(item.New(3, 7))
	c.Add(item.New(9))
	c.Add(item.New(1))
	for i, want := range []int{1, 1, 1} {
		if c.Count(i) != want {
			t.Errorf("Count(%v) = %d, want %d", cands[i], c.Count(i), want)
		}
	}
}

func BenchmarkCountHashTree(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var cands []item.Itemset
	seen := map[item.Key]bool{}
	for len(cands) < 2000 {
		raw := []item.Item{item.Item(r.Intn(500)), item.Item(r.Intn(500)), item.Item(r.Intn(500))}
		c := item.New(raw...)
		if c.Len() == 3 && !seen[c.Key()] {
			seen[c.Key()] = true
			cands = append(cands, c)
		}
	}
	var txs []item.Itemset
	for i := 0; i < 1000; i++ {
		raw := make([]item.Item, 12)
		for j := range raw {
			raw[j] = item.Item(r.Intn(500))
		}
		txs = append(txs, item.New(raw...))
	}
	tr, _ := Build(cands, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tr.NewCounter()
		for _, tx := range txs {
			c.Add(tx)
		}
	}
}

func BenchmarkCountReference(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var cands []item.Itemset
	seen := map[item.Key]bool{}
	for len(cands) < 2000 {
		raw := []item.Item{item.Item(r.Intn(500)), item.Item(r.Intn(500)), item.Item(r.Intn(500))}
		c := item.New(raw...)
		if c.Len() == 3 && !seen[c.Key()] {
			seen[c.Key()] = true
			cands = append(cands, c)
		}
	}
	var txs []item.Itemset
	for i := 0; i < 1000; i++ {
		raw := make([]item.Item, 12)
		for j := range raw {
			raw[j] = item.Item(r.Intn(500))
		}
		txs = append(txs, item.New(raw...))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceCount(cands, txs)
	}
}

// TestAddAllocationFree pins the steady-state guarantee of the iterative
// probe path: once the counter's traversal stack has warmed up, Add and
// AddCollect allocate nothing.
func TestAddAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var cands []item.Itemset
	seen := map[item.Key]bool{}
	for len(cands) < 500 {
		c := item.New(item.Item(r.Intn(80)), item.Item(r.Intn(80)), item.Item(r.Intn(80)))
		if c.Len() == 3 && !seen[c.Key()] {
			seen[c.Key()] = true
			cands = append(cands, c)
		}
	}
	tree, err := Build(cands, 4) // small leaves force deep traversals
	if err != nil {
		t.Fatal(err)
	}
	var txs []item.Itemset
	for i := 0; i < 50; i++ {
		raw := make([]item.Item, 15)
		for j := range raw {
			raw[j] = item.Item(r.Intn(80))
		}
		txs = append(txs, item.New(raw...))
	}
	c := tree.NewCounter()
	for _, tx := range txs {
		c.Add(tx) // warm the stack
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, tx := range txs {
			c.Add(tx)
		}
	})
	if allocs != 0 {
		t.Fatalf("Add allocated %v times per run, want 0", allocs)
	}
	hit := func(int32) {}
	allocs = testing.AllocsPerRun(100, func() {
		for _, tx := range txs {
			c.AddCollect(tx, hit)
		}
	})
	if allocs != 0 {
		t.Fatalf("AddCollect allocated %v times per run, want 0", allocs)
	}
}
