// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§3): dataset construction for the
// "Short" and "Tall" configurations, timing sweeps over minimum support for
// the Naive and Improved algorithms (Figures 5 and 6), the
// candidate-count-vs-fanout experiment (Figure 7), and the frozen-yogurt /
// bottled-water worked example (Tables 1 and 2).
//
// The cmd/experiments binary and the repository-level benchmarks are thin
// wrappers around this package.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"negmine/internal/count"
	"negmine/internal/datagen"
	"negmine/internal/gen"
	"negmine/internal/negative"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// Dataset bundles a generated taxonomy and database with its parameters.
type Dataset struct {
	Name   string
	Params datagen.Params
	Tax    *taxonomy.Taxonomy
	DB     txdb.DB
}

// NewDataset generates a dataset from p.
func NewDataset(name string, p datagen.Params) (*Dataset, error) {
	tax, db, err := datagen.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("bench: generating %s: %w", name, err)
	}
	return &Dataset{Name: name, Params: p, Tax: tax, DB: db}, nil
}

// OnDisk writes the dataset to path in the binary format and returns a copy
// whose DB streams from disk on every pass — the paper's setting (a 32 MB
// SPARCstation could not hold 50,000 transactions' working set alongside
// the candidates, so every pass was real I/O). Disk-backed runs make the
// Naive-vs-Improved pass gap visible in wall-clock time.
func (ds *Dataset) OnDisk(path string) (*Dataset, error) {
	if err := txdb.WriteFile(path, ds.DB); err != nil {
		return nil, err
	}
	f, err := txdb.OpenFile(path)
	if err != nil {
		return nil, err
	}
	out := *ds
	out.Name = ds.Name + "/disk"
	out.DB = f
	return &out, nil
}

// ScaleTx divides only the transaction count by factor, keeping the item
// universe, cluster structure and taxonomy at full paper size. Unlike
// datagen.Scaled this preserves the relative supports and hence the shape
// of every curve; it is the scaling the experiment harness uses.
func ScaleTx(p datagen.Params, factor int) datagen.Params {
	if factor > 1 {
		p.NumTransactions /= factor
		if p.NumTransactions < 100 {
			p.NumTransactions = 100
		}
	}
	return p
}

// Short builds the paper's "Short" dataset (fanout 9) with transactions
// divided by scale (1 = the paper's full 50,000).
func Short(scale int, seed int64) (*Dataset, error) {
	p := ScaleTx(datagen.Short(), scale)
	p.Seed = seed
	return NewDataset("Short", p)
}

// Tall builds the paper's "Tall" dataset (fanout 3).
func Tall(scale int, seed int64) (*Dataset, error) {
	p := ScaleTx(datagen.Tall(), scale)
	p.Seed = seed
	return NewDataset("Tall", p)
}

// Throttled returns a copy of the dataset whose scans charge perTx of
// simulated I/O time per transaction — the paper's disk-bound 1995 regime,
// where the Naive-vs-Improved pass-count difference dominates wall time.
func (ds *Dataset) Throttled(perTx time.Duration) *Dataset {
	out := *ds
	out.Name = fmt.Sprintf("%s/slowio=%v", ds.Name, perTx)
	out.DB = txdb.Throttle(ds.DB, perTx)
	return &out
}

// TimingRow is one support level of Figures 5/6.
type TimingRow struct {
	MinSupPct     float64 // minimum support, percent
	NaiveSec      float64 // negative-stage seconds, Naive algorithm
	BetterSec     float64 // negative-stage seconds, Improved algorithm
	LargeItemsets int     // generalized large itemsets found (stage 1)
	Candidates    int     // negative candidates generated (Improved)
	Negatives     int     // negative itemsets confirmed
	Rules         int     // negative rules emitted
}

// TimingConfig parameterizes a Figure 5/6 sweep.
type TimingConfig struct {
	MinSupsPct []float64     // support levels, percent (paper: 0.5–2)
	MinRI      float64       // paper: 0.5
	GenAlg     gen.Algorithm // stage-1 algorithm (Basic or Cumulate for Naive)
	MaxK       int           // optional stage-1 level cap (0 = none)
	Parallel   int           // counting workers
	Backend    count.Backend // counting backend (auto picks per-database)
}

// RunTimings executes the Figure 5/6 experiment on ds: for each support
// level it runs both the Naive and the Improved algorithm and reports the
// negative-stage time (the paper excludes stage-1 large-itemset time).
func RunTimings(ds *Dataset, cfg TimingConfig) ([]TimingRow, error) {
	rows := make([]TimingRow, 0, len(cfg.MinSupsPct))
	for _, pct := range cfg.MinSupsPct {
		row := TimingRow{MinSupPct: pct}
		for _, alg := range []negative.Algorithm{negative.Naive, negative.Improved} {
			opt := negative.Options{
				MinSupport: pct / 100,
				MinRI:      cfg.MinRI,
				Algorithm:  alg,
				Gen:        gen.Options{Algorithm: cfg.GenAlg, MaxK: cfg.MaxK},
			}
			opt.Count.Parallelism = cfg.Parallel
			opt.Gen.Count.Parallelism = cfg.Parallel
			opt.Count.Backend = cfg.Backend
			opt.Gen.Count.Backend = cfg.Backend
			res, err := negative.Mine(ds.DB, ds.Tax, opt)
			if err != nil {
				return nil, fmt.Errorf("bench: %s minsup %.2f%% %v: %w", ds.Name, pct, alg, err)
			}
			sec := res.Timing.Negative.Seconds()
			if alg == negative.Naive {
				row.NaiveSec = sec
			} else {
				row.BetterSec = sec
				row.LargeItemsets = len(res.Large.Large())
				row.Candidates = res.TotalCandidates()
				row.Negatives = len(res.Negatives)
				row.Rules = len(res.Rules)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTimings renders a Figure 5/6 table.
func PrintTimings(w io.Writer, ds *Dataset, rows []TimingRow) {
	fmt.Fprintf(w, "Execution times, %q dataset (|D|=%d, N=%d items, fanout=%v)\n",
		ds.Name, ds.DB.Count(), ds.Params.NumItems, ds.Params.Fanout)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "minsup%\tnaive(s)\tbetter(s)\tspeedup\tlarge\tcands\tnegsets\trules")
	for _, r := range rows {
		speedup := 0.0
		if r.BetterSec > 0 {
			speedup = r.NaiveSec / r.BetterSec
		}
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.3f\t%.2fx\t%d\t%d\t%d\t%d\n",
			r.MinSupPct, r.NaiveSec, r.BetterSec, speedup,
			r.LargeItemsets, r.Candidates, r.Negatives, r.Rules)
	}
	tw.Flush()
}

// CandidateCounts is the Figure 7 measurement for one dataset: generated
// negative candidates per itemset size, normalized by the number of large
// itemsets of that size.
type CandidateCounts struct {
	Dataset    string
	Fanout     float64
	BySize     map[int]int     // raw candidate counts per size
	LargeBySz  map[int]int     // large itemsets per size
	Normalized map[int]float64 // BySize / LargeBySz
}

// RunCandidates executes the Figure 7 experiment on ds at one support
// level.
func RunCandidates(ds *Dataset, minSupPct, minRI float64, genAlg gen.Algorithm, maxK, parallel int) (*CandidateCounts, error) {
	opt := negative.Options{
		MinSupport: minSupPct / 100,
		MinRI:      minRI,
		Algorithm:  negative.Improved,
		Gen:        gen.Options{Algorithm: genAlg, MaxK: maxK},
	}
	opt.Count.Parallelism = parallel
	opt.Gen.Count.Parallelism = parallel
	res, err := negative.Mine(ds.DB, ds.Tax, opt)
	if err != nil {
		return nil, err
	}
	out := &CandidateCounts{
		Dataset:    ds.Name,
		Fanout:     ds.Params.Fanout,
		BySize:     res.CandidatesBySize,
		LargeBySz:  map[int]int{},
		Normalized: map[int]float64{},
	}
	for k, lvl := range res.Large.Levels {
		out.LargeBySz[k+1] = len(lvl)
	}
	for size, c := range res.CandidatesBySize {
		if l := out.LargeBySz[size]; l > 0 {
			out.Normalized[size] = float64(c) / float64(l)
		}
	}
	return out, nil
}

// PrintCandidates renders the Figure 7 table for a set of measurements.
func PrintCandidates(w io.Writer, counts []*CandidateCounts) {
	fmt.Fprintln(w, "Negative candidates per itemset size, normalized by large itemsets of that size")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "size")
	for _, c := range counts {
		fmt.Fprintf(tw, "\t%s(F=%v) raw\tnorm", c.Dataset, c.Fanout)
	}
	fmt.Fprintln(tw)
	sizes := map[int]struct{}{}
	for _, c := range counts {
		for s := range c.BySize {
			sizes[s] = struct{}{}
		}
	}
	ordered := make([]int, 0, len(sizes))
	for s := range sizes {
		ordered = append(ordered, s)
	}
	sort.Ints(ordered)
	for _, s := range ordered {
		fmt.Fprintf(tw, "%d", s)
		for _, c := range counts {
			fmt.Fprintf(tw, "\t%d\t%.2f", c.BySize[s], c.Normalized[s])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
