package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"negmine/internal/gen"
	"negmine/internal/negative"
	"negmine/internal/report"
	"negmine/internal/rulestore"
	"negmine/internal/serve"
)

// SnapshotBench is the `snapshot` section of BENCH_serving.json: what a cold
// start costs with and without a .nsnap file. Rebuild is the full
// mine-from-raw path a daemon without a snapshot store pays at boot;
// mmap-load is what `negmined -snapshot-dir` pays instead. Speedup is their
// ratio — the whole point of the binary snapshot format.
type SnapshotBench struct {
	Dataset   string  `json:"dataset"`
	MinSupPct float64 `json:"minsup_pct"`
	MinRI     float64 `json:"minri"`
	Rules     int     `json:"rules"`

	FileBytes      int64   `json:"file_bytes"`        // encoded .nsnap size
	EncodeSeconds  float64 `json:"encode_seconds"`    // snapshot → file (best of reps)
	LoadSeconds    float64 `json:"mmap_load_seconds"` // file → servable snapshot (best of reps)
	RebuildSeconds float64 `json:"rebuild_seconds"`   // mine-from-raw → servable snapshot
	Speedup        float64 `json:"load_speedup"`      // RebuildSeconds / LoadSeconds
}

// RunSnapshotBench measures the snapshot cold-start economics on ds: one
// timed mine-from-raw rebuild, then best-of-reps encode and mmap-load of the
// same rule set, with the loaded snapshot cross-checked against the built
// one. Scratch files land in dir.
func RunSnapshotBench(ds *Dataset, minSupPct, minRI float64, genAlg gen.Algorithm, maxK, parallel, reps int, dir string) (*SnapshotBench, error) {
	if reps < 1 {
		reps = 1
	}
	opt := negative.Options{
		MinSupport: minSupPct / 100,
		MinRI:      minRI,
		Algorithm:  negative.Improved,
		Gen:        gen.Options{Algorithm: genAlg, MaxK: maxK},
	}
	opt.Count.Parallelism = parallel
	opt.Gen.Count.Parallelism = parallel

	// The cold rebuild: everything a snapshotless daemon does between exec
	// and serving — mine, build the report, index the snapshot.
	start := time.Now()
	res, err := negative.Mine(ds.DB, ds.Tax, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: mining %s for snapshot: %w", ds.Name, err)
	}
	rep := report.BuildNegative(res, opt.MinSupport, opt.MinRI, ds.Tax.Name)
	st := rulestore.FromReport(rep)
	meta := serve.Meta{Source: "bench " + ds.Name, MinSupport: opt.MinSupport, MinRI: opt.MinRI}
	snap := serve.BuildSnapshot(st, ds.Tax, meta)
	rebuild := time.Since(start)
	if snap.Len() == 0 {
		return nil, fmt.Errorf("bench: %s mined no rules at minsup %.2f%%; lower the support", ds.Name, minSupPct)
	}

	path := filepath.Join(dir, ds.Name+".nsnap")
	var encode time.Duration
	for r := 0; r < reps; r++ {
		s := time.Now()
		if err := serve.WriteSnapshotFile(path, snap, 1); err != nil {
			return nil, fmt.Errorf("bench: encoding %s: %w", path, err)
		}
		if d := time.Since(s); encode == 0 || d < encode {
			encode = d
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	var load time.Duration
	for r := 0; r < reps; r++ {
		s := time.Now()
		loaded, err := serve.OpenSnapshotFile(path, -1)
		d := time.Since(s)
		if err != nil {
			return nil, fmt.Errorf("bench: loading %s: %w", path, err)
		}
		if loaded.Len() != snap.Len() {
			return nil, fmt.Errorf("bench: %s round trip lost rules: %d loaded, %d built", path, loaded.Len(), snap.Len())
		}
		if load == 0 || d < load {
			load = d
		}
	}

	out := &SnapshotBench{
		Dataset:        ds.Name,
		MinSupPct:      minSupPct,
		MinRI:          minRI,
		Rules:          snap.Len(),
		FileBytes:      fi.Size(),
		EncodeSeconds:  encode.Seconds(),
		LoadSeconds:    load.Seconds(),
		RebuildSeconds: rebuild.Seconds(),
	}
	if load > 0 {
		out.Speedup = rebuild.Seconds() / load.Seconds()
	}
	return out, nil
}

// PrintSnapshot renders snapshot benchmarks as a human-readable summary.
func PrintSnapshot(w io.Writer, rows []*SnapshotBench) {
	for _, r := range rows {
		fmt.Fprintf(w, "%s (minsup %.2f%%): %d rules, %dKB file; encode %.2fms; mmap load %.2fms vs rebuild %.0fms (%.0fx faster cold start)\n",
			r.Dataset, r.MinSupPct, r.Rules, r.FileBytes/1024,
			r.EncodeSeconds*1e3, r.LoadSeconds*1e3, r.RebuildSeconds*1e3, r.Speedup)
	}
}
