package bench

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"negmine/internal/gen"
)

// TestSnapshotBenchSmall exercises the snapshot benchmark end to end on a
// tiny dataset: every field must be populated and the round trip must not
// lose rules (RunSnapshotBench cross-checks that itself).
func TestSnapshotBenchSmall(t *testing.T) {
	ds, err := Short(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunSnapshotBench(ds, 2.0, 0.5, gen.Cumulate, 3, 0, 1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if row.Rules == 0 || row.FileBytes == 0 || row.EncodeSeconds <= 0 ||
		row.LoadSeconds <= 0 || row.RebuildSeconds <= 0 || row.Speedup <= 0 {
		t.Fatalf("degenerate snapshot bench row: %+v", row)
	}
	var buf bytes.Buffer
	PrintSnapshot(&buf, []*SnapshotBench{row})
	if buf.Len() == 0 {
		t.Fatal("PrintSnapshot wrote nothing")
	}
}

// TestSnapbenchSmoke is the CI startup-latency floor: booting from a .nsnap
// mmap must beat mining Tall from raw transactions by a wide margin. Gated
// on NEGMINE_SNAPBENCH (an integer overrides the default 10x floor), since
// a wall-clock ratio is meaningless on an arbitrarily loaded dev machine.
//
// The floor is deliberately conservative: on idle hardware the mmap load is
// 3-4 orders of magnitude faster than the mine. 10x catches a regression
// that reintroduces parsing or index rebuilding on the load path, not noise.
func TestSnapbenchSmoke(t *testing.T) {
	env := os.Getenv("NEGMINE_SNAPBENCH")
	if env == "" {
		t.Skip("set NEGMINE_SNAPBENCH=1 (or a speedup floor) to run the cold-start floor test")
	}
	floor := 10.0
	if v, err := strconv.Atoi(env); err == nil && v > 1 {
		floor = float64(v)
	}
	dir := t.TempDir()
	rows := make([]*SnapshotBench, 0, 2)
	for _, build := range []func(int, int64) (*Dataset, error){Short, Tall} {
		ds, err := build(10, 1)
		if err != nil {
			t.Fatal(err)
		}
		row, err := RunSnapshotBench(ds, 1.0, 0.5, gen.Cumulate, 0, 0, 3, dir)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	var buf bytes.Buffer
	PrintSnapshot(&buf, rows)
	t.Logf("\n%s", buf.String())

	tall := rows[1]
	if tall.Speedup < floor {
		t.Errorf("Tall mmap load is only %.1fx faster than mine-from-raw, below floor %.0fx — cold-start regression",
			tall.Speedup, floor)
	}
}
