package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"negmine/internal/cluster"
	"negmine/internal/gen"
	"negmine/internal/negative"
	"negmine/internal/report"
	"negmine/internal/rulestore"
	"negmine/internal/serve"
)

// ClusterRow is one measured cluster configuration: /score latency through
// a negrouter fanning out over width shards (each a real HTTP daemon on
// loopback), merged back into the single-node document.
type ClusterRow struct {
	Shards          int     `json:"shards"`
	DownShards      int     `json:"down_shards,omitempty"`
	Queries         int     `json:"queries"`
	ScoresPerSecond float64 `json:"scores_per_second"`
	ScoreP50Micros  float64 `json:"score_p50_us"`
	ScoreP99Micros  float64 `json:"score_p99_us"`
	// PartialRate is the fraction of responses that were HTTP 206 (a shard
	// had no routable replica). Zero for a healthy cluster.
	PartialRate float64 `json:"partial_rate,omitempty"`
}

// ClusterBench is the BENCH_serving.json cluster section: merged-query
// latency through the router at 1/2/4 shards, plus the degraded case — the
// widest cluster with one shard down, answering 206s instead of failing.
type ClusterBench struct {
	Dataset  string       `json:"dataset"`
	Rules    int          `json:"rules"`
	Rows     []ClusterRow `json:"rows"`
	Degraded ClusterRow   `json:"degraded"`
}

// RunClusterBench mines ds once, then serves the rule set through in-process
// shard daemons (real loopback HTTP) fronted by a cluster router, measuring
// merged /score latency at each width and with one shard down.
func RunClusterBench(ds *Dataset, minSupPct, minRI float64, genAlg gen.Algorithm, maxK, parallel, queries int) (*ClusterBench, error) {
	if queries < 1 {
		queries = 2000
	}
	opt := negative.Options{
		MinSupport: minSupPct / 100,
		MinRI:      minRI,
		Algorithm:  negative.Improved,
		Gen:        gen.Options{Algorithm: genAlg, MaxK: maxK},
	}
	opt.Count.Parallelism = parallel
	opt.Gen.Count.Parallelism = parallel
	res, err := negative.Mine(ds.DB, ds.Tax, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: mining %s for cluster: %w", ds.Name, err)
	}
	rep := report.BuildNegative(res, opt.MinSupport, opt.MinRI, ds.Tax.Name)
	st := rulestore.FromReport(rep)
	if st.Len() == 0 {
		return nil, fmt.Errorf("bench: %s mined no rules at minsup %.2f%%; lower the support", ds.Name, minSupPct)
	}

	vocab := map[string]struct{}{}
	st.Each(func(e rulestore.Entry) bool {
		for _, n := range e.Antecedent {
			vocab[n] = struct{}{}
		}
		return true
	})
	items := make([]string, 0, len(vocab))
	for n := range vocab {
		items = append(items, n)
	}
	sort.Strings(items)

	out := &ClusterBench{Dataset: ds.Name, Rules: st.Len()}
	for _, width := range []int{1, 2, 4} {
		row, err := runClusterWidth(ds, st, items, width, -1, queries)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	// Degraded: the widest cluster with one shard lacking any replica. The
	// router answers immediately-partial 206s for baskets that need it.
	deg, err := runClusterWidth(ds, st, items, 4, 0, queries)
	if err != nil {
		return nil, err
	}
	out.Degraded = *deg
	return out, nil
}

// runClusterWidth stands up width shard daemons (skipping downShard when
// ≥ 0), fronts them with a router, and measures /score through the merge
// path. Shard backends are real httptest servers so every query pays
// loopback HTTP to each fanned-out shard, like a deployed cluster would.
func runClusterWidth(ds *Dataset, st *rulestore.Store, items []string, width, downShard, queries int) (*ClusterRow, error) {
	rt, err := cluster.NewRouter(cluster.RouterConfig{Shards: width, ShardTimeout: 2 * time.Second})
	if err != nil {
		return nil, err
	}
	var backends []*httptest.Server
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()
	for k := 0; k < width; k++ {
		if k == downShard {
			continue
		}
		meta := serve.Meta{Source: fmt.Sprintf("bench %s shard %d/%d", ds.Name, k, width)}
		if width > 1 {
			shard := k
			meta.Keep = func(ante, cons []string) bool {
				return cluster.ShardOfAntecedent(ante, width) == shard
			}
		}
		snap := serve.BuildSnapshot(st, ds.Tax, meta)
		srv, err := serve.NewServer(context.Background(),
			func(context.Context) (*serve.Snapshot, error) { return snap, nil },
			serve.WithLogger(func(string, ...any) {}))
		if err != nil {
			return nil, err
		}
		backend := httptest.NewServer(srv.Handler())
		backends = append(backends, backend)
		err = rt.Pool().Heartbeat(cluster.Heartbeat{
			Node:       fmt.Sprintf("bench-%d-of-%d", k, width),
			Addr:       strings.TrimPrefix(backend.URL, "http://"),
			Shard:      k,
			Shards:     width,
			Generation: 1,
			Rules:      snap.Len(),
		})
		if err != nil {
			return nil, err
		}
	}
	handler := rt.Handler()

	row := &ClusterRow{Shards: width, Queries: queries}
	if downShard >= 0 {
		row.DownShards = 1
	}
	body := func(i int) string {
		return fmt.Sprintf(`{"basket":[%q,%q,%q]}`,
			items[i%len(items)], items[(i*7+1)%len(items)], items[(i*13+2)%len(items)])
	}
	do := func(i int) (int, error) {
		req := httptest.NewRequest(http.MethodPost, "/score", strings.NewReader(body(i)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusPartialContent {
			return 0, fmt.Errorf("bench: cluster /score (width %d): HTTP %d: %s", width, rec.Code, rec.Body.String())
		}
		return rec.Code, nil
	}
	// Warmup: connections, scratch pools, hot-item caches.
	for i := 0; i < 64; i++ {
		if _, err := do(i); err != nil {
			return nil, err
		}
	}
	lat := make([]time.Duration, queries)
	partials := 0
	start := time.Now()
	for i := 0; i < queries; i++ {
		q := time.Now()
		code, err := do(i)
		if err != nil {
			return nil, err
		}
		lat[i] = time.Since(q)
		if code == http.StatusPartialContent {
			partials++
		}
	}
	total := time.Since(start)
	row.ScoresPerSecond = float64(queries) / total.Seconds()
	p50, p99, _ := latencyQuantiles(lat)
	row.ScoreP50Micros = p50.Seconds() * 1e6
	row.ScoreP99Micros = p99.Seconds() * 1e6
	row.PartialRate = float64(partials) / float64(queries)
	return row, nil
}

// PrintCluster renders the cluster benchmark as a human-readable summary.
func PrintCluster(w io.Writer, rows []*ClusterBench) {
	for _, r := range rows {
		fmt.Fprintf(w, "%s: %d rules through the router\n", r.Dataset, r.Rules)
		for _, row := range r.Rows {
			fmt.Fprintf(w, "  %d shard(s): %.0f merged scores/s, p50 %.0fµs p99 %.0fµs\n",
				row.Shards, row.ScoresPerSecond, row.ScoreP50Micros, row.ScoreP99Micros)
		}
		d := r.Degraded
		fmt.Fprintf(w, "  %d shards, %d down: %.0f scores/s, p50 %.0fµs p99 %.0fµs, %.0f%% partial (206)\n",
			d.Shards, d.DownShards, d.ScoresPerSecond, d.ScoreP50Micros, d.ScoreP99Micros, d.PartialRate*100)
	}
}
