package bench

import (
	"bytes"
	"os"
	"strconv"
	"testing"
	"time"

	"negmine/internal/gen"
)

// TestServebenchSmoke is the CI performance floor for the query path: it
// mines the paper's Short and Tall datasets, builds both serving snapshots,
// runs the full serving benchmark, and fails when Tall's lookup throughput
// drops below a checked-in floor. Gated on NEGMINE_SERVEBENCH (set by the
// servebench-smoke CI job; an integer overrides the default floor), since a
// throughput assertion is meaningless on an arbitrarily loaded dev machine.
//
// The floor is deliberately far below the ~200k+ lookups/sec the arena
// layout reaches on idle hardware, but far above the ~650/sec the old
// per-query map/sort layout managed on Tall — it catches a regression to
// the old complexity class, not scheduler noise.
func TestServebenchSmoke(t *testing.T) {
	env := os.Getenv("NEGMINE_SERVEBENCH")
	if env == "" {
		t.Skip("set NEGMINE_SERVEBENCH=1 (or a lookups/sec floor) to run the serving floor test")
	}
	floor := 20000.0
	if v, err := strconv.Atoi(env); err == nil && v > 1 {
		floor = float64(v)
	}

	rows := make([]*ServingBench, 0, 2)
	for _, build := range []func(int, int64) (*Dataset, error){Short, Tall} {
		ds, err := build(10, 1)
		if err != nil {
			t.Fatal(err)
		}
		row, err := RunServingBench(ds, 1.0, 0.5, gen.Cumulate, 0, 0, 1, 20000)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	var buf bytes.Buffer
	PrintServing(&buf, rows)
	t.Logf("\n%s", buf.String())

	tall := rows[1]
	if tall.LookupsPerSecond < floor {
		t.Errorf("Tall lookups/sec = %.0f, below floor %.0f — query-path regression",
			tall.LookupsPerSecond, floor)
	}
	for _, r := range rows {
		if r.LookupAllocsPerOp > 0.5 {
			t.Errorf("%s lookup allocs/op = %.2f, want ~0 (steady state must not allocate)",
				r.Dataset, r.LookupAllocsPerOp)
		}
		if r.ScoreAllocsPerOp > 0.5 {
			t.Errorf("%s score allocs/op = %.2f, want ~0", r.Dataset, r.ScoreAllocsPerOp)
		}
		if r.CacheHitRate <= 0 {
			t.Errorf("%s cache hit rate = %v, want > 0 after a warmed run", r.Dataset, r.CacheHitRate)
		}
	}
}

func TestLatencyQuantiles(t *testing.T) {
	lat := make([]time.Duration, 1000)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Microsecond
	}
	p50, p99, p999 := latencyQuantiles(lat)
	if p50 != 500*time.Microsecond || p99 != 990*time.Microsecond || p999 != 999*time.Microsecond {
		t.Fatalf("quantiles = %v %v %v", p50, p99, p999)
	}
	if a, b, c := latencyQuantiles(nil); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty sample should yield zeros")
	}
}
