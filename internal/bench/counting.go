package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"negmine/internal/count"
	"negmine/internal/gen"
	"negmine/internal/item"
	"negmine/internal/negative"
)

// CountingBackendRow is one backend's measurement of the Improved
// algorithm's headline pass: counting negative candidates of every size in
// one scan.
type CountingBackendRow struct {
	Dataset    string  `json:"dataset"`
	Backend    string  `json:"backend"`
	Groups     int     `json:"groups"`     // candidate size groups in the pass
	Candidates int     `json:"candidates"` // total candidates counted
	Seconds    float64 `json:"seconds"`    // best-of-reps wall time of the pass
}

// CountingComparison is the BENCH_counting.json payload for one dataset:
// both backends on the identical pass, plus the derived speedup.
type CountingComparison struct {
	Dataset   string               `json:"dataset"`
	MinSupPct float64              `json:"minsup_pct"`
	MinRI     float64              `json:"minri"`
	Parallel  int                  `json:"parallel"`
	Rows      []CountingBackendRow `json:"rows"`
	// Speedup is hashtree seconds / bitmap seconds (> 1 means bitmap wins).
	Speedup float64 `json:"speedup_bitmap_over_hashtree"`
}

// RunCountingBackends isolates the Improved algorithm's negative counting
// pass on ds and times it under the hash-tree and bitmap backends. Stage 1
// (large itemsets) and candidate generation run once; the timed region is
// exactly the count.MultiTransformed call the miner issues, repeated reps
// times with the best time kept. Both backends count the identical
// candidate groups with the identical transforms, so the comparison is
// pure engine throughput.
func RunCountingBackends(ds *Dataset, minSupPct, minRI float64, genAlg gen.Algorithm, maxK, parallel, reps int) (*CountingComparison, error) {
	if reps < 1 {
		reps = 1
	}
	gopt := gen.Options{MinSupport: minSupPct / 100, Algorithm: genAlg, MaxK: maxK}
	gopt.Count.Parallelism = parallel
	large, err := gen.Mine(ds.DB, ds.Tax, gopt)
	if err != nil {
		return nil, fmt.Errorf("bench: stage 1 on %s: %w", ds.Name, err)
	}
	if len(large.Levels) < 2 {
		return nil, fmt.Errorf("bench: %s has no large itemsets beyond L1 at minsup %.2f%%; lower the support", ds.Name, minSupPct)
	}
	gtax := ds.Tax.Restrict(func(x item.Item) bool {
		return large.Table.Contains(item.Itemset{x})
	})
	cands := negative.GenerateCandidates(large.Levels, large.Table, gtax, minSupPct/100, minRI, nil)
	if len(cands) == 0 {
		return nil, fmt.Errorf("bench: %s generated no negative candidates at minsup %.2f%%", ds.Name, minSupPct)
	}

	// Group by itemset size exactly as the miner's counting pass does.
	bySize := map[int][]item.Itemset{}
	for _, c := range cands {
		bySize[c.Set.Len()] = append(bySize[c.Set.Len()], c.Set)
	}
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	groups := make([][]item.Itemset, len(sizes))
	transforms := make([]count.TransformInto, len(sizes))
	for gi, s := range sizes {
		groups[gi] = bySize[s]
		transforms[gi] = gen.ExtendTransform(ds.Tax, bySize[s])
	}

	cmp := &CountingComparison{
		Dataset:   ds.Name,
		MinSupPct: minSupPct,
		MinRI:     minRI,
		Parallel:  parallel,
	}
	var baseline [][]int
	for _, backend := range []count.Backend{count.BackendHashTree, count.BackendBitmap} {
		cnt := count.Options{Parallelism: parallel, Backend: backend, Tax: ds.Tax}
		best := time.Duration(0)
		for r := 0; r < reps; r++ {
			start := time.Now()
			counts, err := count.MultiTransformed(ds.DB, groups, transforms, cnt)
			elapsed := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench: %s backend on %s: %w", backend, ds.Name, err)
			}
			if baseline == nil {
				baseline = counts
			} else if err := sameCounts(baseline, counts); err != nil {
				return nil, fmt.Errorf("bench: %s backend disagrees on %s: %w", backend, ds.Name, err)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		cmp.Rows = append(cmp.Rows, CountingBackendRow{
			Dataset:    ds.Name,
			Backend:    backend.String(),
			Groups:     len(groups),
			Candidates: len(cands),
			Seconds:    best.Seconds(),
		})
	}
	if bm := cmp.Rows[1].Seconds; bm > 0 {
		cmp.Speedup = cmp.Rows[0].Seconds / bm
	}
	return cmp, nil
}

// sameCounts verifies two backends produced identical count matrices — the
// benchmark doubles as a large-scale equivalence check.
func sameCounts(a, b [][]int) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d groups", len(a), len(b))
	}
	for g := range a {
		if len(a[g]) != len(b[g]) {
			return fmt.Errorf("group %d: %d vs %d candidates", g, len(a[g]), len(b[g]))
		}
		for i := range a[g] {
			if a[g][i] != b[g][i] {
				return fmt.Errorf("group %d candidate %d: %d vs %d", g, i, a[g][i], b[g][i])
			}
		}
	}
	return nil
}

// WriteCountingJSON renders backend comparisons as the indented JSON stored
// in BENCH_counting.json.
func WriteCountingJSON(w io.Writer, scale int, cmps []*CountingComparison) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Description string                `json:"description"`
		Scale       int                   `json:"scale"`
		Comparisons []*CountingComparison `json:"comparisons"`
	}{
		Description: "Improved-algorithm negative counting pass: hash-tree vs vertical bitmap backend (best-of-reps wall time; produced by cmd/experiments -countbench)",
		Scale:       scale,
		Comparisons: cmps,
	})
}

// PrintCounting renders a backend comparison as a human-readable table.
func PrintCounting(w io.Writer, cmps []*CountingComparison) {
	for _, c := range cmps {
		fmt.Fprintf(w, "%s (minsup %.2f%%, %d workers): ", c.Dataset, c.MinSupPct, c.Parallel)
		for i, r := range c.Rows {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s %.4fs (%d candidates)", r.Backend, r.Seconds, r.Candidates)
		}
		fmt.Fprintf(w, " → bitmap speedup %.2fx\n", c.Speedup)
	}
}
