package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"negmine/internal/item"
	"negmine/internal/negative"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// PaperExample reconstructs the paper's §2.1.1 worked example (Figure 2,
// Tables 1 and 2) as a concrete 1,000-transaction database: supports are the
// paper's values scaled 1:100, with pair overlaps chosen so the numbers are
// realizable ({frozen yogurt, bottled water} co-occurs in 142 baskets).
func PaperExample() (*taxonomy.Taxonomy, *txdb.MemDB, error) {
	b := taxonomy.NewBuilder()
	for _, e := range [][2]string{
		{"noncarbonated", "bottledjuices"},
		{"noncarbonated", "bottledwater"},
		{"bottledwater", "perrier"},
		{"bottledwater", "evian"},
		{"desserts", "frozenyogurt"},
		{"desserts", "icecreams"},
		{"frozenyogurt", "bryers"},
		{"frozenyogurt", "healthychoice"},
	} {
		b.Link(e[0], e[1])
	}
	tax, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	id := func(n string) item.Item {
		x, _ := tax.Dictionary().Lookup(n)
		return x
	}
	db := &txdb.MemDB{}
	add := func(n int, names ...string) {
		for i := 0; i < n; i++ {
			items := make([]item.Item, len(names))
			for j, nm := range names {
				items[j] = id(nm)
			}
			db.Append(txdb.Transaction{TID: int64(db.Count() + 1), Items: item.New(items...)})
		}
	}
	add(75, "bryers", "evian")
	add(125, "bryers")
	add(42, "healthychoice", "evian")
	add(25, "healthychoice", "perrier")
	add(33, "healthychoice")
	add(3, "evian")
	add(55, "perrier")
	add(642) // empty fillers to reach 1,000 transactions
	return tax, db, nil
}

// ExampleReport holds the worked-example outputs corresponding to the
// paper's Tables 1 and 2.
type ExampleReport struct {
	Tax    *taxonomy.Taxonomy
	Result *negative.Result
	// Supports is Table 1: item/category → absolute support.
	Supports []item.CountedSet
	// Pairs is Table 2: candidate negative itemsets with expected and
	// actual support (absolute, out of N).
	Pairs []negative.Itemset
	N     int
}

// RunPaperExample mines the worked example with the paper's parameters
// (MinSup 4,000 of 100,000 → 0.04; MinRI 0.5).
func RunPaperExample() (*ExampleReport, error) {
	tax, db, err := PaperExample()
	if err != nil {
		return nil, err
	}
	res, err := negative.Mine(db, tax, negative.Options{
		MinSupport: 0.04,
		MinRI:      0.5,
	})
	if err != nil {
		return nil, err
	}
	rep := &ExampleReport{Tax: tax, Result: res, Pairs: res.Negatives, N: db.Count()}
	for _, name := range []string{"bryers", "healthychoice", "evian", "perrier",
		"frozenyogurt", "bottledwater"} {
		id, _ := tax.Dictionary().Lookup(name)
		c, _ := res.Large.Table.Count(item.New(id))
		rep.Supports = append(rep.Supports, item.CountedSet{Set: item.New(id), Count: c})
	}
	fy, _ := tax.Dictionary().Lookup("frozenyogurt")
	bw, _ := tax.Dictionary().Lookup("bottledwater")
	c, _ := res.Large.Table.Count(item.New(fy, bw))
	rep.Supports = append(rep.Supports, item.CountedSet{Set: item.New(fy, bw), Count: c})
	return rep, nil
}

// Print renders the worked example in the layout of Tables 1 and 2 plus the
// resulting rules.
func (r *ExampleReport) Print(w io.Writer) {
	name := r.Tax.Name
	fmt.Fprintln(w, "Table 1 — supports (×100 vs the paper's 100,000-transaction scale):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, cs := range r.Supports {
		fmt.Fprintf(tw, "  %s\t%d\n", cs.Set.Format(name), cs.Count)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nTable 2 — negative itemsets (expected vs actual):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  itemset\texpected\tactual")
	pairs := append([]negative.Itemset(nil), r.Pairs...)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Set.Compare(pairs[j].Set) < 0 })
	for _, p := range pairs {
		fmt.Fprintf(tw, "  %s\t%.0f\t%d\n", p.Set.Format(name), p.Expected*float64(p.N), p.Count)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nNegative rules (MinSup 4%, MinRI 0.5):")
	for _, rule := range r.Result.Rules {
		fmt.Fprintf(w, "  %s\n", rule.Format(name))
	}
}
