package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"negmine/internal/gen"
	"negmine/internal/govern"
	"negmine/internal/negative"
	"negmine/internal/report"
	"negmine/internal/rulestore"
	"negmine/internal/serve"
)

// OverloadLevel is one offered-load step of the overload benchmark: the
// daemon's behavior when clients offer Multiplier× its configured -max-rps.
type OverloadLevel struct {
	Multiplier float64 `json:"multiplier"`
	OfferedRPS float64 `json:"offered_rps"`
	Requests   int     `json:"requests"`
	Admitted   int     `json:"admitted"` // 200 responses
	Shed       int     `json:"shed"`     // 503 responses (Retry-After attached)
	ShedRate   float64 `json:"shed_rate"`

	// Latency of admitted requests only — the shed path is near-free by
	// design, so folding it in would flatter the numbers.
	AdmittedP50Micros float64 `json:"admitted_p50_us"`
	AdmittedP99Micros float64 `json:"admitted_p99_us"`
}

// OverloadBench is the overload section of BENCH_serving.json: /score driven
// at 1×, 2× and 4× the governor's token-bucket rate, showing shed rate rising
// with offered load while admitted latency stays flat — the graceful half of
// graceful degradation.
type OverloadBench struct {
	Dataset        string          `json:"dataset"`
	MaxRPS         float64         `json:"max_rps"`
	MaxConcurrent  int             `json:"max_concurrent"`
	SecondsPerStep float64         `json:"seconds_per_level"`
	Levels         []OverloadLevel `json:"levels"`
}

// overloadMultipliers are the offered-load steps relative to -max-rps.
var overloadMultipliers = []float64{1, 2, 4}

// RunOverloadBench mines ds, serves the result behind an admission governor
// rate-limited to maxRPS, and measures each load level for perLevel.
func RunOverloadBench(ds *Dataset, minSupPct, minRI float64, genAlg gen.Algorithm, maxK, parallel int, maxRPS float64, perLevel time.Duration) (*OverloadBench, error) {
	if maxRPS <= 0 {
		maxRPS = 200
	}
	if perLevel <= 0 {
		perLevel = 2 * time.Second
	}
	opt := negative.Options{
		MinSupport: minSupPct / 100,
		MinRI:      minRI,
		Algorithm:  negative.Improved,
		Gen:        gen.Options{Algorithm: genAlg, MaxK: maxK},
	}
	opt.Count.Parallelism = parallel
	opt.Gen.Count.Parallelism = parallel
	res, err := negative.Mine(ds.DB, ds.Tax, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: mining %s for overload: %w", ds.Name, err)
	}
	rep := report.BuildNegative(res, opt.MinSupport, opt.MinRI, ds.Tax.Name)
	st := rulestore.FromReport(rep)
	if st.Len() == 0 {
		return nil, fmt.Errorf("bench: %s mined no rules at minsup %.2f%%; lower the support", ds.Name, minSupPct)
	}

	const maxConcurrent = 64
	// A small burst (50ms of tokens) keeps the measurement about the steady
	// rate: the default burst of one full second of tokens would absorb a
	// short measurement window entirely and report zero shedding.
	gov := govern.NewController(govern.Config{
		MaxRPS:        maxRPS,
		Burst:         math.Max(1, maxRPS/20),
		MaxConcurrent: maxConcurrent,
	})
	srv, err := serve.NewServer(context.Background(),
		func(context.Context) (*serve.Snapshot, error) {
			return serve.BuildSnapshot(st, ds.Tax, serve.Meta{Source: "bench " + ds.Name}), nil
		},
		serve.WithLogger(func(string, ...any) {}),
		serve.WithGovernor(gov),
		serve.WithRequestTimeout(time.Second))
	if err != nil {
		return nil, err
	}
	h := srv.Handler()

	// One fixed 3-item basket from the rule vocabulary: the benchmark varies
	// load, not query shape.
	var items []string
	st.Each(func(e rulestore.Entry) bool {
		items = append(items, e.Antecedent...)
		if len(items) < 3 {
			return true
		}
		return false
	})
	for len(items) < 3 {
		items = append(items, items[len(items)-1])
	}
	body := fmt.Sprintf(`{"basket":[%q,%q,%q]}`, items[0], items[1], items[2])

	out := &OverloadBench{
		Dataset:        ds.Name,
		MaxRPS:         maxRPS,
		MaxConcurrent:  maxConcurrent,
		SecondsPerStep: perLevel.Seconds(),
	}
	for _, mult := range overloadMultipliers {
		lvl, err := driveOverloadLevel(h, body, mult, mult*maxRPS, perLevel)
		if err != nil {
			return nil, fmt.Errorf("bench: overload %gx on %s: %w", mult, ds.Name, err)
		}
		out.Levels = append(out.Levels, *lvl)
	}
	return out, nil
}

// driveOverloadLevel offers paced load at offeredRPS for d and tallies the
// outcome. Pacing is open-loop per worker (a fixed send interval, skipped
// ticks dropped rather than banked) so a slow response does not silently
// lower the offered rate the way closed-loop clients do.
func driveOverloadLevel(h http.Handler, body string, mult, offeredRPS float64, d time.Duration) (*OverloadLevel, error) {
	workers := 8
	interval := time.Duration(float64(workers) / offeredRPS * float64(time.Second))
	deadline := time.Now().Add(d)

	var (
		mu       sync.Mutex
		admitted []time.Duration
		shed     int
		badCode  int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lat []time.Duration
			sheds := 0
			next := time.Now()
			for time.Now().Before(deadline) {
				start := time.Now()
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/score", strings.NewReader(body)))
				switch rec.Code {
				case http.StatusOK:
					lat = append(lat, time.Since(start))
				case http.StatusServiceUnavailable:
					sheds++
				default:
					mu.Lock()
					if badCode == 0 {
						badCode = rec.Code
					}
					mu.Unlock()
					return
				}
				next = next.Add(interval)
				if sleep := time.Until(next); sleep > 0 {
					time.Sleep(sleep)
				} else {
					next = time.Now() // behind schedule: drop the missed ticks
				}
			}
			mu.Lock()
			admitted = append(admitted, lat...)
			shed += sheds
			mu.Unlock()
		}()
	}
	wg.Wait()
	if badCode != 0 {
		return nil, fmt.Errorf("unexpected status %d (want only 200 or 503)", badCode)
	}

	lvl := &OverloadLevel{
		Multiplier: mult,
		OfferedRPS: offeredRPS,
		Requests:   len(admitted) + shed,
		Admitted:   len(admitted),
		Shed:       shed,
	}
	if lvl.Requests > 0 {
		lvl.ShedRate = float64(shed) / float64(lvl.Requests)
	}
	p50, p99, _ := latencyQuantiles(admitted)
	lvl.AdmittedP50Micros = p50.Seconds() * 1e6
	lvl.AdmittedP99Micros = p99.Seconds() * 1e6
	return lvl, nil
}

// PrintOverload renders overload benchmarks as a human-readable summary.
func PrintOverload(w io.Writer, rows []*OverloadBench) {
	for _, r := range rows {
		fmt.Fprintf(w, "%s (max-rps %.0f, %gs/level):\n", r.Dataset, r.MaxRPS, r.SecondsPerStep)
		for _, l := range r.Levels {
			fmt.Fprintf(w, "  %gx (%.0f rps offered): %d reqs, shed %.1f%%; admitted p50 %.1fµs p99 %.1fµs\n",
				l.Multiplier, l.OfferedRPS, l.Requests, l.ShedRate*100,
				l.AdmittedP50Micros, l.AdmittedP99Micros)
		}
	}
}
