package bench

import (
	"bytes"
	"testing"

	"negmine/internal/gen"
)

// TestClusterBenchSmoke runs the sharded-router benchmark end to end on a
// small Short dataset: every width must complete its queries with no
// partials, and the degraded run (one of four shards down) must keep
// answering — some responses 206 — rather than fail.
func TestClusterBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench stands up live HTTP shards; skipped in -short")
	}
	ds, err := Short(25, 1)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunClusterBench(ds, 1.0, 0.5, gen.Cumulate, 0, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if row.Rules == 0 {
		t.Fatal("cluster bench mined no rules")
	}
	if len(row.Rows) != 3 {
		t.Fatalf("got %d healthy rows, want 3 (widths 1/2/4)", len(row.Rows))
	}
	for i, want := range []int{1, 2, 4} {
		r := row.Rows[i]
		if r.Shards != want {
			t.Errorf("row %d width = %d, want %d", i, r.Shards, want)
		}
		if r.PartialRate != 0 {
			t.Errorf("healthy width %d: partial rate %.3f, want 0", r.Shards, r.PartialRate)
		}
		if r.ScoresPerSecond <= 0 || r.ScoreP99Micros <= 0 {
			t.Errorf("width %d: empty measurement %+v", r.Shards, r)
		}
	}
	d := row.Degraded
	if d.Shards != 4 || d.DownShards != 1 {
		t.Fatalf("degraded config = %d shards, %d down; want 4/1", d.Shards, d.DownShards)
	}
	if d.ScoresPerSecond <= 0 {
		t.Fatal("degraded cluster stopped answering")
	}
	if d.PartialRate <= 0 {
		t.Fatal("degraded run saw no 206s — the down shard was never needed, bench is vacuous")
	}

	var buf bytes.Buffer
	PrintCluster(&buf, []*ClusterBench{row})
	t.Logf("\n%s", buf.String())
}
