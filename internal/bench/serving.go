package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"negmine/internal/gen"
	"negmine/internal/negative"
	"negmine/internal/report"
	"negmine/internal/rulestore"
	"negmine/internal/serve"
)

// ServingBench is the BENCH_serving.json payload for one dataset: how long
// the serving snapshot takes to build from a mined rule set, and how fast
// item lookups (the /rules hot path) run against it.
type ServingBench struct {
	Dataset      string  `json:"dataset"`
	MinSupPct    float64 `json:"minsup_pct"`
	MinRI        float64 `json:"minri"`
	Rules        int     `json:"rules"`
	IndexedItems int     `json:"indexed_items"`

	// Snapshot build: best-of-reps wall time for BuildSnapshot (store →
	// immutable indexed snapshot), the work a /reload pays beyond mining.
	BuildSeconds float64 `json:"snapshot_build_seconds"`

	// Lookup benchmark: single-goroutine QueryItem calls over the rule
	// set's item vocabulary.
	Lookups          int     `json:"lookups"`
	LookupsPerSecond float64 `json:"lookups_per_second"`
	LookupP50Micros  float64 `json:"lookup_p50_us"`
	LookupP99Micros  float64 `json:"lookup_p99_us"`

	// Score benchmark: /score's basket evaluation with 3-item baskets.
	Scores          int     `json:"scores"`
	ScoresPerSecond float64 `json:"scores_per_second"`
	ScoreP99Micros  float64 `json:"score_p99_us"`
}

// RunServingBench mines ds once, then measures snapshot construction and
// query throughput/latency on the result. reps controls best-of repetitions
// for the build measurement; lookups is the number of timed queries.
func RunServingBench(ds *Dataset, minSupPct, minRI float64, genAlg gen.Algorithm, maxK, parallel, reps, lookups int) (*ServingBench, error) {
	if reps < 1 {
		reps = 1
	}
	if lookups < 1 {
		lookups = 10000
	}
	opt := negative.Options{
		MinSupport: minSupPct / 100,
		MinRI:      minRI,
		Algorithm:  negative.Improved,
		Gen:        gen.Options{Algorithm: genAlg, MaxK: maxK},
	}
	opt.Count.Parallelism = parallel
	opt.Gen.Count.Parallelism = parallel
	res, err := negative.Mine(ds.DB, ds.Tax, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: mining %s for serving: %w", ds.Name, err)
	}
	rep := report.BuildNegative(res, opt.MinSupport, opt.MinRI, ds.Tax.Name)
	st := rulestore.FromReport(rep)
	if st.Len() == 0 {
		return nil, fmt.Errorf("bench: %s mined no rules at minsup %.2f%%; lower the support", ds.Name, minSupPct)
	}

	meta := serve.Meta{Source: "bench " + ds.Name, MinSupport: opt.MinSupport, MinRI: opt.MinRI}
	var snap *serve.Snapshot
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		snap = serve.BuildSnapshot(st, ds.Tax, meta)
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	info := snap.Info()

	// Query vocabulary: every item named by a rule, cycled deterministically.
	vocab := map[string]struct{}{}
	st.Each(func(e rulestore.Entry) bool {
		for _, n := range e.Antecedent {
			vocab[n] = struct{}{}
		}
		for _, n := range e.Consequent {
			vocab[n] = struct{}{}
		}
		return true
	})
	items := make([]string, 0, len(vocab))
	for n := range vocab {
		items = append(items, n)
	}
	sort.Strings(items)

	out := &ServingBench{
		Dataset:      ds.Name,
		MinSupPct:    minSupPct,
		MinRI:        minRI,
		Rules:        info.Rules,
		IndexedItems: info.IndexedItems,
		BuildSeconds: best.Seconds(),
	}

	// Item lookups (the /rules hot path).
	lat := make([]time.Duration, lookups)
	start := time.Now()
	for i := 0; i < lookups; i++ {
		q := time.Now()
		snap.QueryItem(items[i%len(items)], minRI, 0)
		lat[i] = time.Since(q)
	}
	total := time.Since(start)
	out.Lookups = lookups
	out.LookupsPerSecond = float64(lookups) / total.Seconds()
	p50, p99 := latencyQuantiles(lat)
	out.LookupP50Micros = p50.Seconds() * 1e6
	out.LookupP99Micros = p99.Seconds() * 1e6

	// Basket scoring (the /score hot path), 3-item baskets over the vocab.
	scores := lookups / 2
	if scores < 1 {
		scores = 1
	}
	lat = lat[:0]
	start = time.Now()
	for i := 0; i < scores; i++ {
		basket := []string{
			items[i%len(items)],
			items[(i*7+1)%len(items)],
			items[(i*13+2)%len(items)],
		}
		q := time.Now()
		snap.Score(basket, minRI, 0)
		lat = append(lat, time.Since(q))
	}
	total = time.Since(start)
	out.Scores = scores
	out.ScoresPerSecond = float64(scores) / total.Seconds()
	_, p99 = latencyQuantiles(lat)
	out.ScoreP99Micros = p99.Seconds() * 1e6
	return out, nil
}

// latencyQuantiles returns the exact p50 and p99 of the sample.
func latencyQuantiles(lat []time.Duration) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.99)
}

// WriteServingJSON renders serving benchmarks (and, when run, the overload
// and ingest benchmarks) as the indented JSON stored in BENCH_serving.json.
func WriteServingJSON(w io.Writer, scale int, rows []*ServingBench, overload []*OverloadBench, ingest []*IngestBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Description string           `json:"description"`
		Scale       int              `json:"scale"`
		Benches     []*ServingBench  `json:"benches"`
		Overload    []*OverloadBench `json:"overload,omitempty"`
		Ingest      []*IngestBench   `json:"ingest,omitempty"`
	}{
		Description: "Serving layer: snapshot build time and QueryItem/Score throughput and latency on mined rule sets (produced by cmd/experiments -servebench; overload section by -overloadbench; ingest section by -ingestbench)",
		Scale:       scale,
		Benches:     rows,
		Overload:    overload,
		Ingest:      ingest,
	})
}

// PrintServing renders serving benchmarks as a human-readable summary.
func PrintServing(w io.Writer, rows []*ServingBench) {
	for _, r := range rows {
		fmt.Fprintf(w, "%s (minsup %.2f%%): %d rules, %d items; build %.2fms; lookups %.0f/s p50 %.1fµs p99 %.1fµs; score %.0f/s p99 %.1fµs\n",
			r.Dataset, r.MinSupPct, r.Rules, r.IndexedItems,
			r.BuildSeconds*1e3, r.LookupsPerSecond, r.LookupP50Micros, r.LookupP99Micros,
			r.ScoresPerSecond, r.ScoreP99Micros)
	}
}
