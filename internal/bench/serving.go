package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"negmine/internal/gen"
	"negmine/internal/negative"
	"negmine/internal/report"
	"negmine/internal/rulestore"
	"negmine/internal/serve"
)

// ServingBench is the BENCH_serving.json payload for one dataset: how long
// the serving snapshot takes to build from a mined rule set, how fast item
// lookups (the /rules hot path) and basket scoring (the /score hot path)
// run against it, and what the arena/bitmap layout costs in memory.
type ServingBench struct {
	Dataset      string  `json:"dataset"`
	MinSupPct    float64 `json:"minsup_pct"`
	MinRI        float64 `json:"minri"`
	Rules        int     `json:"rules"`
	IndexedItems int     `json:"indexed_items"`

	// Snapshot build: best-of-reps wall time for BuildSnapshot (store →
	// immutable indexed snapshot), the work a /reload pays beyond mining,
	// and the resident size of the resulting layout.
	BuildSeconds float64 `json:"snapshot_build_seconds"`
	ArenaBytes   int64   `json:"arena_bytes"`
	IndexBytes   int64   `json:"index_bytes"`

	// Lookup benchmark: single-goroutine QueryItem calls over the rule
	// set's item vocabulary, after one warmup pass that fills the hot-item
	// cache (so the steady state measured here is the served steady state).
	Lookups           int     `json:"lookups"`
	LookupsPerSecond  float64 `json:"lookups_per_second"`
	LookupNsPerOp     float64 `json:"lookup_ns_per_op"`
	LookupAllocsPerOp float64 `json:"lookup_allocs_per_op"`
	LookupP50Micros   float64 `json:"lookup_p50_us"`
	LookupP99Micros   float64 `json:"lookup_p99_us"`
	LookupP999Micros  float64 `json:"lookup_p999_us"`
	CacheHitRate      float64 `json:"cache_hit_rate"`

	// Score benchmark: /score's basket evaluation with 3-item baskets.
	Scores           int     `json:"scores"`
	ScoresPerSecond  float64 `json:"scores_per_second"`
	ScoreNsPerOp     float64 `json:"score_ns_per_op"`
	ScoreAllocsPerOp float64 `json:"score_allocs_per_op"`
	ScoreP99Micros   float64 `json:"score_p99_us"`
	ScoreP999Micros  float64 `json:"score_p999_us"`
}

// RunServingBench mines ds once, then measures snapshot construction and
// query throughput/latency on the result. reps controls best-of repetitions
// for the build measurement; lookups is the number of timed queries.
func RunServingBench(ds *Dataset, minSupPct, minRI float64, genAlg gen.Algorithm, maxK, parallel, reps, lookups int) (*ServingBench, error) {
	if reps < 1 {
		reps = 1
	}
	if lookups < 1 {
		lookups = 10000
	}
	opt := negative.Options{
		MinSupport: minSupPct / 100,
		MinRI:      minRI,
		Algorithm:  negative.Improved,
		Gen:        gen.Options{Algorithm: genAlg, MaxK: maxK},
	}
	opt.Count.Parallelism = parallel
	opt.Gen.Count.Parallelism = parallel
	res, err := negative.Mine(ds.DB, ds.Tax, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: mining %s for serving: %w", ds.Name, err)
	}
	rep := report.BuildNegative(res, opt.MinSupport, opt.MinRI, ds.Tax.Name)
	st := rulestore.FromReport(rep)
	if st.Len() == 0 {
		return nil, fmt.Errorf("bench: %s mined no rules at minsup %.2f%%; lower the support", ds.Name, minSupPct)
	}

	meta := serve.Meta{Source: "bench " + ds.Name, MinSupport: opt.MinSupport, MinRI: opt.MinRI}
	var snap *serve.Snapshot
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		snap = serve.BuildSnapshot(st, ds.Tax, meta)
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	info := snap.Info()

	// Query vocabulary: every item named by a rule, cycled deterministically.
	vocab := map[string]struct{}{}
	st.Each(func(e rulestore.Entry) bool {
		for _, n := range e.Antecedent {
			vocab[n] = struct{}{}
		}
		for _, n := range e.Consequent {
			vocab[n] = struct{}{}
		}
		return true
	})
	items := make([]string, 0, len(vocab))
	for n := range vocab {
		items = append(items, n)
	}
	sort.Strings(items)

	out := &ServingBench{
		Dataset:      ds.Name,
		MinSupPct:    minSupPct,
		MinRI:        minRI,
		Rules:        info.Rules,
		IndexedItems: info.IndexedItems,
		BuildSeconds: best.Seconds(),
		ArenaBytes:   info.ArenaBytes,
		IndexBytes:   info.IndexBytes,
	}

	// Item lookups (the /rules hot path). One untimed pass over the
	// vocabulary fills the hot-item cache and the scratch pools; the timed
	// loop then measures the served steady state through the same zero-copy
	// QueryShared call the /rules handler uses.
	ctx := context.Background()
	var sink int
	for _, it := range items {
		ids, _ := snap.QueryShared(ctx, it, minRI, 0)
		sink += len(ids)
	}
	statsBefore := snap.CacheStats()

	lat := make([]time.Duration, lookups)
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for i := 0; i < lookups; i++ {
		q := time.Now()
		ids, _ := snap.QueryShared(ctx, items[i%len(items)], minRI, 0)
		sink += len(ids)
		lat[i] = time.Since(q)
	}
	_ = sink
	total := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	out.Lookups = lookups
	out.LookupsPerSecond = float64(lookups) / total.Seconds()
	out.LookupNsPerOp = float64(total.Nanoseconds()) / float64(lookups)
	out.LookupAllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(lookups)
	p50, p99, p999 := latencyQuantiles(lat)
	out.LookupP50Micros = p50.Seconds() * 1e6
	out.LookupP99Micros = p99.Seconds() * 1e6
	out.LookupP999Micros = p999.Seconds() * 1e6
	if after := snap.CacheStats(); after != nil && statsBefore != nil {
		hits := after.Hits - statsBefore.Hits
		misses := after.Misses - statsBefore.Misses
		if hits+misses > 0 {
			out.CacheHitRate = float64(hits) / float64(hits+misses)
		}
	}

	// Basket scoring (the /score hot path), 3-item baskets over the vocab.
	scores := lookups / 2
	if scores < 1 {
		scores = 1
	}
	basket := make([]string, 3)
	fill := func(i int) {
		basket[0] = items[i%len(items)]
		basket[1] = items[(i*7+1)%len(items)]
		basket[2] = items[(i*13+2)%len(items)]
	}
	fill(0)
	dst := make([]serve.RuleID, 0, snap.Len())
	dst = snap.Score(dst[:0], basket, minRI, 0) // warm the scratch pool
	lat = lat[:scores]
	runtime.ReadMemStats(&msBefore)
	start = time.Now()
	for i := 0; i < scores; i++ {
		fill(i)
		q := time.Now()
		dst = snap.Score(dst[:0], basket, minRI, 0)
		lat[i] = time.Since(q)
	}
	total = time.Since(start)
	runtime.ReadMemStats(&msAfter)
	out.Scores = scores
	out.ScoresPerSecond = float64(scores) / total.Seconds()
	out.ScoreNsPerOp = float64(total.Nanoseconds()) / float64(scores)
	out.ScoreAllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(scores)
	_, p99, p999 = latencyQuantiles(lat)
	out.ScoreP99Micros = p99.Seconds() * 1e6
	out.ScoreP999Micros = p999.Seconds() * 1e6
	return out, nil
}

// latencyQuantiles returns the exact p50, p99 and p999 of the sample.
func latencyQuantiles(lat []time.Duration) (p50, p99, p999 time.Duration) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.99), at(0.999)
}

// WriteServingJSON renders serving benchmarks (and, when run, the overload,
// ingest and snapshot benchmarks) as the indented JSON stored in
// BENCH_serving.json.
func WriteServingJSON(w io.Writer, scale int, rows []*ServingBench, overload []*OverloadBench, ingest []*IngestBench, snapshot []*SnapshotBench, clusterRows []*ClusterBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Description string           `json:"description"`
		Scale       int              `json:"scale"`
		Benches     []*ServingBench  `json:"benches"`
		Overload    []*OverloadBench `json:"overload,omitempty"`
		Ingest      []*IngestBench   `json:"ingest,omitempty"`
		Snapshot    []*SnapshotBench `json:"snapshot,omitempty"`
		Cluster     []*ClusterBench  `json:"cluster,omitempty"`
	}{
		Description: "Serving layer: snapshot build time and QueryItem/Score throughput, latency and allocations on mined rule sets (produced by cmd/experiments -servebench; overload section by -overloadbench; ingest section by -ingestbench; snapshot section by -snapbench; cluster section by -clusterbench)",
		Scale:       scale,
		Benches:     rows,
		Overload:    overload,
		Ingest:      ingest,
		Snapshot:    snapshot,
		Cluster:     clusterRows,
	})
}

// PrintServing renders serving benchmarks as a human-readable summary.
func PrintServing(w io.Writer, rows []*ServingBench) {
	for _, r := range rows {
		fmt.Fprintf(w, "%s (minsup %.2f%%): %d rules, %d items; build %.2fms; arena %dKB index %dKB\n",
			r.Dataset, r.MinSupPct, r.Rules, r.IndexedItems,
			r.BuildSeconds*1e3, r.ArenaBytes/1024, r.IndexBytes/1024)
		fmt.Fprintf(w, "  lookups %.0f/s (%.0fns/op, %.2f allocs/op) p50 %.1fµs p99 %.1fµs p999 %.1fµs cache-hit %.1f%%\n",
			r.LookupsPerSecond, r.LookupNsPerOp, r.LookupAllocsPerOp,
			r.LookupP50Micros, r.LookupP99Micros, r.LookupP999Micros, r.CacheHitRate*100)
		fmt.Fprintf(w, "  scores  %.0f/s (%.0fns/op, %.2f allocs/op) p99 %.1fµs p999 %.1fµs\n",
			r.ScoresPerSecond, r.ScoreNsPerOp, r.ScoreAllocsPerOp,
			r.ScoreP99Micros, r.ScoreP999Micros)
	}
}
