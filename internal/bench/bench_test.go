package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"negmine/internal/datagen"
	"negmine/internal/gen"
)

func TestScaleTx(t *testing.T) {
	p := datagen.Short()
	s := ScaleTx(p, 10)
	if s.NumTransactions != 5000 {
		t.Errorf("transactions = %d", s.NumTransactions)
	}
	if s.NumItems != p.NumItems || s.NumClusters != p.NumClusters {
		t.Error("ScaleTx must not touch the item universe")
	}
	if got := ScaleTx(p, 1); got != p {
		t.Error("factor 1 should be identity")
	}
	if got := ScaleTx(p, 10_000_000); got.NumTransactions < 100 {
		t.Error("transaction floor not applied")
	}
}

func TestPaperExampleReport(t *testing.T) {
	rep, err := RunPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	// Table 1 supports.
	want := map[string]int{
		"{bryers}":                    200,
		"{healthychoice}":             100,
		"{evian}":                     120,
		"{perrier}":                   80,
		"{frozenyogurt}":              300,
		"{bottledwater}":              200,
		"{bottledwater frozenyogurt}": 142,
	}
	for _, cs := range rep.Supports {
		key := cs.Set.Format(rep.Tax.Name)
		if w, ok := want[key]; ok && cs.Count != w {
			t.Errorf("support %s = %d, want %d", key, cs.Count, w)
		}
	}
	// The headline rule.
	found := false
	for _, r := range rep.Result.Rules {
		if strings.Contains(r.Format(rep.Tax.Name), "{perrier} =/=> {bryers}") {
			found = true
		}
	}
	if !found {
		t.Error("worked example missing rule perrier =/=> bryers")
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	for _, s := range []string{"Table 1", "Table 2", "perrier", "=/=>"} {
		if !strings.Contains(out, s) {
			t.Errorf("report output missing %q:\n%s", s, out)
		}
	}
}

// smallDataset returns a quick dataset for harness smoke tests.
func smallDataset(t *testing.T, name string, fanout float64, roots int) *Dataset {
	t.Helper()
	p := datagen.Params{
		NumTransactions:       800,
		AvgTxLen:              8,
		AvgClusterSize:        4,
		AvgItemsetSize:        4,
		AvgItemsetsPerCluster: 3,
		NumClusters:           120,
		NumItems:              500,
		Roots:                 roots,
		Fanout:                fanout,
		CorruptionMean:        0.5,
		CorruptionStdDev:      0.3,
		Seed:                  21,
	}
	ds, err := NewDataset(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunTimingsShape(t *testing.T) {
	ds := smallDataset(t, "short-ish", 9, 12)
	rows, err := RunTimings(ds, TimingConfig{
		MinSupsPct: []float64{4, 2},
		MinRI:      0.5,
		GenAlg:     gen.Cumulate,
		MaxK:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Lower support ⇒ at least as many large itemsets.
	if rows[1].LargeItemsets < rows[0].LargeItemsets {
		t.Errorf("large itemsets decreased at lower support: %d -> %d",
			rows[0].LargeItemsets, rows[1].LargeItemsets)
	}
	var buf bytes.Buffer
	PrintTimings(&buf, ds, rows)
	if !strings.Contains(buf.String(), "naive(s)") {
		t.Errorf("timings table malformed:\n%s", buf.String())
	}
}

func TestRunCandidatesFanoutShape(t *testing.T) {
	// Figure 7's claim: higher fanout ⇒ more candidates per large itemset.
	shortish := smallDataset(t, "short-ish", 9, 12)
	tallish := smallDataset(t, "tall-ish", 3, 12)
	cs, err := RunCandidates(shortish, 3, 0.5, gen.Cumulate, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := RunCandidates(tallish, 3, 0.5, gen.Cumulate, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Normalized[2] == 0 || ct.Normalized[2] == 0 {
		t.Fatalf("no size-2 candidates: short=%v tall=%v", cs.Normalized, ct.Normalized)
	}
	if cs.Normalized[2] <= ct.Normalized[2] {
		t.Errorf("fanout 9 normalized candidates (%.2f) not above fanout 3 (%.2f)",
			cs.Normalized[2], ct.Normalized[2])
	}
	var buf bytes.Buffer
	PrintCandidates(&buf, []*CandidateCounts{cs, ct})
	if !strings.Contains(buf.String(), "size") {
		t.Errorf("candidates table malformed:\n%s", buf.String())
	}
}

func TestOnDiskAndThrottled(t *testing.T) {
	ds := smallDataset(t, "mini", 5, 8)
	disk, err := ds.OnDisk(t.TempDir() + "/mini.nmtx")
	if err != nil {
		t.Fatal(err)
	}
	if disk.DB.Count() != ds.DB.Count() {
		t.Errorf("disk count %d, want %d", disk.DB.Count(), ds.DB.Count())
	}
	if !strings.Contains(disk.Name, "/disk") {
		t.Errorf("disk name = %q", disk.Name)
	}
	th := ds.Throttled(time.Microsecond)
	if th.DB.Count() != ds.DB.Count() || !strings.Contains(th.Name, "slowio") {
		t.Errorf("throttled dataset wrong: %q", th.Name)
	}
	// Both variants mine identically to the in-memory dataset.
	base, err := RunCandidates(ds, 4, 0.5, gen.Cumulate, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := RunCandidates(disk, 4, 0.5, gen.Cumulate, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.BySize[2] != onDisk.BySize[2] {
		t.Errorf("disk-backed run differs: %v vs %v", onDisk.BySize, base.BySize)
	}
}
