package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"negmine/internal/atomicio"
	"negmine/internal/loadsim"
)

// WorkloadBench is one negload run in the BENCH_serving.json workload
// section: the offered traffic shape plus the measured outcome.
type WorkloadBench struct {
	Label string `json:"label"` // e.g. "1x" / "4x"
	*loadsim.Result
}

// workloadSection is the "workload" value of BENCH_serving.json.
type workloadSection struct {
	Description string           `json:"description"`
	Runs        []*WorkloadBench `json:"runs"`
}

// MergeWorkloadJSON upserts runs into the workload section of the JSON
// document at path, preserving every other section. Workload runs merge by
// label: an incoming run supersedes the old row with its label (dropped, new
// row appended), so re-running "4x" refreshes that row without touching
// "1x". A missing
// or empty file starts a fresh document. The write is atomic.
func MergeWorkloadJSON(path string, runs []*WorkloadBench) error {
	doc := map[string]json.RawMessage{}
	raw, err := os.ReadFile(path)
	switch {
	case err == nil && len(raw) > 0:
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("bench: %s is not a JSON object: %w", path, err)
		}
	case err != nil && !os.IsNotExist(err):
		return err
	}
	if prev, ok := doc["workload"]; ok {
		var old workloadSection
		if err := json.Unmarshal(prev, &old); err == nil {
			incoming := map[string]bool{}
			for _, r := range runs {
				incoming[r.Label] = true
			}
			merged := make([]*WorkloadBench, 0, len(old.Runs)+len(runs))
			for _, r := range old.Runs {
				if !incoming[r.Label] {
					merged = append(merged, r)
				}
			}
			runs = append(merged, runs...)
		}
	}
	if _, ok := doc["description"]; !ok {
		desc, _ := json.Marshal("Serving layer benchmarks (workload section produced by cmd/negload -workloadbench)")
		doc["description"] = desc
	}
	section, err := json.Marshal(workloadSection{
		Description: "Closed-loop workload simulator: drifting zipfian traffic with flash-sale bursts against a live daemon; freshness = tracer ingest→rule-visible latency (produced by cmd/negload -workloadbench)",
		Runs:        runs,
	})
	if err != nil {
		return err
	}
	doc["workload"] = section
	return atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}

// PrintWorkload renders workload runs as a human-readable summary.
func PrintWorkload(w io.Writer, runs []*WorkloadBench) {
	for _, r := range runs {
		fmt.Fprintf(w, "%s: offered %.0f rps, achieved %.0f rps over %.1fs (%d ops)\n",
			r.Label, r.OfferedRPS, r.AchievedRPS, r.ElapsedSeconds, r.Ops)
		for _, ep := range r.Endpoints {
			if ep.Sent == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-6s %6d sent  ok %-6d 4xx %-4d 5xx %-4d shed %-4d 206 %-4d net %-3d  p50 %.2fms p99 %.2fms p999 %.2fms\n",
				ep.Endpoint, ep.Sent, ep.OK, ep.Err4xx, ep.Err5xx, ep.Shed, ep.Partial, ep.NetErr,
				ep.P50Ms, ep.P99Ms, ep.P999Ms)
		}
		if fr := r.Freshness; fr != nil {
			fmt.Fprintf(w, "  freshness: %d/%d tracers visible (plants %d txns)  p50 %.2fs p99 %.2fs max %.2fs\n",
				fr.Visible, fr.Tracers, fr.PlantTxns, fr.P50Seconds, fr.P99Seconds, fr.MaxSeconds)
		}
	}
}
