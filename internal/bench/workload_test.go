package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"negmine/internal/loadsim"
)

func TestMergeWorkloadJSONUpsert(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serving.json")
	if err := os.WriteFile(path, []byte(`{"description":"keep me","scale":7,"benches":[{"dataset":"d"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	row := func(label string, rps float64) *WorkloadBench {
		return &WorkloadBench{Label: label, Result: &loadsim.Result{OfferedRPS: rps}}
	}
	if err := MergeWorkloadJSON(path, []*WorkloadBench{row("1x", 100)}); err != nil {
		t.Fatal(err)
	}
	if err := MergeWorkloadJSON(path, []*WorkloadBench{row("4x", 400)}); err != nil {
		t.Fatal(err)
	}
	// Re-running a label replaces its row in place.
	if err := MergeWorkloadJSON(path, []*WorkloadBench{row("1x", 150)}); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Description string `json:"description"`
		Scale       int    `json:"scale"`
		Benches     []any  `json:"benches"`
		Workload    struct {
			Runs []*WorkloadBench `json:"runs"`
		} `json:"workload"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%v\n%s", err, raw)
	}
	if doc.Description != "keep me" || doc.Scale != 7 || len(doc.Benches) != 1 {
		t.Fatalf("merge clobbered foreign sections: %s", raw)
	}
	runs := doc.Workload.Runs
	if len(runs) != 2 || runs[0].Label != "4x" || runs[1].Label != "1x" {
		t.Fatalf("runs = %+v, want [4x, 1x]", runs)
	}
	if runs[1].OfferedRPS != 150 {
		t.Fatalf("1x row not replaced: offered %v", runs[1].OfferedRPS)
	}

	// A corrupt document is rejected, not overwritten.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeWorkloadJSON(bad, []*WorkloadBench{row("1x", 1)}); err == nil {
		t.Fatal("corrupt bench file accepted")
	}
	// A missing file starts a fresh document.
	fresh := filepath.Join(t.TempDir(), "new.json")
	if err := MergeWorkloadJSON(fresh, []*WorkloadBench{row("1x", 1)}); err != nil {
		t.Fatal(err)
	}
	if raw, _ := os.ReadFile(fresh); !json.Valid(raw) {
		t.Fatalf("fresh document invalid: %s", raw)
	}
}
