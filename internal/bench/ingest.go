package bench

import (
	"fmt"
	"io"
	"time"

	"negmine/internal/gen"
	"negmine/internal/incr"
	"negmine/internal/item"
	"negmine/internal/negative"
	"negmine/internal/seglog"
	"negmine/internal/txdb"
)

// IngestDeltaLevel is one row of the delta-refresh comparison: the cost of
// an incremental refresh after ingesting a delta of the given size, against
// a full batch re-mine of the very same transactions.
type IngestDeltaLevel struct {
	DeltaPct  float64 `json:"delta_pct"`
	DeltaTxns int     `json:"delta_txns"`

	// RefreshSeconds is the warm incremental refresh: the base segments are
	// already cached, so the refresh mines only the delta and re-runs the
	// cheap global stages. FullRemineSeconds is a batch mine of base+delta,
	// and Speedup their ratio.
	RefreshSeconds    float64 `json:"delta_refresh_seconds"`
	FullRemineSeconds float64 `json:"full_remine_seconds"`
	Speedup           float64 `json:"speedup"`

	// Counters from incr.RefreshStats proving the refresh was incremental:
	// how many segments were phase-I mined this refresh, and how many
	// counting scans hit segments that were already cached.
	NewSegments     int `json:"new_segments"`
	OldSegmentScans int `json:"old_segment_scans"`
}

// IngestBench is the ingest section of BENCH_serving.json: durable append
// throughput through the segment log, and incremental-refresh latency
// versus a full batch re-mine at several delta sizes.
type IngestBench struct {
	Dataset   string  `json:"dataset"`
	MinSupPct float64 `json:"minsup_pct"`
	MinRI     float64 `json:"minri"`
	MaxK      int     `json:"maxk"`
	Txns      int     `json:"txns"`

	// Append throughput: fsync-per-batch durable appends of AppendBatch
	// transactions each, the write path POST /ingest pays.
	AppendBatch         int     `json:"append_batch"`
	AppendTxnsPerSecond float64 `json:"append_txns_per_second"`

	Levels []IngestDeltaLevel `json:"delta_levels"`
}

// ingestDeltaPcts are the delta sizes measured, as fractions of the dataset.
var ingestDeltaPcts = []float64{0.01, 0.10, 0.50}

// RunIngestBench measures the streaming-ingest path on ds: durable append
// throughput into a segment log under dir, then, for each delta size, the
// wall time of an incremental refresh over (base + delta) with the base
// already cached, against a full batch re-mine of the same transactions.
// The delta replays the first transactions of the dataset — a stationary
// stream, the regime incremental refresh is designed for: stable supports
// keep the candidate union stable, so the refresh revisits old segments
// only when the delta genuinely shifts what is large.
//
// maxK defaults to 4 when 0, and the support is floored so that even the
// smallest delta segment keeps a local count threshold of at least 5:
// Partition's phase I degenerates on tiny partitions (at ceil(minSup·|seg|)
// near 1, segment-local noise makes nearly every subset locally large, and
// an "incremental" refresh then costs more than the full mine it replaces)
// — the same operational guidance negmined's streaming mode documents.
// Both knobs apply to the full-remine baseline too, keeping the comparison
// fair; the effective support is what the result records.
func RunIngestBench(ds *Dataset, minSupPct, minRI float64, genAlg gen.Algorithm, maxK, parallel int, dir string) (*IngestBench, error) {
	if maxK <= 0 {
		maxK = 4
	}

	var sets []item.Itemset
	if err := ds.DB.Scan(func(tx txdb.Transaction) error {
		sets = append(sets, tx.Items.Clone())
		return nil
	}); err != nil {
		return nil, err
	}
	n := len(sets)
	if n < 10 {
		return nil, fmt.Errorf("bench: %s has only %d transactions", ds.Name, n)
	}

	smallest := int(float64(n) * ingestDeltaPcts[0])
	if smallest < 1 {
		smallest = 1
	}
	minSup := minSupPct / 100
	if floor := 5 / float64(smallest); minSup < floor {
		minSup = floor
	}
	if minSup > 1 {
		minSup = 1
	}
	opt := negative.Options{
		MinSupport: minSup,
		MinRI:      minRI,
		Algorithm:  negative.Improved,
		Gen:        gen.Options{Algorithm: genAlg, MaxK: maxK},
	}
	opt.Count.Parallelism = parallel
	opt.Gen.Count.Parallelism = parallel

	out := &IngestBench{
		Dataset:     ds.Name,
		MinSupPct:   minSup * 100,
		MinRI:       minRI,
		MaxK:        maxK,
		Txns:        n,
		AppendBatch: 100,
	}

	// Append throughput: every batch is a durable (CRC-framed, fsynced)
	// Append, the unit of work one POST /ingest acknowledges.
	alog, err := seglog.Open(dir+"/append", seglog.Options{})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for lo := 0; lo < n; lo += out.AppendBatch {
		hi := lo + out.AppendBatch
		if hi > n {
			hi = n
		}
		if _, _, err := alog.Append(sets[lo:hi]); err != nil {
			alog.Close()
			return nil, err
		}
	}
	out.AppendTxnsPerSecond = float64(n) / time.Since(start).Seconds()
	if err := alog.Close(); err != nil {
		return nil, err
	}

	for _, pct := range ingestDeltaPcts {
		delta := int(float64(n) * pct)
		if delta < 1 {
			delta = 1
		}

		log, err := seglog.Open(fmt.Sprintf("%s/delta-%g", dir, pct), seglog.Options{})
		if err != nil {
			return nil, err
		}
		const seedBatch = 4096
		for lo := 0; lo < n; lo += seedBatch {
			hi := lo + seedBatch
			if hi > n {
				hi = n
			}
			if _, _, err := log.Append(sets[lo:hi]); err != nil {
				log.Close()
				return nil, err
			}
			if err := log.Seal(); err != nil {
				log.Close()
				return nil, err
			}
		}
		miner := incr.New(ds.Tax, opt)
		if _, err := miner.Refresh(log); err != nil { // warm the base caches
			log.Close()
			return nil, fmt.Errorf("bench: base refresh at %g%%: %w", pct*100, err)
		}
		if _, _, err := log.Append(sets[:delta]); err != nil {
			log.Close()
			return nil, err
		}
		start = time.Now()
		if _, err := miner.Refresh(log); err != nil {
			log.Close()
			return nil, fmt.Errorf("bench: delta refresh at %g%%: %w", pct*100, err)
		}
		lvl := IngestDeltaLevel{
			DeltaPct:       pct * 100,
			DeltaTxns:      delta,
			RefreshSeconds: time.Since(start).Seconds(),
		}
		st := miner.LastStats()
		lvl.NewSegments = st.NewSegments
		lvl.OldSegmentScans = st.OldSegmentScans
		if err := log.Close(); err != nil {
			return nil, err
		}

		// Baseline: batch mine of exactly the transactions the refresh saw.
		raw := make([][]item.Item, 0, n+delta)
		for _, s := range sets {
			raw = append(raw, s)
		}
		for _, s := range sets[:delta] {
			raw = append(raw, s)
		}
		start = time.Now()
		if _, err := negative.Mine(txdb.FromItemsets(raw...), ds.Tax, opt); err != nil {
			return nil, fmt.Errorf("bench: full remine at %g%%: %w", pct*100, err)
		}
		lvl.FullRemineSeconds = time.Since(start).Seconds()
		if lvl.RefreshSeconds > 0 {
			lvl.Speedup = lvl.FullRemineSeconds / lvl.RefreshSeconds
		}
		out.Levels = append(out.Levels, lvl)
	}
	return out, nil
}

// PrintIngest renders ingest benchmarks as a human-readable summary.
func PrintIngest(w io.Writer, rows []*IngestBench) {
	for _, r := range rows {
		fmt.Fprintf(w, "%s (%d txns, minsup %.2f%%, maxk %d): append %.0f txns/s (batches of %d)\n",
			r.Dataset, r.Txns, r.MinSupPct, r.MaxK,
			r.AppendTxnsPerSecond, r.AppendBatch)
		for _, l := range r.Levels {
			fmt.Fprintf(w, "  %5.1f%% delta (%d txns): refresh %.1fms vs full %.1fms (%.1fx), %d new segments, %d old-segment scans\n",
				l.DeltaPct, l.DeltaTxns, l.RefreshSeconds*1e3, l.FullRemineSeconds*1e3,
				l.Speedup, l.NewSegments, l.OldSegmentScans)
		}
	}
}
