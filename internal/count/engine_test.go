package count

import (
	"math/rand"
	"testing"

	"negmine/internal/hashtree"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// testTax builds a two-level taxonomy whose leaves are the first nLeaves
// interned ids (grouped under one category per 4 leaves).
func testTax(t testing.TB, nLeaves int) (*taxonomy.Taxonomy, item.Itemset) {
	t.Helper()
	b := taxonomy.NewBuilder()
	var leaves []item.Item
	for i := 0; i < nLeaves; i++ {
		cat := "cat" + string(rune('A'+i/4))
		_, leaf := b.Link(cat, "leaf"+string(rune('a'+i%26))+string(rune('0'+i/26)))
		leaves = append(leaves, leaf)
	}
	tax, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tax, item.New(leaves...)
}

// leafDB builds a random database over the given leaf ids.
func leafDB(seed int64, leaves item.Itemset, nTx, maxLen int) *txdb.MemDB {
	r := rand.New(rand.NewSource(seed))
	db := &txdb.MemDB{}
	for i := 0; i < nTx; i++ {
		n := 1 + r.Intn(maxLen)
		raw := make([]item.Item, n)
		for j := range raw {
			raw[j] = leaves[r.Intn(leaves.Len())]
		}
		db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
	}
	return db
}

func randomGroups(r *rand.Rand, universe item.Itemset, nGroups int) [][]item.Itemset {
	groups := make([][]item.Itemset, nGroups)
	for g := range groups {
		size := g + 1
		seen := map[item.Key]bool{}
		for len(groups[g]) < 10+r.Intn(20) {
			raw := make([]item.Item, size)
			for j := range raw {
				raw[j] = universe[r.Intn(universe.Len())]
			}
			c := item.New(raw...)
			if c.Len() == size && !seen[c.Key()] {
				seen[c.Key()] = true
				groups[g] = append(groups[g], c)
			}
		}
	}
	return groups
}

// TestBackendsAgreeOnRandomDBs is the cross-backend oracle: both engines
// must return identical counts for the same randomized pass, with and
// without a shared transform, sequentially and in parallel.
func TestBackendsAgreeOnRandomDBs(t *testing.T) {
	for trial := int64(0); trial < 4; trial++ {
		r := rand.New(rand.NewSource(100 + trial))
		db := randomDB(200+trial, 150+int(trial)*37, 40, 10)
		universe := make(item.Itemset, 40)
		for i := range universe {
			universe[i] = item.Item(i)
		}
		groups := randomGroups(r, universe, 3)
		for _, parallel := range []int{1, 4} {
			for name, tr := range map[string]TransformInto{
				"identity": nil,
				"shift": func(dst []item.Item, s item.Itemset) item.Itemset {
					for _, x := range s {
						dst = append(dst, x, (x+7)%40)
					}
					return item.SortDedup(dst)
				},
			} {
				ht, err := HashTreeEngine{}.Multi(db, groups, nil, Options{Parallelism: parallel, TransformInto: tr})
				if err != nil {
					t.Fatalf("hashtree: %v", err)
				}
				bm, err := BitmapEngine{}.Multi(db, groups, nil, Options{Parallelism: parallel, TransformInto: tr})
				if err != nil {
					t.Fatalf("bitmap: %v", err)
				}
				for g := range groups {
					for i := range groups[g] {
						if ht[g][i] != bm[g][i] {
							t.Fatalf("trial %d %s parallel=%d: group %d cand %v: hashtree %d, bitmap %d",
								trial, name, parallel, g, groups[g][i], ht[g][i], bm[g][i])
						}
					}
				}
			}
		}
	}
}

// TestBackendsAgreeWithTaxonomy checks the ancestor-closure fast path:
// per-group ancestor-extension transforms plus the Tax declaration must
// give the bitmap engine the same counts the hash tree gets by applying
// the transforms.
func TestBackendsAgreeWithTaxonomy(t *testing.T) {
	tax, leaves := testTax(t, 16)
	db := leafDB(42, leaves, 300, 8)
	r := rand.New(rand.NewSource(43))
	universe := leaves.Union(tax.Categories())
	groups := randomGroups(r, universe, 3)
	extend := func(dst []item.Item, s item.Itemset) item.Itemset { return tax.ExtendInto(dst, s) }
	transforms := make([]TransformInto, len(groups))
	for g := range transforms {
		transforms[g] = extend
	}
	opt := Options{Tax: tax}
	ht, err := HashTreeEngine{}.Multi(db, groups, transforms, opt)
	if err != nil {
		t.Fatalf("hashtree: %v", err)
	}
	bm, err := BitmapEngine{}.Multi(db, groups, transforms, opt)
	if err != nil {
		t.Fatalf("bitmap: %v", err)
	}
	for g := range groups {
		for i := range groups[g] {
			if ht[g][i] != bm[g][i] {
				t.Fatalf("group %d cand %v: hashtree %d, bitmap %d", g, groups[g][i], ht[g][i], bm[g][i])
			}
		}
	}
}

func TestBitmapRejectsOpaquePerGroupTransforms(t *testing.T) {
	db := randomDB(1, 20, 10, 5)
	groups := [][]item.Itemset{{item.New(1, 2)}}
	transforms := []TransformInto{func(dst []item.Item, s item.Itemset) item.Itemset { return s }}
	if _, err := (BitmapEngine{}).Multi(db, groups, transforms, Options{}); err == nil {
		t.Fatal("expected error for per-group transforms without Tax")
	}
}

func TestEngineForSelection(t *testing.T) {
	db := randomDB(2, 100, 20, 6)
	groups := [][]item.Itemset{{item.New(1, 2), item.New(3, 4)}}
	perGroup := []TransformInto{func(dst []item.Item, s item.Itemset) item.Itemset { return s }}
	tax, _ := testTax(t, 8)
	cases := []struct {
		name       string
		db         txdb.DB
		transforms []TransformInto
		opt        Options
		want       string
	}{
		{"auto memdb", db, nil, Options{}, "bitmap"},
		{"explicit hashtree", db, nil, Options{Backend: BackendHashTree}, "hashtree"},
		{"explicit bitmap on wrapped db", txdb.Instrument(db), nil, Options{Backend: BackendBitmap}, "bitmap"},
		{"auto wrapped db", txdb.Instrument(db), nil, Options{}, "hashtree"},
		{"auto over budget", db, nil, Options{BitmapBudget: 1}, "hashtree"},
		{"auto per-group no tax", db, perGroup, Options{}, "hashtree"},
		{"auto per-group with tax", db, perGroup, Options{Tax: tax}, "bitmap"},
	}
	for _, tc := range cases {
		if got := EngineFor(tc.db, groups, tc.transforms, tc.opt).Name(); got != tc.want {
			t.Errorf("%s: EngineFor = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestParseBackend(t *testing.T) {
	for s, want := range map[string]Backend{
		"":         BackendAuto,
		"auto":     BackendAuto,
		"hashtree": BackendHashTree,
		"Bitmap":   BackendBitmap,
	} {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("Backend(%v).String() empty", got)
		}
	}
	if _, err := ParseBackend("btree"); err == nil {
		t.Error("ParseBackend(btree): expected error")
	}
}

// TestCountingAllocationFree pins the steady-state guarantee of the
// hash-tree engine's per-transaction path: with a TransformInto installed
// (shared and per-group), probing allocates nothing once buffers are warm.
func TestCountingAllocationFree(t *testing.T) {
	tax, leaves := testTax(t, 16)
	db := leafDB(7, leaves, 60, 8)
	r := rand.New(rand.NewSource(8))
	universe := leaves.Union(tax.Categories())
	groups := randomGroups(r, universe, 3)
	trees := make([]*hashtree.Tree, len(groups))
	for g, cands := range groups {
		tr, err := hashtree.Build(cands, 0)
		if err != nil {
			t.Fatal(err)
		}
		trees[g] = tr
	}
	extend := func(dst []item.Item, s item.Itemset) item.Itemset { return tax.ExtendInto(dst, s) }
	txs := db.Transactions()

	w := newHashTreeWorker(trees)
	opt := Options{TransformInto: extend}
	warm := func(transforms []TransformInto) {
		for _, tx := range txs {
			w.addAll(transforms, opt, tx.Items)
		}
	}
	warm(nil)
	if allocs := testing.AllocsPerRun(50, func() { warm(nil) }); allocs != 0 {
		t.Fatalf("shared-transform counting allocated %v times per run, want 0", allocs)
	}
	transforms := []TransformInto{extend, extend, extend}
	warm(transforms)
	if allocs := testing.AllocsPerRun(50, func() { warm(transforms) }); allocs != 0 {
		t.Fatalf("per-group-transform counting allocated %v times per run, want 0", allocs)
	}
}

// TestSharedTransformComputedOncePerTransaction pins the MultiTransformed
// fix: groups without their own transform share one transformed itemset per
// transaction instead of re-running the extension per group.
func TestSharedTransformComputedOncePerTransaction(t *testing.T) {
	db := randomDB(9, 25, 15, 6)
	groups := [][]item.Itemset{
		{item.New(1, 2)},
		{item.New(1, 2, 3)},
		{item.New(2, 3, 4, 5)},
	}
	calls := 0
	opt := Options{
		Backend: BackendHashTree,
		TransformInto: func(dst []item.Item, s item.Itemset) item.Itemset {
			calls++
			return append(dst, s...)
		},
	}
	if _, err := MultiTransformed(db, groups, nil, opt); err != nil {
		t.Fatal(err)
	}
	if calls != db.Count() {
		t.Fatalf("shared transform ran %d times for %d transactions × %d groups, want %d",
			calls, db.Count(), len(groups), db.Count())
	}
}
