// Package count is the support-counting engine shared by every mining
// algorithm in the library (Apriori, the generalized miners, the Partition
// algorithm and the negative-itemset pass). It pairs the hash tree with a
// transaction transform hook (e.g. extending a transaction with its
// taxonomy ancestors) and optional parallel sharded scans.
package count

import (
	"fmt"
	"runtime"
	"sync"

	"negmine/internal/item"
	"negmine/internal/txdb"
)

// Options controls a counting pass.
type Options struct {
	// Parallelism is the number of concurrent scan workers. Values < 2 (or
	// a database that cannot shard) select a single sequential scan.
	Parallelism int
	// MaxLeaf is the hash tree leaf capacity (0 = default).
	MaxLeaf int
	// Transform, if non-nil, maps each transaction's itemset before
	// counting (the Cumulate ancestor extension, a filter, ...). It must be
	// safe for concurrent calls when Parallelism > 1.
	Transform func(item.Itemset) item.Itemset
}

// Auto selects runtime.NumCPU() workers.
func Auto() int { return runtime.NumCPU() }

// Candidates counts, for every candidate (all of equal size), the number of
// transactions in db whose (transformed) itemset contains it. The result is
// indexed like cands.
func Candidates(db txdb.DB, cands []item.Itemset, opt Options) ([]int, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	res, err := Multi(db, [][]item.Itemset{cands}, opt)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

func transform(opt Options, s item.Itemset) item.Itemset {
	if opt.Transform == nil {
		return s
	}
	return opt.Transform(s)
}

// Singletons counts every distinct item appearing in db's (transformed)
// transactions. Unlike Candidates it needs no candidate list: it is the L1
// pass of every Apriori-family algorithm.
func Singletons(db txdb.DB, opt Options) (*item.Counter, error) {
	sharder, canShard := db.(txdb.Sharder)
	workers := opt.Parallelism
	if workers < 2 || !canShard {
		c := item.NewCounter()
		err := db.Scan(func(tx txdb.Transaction) error {
			addSingles(c, transform(opt, tx.Items))
			return nil
		})
		if err != nil {
			return nil, err
		}
		return c, nil
	}
	counters := make([]*item.Counter, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := item.NewCounter()
			counters[w] = c
			errs[w] = sharder.ScanShard(w, workers, func(tx txdb.Transaction) error {
				addSingles(c, transform(opt, tx.Items))
				return nil
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("count: worker %d: %w", w, err)
		}
	}
	total := counters[0]
	for _, c := range counters[1:] {
		total.Merge(c)
	}
	return total, nil
}

func addSingles(c *item.Counter, s item.Itemset) {
	var buf [1]item.Item
	for _, x := range s {
		buf[0] = x
		c.Add(buf[:], 1)
	}
}
