// Package count is the support-counting engine shared by every mining
// algorithm in the library (Apriori, the generalized miners, the Partition
// algorithm and the negative-itemset pass). Counting runs through a
// pluggable Engine: the Agrawal–Srikant hash tree (per-transaction subset
// probing, works over any database) or the vertical TID-bitmap matrix of
// internal/bitmat (AND+popcount per candidate, memory-resident databases).
// Options.Backend selects the engine; the default Auto heuristic is
// documented on EngineFor.
package count

import (
	"fmt"
	"runtime"
	"sync"

	"negmine/internal/govern"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// Options controls a counting pass.
type Options struct {
	// Parallelism is the number of concurrent workers. For the hash-tree
	// engine values < 2 (or a database that cannot shard) select a single
	// sequential scan; the bitmap engine always builds with one scan and
	// shards candidates across this many workers.
	Parallelism int
	// MaxLeaf is the hash tree leaf capacity (0 = default).
	MaxLeaf int
	// Transform, if non-nil, maps each transaction's itemset before
	// counting (the Cumulate ancestor extension, a filter, ...). It must be
	// safe for concurrent calls when Parallelism > 1. New code should
	// prefer TransformInto, which avoids a per-transaction allocation.
	Transform func(item.Itemset) item.Itemset
	// TransformInto is the allocation-free form of Transform: engines pass
	// a reusable per-worker buffer as dst. It takes precedence over
	// Transform when both are set.
	TransformInto TransformInto
	// Backend selects the counting engine; the zero value is BackendAuto.
	Backend Backend
	// BitmapBudget caps the bitmap matrix size in bytes for BackendAuto
	// selection (0 = DefaultBitmapBudget). An explicit BackendBitmap
	// ignores the budget.
	BitmapBudget int64
	// Mem, if non-nil, is the process-wide memory ledger every engine
	// reserves its dominant allocation against before making it: the bitmap
	// engine its matrix, the hash-tree engine its trees and per-worker
	// counters. A bitmap reservation that fails degrades the pass to the
	// hash-tree engine (see MultiTransformed); a hash-tree reservation that
	// fails is the floor of the ladder and surfaces as an error wrapping
	// govern.ErrOverBudget. Nil means unbounded.
	Mem *govern.Budget
	// Tax, if non-nil, declares that the installed transforms (shared or
	// per-group) are taxonomy ancestor extensions — possibly filtered down
	// to candidate items — under this taxonomy. The declaration lets the
	// bitmap engine materialize ancestor-closure rows directly and skip the
	// transforms; the hash-tree engine ignores it. Setting Tax alongside a
	// transform that is not such an extension is a caller bug.
	Tax *taxonomy.Taxonomy
}

// Auto selects runtime.NumCPU() workers.
func Auto() int { return runtime.NumCPU() }

// Candidates counts, for every candidate (all of equal size), the number of
// transactions in db whose (transformed) itemset contains it. The result is
// indexed like cands.
func Candidates(db txdb.DB, cands []item.Itemset, opt Options) ([]int, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	res, err := Multi(db, [][]item.Itemset{cands}, opt)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Singletons counts every distinct item appearing in db's (transformed)
// transactions. Unlike Candidates it needs no candidate list — it is the L1
// pass of every Apriori-family algorithm — and for the same reason it
// always counts with a per-worker map counter regardless of Backend: the
// bitmap engine needs the item universe up front, which is exactly what
// this pass discovers.
func Singletons(db txdb.DB, opt Options) (*item.Counter, error) {
	sharder, canShard := db.(txdb.Sharder)
	workers := opt.Parallelism
	if workers < 2 || !canShard {
		c := item.NewCounter()
		buf := make([]item.Item, 0, 64)
		err := db.Scan(func(tx txdb.Transaction) error {
			var s item.Itemset
			s, buf = applyShared(opt, buf, tx.Items)
			addSingles(c, s)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return c, nil
	}
	counters := make([]*item.Counter, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := item.NewCounter()
			counters[w] = c
			buf := make([]item.Item, 0, 64)
			errs[w] = sharder.ScanShard(w, workers, func(tx txdb.Transaction) error {
				var s item.Itemset
				s, buf = applyShared(opt, buf, tx.Items)
				addSingles(c, s)
				return nil
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("count: worker %d: %w", w, err)
		}
	}
	total := counters[0]
	for _, c := range counters[1:] {
		total.Merge(c)
	}
	return total, nil
}

func addSingles(c *item.Counter, s item.Itemset) {
	var buf [1]item.Item
	for _, x := range s {
		buf[0] = x
		c.Add(buf[:], 1)
	}
}
