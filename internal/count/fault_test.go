package count

import (
	"errors"
	"reflect"
	"testing"

	"negmine/internal/fault"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// TestBudgetTripFallsBackToHashTree arms the bitmap budget failpoint and
// verifies BackendAuto degrades to the hash-tree engine with identical
// counts — the graceful-fallback path a real memory trip would take.
func TestBudgetTripFallsBackToHashTree(t *testing.T) {
	_, leaves := testTax(t, 12)
	db := leafDB(7, leaves, 120, 6)
	groups := [][]item.Itemset{make([]item.Itemset, 0, leaves.Len())}
	for _, l := range leaves {
		groups[0] = append(groups[0], item.New(l))
	}

	want, err := Multi(db, groups, Options{}) // healthy auto pass (bitmap)
	if err != nil {
		t.Fatalf("baseline Multi: %v", err)
	}
	if eng := EngineFor(db, groups, nil, Options{}); eng.Name() != "bitmap" {
		t.Fatalf("baseline engine = %s, want bitmap (test premise)", eng.Name())
	}

	defer fault.Enable(PointBudget, fault.Error("budget tripped"))()
	if eng := EngineFor(db, groups, nil, Options{}); eng.Name() != "hashtree" {
		t.Fatalf("engine under budget trip = %s, want hashtree", eng.Name())
	}
	got, err := Multi(db, groups, Options{})
	if err != nil {
		t.Fatalf("Multi under budget trip: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback counts differ from bitmap counts:\n got %v\nwant %v", got, want)
	}
}

// TestScanFaultPropagatesFromCounting checks a mid-scan read error surfaces
// as an error from the counting pass instead of partial counts.
func TestScanFaultPropagatesFromCounting(t *testing.T) {
	_, leaves := testTax(t, 8)
	db := leafDB(9, leaves, 50, 4)
	groups := [][]item.Itemset{{item.New(leaves[0]), item.New(leaves[1])}}

	defer fault.Enable(txdb.PointScan, fault.Error("torn read"), fault.OnHit(10))()
	for _, backend := range []Backend{BackendHashTree, BackendBitmap} {
		_, err := Multi(db, groups, Options{Backend: backend})
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("%v: err = %v, want injected scan error", backend, err)
		}
		fault.Enable(txdb.PointScan, fault.Error("torn read"), fault.OnHit(10)) // reset counter
	}
}
