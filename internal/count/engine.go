package count

import (
	"fmt"
	"strings"

	"negmine/internal/bitmat"
	"negmine/internal/fault"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// PointBudget is the failpoint evaluated where BackendAuto checks the
// bitmap memory budget; arming it with an error simulates a budget trip and
// must produce a silent, correct fallback to the hash-tree engine.
const PointBudget = "count.bitmap.budget"

// Backend names a support-counting engine.
type Backend int

const (
	// BackendAuto lets EngineFor choose: the bitmap engine when the database
	// is memory-resident and the bitmap matrix fits Options.BitmapBudget,
	// the hash-tree engine otherwise. It is the zero value, so existing
	// callers get the heuristic without code changes.
	BackendAuto Backend = iota
	// BackendHashTree forces per-transaction subset probing through the
	// Agrawal–Srikant hash tree. It works over any DB (disk-resident,
	// throttled, instrumented) and with arbitrary transforms.
	BackendHashTree
	// BackendBitmap forces the vertical TID-bitmap engine (internal/bitmat):
	// one build pass, then AND+popcount per candidate. It requires either a
	// shared transform or — for per-group transforms — an Options.Tax
	// declaration that the transforms are ancestor extensions.
	BackendBitmap
)

// String names the backend as accepted by ParseBackend.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendHashTree:
		return "hashtree"
	case BackendBitmap:
		return "bitmap"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend converts a -backend flag value into a Backend.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return BackendAuto, nil
	case "hashtree", "hash-tree", "tree":
		return BackendHashTree, nil
	case "bitmap", "bitmat", "vertical":
		return BackendBitmap, nil
	default:
		return BackendAuto, fmt.Errorf("count: unknown backend %q (want auto, hashtree or bitmap)", s)
	}
}

// DefaultBitmapBudget caps the bitmap matrix at 256 MiB when
// Options.BitmapBudget is zero.
const DefaultBitmapBudget int64 = 256 << 20

// TransformInto maps a transaction's itemset before counting, appending the
// result into dst (normally dst[:0] of a caller-owned scratch buffer) and
// returning the sorted, deduplicated set. The return value may alias dst's
// (possibly grown) backing array; engines stop using it before the next call
// on the same buffer. Implementations must be safe for concurrent calls
// (each call gets its own dst).
type TransformInto func(dst []item.Item, s item.Itemset) item.Itemset

// Engine is a pluggable support-counting backend. Multi counts several
// candidate groups — each of uniform itemset size — in one logical database
// pass (exactly one db.Scan for sequential engines, one sharded scan
// otherwise), honoring the transform configuration described on
// MultiTransformed. Implementations are stateless and safe for concurrent
// use.
type Engine interface {
	// Name is the ParseBackend-compatible engine name.
	Name() string
	Multi(db txdb.DB, groups [][]item.Itemset, transforms []TransformInto, opt Options) ([][]int, error)
}

// EngineFor selects the engine for a counting pass. Explicit Backend values
// are obeyed; BackendAuto applies the heuristic: bitmap only when
//
//   - the database is a memory-resident *txdb.MemDB — wrappers like
//     txdb.Instrumented or txdb.Throttled model disk-resident access and
//     keep the paper-faithful hash-tree scan, and
//   - per-group transforms, if any, are declared as taxonomy ancestor
//     extensions via Options.Tax (the bitmap engine cannot honor opaque
//     per-group transforms), and
//   - the matrix over the groups' distinct items fits Options.BitmapBudget.
func EngineFor(db txdb.DB, groups [][]item.Itemset, transforms []TransformInto, opt Options) Engine {
	switch opt.Backend {
	case BackendHashTree:
		return HashTreeEngine{}
	case BackendBitmap:
		return BitmapEngine{}
	}
	if _, ok := db.(*txdb.MemDB); !ok {
		return HashTreeEngine{}
	}
	if hasPerGroup(transforms) && opt.Tax == nil {
		return HashTreeEngine{}
	}
	budget := opt.BitmapBudget
	if budget == 0 {
		budget = DefaultBitmapBudget
	}
	if fault.Hit(PointBudget) != nil {
		return HashTreeEngine{} // injected budget trip
	}
	est := bitmat.EstimateBytes(db.Count(), usedItems(groups).Len())
	if est > budget {
		return HashTreeEngine{}
	}
	// A matrix that fits BitmapBudget may still not fit what is left of the
	// process memory budget; don't pick an engine whose reservation is
	// already known to fail.
	if est > opt.Mem.Available() {
		return HashTreeEngine{}
	}
	return BitmapEngine{}
}

// hasPerGroup reports whether any group has its own transform installed.
func hasPerGroup(transforms []TransformInto) bool {
	for _, tr := range transforms {
		if tr != nil {
			return true
		}
	}
	return false
}

// usedItems returns the sorted distinct items over all candidate groups.
func usedItems(groups [][]item.Itemset) item.Itemset {
	seen := make(map[item.Item]struct{})
	var out []item.Item
	for _, g := range groups {
		for _, c := range g {
			for _, x := range c {
				if _, ok := seen[x]; !ok {
					seen[x] = struct{}{}
					out = append(out, x)
				}
			}
		}
	}
	return item.SortDedup(out)
}

// applyShared applies the shared transform configuration (TransformInto
// first, then the legacy Transform, then identity) using buf as scratch. It
// returns the transformed set and the possibly-grown buffer to keep for the
// next transaction.
func applyShared(opt Options, buf []item.Item, raw item.Itemset) (item.Itemset, []item.Item) {
	if opt.TransformInto != nil {
		s := opt.TransformInto(buf[:0], raw)
		return s, s[:0]
	}
	if opt.Transform != nil {
		return opt.Transform(raw), buf
	}
	return raw, buf
}

// sharedBitmapTransform adapts the shared transform configuration to the
// bitmat builder's hook (nil when counting raw transactions).
func sharedBitmapTransform(opt Options) bitmat.Transform {
	if opt.TransformInto != nil {
		return bitmat.Transform(opt.TransformInto)
	}
	if opt.Transform != nil {
		tr := opt.Transform
		return func(_ []item.Item, s item.Itemset) item.Itemset { return tr(s) }
	}
	return nil
}

// BitmapEngine counts candidates against a vertical TID-bitmap matrix: one
// database pass materializes a bitmap row per distinct candidate item, then
// each candidate's support is the popcount of the AND of its rows. The
// candidate loop — not the scan — is what parallelizes: Options.Parallelism
// workers shard the flattened candidate list.
//
// When Options.Tax is set the matrix is built with ancestor-closure rows
// (bitmat.FromDBTaxonomy) and all transforms are skipped: the Tax field is
// the caller's declaration that its installed transforms are taxonomy
// ancestor extensions (possibly filtered to candidate items), which the
// closure build reproduces exactly. Without Tax, a shared transform is
// applied during the build; opaque per-group transforms are an error.
type BitmapEngine struct{}

// Name implements Engine.
func (BitmapEngine) Name() string { return "bitmap" }

// Multi implements Engine.
func (BitmapEngine) Multi(db txdb.DB, groups [][]item.Itemset, transforms []TransformInto, opt Options) ([][]int, error) {
	if transforms != nil && len(transforms) != len(groups) {
		return nil, fmt.Errorf("count: %d transforms for %d groups", len(transforms), len(groups))
	}
	used := usedItems(groups)
	reserved := bitmat.EstimateBytes(db.Count(), used.Len())
	if err := opt.Mem.Reserve(reserved); err != nil {
		return nil, fmt.Errorf("count: bitmap matrix: %w", err)
	}
	defer opt.Mem.Release(reserved)
	var (
		m   *bitmat.Matrix
		err error
	)
	switch {
	case opt.Tax != nil:
		m, err = bitmat.FromDBTaxonomy(db, opt.Tax, used)
	case hasPerGroup(transforms):
		return nil, fmt.Errorf("count: bitmap backend cannot honor per-group transforms without Options.Tax")
	default:
		m, err = bitmat.FromDB(db, used, sharedBitmapTransform(opt))
	}
	if err != nil {
		return nil, err
	}
	flat := make([]item.Itemset, 0)
	for _, g := range groups {
		flat = append(flat, g...)
	}
	counts, err := m.Counts(flat, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(groups))
	off := 0
	for gi, g := range groups {
		out[gi] = counts[off : off+len(g) : off+len(g)]
		off += len(g)
	}
	return out, nil
}
