package count

import (
	"errors"
	"fmt"
	"sync"

	"negmine/internal/govern"
	"negmine/internal/hashtree"
	"negmine/internal/item"
	"negmine/internal/stats"
	"negmine/internal/txdb"
)

// Multi counts several candidate groups — each group of uniform itemset
// size, sizes may differ across groups — in a single scan of db. This is the
// primitive behind the paper's improved negative algorithm (candidates of
// all sizes counted in one pass, §2.2) and behind EstMerge's merged passes.
// The result is indexed [group][candidate].
func Multi(db txdb.DB, groups [][]item.Itemset, opt Options) ([][]int, error) {
	return MultiTransformed(db, groups, nil, opt)
}

// MultiTransformed is Multi with an optional per-group transaction
// transform. A narrower transform per group (e.g. extending a transaction
// only with the ancestors relevant to that group's candidates) keeps each
// hash tree's probe width as small as a dedicated pass would, while still
// paying for only one scan. transforms may be nil (use the shared
// Options.TransformInto/Transform for every group); individual entries may
// be nil too. The counting engine is chosen per Options.Backend (see
// EngineFor).
func MultiTransformed(db txdb.DB, groups [][]item.Itemset, transforms []TransformInto, opt Options) ([][]int, error) {
	if transforms != nil && len(transforms) != len(groups) {
		return nil, fmt.Errorf("count: %d transforms for %d groups", len(transforms), len(groups))
	}
	eng := EngineFor(db, groups, transforms, opt)
	out, err := eng.Multi(db, groups, transforms, opt)
	if err != nil && errors.Is(err, govern.ErrOverBudget) {
		// Degradation ladder: a bitmap matrix that no longer fits the
		// process memory budget (EngineFor estimates against a racing
		// ledger, so a reservation can still lose) falls back to the
		// hash-tree engine, which needs a fraction of the memory. A
		// hash-tree reservation that fails has nothing cheaper to fall
		// back to and stays an error.
		if _, isBitmap := eng.(BitmapEngine); isBitmap {
			return HashTreeEngine{}.Multi(db, groups, transforms, opt)
		}
	}
	return out, err
}

// HashTreeEngine counts by probing one Agrawal–Srikant hash tree per group
// against every (transformed) transaction. It is the paper-faithful scan
// engine: it works over any DB and any transform, and parallelizes by
// sharding transactions across workers with per-worker counters merged at
// the end.
type HashTreeEngine struct{}

// Name implements Engine.
func (HashTreeEngine) Name() string { return "hashtree" }

// hashTreeWorker is the per-goroutine counting state: one counter per
// group plus the scratch buffers that make steady-state counting
// allocation-free. The shared buffer holds the transaction transformed by
// the shared Options transform — computed once per transaction and reused
// by every group without its own transform (several groups re-running the
// same ancestor extension was a measured hot spot); the group buffer holds
// the current per-group transform's output.
type hashTreeWorker struct {
	cs   []*hashtree.Counter
	buf  []item.Item // shared-transform scratch
	gbuf []item.Item // per-group-transform scratch
}

func newHashTreeWorker(trees []*hashtree.Tree) *hashTreeWorker {
	w := &hashTreeWorker{
		cs:   make([]*hashtree.Counter, len(trees)),
		buf:  make([]item.Item, 0, 64),
		gbuf: make([]item.Item, 0, 64),
	}
	for i, t := range trees {
		w.cs[i] = t.NewCounter()
	}
	return w
}

// addAll probes one raw transaction against every group's tree.
func (w *hashTreeWorker) addAll(transforms []TransformInto, opt Options, raw item.Itemset) {
	var shared item.Itemset
	sharedDone := false
	for g, c := range w.cs {
		if transforms != nil && transforms[g] != nil {
			s := transforms[g](w.gbuf[:0], raw)
			c.Add(s)
			w.gbuf = s[:0]
			continue
		}
		if !sharedDone {
			shared, w.buf = applyShared(opt, w.buf, raw)
			sharedDone = true
		}
		c.Add(shared)
	}
}

// Multi implements Engine.
func (HashTreeEngine) Multi(db txdb.DB, groups [][]item.Itemset, transforms []TransformInto, opt Options) ([][]int, error) {
	if transforms != nil && len(transforms) != len(groups) {
		return nil, fmt.Errorf("count: %d transforms for %d groups", len(transforms), len(groups))
	}
	sharder, canShard := db.(txdb.Sharder)
	workers := opt.Parallelism
	if workers < 2 || !canShard {
		workers = 1
	}
	var reserved int64
	for _, g := range groups {
		reserved += hashtree.EstimateBytes(len(g), workers)
	}
	if err := opt.Mem.Reserve(reserved); err != nil {
		return nil, fmt.Errorf("count: hash trees: %w", err)
	}
	defer opt.Mem.Release(reserved)

	trees := make([]*hashtree.Tree, len(groups))
	for g, cands := range groups {
		t, err := hashtree.Build(cands, opt.MaxLeaf)
		if err != nil {
			return nil, fmt.Errorf("count: group %d: %w", g, err)
		}
		trees[g] = t
	}

	if workers < 2 {
		w := newHashTreeWorker(trees)
		err := db.Scan(func(tx txdb.Transaction) error {
			w.addAll(transforms, opt, tx.Items)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return collect(w.cs), nil
	}

	all := make([]*hashTreeWorker, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := newHashTreeWorker(trees)
			all[wi] = w
			errs[wi] = sharder.ScanShard(wi, workers, func(tx txdb.Transaction) error {
				w.addAll(transforms, opt, tx.Items)
				return nil
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("count: worker %d: %w", w, err)
		}
	}
	for w := 1; w < workers; w++ {
		for g := range trees {
			all[0].cs[g].Merge(all[w].cs[g])
		}
	}
	return collect(all[0].cs), nil
}

func collect(cs []*hashtree.Counter) [][]int {
	out := make([][]int, len(cs))
	for i, c := range cs {
		out[i] = c.Counts()
	}
	return out
}

// Sample draws a uniform random sample of up to n transactions from db via
// reservoir sampling (one pass). Itemsets are cloned, so the sample is
// independent of scan buffers.
func Sample(db txdb.DB, n int, seed int64) (*txdb.MemDB, error) {
	if n <= 0 {
		return nil, fmt.Errorf("count: sample size %d, want > 0", n)
	}
	src := stats.NewSource(seed)
	reservoir := make([]txdb.Transaction, 0, n)
	i := 0
	err := db.Scan(func(tx txdb.Transaction) error {
		if len(reservoir) < n {
			reservoir = append(reservoir, txdb.Transaction{TID: tx.TID, Items: tx.Items.Clone()})
		} else if j := src.Intn(i + 1); j < n {
			reservoir[j] = txdb.Transaction{TID: tx.TID, Items: tx.Items.Clone()}
		}
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return txdb.NewMemDB(reservoir)
}
