package count

import (
	"fmt"
	"sync"

	"negmine/internal/hashtree"
	"negmine/internal/item"
	"negmine/internal/stats"
	"negmine/internal/txdb"
)

// Multi counts several candidate groups — each group of uniform itemset
// size, sizes may differ across groups — in a single scan of db. This is the
// primitive behind the paper's improved negative algorithm (candidates of
// all sizes counted in one pass, §2.2) and behind EstMerge's merged passes.
// The result is indexed [group][candidate].
func Multi(db txdb.DB, groups [][]item.Itemset, opt Options) ([][]int, error) {
	return MultiTransformed(db, groups, nil, opt)
}

// MultiTransformed is Multi with an optional per-group transaction
// transform. A narrower transform per group (e.g. extending a transaction
// only with the ancestors relevant to that group's candidates) keeps each
// hash tree's probe width as small as a dedicated pass would, while still
// paying for only one scan. transforms may be nil (use opt.Transform for
// every group); individual entries may be nil too.
func MultiTransformed(db txdb.DB, groups [][]item.Itemset, transforms []func(item.Itemset) item.Itemset, opt Options) ([][]int, error) {
	if transforms != nil && len(transforms) != len(groups) {
		return nil, fmt.Errorf("count: %d transforms for %d groups", len(transforms), len(groups))
	}
	trees := make([]*hashtree.Tree, len(groups))
	for g, cands := range groups {
		t, err := hashtree.Build(cands, opt.MaxLeaf)
		if err != nil {
			return nil, fmt.Errorf("count: group %d: %w", g, err)
		}
		trees[g] = t
	}
	groupTransform := func(g int, s item.Itemset) item.Itemset {
		if transforms != nil && transforms[g] != nil {
			return transforms[g](s)
		}
		return transform(opt, s)
	}
	newCounters := func() []*hashtree.Counter {
		cs := make([]*hashtree.Counter, len(trees))
		for i, t := range trees {
			cs[i] = t.NewCounter()
		}
		return cs
	}
	addAll := func(cs []*hashtree.Counter, raw item.Itemset) {
		for g, c := range cs {
			c.Add(groupTransform(g, raw))
		}
	}

	sharder, canShard := db.(txdb.Sharder)
	workers := opt.Parallelism
	if workers < 2 || !canShard {
		cs := newCounters()
		err := db.Scan(func(tx txdb.Transaction) error {
			addAll(cs, tx.Items)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return collect(cs), nil
	}

	all := make([][]*hashtree.Counter, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cs := newCounters()
			all[w] = cs
			errs[w] = sharder.ScanShard(w, workers, func(tx txdb.Transaction) error {
				addAll(cs, tx.Items)
				return nil
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("count: worker %d: %w", w, err)
		}
	}
	for w := 1; w < workers; w++ {
		for g := range trees {
			all[0][g].Merge(all[w][g])
		}
	}
	return collect(all[0]), nil
}

func collect(cs []*hashtree.Counter) [][]int {
	out := make([][]int, len(cs))
	for i, c := range cs {
		out[i] = c.Counts()
	}
	return out
}

// Sample draws a uniform random sample of up to n transactions from db via
// reservoir sampling (one pass). Itemsets are cloned, so the sample is
// independent of scan buffers.
func Sample(db txdb.DB, n int, seed int64) (*txdb.MemDB, error) {
	if n <= 0 {
		return nil, fmt.Errorf("count: sample size %d, want > 0", n)
	}
	src := stats.NewSource(seed)
	reservoir := make([]txdb.Transaction, 0, n)
	i := 0
	err := db.Scan(func(tx txdb.Transaction) error {
		if len(reservoir) < n {
			reservoir = append(reservoir, txdb.Transaction{TID: tx.TID, Items: tx.Items.Clone()})
		} else if j := src.Intn(i + 1); j < n {
			reservoir[j] = txdb.Transaction{TID: tx.TID, Items: tx.Items.Clone()}
		}
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return txdb.NewMemDB(reservoir)
}
