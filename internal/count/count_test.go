package count

import (
	"math/rand"
	"testing"

	"negmine/internal/item"
	"negmine/internal/txdb"
)

func randomDB(seed int64, nTx, universe, maxLen int) *txdb.MemDB {
	r := rand.New(rand.NewSource(seed))
	db := &txdb.MemDB{}
	for i := 0; i < nTx; i++ {
		n := 1 + r.Intn(maxLen)
		raw := make([]item.Item, n)
		for j := range raw {
			raw[j] = item.Item(r.Intn(universe))
		}
		db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
	}
	return db
}

func TestCandidatesMatchesDirect(t *testing.T) {
	db := randomDB(1, 200, 20, 8)
	cands := []item.Itemset{item.New(1, 2), item.New(3, 4), item.New(0, 19)}
	got, err := Candidates(db, cands, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(cands))
	db.Scan(func(tx txdb.Transaction) error {
		for i, c := range cands {
			if c.SubsetOf(tx.Items) {
				want[i]++
			}
		}
		return nil
	})
	for i := range cands {
		if got[i] != want[i] {
			t.Errorf("candidate %v: got %d, want %d", cands[i], got[i], want[i])
		}
	}
	// Empty candidate list.
	if out, err := Candidates(db, nil, Options{}); err != nil || out != nil {
		t.Errorf("empty candidates: %v, %v", out, err)
	}
}

func TestMultiMixedSizes(t *testing.T) {
	db := randomDB(2, 300, 15, 7)
	groups := [][]item.Itemset{
		{item.New(1), item.New(2)},
		{item.New(1, 2), item.New(3, 4)},
		{item.New(1, 2, 3)},
	}
	got, err := Multi(db, groups, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for g, cands := range groups {
		for i, c := range cands {
			want := 0
			db.Scan(func(tx txdb.Transaction) error {
				if c.SubsetOf(tx.Items) {
					want++
				}
				return nil
			})
			if got[g][i] != want {
				t.Errorf("group %d cand %v: got %d, want %d", g, c, got[g][i], want)
			}
		}
	}
}

func TestMultiParallelMatchesSequential(t *testing.T) {
	db := randomDB(3, 500, 30, 10)
	groups := [][]item.Itemset{
		{item.New(1), item.New(5), item.New(29)},
		{item.New(2, 3), item.New(4, 9), item.New(10, 11)},
	}
	seq, err := Multi(db, groups, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Multi(db, groups, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for g := range groups {
		for i := range groups[g] {
			if seq[g][i] != par[g][i] {
				t.Errorf("group %d cand %d: seq %d, par %d", g, i, seq[g][i], par[g][i])
			}
		}
	}
}

func TestSingletonsParallel(t *testing.T) {
	db := randomDB(4, 400, 25, 6)
	seq, err := Singletons(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Singletons(db, Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != par.Len() {
		t.Fatalf("Len %d vs %d", seq.Len(), par.Len())
	}
	seq.Each(func(s item.Itemset, c int) {
		if par.Count(s) != c {
			t.Errorf("item %v: seq %d, par %d", s, c, par.Count(s))
		}
	})
}

func TestTransformApplied(t *testing.T) {
	db := txdb.FromItemsets([]item.Item{10}, []item.Item{20})
	shift := func(s item.Itemset) item.Itemset {
		out := make([]item.Item, len(s))
		for i, x := range s {
			out[i] = x + 1
		}
		return item.New(out...)
	}
	got, err := Candidates(db, []item.Itemset{item.New(11)}, Options{Transform: shift})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Errorf("transformed count = %d, want 1", got[0])
	}
	c, err := Singletons(db, Options{Transform: shift})
	if err != nil {
		t.Fatal(err)
	}
	if c.Count(item.New(11)) != 1 || c.Count(item.New(10)) != 0 {
		t.Error("Singletons ignored transform")
	}
}

func TestSample(t *testing.T) {
	db := randomDB(5, 1000, 50, 5)
	s, err := Sample(db, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 100 {
		t.Errorf("sample size = %d", s.Count())
	}
	// Sample of a small db returns everything.
	small := randomDB(6, 10, 5, 3)
	s2, err := Sample(small, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 10 {
		t.Errorf("small sample size = %d", s2.Count())
	}
	// Deterministic under the same seed.
	a, _ := Sample(db, 50, 9)
	b, _ := Sample(db, 50, 9)
	for i := range a.Transactions() {
		if a.Transactions()[i].TID != b.Transactions()[i].TID {
			t.Fatal("sampling not deterministic")
		}
	}
	if _, err := Sample(db, 0, 1); err == nil {
		t.Error("zero sample size accepted")
	}
}

func TestSampleUniformity(t *testing.T) {
	// Each transaction should appear with roughly equal frequency across
	// many sampled reservoirs.
	db := randomDB(8, 40, 10, 3)
	hits := make(map[int64]int)
	const trials = 400
	for s := int64(0); s < trials; s++ {
		smp, err := Sample(db, 10, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, tx := range smp.Transactions() {
			hits[tx.TID]++
		}
	}
	// Expected hits per TID = trials * 10/40 = 100.
	for tid, h := range hits {
		if h < 50 || h > 160 {
			t.Errorf("tid %d sampled %d times, expected ≈100", tid, h)
		}
	}
	if len(hits) != 40 {
		t.Errorf("only %d of 40 tids ever sampled", len(hits))
	}
}

// TestSampleDeterministicItems strengthens the fixed-seed guarantee beyond
// TIDs: two samples under the same seed are transaction-for-transaction
// identical, itemsets included, and a different seed yields a different
// reservoir.
func TestSampleDeterministicItems(t *testing.T) {
	db := randomDB(11, 500, 30, 6)
	a, err := Sample(db, 40, 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(db, 40, 123)
	if err != nil {
		t.Fatal(err)
	}
	for i, tx := range a.Transactions() {
		other := b.Transactions()[i]
		if tx.TID != other.TID || !tx.Items.Equal(other.Items) {
			t.Fatalf("sample diverged at %d: %v vs %v", i, tx, other)
		}
	}
	c, err := Sample(db, 40, 124)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, tx := range a.Transactions() {
		if tx.TID != c.Transactions()[i].TID {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical reservoirs")
	}
}

// TestSampleChiSquare bounds the deviation of per-transaction inclusion
// frequencies from uniform with a chi-square statistic over many seeds.
// Reservoir sampling without replacement has negatively correlated cells,
// which deflates the statistic below the df≈N−1 of the independent case, so
// the generous 2·df bound makes this a solid smoke test with zero flake
// risk (seeds are fixed).
func TestSampleChiSquare(t *testing.T) {
	const (
		nTx    = 50
		sample = 10
		trials = 600
	)
	db := randomDB(12, nTx, 10, 3)
	hits := make(map[int64]float64)
	for s := int64(0); s < trials; s++ {
		smp, err := Sample(db, sample, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, tx := range smp.Transactions() {
			hits[tx.TID]++
		}
	}
	expected := float64(trials) * float64(sample) / float64(nTx)
	chi2 := 0.0
	for tid := int64(1); tid <= nTx; tid++ {
		d := hits[tid] - expected
		chi2 += d * d / expected
	}
	if df := float64(nTx - 1); chi2 > 2*df {
		t.Fatalf("chi-square = %.1f over df = %.0f; sampling looks non-uniform", chi2, df)
	}
}

// TestSampleIndependentOfSource pins the itemset-cloning guarantee: the
// reservoir must not alias the source database's buffers, so mutating the
// source after sampling cannot change the sample.
func TestSampleIndependentOfSource(t *testing.T) {
	db := txdb.FromItemsets(
		[]item.Item{1, 2, 3},
		[]item.Item{4, 5},
		[]item.Item{6, 7, 8},
	)
	smp, err := Sample(db, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]item.Itemset, smp.Count())
	for i, tx := range smp.Transactions() {
		want[i] = tx.Items.Clone()
	}
	// Clobber every itemset of the source in place.
	for _, tx := range db.Transactions() {
		for j := range tx.Items {
			tx.Items[j] = 999
		}
	}
	for i, tx := range smp.Transactions() {
		if !tx.Items.Equal(want[i]) {
			t.Fatalf("sample %d changed after source mutation: %v, want %v", i, tx.Items, want[i])
		}
	}
}
