package count

import (
	"errors"
	"math/rand"
	"testing"

	"negmine/internal/bitmat"
	"negmine/internal/fault"
	"negmine/internal/govern"
	"negmine/internal/item"
)

func TestBudgetAutoAvoidsUnaffordableBitmap(t *testing.T) {
	db := randomDB(7, 6400, 100, 10)
	r := rand.New(rand.NewSource(8))
	universe := make(item.Itemset, 100)
	for i := range universe {
		universe[i] = item.Item(i)
	}
	groups := randomGroups(r, universe, 2)

	est := bitmat.EstimateBytes(db.Count(), usedItems(groups).Len())
	mem := govern.NewBudget(est / 2) // bitmap cannot fit, hash trees can
	opt := Options{Mem: mem}
	if eng := EngineFor(db, groups, nil, opt); eng.Name() != "hashtree" {
		t.Fatalf("auto selection under budget picked %s, want hashtree", eng.Name())
	}

	// Without the budget the same pass is affordable and auto picks bitmap.
	if eng := EngineFor(db, groups, nil, Options{}); eng.Name() != "bitmap" {
		t.Fatalf("auto selection without budget picked %s, want bitmap", eng.Name())
	}
}

func TestBudgetBitmapFallsBackToHashTree(t *testing.T) {
	db := randomDB(9, 6400, 100, 10)
	r := rand.New(rand.NewSource(10))
	universe := make(item.Itemset, 100)
	for i := range universe {
		universe[i] = item.Item(i)
	}
	groups := randomGroups(r, universe, 2)

	want, err := Multi(db, groups, Options{})
	if err != nil {
		t.Fatal(err)
	}

	est := bitmat.EstimateBytes(db.Count(), usedItems(groups).Len())
	mem := govern.NewBudget(est / 2)
	got, err := Multi(db, groups, Options{Backend: BackendBitmap, Mem: mem})
	if err != nil {
		t.Fatalf("forced bitmap under budget must degrade, got error: %v", err)
	}
	for g := range want {
		for i := range want[g] {
			if got[g][i] != want[g][i] {
				t.Fatalf("group %d cand %d: budgeted %d, unlimited %d", g, i, got[g][i], want[g][i])
			}
		}
	}
	if mem.Denials() == 0 {
		t.Fatal("fallback ran but the budget recorded no denial")
	}
	if mem.InUse() != 0 {
		t.Fatalf("budget leaked: %d bytes still in use", mem.InUse())
	}
	if hw := mem.HighWater(); hw == 0 || hw > mem.Total() {
		t.Fatalf("high water %d, want in (0, %d]", hw, mem.Total())
	}
}

func TestBudgetFailpointForcesBitmapFallback(t *testing.T) {
	db := randomDB(11, 300, 30, 8)
	r := rand.New(rand.NewSource(12))
	universe := make(item.Itemset, 30)
	for i := range universe {
		universe[i] = item.Item(i)
	}
	groups := randomGroups(r, universe, 2)

	want, err := Multi(db, groups, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Unlimited budget: only the injected fault can deny, and it denies the
	// first reservation — the bitmap matrix — so the pass must degrade to
	// the hash tree, whose own reservation (hit 2) succeeds.
	mem := govern.NewBudget(0)
	defer fault.Enable(govern.PointBudget, fault.Error("injected oom"), fault.OnHit(1))()
	got, err := Multi(db, groups, Options{Backend: BackendBitmap, Mem: mem})
	if err != nil {
		t.Fatalf("injected bitmap denial must degrade, got error: %v", err)
	}
	for g := range want {
		for i := range want[g] {
			if got[g][i] != want[g][i] {
				t.Fatalf("group %d cand %d: budgeted %d, unlimited %d", g, i, got[g][i], want[g][i])
			}
		}
	}
	if mem.Denials() != 1 {
		t.Fatalf("denials = %d, want 1", mem.Denials())
	}
}

func TestBudgetHashTreeIsTheFloor(t *testing.T) {
	db := randomDB(13, 200, 20, 6)
	r := rand.New(rand.NewSource(14))
	universe := make(item.Itemset, 20)
	for i := range universe {
		universe[i] = item.Item(i)
	}
	groups := randomGroups(r, universe, 2)

	mem := govern.NewBudget(16) // nothing fits
	_, err := Multi(db, groups, Options{Backend: BackendHashTree, Mem: mem})
	if !errors.Is(err, govern.ErrOverBudget) {
		t.Fatalf("hash tree under impossible budget: %v, want ErrOverBudget", err)
	}
	if mem.InUse() != 0 {
		t.Fatalf("failed reservation leaked %d bytes", mem.InUse())
	}
}
