package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec arms failpoints from a textual spec, the NEGMINE_FAULTS format:
//
//	point=action[:trigger]...[;point=action[:trigger]...]...
//
// where action is one of
//
//	error(msg)   Hit returns an error wrapping ErrInjected
//	panic(msg)   Hit panics
//	sleep(dur)   Hit stalls for a time.ParseDuration duration
//
// and each trigger is one of on(n), after(n), times(n), prob(p), seed(n).
// prob defaults to seed 1 unless a seed(n) trigger follows it. Example:
//
//	txdb.scan=error(disk read failed):on(3);serve.swap=sleep(50ms)
//
// Entries are applied in order; a bad entry returns an error without
// disarming points armed by earlier entries.
func ParseSpec(spec string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || rest == "" {
			return fmt.Errorf("entry %q: want point=action[:trigger]...", entry)
		}
		parts, err := splitTop(rest)
		if err != nil {
			return fmt.Errorf("entry %q: %w", entry, err)
		}
		act, err := parseAction(parts[0])
		if err != nil {
			return fmt.Errorf("point %s: %w", name, err)
		}
		opts, err := parseTriggers(parts[1:])
		if err != nil {
			return fmt.Errorf("point %s: %w", name, err)
		}
		Enable(name, act, opts...)
	}
	return nil
}

// splitTop splits on ':' outside parentheses, so error(a:b) stays whole.
func splitTop(s string) ([]string, error) {
	var out []string
	depth, start := 0, 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ')' in %q", s)
			}
		case ':':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '(' in %q", s)
	}
	return append(out, s[start:]), nil
}

// parseCall splits "word(arg)" into word and arg; a bare "word" has arg "".
func parseCall(s string) (word, arg string, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return s, "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("malformed %q: want word(arg)", s)
	}
	return s[:open], s[open+1 : len(s)-1], nil
}

func parseAction(s string) (Action, error) {
	word, arg, err := parseCall(s)
	if err != nil {
		return Action{}, err
	}
	switch word {
	case "error":
		if arg == "" {
			arg = "injected error"
		}
		return Error(arg), nil
	case "panic":
		if arg == "" {
			arg = "injected panic"
		}
		return Panic(arg), nil
	case "sleep":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Action{}, fmt.Errorf("sleep duration %q: %w", arg, err)
		}
		return Sleep(d), nil
	default:
		return Action{}, fmt.Errorf("unknown action %q (want error, panic or sleep)", word)
	}
}

func parseTriggers(parts []string) ([]Option, error) {
	var opts []Option
	var prob float64
	seed := int64(1)
	haveProb := false
	for _, part := range parts {
		word, arg, err := parseCall(part)
		if err != nil {
			return nil, err
		}
		switch word {
		case "on", "after", "times":
			n, err := strconv.Atoi(arg)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%s(%s): want a non-negative integer", word, arg)
			}
			switch word {
			case "on":
				opts = append(opts, OnHit(n))
			case "after":
				opts = append(opts, After(n))
			case "times":
				opts = append(opts, Times(n))
			}
		case "prob":
			p, err := strconv.ParseFloat(arg, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("prob(%s): want a probability in [0, 1]", arg)
			}
			prob, haveProb = p, true
		case "seed":
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed(%s): want an integer", arg)
			}
			seed = n
		default:
			return nil, fmt.Errorf("unknown trigger %q (want on, after, times, prob or seed)", word)
		}
	}
	if haveProb {
		opts = append(opts, Prob(prob, seed))
	}
	return opts, nil
}
