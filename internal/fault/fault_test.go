package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("nothing.armed"); err != nil {
		t.Fatalf("disabled Hit = %v, want nil", err)
	}
	if Active() {
		t.Fatal("Active() = true with nothing armed")
	}
}

func TestErrorActionFiresEveryHit(t *testing.T) {
	defer Enable("p.err", Error("boom"))()
	for i := 0; i < 3; i++ {
		err := Hit("p.err")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
	}
	if got := Fired("p.err"); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
}

func TestOnHitFiresExactlyOnce(t *testing.T) {
	defer Enable("p.on", Error("boom"), OnHit(3))()
	var errs []error
	for i := 0; i < 5; i++ {
		errs = append(errs, Hit("p.on"))
	}
	for i, err := range errs {
		want := i == 2 // the third evaluation
		if (err != nil) != want {
			t.Errorf("hit %d: err = %v, want fire=%v", i+1, err, want)
		}
	}
	if Hits("p.on") != 5 || Fired("p.on") != 1 {
		t.Fatalf("Hits/Fired = %d/%d, want 5/1", Hits("p.on"), Fired("p.on"))
	}
}

func TestAfterAndTimes(t *testing.T) {
	defer Enable("p.at", Error("boom"), After(2), Times(2))()
	var fired int
	for i := 0; i < 6; i++ {
		if Hit("p.at") != nil {
			fired++
			if i < 2 {
				t.Errorf("fired on hit %d, want only after 2", i+1)
			}
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (Times cap)", fired)
	}
}

func TestProbIsDeterministic(t *testing.T) {
	run := func() []bool {
		defer Enable("p.prob", Error("boom"), Prob(0.5, 42))()
		out := make([]bool, 20)
		for i := range out {
			out[i] = Hit("p.prob") != nil
		}
		return out
	}
	a, b := run(), run()
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identically-seeded runs", i)
		}
		if a[i] {
			some = true
		}
	}
	if !some {
		t.Fatal("prob(0.5) never fired in 20 hits")
	}
}

func TestPanicAction(t *testing.T) {
	defer Enable("p.panic", Panic("kaboom"))()
	defer func() {
		if recover() == nil {
			t.Fatal("Hit did not panic")
		}
	}()
	_ = Hit("p.panic")
}

func TestSleepAction(t *testing.T) {
	defer Enable("p.sleep", Sleep(20*time.Millisecond))()
	start := time.Now()
	if err := Hit("p.sleep"); err != nil {
		t.Fatalf("sleep Hit = %v, want nil", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("Hit returned after %v, want ≥ 20ms stall", d)
	}
}

func TestParseSpec(t *testing.T) {
	Reset()
	defer Reset()
	spec := "a.scan=error(disk read failed):on(2); b.swap=sleep(1ms) ; c.x=panic(dead):after(1):times(3)"
	if err := ParseSpec(spec); err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if err := Hit("a.scan"); err != nil {
		t.Fatalf("a.scan hit 1 fired: %v", err)
	}
	err := Hit("a.scan")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("a.scan hit 2 = %v, want injected error", err)
	}
	if got := err.Error(); got != "fault a.scan: disk read failed: fault injected" {
		t.Fatalf("error text = %q", got)
	}
	if err := Hit("b.swap"); err != nil {
		t.Fatalf("b.swap = %v, want nil (sleep)", err)
	}
}

func TestParseSpecProbSeed(t *testing.T) {
	Reset()
	defer Reset()
	if err := ParseSpec("p=error(x):prob(0.5):seed(7)"); err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	fired := 0
	for i := 0; i < 50; i++ {
		if Hit("p") != nil {
			fired++
		}
	}
	if fired == 0 || fired == 50 {
		t.Fatalf("prob(0.5) fired %d/50 times, want strictly between", fired)
	}
}

func TestParseSpecErrors(t *testing.T) {
	Reset()
	defer Reset()
	for _, bad := range []string{
		"noequals",
		"p=explode(now)",
		"p=sleep(fast)",
		"p=error(x):on(-1)",
		"p=error(x):prob(2)",
		"p=error(x:open",
		"p=error(x):wat(1)",
	} {
		if err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) = nil, want error", bad)
		}
	}
}

func TestEnableReplacesAndDisable(t *testing.T) {
	off := Enable("p.re", Error("first"), OnHit(100))
	Enable("p.re", Error("second"))
	if err := Hit("p.re"); err == nil {
		t.Fatal("replacement point did not fire")
	}
	off()
	if err := Hit("p.re"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
}
