// Package fault implements deterministic failpoints: named injection sites
// compiled into the hot paths of the library (database scans, counting
// backends, report I/O, snapshot builds) that are no-ops in production and
// can be armed per-test — or per-process via the NEGMINE_FAULTS environment
// variable — to return errors, panic, or stall.
//
// The package exists because the system's central claim ("a failed re-mine
// keeps the old snapshot serving", "a killed pass resumes from its
// checkpoint") is only credible if the failures can actually be produced on
// demand. Failpoints make partial failure a first-class, reproducible test
// input instead of something that only happens on broken hardware.
//
// # Usage
//
// A site evaluates its point with Hit:
//
//	if err := fault.Hit("txdb.scan"); err != nil {
//	    return err // injected read error
//	}
//
// When no point is armed (the production default) Hit is a single atomic
// load. A test arms a point and disarms it on the way out:
//
//	defer fault.Enable("txdb.scan", fault.Error("disk read failed"), fault.OnHit(3))()
//
// The same spec can be applied process-wide for manual chaos runs:
//
//	NEGMINE_FAULTS="txdb.scan=error(disk read failed):on(3);serve.swap=sleep(50ms)" negmined ...
//
// # Actions and triggers
//
// Actions: error(msg) makes Hit return an error wrapping ErrInjected;
// panic(msg) panics; sleep(dur) stalls and returns nil. Triggers compose:
// on(n) fires only on the n-th evaluation, after(n) only on evaluations
// beyond the n-th, times(k) caps the number of fires, prob(p) fires with
// probability p from a deterministic source (reseed with seed(n)). A point
// with no trigger fires on every evaluation.
//
// The package has no dependencies outside the standard library and must
// never import another negmine package (every layer is allowed to import
// it).
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected error wraps, so callers and
// tests can tell deliberate faults from real ones with errors.Is.
var ErrInjected = errors.New("fault injected")

type actionKind int

const (
	actError actionKind = iota
	actPanic
	actSleep
)

// Action is what an armed failpoint does when it fires.
type Action struct {
	kind actionKind
	msg  string
	d    time.Duration
}

// Error returns an action that makes Hit return an error wrapping
// ErrInjected with the given message.
func Error(msg string) Action { return Action{kind: actError, msg: msg} }

// Panic returns an action that makes Hit panic with the given message.
func Panic(msg string) Action { return Action{kind: actPanic, msg: msg} }

// Sleep returns an action that makes Hit stall for d and then return nil —
// the slow-storage / stall model, and a lever for widening race windows.
func Sleep(d time.Duration) Action { return Action{kind: actSleep, d: d} }

// point is one armed failpoint.
type point struct {
	act   Action
	onHit int64   // fire only on exactly this evaluation (1-based); 0 = any
	after int64   // fire only on evaluations > after
	times int64   // maximum number of fires; 0 = unlimited
	prob  float64 // fire probability; 0 = always
	rng   *rand.Rand

	hits  int64
	fired int64
}

// Option tunes when an armed failpoint fires.
type Option func(*point)

// OnHit fires only on the n-th evaluation of the point (1-based).
func OnHit(n int) Option { return func(p *point) { p.onHit = int64(n) } }

// After fires only on evaluations beyond the n-th.
func After(n int) Option { return func(p *point) { p.after = int64(n) } }

// Times caps the number of fires at n.
func Times(n int) Option { return func(p *point) { p.times = int64(n) } }

// Prob fires with probability prob, drawn from a deterministic source
// seeded with seed (so a chaos run is reproducible).
func Prob(prob float64, seed int64) Option {
	return func(p *point) {
		p.prob = prob
		p.rng = rand.New(rand.NewSource(seed))
	}
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
	armed  atomic.Int32 // number of armed points; 0 selects the fast path
)

// Active reports whether any failpoint is armed. Scan loops may hoist this
// check out of their hot loop and skip per-record Hit calls entirely.
func Active() bool { return armed.Load() > 0 }

// Enable arms the named failpoint and returns the function that disarms it,
// so tests can write `defer fault.Enable(...)()`. Re-enabling an armed
// point replaces it (counters restart).
func Enable(name string, act Action, opts ...Option) func() {
	p := &point{act: act}
	for _, o := range opts {
		o(p)
	}
	mu.Lock()
	if _, dup := points[name]; !dup {
		armed.Add(1)
	}
	points[name] = p
	mu.Unlock()
	return func() { Disable(name) }
}

// Disable disarms the named failpoint (a no-op if it is not armed).
func Disable(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every failpoint.
func Reset() {
	mu.Lock()
	points = map[string]*point{}
	armed.Store(0)
	mu.Unlock()
}

// Hits returns how many times the named point has been evaluated since it
// was armed; Fired how many times it actually fired.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.hits
	}
	return 0
}

// Fired returns how many times the named point has fired since it was armed.
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.fired
	}
	return 0
}

// Hit evaluates the named failpoint. With nothing armed it costs one atomic
// load and returns nil. An armed point counts the evaluation, decides
// whether to fire, and then sleeps, panics, or returns an error wrapping
// ErrInjected according to its Action.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return hitSlow(name)
}

func hitSlow(name string) error {
	mu.Lock()
	p := points[name]
	if p == nil {
		mu.Unlock()
		return nil
	}
	p.hits++
	fire := p.decide()
	if fire {
		p.fired++
	}
	act := p.act
	mu.Unlock()
	if !fire {
		return nil
	}
	switch act.kind {
	case actSleep:
		time.Sleep(act.d)
		return nil
	case actPanic:
		panic(fmt.Sprintf("fault %s: %s", name, act.msg))
	default:
		return fmt.Errorf("fault %s: %s: %w", name, act.msg, ErrInjected)
	}
}

// decide applies the point's triggers to the current (already counted)
// evaluation. Called with mu held.
func (p *point) decide() bool {
	if p.onHit > 0 && p.hits != p.onHit {
		return false
	}
	if p.hits <= p.after {
		return false
	}
	if p.times > 0 && p.fired >= p.times {
		return false
	}
	if p.prob > 0 && p.rng.Float64() >= p.prob {
		return false
	}
	return true
}

// EnvVar is the environment variable init reads a process-wide fault spec
// from.
const EnvVar = "NEGMINE_FAULTS"

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := ParseSpec(spec); err != nil {
			// A mistyped fault spec silently arming nothing would defeat
			// the point of a chaos run: refuse to start instead.
			panic(fmt.Sprintf("fault: bad %s: %v", EnvVar, err))
		}
	}
}
