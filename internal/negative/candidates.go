package negative

import (
	"math"
	"sort"

	"negmine/internal/item"
	"negmine/internal/taxonomy"
)

// Mode records which of the paper's generation cases produced a candidate.
type Mode int

const (
	// ViaChildren covers cases 1 and 2: members replaced by taxonomy
	// children.
	ViaChildren Mode = iota
	// ViaSiblings is case 3: members replaced by siblings (or declared
	// substitutes).
	ViaSiblings
)

// String names the mode.
func (m Mode) String() string {
	if m == ViaChildren {
		return "children"
	}
	return "siblings"
}

// Candidate is a candidate negative itemset with its expected support and
// the provenance of the generation path that assigned it (the
// highest-expectation path when several produce the same candidate).
type Candidate struct {
	Set      item.Itemset
	Expected float64
	// Source is the large itemset the candidate was derived from.
	Source item.Itemset
	// Via tells whether members were swapped for children or siblings.
	Via Mode
}

// generator accumulates candidate negative itemsets across large itemsets,
// deduplicating on the itemset and keeping the largest expected support
// (paper §2.1.1: "In such situations the largest value of the expected
// support is chosen").
type generator struct {
	tax   *taxonomy.Taxonomy
	table *item.SupportTable // generalized large-itemset supports
	// minExpected is MinSup·MinRI: candidates whose expected support does
	// not exceed it can never yield a rule with RI ≥ MinRI and are pruned
	// at generation time.
	minExpected float64
	// isLarge reports whether a single item has minimum support. In the
	// Improved driver the taxonomy is pre-compressed so children/sibling
	// lists contain only large items, but kept members and replacements
	// are still checked against the table for safety.
	isLarge func(item.Item) bool
	// subs maps an item to its declared substitute partners (extra
	// sibling-like choices beyond the taxonomy).
	subs map[item.Item][]item.Item
	out  map[item.Key]prov
}

// prov is the best generation path seen for a candidate so far.
type prov struct {
	expected float64
	source   item.Key
	via      Mode
}

func newGenerator(tax *taxonomy.Taxonomy, table *item.SupportTable, minSup, minRI float64, substitutes []item.Itemset) *generator {
	subs := map[item.Item][]item.Item{}
	for _, group := range substitutes {
		for _, x := range group {
			for _, y := range group {
				if x != y {
					subs[x] = append(subs[x], y)
				}
			}
		}
	}
	return &generator{
		tax:         tax,
		table:       table,
		minExpected: minSup * minRI,
		isLarge: func(x item.Item) bool {
			return table.Contains(item.Itemset{x})
		},
		subs: subs,
		out:  make(map[item.Key]prov),
	}
}

// siblingChoices returns the taxonomy siblings of x plus its declared
// substitute partners, deduplicated.
func (g *generator) siblingChoices(x item.Item) []item.Item {
	sibs := g.tax.Siblings(x)
	extra := g.subs[x]
	if len(extra) == 0 {
		return sibs
	}
	seen := make(map[item.Item]struct{}, len(sibs)+len(extra))
	out := make([]item.Item, 0, len(sibs)+len(extra))
	for _, lists := range [][]item.Item{sibs, extra} {
		for _, s := range lists {
			if _, ok := seen[s]; !ok && s != x {
				seen[s] = struct{}{}
				out = append(out, s)
			}
		}
	}
	return out
}

// fromLarge generates all candidates derivable from the large itemset l
// (paper cases 1–3):
//
//	Case 1: every member replaced by one of its children.
//	Case 2: a proper non-empty subset of members replaced by children.
//	Case 3: a proper non-empty subset of members replaced by siblings
//	        (at least one member kept; all-sibling sets are excluded).
//
// In every case the expected support is sup(l) scaled by
// Π sup(replacement)/sup(original) over the replaced members — the
// uniformity assumption.
func (g *generator) fromLarge(l item.Itemset) {
	supL, ok := g.table.Support(l)
	if !ok || supL == 0 {
		return
	}
	// Children modes: any non-empty subset replaced (cases 1 and 2 merge).
	g.enumerate(l, supL, g.tax.Children, false, ViaChildren)
	// Sibling mode: proper subset replaced (case 3). Choices include
	// declared substitute partners (the §4.1 extension).
	g.enumerate(l, supL, g.siblingChoices, true, ViaSiblings)
}

// enumerate walks positions of l deciding keep-vs-replace, multiplying the
// support ratio of each replacement. keepOne forces at least one kept
// member (sibling mode).
func (g *generator) enumerate(l item.Itemset, supL float64, choices func(item.Item) []item.Item, keepOne bool, via Mode) {
	k := l.Len()
	picked := make([]item.Item, k)
	var rec func(pos, kept, replaced int, ratio float64)
	rec = func(pos, kept, replaced int, ratio float64) {
		if pos == k {
			if replaced == 0 || (keepOne && kept == 0) {
				return
			}
			g.emit(picked, supL*ratio, l, via)
			return
		}
		x := l[pos]
		// Keep.
		picked[pos] = x
		rec(pos+1, kept+1, replaced, ratio)
		// Replace by each large choice with known support.
		supX, okX := g.table.Support(item.Itemset{x})
		if !okX || supX == 0 {
			return
		}
		for _, r := range choices(x) {
			if !g.isLarge(r) {
				continue
			}
			supR, okR := g.table.Support(item.Itemset{r})
			if !okR {
				continue
			}
			next := ratio * supR / supX
			// The scaled expectation can only shrink further; cut the
			// whole branch when it is already below the floor.
			if supL*next <= g.minExpected {
				continue
			}
			picked[pos] = r
			rec(pos+1, kept, replaced+1, next)
		}
	}
	rec(0, 0, 0, 1)
}

// emit normalizes, filters and records one candidate.
func (g *generator) emit(members []item.Item, expected float64, source item.Itemset, via Mode) {
	set := item.New(members...)
	if set.Len() != len(members) {
		return // replacement collided with another member
	}
	if expected <= g.minExpected {
		return
	}
	if g.table.Contains(set) {
		return // already found large: not a negative candidate
	}
	// A member paired with its own ancestor has degenerate support
	// semantics; such sets never appear among large itemsets either.
	for i := 0; i < set.Len(); i++ {
		for j := 0; j < set.Len(); j++ {
			if i != j && g.tax.IsAncestor(set[i], set[j]) {
				return
			}
		}
	}
	key := set.Key()
	if old, ok := g.out[key]; !ok || expected > old.expected {
		g.out[key] = prov{expected: expected, source: source.Key(), via: via}
	}
}

// candidates returns the accumulated candidates sorted by itemset.
func (g *generator) candidates() []Candidate {
	out := make([]Candidate, 0, len(g.out))
	for k, p := range g.out {
		out = append(out, Candidate{Set: k.Itemset(), Expected: p.expected, Source: p.source.Itemset(), Via: p.via})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Set.Compare(out[j].Set) < 0 })
	return out
}

// GenerateCandidates produces the candidate negative itemsets derivable
// from every large itemset of size ≥ 2 in table, using tax for
// children/sibling lookups. It is exported for tests, benchmarks and the
// candidate-count experiment (Figure 7); the mining drivers use it
// internally.
func GenerateCandidates(levels [][]item.CountedSet, table *item.SupportTable, tax *taxonomy.Taxonomy, minSup, minRI float64, substitutes []item.Itemset) []Candidate {
	g := newGenerator(tax, table, minSup, minRI, substitutes)
	for k := 2; k <= len(levels); k++ {
		for _, cs := range levels[k-1] {
			g.fromLarge(cs.Set)
		}
	}
	return g.candidates()
}

// EstimateCandidates evaluates the paper's §2.1.2 closed-form estimate of
// the number of candidates generated from one large k-itemset with average
// taxonomy fanout f:
//
//	Σ_{i=1..k} C(k, i)·f^i + k·(f − 1)
//
// (children replacements over every non-empty subset, plus sibling
// replacements of single members).
func EstimateCandidates(k int, f float64) float64 {
	sum := 0.0
	for i := 1; i <= k; i++ {
		sum += binom(k, i) * math.Pow(f, float64(i))
	}
	return sum + float64(k)*(f-1)
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}
