package negative

import (
	"sort"

	"negmine/internal/apriori"
	"negmine/internal/item"
)

// generateRules extends ap-genrules to negative itemsets (paper §2.3,
// Figure 4). For each negative itemset n it emits every rule
// (n − h) =/=> h whose antecedent and consequent are both large and whose
// rule interest RI = (E[sup(n)] − sup(n))/sup(n − h) reaches minRI.
// Consequents h grow level-wise via apriori-gen; a failed consequent is
// dropped from its level, which — because growing h shrinks the antecedent
// and can only lower RI — prunes all its supersets, exactly as the paper's
// genrules procedure does.
func generateRules(negs []Itemset, table *item.SupportTable, minRI float64) []Rule {
	var rules []Rule
	for _, n := range negs {
		k := n.Set.Len()
		if k < 2 {
			continue
		}
		deviation := n.Deviation()
		actual := n.Actual()
		// consider tests one consequent; it returns true when the rule
		// passes (so the consequent survives into the next level).
		consider := func(consequent item.Itemset) bool {
			if !table.Contains(consequent) {
				return false // consequent small; all supersets small too
			}
			ante := n.Set.Minus(consequent)
			supA, ok := table.Support(ante)
			if !ok || supA == 0 {
				return false // antecedent small (paper's Figure 4 prune)
			}
			ri := deviation / supA
			if ri < minRI {
				return false
			}
			rules = append(rules, Rule{
				Antecedent:    ante,
				Consequent:    consequent.Clone(),
				RI:            ri,
				Expected:      n.Expected,
				Actual:        actual,
				NegConfidence: 1 - actual/supA,
				Source:        n.Source,
				Via:           n.Via,
			})
			return true
		}

		// H1: single-item consequents.
		var h []item.Itemset
		n.Set.Subsets(1, func(c item.Itemset) {
			if consider(c) {
				h = append(h, c.Clone())
			}
		})
		// Grow consequents while they stay proper subsets of n.
		for m := 2; m < k && len(h) > 0; m++ {
			next := apriori.Gen(h)
			h = h[:0]
			for _, c := range next {
				if consider(c) {
					h = append(h, c)
				}
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if c := rules[i].Antecedent.Compare(rules[j].Antecedent); c != 0 {
			return c < 0
		}
		return rules[i].Consequent.Compare(rules[j].Consequent) < 0
	})
	return rules
}
