package negative

import (
	"fmt"
	"strings"

	"negmine/internal/item"
)

// Explain renders a step-by-step derivation of a negative rule: the large
// itemset it came from, the swap that formed the candidate, the expected
// and actual supports, and the interest computation — everything an analyst
// needs to audit why the system claims "customers who buy A don't buy C".
// name maps item ids to display names (e.g. Taxonomy.Name); table is the
// stage-1 support table from Result.Large.Table.
func Explain(r Rule, table *item.SupportTable, name func(item.Item) string) string {
	var b strings.Builder
	set := r.Antecedent.Union(r.Consequent)
	fmt.Fprintf(&b, "rule: %s =/=> %s\n", r.Antecedent.Format(name), r.Consequent.Format(name))

	fmt.Fprintf(&b, "  derived from the large itemset %s via %s replacement\n",
		r.Source.Format(name), r.Via)
	if sup, ok := table.Support(r.Source); ok {
		fmt.Fprintf(&b, "  sup(%s) = %.4f\n", r.Source.Format(name), sup)
	}
	// Identify the swapped members (source \ candidate vs candidate \ source).
	replaced := r.Source.Minus(set)
	replacements := set.Minus(r.Source)
	for i := 0; i < replaced.Len() && i < replacements.Len(); i++ {
		orig, repl := replaced[i], replacements[i]
		so, okO := table.Support(item.Itemset{orig})
		sr, okR := table.Support(item.Itemset{repl})
		if okO && okR && so > 0 {
			fmt.Fprintf(&b, "  swap %s → %s scales expectation by sup(%s)/sup(%s) = %.4f/%.4f\n",
				name(orig), name(repl), name(repl), name(orig), sr, so)
		}
	}
	fmt.Fprintf(&b, "  expected sup(%s) = %.4f (uniformity assumption)\n", set.Format(name), r.Expected)
	fmt.Fprintf(&b, "  actual   sup(%s) = %.4f\n", set.Format(name), r.Actual)
	if supA, ok := table.Support(r.Antecedent); ok {
		fmt.Fprintf(&b, "  RI = (%.4f − %.4f) / sup(%s)=%.4f = %.4f\n",
			r.Expected, r.Actual, r.Antecedent.Format(name), supA, r.RI)
	} else {
		fmt.Fprintf(&b, "  RI = %.4f\n", r.RI)
	}
	fmt.Fprintf(&b, "  %.1f%% of %s baskets contain no %s\n",
		r.NegConfidence*100, r.Antecedent.Format(name), r.Consequent.Format(name))
	return b.String()
}
