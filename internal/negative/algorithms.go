package negative

import (
	"sort"
	"time"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/gen"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// mineImproved is the paper's improved ("Better") algorithm (§2.2, Figure
// 3): first mine all generalized large itemsets (n passes), then delete all
// small 1-itemsets from the taxonomy, generate negative candidates of every
// size in one step, and count them in a single extra pass — or in
// ⌈candidates/MaxCandidates⌉ passes when the §2.5 memory bound is set.
func mineImproved(db txdb.DB, tax *taxonomy.Taxonomy, opt Options) (*Result, error) {
	start := time.Now()
	large, err := gen.Mine(db, tax, opt.Gen)
	if err != nil {
		return nil, err
	}
	stage1 := time.Since(start)
	res, err := mineStages23(large, tax, opt, defaultCount(db, tax, opt))
	if err != nil {
		return nil, err
	}
	res.Timing.Stage1 = stage1
	return res, nil
}

// mineStages23 runs candidate generation, counting and rule generation (the
// paper's stages 2 and 3) against an already-mined stage-1 result, with the
// counting pass delegated to countFn. Both the batch Improved driver and the
// incremental refresh path (internal/incr) go through here, which is what
// makes their rule sets identical by construction.
func mineStages23(large *apriori.Result, tax *taxonomy.Taxonomy, opt Options, countFn CountFunc) (*Result, error) {
	res := &Result{Large: large, CandidatesBySize: map[int]int{}}
	if len(large.Levels) < 2 {
		return res, nil
	}

	negStart := time.Now()
	// "Delete all small 1-itemsets from the taxonomy": the restricted view
	// drives candidate generation only — support counting below still uses
	// the original taxonomy, since a category's support comes from all its
	// leaves, small ones included.
	gtax := tax
	if !opt.DisableTaxonomyCompression {
		gtax = tax.Restrict(func(x item.Item) bool {
			return large.Table.Contains(item.Itemset{x})
		})
	}
	cands := GenerateCandidates(large.Levels, large.Table, gtax, opt.MinSupport, opt.MinRI, opt.Substitutes)
	for _, c := range cands {
		res.CandidatesBySize[c.Set.Len()]++
	}

	negs, err := countAndFilter(countFn, tax, cands, opt, large.N)
	if err != nil {
		return nil, err
	}
	res.Negatives = negs
	res.Rules = generateRules(negs, large.Table, opt.MinRI)
	res.Timing.Negative = time.Since(negStart)
	return res, nil
}

// mineNaive is the paper's naive algorithm (§2.2.1): each iteration k first
// mines the generalized large k-itemsets (one pass), then generates the
// negative candidates of size k and counts them (a second pass) — 2n passes
// in total in the paper's accounting. This implementation skips the
// iteration-1 negative pass (1-item negative itemsets cannot form a rule
// with non-empty antecedent and consequent), so it makes 2n−1 passes; the
// ~2× gap to Improved's n+1 is preserved.
func mineNaive(db txdb.DB, tax *taxonomy.Taxonomy, opt Options) (*Result, error) {
	stepper, err := gen.NewStepper(db, tax, opt.Gen)
	if err != nil {
		return nil, err
	}
	res := &Result{CandidatesBySize: map[int]int{}}
	var negs []Itemset
	k := 0
	for {
		stageStart := time.Now()
		level, err := stepper.Next()
		res.Timing.Stage1 += time.Since(stageStart)
		if err != nil {
			return nil, err
		}
		if level == nil {
			break
		}
		k++
		if k < 2 {
			continue
		}
		negStart := time.Now()
		table := stepper.Result().Table
		g := newGenerator(tax, table, opt.MinSupport, opt.MinRI, opt.Substitutes)
		for _, cs := range level {
			g.fromLarge(cs.Set)
		}
		cands := g.candidates()
		res.CandidatesBySize[k] += len(cands)
		lvlNegs, err := countAndFilter(defaultCount(db, tax, opt), tax, cands, opt, stepper.Result().N)
		if err != nil {
			return nil, err
		}
		negs = append(negs, lvlNegs...)
		res.Timing.Negative += time.Since(negStart)
	}
	res.Large = stepper.Result()
	ruleStart := time.Now()
	sort.Slice(negs, func(i, j int) bool { return negs[i].Set.Compare(negs[j].Set) < 0 })
	res.Negatives = negs
	res.Rules = generateRules(negs, res.Large.Table, opt.MinRI)
	res.Timing.Negative += time.Since(ruleStart)
	return res, nil
}

// defaultCount is the batch CountFunc: every group is counted with one
// call to the multi-tree single-pass counter over the full database.
func defaultCount(db txdb.DB, tax *taxonomy.Taxonomy, opt Options) CountFunc {
	return func(groups [][]item.Itemset, transforms []count.TransformInto) ([][]int, error) {
		cnt := opt.Count
		cnt.Tax = tax
		return count.MultiTransformed(db, groups, transforms, cnt)
	}
}

// countAndFilter counts the actual support of every candidate (batching
// passes per Options.MaxCandidates) and keeps those whose actual support
// falls at least MinSup·MinRI below expectation — the negative itemsets.
func countAndFilter(countFn CountFunc, tax *taxonomy.Taxonomy, cands []Candidate, opt Options, n int) ([]Itemset, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	threshold := opt.MinSupport * opt.MinRI
	batch := opt.MaxCandidates
	if batch <= 0 {
		batch = len(cands)
	}
	var negs []Itemset
	for lo := 0; lo < len(cands); lo += batch {
		hi := lo + batch
		if hi > len(cands) {
			hi = len(cands)
		}
		chunk := cands[lo:hi]
		// Group by itemset size for the multi-tree single-pass counter.
		bySize := map[int][]int{} // size → indices into chunk
		for i, c := range chunk {
			bySize[c.Set.Len()] = append(bySize[c.Set.Len()], i)
		}
		sizes := make([]int, 0, len(bySize))
		for s := range bySize {
			sizes = append(sizes, s)
		}
		sort.Ints(sizes)
		groups := make([][]item.Itemset, len(sizes))
		for gi, s := range sizes {
			idx := bySize[s]
			g := make([]item.Itemset, len(idx))
			for j, i := range idx {
				g[j] = chunk[i].Set
			}
			groups[gi] = g
		}
		// Each size group gets its own ancestor filter so its hash tree
		// sees transactions exactly as narrow as a dedicated per-level
		// pass would — the single scan then strictly dominates the Naive
		// algorithm's schedule. Setting Tax declares the transforms as
		// ancestor extensions, which lets the bitmap backend count the
		// same pass from closure rows instead.
		transforms := make([]count.TransformInto, len(groups))
		for gi, g := range groups {
			transforms[gi] = gen.ExtendTransform(tax, g)
		}
		counts, err := countFn(groups, transforms)
		if err != nil {
			return nil, err
		}
		for gi, s := range sizes {
			for j, i := range bySize[s] {
				c := chunk[i]
				actual := float64(counts[gi][j]) / float64(n)
				var negative bool
				switch opt.Filter {
				case AbsoluteFilter:
					// Figure 3's literal condition: count below the
					// MinSup·MinRI fraction of the database.
					negative = actual < threshold
				default:
					// §2's deviation condition.
					negative = c.Expected-actual >= threshold
				}
				if negative {
					negs = append(negs, Itemset{Set: c.Set, Expected: c.Expected, Count: counts[gi][j], N: n, Source: c.Source, Via: c.Via})
				}
			}
		}
	}
	sort.Slice(negs, func(i, j int) bool { return negs[i].Set.Compare(negs[j].Set) < 0 })
	return negs, nil
}
