// Package negative implements the paper's primary contribution: mining
// strong negative association rules X =/=> Y from a transaction database
// and an item taxonomy (Savasere, Omiecinski & Navathe, ICDE 1998).
//
// The pipeline has three stages (paper §2.1):
//
//  1. Find all generalized large itemsets (package gen or partition).
//  2. Generate candidate negative itemsets from each large itemset by
//     swapping members for their taxonomy children (Cases 1 and 2) or
//     siblings (Case 3), assign each the expected support implied by the
//     uniformity assumption, and keep candidates whose expected support is
//     high enough to possibly yield a rule.
//  3. Count the candidates' actual supports; candidates whose actual
//     support falls at least MinSup·MinRI below expectation are negative
//     itemsets, from which rules are generated with an extension of
//     ap-genrules.
//
// Two drivers are provided: Naive interleaves stages per level (2n database
// passes) and Improved counts all candidate sizes in one final pass after
// compressing the taxonomy (n+1 passes) — the paper's two algorithms.
package negative

import (
	"fmt"
	"time"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/gen"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// Algorithm selects the mining driver.
type Algorithm int

const (
	// Improved mines all large itemsets first, compresses the taxonomy,
	// and counts negative candidates of every size in a single extra pass
	// (n+1 passes total). This is the paper's "Better" algorithm and the
	// default.
	Improved Algorithm = iota
	// Naive alternates a large-itemset pass and a negative-candidate pass
	// per level (2n passes total).
	Naive
)

// String names the algorithm as the paper's figures do.
func (a Algorithm) String() string {
	switch a {
	case Improved:
		return "Better"
	case Naive:
		return "Naive"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures negative rule mining.
type Options struct {
	// MinSupport is the minimum relative support for large itemsets, rule
	// antecedents and rule consequents. Required, in (0, 1].
	MinSupport float64
	// MinRI is the minimum rule interest (paper §2): a rule X =/=> Y
	// qualifies when (E[sup(X∪Y)] − sup(X∪Y))/sup(X) ≥ MinRI. Required,
	// > 0.
	MinRI float64
	// Algorithm selects Improved (default) or Naive.
	Algorithm Algorithm
	// Gen configures stage 1 (the generalized large-itemset miner). Its
	// MinSupport field is overwritten with Options.MinSupport. The Naive
	// driver requires gen.Basic or gen.Cumulate.
	Gen gen.Options
	// MaxCandidates caps how many negative candidates are counted per
	// database pass (the paper's §2.5 memory bound). 0 = unlimited (one
	// pass).
	MaxCandidates int
	// Filter selects the negative-itemset acceptance test; see Filter's
	// documentation. The default (DeviationFilter) follows the paper's §2
	// problem statement.
	Filter Filter
	// Substitutes is extra domain knowledge beyond the taxonomy (the
	// paper's §4.1 future work): each group lists items a customer treats
	// as interchangeable, even across taxonomy boundaries. Members of a
	// group act as additional "siblings" of each other during candidate
	// generation, with the same expected-support scaling. Every group
	// needs at least two items.
	Substitutes []item.Itemset
	// DisableTaxonomyCompression turns off the Improved algorithm's
	// "delete small 1-itemsets from the taxonomy" optimization, generating
	// candidates against the full taxonomy instead. Results are identical
	// (small members are rejected at generation anyway); this exists for
	// the ablation benchmarks.
	DisableTaxonomyCompression bool
	// Count holds counting options for the negative-candidate passes.
	// Count.Transform must be nil.
	Count count.Options
}

func (o Options) validate() error {
	if o.MinSupport <= 0 || o.MinSupport > 1 {
		return fmt.Errorf("negative: MinSupport = %v, want (0, 1]", o.MinSupport)
	}
	if o.MinRI <= 0 {
		return fmt.Errorf("negative: MinRI = %v, want > 0", o.MinRI)
	}
	if o.MaxCandidates < 0 {
		return fmt.Errorf("negative: MaxCandidates = %d, want ≥ 0", o.MaxCandidates)
	}
	if o.Count.Transform != nil || o.Count.TransformInto != nil {
		return fmt.Errorf("negative: Count.Transform must be nil (set internally)")
	}
	for i, g := range o.Substitutes {
		if g.Len() < 2 {
			return fmt.Errorf("negative: substitute group %d has %d items, want ≥ 2", i, g.Len())
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("negative: substitute group %d: %w", i, err)
		}
	}
	switch o.Algorithm {
	case Improved, Naive:
	default:
		return fmt.Errorf("negative: unknown algorithm %d", int(o.Algorithm))
	}
	switch o.Filter {
	case DeviationFilter, AbsoluteFilter:
	default:
		return fmt.Errorf("negative: unknown filter %d", int(o.Filter))
	}
	return nil
}

// Filter selects the test that turns a counted candidate into a negative
// itemset. The paper states it two slightly different ways, so both are
// offered.
type Filter int

const (
	// DeviationFilter accepts candidates whose actual support deviates at
	// least MinSup·MinRI below the expected support (paper §2: "finding
	// itemsets whose actual support deviates at least MinSup·MinRI from
	// their expected support"). This is the default and the test the rule
	// interest measure is derived from.
	DeviationFilter Filter = iota
	// AbsoluteFilter accepts candidates whose actual support count is
	// below MinSup·MinRI (the literal condition in the paper's Figure 3
	// pseudocode, `c.count < MinSup×MinRI`). It is looser on the expected
	// side (a candidate barely above the generation floor can qualify
	// with low actual support) and stricter on high-expectation
	// candidates with moderate support. Rule generation still applies the
	// RI ≥ MinRI test, so the final rule sets usually coincide.
	AbsoluteFilter
)

// String names the filter.
func (f Filter) String() string {
	if f == AbsoluteFilter {
		return "absolute"
	}
	return "deviation"
}

// Itemset is a confirmed negative itemset: actual support fell at least
// MinSup·MinRI below the expected support.
type Itemset struct {
	Set      item.Itemset
	Expected float64 // expected relative support (max over generation paths)
	Count    int     // actual absolute support count
	N        int     // transactions counted against
	// Source and Via record the provenance of the highest-expectation
	// generation path: the large itemset the candidate came from and
	// whether members were swapped for children or siblings.
	Source item.Itemset
	Via    Mode
}

// Actual returns the actual relative support.
func (n Itemset) Actual() float64 {
	if n.N == 0 {
		return 0
	}
	return float64(n.Count) / float64(n.N)
}

// Deviation returns expected − actual relative support.
func (n Itemset) Deviation() float64 { return n.Expected - n.Actual() }

// Rule is a negative association rule Antecedent =/=> Consequent.
type Rule struct {
	Antecedent item.Itemset
	Consequent item.Itemset
	// RI is the rule interest (E[sup(A∪C)] − sup(A∪C))/sup(A).
	RI float64
	// Expected and Actual are the relative supports of A∪C.
	Expected float64
	Actual   float64
	// NegConfidence is P(¬C | A) = 1 − sup(A∪C)/sup(A): the fraction of
	// antecedent baskets that indeed avoid the consequent. It is the "60%
	// of the customers who buy potato chips do not buy bottled water"
	// number from the paper's introduction.
	NegConfidence float64
	// Source and Via carry the provenance of the negative itemset the
	// rule was extracted from (see Itemset).
	Source item.Itemset
	Via    Mode
}

// String renders the rule with raw item ids.
func (r Rule) String() string {
	return fmt.Sprintf("%v =/=> %v (RI=%.4f exp=%.4f act=%.4f)",
		r.Antecedent, r.Consequent, r.RI, r.Expected, r.Actual)
}

// Format renders the rule with item names.
func (r Rule) Format(name func(item.Item) string) string {
	return fmt.Sprintf("%s =/=> %s (RI=%.4f exp=%.4f act=%.4f)",
		r.Antecedent.Format(name), r.Consequent.Format(name), r.RI, r.Expected, r.Actual)
}

// Timing breaks a run into the paper's reporting units: the figures time
// only the negative stages ("we have not included the time taken to
// generate the generalized large itemsets").
type Timing struct {
	// Stage1 is the generalized large-itemset mining time.
	Stage1 time.Duration
	// Negative covers candidate generation, candidate counting and rule
	// generation.
	Negative time.Duration
}

// Result is the complete outcome of a negative mining run.
type Result struct {
	// Large is the stage-1 generalized large-itemset result.
	Large *apriori.Result
	// CandidatesBySize counts generated negative candidates per itemset
	// size (after dedup and pre-filtering) — the quantity of Figure 7.
	CandidatesBySize map[int]int
	// Negatives are the confirmed negative itemsets, sorted.
	Negatives []Itemset
	// Rules are the negative rules, sorted.
	Rules []Rule
	// Timing separates stage-1 and negative-stage wall time.
	Timing Timing
}

// TotalCandidates sums CandidatesBySize.
func (r *Result) TotalCandidates() int {
	total := 0
	for _, n := range r.CandidatesBySize {
		total += n
	}
	return total
}

// Mine runs the full negative-association pipeline over db and tax.
func Mine(db txdb.DB, tax *taxonomy.Taxonomy, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if tax == nil {
		return nil, fmt.Errorf("negative: nil taxonomy")
	}
	opt.Gen.MinSupport = opt.MinSupport
	switch opt.Algorithm {
	case Naive:
		return mineNaive(db, tax, opt)
	default:
		return mineImproved(db, tax, opt)
	}
}
