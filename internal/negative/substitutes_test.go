package negative

import (
	"math"
	"math/rand"
	"testing"

	"negmine/internal/item"
	"negmine/internal/stats"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// TestSubstituteGroups verifies the §4.1 extension: declaring two items
// substitutes generates sibling-style candidates across taxonomy
// boundaries that the taxonomy alone cannot produce.
func TestSubstituteGroups(t *testing.T) {
	// Two unrelated subtrees: store-brand cola lives under "house", Coke
	// under "beverages". The taxonomy never makes them siblings.
	b := taxonomy.NewBuilder()
	b.Link("beverages", "coke")
	b.Link("beverages", "juice")
	b.Link("house", "storecola")
	b.Link("house", "storewater")
	b.Link("snacks", "chips")
	tax, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	id := func(n string) item.Item {
		x, _ := tax.Dictionary().Lookup(n)
		return x
	}
	db := &txdb.MemDB{}
	add := func(n int, names ...string) {
		for i := 0; i < n; i++ {
			items := make([]item.Item, len(names))
			for j, nm := range names {
				items[j] = id(nm)
			}
			db.Append(txdb.Transaction{TID: int64(db.Count() + 1), Items: item.New(items...)})
		}
	}
	// Coke sells strongly with chips; store cola sells well alone but
	// never with chips.
	add(40, "coke", "chips")
	add(10, "coke")
	add(30, "storecola")
	add(20, "juice")

	base := Options{MinSupport: 0.1, MinRI: 0.4}
	res, err := Mine(db, tax, base)
	if err != nil {
		t.Fatal(err)
	}
	target := item.New(id("storecola"), id("chips"))
	for _, n := range res.Negatives {
		if n.Set.Equal(target) {
			t.Fatalf("taxonomy-only run already produced %v", target)
		}
	}

	withSubs := base
	withSubs.Substitutes = []item.Itemset{item.New(id("coke"), id("storecola"))}
	res2, err := Mine(db, tax, withSubs)
	if err != nil {
		t.Fatal(err)
	}
	var found *Itemset
	for i := range res2.Negatives {
		if res2.Negatives[i].Set.Equal(target) {
			found = &res2.Negatives[i]
		}
	}
	if found == nil {
		var sets []string
		for _, n := range res2.Negatives {
			sets = append(sets, n.Set.Format(tax.Name))
		}
		t.Fatalf("substitute knowledge did not produce %v; negatives: %v", target, sets)
	}
	// Expected support: sup({coke,chips}) · sup(storecola)/sup(coke)
	//                 = 0.4 · (30/50) = 0.24; actual 0.
	if math.Abs(found.Expected-0.24) > 1e-9 || found.Count != 0 {
		t.Errorf("substitute candidate expected %v/count %d, want 0.24/0", found.Expected, found.Count)
	}
	// And a rule follows: {storecola} =/=> {chips} with RI 0.24/0.3 = 0.8.
	foundRule := false
	for _, r := range res2.Rules {
		if r.Antecedent.Equal(item.New(id("storecola"))) && r.Consequent.Equal(item.New(id("chips"))) {
			foundRule = true
			if math.Abs(r.RI-0.8) > 1e-9 {
				t.Errorf("substitute rule RI = %v, want 0.8", r.RI)
			}
		}
	}
	if !foundRule {
		t.Errorf("substitute rule missing; rules: %v", res2.Rules)
	}
}

func TestSubstituteValidation(t *testing.T) {
	b := taxonomy.NewBuilder()
	b.Link("a", "b")
	tax, _ := b.Build()
	db := txdb.FromItemsets([]item.Item{0})
	bad := []Options{
		{MinSupport: 0.1, MinRI: 0.5, Substitutes: []item.Itemset{item.New(1)}},
		{MinSupport: 0.1, MinRI: 0.5, Substitutes: []item.Itemset{{2, 1}}},
	}
	for i, opt := range bad {
		if _, err := Mine(db, tax, opt); err == nil {
			t.Errorf("bad substitutes %d accepted", i)
		}
	}
}

// TestNaiveImprovedEquivalenceRandom is the strongest invariant: on random
// taxonomic data the two drivers must produce byte-identical negatives and
// rules, with and without memory bounds and substitutes.
func TestNaiveImprovedEquivalenceRandom(t *testing.T) {
	for trial := int64(1); trial <= 5; trial++ {
		tax, err := taxonomy.Generate(taxonomy.GenSpec{Leaves: 24, Roots: 3, Fanout: 3}, stats.NewSource(trial))
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(trial * 7))
		db := &txdb.MemDB{}
		lv := tax.Leaves()
		for i := 0; i < 250; i++ {
			n := 1 + r.Intn(5)
			raw := make([]item.Item, n)
			for j := range raw {
				raw[j] = lv[r.Intn(len(lv))]
			}
			db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
		}
		subs := []item.Itemset{item.New(lv[0], lv[len(lv)-1])}
		base := Options{MinSupport: 0.06, MinRI: 0.4, Substitutes: subs}

		impr := base
		impr.Algorithm = Improved
		naive := base
		naive.Algorithm = Naive
		bounded := base
		bounded.Algorithm = Improved
		bounded.MaxCandidates = 7

		a, err := Mine(db, tax, impr)
		if err != nil {
			t.Fatal(err)
		}
		for name, opt := range map[string]Options{"naive": naive, "bounded": bounded} {
			b, err := Mine(db, tax, opt)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if len(a.Negatives) != len(b.Negatives) {
				t.Fatalf("trial %d %s: %d vs %d negatives", trial, name, len(b.Negatives), len(a.Negatives))
			}
			for i := range a.Negatives {
				x, y := a.Negatives[i], b.Negatives[i]
				if !x.Set.Equal(y.Set) || x.Count != y.Count || math.Abs(x.Expected-y.Expected) > 1e-12 {
					t.Fatalf("trial %d %s: negative %d differs", trial, name, i)
				}
			}
			if len(a.Rules) != len(b.Rules) {
				t.Fatalf("trial %d %s: %d vs %d rules", trial, name, len(b.Rules), len(a.Rules))
			}
			for i := range a.Rules {
				x, y := a.Rules[i], b.Rules[i]
				if !x.Antecedent.Equal(y.Antecedent) || !x.Consequent.Equal(y.Consequent) ||
					math.Abs(x.RI-y.RI) > 1e-12 {
					t.Fatalf("trial %d %s: rule %d differs (%v vs %v)", trial, name, i, x, y)
				}
			}
		}
	}
}

// TestNegativeInvariantsRandom property-checks every mined artifact on
// random data: members of negative itemsets are large; negative itemsets
// are not large themselves; deviations clear the threshold; rule parts are
// large, disjoint and RI-consistent.
func TestNegativeInvariantsRandom(t *testing.T) {
	for trial := int64(1); trial <= 4; trial++ {
		tax, err := taxonomy.Generate(taxonomy.GenSpec{Leaves: 30, Roots: 4, Fanout: 4}, stats.NewSource(trial+100))
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(trial * 13))
		db := &txdb.MemDB{}
		lv := tax.Leaves()
		for i := 0; i < 300; i++ {
			n := 1 + r.Intn(6)
			raw := make([]item.Item, n)
			for j := range raw {
				raw[j] = lv[r.Intn(len(lv))]
			}
			db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
		}
		opt := Options{MinSupport: 0.05, MinRI: 0.5}
		res, err := Mine(db, tax, opt)
		if err != nil {
			t.Fatal(err)
		}
		table := res.Large.Table
		threshold := opt.MinSupport * opt.MinRI
		for _, n := range res.Negatives {
			if table.Contains(n.Set) {
				t.Errorf("negative itemset %v is itself large", n.Set)
			}
			for _, x := range n.Set {
				if !table.Contains(item.Itemset{x}) {
					t.Errorf("negative itemset %v contains small member %v", n.Set, x)
				}
			}
			if n.Deviation() < threshold {
				t.Errorf("negative itemset %v deviation %v below threshold %v", n.Set, n.Deviation(), threshold)
			}
			if n.Expected <= threshold {
				t.Errorf("negative itemset %v expected %v not above floor", n.Set, n.Expected)
			}
		}
		for _, rule := range res.Rules {
			if !rule.Antecedent.Disjoint(rule.Consequent) {
				t.Errorf("rule %v has overlapping sides", rule)
			}
			if !table.Contains(rule.Antecedent) || !table.Contains(rule.Consequent) {
				t.Errorf("rule %v has a small side", rule)
			}
			if rule.RI < opt.MinRI {
				t.Errorf("rule %v below MinRI", rule)
			}
			supA, _ := table.Support(rule.Antecedent)
			wantRI := (rule.Expected - rule.Actual) / supA
			if math.Abs(wantRI-rule.RI) > 1e-9 {
				t.Errorf("rule %v RI inconsistent: %v vs %v", rule, rule.RI, wantRI)
			}
		}
	}
}
