package negative

import (
	"math"
	"strings"
	"testing"

	"negmine/internal/count"
	"negmine/internal/gen"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// fig1 builds the paper's Figure 1 taxonomy: A(B C), C(D E), F(G H I),
// G(J K), and a hand-made support table in which {C,G} is large.
func fig1(t *testing.T) (*taxonomy.Taxonomy, map[string]item.Item, *item.SupportTable, [][]item.CountedSet) {
	t.Helper()
	b := taxonomy.NewBuilder()
	for _, e := range [][2]string{
		{"A", "B"}, {"A", "C"}, {"C", "D"}, {"C", "E"},
		{"F", "G"}, {"F", "H"}, {"F", "I"}, {"G", "J"}, {"G", "K"},
	} {
		b.Link(e[0], e[1])
	}
	tax, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]item.Item{}
	for _, n := range []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K"} {
		ids[n], _ = tax.Dictionary().Lookup(n)
	}
	table := item.NewSupportTable(1000)
	counts := map[string]int{
		"A": 380, "B": 180, "C": 200, "D": 100, "E": 80,
		"F": 400, "G": 300, "H": 120, "I": 60, "J": 150, "K": 90,
	}
	var l1 []item.CountedSet
	for n, c := range counts {
		s := item.New(ids[n])
		table.Put(s, c)
		l1 = append(l1, item.CountedSet{Set: s, Count: c})
	}
	cg := item.New(ids["C"], ids["G"])
	table.Put(cg, 100)
	levels := [][]item.CountedSet{l1, {{Set: cg, Count: 100}}}
	return tax, ids, table, levels
}

func TestCandidateCasesFigure1(t *testing.T) {
	tax, ids, table, levels := fig1(t)
	// minSup·minRI tiny so nothing is pre-filtered.
	cands := GenerateCandidates(levels, table, tax, 0.001, 0.1, nil)

	set := func(a, b string) item.Key { return item.New(ids[a], ids[b]).Key() }
	got := map[item.Key]float64{}
	for _, c := range cands {
		got[c.Set.Key()] = c.Expected
	}
	supCG := 0.1
	want := map[item.Key]float64{
		// Case 1: both members replaced by children.
		set("D", "J"): supCG * (100.0 / 200) * (150.0 / 300),
		set("D", "K"): supCG * (100.0 / 200) * (90.0 / 300),
		set("E", "J"): supCG * (80.0 / 200) * (150.0 / 300),
		set("E", "K"): supCG * (80.0 / 200) * (90.0 / 300),
		// Case 2: one member replaced by a child.
		set("C", "J"): supCG * (150.0 / 300),
		set("C", "K"): supCG * (90.0 / 300),
		set("D", "G"): supCG * (100.0 / 200),
		set("E", "G"): supCG * (80.0 / 200),
		// Case 3: one member replaced by a sibling.
		set("C", "H"): supCG * (120.0 / 300),
		set("C", "I"): supCG * (60.0 / 300),
		set("B", "G"): supCG * (180.0 / 200),
	}
	for k, e := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("missing candidate %v", k.Itemset())
			continue
		}
		if math.Abs(g-e) > 1e-12 {
			t.Errorf("candidate %v expected support %v, want %v", k.Itemset(), g, e)
		}
	}
	// Exclusions (paper §2.1.1 list): all-sibling sets, ancestor mixes,
	// child+sibling mixes.
	for _, bad := range [][2]string{
		{"B", "H"}, // only siblings
		{"A", "J"}, // ancestor + child
		{"A", "H"}, // ancestor + sibling
		{"D", "H"}, // child + sibling
		{"C", "G"}, // the large itemset itself
	} {
		if _, ok := got[set(bad[0], bad[1])]; ok {
			t.Errorf("excluded combination {%s %s} was generated", bad[0], bad[1])
		}
	}
	if len(got) != len(want) {
		extra := []string{}
		for k := range got {
			if _, ok := want[k]; !ok {
				extra = append(extra, k.Itemset().String())
			}
		}
		t.Errorf("generated %d candidates, want %d; extra: %v", len(got), len(want), extra)
	}
}

func TestCandidatePreFilter(t *testing.T) {
	tax, _, table, levels := fig1(t)
	// With minSup=0.1, minRI=0.5 the floor is 0.05: only candidates with
	// expected support > 0.05 survive.
	cands := GenerateCandidates(levels, table, tax, 0.1, 0.5, nil)
	for _, c := range cands {
		if c.Expected <= 0.05 {
			t.Errorf("candidate %v with expected %v survived the 0.05 floor", c.Set, c.Expected)
		}
	}
	// {B,G} (0.09) and {C,J}(0.05 exactly → pruned, must be >) etc.
	found := false
	for _, c := range cands {
		if c.Expected > 0.05 {
			found = true
		}
	}
	if !found {
		t.Error("pre-filter removed everything")
	}
}

func TestCandidateSmallMembersRejected(t *testing.T) {
	tax, ids, table, levels := fig1(t)
	// Make J small by removing it from the table: no candidate may contain J.
	table2 := item.NewSupportTable(1000)
	table.Each(func(s item.Itemset, c int) {
		if !(s.Len() == 1 && s[0] == ids["J"]) {
			table2.Put(s, c)
		}
	})
	cands := GenerateCandidates(levels, table2, tax, 0.001, 0.1, nil)
	for _, c := range cands {
		if c.Set.Contains(ids["J"]) {
			t.Errorf("candidate %v contains small item J", c.Set)
		}
	}
}

func TestCandidateMaxMerge(t *testing.T) {
	// {B,G} can be generated from {C,G} (sibling replace, E=0.1·180/200)
	// and — if {B, F} were large — other ways; here we check the documented
	// duplicate policy using two large itemsets producing the same
	// candidate with different expectations.
	tax, ids, table, levels := fig1(t)
	// Add a second large itemset {A, G}: its case-2 children replacement
	// A→B yields {B,G} with expectation sup(AG)·sup(B)/sup(A).
	ag := item.New(ids["A"], ids["G"])
	table.Put(ag, 300)
	levels[1] = append(levels[1], item.CountedSet{Set: ag, Count: 300})
	cands := GenerateCandidates(levels, table, tax, 0.001, 0.1, nil)
	var bg *Candidate
	for i := range cands {
		if cands[i].Set.Equal(item.New(ids["B"], ids["G"])) {
			bg = &cands[i]
		}
	}
	if bg == nil {
		t.Fatal("candidate {B,G} missing")
	}
	fromCG := 0.1 * 180.0 / 200
	fromAG := 0.3 * 180.0 / 380
	want := math.Max(fromCG, fromAG)
	if math.Abs(bg.Expected-want) > 1e-12 {
		t.Errorf("{B,G} expected %v, want max(%v, %v)", bg.Expected, fromCG, fromAG)
	}
}

// paperExample builds the Figure 2 scenario as a concrete transaction
// database (1000 transactions; supports scaled 1:100 from the paper's
// tables, with the pair overlaps chosen to be realizable):
//
//	Bryers 200, HealthyChoice 100, Evian 120, Perrier 80,
//	FrozenYogurt 300, BottledWater 200,
//	{Bryers,Evian} 75, {Bryers,Perrier} 0,
//	{HealthyChoice,Evian} 42, {HealthyChoice,Perrier} 25.
func paperExample(t testing.TB) (*taxonomy.Taxonomy, map[string]item.Item, *txdb.MemDB) {
	b := taxonomy.NewBuilder()
	for _, e := range [][2]string{
		{"noncarbonated", "bottledjuices"},
		{"noncarbonated", "bottledwater"},
		{"bottledwater", "perrier"},
		{"bottledwater", "evian"},
		{"desserts", "frozenyogurt"},
		{"desserts", "icecreams"},
		{"frozenyogurt", "bryers"},
		{"frozenyogurt", "healthychoice"},
	} {
		b.Link(e[0], e[1])
	}
	tax, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]item.Item{}
	for _, n := range []string{"bryers", "healthychoice", "evian", "perrier",
		"frozenyogurt", "bottledwater", "desserts", "noncarbonated"} {
		id, ok := tax.Dictionary().Lookup(n)
		if !ok {
			t.Fatalf("missing %s", n)
		}
		ids[n] = id
	}
	db := &txdb.MemDB{}
	add := func(n int, names ...string) {
		for i := 0; i < n; i++ {
			items := make([]item.Item, len(names))
			for j, nm := range names {
				items[j] = ids[nm]
			}
			db.Append(txdb.Transaction{TID: int64(db.Count() + 1), Items: item.New(items...)})
		}
	}
	add(75, "bryers", "evian")
	add(125, "bryers")
	add(42, "healthychoice", "evian")
	add(25, "healthychoice", "perrier")
	add(33, "healthychoice")
	add(3, "evian")
	add(55, "perrier")
	add(642) // empty filler transactions to reach N = 1000
	return tax, ids, db
}

func TestPaperWorkedExample(t *testing.T) {
	tax, ids, db := paperExample(t)
	if db.Count() != 1000 {
		t.Fatalf("db size = %d", db.Count())
	}
	for _, alg := range []Algorithm{Improved, Naive} {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Mine(db, tax, Options{
				MinSupport: 0.04, // the paper's 4,000 of 100,000
				MinRI:      0.5,
				Algorithm:  alg,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Sanity: stage-1 supports match the construction.
			for name, want := range map[string]int{
				"bryers": 200, "healthychoice": 100, "evian": 120, "perrier": 80,
				"frozenyogurt": 300, "bottledwater": 200, "desserts": 300, "noncarbonated": 200,
			} {
				got, ok := res.Large.Table.Count(item.New(ids[name]))
				if !ok || got != want {
					t.Errorf("sup(%s) = %d (ok=%v), want %d", name, got, ok, want)
				}
			}
			fyv, _ := res.Large.Table.Count(item.New(ids["frozenyogurt"], ids["bottledwater"]))
			if fyv != 142 {
				t.Errorf("sup(frozenyogurt,bottledwater) = %d, want 142", fyv)
			}

			// Negative itemsets: {bryers,perrier}, {frozenyogurt,perrier}
			// and {desserts,perrier} (paper Examples 1 and 3).
			wantNegs := map[item.Key]struct{ expected, actual float64 }{
				item.New(ids["bryers"], ids["perrier"]).Key():       {0.05, 0},      // sibling path: 0.075·(80/120)
				item.New(ids["frozenyogurt"], ids["perrier"]).Key(): {0.078, 0.025}, // from {FY,evian}: 0.117·(2/3)
				item.New(ids["desserts"], ids["perrier"]).Key():     {0.078, 0.025}, // from {desserts,evian}
			}
			if len(res.Negatives) != len(wantNegs) {
				var got []string
				for _, n := range res.Negatives {
					got = append(got, n.Set.Format(tax.Name))
				}
				t.Fatalf("negatives = %v, want 3", got)
			}
			for _, n := range res.Negatives {
				w, ok := wantNegs[n.Set.Key()]
				if !ok {
					t.Errorf("unexpected negative itemset %s", n.Set.Format(tax.Name))
					continue
				}
				if math.Abs(n.Expected-w.expected) > 1e-9 {
					t.Errorf("%s expected support %v, want %v", n.Set.Format(tax.Name), n.Expected, w.expected)
				}
				if math.Abs(n.Actual()-w.actual) > 1e-9 {
					t.Errorf("%s actual support %v, want %v", n.Set.Format(tax.Name), n.Actual(), w.actual)
				}
			}

			// Rules: the paper's headline rule Perrier =/=> Bryers plus the
			// two Example-3-style category rules.
			type wantRule struct{ ri float64 }
			wantRules := map[string]wantRule{
				"{perrier} =/=> {bryers}":       {0.05 / 0.08},
				"{perrier} =/=> {frozenyogurt}": {0.053 / 0.08},
				"{perrier} =/=> {desserts}":     {0.053 / 0.08},
			}
			if len(res.Rules) != len(wantRules) {
				var got []string
				for _, r := range res.Rules {
					got = append(got, r.Format(tax.Name))
				}
				t.Fatalf("rules = %v, want %d", got, len(wantRules))
			}
			for _, r := range res.Rules {
				key := r.Antecedent.Format(tax.Name) + " =/=> " + r.Consequent.Format(tax.Name)
				w, ok := wantRules[key]
				if !ok {
					t.Errorf("unexpected rule %s", r.Format(tax.Name))
					continue
				}
				if math.Abs(r.RI-w.ri) > 1e-9 {
					t.Errorf("rule %s RI = %v, want %v", key, r.RI, w.ri)
				}
				if r.RI < 0.5 {
					t.Errorf("rule %s below MinRI", key)
				}
			}
			// The reverse rule must NOT appear (paper: Bryers =/=> Perrier
			// has RI 0.25 < 0.5).
			for _, r := range res.Rules {
				if r.Antecedent.Contains(ids["bryers"]) {
					t.Errorf("reverse rule emitted: %s", r.Format(tax.Name))
				}
			}
		})
	}
}

func TestNaiveAndImprovedAgree(t *testing.T) {
	tax, _, db := paperExample(t)
	a, err := Mine(db, tax, Options{MinSupport: 0.04, MinRI: 0.5, Algorithm: Improved})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(db, tax, Options{MinSupport: 0.04, MinRI: 0.5, Algorithm: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Negatives) != len(b.Negatives) {
		t.Fatalf("negatives: %d vs %d", len(a.Negatives), len(b.Negatives))
	}
	for i := range a.Negatives {
		x, y := a.Negatives[i], b.Negatives[i]
		if !x.Set.Equal(y.Set) || x.Count != y.Count || math.Abs(x.Expected-y.Expected) > 1e-12 {
			t.Errorf("negative %d differs: %+v vs %+v", i, x, y)
		}
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rules: %d vs %d", len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		x, y := a.Rules[i], b.Rules[i]
		if !x.Antecedent.Equal(y.Antecedent) || !x.Consequent.Equal(y.Consequent) || math.Abs(x.RI-y.RI) > 1e-12 {
			t.Errorf("rule %d differs: %v vs %v", i, x, y)
		}
	}
}

func TestPassComplexity(t *testing.T) {
	// The paper's claim: Naive = 2n passes, Improved = n+1 passes, where n
	// is the number of large-itemset levels. Our Naive skips the useless
	// level-1 negative pass, so it makes 2n−1. The counts must hold for
	// every backend: the hash tree scans once per counting call, and the
	// bitmap build is likewise exactly one scan per call (auto on an
	// instrumented DB resolves to hashtree; the explicit cases pin both).
	tax, _, db := paperExample(t)
	ins := txdb.Instrument(db)

	for _, backend := range []count.Backend{count.BackendAuto, count.BackendHashTree, count.BackendBitmap} {
		opt := Options{MinSupport: 0.04, MinRI: 0.5, Algorithm: Improved}
		opt.Count.Backend = backend
		opt.Gen.Count.Backend = backend

		ins.Reset()
		res, err := Mine(ins, tax, opt)
		if err != nil {
			t.Fatal(err)
		}
		n := len(res.Large.Levels)
		if n != 2 {
			t.Fatalf("levels = %d, want 2 (test setup)", n)
		}
		if got := ins.Passes(); got != n+1 {
			t.Errorf("%v: Improved used %d passes, want n+1 = %d", backend, got, n+1)
		}

		ins.Reset()
		opt.Algorithm = Naive
		if _, err := Mine(ins, tax, opt); err != nil {
			t.Fatal(err)
		}
		if got := ins.Passes(); got != 2*n-1 {
			t.Errorf("%v: Naive used %d passes, want 2n−1 = %d", backend, got, 2*n-1)
		}
	}
}

func TestMemoryBoundedCounting(t *testing.T) {
	// With MaxCandidates=1 the improved algorithm must still produce the
	// same result, just with more counting passes.
	tax, _, db := paperExample(t)
	full, err := Mine(db, tax, Options{MinSupport: 0.04, MinRI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Mine(db, tax, Options{MinSupport: 0.04, MinRI: 0.5, MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Negatives) != len(bounded.Negatives) || len(full.Rules) != len(bounded.Rules) {
		t.Fatalf("bounded run differs: %d/%d negatives, %d/%d rules",
			len(bounded.Negatives), len(full.Negatives), len(bounded.Rules), len(full.Rules))
	}
	for i := range full.Negatives {
		if !full.Negatives[i].Set.Equal(bounded.Negatives[i].Set) || full.Negatives[i].Count != bounded.Negatives[i].Count {
			t.Errorf("negative %d differs under memory bound", i)
		}
	}
	// More passes than the unbounded run.
	ins := txdb.Instrument(db)
	if _, err := Mine(ins, tax, Options{MinSupport: 0.04, MinRI: 0.5, MaxCandidates: 1}); err != nil {
		t.Fatal(err)
	}
	nLevels := len(full.Large.Levels)
	if got := ins.Passes(); got <= nLevels+1 {
		t.Errorf("bounded run used %d passes, expected more than %d", got, nLevels+1)
	}
}

func TestOptionsValidation(t *testing.T) {
	tax, _, db := paperExample(t)
	bad := []Options{
		{MinSupport: 0, MinRI: 0.5},
		{MinSupport: 1.5, MinRI: 0.5},
		{MinSupport: 0.1, MinRI: 0},
		{MinSupport: 0.1, MinRI: -1},
		{MinSupport: 0.1, MinRI: 0.5, MaxCandidates: -1},
		{MinSupport: 0.1, MinRI: 0.5, Algorithm: Algorithm(9)},
	}
	for i, opt := range bad {
		if _, err := Mine(db, tax, opt); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	if _, err := Mine(db, nil, Options{MinSupport: 0.1, MinRI: 0.5}); err == nil {
		t.Error("nil taxonomy accepted")
	}
	// Naive with EstMerge stage 1 is rejected (no level stepping).
	if _, err := Mine(db, tax, Options{MinSupport: 0.1, MinRI: 0.5, Algorithm: Naive,
		Gen: gen.Options{Algorithm: gen.EstMerge}}); err == nil {
		t.Error("Naive+EstMerge accepted")
	}
}

func TestEmptyResults(t *testing.T) {
	tax, _, db := paperExample(t)
	// Impossibly high support: no large itemsets, no negatives, no rules.
	res, err := Mine(db, tax, Options{MinSupport: 0.99, MinRI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Negatives) != 0 || len(res.Rules) != 0 || res.TotalCandidates() != 0 {
		t.Errorf("high-support run produced output: %+v", res)
	}
	// Empty database.
	res, err = Mine(txdb.FromItemsets(), tax, Options{MinSupport: 0.5, MinRI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Negatives) != 0 {
		t.Error("empty db produced negatives")
	}
}

func TestEstimateCandidates(t *testing.T) {
	// k=2, f=3: C(2,1)·3 + C(2,2)·9 + 2·(3−1) = 6+9+4 = 19.
	if got := EstimateCandidates(2, 3); got != 19 {
		t.Errorf("EstimateCandidates(2,3) = %v, want 19", got)
	}
	// k=1, f=5: C(1,1)·5 + 1·4 = 9.
	if got := EstimateCandidates(1, 5); got != 9 {
		t.Errorf("EstimateCandidates(1,5) = %v, want 9", got)
	}
	// Growth in fanout and size.
	if EstimateCandidates(3, 9) <= EstimateCandidates(3, 3) {
		t.Error("estimate not increasing in fanout")
	}
	if EstimateCandidates(4, 3) <= EstimateCandidates(2, 3) {
		t.Error("estimate not increasing in size")
	}
}

func TestItemsetAccessors(t *testing.T) {
	n := Itemset{Set: item.New(1, 2), Expected: 0.1, Count: 30, N: 1000}
	if got := n.Actual(); got != 0.03 {
		t.Errorf("Actual = %v", got)
	}
	if got := n.Deviation(); math.Abs(got-0.07) > 1e-12 {
		t.Errorf("Deviation = %v", got)
	}
	z := Itemset{Set: item.New(1), Expected: 0.5}
	if z.Actual() != 0 {
		t.Error("zero-N Actual should be 0")
	}
}

func TestRuleStrings(t *testing.T) {
	r := Rule{Antecedent: item.New(1), Consequent: item.New(2), RI: 0.625, Expected: 0.05, Actual: 0}
	want := "{1} =/=> {2} (RI=0.6250 exp=0.0500 act=0.0000)"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if Improved.String() != "Better" || Naive.String() != "Naive" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(7).String() != "Algorithm(7)" {
		t.Error("unknown algorithm name wrong")
	}
}

func TestGenerateRulesPruning(t *testing.T) {
	// Hand-built scenario exercising the consequent-growth pruning: a
	// 3-item negative itemset where only some antecedents qualify.
	table := item.NewSupportTable(1000)
	a, b, c := item.Item(1), item.Item(2), item.Item(3)
	table.Put(item.New(a), 100)
	table.Put(item.New(b), 200)
	table.Put(item.New(c), 400)
	table.Put(item.New(a, b), 80)
	table.Put(item.New(a, c), 90)
	table.Put(item.New(b, c), 150)
	neg := Itemset{Set: item.New(a, b, c), Expected: 0.06, Count: 0, N: 1000}
	rules := generateRules([]Itemset{neg}, table, 0.5)
	// Deviation = 0.06. RI per antecedent: {a,b}: 0.06/0.08 = 0.75 ✓;
	// {a,c}: 0.06/0.09 ≈ 0.667 ✓; {b,c}: 0.06/0.15 = 0.4 ✗;
	// {a}: 0.06/0.1 = 0.6 ✓; {b}: 0.3 ✗; {c}: 0.15 ✗.
	want := map[string]float64{
		"{1 2} =/=> {3}": 0.75,
		"{1 3} =/=> {2}": 0.06 / 0.09,
		"{1} =/=> {2 3}": 0.6,
	}
	if len(rules) != len(want) {
		t.Fatalf("rules = %v, want %d", rules, len(want))
	}
	for _, r := range rules {
		key := r.Antecedent.String() + " =/=> " + r.Consequent.String()
		w, ok := want[key]
		if !ok {
			t.Errorf("unexpected rule %s", key)
			continue
		}
		if math.Abs(r.RI-w) > 1e-12 {
			t.Errorf("rule %s RI = %v, want %v", key, r.RI, w)
		}
	}
}

func TestGenerateRulesSmallPartsExcluded(t *testing.T) {
	// Consequent or antecedent missing from the table (= small) blocks the
	// rule.
	table := item.NewSupportTable(1000)
	a, b := item.Item(1), item.Item(2)
	table.Put(item.New(a), 100)
	// b is small: no entry.
	neg := Itemset{Set: item.New(a, b), Expected: 0.2, Count: 0, N: 1000}
	rules := generateRules([]Itemset{neg}, table, 0.1)
	if len(rules) != 0 {
		t.Errorf("rules with small parts emitted: %v", rules)
	}
}

func TestNegConfidence(t *testing.T) {
	// For the worked example's headline rule, every Perrier basket avoids
	// Bryers: NegConfidence must be exactly 1. For {perrier} =/=>
	// {frozenyogurt}: sup(perrier)=0.08, actual 0.025 → 1 − 0.025/0.08.
	tax, ids, db := paperExample(t)
	res, err := Mine(db, tax, Options{MinSupport: 0.04, MinRI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		switch {
		case r.Consequent.Equal(item.New(ids["bryers"])):
			if r.NegConfidence != 1 {
				t.Errorf("perrier=/=>bryers NegConfidence = %v, want 1", r.NegConfidence)
			}
		case r.Consequent.Equal(item.New(ids["frozenyogurt"])):
			want := 1 - 0.025/0.08
			if math.Abs(r.NegConfidence-want) > 1e-9 {
				t.Errorf("perrier=/=>frozenyogurt NegConfidence = %v, want %v", r.NegConfidence, want)
			}
		}
	}
}

func TestProvenance(t *testing.T) {
	// The winning generation path of {bryers,perrier} in the worked
	// example is the sibling replacement evian→perrier applied to the
	// large itemset {bryers,evian} (it yields the max expected support).
	tax, ids, db := paperExample(t)
	res, err := Mine(db, tax, Options{MinSupport: 0.04, MinRI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	target := item.New(ids["bryers"], ids["perrier"])
	for _, n := range res.Negatives {
		if !n.Set.Equal(target) {
			continue
		}
		if !n.Source.Equal(item.New(ids["bryers"], ids["evian"])) {
			t.Errorf("source = %s, want {bryers evian}", n.Source.Format(tax.Name))
		}
		if n.Via != ViaSiblings {
			t.Errorf("via = %v, want siblings", n.Via)
		}
	}
	// Provenance flows into rules.
	for _, r := range res.Rules {
		if r.Source.Empty() {
			t.Errorf("rule %v missing provenance", r)
		}
	}
	if ViaChildren.String() != "children" || ViaSiblings.String() != "siblings" {
		t.Error("mode names wrong")
	}
}

func TestFilterVariants(t *testing.T) {
	tax, ids, db := paperExample(t)
	dev, err := Mine(db, tax, Options{MinSupport: 0.04, MinRI: 0.5, Filter: DeviationFilter})
	if err != nil {
		t.Fatal(err)
	}
	abs, err := Mine(db, tax, Options{MinSupport: 0.04, MinRI: 0.5, Filter: AbsoluteFilter})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's threshold here is 0.02 (= 20 of 1,000 transactions):
	// {bryers,perrier} (count 0) qualifies under both; {perrier,
	// frozenyogurt} (count 25 → 0.025) qualifies only under the deviation
	// test.
	bp := item.New(ids["bryers"], ids["perrier"])
	fp := item.New(ids["perrier"], ids["frozenyogurt"])
	has := func(res *Result, s item.Itemset) bool {
		for _, n := range res.Negatives {
			if n.Set.Equal(s) {
				return true
			}
		}
		return false
	}
	if !has(dev, bp) || !has(abs, bp) {
		t.Error("{bryers,perrier} missing under some filter")
	}
	if !has(dev, fp) {
		t.Error("deviation filter lost {perrier,frozenyogurt}")
	}
	if has(abs, fp) {
		t.Error("absolute filter accepted {perrier,frozenyogurt} (count 25 ≥ 20)")
	}
	// Both still produce the headline rule.
	for name, res := range map[string]*Result{"dev": dev, "abs": abs} {
		found := false
		for _, r := range res.Rules {
			if r.Consequent.Equal(item.New(ids["bryers"])) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s filter lost the headline rule", name)
		}
	}
	if DeviationFilter.String() != "deviation" || AbsoluteFilter.String() != "absolute" {
		t.Error("filter names wrong")
	}
	if _, err := Mine(db, tax, Options{MinSupport: 0.04, MinRI: 0.5, Filter: Filter(9)}); err == nil {
		t.Error("unknown filter accepted")
	}
}

func TestExplain(t *testing.T) {
	tax, ids, db := paperExample(t)
	res, err := Mine(db, tax, Options{MinSupport: 0.04, MinRI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var headline *Rule
	for i := range res.Rules {
		if res.Rules[i].Consequent.Equal(item.New(ids["bryers"])) {
			headline = &res.Rules[i]
		}
	}
	if headline == nil {
		t.Fatal("headline rule missing")
	}
	text := Explain(*headline, res.Large.Table, tax.Name)
	for _, want := range []string{
		"rule: {perrier} =/=> {bryers}",
		"derived from the large itemset {evian bryers} via siblings replacement",
		"swap evian → perrier",
		"expected sup({perrier bryers}) = 0.0500",
		"actual   sup({perrier bryers}) = 0.0000",
		"RI = (0.0500 − 0.0000) / sup({perrier})=0.0800 = 0.6250",
		"100.0% of {perrier} baskets contain no {bryers}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain missing %q:\n%s", want, text)
		}
	}
}
