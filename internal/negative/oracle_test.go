package negative

import (
	"math"
	"math/rand"
	"testing"

	"negmine/internal/count"
	"negmine/internal/gen"
	"negmine/internal/item"
	"negmine/internal/stats"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// This file cross-validates the entire negative pipeline against a
// brute-force oracle that re-derives candidates, negative itemsets and
// rules directly from the paper's definitions, with no shared code beyond
// the itemset primitives.

// oracleSupport counts transactions whose ancestor-extended itemset
// contains s.
func oracleSupport(db *txdb.MemDB, tax *taxonomy.Taxonomy, s item.Itemset) int {
	n := 0
	db.Scan(func(tx txdb.Transaction) error {
		if s.SubsetOf(tax.Extend(tx.Items)) {
			n++
		}
		return nil
	})
	return n
}

// oracleLarge finds all generalized large itemsets by brute force.
func oracleLarge(db *txdb.MemDB, tax *taxonomy.Taxonomy, minCount, maxK int) map[item.Key]int {
	out := map[item.Key]int{}
	counts := map[item.Key]int{}
	db.Scan(func(tx txdb.Transaction) error {
		ext := tax.Extend(tx.Items)
		ext.AllSubsets(false, func(s item.Itemset) {
			if s.Len() <= maxK {
				counts[s.Key()]++
			}
		})
		return nil
	})
	for k, c := range counts {
		if c < minCount {
			continue
		}
		s := k.Itemset()
		ancPair := false
		for i := range s {
			for j := range s {
				if i != j && tax.IsAncestor(s[i], s[j]) {
					ancPair = true
				}
			}
		}
		if !ancPair {
			out[k] = c
		}
	}
	return out
}

// oracleCandidates re-derives the candidate set from the §2.1.1 definition:
// for every large itemset, every combination of keep / child-replace (cases
// 1–2) and keep / sibling-replace with ≥1 kept (case 3), max-merged.
func oracleCandidates(large map[item.Key]int, tax *taxonomy.Taxonomy, n int, minSup, minRI float64) map[item.Key]float64 {
	isLarge := func(x item.Item) bool {
		_, ok := large[item.Itemset{x}.Key()]
		return ok
	}
	sup := func(s item.Itemset) (float64, bool) {
		c, ok := large[s.Key()]
		return float64(c) / float64(n), ok
	}
	floor := minSup * minRI
	out := map[item.Key]float64{}
	emit := func(set item.Itemset, e float64) {
		if e <= floor {
			return
		}
		if _, ok := large[set.Key()]; ok {
			return
		}
		for i := range set {
			for j := range set {
				if i != j && tax.IsAncestor(set[i], set[j]) {
					return
				}
			}
		}
		if old, ok := out[set.Key()]; !ok || e > old {
			out[set.Key()] = e
		}
	}
	for k := range large {
		l := k.Itemset()
		if l.Len() < 2 {
			continue
		}
		supL, _ := sup(l)
		// Enumerate all assignments: keep(0) / replacement index per slot.
		var choices func(mode string) func(item.Item) []item.Item
		choices = func(mode string) func(item.Item) []item.Item {
			if mode == "children" {
				return tax.Children
			}
			return tax.Siblings
		}
		for _, mode := range []string{"children", "siblings"} {
			ch := choices(mode)
			var rec func(pos int, members []item.Item, ratio float64, replaced, kept int)
			rec = func(pos int, members []item.Item, ratio float64, replaced, kept int) {
				if pos == l.Len() {
					if replaced == 0 || (mode == "siblings" && kept == 0) {
						return
					}
					set := item.New(members...)
					if set.Len() != l.Len() {
						return
					}
					allLarge := true
					for _, x := range set {
						if !isLarge(x) {
							allLarge = false
						}
					}
					if allLarge {
						emit(set, supL*ratio)
					}
					return
				}
				x := l[pos]
				rec(pos+1, append(members, x), ratio, replaced, kept+1)
				supX, okX := sup(item.Itemset{x})
				if !okX || supX == 0 {
					return
				}
				for _, r := range ch(x) {
					if !isLarge(r) {
						continue
					}
					supR, okR := sup(item.Itemset{r})
					if !okR {
						continue
					}
					rec(pos+1, append(members, r), ratio*supR/supX, replaced+1, kept)
				}
			}
			rec(0, nil, 1, 0, 0)
		}
	}
	return out
}

func TestPipelineAgainstOracle(t *testing.T) {
	const maxK = 3
	for trial := int64(1); trial <= 4; trial++ {
		tax, err := taxonomy.Generate(taxonomy.GenSpec{Leaves: 18, Roots: 3, Fanout: 3}, stats.NewSource(trial+7))
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(trial * 17))
		db := &txdb.MemDB{}
		lv := tax.Leaves()
		for i := 0; i < 200; i++ {
			n := 1 + r.Intn(4)
			raw := make([]item.Item, n)
			for j := range raw {
				raw[j] = lv[r.Intn(len(lv))]
			}
			db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
		}
		const minSup, minRI = 0.06, 0.4
		// Every backend must reproduce the oracle exactly — the pipeline's
		// output is defined by the paper, not by the counting engine.
		for _, backend := range []count.Backend{count.BackendHashTree, count.BackendBitmap} {
			opt := Options{
				MinSupport: minSup, MinRI: minRI,
				Gen: gen.Options{MaxK: maxK},
			}
			opt.Count.Backend = backend
			opt.Gen.Count.Backend = backend
			res, err := Mine(db, tax, opt)
			if err != nil {
				t.Fatalf("%v: %v", backend, err)
			}
			n := db.Count()
			minCount := res.Large.MinCount
			checkOracle(t, trial, backend, db, tax, res, n, minCount, maxK, minSup, minRI)
		}
	}
}

// checkOracle validates one Mine result against the brute-force oracle.
func checkOracle(t *testing.T, trial int64, backend count.Backend, db *txdb.MemDB, tax *taxonomy.Taxonomy, res *Result, n, minCount, maxK int, minSup, minRI float64) {
	t.Helper()
	{
		// 1. Stage 1 against the oracle.
		wantLarge := oracleLarge(db, tax, minCount, maxK)
		gotLarge := map[item.Key]int{}
		for _, cs := range res.Large.Large() {
			gotLarge[cs.Set.Key()] = cs.Count
		}
		if len(wantLarge) != len(gotLarge) {
			t.Fatalf("trial %d: %d large itemsets, oracle %d", trial, len(gotLarge), len(wantLarge))
		}
		for k, c := range wantLarge {
			if gotLarge[k] != c {
				t.Fatalf("trial %d: sup(%v) = %d, oracle %d", trial, k.Itemset(), gotLarge[k], c)
			}
		}

		// 2. Candidates against the oracle (regenerate through the public
		// helper using the *unrestricted* taxonomy — results must match the
		// restricted generation the driver used).
		wantCands := oracleCandidates(wantLarge, tax, n, minSup, minRI)
		rtax := tax.Restrict(func(x item.Item) bool {
			return res.Large.Table.Contains(item.Itemset{x})
		})
		gotCands := map[item.Key]float64{}
		for _, c := range GenerateCandidates(res.Large.Levels, res.Large.Table, rtax, minSup, minRI, nil) {
			gotCands[c.Set.Key()] = c.Expected
		}
		if len(wantCands) != len(gotCands) {
			t.Fatalf("trial %d: %d candidates, oracle %d", trial, len(gotCands), len(wantCands))
		}
		for k, e := range wantCands {
			if g, ok := gotCands[k]; !ok || math.Abs(g-e) > 1e-9 {
				t.Fatalf("trial %d: candidate %v expected %v, oracle %v (ok=%v)", trial, k.Itemset(), g, e, ok)
			}
		}

		// 3. Negative itemsets: oracle filter over oracle candidates.
		threshold := minSup * minRI
		wantNegs := map[item.Key]struct{}{}
		for k, e := range wantCands {
			actual := float64(oracleSupport(db, tax, k.Itemset())) / float64(n)
			if e-actual >= threshold {
				wantNegs[k] = struct{}{}
			}
		}
		if len(wantNegs) != len(res.Negatives) {
			t.Fatalf("trial %d: %d negatives, oracle %d", trial, len(res.Negatives), len(wantNegs))
		}
		for _, neg := range res.Negatives {
			if _, ok := wantNegs[neg.Set.Key()]; !ok {
				t.Fatalf("trial %d: unexpected negative %v", trial, neg.Set)
			}
			// Verify the counted actual support directly.
			if want := oracleSupport(db, tax, neg.Set); want != neg.Count {
				t.Fatalf("trial %d: actual sup(%v) = %d, oracle %d", trial, neg.Set, neg.Count, want)
			}
		}

		// 4. Rules: every split of every negative itemset, by definition.
		type ruleKey struct{ a, c item.Key }
		wantRules := map[ruleKey]float64{}
		for _, neg := range res.Negatives {
			dev := neg.Deviation()
			neg.Set.AllSubsets(true, func(cons item.Itemset) {
				consK := cons.Clone()
				ante := neg.Set.Minus(consK)
				supA, okA := res.Large.Table.Support(ante)
				_, okC := res.Large.Table.Count(consK)
				if !okA || !okC || supA == 0 {
					return
				}
				if ri := dev / supA; ri >= minRI {
					wantRules[ruleKey{ante.Key(), consK.Key()}] = ri
				}
			})
		}
		gotRules := map[ruleKey]float64{}
		for _, rule := range res.Rules {
			gotRules[ruleKey{rule.Antecedent.Key(), rule.Consequent.Key()}] = rule.RI
		}
		// The miner's Figure-4 pruning can drop rules whose antecedent is
		// small even though a larger-consequent variant would qualify; the
		// oracle enumerates all definition-valid rules. Every mined rule
		// must be definition-valid; and every oracle rule reachable under
		// Figure 4's monotone schedule must be mined. For these trials the
		// sets coincide; assert both directions and report any principled
		// difference loudly.
		for k, ri := range gotRules {
			if want, ok := wantRules[k]; !ok || math.Abs(want-ri) > 1e-9 {
				t.Fatalf("trial %d: mined rule %v =/=> %v not valid per oracle",
					trial, k.a.Itemset(), k.c.Itemset())
			}
		}
		for k, ri := range wantRules {
			if got, ok := gotRules[k]; !ok || math.Abs(got-ri) > 1e-9 {
				t.Fatalf("trial %d: oracle rule %v =/=> %v (RI %v) missing from miner",
					trial, k.a.Itemset(), k.c.Itemset(), ri)
			}
		}
	}
}
