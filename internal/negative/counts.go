package negative

import (
	"fmt"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
)

// CountFunc counts candidate itemset groups over the mined database.
// groups[gi] lists itemsets of one uniform size; transforms[gi] is the
// ancestor extension the counts must be taken under (see
// gen.ExtendTransform). The result is indexed [group][candidate], parallel
// to groups.
//
// The count of an itemset under an ExtendTransform is independent of the
// other group members (a set's items are always inside the transform's used
// set), so an implementation is free to split a group — count some sets
// from a cache and the rest with a narrower transform — as long as every
// returned count equals a full-database count of that set.
type CountFunc func(groups [][]item.Itemset, transforms []count.TransformInto) ([][]int, error)

// MineWithCounts runs candidate generation, counting and rule generation
// (the paper's stages 2 and 3) against a stage-1 large-itemset result
// obtained elsewhere, delegating the candidate counting pass to countFn.
//
// The batch Improved driver is MineWithCounts applied to gen.Mine's result
// with a whole-database CountFunc; internal/incr applies it to a result
// merged from per-segment partitions with a segment-cached CountFunc. Equal
// stage-1 results and exact counts therefore yield byte-identical rule sets
// — both paths are the same code from here on.
func MineWithCounts(large *apriori.Result, tax *taxonomy.Taxonomy, opt Options, countFn CountFunc) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if tax == nil {
		return nil, fmt.Errorf("negative: nil taxonomy")
	}
	if large == nil {
		return nil, fmt.Errorf("negative: nil stage-1 result")
	}
	if countFn == nil {
		return nil, fmt.Errorf("negative: nil CountFunc")
	}
	return mineStages23(large, tax, opt, countFn)
}
