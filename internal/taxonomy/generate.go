package taxonomy

import (
	"fmt"

	"negmine/internal/item"
	"negmine/internal/stats"
)

// GenSpec parameterizes random taxonomy generation (paper §3.1): N leaf
// items grouped into categories with Poisson(F) fanout, grouped again level
// by level until at most R roots remain.
type GenSpec struct {
	Leaves int     // N: number of leaf items
	Roots  int     // R: grouping stops once a level has ≤ R nodes
	Fanout float64 // F: mean Poisson fanout
}

// Generate builds a random taxonomy. Construction is bottom-up: the N leaves
// form level 0; each higher level groups the previous one into runs of
// Poisson(F) (≥ 2) nodes; grouping stops when a level has at most R nodes,
// which become the roots. This yields exactly N leaves, mean fanout ≈ F and
// ≈ R roots — fanout F = 9 gives the paper's shallow "Short" shape, F = 3
// the deep "Tall" shape.
//
// Leaves are named item0..item<N-1>; categories cat<level>_<index>.
func Generate(spec GenSpec, src *stats.Source) (*Taxonomy, error) {
	if spec.Leaves <= 0 {
		return nil, fmt.Errorf("taxonomy: GenSpec.Leaves = %d, want > 0", spec.Leaves)
	}
	if spec.Roots <= 0 {
		return nil, fmt.Errorf("taxonomy: GenSpec.Roots = %d, want > 0", spec.Roots)
	}
	if spec.Fanout < 2 {
		return nil, fmt.Errorf("taxonomy: GenSpec.Fanout = %v, want ≥ 2", spec.Fanout)
	}
	b := NewBuilder()
	level := make([]item.Item, spec.Leaves)
	for i := range level {
		level[i] = b.Node(fmt.Sprintf("item%d", i))
	}
	for lvl := 1; len(level) > spec.Roots; lvl++ {
		var next []item.Item
		for i := 0; i < len(level); {
			n := src.PoissonAtLeast(spec.Fanout, 2)
			if i+n > len(level) {
				n = len(level) - i
			}
			cat := b.Node(fmt.Sprintf("cat%d_%d", lvl, len(next)))
			for _, c := range level[i : i+n] {
				b.LinkIDs(cat, c)
			}
			next = append(next, cat)
			i += n
		}
		if len(next) >= len(level) { // cannot happen with fanout ≥ 2, but guard anyway
			return nil, fmt.Errorf("taxonomy: generation failed to converge at level %d", lvl)
		}
		level = next
	}
	return b.Build()
}

// MeanFanout returns the average number of children over all internal nodes,
// 0 for a taxonomy with no categories.
func (t *Taxonomy) MeanFanout() float64 {
	cats := t.Categories()
	if len(cats) == 0 {
		return 0
	}
	total := 0
	for _, c := range cats {
		total += len(t.Children(c))
	}
	return float64(total) / float64(len(cats))
}
