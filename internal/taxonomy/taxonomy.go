// Package taxonomy implements the item hierarchy ("is-a" forest) that the
// paper relies on as domain knowledge: leaves are purchasable items,
// internal nodes are categories (departments, sub-categories, brands...).
//
// The taxonomy serves three distinct roles in the system:
//
//  1. Generalized mining (Srikant–Agrawal) counts a transaction as
//     supporting a category when it contains any descendant leaf — the
//     AncestorsOf closure implements this extension.
//  2. Negative candidate generation (paper §2.1.1) swaps items of a large
//     itemset for their children or siblings — Children and Siblings.
//  3. Taxonomy compression (paper §2.2, improved algorithm) removes small
//     1-itemsets before candidate generation — Restrict.
//
// A Taxonomy is immutable after Build; all methods are safe for concurrent
// readers.
package taxonomy

import (
	"fmt"
	"sort"

	"negmine/internal/item"
)

// Taxonomy is an immutable forest over item ids. Ids are dense in
// [0, Size()); leaves and categories share the same id space.
type Taxonomy struct {
	parent   []item.Item   // parent[i], item.None for roots
	children [][]item.Item // sorted child lists
	depth    []int         // depth[i]: 0 for roots
	roots    []item.Item
	leaves   item.Itemset // cached sorted leaf set
	cats     item.Itemset // cached sorted category (internal node) set
	anc      [][]item.Item
	dict     *item.Dictionary
	height   int
}

// Builder constructs a Taxonomy incrementally, interning node names.
type Builder struct {
	dict   *item.Dictionary
	parent map[item.Item]item.Item
}

// NewBuilder returns an empty taxonomy builder.
func NewBuilder() *Builder {
	return &Builder{dict: item.NewDictionary(), parent: make(map[item.Item]item.Item)}
}

// Node interns name (creating a root-level node if new) and returns its id.
func (b *Builder) Node(name string) item.Item {
	id := b.dict.Intern(name)
	if _, ok := b.parent[id]; !ok {
		b.parent[id] = item.None
	}
	return id
}

// Link records that child's parent is parent (both interned by name).
// Re-linking a child to a different parent overwrites the previous edge.
func (b *Builder) Link(parent, child string) (item.Item, item.Item) {
	p := b.Node(parent)
	c := b.Node(child)
	b.parent[c] = p
	return p, c
}

// LinkIDs records a parent edge between already-interned ids.
func (b *Builder) LinkIDs(parent, child item.Item) { b.parent[child] = parent }

// Dictionary exposes the builder's name dictionary.
func (b *Builder) Dictionary() *item.Dictionary { return b.dict }

// Build finalizes the forest. It fails on cycles and on dangling parents.
func (b *Builder) Build() (*Taxonomy, error) {
	n := b.dict.Len()
	t := &Taxonomy{
		parent:   make([]item.Item, n),
		children: make([][]item.Item, n),
		depth:    make([]int, n),
		anc:      make([][]item.Item, n),
		dict:     b.dict,
	}
	for i := range t.parent {
		t.parent[i] = item.None
	}
	for c, p := range b.parent {
		if p == item.None {
			continue
		}
		if p < 0 || int(p) >= n {
			return nil, fmt.Errorf("taxonomy: node %d has out-of-range parent %d", c, p)
		}
		t.parent[c] = p
	}
	return finish(t)
}

// finish computes the derived structures shared by Build and Restrict.
func finish(t *Taxonomy) (*Taxonomy, error) {
	n := len(t.parent)
	for c := 0; c < n; c++ {
		p := t.parent[c]
		if p == item.None {
			t.roots = append(t.roots, item.Item(c))
			continue
		}
		t.children[p] = append(t.children[p], item.Item(c))
	}
	for i := range t.children {
		ch := t.children[i]
		sort.Slice(ch, func(a, b int) bool { return ch[a] < ch[b] })
	}
	sort.Slice(t.roots, func(a, b int) bool { return t.roots[a] < t.roots[b] })

	// Depth + cycle detection via iterative parent-chain resolution.
	const unset = -1
	for i := range t.depth {
		t.depth[i] = unset
	}
	for i := 0; i < n; i++ {
		// Walk up until a node with known depth (or a root); detect cycles
		// with a step bound.
		var chain []item.Item
		cur := item.Item(i)
		steps := 0
		for t.depth[cur] == unset {
			chain = append(chain, cur)
			p := t.parent[cur]
			if p == item.None {
				t.depth[cur] = 0
				break
			}
			cur = p
			if steps++; steps > n {
				return nil, fmt.Errorf("taxonomy: cycle involving node %d (%s)", i, t.dict.Name(item.Item(i)))
			}
		}
		// Unwind the chain assigning depths.
		for j := len(chain) - 1; j >= 0; j-- {
			c := chain[j]
			if t.depth[c] == unset {
				t.depth[c] = t.depth[t.parent[c]] + 1
			}
			if t.depth[c] > t.height {
				t.height = t.depth[c]
			}
		}
	}

	// Leaf / category caches and ancestor closure.
	var leaves, cats []item.Item
	for i := 0; i < n; i++ {
		if len(t.children[i]) == 0 {
			leaves = append(leaves, item.Item(i))
		} else {
			cats = append(cats, item.Item(i))
		}
	}
	t.leaves = item.New(leaves...)
	t.cats = item.New(cats...)
	for i := 0; i < n; i++ {
		var a []item.Item
		for p := t.parent[i]; p != item.None; p = t.parent[p] {
			a = append(a, p)
		}
		t.anc[i] = a // ordered nearest-first
	}
	return t, nil
}

// Size returns the total number of nodes (leaves + categories).
func (t *Taxonomy) Size() int { return len(t.parent) }

// Height returns the maximum depth of any node (roots are depth 0).
func (t *Taxonomy) Height() int { return t.height }

// Dictionary returns the name dictionary for this taxonomy's nodes.
func (t *Taxonomy) Dictionary() *item.Dictionary { return t.dict }

// Name returns the display name of node i.
func (t *Taxonomy) Name(i item.Item) string { return t.dict.Name(i) }

// Parent returns the parent of i, or item.None for roots.
func (t *Taxonomy) Parent(i item.Item) item.Item {
	if !t.valid(i) {
		return item.None
	}
	return t.parent[i]
}

// Children returns the sorted child list of i. The returned slice is shared;
// callers must not modify it.
func (t *Taxonomy) Children(i item.Item) []item.Item {
	if !t.valid(i) {
		return nil
	}
	return t.children[i]
}

// Siblings returns the children of i's parent excluding i itself. Roots'
// siblings are the other roots.
func (t *Taxonomy) Siblings(i item.Item) []item.Item {
	if !t.valid(i) {
		return nil
	}
	var pool []item.Item
	if p := t.parent[i]; p != item.None {
		pool = t.children[p]
	} else {
		pool = t.roots
	}
	out := make([]item.Item, 0, len(pool)-1)
	for _, s := range pool {
		if s != i {
			out = append(out, s)
		}
	}
	return out
}

// AncestorsOf returns all proper ancestors of i ordered nearest-first. The
// returned slice is shared; callers must not modify it.
func (t *Taxonomy) AncestorsOf(i item.Item) []item.Item {
	if !t.valid(i) {
		return nil
	}
	return t.anc[i]
}

// IsAncestor reports whether a is a proper ancestor of d.
func (t *Taxonomy) IsAncestor(a, d item.Item) bool {
	if !t.valid(d) {
		return false
	}
	for _, x := range t.anc[d] {
		if x == a {
			return true
		}
	}
	return false
}

// Depth returns the depth of i (roots are 0), or -1 for invalid ids.
func (t *Taxonomy) Depth(i item.Item) int {
	if !t.valid(i) {
		return -1
	}
	return t.depth[i]
}

// IsLeaf reports whether i has no children.
func (t *Taxonomy) IsLeaf(i item.Item) bool { return t.valid(i) && len(t.children[i]) == 0 }

// IsRoot reports whether i has no parent.
func (t *Taxonomy) IsRoot(i item.Item) bool { return t.valid(i) && t.parent[i] == item.None }

// Roots returns the root nodes (shared slice).
func (t *Taxonomy) Roots() []item.Item { return t.roots }

// Leaves returns the sorted set of leaf items (shared slice).
func (t *Taxonomy) Leaves() item.Itemset { return t.leaves }

// Categories returns the sorted set of internal nodes (shared slice).
func (t *Taxonomy) Categories() item.Itemset { return t.cats }

// LeafDescendants returns the sorted leaf items under node i (i itself if it
// is a leaf). A fresh slice is returned.
func (t *Taxonomy) LeafDescendants(i item.Item) item.Itemset {
	if !t.valid(i) {
		return nil
	}
	var out []item.Item
	stack := []item.Item{i}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(t.children[x]) == 0 {
			out = append(out, x)
			continue
		}
		stack = append(stack, t.children[x]...)
	}
	return item.New(out...)
}

// ExtendInto appends tx plus all ancestors of its items into dst (normally
// dst[:0] of a reusable buffer) and returns the sorted, deduplicated result.
// It is the allocation-free form of Extend for counting hot paths: the
// returned itemset aliases dst's (possibly grown) backing array, so callers
// must stop using it before the next ExtendInto call on the same buffer.
func (t *Taxonomy) ExtendInto(dst []item.Item, tx item.Itemset) item.Itemset {
	for _, x := range tx {
		dst = append(dst, x)
		if t.valid(x) {
			dst = append(dst, t.anc[x]...)
		}
	}
	return item.SortDedup(dst)
}

// Extend returns tx plus all ancestors of its items (the Cumulate transform:
// a transaction supports a category iff it contains one of its leaves).
func (t *Taxonomy) Extend(tx item.Itemset) item.Itemset {
	seen := make(map[item.Item]struct{}, len(tx)*2)
	out := make([]item.Item, 0, len(tx)*2)
	add := func(x item.Item) {
		if _, ok := seen[x]; !ok {
			seen[x] = struct{}{}
			out = append(out, x)
		}
	}
	for _, x := range tx {
		add(x)
		if t.valid(x) {
			for _, a := range t.anc[x] {
				add(a)
			}
		}
	}
	return item.New(out...)
}

// Restrict returns a copy of the taxonomy in which every node failing keep
// has been unlinked: it disappears from its parent's child list and from
// sibling lists, and its own subtree is re-rooted (its children become
// roots). This implements the paper's "delete all small 1-itemsets from the
// taxonomy" optimization. Node ids and names are preserved.
func (t *Taxonomy) Restrict(keep func(item.Item) bool) *Taxonomy {
	n := t.Size()
	nt := &Taxonomy{
		parent:   make([]item.Item, n),
		children: make([][]item.Item, n),
		depth:    make([]int, n),
		anc:      make([][]item.Item, n),
		dict:     t.dict,
	}
	for i := 0; i < n; i++ {
		p := t.parent[i]
		if !keep(item.Item(i)) || p == item.None || !keep(p) {
			nt.parent[i] = item.None
			continue
		}
		nt.parent[i] = p
	}
	res, err := finish(nt)
	if err != nil {
		// The input had no cycles and unlinking cannot create one.
		panic("taxonomy: Restrict broke acyclicity: " + err.Error())
	}
	// Dropped nodes must not be reported as roots or leaves.
	var roots []item.Item
	for _, r := range res.roots {
		if keep(r) {
			roots = append(roots, r)
		}
	}
	res.roots = roots
	var leaves, cats []item.Item
	for _, l := range res.leaves {
		if keep(l) {
			leaves = append(leaves, l)
		}
	}
	for _, c := range res.cats {
		if keep(c) {
			cats = append(cats, c)
		}
	}
	res.leaves = item.New(leaves...)
	res.cats = item.New(cats...)
	return res
}

func (t *Taxonomy) valid(i item.Item) bool { return i >= 0 && int(i) < len(t.parent) }

// Validate performs internal consistency checks (used by tests and after
// parsing untrusted files).
func (t *Taxonomy) Validate() error {
	for i := 0; i < t.Size(); i++ {
		id := item.Item(i)
		if p := t.parent[i]; p != item.None {
			found := false
			for _, c := range t.children[p] {
				if c == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("node %d missing from parent %d child list", i, p)
			}
			if t.depth[i] != t.depth[p]+1 {
				return fmt.Errorf("node %d depth %d inconsistent with parent depth %d", i, t.depth[i], t.depth[p])
			}
		} else if t.depth[i] != 0 {
			return fmt.Errorf("root %d has depth %d", i, t.depth[i])
		}
	}
	return nil
}
