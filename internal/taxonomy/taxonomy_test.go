package taxonomy

import (
	"bytes"
	"strings"
	"testing"

	"negmine/internal/item"
	"negmine/internal/stats"
)

// figure1 builds the taxonomy from the paper's Figure 1:
//
//	A(B C)  F(G H I);  B(D E)  G(J K)
func figure1(t *testing.T) (*Taxonomy, map[string]item.Item) {
	t.Helper()
	b := NewBuilder()
	for _, e := range [][2]string{
		{"A", "B"}, {"A", "C"}, {"B", "D"}, {"B", "E"},
		{"F", "G"}, {"F", "H"}, {"F", "I"}, {"G", "J"}, {"G", "K"},
	} {
		b.Link(e[0], e[1])
	}
	tax, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ids := make(map[string]item.Item)
	for _, n := range []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K"} {
		id, ok := tax.Dictionary().Lookup(n)
		if !ok {
			t.Fatalf("node %s missing", n)
		}
		ids[n] = id
	}
	return tax, ids
}

func TestStructure(t *testing.T) {
	tax, ids := figure1(t)
	if err := tax.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tax.Size() != 11 {
		t.Errorf("Size = %d, want 11", tax.Size())
	}
	if tax.Height() != 2 {
		t.Errorf("Height = %d, want 2", tax.Height())
	}
	if got := tax.Parent(ids["D"]); got != ids["B"] {
		t.Errorf("Parent(D) = %v", got)
	}
	if got := tax.Parent(ids["A"]); got != item.None {
		t.Errorf("Parent(A) = %v, want None", got)
	}
	if got := tax.Children(ids["B"]); !item.New(got...).Equal(item.New(ids["D"], ids["E"])) {
		t.Errorf("Children(B) = %v", got)
	}
	if got := tax.Children(ids["D"]); len(got) != 0 {
		t.Errorf("Children(leaf D) = %v", got)
	}
	if !tax.IsLeaf(ids["C"]) || tax.IsLeaf(ids["B"]) {
		t.Error("IsLeaf wrong")
	}
	if !tax.IsRoot(ids["A"]) || tax.IsRoot(ids["B"]) {
		t.Error("IsRoot wrong")
	}
	if got := item.New(tax.Roots()...); !got.Equal(item.New(ids["A"], ids["F"])) {
		t.Errorf("Roots = %v", got)
	}
	wantLeaves := item.New(ids["C"], ids["D"], ids["E"], ids["H"], ids["I"], ids["J"], ids["K"])
	if !tax.Leaves().Equal(wantLeaves) {
		t.Errorf("Leaves = %v, want %v", tax.Leaves(), wantLeaves)
	}
	wantCats := item.New(ids["A"], ids["B"], ids["F"], ids["G"])
	if !tax.Categories().Equal(wantCats) {
		t.Errorf("Categories = %v, want %v", tax.Categories(), wantCats)
	}
	if d := tax.Depth(ids["J"]); d != 2 {
		t.Errorf("Depth(J) = %d", d)
	}
	if d := tax.Depth(item.Item(99)); d != -1 {
		t.Errorf("Depth(invalid) = %d", d)
	}
}

func TestSiblings(t *testing.T) {
	tax, ids := figure1(t)
	if got := item.New(tax.Siblings(ids["G"])...); !got.Equal(item.New(ids["H"], ids["I"])) {
		t.Errorf("Siblings(G) = %v", got)
	}
	if got := item.New(tax.Siblings(ids["C"])...); !got.Equal(item.New(ids["B"])) {
		t.Errorf("Siblings(C) = %v", got)
	}
	// Roots are each other's siblings (virtual super-root).
	if got := item.New(tax.Siblings(ids["A"])...); !got.Equal(item.New(ids["F"])) {
		t.Errorf("Siblings(A) = %v", got)
	}
}

func TestAncestors(t *testing.T) {
	tax, ids := figure1(t)
	anc := tax.AncestorsOf(ids["J"])
	if len(anc) != 2 || anc[0] != ids["G"] || anc[1] != ids["F"] {
		t.Errorf("AncestorsOf(J) = %v, want [G F]", anc)
	}
	if len(tax.AncestorsOf(ids["A"])) != 0 {
		t.Error("root has ancestors")
	}
	if !tax.IsAncestor(ids["F"], ids["J"]) || tax.IsAncestor(ids["J"], ids["F"]) {
		t.Error("IsAncestor wrong")
	}
	if tax.IsAncestor(ids["A"], ids["J"]) {
		t.Error("A is not an ancestor of J")
	}
}

func TestLeafDescendants(t *testing.T) {
	tax, ids := figure1(t)
	got := tax.LeafDescendants(ids["F"])
	want := item.New(ids["H"], ids["I"], ids["J"], ids["K"])
	if !got.Equal(want) {
		t.Errorf("LeafDescendants(F) = %v, want %v", got, want)
	}
	if got := tax.LeafDescendants(ids["D"]); !got.Equal(item.New(ids["D"])) {
		t.Errorf("LeafDescendants(leaf) = %v", got)
	}
}

func TestExtend(t *testing.T) {
	tax, ids := figure1(t)
	tx := item.New(ids["D"], ids["J"])
	got := tax.Extend(tx)
	want := item.New(ids["D"], ids["J"], ids["B"], ids["A"], ids["G"], ids["F"])
	if !got.Equal(want) {
		t.Errorf("Extend = %v, want %v", got, want)
	}
	// Items already including an ancestor must not duplicate.
	tx2 := item.New(ids["D"], ids["B"])
	if got := tax.Extend(tx2); !got.Equal(item.New(ids["D"], ids["B"], ids["A"])) {
		t.Errorf("Extend dedup = %v", got)
	}
	if got := tax.Extend(nil); got.Len() != 0 {
		t.Errorf("Extend(nil) = %v", got)
	}
}

func TestRestrict(t *testing.T) {
	tax, ids := figure1(t)
	// Drop H (a small leaf): G's siblings shrink, F's children shrink.
	small := ids["H"]
	r := tax.Restrict(func(i item.Item) bool { return i != small })
	if got := item.New(r.Children(ids["F"])...); !got.Equal(item.New(ids["G"], ids["I"])) {
		t.Errorf("Children(F) after Restrict = %v", got)
	}
	if got := item.New(r.Siblings(ids["G"])...); !got.Equal(item.New(ids["I"])) {
		t.Errorf("Siblings(G) after Restrict = %v", got)
	}
	if r.Leaves().Contains(small) {
		t.Error("restricted taxonomy still lists H as leaf")
	}
	// Dropping an internal node re-roots its kept children.
	r2 := tax.Restrict(func(i item.Item) bool { return i != ids["G"] })
	if !r2.IsRoot(ids["J"]) {
		t.Error("child of dropped node should become a root")
	}
	if got := item.New(r2.Children(ids["F"])...); !got.Equal(item.New(ids["H"], ids["I"])) {
		t.Errorf("Children(F) after dropping G = %v", got)
	}
	// Names and ids are preserved.
	if r.Name(ids["J"]) != "J" {
		t.Errorf("name lost: %q", r.Name(ids["J"]))
	}
	// Original untouched.
	if len(tax.Children(ids["F"])) != 3 {
		t.Error("Restrict mutated the original")
	}
}

func TestCycleDetection(t *testing.T) {
	b := NewBuilder()
	b.Link("a", "b")
	b.Link("b", "c")
	b.Link("c", "a")
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle not detected")
	}
	// Self-loop.
	b2 := NewBuilder()
	b2.Link("x", "x")
	if _, err := b2.Build(); err == nil {
		t.Fatal("self-loop not detected")
	}
}

func TestRelinkOverwrites(t *testing.T) {
	b := NewBuilder()
	b.Link("p1", "c")
	b.Link("p2", "c")
	tax, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := tax.Dictionary().Lookup("p2")
	c, _ := tax.Dictionary().Lookup("c")
	if tax.Parent(c) != p2 {
		t.Errorf("Parent(c) = %v, want p2", tax.Parent(c))
	}
	p1, _ := tax.Dictionary().Lookup("p1")
	if !tax.IsLeaf(p1) {
		t.Error("p1 should have become a leaf")
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	src := `
# paper figure 2
noncarb water        # category edge
water perrier
water evian
desserts yogurt
yogurt bryers
yogurt healthychoice
loner
`
	tax, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tax.Size() != 9 {
		t.Errorf("Size = %d, want 9", tax.Size())
	}
	w, _ := tax.Dictionary().Lookup("water")
	p, _ := tax.Dictionary().Lookup("perrier")
	if tax.Parent(p) != w {
		t.Error("perrier's parent wrong")
	}
	l, ok := tax.Dictionary().Lookup("loner")
	if !ok || !tax.IsRoot(l) || !tax.IsLeaf(l) {
		t.Error("standalone node mishandled")
	}

	var buf bytes.Buffer
	if err := tax.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	tax2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if tax2.Size() != tax.Size() {
		t.Errorf("round trip size %d != %d", tax2.Size(), tax.Size())
	}
	for _, name := range []string{"perrier", "evian", "bryers"} {
		a, _ := tax.Dictionary().Lookup(name)
		b, _ := tax2.Dictionary().Lookup(name)
		if tax.Name(tax.Parent(a)) != tax2.Name(tax2.Parent(b)) {
			t.Errorf("round trip parent of %s differs", name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("a b c\n")); err == nil {
		t.Error("3-field line accepted")
	}
}

func TestDOT(t *testing.T) {
	tax, _ := figure1(t)
	var buf bytes.Buffer
	if err := tax.DOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "digraph taxonomy") || !strings.Contains(s, "shape=box") {
		t.Errorf("DOT output missing expected markers:\n%s", s)
	}
}

func TestStringTree(t *testing.T) {
	tax, _ := figure1(t)
	s := tax.String()
	if !strings.Contains(s, "A\n") || !strings.Contains(s, "  B\n") || !strings.Contains(s, "    D\n") {
		t.Errorf("tree view unexpected:\n%s", s)
	}
}

func TestGenerate(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec GenSpec
	}{
		{"short-like", GenSpec{Leaves: 500, Roots: 10, Fanout: 9}},
		{"tall-like", GenSpec{Leaves: 500, Roots: 10, Fanout: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tax, err := Generate(tc.spec, stats.NewSource(7))
			if err != nil {
				t.Fatal(err)
			}
			if err := tax.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := tax.Leaves().Len(); got != tc.spec.Leaves {
				t.Errorf("leaves = %d, want %d", got, tc.spec.Leaves)
			}
			if got := len(tax.Roots()); got > tc.spec.Roots {
				t.Errorf("roots = %d, want ≤ %d", got, tc.spec.Roots)
			}
			mf := tax.MeanFanout()
			if mf < tc.spec.Fanout*0.5 || mf > tc.spec.Fanout*1.7 {
				t.Errorf("mean fanout = %v, want ≈ %v", mf, tc.spec.Fanout)
			}
			// Every leaf must be named itemI and reach a root.
			for _, l := range tax.Leaves() {
				if !strings.HasPrefix(tax.Name(l), "item") {
					t.Fatalf("leaf name %q", tax.Name(l))
				}
			}
		})
	}
	// Tall must be strictly taller than Short.
	short, _ := Generate(GenSpec{Leaves: 2000, Roots: 50, Fanout: 9}, stats.NewSource(1))
	tall, _ := Generate(GenSpec{Leaves: 2000, Roots: 50, Fanout: 3}, stats.NewSource(1))
	if tall.Height() <= short.Height() {
		t.Errorf("tall height %d ≤ short height %d", tall.Height(), short.Height())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Leaves: 300, Roots: 8, Fanout: 5}
	a, _ := Generate(spec, stats.NewSource(11))
	b, _ := Generate(spec, stats.NewSource(11))
	if a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for i := 0; i < a.Size(); i++ {
		if a.Parent(item.Item(i)) != b.Parent(item.Item(i)) {
			t.Fatalf("parent of %d differs", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	src := stats.NewSource(1)
	for _, spec := range []GenSpec{
		{Leaves: 0, Roots: 5, Fanout: 3},
		{Leaves: 10, Roots: 0, Fanout: 3},
		{Leaves: 10, Roots: 5, Fanout: 1},
	} {
		if _, err := Generate(spec, src); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}
