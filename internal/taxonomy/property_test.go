package taxonomy

import (
	"testing"

	"negmine/internal/item"
	"negmine/internal/stats"
)

// randomTaxonomies yields a spread of generated taxonomies for property
// tests.
func randomTaxonomies(t *testing.T) []*Taxonomy {
	t.Helper()
	var out []*Taxonomy
	for seed := int64(1); seed <= 5; seed++ {
		spec := GenSpec{Leaves: 100 + int(seed)*37, Roots: 3 + int(seed), Fanout: 2 + float64(seed%3)*3}
		tax, err := Generate(spec, stats.NewSource(seed))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tax)
	}
	return out
}

func TestPropertyLeavesAndCategoriesPartitionNodes(t *testing.T) {
	for _, tax := range randomTaxonomies(t) {
		if tax.Leaves().Len()+tax.Categories().Len() != tax.Size() {
			t.Fatalf("leaves %d + categories %d != size %d",
				tax.Leaves().Len(), tax.Categories().Len(), tax.Size())
		}
		if !tax.Leaves().Disjoint(tax.Categories()) {
			t.Fatal("leaves and categories overlap")
		}
	}
}

func TestPropertyLeafDescendantsPartition(t *testing.T) {
	// The leaf descendants of all roots exactly partition the leaf set.
	for _, tax := range randomTaxonomies(t) {
		var union item.Itemset
		for _, r := range tax.Roots() {
			d := tax.LeafDescendants(r)
			if !union.Disjoint(d) {
				t.Fatal("root subtrees share leaves")
			}
			union = union.Union(d)
		}
		if !union.Equal(tax.Leaves()) {
			t.Fatalf("root leaf-descendants cover %d leaves, want %d", union.Len(), tax.Leaves().Len())
		}
	}
}

func TestPropertyAncestorChainConsistency(t *testing.T) {
	for _, tax := range randomTaxonomies(t) {
		for i := 0; i < tax.Size(); i++ {
			x := item.Item(i)
			anc := tax.AncestorsOf(x)
			// Depth equals chain length; each ancestor's depth decreases
			// by one; IsAncestor agrees with chain membership.
			if len(anc) != tax.Depth(x) {
				t.Fatalf("node %d: %d ancestors but depth %d", i, len(anc), tax.Depth(x))
			}
			for j, a := range anc {
				if tax.Depth(a) != tax.Depth(x)-j-1 {
					t.Fatalf("node %d: ancestor %d at depth %d, want %d",
						i, a, tax.Depth(a), tax.Depth(x)-j-1)
				}
				if !tax.IsAncestor(a, x) {
					t.Fatalf("IsAncestor(%d, %d) = false for chain member", a, x)
				}
				if tax.IsAncestor(x, a) {
					t.Fatalf("IsAncestor symmetric for %d, %d", x, a)
				}
			}
		}
	}
}

func TestPropertyExtendIdempotent(t *testing.T) {
	for seed, tax := range randomTaxonomies(t) {
		src := stats.NewSource(int64(seed) + 50)
		leaves := tax.Leaves()
		for trial := 0; trial < 30; trial++ {
			n := 1 + src.Intn(6)
			raw := make([]item.Item, n)
			for j := range raw {
				raw[j] = leaves[src.Intn(len(leaves))]
			}
			tx := item.New(raw...)
			ext := tax.Extend(tx)
			if !tx.SubsetOf(ext) {
				t.Fatal("Extend dropped original items")
			}
			if again := tax.Extend(ext); !again.Equal(ext) {
				t.Fatalf("Extend not idempotent: %v -> %v", ext, again)
			}
			// Every added item is an ancestor of some original item.
			for _, x := range ext.Minus(tx) {
				ok := false
				for _, o := range tx {
					if tax.IsAncestor(x, o) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("Extend added non-ancestor %v", x)
				}
			}
		}
	}
}

func TestPropertySiblingsSymmetric(t *testing.T) {
	for _, tax := range randomTaxonomies(t) {
		for i := 0; i < tax.Size(); i++ {
			x := item.Item(i)
			for _, s := range tax.Siblings(x) {
				found := false
				for _, back := range tax.Siblings(s) {
					if back == x {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("sibling relation asymmetric: %d has %d but not vice versa", x, s)
				}
				if s == x {
					t.Fatalf("node %d is its own sibling", x)
				}
			}
		}
	}
}

func TestPropertyRestrictSubset(t *testing.T) {
	// Restricting to any predicate yields child/sibling lists that are
	// subsets of the originals, restricted to kept nodes.
	for seed, tax := range randomTaxonomies(t) {
		src := stats.NewSource(int64(seed) + 99)
		keepSet := map[item.Item]bool{}
		for i := 0; i < tax.Size(); i++ {
			keepSet[item.Item(i)] = src.Float64() < 0.7
		}
		keep := func(x item.Item) bool { return keepSet[x] }
		r := tax.Restrict(keep)
		for i := 0; i < tax.Size(); i++ {
			x := item.Item(i)
			orig := item.New(tax.Children(x)...)
			for _, c := range r.Children(x) {
				if !keep(c) {
					t.Fatalf("restricted children of %d include dropped %d", x, c)
				}
				if !orig.Contains(c) {
					t.Fatalf("restricted children of %d include non-child %d", x, c)
				}
			}
			if !keep(x) && len(r.Children(x)) != 0 {
				t.Fatalf("dropped node %d still has children", x)
			}
		}
		for _, l := range r.Leaves() {
			if !keep(l) {
				t.Fatalf("dropped node %d listed as leaf", l)
			}
		}
	}
}
