package taxonomy

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"negmine/internal/item"
)

// Parse reads a taxonomy in the library's text format: one edge per line as
// "parent child" (whitespace separated); a line with a single token declares
// a standalone node; '#' starts a comment; blank lines are ignored.
func Parse(r io.Reader) (*Taxonomy, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		switch len(fields) {
		case 0:
			continue
		case 1:
			b.Node(fields[0])
		case 2:
			b.Link(fields[0], fields[1])
		default:
			return nil, fmt.Errorf("taxonomy: line %d: want 'parent child', got %d fields", lineNo, len(fields))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("taxonomy: reading: %w", err)
	}
	return b.Build()
}

// Write serializes t in the format Parse reads. Edges are emitted in child-id
// order; parentless isolated nodes are emitted as single tokens.
func (t *Taxonomy) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < t.Size(); i++ {
		id := item.Item(i)
		if p := t.Parent(id); p != item.None {
			if _, err := fmt.Fprintf(bw, "%s %s\n", t.Name(p), t.Name(id)); err != nil {
				return err
			}
		} else if len(t.Children(id)) == 0 {
			if _, err := fmt.Fprintln(bw, t.Name(id)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DOT renders the taxonomy in Graphviz dot format, marking leaves as boxes.
func (t *Taxonomy) DOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph taxonomy {")
	fmt.Fprintln(bw, "  rankdir=TB;")
	for i := 0; i < t.Size(); i++ {
		id := item.Item(i)
		shape := "ellipse"
		if t.IsLeaf(id) {
			shape = "box"
		}
		fmt.Fprintf(bw, "  n%d [label=%q shape=%s];\n", i, t.Name(id), shape)
	}
	for i := 0; i < t.Size(); i++ {
		id := item.Item(i)
		if p := t.Parent(id); p != item.None {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", p, i)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// String renders a compact multi-line tree view (roots first, children
// indented), useful in examples and debugging.
func (t *Taxonomy) String() string {
	var b strings.Builder
	var rec func(n item.Item, depth int)
	rec = func(n item.Item, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(t.Name(n))
		b.WriteByte('\n')
		ch := append([]item.Item(nil), t.Children(n)...)
		sort.Slice(ch, func(i, j int) bool { return t.Name(ch[i]) < t.Name(ch[j]) })
		for _, c := range ch {
			rec(c, depth+1)
		}
	}
	roots := append([]item.Item(nil), t.Roots()...)
	sort.Slice(roots, func(i, j int) bool { return t.Name(roots[i]) < t.Name(roots[j]) })
	for _, r := range roots {
		rec(r, 0)
	}
	return b.String()
}
