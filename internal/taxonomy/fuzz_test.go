// External test package so the fuzz target can seed its corpus from
// internal/datagen (which imports taxonomy).
package taxonomy_test

import (
	"bytes"
	"strings"
	"testing"

	"negmine/internal/datagen"
	"negmine/internal/taxonomy"
)

// FuzzParse feeds arbitrary text to the taxonomy parser. It must never
// panic; any taxonomy it accepts must survive a Write → Parse round trip
// with the same shape (size, leaf count, height).
func FuzzParse(f *testing.F) {
	tax, _, err := datagen.Generate(datagen.Short())
	if err != nil {
		f.Fatalf("datagen: %v", err)
	}
	var seed bytes.Buffer
	if err := tax.Write(&seed); err != nil {
		f.Fatalf("serializing seed: %v", err)
	}
	f.Add(seed.String())
	f.Add("beverages pepsi\nbeverages coke\n")
	f.Add("# comment\nloner\n")
	f.Add("a b\nb a\n") // cycle
	f.Add("a b\nc b\n") // two parents
	f.Add("a b c\n")    // too many fields
	f.Add("x " + strings.Repeat("y", 70000) + "\n")

	f.Fuzz(func(t *testing.T, s string) {
		tax, err := taxonomy.Parse(strings.NewReader(s))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		var out bytes.Buffer
		if err := tax.Write(&out); err != nil {
			t.Fatalf("Write of accepted taxonomy: %v", err)
		}
		tax2, err := taxonomy.Parse(&out)
		if err != nil {
			t.Fatalf("round trip rejected:\ninput %q\nwritten %q\nerr %v", s, out.String(), err)
		}
		if tax2.Size() != tax.Size() || tax2.Leaves().Len() != tax.Leaves().Len() || tax2.Height() != tax.Height() {
			t.Fatalf("round trip changed shape: %d/%d/%d → %d/%d/%d",
				tax.Size(), tax.Leaves().Len(), tax.Height(),
				tax2.Size(), tax2.Leaves().Len(), tax2.Height())
		}
	})
}
