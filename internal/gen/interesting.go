package gen

import (
	"fmt"

	"negmine/internal/apriori"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
)

// PruneInteresting filters positive generalized rules down to the
// R-interesting ones, after Srikant & Agrawal (VLDB 1995 §3) — the
// uninteresting-rule pruning the reproduced paper cites as the closest
// prior work to its negative rules.
//
// A rule X ⇒ Y is pruned when some "close ancestor" rule X̂ ⇒ Ŷ (obtained
// by replacing exactly one item of X or Y with its taxonomy parent, where
// that ancestor rule's parts all have known supports) already predicts it:
// the rule survives only if, against every such ancestor rule, its actual
// support is at least R times the expected support *or* its confidence is
// at least R times the expected confidence. Expected values scale the
// ancestor rule by sup(item)/sup(parent) — the same uniformity assumption
// the negative miner uses.
//
// R must be ≥ 1 (R = 1.1 in the original paper's experiments).
func PruneInteresting(rules []apriori.Rule, res *apriori.Result, tax *taxonomy.Taxonomy, r float64) ([]apriori.Rule, error) {
	if r < 1 {
		return nil, fmt.Errorf("gen: interest level R = %v, want ≥ 1", r)
	}
	if tax == nil {
		return nil, fmt.Errorf("gen: nil taxonomy")
	}
	// Index mined rules by antecedent∪consequent split for confidence
	// lookups of ancestor rules.
	type split struct{ ante, cons item.Key }
	byParts := make(map[split]apriori.Rule, len(rules))
	for _, rule := range rules {
		byParts[split{rule.Antecedent.Key(), rule.Consequent.Key()}] = rule
	}

	var out []apriori.Rule
	for _, rule := range rules {
		interesting := true
		// Enumerate close ancestor rules: one item of either side replaced
		// by its parent.
		// Expected support scales with every replaced item; expected
		// confidence is conditional on the antecedent, so it scales only
		// with consequent replacements.
		check := func(ante, cons item.Itemset, supRatio, confRatio float64) {
			if !interesting {
				return
			}
			anc, ok := byParts[split{ante.Key(), cons.Key()}]
			if !ok {
				return // ancestor rule not mined: cannot judge, keep
			}
			expSup := anc.Support * supRatio
			expConf := anc.Confidence * confRatio
			if rule.Support < r*expSup && rule.Confidence < r*expConf {
				interesting = false
			}
		}
		replaceOne(rule.Antecedent, tax, res.Table, func(s item.Itemset, ratio float64) {
			check(s, rule.Consequent, ratio, 1)
		})
		replaceOne(rule.Consequent, tax, res.Table, func(s item.Itemset, ratio float64) {
			check(rule.Antecedent, s, ratio, ratio)
		})
		if interesting {
			out = append(out, rule)
		}
	}
	return out, nil
}

// replaceOne yields every variant of s with exactly one member replaced by
// its taxonomy parent (skipping variants whose ratio cannot be computed),
// along with the support ratio sup(item)/sup(parent).
func replaceOne(s item.Itemset, tax *taxonomy.Taxonomy, table *item.SupportTable, fn func(item.Itemset, float64)) {
	for i, x := range s {
		p := tax.Parent(x)
		if p == item.None {
			continue
		}
		supX, okX := table.Support(item.Itemset{x})
		supP, okP := table.Support(item.Itemset{p})
		if !okX || !okP || supP == 0 {
			continue
		}
		variant := s.ReplaceAt(i, p)
		if variant.Len() != s.Len() {
			continue // parent collided with another member
		}
		fn(variant, supX/supP)
	}
}
