package gen

import (
	"fmt"
	"testing"

	"negmine/internal/count"
	"negmine/internal/item"
)

func BenchmarkAlgorithms(b *testing.B) {
	tax, db := randomTaxDB(99, 60, 2500, 8)
	for _, alg := range []Algorithm{Basic, Cumulate, EstMerge} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := Options{MinSupport: 0.03, Algorithm: alg, MaxK: 3, SampleSize: 500}
				if _, err := Mine(db, tax, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCumulateParallelism(b *testing.B) {
	tax, db := randomTaxDB(98, 60, 4000, 8)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := Options{MinSupport: 0.03, Algorithm: Cumulate, MaxK: 3}
				opt.Count = count.Options{Parallelism: workers}
				if _, err := Mine(db, tax, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransforms isolates the per-transaction ancestor-extension cost:
// Basic's parent-chain walk vs Cumulate's cached closure.
func BenchmarkTransforms(b *testing.B) {
	tax, db := randomTaxDB(97, 120, 500, 8)
	txs := db.Transactions()
	basic := basicTransform(tax)
	all := map[item.Item]struct{}{}
	for x := 0; x < tax.Size(); x++ {
		all[item.Item(x)] = struct{}{}
	}
	cum := cumulateTransform(tax, all)
	buf := make([]item.Item, 0, 256)
	b.Run("basic-walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, tx := range txs {
				s := basic(buf[:0], tx.Items)
				buf = s[:0]
			}
		}
	})
	b.Run("cumulate-cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, tx := range txs {
				s := cum(buf[:0], tx.Items)
				buf = s[:0]
			}
		}
	})
}
