package gen

import (
	"math/rand"
	"testing"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/item"
	"negmine/internal/stats"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// grocery builds a small two-level taxonomy:
//
//	drinks(coke pepsi)  snacks(chips salsa)
func grocery(t testing.TB) (*taxonomy.Taxonomy, map[string]item.Item) {
	t.Helper()
	b := taxonomy.NewBuilder()
	for _, e := range [][2]string{
		{"drinks", "coke"}, {"drinks", "pepsi"},
		{"snacks", "chips"}, {"snacks", "salsa"},
	} {
		b.Link(e[0], e[1])
	}
	tax, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]item.Item{}
	for _, n := range []string{"drinks", "coke", "pepsi", "snacks", "chips", "salsa"} {
		ids[n], _ = tax.Dictionary().Lookup(n)
	}
	return tax, ids
}

func groceryDB(ids map[string]item.Item) *txdb.MemDB {
	return txdb.FromItemsets(
		[]item.Item{ids["coke"], ids["chips"]},
		[]item.Item{ids["pepsi"], ids["chips"]},
		[]item.Item{ids["coke"], ids["salsa"]},
		[]item.Item{ids["pepsi"]},
	)
}

func TestCategorySupport(t *testing.T) {
	tax, ids := grocery(t)
	db := groceryDB(ids)
	res, err := Mine(db, tax, Options{MinSupport: 0.5, Algorithm: Cumulate})
	if err != nil {
		t.Fatal(err)
	}
	// drinks appears in all 4 transactions, snacks in 3.
	checks := []struct {
		set  item.Itemset
		want int
	}{
		{item.New(ids["drinks"]), 4},
		{item.New(ids["snacks"]), 3},
		{item.New(ids["coke"]), 2},
		{item.New(ids["pepsi"]), 2},
		{item.New(ids["chips"]), 2},
		{item.New(ids["drinks"], ids["snacks"]), 3},
		{item.New(ids["drinks"], ids["chips"]), 2},
	}
	for _, c := range checks {
		got, ok := res.Table.Count(c.set)
		if !ok || got != c.want {
			t.Errorf("support(%v) = %d (found=%v), want %d", c.set, got, ok, c.want)
		}
	}
	// {coke, drinks} pairs an item with its ancestor: must be pruned.
	if res.Table.Contains(item.New(ids["coke"], ids["drinks"])) {
		t.Error("item+ancestor pair was not pruned")
	}
}

func TestGenLevelAncestorPrune(t *testing.T) {
	tax, ids := grocery(t)
	prev := []item.Itemset{
		item.New(ids["drinks"]), item.New(ids["coke"]), item.New(ids["chips"]),
	}
	// apriori.Gen needs sorted input.
	sortSets(prev)
	cands := genLevel(prev, tax, 2)
	for _, c := range cands {
		if tax.IsAncestor(c[0], c[1]) || tax.IsAncestor(c[1], c[0]) {
			t.Errorf("candidate %v contains an ancestor pair", c)
		}
	}
	if len(cands) != 2 { // {drinks,chips}, {coke,chips}
		t.Errorf("candidates = %v, want 2", cands)
	}
}

func sortSets(sets []item.Itemset) {
	for i := 1; i < len(sets); i++ {
		for j := i; j > 0 && sets[j].Compare(sets[j-1]) < 0; j-- {
			sets[j], sets[j-1] = sets[j-1], sets[j]
		}
	}
}

// randomTaxDB builds a random taxonomy and a leaf-only transaction database.
func randomTaxDB(seed int64, leaves, nTx, maxLen int) (*taxonomy.Taxonomy, *txdb.MemDB) {
	tax, err := taxonomy.Generate(taxonomy.GenSpec{Leaves: leaves, Roots: 3, Fanout: 3}, stats.NewSource(seed))
	if err != nil {
		panic(err)
	}
	r := rand.New(rand.NewSource(seed * 31))
	db := &txdb.MemDB{}
	lv := tax.Leaves()
	for i := 0; i < nTx; i++ {
		n := 1 + r.Intn(maxLen)
		raw := make([]item.Item, n)
		for j := range raw {
			raw[j] = lv[r.Intn(len(lv))]
		}
		db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
	}
	return tax, db
}

// bruteForceGeneralized is the oracle: extend every transaction with its
// ancestors, count all subsets, drop small ones and ancestor-pair sets.
func bruteForceGeneralized(tax *taxonomy.Taxonomy, db *txdb.MemDB, minCount int) map[item.Key]int {
	counts := map[item.Key]int{}
	db.Scan(func(tx txdb.Transaction) error {
		ext := tax.Extend(tx.Items)
		ext.AllSubsets(false, func(s item.Itemset) {
			counts[s.Key()]++
		})
		return nil
	})
	for k, c := range counts {
		if c < minCount {
			delete(counts, k)
			continue
		}
		s := k.Itemset()
		drop := false
		for i := 0; i < s.Len() && !drop; i++ {
			for j := 0; j < s.Len() && !drop; j++ {
				if i != j && tax.IsAncestor(s[i], s[j]) {
					drop = true
				}
			}
		}
		if drop {
			delete(counts, k)
		}
	}
	return counts
}

func resultMap(res *apriori.Result) map[item.Key]int {
	out := map[item.Key]int{}
	for _, cs := range res.Large() {
		out[cs.Set.Key()] = cs.Count
	}
	return out
}

func TestAlgorithmsAgreeWithBruteForce(t *testing.T) {
	for _, alg := range []Algorithm{Basic, Cumulate, EstMerge} {
		t.Run(alg.String(), func(t *testing.T) {
			for trial := int64(1); trial <= 4; trial++ {
				tax, db := randomTaxDB(trial, 20, 120, 4)
				opt := Options{
					MinSupport: 0.08,
					Algorithm:  alg,
					SampleSize: 40, // deliberately small: exercises repair passes
					SampleSeed: trial,
				}
				res, err := Mine(db, tax, opt)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteForceGeneralized(tax, db, res.MinCount)
				got := resultMap(res)
				if len(got) != len(want) {
					t.Fatalf("trial %d: mined %d itemsets, want %d", trial, len(got), len(want))
				}
				for k, c := range want {
					if got[k] != c {
						t.Fatalf("trial %d: %v = %d, want %d", trial, k.Itemset(), got[k], c)
					}
				}
			}
		})
	}
}

func TestAlgorithmsIdenticalResults(t *testing.T) {
	tax, db := randomTaxDB(9, 30, 300, 5)
	var results []*apriori.Result
	for _, alg := range []Algorithm{Basic, Cumulate, EstMerge} {
		res, err := Mine(db, tax, Options{MinSupport: 0.05, Algorithm: alg, SampleSize: 64, SampleSeed: 5})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		results = append(results, res)
	}
	base := resultMap(results[0])
	for i, res := range results[1:] {
		m := resultMap(res)
		if len(m) != len(base) {
			t.Fatalf("algorithm %d: %d itemsets vs %d", i+1, len(m), len(base))
		}
		for k, c := range base {
			if m[k] != c {
				t.Fatalf("algorithm %d: %v = %d, want %d", i+1, k.Itemset(), m[k], c)
			}
		}
	}
}

// TestBackendsIdenticalResults pins counting-backend equivalence at stage 1:
// every algorithm must produce identical large itemsets and counts under the
// hash-tree and vertical-bitmap engines, sequentially and in parallel.
func TestBackendsIdenticalResults(t *testing.T) {
	tax, db := randomTaxDB(21, 30, 300, 5)
	for _, alg := range []Algorithm{Basic, Cumulate, EstMerge} {
		t.Run(alg.String(), func(t *testing.T) {
			var base map[item.Key]int
			for _, backend := range []count.Backend{count.BackendHashTree, count.BackendBitmap} {
				for _, parallel := range []int{1, 3} {
					opt := Options{MinSupport: 0.05, Algorithm: alg, SampleSize: 64, SampleSeed: 5}
					opt.Count.Backend = backend
					opt.Count.Parallelism = parallel
					res, err := Mine(db, tax, opt)
					if err != nil {
						t.Fatalf("%v parallel=%d: %v", backend, parallel, err)
					}
					m := resultMap(res)
					if base == nil {
						base = m
						continue
					}
					if len(m) != len(base) {
						t.Fatalf("%v parallel=%d: %d itemsets, want %d", backend, parallel, len(m), len(base))
					}
					for k, c := range base {
						if m[k] != c {
							t.Fatalf("%v parallel=%d: %v = %d, want %d", backend, parallel, k.Itemset(), m[k], c)
						}
					}
				}
			}
		})
	}
}

func TestEstMergePassSchedule(t *testing.T) {
	// EstMerge with a perfect (full-size) sample must not use more full
	// passes than Cumulate; with a tiny sample it may repair but stays exact.
	tax, db := randomTaxDB(11, 25, 200, 5)
	ins := txdb.Instrument(db)
	_, err := Mine(ins, tax, Options{MinSupport: 0.05, Algorithm: Cumulate})
	if err != nil {
		t.Fatal(err)
	}
	cumulatePasses := ins.Passes()

	ins.Reset()
	_, err = Mine(ins, tax, Options{MinSupport: 0.05, Algorithm: EstMerge, SampleSize: 200, SampleSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Subtract the sampling scan itself (the sample is drawn from the
	// instrumented db with one pass).
	estPasses := ins.Passes() - 1
	if estPasses > cumulatePasses+1 {
		t.Errorf("EstMerge used %d passes vs Cumulate's %d", estPasses, cumulatePasses)
	}
}

func TestMaxK(t *testing.T) {
	tax, db := randomTaxDB(13, 20, 150, 5)
	res, err := Mine(db, tax, Options{MinSupport: 0.05, MaxK: 2, Algorithm: Cumulate})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) > 2 {
		t.Errorf("MaxK=2 produced %d levels", len(res.Levels))
	}
	// EstMerge with MaxK must resolve deferred candidates of the last level.
	resE, err := Mine(db, tax, Options{MinSupport: 0.05, MaxK: 2, Algorithm: EstMerge, SampleSize: 30, SampleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := resultMap(res), resultMap(resE)
	if len(a) != len(b) {
		t.Fatalf("MaxK results differ in size: %d vs %d", len(a), len(b))
	}
	for k, c := range a {
		if b[k] != c {
			t.Fatalf("MaxK mismatch on %v: %d vs %d", k.Itemset(), b[k], c)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	tax, _ := grocery(t)
	db := txdb.FromItemsets([]item.Item{0})
	bad := []Options{
		{MinSupport: 0},
		{MinSupport: 2},
		{MinSupport: 0.5, MaxK: -1},
		{MinSupport: 0.5, Margin: -0.1},
		{MinSupport: 0.5, Margin: 1},
		{MinSupport: 0.5, SampleSize: -5},
		{MinSupport: 0.5, Count: count.Options{Transform: func(s item.Itemset) item.Itemset { return s }}},
	}
	for i, opt := range bad {
		if _, err := Mine(db, tax, opt); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	if _, err := Mine(db, nil, Options{MinSupport: 0.5}); err == nil {
		t.Error("nil taxonomy accepted")
	}
	if _, err := Mine(db, tax, Options{MinSupport: 0.5, Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Basic.String() != "Basic" || Cumulate.String() != "Cumulate" || EstMerge.String() != "EstMerge" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Errorf("unknown algorithm name: %s", Algorithm(42))
	}
}

func TestEmptyDB(t *testing.T) {
	tax, _ := grocery(t)
	for _, alg := range []Algorithm{Basic, Cumulate, EstMerge} {
		res, err := Mine(txdb.FromItemsets(), tax, Options{MinSupport: 0.5, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Levels) != 0 {
			t.Errorf("%v: empty db mined %d levels", alg, len(res.Levels))
		}
	}
}

func TestGeneralizedRules(t *testing.T) {
	// End to end: generalized itemsets feed the standard rule generator,
	// producing rules that mix taxonomy levels.
	tax, ids := grocery(t)
	db := groceryDB(ids)
	res, err := Mine(db, tax, Options{MinSupport: 0.5, Algorithm: Cumulate})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := apriori.GenRules(res, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if r.Antecedent.Equal(item.New(ids["snacks"])) && r.Consequent.Equal(item.New(ids["drinks"])) {
			found = true
			if r.Confidence != 1.0 {
				t.Errorf("snacks=>drinks confidence %v", r.Confidence)
			}
		}
	}
	if !found {
		t.Errorf("missing generalized rule snacks=>drinks; got %v", rules)
	}
}

func TestParallelGeneralized(t *testing.T) {
	tax, db := randomTaxDB(17, 30, 400, 6)
	seq, err := Mine(db, tax, Options{MinSupport: 0.04, Algorithm: Cumulate})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(db, tax, Options{MinSupport: 0.04, Algorithm: Cumulate, Count: count.Options{Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := resultMap(seq), resultMap(par)
	if len(a) != len(b) {
		t.Fatalf("parallel size %d vs %d", len(b), len(a))
	}
	for k, c := range a {
		if b[k] != c {
			t.Fatalf("parallel mismatch on %v", k.Itemset())
		}
	}
}
