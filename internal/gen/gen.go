// Package gen implements generalized (taxonomy-aware) frequent-itemset
// mining after Srikant & Agrawal, "Mining Generalized Association Rules"
// (VLDB 1995): a transaction supports a category when it contains any of the
// category's descendant leaves, so large itemsets may mix leaves and
// categories from any level of the taxonomy.
//
// Three algorithms are provided, matching the paper the library reproduces
// (its step 1, "find all generalized large itemsets", names exactly these):
//
//   - Basic: every pass extends each transaction with all its ancestors,
//     recomputed by parent-chain walks, and counts candidates against the
//     extended transaction.
//   - Cumulate: adds the published optimizations — a precomputed ancestor
//     closure filtered to items that can actually affect the current
//     candidates, pruning of itemsets containing both an item and its
//     ancestor, and dropping of transaction items that occur in no
//     candidate.
//   - EstMerge: estimates candidate supports on a random sample, counts
//     only the candidates expected (close to) large in the current pass,
//     and defers the rest into the next pass ("merging" two candidate sizes
//     into one scan). Estimation mistakes are healed by exact repair
//     passes, so the result is always exact — identical to Basic/Cumulate.
package gen

import (
	"fmt"
	"sort"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// Algorithm selects the generalized mining strategy.
type Algorithm int

const (
	// Basic is the unoptimized algorithm.
	Basic Algorithm = iota
	// Cumulate adds ancestor-closure precomputation and filtering.
	Cumulate
	// EstMerge adds sample-based candidate scheduling.
	EstMerge
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Basic:
		return "Basic"
	case Cumulate:
		return "Cumulate"
	case EstMerge:
		return "EstMerge"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a generalized mining run.
type Options struct {
	// MinSupport is the relative minimum support in (0, 1].
	MinSupport float64
	// Algorithm selects Basic, Cumulate or EstMerge (default Basic).
	Algorithm Algorithm
	// MaxK caps the itemset size (0 = unlimited).
	MaxK int
	// SampleSize is the EstMerge sample size (default 1000).
	SampleSize int
	// SampleSeed seeds EstMerge's reservoir sample.
	SampleSeed int64
	// Margin widens EstMerge's "expected large" band: candidates whose
	// estimated support is at least MinSupport·(1−Margin) are counted in
	// the current pass. Default 0.25.
	Margin float64
	// Count holds pass-level options. Count.Transform must be nil — the
	// algorithms install their own taxonomy transforms.
	Count count.Options
}

func (o Options) validate() error {
	if o.MinSupport <= 0 || o.MinSupport > 1 {
		return fmt.Errorf("gen: MinSupport = %v, want (0, 1]", o.MinSupport)
	}
	if o.MaxK < 0 {
		return fmt.Errorf("gen: MaxK = %d, want ≥ 0", o.MaxK)
	}
	if o.Count.Transform != nil || o.Count.TransformInto != nil {
		return fmt.Errorf("gen: Count.Transform must be nil (set by the algorithm)")
	}
	if o.Margin < 0 || o.Margin >= 1 {
		return fmt.Errorf("gen: Margin = %v, want [0, 1)", o.Margin)
	}
	if o.SampleSize < 0 {
		return fmt.Errorf("gen: SampleSize = %d, want ≥ 0", o.SampleSize)
	}
	return nil
}

// Mine finds all generalized large itemsets of db under tax. The result's
// Table and Levels include categories as well as leaf items.
func Mine(db txdb.DB, tax *taxonomy.Taxonomy, opt Options) (*apriori.Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if tax == nil {
		return nil, fmt.Errorf("gen: nil taxonomy")
	}
	switch opt.Algorithm {
	case Basic, Cumulate:
		return mineLevelwise(db, tax, opt)
	case EstMerge:
		return mineEstMerge(db, tax, opt)
	default:
		return nil, fmt.Errorf("gen: unknown algorithm %d", int(opt.Algorithm))
	}
}

// basicTransform extends a transaction with all ancestors of its items,
// recomputing the closure by parent-chain walks (no precomputation — the
// Basic algorithm's behaviour).
func basicTransform(tax *taxonomy.Taxonomy) count.TransformInto {
	return func(dst []item.Item, s item.Itemset) item.Itemset {
		for _, x := range s {
			dst = append(dst, x)
			for p := tax.Parent(x); p != item.None; p = tax.Parent(p) {
				dst = append(dst, p)
			}
		}
		return item.SortDedup(dst)
	}
}

// cumulateTransform extends a transaction using the precomputed ancestor
// closure, keeping only items that occur in some current candidate.
func cumulateTransform(tax *taxonomy.Taxonomy, used map[item.Item]struct{}) count.TransformInto {
	return func(dst []item.Item, s item.Itemset) item.Itemset {
		for _, x := range s {
			if _, ok := used[x]; ok {
				dst = append(dst, x)
			}
			for _, a := range tax.AncestorsOf(x) {
				if _, ok := used[a]; ok {
					dst = append(dst, a)
				}
			}
		}
		return item.SortDedup(dst)
	}
}

// usedItems collects the distinct items over candidate groups.
func usedItems(groups ...[]item.Itemset) map[item.Item]struct{} {
	used := make(map[item.Item]struct{})
	for _, g := range groups {
		for _, c := range g {
			for _, x := range c {
				used[x] = struct{}{}
			}
		}
	}
	return used
}

// transformFor returns the per-pass transaction transform for alg given the
// candidate groups about to be counted.
func transformFor(alg Algorithm, tax *taxonomy.Taxonomy, groups ...[]item.Itemset) count.TransformInto {
	if alg == Basic {
		return basicTransform(tax)
	}
	return cumulateTransform(tax, usedItems(groups...))
}

// installTransform configures cnt for a pass over the given candidate
// groups: the algorithm's ancestor extension as the shared transform, plus
// the taxonomy declaration that lets the bitmap backend build its
// ancestor-closure rows directly instead of applying the transform.
func installTransform(cnt *count.Options, alg Algorithm, tax *taxonomy.Taxonomy, groups ...[]item.Itemset) {
	cnt.TransformInto = transformFor(alg, tax, groups...)
	cnt.Tax = tax
}

// ExtendTransform returns the counting transform that extends each
// transaction with its taxonomy ancestors, filtered down to the items that
// occur in the given candidate groups (Cumulate's optimization). Other
// packages use it to count taxonomy-aware candidates of their own — the
// negative miner counts its candidate negative itemsets with it. Callers
// should also set count.Options.Tax so the bitmap backend can honor the
// transform (it is an ancestor extension by construction).
func ExtendTransform(tax *taxonomy.Taxonomy, groups ...[]item.Itemset) count.TransformInto {
	return cumulateTransform(tax, usedItems(groups...))
}

// genLevel produces the generalized candidate k-itemsets from the sorted
// large (k-1)-itemsets: apriori-gen plus, at k = 2, removal of candidates
// pairing an item with its own ancestor (their support equals the item's
// support, so they are uninformative; pruning them here excludes all their
// supersets in later levels through the apriori prune step).
func genLevel(prev []item.Itemset, tax *taxonomy.Taxonomy, k int) []item.Itemset {
	cands := apriori.Gen(prev)
	if k != 2 {
		return cands
	}
	out := cands[:0]
	for _, c := range cands {
		if tax.IsAncestor(c[0], c[1]) || tax.IsAncestor(c[1], c[0]) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// mineL1 runs the first pass: exact counts of every item and category.
func mineL1(db txdb.DB, tax *taxonomy.Taxonomy, opt Options, res *apriori.Result) ([]item.Itemset, error) {
	cnt := opt.Count
	cnt.TransformInto = basicTransform(tax)
	singles, err := count.Singletons(db, cnt)
	if err != nil {
		return nil, err
	}
	var l1 []item.CountedSet
	singles.Each(func(s item.Itemset, c int) {
		if c >= res.MinCount {
			l1 = append(l1, item.CountedSet{Set: s, Count: c})
		}
	})
	if len(l1) == 0 {
		return nil, nil
	}
	sort.Slice(l1, func(i, j int) bool { return l1[i].Set.Compare(l1[j].Set) < 0 })
	res.Levels = append(res.Levels, l1)
	sets := make([]item.Itemset, len(l1))
	for i, cs := range l1 {
		res.Table.Put(cs.Set, cs.Count)
		sets[i] = cs.Set
	}
	return sets, nil
}

func mineLevelwise(db txdb.DB, tax *taxonomy.Taxonomy, opt Options) (*apriori.Result, error) {
	s, err := NewStepper(db, tax, opt)
	if err != nil {
		return nil, err
	}
	for {
		lvl, err := s.Next()
		if err != nil {
			return nil, err
		}
		if lvl == nil {
			return s.Result(), nil
		}
	}
}
