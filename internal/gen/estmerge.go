package gen

import (
	"sort"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// defaultSampleSize is EstMerge's sample size when Options.SampleSize is 0.
const defaultSampleSize = 1000

// defaultMargin is EstMerge's estimation slack when Options.Margin is 0.
const defaultMargin = 0.25

// mineEstMerge implements the EstMerge strategy. Candidate supports are
// first estimated on a reservoir sample; candidates expected (close to)
// large are counted exactly in the current pass, the rest are deferred and
// counted together with the next level's pass. Because estimates can be
// wrong in either direction, deferred candidates that turn out large
// trigger an exact "repair" pass for the extensions they should have
// spawned — so the mined result is always exactly the Basic/Cumulate
// result; only the pass schedule differs.
func mineEstMerge(db txdb.DB, tax *taxonomy.Taxonomy, opt Options) (*apriori.Result, error) {
	n := db.Count()
	res := &apriori.Result{
		Table:    item.NewSupportTable(n),
		N:        n,
		MinCount: apriori.MinCount(opt.MinSupport, n),
	}
	prev, err := mineL1(db, tax, opt, res)
	if err != nil || prev == nil {
		return res, err
	}

	sampleSize := opt.SampleSize
	if sampleSize == 0 {
		sampleSize = defaultSampleSize
	}
	margin := opt.Margin
	if margin == 0 {
		margin = defaultMargin
	}
	sample, err := count.Sample(db, sampleSize, opt.SampleSeed)
	if err != nil {
		return nil, err
	}
	m := sample.Count()
	// A sample count at or above this is "expected large".
	estThreshold := int(opt.MinSupport * (1 - margin) * float64(m))

	// levels[k] accumulates L_k (1-based); late arrivals from deferred
	// resolution are merged in after the fact.
	levels := map[int][]item.CountedSet{1: res.Levels[0]}
	maxLevel := 1
	addLarge := func(k int, cs item.CountedSet) {
		levels[k] = append(levels[k], cs)
		res.Table.Put(cs.Set, cs.Count)
		if k > maxLevel {
			maxLevel = k
		}
	}
	sortedSets := func(k int) []item.Itemset {
		lvl := levels[k]
		sort.Slice(lvl, func(i, j int) bool { return lvl[i].Set.Compare(lvl[j].Set) < 0 })
		levels[k] = lvl
		sets := make([]item.Itemset, len(lvl))
		for i, cs := range lvl {
			sets[i] = cs.Set
		}
		return sets
	}

	var deferred []item.Itemset // size k-1, generated but not yet exactly counted
	for k := 2; opt.MaxK == 0 || k <= opt.MaxK; k++ {
		cands := genLevel(prev, tax, k)
		if len(cands) == 0 && len(deferred) == 0 {
			break
		}

		// Estimate this level's candidates on the sample.
		var expLarge, expSmall []item.Itemset
		if len(cands) > 0 {
			cnt := opt.Count
			installTransform(&cnt, Cumulate, tax, cands)
			est, err := count.Candidates(sample, cands, cnt)
			if err != nil {
				return nil, err
			}
			for i, c := range cands {
				if est[i] >= estThreshold {
					expLarge = append(expLarge, c)
				} else {
					expSmall = append(expSmall, c)
				}
			}
		}

		// One exact pass: expected-large k-candidates merged with the
		// deferred (k-1)-candidates from the previous level.
		var expCounts, defCounts []int
		if len(expLarge)+len(deferred) > 0 {
			cnt := opt.Count
			installTransform(&cnt, opt.Algorithm, tax, expLarge, deferred)
			counts, err := count.Multi(db, [][]item.Itemset{expLarge, deferred}, cnt)
			if err != nil {
				return nil, err
			}
			expCounts, defCounts = counts[0], counts[1]
		}

		// Resolve deferred candidates: estimation false-negatives are
		// late-arriving large (k-1)-itemsets.
		late := false
		for i, d := range deferred {
			if defCounts[i] >= res.MinCount {
				addLarge(k-1, item.CountedSet{Set: d, Count: defCounts[i]})
				late = true
			}
		}

		for i, c := range expLarge {
			if expCounts[i] >= res.MinCount {
				addLarge(k, item.CountedSet{Set: c, Count: expCounts[i]})
			}
		}

		// Repair: with the complete L_{k-1} now known, regenerate C_k and
		// exactly count any candidate we never saw (extensions of the late
		// itemsets). This is the price of a bad estimate; with a sound
		// sample it is rare.
		if late {
			known := make(map[item.Key]struct{}, len(cands))
			for _, c := range cands {
				known[c.Key()] = struct{}{}
			}
			var missing []item.Itemset
			for _, c := range genLevel(sortedSets(k-1), tax, k) {
				if _, ok := known[c.Key()]; !ok {
					missing = append(missing, c)
				}
			}
			if len(missing) > 0 {
				cnt := opt.Count
				installTransform(&cnt, opt.Algorithm, tax, missing)
				counts, err := count.Candidates(db, missing, cnt)
				if err != nil {
					return nil, err
				}
				for i, c := range missing {
					if counts[i] >= res.MinCount {
						addLarge(k, item.CountedSet{Set: c, Count: counts[i]})
					}
				}
			}
		}

		prev = sortedSets(k)
		deferred = expSmall
		if len(prev) == 0 && len(deferred) == 0 {
			break
		}
	}

	// MaxK can leave deferred candidates unresolved; count them so the
	// result is exact up to MaxK.
	if len(deferred) > 0 && opt.MaxK != 0 {
		k := deferred[0].Len()
		if k <= opt.MaxK {
			cnt := opt.Count
			installTransform(&cnt, opt.Algorithm, tax, deferred)
			counts, err := count.Candidates(db, deferred, cnt)
			if err != nil {
				return nil, err
			}
			for i, d := range deferred {
				if counts[i] >= res.MinCount {
					addLarge(k, item.CountedSet{Set: d, Count: counts[i]})
				}
			}
		}
	}

	// Materialize contiguous levels (L1 is already in res.Levels[0]).
	res.Levels = res.Levels[:0]
	for k := 1; k <= maxLevel; k++ {
		lvl := levels[k]
		if len(lvl) == 0 {
			break
		}
		sort.Slice(lvl, func(i, j int) bool { return lvl[i].Set.Compare(lvl[j].Set) < 0 })
		res.Levels = append(res.Levels, lvl)
	}
	return res, nil
}
