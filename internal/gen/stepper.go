package gen

import (
	"fmt"
	"sort"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// Stepper runs generalized level-wise mining one level at a time: each Next
// call performs exactly one pass over the database and returns L_k. The
// paper's Naive negative algorithm interleaves a negative-candidate pass
// after each large-itemset pass, which requires this per-level control.
//
// Only Basic and Cumulate support stepping (EstMerge's merged pass schedule
// spans levels by design).
type Stepper struct {
	db   txdb.DB
	tax  *taxonomy.Taxonomy
	opt  Options
	res  *apriori.Result
	prev []item.Itemset // sorted sets of the last mined level
	k    int            // next level to mine
	done bool
}

// NewStepper validates options and prepares a stepper. No database pass
// happens until the first Next call.
func NewStepper(db txdb.DB, tax *taxonomy.Taxonomy, opt Options) (*Stepper, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if tax == nil {
		return nil, fmt.Errorf("gen: nil taxonomy")
	}
	if opt.Algorithm == EstMerge {
		return nil, fmt.Errorf("gen: EstMerge cannot run level-by-level; use Basic or Cumulate")
	}
	n := db.Count()
	return &Stepper{
		db:  db,
		tax: tax,
		opt: opt,
		res: &apriori.Result{
			Table:    item.NewSupportTable(n),
			N:        n,
			MinCount: apriori.MinCount(opt.MinSupport, n),
		},
		k: 1,
	}, nil
}

// Next mines the next level with one database pass and returns it. It
// returns (nil, nil) once no further level exists (or MaxK is reached).
func (s *Stepper) Next() ([]item.CountedSet, error) {
	if s.done {
		return nil, nil
	}
	if s.k == 1 {
		prev, err := mineL1(s.db, s.tax, s.opt, s.res)
		if err != nil {
			return nil, err
		}
		s.prev = prev
		s.k = 2
		if prev == nil {
			s.done = true
			return nil, nil
		}
		return s.res.Levels[0], nil
	}
	if s.opt.MaxK != 0 && s.k > s.opt.MaxK {
		s.done = true
		return nil, nil
	}
	cands := genLevel(s.prev, s.tax, s.k)
	if len(cands) == 0 {
		s.done = true
		return nil, nil
	}
	cnt := s.opt.Count
	installTransform(&cnt, s.opt.Algorithm, s.tax, cands)
	counts, err := count.Candidates(s.db, cands, cnt)
	if err != nil {
		return nil, err
	}
	var level []item.CountedSet
	for i, c := range cands {
		if counts[i] >= s.res.MinCount {
			level = append(level, item.CountedSet{Set: c, Count: counts[i]})
		}
	}
	if len(level) == 0 {
		s.done = true
		return nil, nil
	}
	sort.Slice(level, func(i, j int) bool { return level[i].Set.Compare(level[j].Set) < 0 })
	s.res.Levels = append(s.res.Levels, level)
	s.prev = s.prev[:0]
	for _, cs := range level {
		s.res.Table.Put(cs.Set, cs.Count)
		s.prev = append(s.prev, cs.Set)
	}
	s.k++
	return level, nil
}

// Result returns the accumulated mining result (valid at any point; grows
// with each Next).
func (s *Stepper) Result() *apriori.Result { return s.res }
