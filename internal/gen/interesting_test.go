package gen

import (
	"testing"

	"negmine/internal/apriori"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
)

// interestingFixture: clothes(jackets, shirts); shoes standalone.
// The ancestor rule {clothes} ⇒ {shoes} is mined; the specializations
// {jackets} ⇒ {shoes} and {shirts} ⇒ {shoes} may or may not add
// information beyond it.
func interestingFixture(t *testing.T) (*taxonomy.Taxonomy, map[string]item.Item, *apriori.Result) {
	t.Helper()
	b := taxonomy.NewBuilder()
	b.Link("clothes", "jackets")
	b.Link("clothes", "shirts")
	b.Node("shoes")
	tax, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]item.Item{}
	for _, n := range []string{"clothes", "jackets", "shirts", "shoes"} {
		ids[n], _ = tax.Dictionary().Lookup(n)
	}
	res := &apriori.Result{Table: item.NewSupportTable(1000), N: 1000}
	res.Table.Put(item.New(ids["clothes"]), 500)
	res.Table.Put(item.New(ids["jackets"]), 250) // half of clothes
	res.Table.Put(item.New(ids["shirts"]), 250)
	res.Table.Put(item.New(ids["shoes"]), 400)
	return tax, ids, res
}

func TestPruneInterestingDropsPredicted(t *testing.T) {
	tax, ids, res := interestingFixture(t)
	ancestor := apriori.Rule{
		Antecedent: item.New(ids["clothes"]),
		Consequent: item.New(ids["shoes"]),
		Support:    0.10, // sup{clothes,shoes} = 100
		Confidence: 0.20, // 100/500
	}
	// Jackets behave exactly as the ancestor predicts: expected support =
	// 0.10·(250/500) = 0.05, expected confidence 0.20. Uninteresting.
	predicted := apriori.Rule{
		Antecedent: item.New(ids["jackets"]),
		Consequent: item.New(ids["shoes"]),
		Support:    0.05,
		Confidence: 0.20,
	}
	// Shirts wildly over-perform: interesting.
	surprising := apriori.Rule{
		Antecedent: item.New(ids["shirts"]),
		Consequent: item.New(ids["shoes"]),
		Support:    0.09, // vs expected 0.05 → 1.8×
		Confidence: 0.36,
	}
	got, err := PruneInteresting([]apriori.Rule{ancestor, predicted, surprising}, res, tax, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range got {
		names[r.Antecedent.String()] = true
	}
	if !names[item.New(ids["clothes"]).String()] {
		t.Error("root-level rule pruned (it has no ancestors)")
	}
	if names[item.New(ids["jackets"]).String()] {
		t.Error("predicted specialization survived")
	}
	if !names[item.New(ids["shirts"]).String()] {
		t.Error("surprising specialization pruned")
	}
}

func TestPruneInterestingSupportOrConfidence(t *testing.T) {
	// Surviving needs only ONE of the two criteria: a rule with expected
	// support but much higher confidence stays.
	tax, ids, res := interestingFixture(t)
	ancestor := apriori.Rule{
		Antecedent: item.New(ids["clothes"]),
		Consequent: item.New(ids["shoes"]),
		Support:    0.10,
		Confidence: 0.20,
	}
	confOnly := apriori.Rule{
		Antecedent: item.New(ids["jackets"]),
		Consequent: item.New(ids["shoes"]),
		Support:    0.05, // exactly expected
		Confidence: 0.40, // 2× expected
	}
	got, err := PruneInteresting([]apriori.Rule{ancestor, confOnly}, res, tax, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("confidence-interesting rule pruned: %v", got)
	}
}

func TestPruneInterestingNoAncestorRule(t *testing.T) {
	// Without the ancestor rule in the mined set, specializations cannot
	// be judged and are kept.
	tax, ids, res := interestingFixture(t)
	lone := apriori.Rule{
		Antecedent: item.New(ids["jackets"]),
		Consequent: item.New(ids["shoes"]),
		Support:    0.05,
		Confidence: 0.20,
	}
	got, err := PruneInteresting([]apriori.Rule{lone}, res, tax, 1.1)
	if err != nil || len(got) != 1 {
		t.Errorf("lone rule pruned: %v, %v", got, err)
	}
}

func TestPruneInterestingValidation(t *testing.T) {
	tax, _, res := interestingFixture(t)
	if _, err := PruneInteresting(nil, res, tax, 0.5); err == nil {
		t.Error("R < 1 accepted")
	}
	if _, err := PruneInteresting(nil, res, nil, 1.1); err == nil {
		t.Error("nil taxonomy accepted")
	}
}

func TestPruneInterestingEndToEnd(t *testing.T) {
	// On real mined data: pruning must keep a subset and every kept rule
	// must clear the criterion against its mined close-ancestor rules.
	tax, ids := grocery(t)
	db := groceryDB(ids)
	res, err := Mine(db, tax, Options{MinSupport: 0.25, Algorithm: Cumulate})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := apriori.GenRules(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := PruneInteresting(rules, res, tax, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) > len(rules) {
		t.Fatalf("pruning grew the rule set: %d > %d", len(kept), len(rules))
	}
	if len(rules) > 0 && len(kept) == 0 {
		t.Error("pruning removed every rule (R too aggressive for test data?)")
	}
}
