package item

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedupes(t *testing.T) {
	cases := []struct {
		in   []Item
		want Itemset
	}{
		{nil, nil},
		{[]Item{}, nil},
		{[]Item{3}, Itemset{3}},
		{[]Item{3, 1, 2}, Itemset{1, 2, 3}},
		{[]Item{5, 5, 5}, Itemset{5}},
		{[]Item{9, 1, 9, 1, 4}, Itemset{1, 4, 9}},
	}
	for _, c := range cases {
		got := New(c.in...)
		if !got.Equal(c.want) {
			t.Errorf("New(%v) = %v, want %v", c.in, got, c.want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("New(%v) invalid: %v", c.in, err)
		}
	}
}

func TestNewDoesNotAliasInput(t *testing.T) {
	in := []Item{3, 1, 2}
	s := New(in...)
	in[0] = 99
	if !s.Equal(Itemset{1, 2, 3}) {
		t.Errorf("New aliased its input: %v", s)
	}
}

func TestContainsAndIndexOf(t *testing.T) {
	s := New(2, 4, 6, 8)
	for _, x := range []Item{2, 4, 6, 8} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	for _, x := range []Item{1, 3, 5, 7, 9, -1} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true, want false", x)
		}
	}
	if i := s.IndexOf(6); i != 2 {
		t.Errorf("IndexOf(6) = %d, want 2", i)
	}
	if i := s.IndexOf(7); i != -1 {
		t.Errorf("IndexOf(7) = %d, want -1", i)
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		s, t Itemset
		want bool
	}{
		{nil, nil, true},
		{nil, New(1, 2), true},
		{New(1), New(1, 2), true},
		{New(2), New(1, 2), true},
		{New(1, 2), New(1, 2), true},
		{New(1, 3), New(1, 2), false},
		{New(1, 2, 3), New(1, 2), false},
		{New(0), New(1, 2), false},
	}
	for _, c := range cases {
		if got := c.s.SubsetOf(c.t); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(1, 3, 5, 7)
	b := New(3, 4, 5, 6)
	if got := a.Union(b); !got.Equal(New(1, 3, 4, 5, 6, 7)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(3, 5)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(New(1, 7)) {
		t.Errorf("Minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(New(4, 6)) {
		t.Errorf("Minus = %v", got)
	}
	if a.Disjoint(b) {
		t.Error("Disjoint = true for overlapping sets")
	}
	if !New(1, 2).Disjoint(New(3, 4)) {
		t.Error("Disjoint = false for disjoint sets")
	}
}

func TestWithWithout(t *testing.T) {
	s := New(2, 4)
	if got := s.With(3); !got.Equal(New(2, 3, 4)) {
		t.Errorf("With(3) = %v", got)
	}
	if got := s.With(2); !got.Equal(s) {
		t.Errorf("With(existing) = %v", got)
	}
	if got := s.Without(2); !got.Equal(New(4)) {
		t.Errorf("Without(2) = %v", got)
	}
	if got := s.Without(9); !got.Equal(s) {
		t.Errorf("Without(absent) = %v", got)
	}
	// Original must be untouched.
	if !s.Equal(New(2, 4)) {
		t.Errorf("receiver mutated: %v", s)
	}
}

func TestReplaceAt(t *testing.T) {
	s := New(10, 20, 30)
	if got := s.ReplaceAt(1, 5); !got.Equal(New(5, 10, 30)) {
		t.Errorf("ReplaceAt = %v", got)
	}
	if got := s.ReplaceAt(0, 30); !got.Equal(New(20, 30)) {
		t.Errorf("ReplaceAt collision = %v, want dedup", got)
	}
	if !s.Equal(New(10, 20, 30)) {
		t.Errorf("receiver mutated: %v", s)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	sets := []Itemset{nil, New(0), New(1, 2, 3), New(1 << 20), New(0x7fffffff)}
	for _, s := range sets {
		got := s.Key().Itemset()
		if !got.Equal(s) {
			t.Errorf("Key round trip: %v -> %v", s, got)
		}
		if s.Key().Len() != s.Len() {
			t.Errorf("Key.Len mismatch for %v", s)
		}
	}
	if New(1, 2).Key() == New(1, 3).Key() {
		t.Error("distinct sets share a key")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want int
	}{
		{nil, nil, 0},
		{nil, New(1), -1},
		{New(1), nil, 1},
		{New(1, 2), New(1, 2), 0},
		{New(1, 2), New(1, 3), -1},
		{New(1, 3), New(1, 2), 1},
		{New(1), New(1, 2), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSubsets(t *testing.T) {
	s := New(1, 2, 3, 4)
	var got []Itemset
	s.Subsets(2, func(sub Itemset) { got = append(got, sub.Clone()) })
	want := []Itemset{
		New(1, 2), New(1, 3), New(1, 4), New(2, 3), New(2, 4), New(3, 4),
	}
	if len(got) != len(want) {
		t.Fatalf("Subsets(2) produced %d sets, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("Subsets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Degenerate sizes.
	count := 0
	s.Subsets(0, func(Itemset) { count++ })
	s.Subsets(5, func(Itemset) { count++ })
	if count != 0 {
		t.Errorf("degenerate Subsets called fn %d times", count)
	}
}

func TestAllSubsets(t *testing.T) {
	s := New(1, 2, 3)
	count := 0
	s.AllSubsets(true, func(Itemset) { count++ })
	if count != 6 { // 3 singletons + 3 pairs
		t.Errorf("proper AllSubsets = %d, want 6", count)
	}
	count = 0
	s.AllSubsets(false, func(Itemset) { count++ })
	if count != 7 {
		t.Errorf("AllSubsets = %d, want 7", count)
	}
}

func TestValidate(t *testing.T) {
	if err := New(1, 2, 3).Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	bad := []Itemset{
		{2, 1},
		{1, 1},
		{-2},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted invalid set", s)
		}
	}
}

func TestString(t *testing.T) {
	if got := New(3, 1).String(); got != "{1 3}" {
		t.Errorf("String = %q", got)
	}
	if got := (Itemset)(nil).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	names := map[Item]string{1: "bread", 3: "milk"}
	got := New(3, 1).Format(func(i Item) string { return names[i] })
	if got != "{bread milk}" {
		t.Errorf("Format = %q", got)
	}
}

// genSet produces a random valid itemset for property tests.
func genSet(r *rand.Rand, maxLen, maxItem int) Itemset {
	n := r.Intn(maxLen + 1)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(r.Intn(maxItem))
	}
	return New(items...)
}

func TestQuickUnionProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := genSet(r, 12, 40), genSet(r, 12, 40)
		u := a.Union(b)
		if err := u.Validate(); err != nil {
			return false
		}
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if !u.Equal(b.Union(a)) { // commutative
			return false
		}
		for _, x := range u {
			if !a.Contains(x) && !b.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinusIntersectPartition(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := genSet(r, 12, 40), genSet(r, 12, 40)
		// a = (a minus b) ∪ (a ∩ b), and the two parts are disjoint.
		diff, inter := a.Minus(b), a.Intersect(b)
		if !diff.Disjoint(inter) {
			return false
		}
		return diff.Union(inter).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyBijective(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := genSet(r, 10, 1<<30), genSet(r, 10, 1<<30)
		if a.Equal(b) != (a.Key() == b.Key()) {
			return false
		}
		return a.Key().Itemset().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetsCount(t *testing.T) {
	// Subsets(k) must produce C(n, k) distinct sorted subsets.
	r := rand.New(rand.NewSource(4))
	binom := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		c := 1
		for i := 0; i < k; i++ {
			c = c * (n - i) / (i + 1)
		}
		return c
	}
	f := func() bool {
		s := genSet(r, 8, 100)
		k := r.Intn(len(s) + 1)
		if k == 0 {
			return true
		}
		seen := map[Key]bool{}
		ok := true
		s.Subsets(k, func(sub Itemset) {
			if sub.Validate() != nil || !sub.SubsetOf(s) || len(sub) != k {
				ok = false
			}
			seen[sub.Key()] = true
		})
		return ok && len(seen) == binom(len(s), k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSortStability(t *testing.T) {
	// Compare must be a total order consistent with sort.
	r := rand.New(rand.NewSource(5))
	sets := make([]Itemset, 50)
	for i := range sets {
		sets[i] = genSet(r, 6, 20)
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Compare(sets[j]) < 0 })
	for i := 1; i < len(sets); i++ {
		if sets[i-1].Compare(sets[i]) > 0 {
			t.Fatalf("sort order violated at %d: %v > %v", i, sets[i-1], sets[i])
		}
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	bread := d.Intern("bread")
	milk := d.Intern("milk")
	if bread == milk {
		t.Fatal("distinct names got same id")
	}
	if again := d.Intern("bread"); again != bread {
		t.Errorf("re-Intern changed id: %d vs %d", again, bread)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if got, ok := d.Lookup("milk"); !ok || got != milk {
		t.Errorf("Lookup(milk) = %d,%v", got, ok)
	}
	if _, ok := d.Lookup("beer"); ok {
		t.Error("Lookup(beer) found unknown name")
	}
	if d.Name(bread) != "bread" {
		t.Errorf("Name = %q", d.Name(bread))
	}
	if d.Name(99) != "item99" {
		t.Errorf("Name(unknown) = %q", d.Name(99))
	}
	s := d.InternSet("milk", "beer", "bread")
	if s.Len() != 3 {
		t.Errorf("InternSet len = %d", s.Len())
	}
	if got := d.FormatSet(s); got != "{beer bread milk}" {
		t.Errorf("FormatSet = %q", got)
	}
	names := d.Names()
	if !reflect.DeepEqual(names, []string{"bread", "milk", "beer"}) {
		t.Errorf("Names = %v", names)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	a, b := New(1, 2), New(3)
	c.Add(a, 1)
	c.Add(a, 2)
	c.Add(b, 5)
	if got := c.Count(a); got != 3 {
		t.Errorf("Count(a) = %d, want 3", got)
	}
	if got := c.Count(New(9)); got != 0 {
		t.Errorf("Count(absent) = %d, want 0", got)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}

	other := NewCounter()
	other.Add(a, 10)
	other.Add(New(7), 1)
	c.Merge(other)
	if got := c.Count(a); got != 13 {
		t.Errorf("after Merge Count(a) = %d, want 13", got)
	}
	if c.Len() != 3 {
		t.Errorf("after Merge Len = %d, want 3", c.Len())
	}

	sorted := c.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Set.Compare(sorted[i].Set) >= 0 {
			t.Errorf("Sorted out of order at %d", i)
		}
	}
	total := 0
	c.Each(func(_ Itemset, n int) { total += n })
	if total != 13+5+1 {
		t.Errorf("Each total = %d", total)
	}
}

func TestSupportTable(t *testing.T) {
	st := NewSupportTable(200)
	a := New(1, 2)
	st.Put(a, 50)
	if n, ok := st.Count(a); !ok || n != 50 {
		t.Errorf("Count = %d,%v", n, ok)
	}
	if sup, ok := st.Support(a); !ok || sup != 0.25 {
		t.Errorf("Support = %v,%v", sup, ok)
	}
	if _, ok := st.Count(New(9)); ok {
		t.Error("Count(absent) reported ok")
	}
	if sup, ok := st.Support(New(9)); ok || sup != 0 {
		t.Errorf("Support(absent) = %v,%v", sup, ok)
	}
	if !st.Contains(a) || st.Contains(New(9)) {
		t.Error("Contains wrong")
	}
	if st.Total() != 200 || st.Len() != 1 {
		t.Errorf("Total/Len = %d/%d", st.Total(), st.Len())
	}
	st.Put(a, 60) // overwrite
	if n, _ := st.Count(a); n != 60 {
		t.Errorf("overwrite Count = %d", n)
	}

	o := NewSupportTable(200)
	o.Put(New(3), 10)
	st.Merge(o)
	if st.Len() != 2 {
		t.Errorf("after Merge Len = %d", st.Len())
	}

	// Zero-transaction table must not divide by zero.
	z := NewSupportTable(0)
	z.Put(a, 0)
	if sup, ok := z.Support(a); !ok || sup != 0 {
		t.Errorf("zero-total Support = %v,%v", sup, ok)
	}
}
