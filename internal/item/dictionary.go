package item

import (
	"fmt"
	"sort"
)

// Dictionary maps human-readable item names to dense Item ids and back. It
// is the bridge between external data formats (basket files, taxonomy
// definitions) and the integer world the mining algorithms live in.
//
// A Dictionary is not safe for concurrent mutation; once fully populated it
// may be shared read-only across goroutines.
type Dictionary struct {
	names []string
	ids   map[string]Item
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]Item)}
}

// Intern returns the id for name, assigning the next dense id if the name
// has not been seen before.
func (d *Dictionary) Intern(name string) Item {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := Item(len(d.names))
	d.names = append(d.names, name)
	d.ids[name] = id
	return id
}

// Lookup returns the id for name and whether it exists.
func (d *Dictionary) Lookup(name string) (Item, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the name for id, or a synthetic "item<id>" string for ids the
// dictionary has never seen (useful when mining anonymous integer data).
func (d *Dictionary) Name(id Item) string {
	if id >= 0 && int(id) < len(d.names) {
		return d.names[id]
	}
	return fmt.Sprintf("item%d", id)
}

// Len returns the number of interned names.
func (d *Dictionary) Len() int { return len(d.names) }

// Names returns a copy of all interned names in id order.
func (d *Dictionary) Names() []string {
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}

// InternSet interns every name and returns the resulting itemset.
func (d *Dictionary) InternSet(names ...string) Itemset {
	items := make([]Item, len(names))
	for i, n := range names {
		items[i] = d.Intern(n)
	}
	return New(items...)
}

// FormatSet renders an itemset with this dictionary's names, sorted by name
// for stable human-facing output.
func (d *Dictionary) FormatSet(s Itemset) string {
	names := make([]string, len(s))
	for i, x := range s {
		names[i] = d.Name(x)
	}
	sort.Strings(names)
	out := "{"
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += n
	}
	return out + "}"
}
