package item

import "sort"

// Counter accumulates support counts for itemsets keyed by their Key. It is
// the simple (non-hash-tree) counting structure; algorithms use it for
// 1-itemsets, for merging per-worker partial counts, and as the reference
// implementation the hash tree is tested against.
type Counter struct {
	counts map[Key]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[Key]int)} }

// Add increments the count of s by delta.
func (c *Counter) Add(s Itemset, delta int) { c.counts[s.Key()] += delta }

// AddKey increments the count of the pre-computed key k by delta.
func (c *Counter) AddKey(k Key, delta int) { c.counts[k] += delta }

// Count returns the accumulated count for s (0 if never added).
func (c *Counter) Count(s Itemset) int { return c.counts[s.Key()] }

// CountKey returns the accumulated count for key k.
func (c *Counter) CountKey(k Key) int { return c.counts[k] }

// Len returns the number of distinct itemsets with a recorded count.
func (c *Counter) Len() int { return len(c.counts) }

// Merge folds other's counts into c.
func (c *Counter) Merge(other *Counter) {
	for k, n := range other.counts {
		c.counts[k] += n
	}
}

// Each calls fn for every (itemset, count) pair in unspecified order.
func (c *Counter) Each(fn func(Itemset, int)) {
	for k, n := range c.counts {
		fn(k.Itemset(), n)
	}
}

// Sorted returns all (itemset, count) pairs ordered lexicographically by
// itemset — deterministic output for tests and reports.
func (c *Counter) Sorted() []CountedSet {
	out := make([]CountedSet, 0, len(c.counts))
	for k, n := range c.counts {
		out = append(out, CountedSet{Set: k.Itemset(), Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Set.Compare(out[j].Set) < 0 })
	return out
}

// CountedSet pairs an itemset with its support count.
type CountedSet struct {
	Set   Itemset
	Count int
}

// SupportTable is an immutable itemset → support-count lookup built from the
// output of a mining pass. Mining algorithms hand it around instead of the
// mutable Counter.
type SupportTable struct {
	counts map[Key]int
	total  int // number of transactions the counts are relative to
}

// NewSupportTable builds a table over n transactions.
func NewSupportTable(n int) *SupportTable {
	return &SupportTable{counts: make(map[Key]int), total: n}
}

// Put records the support count of s. Re-putting an itemset overwrites.
func (t *SupportTable) Put(s Itemset, count int) { t.counts[s.Key()] = count }

// PutKey records the support count for a pre-computed key.
func (t *SupportTable) PutKey(k Key, count int) { t.counts[k] = count }

// Count returns the absolute support count of s and whether it is known.
func (t *SupportTable) Count(s Itemset) (int, bool) {
	n, ok := t.counts[s.Key()]
	return n, ok
}

// Support returns the relative support of s in [0,1] and whether it is known.
func (t *SupportTable) Support(s Itemset) (float64, bool) {
	n, ok := t.counts[s.Key()]
	if !ok || t.total == 0 {
		return 0, ok
	}
	return float64(n) / float64(t.total), true
}

// Contains reports whether s has a recorded support.
func (t *SupportTable) Contains(s Itemset) bool {
	_, ok := t.counts[s.Key()]
	return ok
}

// Total returns the number of transactions counts are relative to.
func (t *SupportTable) Total() int { return t.total }

// Len returns the number of itemsets with recorded support.
func (t *SupportTable) Len() int { return len(t.counts) }

// Each calls fn for every (itemset, count) pair in unspecified order.
func (t *SupportTable) Each(fn func(Itemset, int)) {
	for k, n := range t.counts {
		fn(k.Itemset(), n)
	}
}

// Merge folds other's entries into t (overwriting duplicates).
func (t *SupportTable) Merge(other *SupportTable) {
	for k, n := range other.counts {
		t.counts[k] = n
	}
}
