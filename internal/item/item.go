// Package item provides the foundational types of the mining library: item
// identifiers, sorted itemsets and the set algebra used by every mining
// algorithm (Apriori join/prune, subset enumeration, support counting).
//
// An Itemset is always kept sorted in ascending item order with no
// duplicates; every function in this package preserves that invariant and
// most rely on it for O(n) merges and binary searches.
package item

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Item is the identifier of a single item (a leaf product or an internal
// taxonomy category). Ids are dense small integers assigned by a Dictionary
// or a taxonomy builder; negative values are never valid items.
type Item int32

// None is the sentinel "no item" value.
const None Item = -1

// Itemset is a sorted, duplicate-free set of items. The zero value (nil) is
// the empty itemset.
type Itemset []Item

// New builds an Itemset from arbitrary items: it copies, sorts and
// deduplicates the input.
func New(items ...Item) Itemset {
	if len(items) == 0 {
		return nil
	}
	s := make(Itemset, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Deduplicate in place.
	w := 1
	for r := 1; r < len(s); r++ {
		if s[r] != s[w-1] {
			s[w] = s[r]
			w++
		}
	}
	return s[:w]
}

// FromSorted adopts a slice that the caller guarantees is already sorted and
// duplicate-free. It does not copy.
func FromSorted(items []Item) Itemset { return Itemset(items) }

// SortDedup sorts s in place, removes duplicates in place and returns the
// (re-sliced) result as an Itemset. Unlike New it never allocates, which
// makes it the building block for the allocation-free transaction transforms
// used on counting hot paths: callers own a scratch buffer, append raw items
// into it and normalize with SortDedup.
func SortDedup(s []Item) Itemset {
	if len(s) == 0 {
		return s
	}
	slices.Sort(s)
	w := 1
	for r := 1; r < len(s); r++ {
		if s[r] != s[w-1] {
			s[w] = s[r]
			w++
		}
	}
	return s[:w]
}

// Len returns the number of items in the set.
func (s Itemset) Len() int { return len(s) }

// Empty reports whether the set has no items.
func (s Itemset) Empty() bool { return len(s) == 0 }

// Clone returns an independent copy of the itemset.
func (s Itemset) Clone() Itemset {
	if s == nil {
		return nil
	}
	c := make(Itemset, len(s))
	copy(c, s)
	return c
}

// Contains reports whether item x is a member of s (binary search).
func (s Itemset) Contains(x Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// IndexOf returns the position of x in s, or -1 if absent.
func (s Itemset) IndexOf(x Item) int {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return i
	}
	return -1
}

// SubsetOf reports whether every item of s is contained in t. Both sets are
// sorted, so this is a single linear merge.
func (s Itemset) SubsetOf(t Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j >= len(t) || t[j] != x {
			return false
		}
		j++
	}
	return true
}

// Equal reports whether s and t contain exactly the same items.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets lexicographically (shorter prefix first). It
// returns -1, 0 or +1.
func (s Itemset) Compare(t Itemset) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		switch {
		case s[i] < t[i]:
			return -1
		case s[i] > t[i]:
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// Union returns the sorted union of s and t as a new itemset.
func (s Itemset) Union(t Itemset) Itemset {
	if len(s) == 0 {
		return t.Clone()
	}
	if len(t) == 0 {
		return s.Clone()
	}
	out := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns the sorted intersection of s and t.
func (s Itemset) Intersect(t Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ t: the items of s that are not in t.
func (s Itemset) Minus(t Itemset) Itemset {
	var out Itemset
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j < len(t) && t[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// Disjoint reports whether s and t share no items.
func (s Itemset) Disjoint(t Itemset) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return true
}

// With returns a new itemset with x inserted (no-op copy if already present).
func (s Itemset) With(x Item) Itemset {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return s.Clone()
	}
	out := make(Itemset, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	out = append(out, s[i:]...)
	return out
}

// Without returns a new itemset with x removed (copy if absent).
func (s Itemset) Without(x Item) Itemset {
	i := s.IndexOf(x)
	if i < 0 {
		return s.Clone()
	}
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// ReplaceAt returns a new itemset where the item at position i is replaced by
// x (and the result re-sorted). It is the workhorse of negative candidate
// generation, where one member of a large itemset is swapped for a child or
// sibling.
func (s Itemset) ReplaceAt(i int, x Item) Itemset {
	out := make(Itemset, len(s))
	copy(out, s)
	out[i] = x
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	// The replacement may collide with an existing member; dedupe.
	w := 1
	for r := 1; r < len(out); r++ {
		if out[r] != out[w-1] {
			out[w] = out[r]
			w++
		}
	}
	return out[:w]
}

// Key returns a compact string usable as a map key. Two itemsets have the
// same key iff they are Equal.
func (s Itemset) Key() Key {
	if len(s) == 0 {
		return ""
	}
	b := make([]byte, 0, len(s)*4)
	for _, x := range s {
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return Key(b)
}

// Key is the map-key form of an itemset (4 bytes per item, little endian).
type Key string

// Itemset decodes a Key back into the itemset it was built from.
func (k Key) Itemset() Itemset {
	if len(k) == 0 {
		return nil
	}
	s := make(Itemset, len(k)/4)
	for i := range s {
		o := i * 4
		s[i] = Item(uint32(k[o]) | uint32(k[o+1])<<8 | uint32(k[o+2])<<16 | uint32(k[o+3])<<24)
	}
	return s
}

// Len returns the number of items encoded in the key.
func (k Key) Len() int { return len(k) / 4 }

// String renders the itemset as "{1 5 9}".
func (s Itemset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(int(x)))
	}
	b.WriteByte('}')
	return b.String()
}

// Format renders the itemset using a name lookup, e.g. "{bread milk}".
func (s Itemset) Format(name func(Item) string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(name(x))
	}
	b.WriteByte('}')
	return b.String()
}

// Subsets calls fn for every non-empty proper subset of s that has exactly k
// items. Iteration order is lexicographic. It allocates one scratch buffer
// and reuses it; fn must not retain its argument (Clone it if needed).
func (s Itemset) Subsets(k int, fn func(Itemset)) {
	if k <= 0 || k > len(s) {
		return
	}
	idx := make([]int, k)
	buf := make(Itemset, k)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == k {
			for i, ix := range idx {
				buf[i] = s[ix]
			}
			fn(buf)
			return
		}
		for i := start; i <= len(s)-(k-d); i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
}

// AllSubsets calls fn for every non-empty subset of s, including s itself
// when proper is false. The buffer passed to fn is reused across calls.
func (s Itemset) AllSubsets(proper bool, fn func(Itemset)) {
	max := len(s)
	if proper {
		max--
	}
	for k := 1; k <= max; k++ {
		s.Subsets(k, fn)
	}
}

// Validate checks the sortedness/uniqueness invariant, returning an error
// describing the first violation. It is used by tests and by the txdb loader
// when reading untrusted files.
func (s Itemset) Validate() error {
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return fmt.Errorf("itemset %v: duplicate item %d at position %d", s, s[i], i)
		}
		if s[i] < s[i-1] {
			return fmt.Errorf("itemset %v: out of order at position %d (%d < %d)", s, i, s[i], s[i-1])
		}
	}
	for i, x := range s {
		if x < 0 {
			return fmt.Errorf("itemset %v: negative item id %d at position %d", s, x, i)
		}
	}
	return nil
}
