// Package txdb implements the transaction database every mining pass runs
// over: an in-memory store, a compact binary on-disk format with streaming
// reader/writer, and a whitespace "basket" text format for human-authored
// data.
//
// All algorithms access data through the DB interface, so they behave
// identically over memory and disk. The Instrumented wrapper counts scan
// passes, which lets tests prove the paper's pass-complexity claims (Naive =
// 2n passes, Improved = n+1).
package txdb

import (
	"errors"
	"fmt"

	"negmine/internal/fault"
	"negmine/internal/item"
)

// PointScan is the failpoint evaluated once per transaction by every scan
// loop in the package (memory- and disk-resident). Arming it with an error
// models a torn mid-scan read; with sleep, a stalling device. The check is
// hoisted behind fault.Active so production scans stay branch-free.
const PointScan = "txdb.scan"

// Transaction is one customer basket: a unique TID and a sorted set of
// (leaf) items.
type Transaction struct {
	TID   int64
	Items item.Itemset
}

// DB is a scannable transaction database. Scan streams every transaction in
// storage order; returning a non-nil error from fn aborts the scan and is
// propagated. Count is the number of transactions.
type DB interface {
	Scan(fn func(Transaction) error) error
	Count() int
}

// Sharder is implemented by databases that support partitioned scans:
// ScanShard(i, n) visits the i-th of n disjoint, jointly-exhaustive subsets
// of the data. It powers parallel support counting and the Partition mining
// algorithm.
type Sharder interface {
	ScanShard(shard, of int, fn func(Transaction) error) error
}

// MemDB is an in-memory transaction database.
type MemDB struct {
	txs []Transaction
}

// NewMemDB builds a database from transactions, validating itemsets and
// TID uniqueness is NOT enforced (callers own TID assignment).
func NewMemDB(txs []Transaction) (*MemDB, error) {
	for i, tx := range txs {
		if err := tx.Items.Validate(); err != nil {
			return nil, fmt.Errorf("txdb: transaction %d (tid %d): %w", i, tx.TID, err)
		}
	}
	return &MemDB{txs: txs}, nil
}

// FromItemsets builds a MemDB assigning sequential TIDs; each input slice is
// normalized (sorted, deduplicated). Convenient for tests and examples.
func FromItemsets(sets ...[]item.Item) *MemDB {
	txs := make([]Transaction, len(sets))
	for i, s := range sets {
		txs[i] = Transaction{TID: int64(i + 1), Items: item.New(s...)}
	}
	return &MemDB{txs: txs}
}

// Append adds a transaction (no validation; intended for generators that
// produce canonical itemsets).
func (m *MemDB) Append(tx Transaction) { m.txs = append(m.txs, tx) }

// Count returns the number of transactions.
func (m *MemDB) Count() int { return len(m.txs) }

// Scan visits every transaction in insertion order.
func (m *MemDB) Scan(fn func(Transaction) error) error {
	faulty := fault.Active()
	for _, tx := range m.txs {
		if faulty {
			if err := fault.Hit(PointScan); err != nil {
				return fmt.Errorf("txdb: scan at tid %d: %w", tx.TID, err)
			}
		}
		if err := fn(tx); err != nil {
			return err
		}
	}
	return nil
}

// ScanShard visits transactions whose index ≡ shard (mod of).
func (m *MemDB) ScanShard(shard, of int, fn func(Transaction) error) error {
	if of <= 0 || shard < 0 || shard >= of {
		return fmt.Errorf("txdb: bad shard %d/%d", shard, of)
	}
	faulty := fault.Active()
	for i := shard; i < len(m.txs); i += of {
		if faulty {
			if err := fault.Hit(PointScan); err != nil {
				return fmt.Errorf("txdb: shard %d/%d scan at tid %d: %w", shard, of, m.txs[i].TID, err)
			}
		}
		if err := fn(m.txs[i]); err != nil {
			return err
		}
	}
	return nil
}

// ScanRange visits transactions with index in [lo, hi). It backs the
// Partition algorithm's contiguous partitions.
func (m *MemDB) ScanRange(lo, hi int, fn func(Transaction) error) error {
	if lo < 0 || hi > len(m.txs) || lo > hi {
		return fmt.Errorf("txdb: bad range [%d,%d) of %d", lo, hi, len(m.txs))
	}
	faulty := fault.Active()
	for _, tx := range m.txs[lo:hi] {
		if faulty {
			if err := fault.Hit(PointScan); err != nil {
				return fmt.Errorf("txdb: range scan at tid %d: %w", tx.TID, err)
			}
		}
		if err := fn(tx); err != nil {
			return err
		}
	}
	return nil
}

// Transactions exposes the underlying slice (shared; callers must not
// modify). Used by the data generator's tests.
func (m *MemDB) Transactions() []Transaction { return m.txs }

// Stats summarizes a database: transaction count, item occurrences, average
// basket length, and the maximum item id (for sizing count arrays).
type Stats struct {
	Transactions int
	TotalItems   int
	AvgLen       float64
	MaxItem      item.Item
}

// Collect computes Stats with a single scan.
func Collect(db DB) (Stats, error) {
	var s Stats
	s.MaxItem = item.None
	err := db.Scan(func(tx Transaction) error {
		s.Transactions++
		s.TotalItems += tx.Items.Len()
		if n := tx.Items.Len(); n > 0 && tx.Items[n-1] > s.MaxItem {
			s.MaxItem = tx.Items[n-1]
		}
		return nil
	})
	if err != nil {
		return Stats{}, err
	}
	if s.Transactions > 0 {
		s.AvgLen = float64(s.TotalItems) / float64(s.Transactions)
	}
	return s, nil
}

// ErrStop may be returned by a Scan callback to end the scan early without
// reporting an error to the caller of ScanUntil.
var ErrStop = errors.New("txdb: stop scan")

// ScanUntil scans db but treats ErrStop from fn as successful early exit.
func ScanUntil(db DB, fn func(Transaction) error) error {
	if err := db.Scan(fn); err != nil && !errors.Is(err, ErrStop) {
		return err
	}
	return nil
}
