package txdb

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// isGzipPath reports whether path selects gzip framing (.gz suffix).
func isGzipPath(path string) bool { return strings.HasSuffix(path, ".gz") }

// writeAll emits a complete binary stream — header with the exact count,
// then every record — to w. Unlike Writer it needs no seeking, so it works
// through a gzip compressor.
func writeAll(w io.Writer, db DB) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(formatVersion); err != nil {
		return err
	}
	var fixed [8]byte
	binary.LittleEndian.PutUint64(fixed[:], uint64(db.Count()))
	if _, err := bw.Write(fixed[:]); err != nil {
		return err
	}
	lastTID := int64(0)
	started := false
	err := db.Scan(func(tx Transaction) error {
		if started && tx.TID < lastTID {
			return fmt.Errorf("txdb: TID %d out of order (previous %d)", tx.TID, lastTID)
		}
		if tx.TID < 0 {
			return fmt.Errorf("txdb: negative TID %d", tx.TID)
		}
		if err := put(uint64(tx.TID - lastTID)); err != nil {
			return err
		}
		lastTID = tx.TID
		started = true
		if err := put(uint64(len(tx.Items))); err != nil {
			return err
		}
		prev := int64(-1)
		for _, it := range tx.Items {
			if err := put(uint64(int64(it) - prev)); err != nil {
				return err
			}
			prev = int64(it)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// writeFileGz writes db to path through gzip.
func writeFileGz(path string, db DB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(f)
	if err := writeAll(gz, db); err != nil {
		f.Close()
		return err
	}
	if err := gz.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openReader opens path and returns a buffered reader over its
// (possibly gzip-compressed) contents plus a closer for all resources.
func openReader(path string) (*bufio.Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if !isGzipPath(path) {
		return bufio.NewReaderSize(f, 1<<16), f, nil
	}
	gz, err := gzip.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("txdb: %s: gzip: %w", path, err)
	}
	return bufio.NewReaderSize(gz, 1<<16), multiCloser{gz, f}, nil
}

type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
