package txdb

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// isGzipPath reports whether path selects gzip framing (.gz suffix).
func isGzipPath(path string) bool { return strings.HasSuffix(path, ".gz") }

// writeAll emits a complete binary stream — header with the exact count,
// then every record — to w. Unlike Writer it needs no seeking, so it works
// through a gzip compressor.
func writeAll(w io.Writer, db DB) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic...)
	hdr = binary.AppendUvarint(hdr, formatVersion)
	var fixed [8]byte
	binary.LittleEndian.PutUint64(fixed[:], uint64(db.Count()))
	hdr = append(hdr, fixed[:]...)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var enc Encoder
	var rec []byte
	err := db.Scan(func(tx Transaction) error {
		var err error
		rec, err = enc.AppendRecord(rec[:0], tx)
		if err != nil {
			return err
		}
		_, err = bw.Write(rec)
		return err
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// writeFileGz writes db to path through gzip.
func writeFileGz(path string, db DB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(f)
	if err := writeAll(gz, db); err != nil {
		f.Close()
		return err
	}
	if err := gz.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openReader opens path and returns a buffered reader over its
// (possibly gzip-compressed) contents plus a closer for all resources.
func openReader(path string) (*bufio.Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if !isGzipPath(path) {
		return bufio.NewReaderSize(f, 1<<16), f, nil
	}
	gz, err := gzip.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("txdb: %s: gzip: %w", path, err)
	}
	return bufio.NewReaderSize(gz, 1<<16), multiCloser{gz, f}, nil
}

type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
