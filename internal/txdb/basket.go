package txdb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"negmine/internal/item"
)

// ReadBaskets parses the human-friendly basket format: one transaction per
// line, items whitespace-separated, '#' comments, blank lines skipped.
// Item tokens are interned through dict (numeric-looking tokens are still
// treated as names, keeping the format uniform). TIDs are assigned
// sequentially from 1.
func ReadBaskets(r io.Reader, dict *item.Dictionary) (*MemDB, error) {
	m := &MemDB{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	tid := int64(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		tid++
		m.Append(Transaction{TID: tid, Items: dict.InternSet(fields...)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("txdb: baskets line %d: %w", lineNo, err)
	}
	return m, nil
}

// ReadBasketsInts parses baskets of raw integer item ids (the common format
// of public itemset-mining datasets): one transaction per line, ids
// whitespace-separated.
func ReadBasketsInts(r io.Reader) (*MemDB, error) {
	m := &MemDB{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	tid := int64(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		items := make([]item.Item, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("txdb: baskets line %d: bad item id %q", lineNo, f)
			}
			items[j] = item.Item(v)
		}
		tid++
		m.Append(Transaction{TID: tid, Items: item.New(items...)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("txdb: baskets line %d: %w", lineNo, err)
	}
	return m, nil
}

// WriteBaskets writes db in the named basket format using dict for names.
func WriteBaskets(w io.Writer, db DB, dict *item.Dictionary) error {
	bw := bufio.NewWriter(w)
	err := db.Scan(func(tx Transaction) error {
		for i, it := range tx.Items {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(dict.Name(it)); err != nil {
				return err
			}
		}
		return bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBasketsInts writes db as integer-id baskets.
func WriteBasketsInts(w io.Writer, db DB) error {
	bw := bufio.NewWriter(w)
	err := db.Scan(func(tx Transaction) error {
		for i, it := range tx.Items {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(it))); err != nil {
				return err
			}
		}
		return bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
