// External test package so the fuzz targets can seed their corpora from
// internal/datagen (importing it from package txdb would be a cycle).
package txdb_test

import (
	"bytes"
	"strings"
	"testing"

	"negmine/internal/datagen"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// datagenBasketSeed serializes a synthetic database in the named-basket
// format, so the fuzzer starts from realistic input.
func datagenBasketSeed(f *testing.F, ints bool) string {
	f.Helper()
	tax, db, err := datagen.Generate(datagen.Short())
	if err != nil {
		f.Fatalf("datagen: %v", err)
	}
	var buf bytes.Buffer
	if ints {
		err = txdb.WriteBasketsInts(&buf, db)
	} else {
		err = txdb.WriteBaskets(&buf, db, tax.Dictionary())
	}
	if err != nil {
		f.Fatalf("serializing seed: %v", err)
	}
	return buf.String()
}

// FuzzReadBaskets feeds arbitrary text to the named-basket reader. The
// reader must never panic; on success every transaction must have a
// sequential TID, a sorted duplicate-free itemset, and only ids the
// dictionary actually interned.
func FuzzReadBaskets(f *testing.F) {
	f.Add(datagenBasketSeed(f, false))
	f.Add("milk bread\nbeer # trailing comment\n")
	f.Add("# only a comment\n\n\n")
	f.Add("a a a\n")
	f.Add(strings.Repeat("x", 70000) + " y\n") // token longer than the scanner's initial buffer

	f.Fuzz(func(t *testing.T, s string) {
		dict := item.NewDictionary()
		db, err := txdb.ReadBaskets(strings.NewReader(s), dict)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		wantTID := int64(0)
		err = db.Scan(func(tx txdb.Transaction) error {
			wantTID++
			if tx.TID != wantTID {
				t.Fatalf("TID %d out of sequence (want %d)", tx.TID, wantTID)
			}
			if tx.Items.Len() == 0 {
				t.Fatalf("transaction %d has no items", tx.TID)
			}
			for i, it := range tx.Items {
				if int(it) < 0 || int(it) >= dict.Len() {
					t.Fatalf("transaction %d: item %d outside dictionary (len %d)", tx.TID, it, dict.Len())
				}
				if i > 0 && tx.Items[i-1] >= it {
					t.Fatalf("transaction %d: items not sorted-unique: %v", tx.TID, tx.Items)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scan of parsed db: %v", err)
		}
		if int(wantTID) != db.Count() {
			t.Fatalf("Count() = %d but scanned %d", db.Count(), wantTID)
		}
	})
}

// FuzzReadBasketsInts is the same contract for the integer-id format, which
// additionally must reject malformed and negative ids with an error naming
// the line.
func FuzzReadBasketsInts(f *testing.F) {
	f.Add(datagenBasketSeed(f, true))
	f.Add("1 2 3\n4 5\n")
	f.Add("-1\n")
	f.Add("99999999999999999999\n") // overflows int32
	f.Add("1 two 3\n")

	f.Fuzz(func(t *testing.T, s string) {
		db, err := txdb.ReadBasketsInts(strings.NewReader(s))
		if err != nil {
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("reject without a line number: %v", err)
			}
			return
		}
		wantTID := int64(0)
		err = db.Scan(func(tx txdb.Transaction) error {
			wantTID++
			if tx.TID != wantTID {
				t.Fatalf("TID %d out of sequence (want %d)", tx.TID, wantTID)
			}
			for i, it := range tx.Items {
				if it < 0 {
					t.Fatalf("transaction %d: negative item %d", tx.TID, it)
				}
				if i > 0 && tx.Items[i-1] >= it {
					t.Fatalf("transaction %d: items not sorted-unique: %v", tx.TID, tx.Items)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scan of parsed db: %v", err)
		}
	})
}
