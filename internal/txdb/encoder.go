package txdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"negmine/internal/item"
)

// Encoder is the record-level delta encoder of the binary format, detached
// from any header or file container. It carries the inter-record state (the
// previous TID) so the same transaction stream can be encoded across
// arbitrary buffer boundaries — package seglog frames its WAL payloads with
// it, and Writer delegates to it. The zero value encodes a fresh stream.
type Encoder struct {
	lastTID int64
	started bool
}

// AppendRecord appends the encoded form of tx to dst and returns the
// extended slice. Transactions must arrive in non-decreasing TID order; on
// error dst is returned unchanged and the encoder state is not advanced.
func (e *Encoder) AppendRecord(dst []byte, tx Transaction) ([]byte, error) {
	if e.started && tx.TID < e.lastTID {
		return dst, fmt.Errorf("txdb: TID %d out of order (previous %d)", tx.TID, e.lastTID)
	}
	if tx.TID < 0 {
		return dst, fmt.Errorf("txdb: negative TID %d", tx.TID)
	}
	dst = binary.AppendUvarint(dst, uint64(tx.TID-e.lastTID))
	e.lastTID = tx.TID
	e.started = true
	dst = binary.AppendUvarint(dst, uint64(len(tx.Items)))
	prev := int64(-1)
	for _, it := range tx.Items {
		dst = binary.AppendUvarint(dst, uint64(int64(it)-prev))
		prev = int64(it)
	}
	return dst, nil
}

// Reset returns the encoder to the fresh-stream state (first TID delta is
// taken from 0).
func (e *Encoder) Reset() { e.lastTID, e.started = 0, false }

// ResumeAt primes the encoder as if a record with the given TID had just
// been encoded, so the next record continues an existing stream.
func (e *Encoder) ResumeAt(lastTID int64) { e.lastTID, e.started = lastTID, true }

// LastTID returns the TID of the most recently encoded record (0 for a
// fresh encoder).
func (e *Encoder) LastTID() int64 { return e.lastTID }

// Decoder is the inverse of Encoder: it decodes consecutive records from
// byte slices, carrying TID state across calls so a stream split into
// frames decodes exactly as it was encoded. The zero value decodes a fresh
// stream.
type Decoder struct {
	lastTID int64
	items   item.Itemset
}

// Reset returns the decoder to the fresh-stream state.
func (d *Decoder) Reset() { d.lastTID = 0 }

// ResumeAt primes the decoder mid-stream (see Encoder.ResumeAt).
func (d *Decoder) ResumeAt(lastTID int64) { d.lastTID = lastTID }

// LastTID returns the TID of the most recently decoded record.
func (d *Decoder) LastTID() int64 { return d.lastTID }

// DecodeAll decodes every record in data, invoking fn per transaction. The
// Items slice passed to fn is reused between calls; fn must Clone it to
// retain it. It returns the number of complete records decoded; on corrupt
// or truncated input it additionally returns an error, and the decoder
// state reflects only the complete records.
func (d *Decoder) DecodeAll(data []byte, fn func(Transaction) error) (int, error) {
	decoded := 0
	for len(data) > 0 {
		delta, n := binary.Uvarint(data)
		if n <= 0 {
			return decoded, fmt.Errorf("txdb: record %d: truncated tid delta", decoded)
		}
		rest := data[n:]
		tid := d.lastTID + int64(delta)
		cnt, n := binary.Uvarint(rest)
		if n <= 0 {
			return decoded, fmt.Errorf("txdb: record %d: truncated item count", decoded)
		}
		rest = rest[n:]
		if cnt > 1<<24 {
			return decoded, fmt.Errorf("txdb: record %d: absurd item count %d", decoded, cnt)
		}
		if cap(d.items) < int(cnt) {
			d.items = make(item.Itemset, cnt)
		}
		d.items = d.items[:cnt]
		prev := int64(-1)
		for j := 0; j < int(cnt); j++ {
			delta, n := binary.Uvarint(rest)
			if n <= 0 {
				return decoded, fmt.Errorf("txdb: record %d: item %d: truncated", decoded, j)
			}
			rest = rest[n:]
			// Items are strictly increasing, so every delta from the previous
			// item (initially -1) must be ≥ 1; zero means corruption.
			if delta == 0 {
				return decoded, fmt.Errorf("txdb: record %d: item %d: zero delta (corrupt data)", decoded, j)
			}
			prev += int64(delta)
			if prev > int64(^uint32(0)>>1) {
				return decoded, fmt.Errorf("txdb: record %d: item id overflow", decoded)
			}
			d.items[j] = item.Item(prev)
		}
		// The record is complete; commit state before handing it out.
		d.lastTID = tid
		data = rest
		decoded++
		if err := fn(Transaction{TID: tid, Items: d.items}); err != nil {
			return decoded, err
		}
	}
	return decoded, nil
}

// countingReader counts bytes consumed from the underlying reader so the
// valid end of a partially buffered stream can be located.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// OpenAppend reopens an existing binary file for appending. The file's
// records are scanned once to validate them and recover the TID state, the
// file is truncated to the end of the last valid record (dropping any
// garbage after the header-declared count), and the returned Writer
// continues the stream; Close back-patches the updated count and closes the
// file. Gzip files cannot be appended to.
func OpenAppend(path string) (*Writer, error) {
	if isGzipPath(path) {
		return nil, fmt.Errorf("txdb: %s: cannot append to a gzip file", path)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	cr := &countingReader{r: f}
	br := bufio.NewReaderSize(cr, 1<<16)
	count, err := readHeader(br)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("txdb: %s: %w", path, err)
	}
	var dec recordReader
	for i := 0; i < count; i++ {
		if err := dec.next(br); err != nil {
			f.Close()
			return nil, fmt.Errorf("txdb: %s: record %d: %w", path, i, err)
		}
	}
	end := cr.n - int64(br.Buffered())
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{w: bufio.NewWriterSize(f, 1<<16), ws: f, f: f, count: count}
	if count > 0 {
		w.enc.ResumeAt(dec.tid)
	}
	return w, nil
}

// recordReader decodes one record at a time from a bufio.Reader, carrying
// the TID state. It is the streaming sibling of Decoder, shared by
// OpenAppend's validation scan.
type recordReader struct {
	tid   int64
	items item.Itemset
}

func (d *recordReader) next(r *bufio.Reader) error {
	delta, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("tid: %w", err)
	}
	tid := d.tid + int64(delta)
	cnt, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("length: %w", err)
	}
	if cnt > 1<<24 {
		return fmt.Errorf("absurd item count %d", cnt)
	}
	if cap(d.items) < int(cnt) {
		d.items = make(item.Itemset, cnt)
	}
	d.items = d.items[:cnt]
	prev := int64(-1)
	for j := 0; j < int(cnt); j++ {
		delta, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("item %d: %w", j, err)
		}
		if delta == 0 {
			return fmt.Errorf("item %d: zero delta (corrupt file)", j)
		}
		prev += int64(delta)
		if prev > int64(^uint32(0)>>1) {
			return fmt.Errorf("item id overflow")
		}
		d.items[j] = item.Item(prev)
	}
	d.tid = tid
	return nil
}
