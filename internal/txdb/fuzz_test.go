package txdb

import (
	"bytes"
	"os"
	"testing"

	"negmine/internal/item"
)

// FuzzScanBinary feeds arbitrary bytes to the binary-format reader: it must
// either reject the input with an error or scan cleanly, but never panic or
// allocate absurdly.
func FuzzScanBinary(f *testing.F) {
	// Seed with a valid file.
	var buf writeSeekBuffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	w.Write(Transaction{TID: 1, Items: item.New(1, 2, 3)})
	w.Write(Transaction{TID: 5, Items: item.New(7)})
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.buf.Bytes())
	f.Add([]byte("NMTX"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := dir + "/fuzz.nmtx"
		if err := writeRaw(path, data); err != nil {
			t.Skip()
		}
		db, err := OpenFile(path)
		if err != nil {
			return // rejected at header: fine
		}
		// Guard against absurd header counts driving a long loop: the scan
		// must fail fast on truncated bodies.
		n := 0
		_ = db.Scan(func(tx Transaction) error {
			if err := tx.Items.Validate(); err != nil {
				t.Errorf("scanned invalid itemset: %v", err)
			}
			n++
			if n > 1<<20 {
				t.Fatal("unbounded scan")
			}
			return nil
		})
	})
}

// writeSeekBuffer adapts bytes.Buffer to io.WriteSeeker for tests.
type writeSeekBuffer struct {
	buf bytes.Buffer
	pos int
}

func (w *writeSeekBuffer) Write(p []byte) (int, error) {
	if w.pos < w.buf.Len() {
		// Overwrite in place.
		n := copy(w.buf.Bytes()[w.pos:], p)
		w.pos += n
		if n < len(p) {
			m, err := w.buf.Write(p[n:])
			w.pos += m
			return n + m, err
		}
		return n, nil
	}
	n, err := w.buf.Write(p)
	w.pos += n
	return n, err
}

func (w *writeSeekBuffer) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case 0:
		w.pos = int(offset)
	case 1:
		w.pos += int(offset)
	case 2:
		w.pos = w.buf.Len() + int(offset)
	}
	return int64(w.pos), nil
}

func writeRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
