package txdb

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"negmine/internal/item"
)

func sampleDB() *MemDB {
	return FromItemsets(
		[]item.Item{1, 2, 3},
		[]item.Item{2, 4},
		[]item.Item{1, 3, 5, 7},
		[]item.Item{},
		[]item.Item{9},
	)
}

func TestMemDBBasics(t *testing.T) {
	db := sampleDB()
	if db.Count() != 5 {
		t.Errorf("Count = %d", db.Count())
	}
	var tids []int64
	var total int
	err := db.Scan(func(tx Transaction) error {
		tids = append(tids, tx.TID)
		total += tx.Items.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 5 || tids[0] != 1 || tids[4] != 5 {
		t.Errorf("tids = %v", tids)
	}
	if total != 10 {
		t.Errorf("total items = %d", total)
	}
}

func TestNewMemDBValidates(t *testing.T) {
	_, err := NewMemDB([]Transaction{{TID: 1, Items: item.Itemset{3, 1}}})
	if err == nil {
		t.Fatal("unsorted itemset accepted")
	}
	db, err := NewMemDB([]Transaction{{TID: 1, Items: item.New(3, 1)}})
	if err != nil || db.Count() != 1 {
		t.Fatalf("valid input rejected: %v", err)
	}
}

func TestScanAbort(t *testing.T) {
	db := sampleDB()
	boom := errors.New("boom")
	n := 0
	err := db.Scan(func(Transaction) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 2 {
		t.Errorf("err=%v n=%d", err, n)
	}
	// ScanUntil treats ErrStop as success.
	n = 0
	err = ScanUntil(db, func(Transaction) error {
		n++
		return ErrStop
	})
	if err != nil || n != 1 {
		t.Errorf("ScanUntil err=%v n=%d", err, n)
	}
}

func TestScanShardPartition(t *testing.T) {
	db := sampleDB()
	seen := map[int64]int{}
	for s := 0; s < 3; s++ {
		err := db.ScanShard(s, 3, func(tx Transaction) error {
			seen[tx.TID]++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != db.Count() {
		t.Errorf("shards covered %d txs, want %d", len(seen), db.Count())
	}
	for tid, n := range seen {
		if n != 1 {
			t.Errorf("tid %d seen %d times", tid, n)
		}
	}
	if err := db.ScanShard(3, 3, func(Transaction) error { return nil }); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

func TestScanRange(t *testing.T) {
	db := sampleDB()
	var tids []int64
	if err := db.ScanRange(1, 3, func(tx Transaction) error {
		tids = append(tids, tx.TID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tids) != 2 || tids[0] != 2 || tids[1] != 3 {
		t.Errorf("tids = %v", tids)
	}
	if err := db.ScanRange(4, 2, func(Transaction) error { return nil }); err == nil {
		t.Error("inverted range accepted")
	}
	if err := db.ScanRange(0, 6, func(Transaction) error { return nil }); err == nil {
		t.Error("overflow range accepted")
	}
}

func TestCollect(t *testing.T) {
	s, err := Collect(sampleDB())
	if err != nil {
		t.Fatal(err)
	}
	if s.Transactions != 5 || s.TotalItems != 10 || s.AvgLen != 2 || s.MaxItem != 9 {
		t.Errorf("Stats = %+v", s)
	}
	empty, err := Collect(FromItemsets())
	if err != nil || empty.Transactions != 0 || empty.AvgLen != 0 {
		t.Errorf("empty Stats = %+v err=%v", empty, err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.nmtx")
	db := sampleDB()
	if err := WriteFile(path, db); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if f.Count() != db.Count() {
		t.Errorf("Count = %d, want %d", f.Count(), db.Count())
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	want := db.Transactions()
	for i, tx := range got.Transactions() {
		if tx.TID != want[i].TID || !tx.Items.Equal(want[i].Items) {
			t.Errorf("record %d: got %v/%v want %v/%v", i, tx.TID, tx.Items, want[i].TID, want[i].Items)
		}
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	m := &MemDB{}
	tid := int64(0)
	for i := 0; i < 500; i++ {
		tid += int64(r.Intn(5)) // non-decreasing, sometimes equal
		n := r.Intn(12)
		items := make([]item.Item, n)
		for j := range items {
			items[j] = item.Item(r.Intn(100000))
		}
		m.Append(Transaction{TID: tid, Items: item.New(items...)})
	}
	path := filepath.Join(t.TempDir(), "r.nmtx")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != m.Count() {
		t.Fatalf("count %d != %d", got.Count(), m.Count())
	}
	for i := range m.Transactions() {
		a, b := m.Transactions()[i], got.Transactions()[i]
		if a.TID != b.TID || !a.Items.Equal(b.Items) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestFileDBShardedScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.nmtx")
	if err := WriteFile(path, sampleDB()); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for s := 0; s < 2; s++ {
		err := f.ScanShard(s, 2, func(tx Transaction) error {
			if seen[tx.TID] {
				t.Errorf("tid %d seen twice", tx.TID)
			}
			seen[tx.TID] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 5 {
		t.Errorf("covered %d of 5", len(seen))
	}
}

func TestFileDBScanReusesBuffer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.nmtx")
	if err := WriteFile(path, sampleDB()); err != nil {
		t.Fatal(err)
	}
	f, _ := OpenFile(path)
	var first item.Itemset
	i := 0
	f.Scan(func(tx Transaction) error {
		if i == 0 {
			first = tx.Items // deliberately retained without Clone
		}
		i++
		return nil
	})
	// The buffer is documented as reused: retained slice must NOT be relied
	// upon. We simply document the behaviour; the final transaction has 1
	// item so the retained view is len 3 but contents changed is allowed.
	_ = first
}

func TestWriterTIDOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "o.nmtx")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	w, err := NewWriter(fh)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Transaction{TID: 5, Items: item.New(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Transaction{TID: 4, Items: item.New(1)}); err == nil {
		t.Error("decreasing TID accepted")
	}
	if err := w.Write(Transaction{TID: -1, Items: nil}); err == nil {
		t.Error("negative TID accepted")
	}
}

func TestOpenFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file opened")
	}
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("GARBAGE-----"), 0o644)
	if _, err := OpenFile(bad); err == nil {
		t.Error("bad magic accepted")
	}
	short := filepath.Join(dir, "short")
	os.WriteFile(short, []byte("NM"), 0o644)
	if _, err := OpenFile(short); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTruncatedBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.nmtx")
	if err := WriteFile(path, sampleDB()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-3], 0o644)
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err) // header intact
	}
	if err := f.Scan(func(Transaction) error { return nil }); err == nil {
		t.Error("truncated body scanned without error")
	}
}

func TestBasketsNamed(t *testing.T) {
	src := `
bread milk        # weekly shop
beer
bread beer chips
`
	dict := item.NewDictionary()
	db, err := ReadBaskets(strings.NewReader(src), dict)
	if err != nil {
		t.Fatal(err)
	}
	if db.Count() != 3 {
		t.Fatalf("Count = %d", db.Count())
	}
	bread, _ := dict.Lookup("bread")
	if !db.Transactions()[2].Items.Contains(bread) {
		t.Error("third basket missing bread")
	}
	var buf bytes.Buffer
	if err := WriteBaskets(&buf, db, dict); err != nil {
		t.Fatal(err)
	}
	db2, err := ReadBaskets(&buf, dict)
	if err != nil || db2.Count() != 3 {
		t.Fatalf("round trip: %v count=%d", err, db2.Count())
	}
	for i := range db.Transactions() {
		if !db.Transactions()[i].Items.Equal(db2.Transactions()[i].Items) {
			t.Errorf("basket %d differs", i)
		}
	}
}

func TestBasketsInts(t *testing.T) {
	db, err := ReadBasketsInts(strings.NewReader("3 1 2\n\n7 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if db.Count() != 2 {
		t.Fatalf("Count = %d", db.Count())
	}
	if !db.Transactions()[0].Items.Equal(item.New(1, 2, 3)) {
		t.Errorf("basket 0 = %v", db.Transactions()[0].Items)
	}
	if !db.Transactions()[1].Items.Equal(item.New(7)) {
		t.Errorf("basket 1 = %v (dup not removed)", db.Transactions()[1].Items)
	}
	if _, err := ReadBasketsInts(strings.NewReader("1 x\n")); err == nil {
		t.Error("non-numeric accepted")
	}
	if _, err := ReadBasketsInts(strings.NewReader("-4\n")); err == nil {
		t.Error("negative accepted")
	}
	var buf bytes.Buffer
	if err := WriteBasketsInts(&buf, db); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "1 2 3\n7\n" {
		t.Errorf("WriteBasketsInts = %q", got)
	}
}

func TestInstrumented(t *testing.T) {
	db := Instrument(sampleDB())
	for i := 0; i < 3; i++ {
		if err := db.Scan(func(Transaction) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if db.Passes() != 3 {
		t.Errorf("Passes = %d", db.Passes())
	}
	if err := db.ScanShard(0, 2, func(Transaction) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if db.ShardScans() != 1 {
		t.Errorf("ShardScans = %d", db.ShardScans())
	}
	db.Reset()
	if db.Passes() != 0 || db.ShardScans() != 0 {
		t.Error("Reset failed")
	}
}

func TestThrottled(t *testing.T) {
	base := sampleDB()
	th := Throttle(base, 2*time.Millisecond) // 5 tx → ≥10ms per pass
	start := time.Now()
	n := 0
	if err := th.Scan(func(Transaction) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("scanned %d", n)
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Errorf("throttled scan took %v, want ≥10ms", el)
	}
	// Sharded scans still cover everything exactly once.
	seen := map[int64]int{}
	for s := 0; s < 2; s++ {
		if err := th.ScanShard(s, 2, func(tx Transaction) error {
			seen[tx.TID]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 5 {
		t.Errorf("shards covered %d", len(seen))
	}
}

func TestGzipRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.nmtx.gz")
	db := sampleDB()
	if err := WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Count() != db.Count() {
		t.Errorf("Count = %d, want %d", f.Count(), db.Count())
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Transactions()
	for i, tx := range got.Transactions() {
		if tx.TID != want[i].TID || !tx.Items.Equal(want[i].Items) {
			t.Errorf("record %d mismatch", i)
		}
	}
	// Sharded scans work through gzip too.
	seen := 0
	for s := 0; s < 2; s++ {
		if err := f.ScanShard(s, 2, func(Transaction) error { seen++; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if seen != db.Count() {
		t.Errorf("sharded gzip scan covered %d", seen)
	}
	// Compressed file actually is gzip (magic 0x1f8b) and smaller framing.
	raw, _ := os.ReadFile(path)
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Error("file is not gzip-framed")
	}
}

func TestGzipRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.nmtx.gz")
	os.WriteFile(path, []byte("not gzip at all"), 0o644)
	if _, err := OpenFile(path); err == nil {
		t.Error("non-gzip .gz accepted")
	}
}
