package txdb

import "sync/atomic"

// Instrumented wraps a DB and counts completed scan passes. The negative
// mining tests use it to verify the paper's pass-complexity claims: the
// naive algorithm makes 2n passes, the improved one n+1 (§2.2).
type Instrumented struct {
	DB
	passes     atomic.Int64
	shardScans atomic.Int64
}

// Instrument wraps db.
func Instrument(db DB) *Instrumented { return &Instrumented{DB: db} }

// Scan delegates to the wrapped DB and counts the pass.
func (i *Instrumented) Scan(fn func(Transaction) error) error {
	i.passes.Add(1)
	return i.DB.Scan(fn)
}

// ScanShard delegates if the wrapped DB shards; a full set of shards counts
// as a fractional pass each (of shards of 1/of), so parallel counting over n
// shards still registers as one logical pass in Passes (rounded down).
func (i *Instrumented) ScanShard(shard, of int, fn func(Transaction) error) error {
	s, ok := i.DB.(Sharder)
	if !ok {
		if of == 1 && shard == 0 {
			return i.Scan(fn)
		}
		return errUnsupportedShard
	}
	i.shardScans.Add(1)
	return s.ScanShard(shard, of, fn)
}

var errUnsupportedShard = errShard{}

type errShard struct{}

func (errShard) Error() string { return "txdb: underlying DB does not support sharded scans" }

// Passes returns the number of full Scan passes so far.
func (i *Instrumented) Passes() int { return int(i.passes.Load()) }

// ShardScans returns the number of ScanShard calls so far.
func (i *Instrumented) ShardScans() int { return int(i.shardScans.Load()) }

// Reset zeroes the counters.
func (i *Instrumented) Reset() { i.passes.Store(0); i.shardScans.Store(0) }
