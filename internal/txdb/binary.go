package txdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"negmine/internal/fault"
	"negmine/internal/item"
)

// Binary format
//
//	header:  magic "NMTX" | uvarint version (1) | uvarint txCount
//	record:  uvarint tidDelta (from previous TID, first from 0)
//	         uvarint itemCount
//	         itemCount × uvarint itemDelta (+1 from previous item, first raw)
//
// Delta coding exploits sorted itemsets and mostly-increasing TIDs; typical
// retail baskets encode in ~1.2 bytes per item.

const (
	magic         = "NMTX"
	formatVersion = 1
)

// headerSize is the fixed byte length of the version-1 header: the magic,
// one uvarint byte for the version, and the 8-byte fixed-width count.
const headerSize = len(magic) + 1 + 8

// Writer streams transactions into the binary format. Transactions must be
// written in non-decreasing TID order.
type Writer struct {
	w     *bufio.Writer
	enc   Encoder
	rec   []byte
	count int
	ws    io.WriteSeeker
	f     *os.File // set when the Writer owns the file (OpenAppend)
}

// NewWriter creates a Writer over ws. The transaction count is back-patched
// into the header on Close, so ws must support seeking (os.File does).
func NewWriter(ws io.WriteSeeker) (*Writer, error) {
	w := &Writer{w: bufio.NewWriterSize(ws, 1<<16), ws: ws}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic...)
	hdr = binary.AppendUvarint(hdr, formatVersion)
	// Fixed-width placeholder for the count so it can be patched in place.
	var fixed [8]byte
	hdr = append(hdr, fixed[:]...)
	if _, err := w.w.Write(hdr); err != nil {
		return nil, err
	}
	return w, nil
}

// Write appends one transaction.
func (w *Writer) Write(tx Transaction) error {
	rec, err := w.enc.AppendRecord(w.rec[:0], tx)
	if err != nil {
		return err
	}
	w.rec = rec
	if _, err := w.w.Write(rec); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of transactions written so far (including, for a
// Writer from OpenAppend, the transactions already in the file).
func (w *Writer) Count() int { return w.count }

// LastTID returns the TID of the most recently written transaction (0 when
// nothing has been written).
func (w *Writer) LastTID() int64 { return w.enc.LastTID() }

// Close flushes buffered data and back-patches the transaction count. A
// Writer from OpenAppend also closes its file.
func (w *Writer) Close() error {
	err := w.close()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (w *Writer) close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	// Patch count at offset len(magic)+1 (version byte is a single uvarint
	// byte for version 1).
	var fixed [8]byte
	binary.LittleEndian.PutUint64(fixed[:], uint64(w.count))
	if _, err := w.ws.Seek(int64(len(magic))+1, io.SeekStart); err != nil {
		return err
	}
	if _, err := w.ws.Write(fixed[:]); err != nil {
		return err
	}
	_, err := w.ws.Seek(0, io.SeekEnd)
	return err
}

// WriteFile writes all of db to path in the binary format. A ".gz" suffix
// selects transparent gzip compression.
func WriteFile(path string, db DB) error {
	if isGzipPath(path) {
		return writeFileGz(path, db)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeAll(f, db); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FileDB is a disk-resident transaction database in the binary format. Every
// Scan streams the file from the start; multiple concurrent scans each use
// their own *os.File via ScanShard.
type FileDB struct {
	path  string
	count int
}

// OpenFile validates the header of path and returns a FileDB. A ".gz"
// suffix selects transparent gzip decompression on every scan.
func OpenFile(path string) (*FileDB, error) {
	r, closer, err := openReader(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	count, err := readHeader(r)
	if err != nil {
		return nil, fmt.Errorf("txdb: %s: %w", path, err)
	}
	return &FileDB{path: path, count: count}, nil
}

func readHeader(r *bufio.Reader) (count int, err error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return 0, fmt.Errorf("reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return 0, fmt.Errorf("bad magic %q", m[:])
	}
	ver, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("reading version: %w", err)
	}
	if ver != formatVersion {
		return 0, fmt.Errorf("unsupported version %d", ver)
	}
	var fixed [8]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return 0, fmt.Errorf("reading count: %w", err)
	}
	return int(binary.LittleEndian.Uint64(fixed[:])), nil
}

// Count returns the number of transactions recorded in the header.
func (f *FileDB) Count() int { return f.count }

// Path returns the underlying file path.
func (f *FileDB) Path() string { return f.path }

// Scan streams every transaction from disk. The Items slice passed to fn is
// reused between calls; fn must Clone it to retain it.
func (f *FileDB) Scan(fn func(Transaction) error) error {
	return f.ScanShard(0, 1, fn)
}

// ScanShard streams the shard-th of `of` interleaved subsets. All bytes are
// still read (the format is not seekable per record), but decode work for
// foreign shards is skipped.
func (f *FileDB) ScanShard(shard, of int, fn func(Transaction) error) error {
	if of <= 0 || shard < 0 || shard >= of {
		return fmt.Errorf("txdb: bad shard %d/%d", shard, of)
	}
	r, closer, err := openReader(f.path)
	if err != nil {
		return err
	}
	defer closer.Close()
	if _, err := readHeader(r); err != nil {
		return err
	}
	faulty := fault.Active()
	var items item.Itemset
	tid := int64(0)
	for i := 0; i < f.count; i++ {
		if faulty {
			if err := fault.Hit(PointScan); err != nil {
				return fmt.Errorf("txdb: %s: record %d: %w", f.path, i, err)
			}
		}
		d, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("txdb: record %d: tid: %w", i, err)
		}
		tid += int64(d)
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("txdb: record %d: length: %w", i, err)
		}
		if n > 1<<24 {
			return fmt.Errorf("txdb: record %d: absurd item count %d", i, n)
		}
		mine := i%of == shard
		if cap(items) < int(n) {
			items = make(item.Itemset, n)
		}
		items = items[:n]
		prev := int64(-1)
		for j := 0; j < int(n); j++ {
			d, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("txdb: record %d: item %d: %w", i, j, err)
			}
			// Items are strictly increasing, so every delta from the
			// previous item (initially -1) must be ≥ 1; a zero delta means
			// a corrupt or hostile file.
			if d == 0 {
				return fmt.Errorf("txdb: record %d: item %d: zero delta (corrupt file)", i, j)
			}
			prev += int64(d)
			if prev > int64(^uint32(0)>>1) {
				return fmt.Errorf("txdb: record %d: item id overflow", i)
			}
			items[j] = item.Item(prev)
		}
		if mine {
			if err := fn(Transaction{TID: tid, Items: items}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reads an entire binary file into a MemDB.
func Load(path string) (*MemDB, error) {
	f, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	m := &MemDB{txs: make([]Transaction, 0, f.Count())}
	err = f.Scan(func(tx Transaction) error {
		m.Append(Transaction{TID: tx.TID, Items: tx.Items.Clone()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}
