package txdb

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"negmine/internal/item"
)

func writeTestFile(t *testing.T, path string, txs []Transaction) {
	t.Helper()
	db, err := NewMemDB(txs)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, path string) []Transaction {
	t.Helper()
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return m.Transactions()
}

func sameTxs(a, b []Transaction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].TID != b[i].TID || !a[i].Items.Equal(b[i].Items) {
			return false
		}
	}
	return true
}

func TestEncoderDecoderRoundTripAcrossFrames(t *testing.T) {
	txs := []Transaction{
		{TID: 3, Items: item.New(1, 5, 9)},
		{TID: 3, Items: item.New(2)},
		{TID: 10, Items: item.New(0, 1, 2, 3)},
		{TID: 11, Items: nil},
		{TID: 200000, Items: item.New(7, 70, 700000)},
	}
	// Encode each record into its own "frame" buffer; the stream state must
	// carry across the boundaries.
	var enc Encoder
	var frames [][]byte
	for _, tx := range txs {
		rec, err := enc.AppendRecord(nil, tx)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, rec)
	}
	var dec Decoder
	var got []Transaction
	for _, f := range frames {
		if _, err := dec.DecodeAll(f, func(tx Transaction) error {
			got = append(got, Transaction{TID: tx.TID, Items: tx.Items.Clone()})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !sameTxs(got, txs) {
		t.Fatalf("round trip mismatch:\ngot  %v\nwant %v", got, txs)
	}
	if dec.LastTID() != enc.LastTID() || enc.LastTID() != 200000 {
		t.Fatalf("TID state: enc %d dec %d, want 200000", enc.LastTID(), dec.LastTID())
	}
}

func TestEncoderRejectsBadTIDs(t *testing.T) {
	var enc Encoder
	if _, err := enc.AppendRecord(nil, Transaction{TID: 5, Items: item.New(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.AppendRecord(nil, Transaction{TID: 4, Items: item.New(1)}); err == nil {
		t.Fatal("out-of-order TID accepted")
	}
	if _, err := enc.AppendRecord(nil, Transaction{TID: -1, Items: item.New(1)}); err == nil {
		t.Fatal("negative TID accepted")
	}
	// State must be unchanged after the failures.
	if enc.LastTID() != 5 {
		t.Fatalf("LastTID = %d after rejected records, want 5", enc.LastTID())
	}
}

func TestDecoderRejectsCorruptInput(t *testing.T) {
	var enc Encoder
	rec, err := enc.AppendRecord(nil, Transaction{TID: 1, Items: item.New(2, 4)})
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"truncated":  rec[:len(rec)-1],
		"zero delta": {1, 2, 3, 0, 5},
	} {
		var dec Decoder
		n, err := dec.DecodeAll(data, func(Transaction) error { return nil })
		if err == nil {
			t.Errorf("%s: decoded %d records without error", name, n)
		}
	}
}

func TestOpenAppendExtendsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.nmtx")
	base := []Transaction{
		{TID: 1, Items: item.New(1, 2)},
		{TID: 2, Items: item.New(3)},
	}
	writeTestFile(t, path, base)

	w, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 || w.LastTID() != 2 {
		t.Fatalf("reopened state: count %d lastTID %d, want 2/2", w.Count(), w.LastTID())
	}
	more := []Transaction{
		{TID: 2, Items: item.New(9)},
		{TID: 7, Items: item.New(1, 9)},
	}
	for _, tx := range more {
		if err := w.Write(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got := readAll(t, path)
	want := append(append([]Transaction{}, base...), more...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after append:\ngot  %v\nwant %v", got, want)
	}
}

func TestOpenAppendRejectsOutOfOrderTID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.nmtx")
	writeTestFile(t, path, []Transaction{{TID: 10, Items: item.New(1)}})
	w, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Write(Transaction{TID: 9, Items: item.New(1)}); err == nil {
		t.Fatal("append accepted a TID below the file's last TID")
	}
}

func TestOpenAppendTruncatesTrailingGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.nmtx")
	base := []Transaction{{TID: 1, Items: item.New(1, 2)}}
	writeTestFile(t, path, base)
	// Simulate a torn append: garbage bytes past the last counted record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x01, 0x07}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Transaction{TID: 5, Items: item.New(8)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, path)
	want := append(append([]Transaction{}, base...), Transaction{TID: 5, Items: item.New(8)})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after torn-tail append:\ngot  %v\nwant %v", got, want)
	}
}

func TestOpenAppendCorruptBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.nmtx")
	writeTestFile(t, path, []Transaction{{TID: 1, Items: item.New(1, 2, 3)}})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file inside the only record: the header still claims one
	// transaction, so reopening for append must fail loudly.
	if err := os.WriteFile(path, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAppend(path); err == nil {
		t.Fatal("OpenAppend accepted a file with fewer records than its header claims")
	}
}

func TestOpenAppendRejectsGzip(t *testing.T) {
	_, err := OpenAppend(filepath.Join(t.TempDir(), "a.nmtx.gz"))
	if err == nil || !strings.Contains(err.Error(), "gzip") {
		t.Fatalf("err = %v, want gzip rejection", err)
	}
}
