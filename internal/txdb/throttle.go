package txdb

import "time"

// Throttled wraps a DB and charges a fixed time cost per transaction
// scanned, modeling the sequential-scan bandwidth of slow storage. The
// paper's experiments ran on a 1995 SPARCstation 5 with 32 MB of memory,
// where every mining pass was disk I/O; on a modern machine the same data
// sits in the page cache and scan cost nearly vanishes, hiding the pass
// count that the paper's Naive-vs-Better comparison is about. Throttling
// restores that regime without changing any result.
//
// The cost is charged once per scan as Count()·PerTx (a sequential read's
// time is determined by volume, not by per-record latency), and
// proportionally per shard for sharded scans.
type Throttled struct {
	DB
	// PerTx is the simulated scan cost per transaction.
	PerTx time.Duration
}

// Throttle wraps db with a per-transaction scan cost.
func Throttle(db DB, perTx time.Duration) *Throttled {
	return &Throttled{DB: db, PerTx: perTx}
}

// Scan charges the full-pass cost, then delegates.
func (t *Throttled) Scan(fn func(Transaction) error) error {
	time.Sleep(time.Duration(t.Count()) * t.PerTx)
	return t.DB.Scan(fn)
}

// ScanShard charges the shard's fraction of the pass cost, then delegates.
// Concurrent shard scans therefore model parallel streaming from
// independent spindles; a single-spindle model would serialize them.
func (t *Throttled) ScanShard(shard, of int, fn func(Transaction) error) error {
	s, ok := t.DB.(Sharder)
	if !ok {
		if of == 1 && shard == 0 {
			return t.Scan(fn)
		}
		return errUnsupportedShard
	}
	if of > 0 {
		time.Sleep(time.Duration(t.Count()/of) * t.PerTx)
	}
	return s.ScanShard(shard, of, fn)
}
