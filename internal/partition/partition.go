// Package partition implements the Partition algorithm of Savasere,
// Omiecinski & Navathe ("An Efficient Algorithm for Mining Association Rules
// in Large Databases", VLDB 1995) — the present paper's authors' own
// frequent-itemset miner, included both as a baseline backend and because
// the paper cites it as one of the usable step-1 algorithms.
//
// The algorithm makes exactly two passes over the database:
//
//	Phase I:  split the database into memory-sized partitions; mine each
//	          partition for locally large itemsets using vertical tidlist
//	          intersections (no rescanning within a partition).
//	Merge:    the union of locally large itemsets is a superset of the
//	          globally large itemsets (any globally large itemset is
//	          locally large in at least one partition).
//	Phase II: one more pass counts the merged candidates exactly.
//
// With a taxonomy attached, transactions are extended with ancestors and
// item+ancestor pairs are pruned, which makes Partition a drop-in
// generalized miner that matches package gen's output exactly.
package partition

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/fault"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// Failpoints (see internal/fault): PointPhase1 is evaluated before each
// partition is mined locally, PointPhase2 before the exact counting pass.
// Arming either with an error models a run killed mid-pass; with
// Options.CheckpointPath set, the next run resumes from the manifest.
const (
	PointPhase1 = "partition.phase1"
	PointPhase2 = "partition.phase2"
)

// Options configures a Partition run.
type Options struct {
	// MinSupport is the relative minimum support in (0, 1].
	MinSupport float64
	// NumPartitions is the number of database partitions (default 1; the
	// paper sizes partitions to fit main memory).
	NumPartitions int
	// MaxK caps the itemset size (0 = unlimited).
	MaxK int
	// Taxonomy, when non-nil, switches on generalized mining: transactions
	// are extended with ancestors and item+ancestor itemsets are pruned.
	Taxonomy *taxonomy.Taxonomy
	// CheckpointPath, when non-empty, makes the run crash-resumable: after
	// each completed phase-I partition a resume manifest is atomically
	// persisted there, a fresh run whose options match resumes from the
	// last completed partition, and the manifest is removed when Mine
	// succeeds. The result is identical to an uninterrupted run.
	CheckpointPath string
	// Count holds phase-II counting options. Count.Transform must be nil.
	Count count.Options
}

func (o Options) validate() error {
	if o.MinSupport <= 0 || o.MinSupport > 1 {
		return fmt.Errorf("partition: MinSupport = %v, want (0, 1]", o.MinSupport)
	}
	if o.NumPartitions < 0 {
		return fmt.Errorf("partition: NumPartitions = %d, want ≥ 0", o.NumPartitions)
	}
	if o.MaxK < 0 {
		return fmt.Errorf("partition: MaxK = %d, want ≥ 0", o.MaxK)
	}
	if o.Count.Transform != nil || o.Count.TransformInto != nil {
		return fmt.Errorf("partition: Count.Transform must be nil (set internally)")
	}
	return nil
}

// tidset is a sorted list of local transaction indices.
type tidset []int32

func intersect(a, b tidset) tidset {
	out := make(tidset, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Mine runs the two-phase Partition algorithm over db.
func Mine(db txdb.DB, opt Options) (*apriori.Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := db.Count()
	res := &apriori.Result{
		Table:    item.NewSupportTable(n),
		N:        n,
		MinCount: apriori.MinCount(opt.MinSupport, n),
	}
	if n == 0 {
		return res, nil
	}
	parts := opt.NumPartitions
	if parts <= 0 {
		parts = 1
	}
	if parts > n {
		parts = n
	}

	// With a memory budget configured, re-derive the partitioning from the
	// data: one cheap sizing pass, then raise the partition count until each
	// partition's phase-I footprint fits the budget. Narrowing is a pure
	// function of (db, options, budget total), so checkpointed runs resume
	// against the same partitioning.
	budget := opt.Count.Mem
	var dbBytes int64
	if budget.Total() > 0 {
		var err error
		if dbBytes, err = estimateDBBytes(db, opt.Taxonomy); err != nil {
			return nil, err
		}
		parts = narrowParts(parts, dbBytes, budget.Total())
		if parts > n {
			parts = n
		}
	}

	var transform func(item.Itemset) item.Itemset
	if opt.Taxonomy != nil {
		tax := opt.Taxonomy
		transform = func(s item.Itemset) item.Itemset { return tax.Extend(s) }
	}

	// Phase I: one pass streaming partitions; each partition is buffered
	// (it must fit in memory — the algorithm's premise), mined locally,
	// and released. Partitions are mutually independent, so with
	// Count.Parallelism > 1 and a range-scannable database they are mined
	// concurrently (the parallelization the original paper points out).
	// With a checkpoint armed, partitions completed by a previous killed
	// run are loaded from the manifest and skipped.
	global := make(map[item.Key]struct{})
	partSize := (n + parts - 1) / parts
	var ckpt *checkpoint
	if opt.CheckpointPath != "" {
		ckpt = newCheckpoint(opt.CheckpointPath, n, parts, opt)
		ckpt.load(global)
	}
	switch ranger, ok := db.(rangeScanner); {
	case ckpt.allDone():
		// Every partition was mined before the previous run died; the
		// merged set is already seeded from the manifest.
	case ok && opt.Count.Parallelism > 1:
		if err := phaseOneParallel(ranger, n, parts, partSize, opt, transform, global, ckpt, dbBytes); err != nil {
			return nil, err
		}
	default:
		led := newLedger(budget)
		defer led.release()
		buf := make([]item.Itemset, 0, partSize)
		p := 0
		flush := func() error {
			if len(buf) == 0 {
				return nil
			}
			skip := ckpt.done(p)
			defer func() { buf = buf[:0]; p++; led.release() }()
			if skip {
				return nil
			}
			if err := fault.Hit(PointPhase1); err != nil {
				return fmt.Errorf("partition %d: %w", p, err)
			}
			locallyLarge(buf, opt, global)
			return ckpt.complete(p, global)
		}
		err := db.Scan(func(tx txdb.Transaction) error {
			s := tx.Items
			if transform != nil {
				s = transform(s)
			} else {
				s = s.Clone()
			}
			cost := phase1Factor * txBytes(s.Len())
			if err := led.charge(cost); err != nil {
				// Adaptive narrowing: the up-front estimate undershot (or
				// the serving side is holding budget) — mine what is
				// buffered, which frees the ledger, and retry. Only without
				// a checkpoint: its resume contract needs the partition
				// boundaries the manifest fingerprinted.
				if ckpt != nil || len(buf) == 0 {
					return err
				}
				if ferr := flush(); ferr != nil {
					return ferr
				}
				if err := led.charge(cost); err != nil {
					return err
				}
			}
			buf = append(buf, s)
			if len(buf) >= partSize {
				return flush()
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := flush(); err != nil {
			return nil, err
		}
	}

	// Merge: group candidates by size.
	bySize := map[int][]item.Itemset{}
	maxK := 0
	for k := range global {
		s := k.Itemset()
		bySize[s.Len()] = append(bySize[s.Len()], s)
		if s.Len() > maxK {
			maxK = s.Len()
		}
	}
	groups := make([][]item.Itemset, 0, maxK)
	for k := 1; k <= maxK; k++ {
		g := bySize[k]
		sort.Slice(g, func(i, j int) bool { return g[i].Compare(g[j]) < 0 })
		groups = append(groups, g)
	}

	// Phase II: one pass exact counting of all candidates.
	if err := fault.Hit(PointPhase2); err != nil {
		return nil, err
	}
	cnt := opt.Count
	if opt.Taxonomy != nil {
		cnt.TransformInto = opt.Taxonomy.ExtendInto
		cnt.Tax = opt.Taxonomy
	}
	counts, err := count.Multi(db, groups, cnt)
	if err != nil {
		return nil, err
	}
	for gi, g := range groups {
		var level []item.CountedSet
		for i, s := range g {
			if counts[gi][i] >= res.MinCount {
				level = append(level, item.CountedSet{Set: s, Count: counts[gi][i]})
			}
		}
		if len(level) == 0 {
			break // L_k empty ⇒ all longer levels empty too
		}
		res.Levels = append(res.Levels, level)
		for _, cs := range level {
			res.Table.Put(cs.Set, cs.Count)
		}
	}
	ckpt.remove()
	return res, nil
}

// rangeScanner is satisfied by databases supporting contiguous range scans
// (txdb.MemDB); it enables parallel phase I.
type rangeScanner interface {
	txdb.DB
	ScanRange(lo, hi int, fn func(txdb.Transaction) error) error
}

// phaseOneParallel mines the partitions concurrently, each worker loading
// its contiguous range and merging locally large itemsets under a mutex.
// Partitions the checkpoint records as done are skipped entirely (the done
// set is snapshotted before the workers start; within one run no partition
// is dispatched twice, so the snapshot cannot go stale).
func phaseOneParallel(db rangeScanner, n, parts, partSize int, opt Options, transform func(item.Itemset) item.Itemset, global map[item.Key]struct{}, ckpt *checkpoint, dbBytes int64) error {
	budget := opt.Count.Mem
	workers := opt.Count.Parallelism
	if workers > parts {
		workers = parts
	}
	// Every worker holds one partition's phase-I footprint at a time; cap
	// the fleet so their combined footprints fit the budget.
	workers = maxWorkers(workers, parts, dbBytes, budget.Total())
	doneAtStart := make([]bool, parts)
	for p := range doneAtStart {
		doneAtStart[p] = ckpt.done(p)
	}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next atomic.Int64
		errs = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			led := newLedger(budget)
			defer led.release()
			for {
				p := int(next.Add(1)) - 1
				lo := p * partSize
				if lo >= n {
					return
				}
				if doneAtStart[p] {
					continue
				}
				if err := fault.Hit(PointPhase1); err != nil {
					errs[w] = fmt.Errorf("partition %d: %w", p, err)
					return
				}
				hi := lo + partSize
				if hi > n {
					hi = n
				}
				buf := make([]item.Itemset, 0, hi-lo)
				err := db.ScanRange(lo, hi, func(tx txdb.Transaction) error {
					s := tx.Items
					if transform != nil {
						s = transform(s)
					} else {
						s = s.Clone()
					}
					// Parallel ranges are fixed, so a failed charge cannot
					// flush early the way the sequential path does; it
					// aborts the worker (the checkpoint, if any, keeps
					// completed partitions).
					if err := led.charge(phase1Factor * txBytes(s.Len())); err != nil {
						return fmt.Errorf("partition %d: %w", p, err)
					}
					buf = append(buf, s)
					return nil
				})
				if err != nil {
					errs[w] = err
					return
				}
				local := make(map[item.Key]struct{})
				locallyLarge(buf, opt, local)
				mu.Lock()
				for k := range local {
					global[k] = struct{}{}
				}
				err = ckpt.complete(p, global)
				mu.Unlock()
				led.release()
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// LocallyLarge mines one in-memory partition — transactions already
// taxonomy-extended — and returns its locally large itemsets, sorted. This
// is phase I for a single partition, exported for internal/incr, where the
// sealed segments of a transaction log play the role of the algorithm's
// partitions and their local results are cached between refreshes.
func LocallyLarge(part []item.Itemset, minSupport float64, maxK int, tax *taxonomy.Taxonomy) []item.Itemset {
	local := make(map[item.Key]struct{})
	locallyLarge(part, Options{MinSupport: minSupport, MaxK: maxK, Taxonomy: tax}, local)
	out := make([]item.Itemset, 0, len(local))
	for k := range local {
		out = append(out, k.Itemset())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// locallyLarge mines one in-memory partition with vertical tidlists and adds
// every locally large itemset to global.
func locallyLarge(part []item.Itemset, opt Options, global map[item.Key]struct{}) {
	localMin := apriori.MinCount(opt.MinSupport, len(part))

	// Build vertical layout.
	tids := map[item.Item]tidset{}
	for i, s := range part {
		for _, x := range s {
			tids[x] = append(tids[x], int32(i))
		}
	}
	type entry struct {
		set  item.Itemset
		tids tidset
	}
	var prev []entry
	for x, tl := range tids {
		if len(tl) >= localMin {
			prev = append(prev, entry{set: item.New(x), tids: tl})
		}
	}
	sort.Slice(prev, func(i, j int) bool { return prev[i].set.Compare(prev[j].set) < 0 })
	for _, e := range prev {
		global[e.set.Key()] = struct{}{}
	}

	for k := 2; len(prev) > 1 && (opt.MaxK == 0 || k <= opt.MaxK); k++ {
		prevKeys := make(map[item.Key]struct{}, len(prev))
		for _, e := range prev {
			prevKeys[e.set.Key()] = struct{}{}
		}
		var next []entry
		for i := 0; i < len(prev); i++ {
			for j := i + 1; j < len(prev); j++ {
				if !samePrefix(prev[i].set, prev[j].set, k-2) {
					break
				}
				cand := prev[i].set.With(prev[j].set[k-2])
				if opt.Taxonomy != nil && hasAncestorPair(cand, opt.Taxonomy) {
					continue
				}
				if !allSubsetsLarge(cand, prevKeys) {
					continue
				}
				tl := intersect(prev[i].tids, prev[j].tids)
				if len(tl) >= localMin {
					next = append(next, entry{set: cand, tids: tl})
				}
			}
		}
		for _, e := range next {
			global[e.set.Key()] = struct{}{}
		}
		prev = next
	}
}

func samePrefix(a, b item.Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsLarge(cand item.Itemset, prev map[item.Key]struct{}) bool {
	ok := true
	cand.Subsets(cand.Len()-1, func(sub item.Itemset) {
		if !ok {
			return
		}
		if _, found := prev[sub.Key()]; !found {
			ok = false
		}
	})
	return ok
}

func hasAncestorPair(s item.Itemset, tax *taxonomy.Taxonomy) bool {
	for i := 0; i < s.Len(); i++ {
		for j := 0; j < s.Len(); j++ {
			if i != j && tax.IsAncestor(s[i], s[j]) {
				return true
			}
		}
	}
	return false
}
