package partition

import (
	"errors"
	"math"
	"testing"

	"negmine/internal/count"
	"negmine/internal/fault"
	"negmine/internal/govern"
)

// neverFire arms a failpoint purely as a hit counter: the trigger is an
// evaluation number no test reaches, so the point counts partitions mined
// (every phase-I partition evaluates PointPhase1) without injecting.
func neverFire(t *testing.T, name string) {
	t.Helper()
	t.Cleanup(fault.Enable(name, fault.Error("never"), fault.OnHit(math.MaxInt32)))
}

// TestBudgetedMiningMatchesUnlimited is the acceptance check for
// memory-bounded mining: under a budget a fraction of the data size, the
// run must narrow its partitioning to fit, never reserve past the budget,
// and still produce exactly the unlimited result.
func TestBudgetedMiningMatchesUnlimited(t *testing.T) {
	db := randomDB(21, 300, 15, 6)
	want, err := Mine(db, Options{MinSupport: 0.08, NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}

	dbBytes, err := estimateDBBytes(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	mem := govern.NewBudget(dbBytes / 2) // whole DB cannot be buffered at once
	neverFire(t, PointPhase1)
	got, err := Mine(db, Options{MinSupport: 0.08, NumPartitions: 2, Count: count.Options{Mem: mem}})
	if err != nil {
		t.Fatal(err)
	}

	w, g := asMap(want), asMap(got)
	if len(w) != len(g) {
		t.Fatalf("budgeted run found %d itemsets, unlimited %d", len(g), len(w))
	}
	for k, c := range w {
		if g[k] != c {
			t.Fatalf("%v = %d, want %d", k.Itemset(), g[k], c)
		}
	}
	if mined := fault.Hits(PointPhase1); mined <= 2 {
		t.Fatalf("budget %d over %d data bytes mined %d partitions, want narrowing past the configured 2",
			mem.Total(), dbBytes, mined)
	}
	if hw := mem.HighWater(); hw == 0 || hw > mem.Total() {
		t.Fatalf("high water %d, want in (0, %d]", hw, mem.Total())
	}
	if mem.InUse() != 0 {
		t.Fatalf("budget leaked: %d bytes still in use", mem.InUse())
	}
}

// TestBudgetedParallelMatchesUnlimited runs the same check through the
// parallel phase-I path, which must cap its worker fleet to fit the budget.
func TestBudgetedParallelMatchesUnlimited(t *testing.T) {
	db := randomDB(22, 400, 15, 6)
	want, err := Mine(db, Options{MinSupport: 0.08, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}

	dbBytes, err := estimateDBBytes(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	mem := govern.NewBudget(2 * dbBytes) // room for ~two concurrent partitions of four
	got, err := Mine(db, Options{MinSupport: 0.08, NumPartitions: 4,
		Count: count.Options{Mem: mem, Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}

	w, g := asMap(want), asMap(got)
	if len(w) != len(g) {
		t.Fatalf("budgeted run found %d itemsets, unlimited %d", len(g), len(w))
	}
	for k, c := range w {
		if g[k] != c {
			t.Fatalf("%v = %d, want %d", k.Itemset(), g[k], c)
		}
	}
	if hw := mem.HighWater(); hw == 0 || hw > mem.Total() {
		t.Fatalf("high water %d, want in (0, %d]", hw, mem.Total())
	}
	if mem.InUse() != 0 {
		t.Fatalf("budget leaked: %d bytes still in use", mem.InUse())
	}
}

// TestBudgetFailpointForcesEarlyFlush injects a single budget denial
// mid-scan and expects the sequential path to flush the partition early —
// adaptive narrowing — instead of failing, with an unchanged result.
func TestBudgetFailpointForcesEarlyFlush(t *testing.T) {
	db := randomDB(23, 3000, 20, 12)
	want, err := Mine(db, Options{MinSupport: 0.05, NumPartitions: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Unlimited budget: only the failpoint can deny. The sequential ledger
	// reserves a fresh chunk roughly every 256 KiB of buffered data, so the
	// second reservation lands mid-partition with a non-empty buffer.
	mem := govern.NewBudget(0)
	neverFire(t, PointPhase1)
	defer fault.Enable(govern.PointBudget, fault.Error("injected oom"), fault.OnHit(2))()
	got, err := Mine(db, Options{MinSupport: 0.05, NumPartitions: 1, Count: count.Options{Mem: mem}})
	if err != nil {
		t.Fatal(err)
	}

	w, g := asMap(want), asMap(got)
	if len(w) != len(g) {
		t.Fatalf("early-flush run found %d itemsets, unlimited %d", len(g), len(w))
	}
	for k, c := range w {
		if g[k] != c {
			t.Fatalf("%v = %d, want %d", k.Itemset(), g[k], c)
		}
	}
	if mem.Denials() == 0 {
		t.Fatal("injected denial not recorded")
	}
	if mined := fault.Hits(PointPhase1); mined < 2 {
		t.Fatalf("mined %d partitions, want ≥ 2 (early flush of the single configured partition)", mined)
	}
}

// TestBudgetedCheckpointResume proves narrowing is deterministic: a
// budgeted run killed mid-phase-I resumes against the same (narrowed)
// partitioning and completes with the unlimited result.
func TestBudgetedCheckpointResume(t *testing.T) {
	db := randomDB(24, 300, 15, 6)
	want, err := Mine(db, Options{MinSupport: 0.08, NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}

	dbBytes, err := estimateDBBytes(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/resume.json"
	opt := Options{MinSupport: 0.08, NumPartitions: 2, CheckpointPath: path,
		Count: count.Options{Mem: govern.NewBudget(dbBytes / 2)}}

	// First run dies on its third partition.
	disarm := fault.Enable(PointPhase1, fault.Error("killed"), fault.OnHit(3))
	_, err = Mine(db, opt)
	disarm()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("first run: %v, want injected kill", err)
	}

	// The resumed run recomputes the same narrowed partitioning (else the
	// manifest fingerprint would mismatch and completed work be redone —
	// still correct, but the skip proves determinism).
	neverFire(t, PointPhase1)
	opt.Count.Mem = govern.NewBudget(dbBytes / 2)
	got, err := Mine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	w, g := asMap(want), asMap(got)
	if len(w) != len(g) {
		t.Fatalf("resumed run found %d itemsets, unlimited %d", len(g), len(w))
	}
	for k, c := range w {
		if g[k] != c {
			t.Fatalf("%v = %d, want %d", k.Itemset(), g[k], c)
		}
	}
	total := narrowParts(2, dbBytes, dbBytes/2)
	if resumed := int(fault.Hits(PointPhase1)); resumed >= total {
		t.Fatalf("resume re-evaluated %d partitions of %d: completed partitions were not skipped", resumed, total)
	}
}

// TestChargeOverImpossibleBudget: a budget smaller than a single
// transaction's footprint must fail cleanly with ErrOverBudget.
func TestChargeOverImpossibleBudget(t *testing.T) {
	db := randomDB(25, 50, 10, 6)
	mem := govern.NewBudget(8)
	_, err := Mine(db, Options{MinSupport: 0.1, NumPartitions: 1, Count: count.Options{Mem: mem}})
	if !errors.Is(err, govern.ErrOverBudget) {
		t.Fatalf("impossible budget: %v, want ErrOverBudget", err)
	}
	if mem.InUse() != 0 {
		t.Fatalf("failed run leaked %d bytes", mem.InUse())
	}
}
