package partition

import (
	"math/rand"
	"testing"

	"negmine/internal/apriori"
	"negmine/internal/count"
	"negmine/internal/gen"
	"negmine/internal/item"
	"negmine/internal/stats"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

func randomDB(seed int64, nTx, universe, maxLen int) *txdb.MemDB {
	r := rand.New(rand.NewSource(seed))
	db := &txdb.MemDB{}
	for i := 0; i < nTx; i++ {
		n := 1 + r.Intn(maxLen)
		raw := make([]item.Item, n)
		for j := range raw {
			raw[j] = item.Item(r.Intn(universe))
		}
		db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
	}
	return db
}

func asMap(res *apriori.Result) map[item.Key]int {
	out := map[item.Key]int{}
	for _, cs := range res.Large() {
		out[cs.Set.Key()] = cs.Count
	}
	return out
}

func TestMatchesApriori(t *testing.T) {
	for _, parts := range []int{1, 3, 7, 1000} {
		for trial := int64(1); trial <= 3; trial++ {
			db := randomDB(trial, 150, 15, 6)
			want, err := apriori.Mine(db, apriori.Options{MinSupport: 0.08})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Mine(db, Options{MinSupport: 0.08, NumPartitions: parts})
			if err != nil {
				t.Fatal(err)
			}
			w, g := asMap(want), asMap(got)
			if len(w) != len(g) {
				t.Fatalf("parts=%d trial=%d: %d itemsets vs apriori's %d", parts, trial, len(g), len(w))
			}
			for k, c := range w {
				if g[k] != c {
					t.Fatalf("parts=%d trial=%d: %v = %d, want %d", parts, trial, k.Itemset(), g[k], c)
				}
			}
		}
	}
}

func TestMatchesGeneralized(t *testing.T) {
	tax, err := taxonomy.Generate(taxonomy.GenSpec{Leaves: 20, Roots: 3, Fanout: 3}, stats.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	db := &txdb.MemDB{}
	lv := tax.Leaves()
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(4)
		raw := make([]item.Item, n)
		for j := range raw {
			raw[j] = lv[r.Intn(len(lv))]
		}
		db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
	}
	want, err := gen.Mine(db, tax, gen.Options{MinSupport: 0.06, Algorithm: gen.Cumulate})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(db, Options{MinSupport: 0.06, NumPartitions: 4, Taxonomy: tax})
	if err != nil {
		t.Fatal(err)
	}
	w, g := asMap(want), asMap(got)
	if len(w) != len(g) {
		t.Fatalf("generalized partition mined %d itemsets, want %d", len(g), len(w))
	}
	for k, c := range w {
		if g[k] != c {
			t.Fatalf("generalized partition: %v = %d, want %d", k.Itemset(), g[k], c)
		}
	}
}

// TestBackendsMatch pins counting-backend equivalence for the phase-II
// global count: flat and generalized partition mining must return identical
// supports under the hash-tree and vertical-bitmap engines.
func TestBackendsMatch(t *testing.T) {
	flat := randomDB(31, 200, 15, 6)
	tax, err := taxonomy.Generate(taxonomy.GenSpec{Leaves: 20, Roots: 3, Fanout: 3}, stats.NewSource(6))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	lv := tax.Leaves()
	leafy := &txdb.MemDB{}
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(4)
		raw := make([]item.Item, n)
		for j := range raw {
			raw[j] = lv[r.Intn(len(lv))]
		}
		leafy.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
	}
	cases := []struct {
		name string
		db   *txdb.MemDB
		tax  *taxonomy.Taxonomy
	}{
		{"flat", flat, nil},
		{"generalized", leafy, tax},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var base map[item.Key]int
			for _, backend := range []count.Backend{count.BackendHashTree, count.BackendBitmap} {
				opt := Options{MinSupport: 0.06, NumPartitions: 4, Taxonomy: tc.tax}
				opt.Count.Backend = backend
				res, err := Mine(tc.db, opt)
				if err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
				m := asMap(res)
				if base == nil {
					base = m
					continue
				}
				if len(m) != len(base) {
					t.Fatalf("%v: %d itemsets, want %d", backend, len(m), len(base))
				}
				for k, c := range base {
					if m[k] != c {
						t.Fatalf("%v: %v = %d, want %d", backend, k.Itemset(), m[k], c)
					}
				}
			}
		})
	}
}

func TestExactlyTwoPasses(t *testing.T) {
	db := txdb.Instrument(randomDB(5, 300, 20, 6))
	_, err := Mine(db, Options{MinSupport: 0.05, NumPartitions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Passes(); got != 2 {
		t.Errorf("Partition used %d passes, want 2", got)
	}
}

func TestEmptyAndEdge(t *testing.T) {
	res, err := Mine(txdb.FromItemsets(), Options{MinSupport: 0.5})
	if err != nil || len(res.Levels) != 0 {
		t.Errorf("empty db: %v, levels=%d", err, len(res.Levels))
	}
	// Single transaction, single partition bigger than db.
	res, err = Mine(txdb.FromItemsets([]item.Item{1, 2}), Options{MinSupport: 1, NumPartitions: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Table.Count(item.New(1, 2)); got != 1 {
		t.Errorf("support({1,2}) = %d", got)
	}
}

func TestValidation(t *testing.T) {
	db := txdb.FromItemsets([]item.Item{1})
	for i, opt := range []Options{
		{MinSupport: 0},
		{MinSupport: 1.2},
		{MinSupport: 0.5, NumPartitions: -1},
		{MinSupport: 0.5, MaxK: -2},
		{MinSupport: 0.5, Count: count.Options{Transform: func(s item.Itemset) item.Itemset { return s }}},
	} {
		if _, err := Mine(db, opt); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestMaxK(t *testing.T) {
	db := randomDB(6, 100, 8, 6)
	res, err := Mine(db, Options{MinSupport: 0.1, NumPartitions: 3, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range res.Large() {
		if cs.Set.Len() > 2 {
			t.Errorf("MaxK=2 produced %v", cs.Set)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := tidset{1, 3, 5, 7}
	b := tidset{3, 4, 5, 8}
	got := intersect(a, b)
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("intersect = %v", got)
	}
	if out := intersect(a, nil); len(out) != 0 {
		t.Errorf("intersect with empty = %v", out)
	}
}

func TestParallelPhaseOneMatches(t *testing.T) {
	db := randomDB(21, 600, 25, 7)
	seq, err := Mine(db, Options{MinSupport: 0.04, NumPartitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(db, Options{
		MinSupport: 0.04, NumPartitions: 6,
		Count: count.Options{Parallelism: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := asMap(seq), asMap(par)
	if len(a) != len(b) {
		t.Fatalf("parallel phase I mined %d itemsets, sequential %d", len(b), len(a))
	}
	for k, c := range a {
		if b[k] != c {
			t.Fatalf("parallel mismatch on %v: %d vs %d", k.Itemset(), b[k], c)
		}
	}
}
