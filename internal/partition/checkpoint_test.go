package partition

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"negmine/internal/apriori"
	"negmine/internal/fault"
	"negmine/internal/item"
)

// serialize renders a mining result as deterministic JSON so two runs can
// be compared byte-for-byte, the way a written report would be.
func serialize(t *testing.T, res *apriori.Result) []byte {
	t.Helper()
	type rec struct {
		Set   []item.Item `json:"set"`
		Count int         `json:"count"`
	}
	var recs []rec
	for _, level := range res.Levels {
		for _, cs := range level {
			recs = append(recs, rec{Set: cs.Set, Count: cs.Count})
		}
	}
	out, err := json.MarshalIndent(recs, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestKilledRunResumesFromCheckpoint is the acceptance test for crash
// recovery: a run killed by a failpoint mid-pass must resume from its
// manifest (not restart from scratch) and produce a byte-identical result.
func TestKilledRunResumesFromCheckpoint(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		db := randomDB(11, 200, 18, 6)
		manifest := filepath.Join(t.TempDir(), "resume.json")
		opt := Options{MinSupport: 0.05, NumPartitions: 5, CheckpointPath: manifest}
		opt.Count.Parallelism = parallelism

		want, err := Mine(db, Options{MinSupport: 0.05, NumPartitions: 5})
		if err != nil {
			t.Fatal(err)
		}
		wantBytes := serialize(t, want)

		// Kill the run on its third partition.
		off := fault.Enable(PointPhase1, fault.Error("killed"), fault.OnHit(3))
		_, err = Mine(db, opt)
		off()
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("parallelism=%d: interrupted Mine = %v, want injected error", parallelism, err)
		}
		if _, err := os.Stat(manifest); err != nil {
			t.Fatalf("parallelism=%d: no manifest after kill: %v", parallelism, err)
		}

		// Resume with the fault cleared: completed partitions are skipped.
		got, err := Mine(db, opt)
		if err != nil {
			t.Fatalf("parallelism=%d: resumed Mine: %v", parallelism, err)
		}
		if gotBytes := serialize(t, got); !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("parallelism=%d: resumed result differs from uninterrupted run:\n got %s\nwant %s",
				parallelism, gotBytes, wantBytes)
		}
		if _, err := os.Stat(manifest); !os.IsNotExist(err) {
			t.Fatalf("parallelism=%d: manifest not removed after success: %v", parallelism, err)
		}
	}
}

// TestResumeSkipsCompletedPartitions proves the resumed run actually skips
// work: after a kill on partition 3 of 5, the resumed run's phase-I
// failpoint sees only the remaining partitions.
func TestResumeSkipsCompletedPartitions(t *testing.T) {
	db := randomDB(12, 150, 15, 5)
	manifest := filepath.Join(t.TempDir(), "resume.json")
	opt := Options{MinSupport: 0.05, NumPartitions: 5, CheckpointPath: manifest}

	off := fault.Enable(PointPhase1, fault.Error("killed"), fault.OnHit(3))
	if _, err := Mine(db, opt); err == nil {
		t.Fatal("interrupted Mine succeeded")
	}
	off()

	// Count phase-I entries on resume with a never-firing probe.
	defer fault.Enable(PointPhase1, fault.Error("probe"), fault.OnHit(1<<30))()
	if _, err := Mine(db, opt); err != nil {
		t.Fatalf("resumed Mine: %v", err)
	}
	// 2 partitions completed before the kill, so the resume mines 3.
	if got := fault.Hits(PointPhase1); got != 3 {
		t.Fatalf("resume mined %d partitions, want 3", got)
	}
}

// TestCheckpointIgnoresMismatchedManifest: a manifest written under
// different options (or data) must be ignored, not resumed from.
func TestCheckpointIgnoresMismatchedManifest(t *testing.T) {
	db := randomDB(13, 120, 12, 5)
	manifest := filepath.Join(t.TempDir(), "resume.json")

	off := fault.Enable(PointPhase1, fault.Error("killed"), fault.OnHit(2))
	_, err := Mine(db, Options{MinSupport: 0.05, NumPartitions: 4, CheckpointPath: manifest})
	off()
	if err == nil {
		t.Fatal("interrupted Mine succeeded")
	}

	// Same path, different thresholds: must start from scratch and agree
	// with a checkpoint-free run.
	want, err := Mine(db, Options{MinSupport: 0.1, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(db, Options{MinSupport: 0.1, NumPartitions: 4, CheckpointPath: manifest})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, got), serialize(t, want)) {
		t.Fatal("run with stale-fingerprint manifest differs from clean run")
	}
}

// TestCorruptManifestIgnored: garbage at the checkpoint path must not
// poison the run.
func TestCorruptManifestIgnored(t *testing.T) {
	db := randomDB(14, 100, 10, 4)
	manifest := filepath.Join(t.TempDir(), "resume.json")
	if err := os.WriteFile(manifest, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := Mine(db, Options{MinSupport: 0.08, NumPartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(db, Options{MinSupport: 0.08, NumPartitions: 3, CheckpointPath: manifest})
	if err != nil {
		t.Fatalf("Mine with corrupt manifest: %v", err)
	}
	if !bytes.Equal(serialize(t, got), serialize(t, want)) {
		t.Fatal("corrupt manifest changed the result")
	}
}

// TestPhase2FaultThenResume: a kill between phases leaves all partitions
// checkpointed; the resumed run skips phase I entirely.
func TestPhase2FaultThenResume(t *testing.T) {
	db := randomDB(15, 150, 15, 5)
	manifest := filepath.Join(t.TempDir(), "resume.json")
	opt := Options{MinSupport: 0.05, NumPartitions: 4, CheckpointPath: manifest}

	want, err := Mine(db, Options{MinSupport: 0.05, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}

	off := fault.Enable(PointPhase2, fault.Error("killed before phase II"))
	if _, err := Mine(db, opt); err == nil {
		t.Fatal("interrupted Mine succeeded")
	}
	off()

	// Probe phase I on resume: it must never be entered.
	defer fault.Enable(PointPhase1, fault.Panic("phase I re-entered on resume"))()
	got, err := Mine(db, opt)
	if err != nil {
		t.Fatalf("resumed Mine: %v", err)
	}
	if !bytes.Equal(serialize(t, got), serialize(t, want)) {
		t.Fatal("phase-II resume differs from uninterrupted run")
	}
}
