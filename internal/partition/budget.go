package partition

import (
	"errors"

	"negmine/internal/fault"
	"negmine/internal/govern"
	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// Phase I holds, per partition, the buffered (extended) transactions plus
// the vertical tidlists and intermediate candidate entries built from them;
// the latter two together cost about as much again as the buffer twice
// over, so a partition's footprint is charged at this multiple of its raw
// transaction bytes.
const phase1Factor = 3

// txBytes is the charged resident cost of one buffered transaction of n
// items: slice header plus per-item storage, rounded up generously — the
// ledger tracks intent, and over-charging degrades early rather than late.
func txBytes(n int) int64 { return 48 + 8*int64(n) }

// estimateDBBytes scans db once and sums the buffered cost of every
// transaction after taxonomy extension — the number partition narrowing
// sizes partitions from. The extra pass is only paid when a memory budget
// is configured, where bounded memory is worth one more sequential read.
func estimateDBBytes(db txdb.DB, tax *taxonomy.Taxonomy) (int64, error) {
	var total int64
	buf := make([]item.Item, 0, 64)
	err := db.Scan(func(tx txdb.Transaction) error {
		n := tx.Items.Len()
		if tax != nil {
			s := tax.ExtendInto(buf[:0], tx.Items)
			n = s.Len()
			buf = s[:0]
		}
		total += txBytes(n)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// narrowParts raises the partition count until one partition's phase-I
// footprint (phase1Factor × its share of dbBytes) fits the budget. It sizes
// against Budget.Total(), not Available(): the result must be a pure
// function of (database, options, budget flag) so a checkpointed run killed
// and resumed recomputes the identical partitioning and the manifest
// fingerprint still matches.
func narrowParts(parts int, dbBytes, total int64) int {
	if total <= 0 || dbBytes <= 0 {
		return parts
	}
	// Partitions are cut by transaction count while this sizes by bytes, so
	// a partition of fatter-than-average transactions overshoots its share;
	// budget each partition only 4/5 of an exact fit to absorb the skew.
	per := total / phase1Factor * 4 / 5
	if per <= 0 {
		per = 1
	}
	if needed := int((dbBytes + per - 1) / per); needed > parts {
		return needed
	}
	return parts
}

// maxWorkers caps parallel phase-I workers so that `workers` concurrent
// partition footprints fit the budget together.
func maxWorkers(workers, parts int, dbBytes, total int64) int {
	if total <= 0 || dbBytes <= 0 || parts <= 0 {
		return workers
	}
	perPart := phase1Factor * dbBytes / int64(parts)
	if perPart <= 0 {
		perPart = 1
	}
	if cap := int(total / perPart); cap < workers {
		workers = cap
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ledgerChunk is the granularity ledgers reserve budget bytes at, keeping
// the per-transaction hot path off the shared budget atomics.
const ledgerChunk = 256 << 10

// ledger charges a run's buffered bytes against the shared memory budget in
// coarse chunks. A nil ledger (no budget configured) charges nothing. Not
// safe for concurrent use; parallel workers each own one.
type ledger struct {
	b        *govern.Budget
	chunk    int64 // reservation granularity
	used     int64 // bytes charged by the current partition
	reserved int64 // bytes actually reserved from the budget
}

// newLedger returns a ledger over b, or nil when b is nil so that the
// no-budget path stays free. The chunk shrinks with small budgets so coarse
// reservations don't reject work a tight budget could still fit.
func newLedger(b *govern.Budget) *ledger {
	if b == nil {
		return nil
	}
	chunk := int64(ledgerChunk)
	if total := b.Total(); total > 0 && chunk > total/16 {
		chunk = total / 16
		if chunk < 1 {
			chunk = 1
		}
	}
	return &ledger{b: b, chunk: chunk}
}

// charge claims n more bytes, reserving another chunk from the budget when
// the charged total outgrows what is reserved. A chunk that no longer fits
// is retried at the exact missing amount before giving up. On failure the
// charge is rolled back and the budget error (wrapping govern.ErrOverBudget)
// returned; the caller decides whether to flush early or give up.
func (l *ledger) charge(n int64) error {
	if l == nil {
		return nil
	}
	l.used += n
	for l.used > l.reserved {
		need := l.used - l.reserved
		grab := l.chunk
		if grab < need {
			grab = need
		}
		err := l.b.Reserve(grab)
		// Retry an over-sized chunk at the exact missing amount — but not
		// an injected denial, which must deny no matter the size.
		if err != nil && grab > need && !errors.Is(err, fault.ErrInjected) {
			grab = need
			err = l.b.Reserve(grab)
		}
		if err != nil {
			l.used -= n
			return err
		}
		l.reserved += grab
	}
	return nil
}

// release returns everything the ledger holds to the budget (end of a
// partition: buffer, tidlists and entries are all dead).
func (l *ledger) release() {
	if l == nil {
		return
	}
	l.b.Release(l.reserved)
	l.used, l.reserved = 0, 0
}
