package partition

import (
	"encoding/json"
	"io"
	"os"
	"sort"

	"negmine/internal/atomicio"
	"negmine/internal/item"
)

// The Partition algorithm is the multi-pass, I/O-bound regime the paper
// lives in, which makes it the natural unit for crash recovery: every
// phase-I partition is an independent, memory-sized piece of work, so a
// killed run only ever loses the partition it was inside. After each
// completed partition the miner persists a small resume manifest (written
// atomically — see internal/atomicio); a restarted run with the same
// options skips every partition the manifest records and reproduces the
// exact result an uninterrupted run would have produced, because the
// merged locally-large set is a set union and phase II is deterministic.

// manifestVersion guards the on-disk layout.
const manifestVersion = 1

// manifest is the checkpoint document. The fingerprint fields (N through
// TaxSize) bind the manifest to one specific (database, options) pair: a
// mismatch on load means the input changed and the manifest is ignored.
type manifest struct {
	Version    int     `json:"version"`
	N          int     `json:"n"`
	Partitions int     `json:"partitions"`
	MinSupport float64 `json:"minSupport"`
	MaxK       int     `json:"maxK"`
	TaxSize    int     `json:"taxSize"`
	// Done[p] records that partition p's locally large itemsets are fully
	// merged into Itemsets.
	Done []bool `json:"done"`
	// Itemsets is the union of locally large itemsets over all completed
	// partitions, sorted for deterministic manifest bytes.
	Itemsets [][]item.Item `json:"itemsets"`
}

// checkpoint binds a manifest to its path. A nil *checkpoint is a valid
// "checkpointing off" value; all methods tolerate it.
type checkpoint struct {
	path string
	m    manifest
}

// newCheckpoint builds the empty manifest for this run's fingerprint.
func newCheckpoint(path string, n, parts int, opt Options) *checkpoint {
	taxSize := 0
	if opt.Taxonomy != nil {
		taxSize = opt.Taxonomy.Size()
	}
	return &checkpoint{path: path, m: manifest{
		Version:    manifestVersion,
		N:          n,
		Partitions: parts,
		MinSupport: opt.MinSupport,
		MaxK:       opt.MaxK,
		TaxSize:    taxSize,
		Done:       make([]bool, parts),
	}}
}

// load merges a previously saved manifest into the run: completed
// partitions are marked done and their itemsets seeded into global. A
// missing, corrupt, or fingerprint-mismatched manifest is silently ignored
// — the run simply starts from scratch, which is always correct.
func (c *checkpoint) load(global map[item.Key]struct{}) {
	data, err := os.ReadFile(c.path)
	if err != nil {
		return
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return
	}
	if m.Version != c.m.Version || m.N != c.m.N || m.Partitions != c.m.Partitions ||
		m.MinSupport != c.m.MinSupport || m.MaxK != c.m.MaxK ||
		m.TaxSize != c.m.TaxSize || len(m.Done) != c.m.Partitions {
		return
	}
	c.m.Done = m.Done
	for _, s := range m.Itemsets {
		global[item.New(s...).Key()] = struct{}{}
	}
}

// done reports whether partition p completed in a previous run.
func (c *checkpoint) done(p int) bool { return c != nil && c.m.Done[p] }

// allDone reports whether every partition is already mined (phase I can be
// skipped entirely on resume).
func (c *checkpoint) allDone() bool {
	if c == nil {
		return false
	}
	for _, d := range c.m.Done {
		if !d {
			return false
		}
	}
	return true
}

// complete marks partition p done and atomically persists the manifest with
// the current merged set. Callers on the parallel path serialize through
// the merge mutex, so c is never written concurrently.
func (c *checkpoint) complete(p int, global map[item.Key]struct{}) error {
	if c == nil {
		return nil
	}
	c.m.Done[p] = true
	c.m.Itemsets = c.m.Itemsets[:0]
	for k := range global {
		c.m.Itemsets = append(c.m.Itemsets, k.Itemset())
	}
	sort.Slice(c.m.Itemsets, func(i, j int) bool {
		return item.Itemset(c.m.Itemsets[i]).Compare(c.m.Itemsets[j]) < 0
	})
	return atomicio.WriteFile(c.path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(c.m)
	})
}

// remove deletes the manifest after a fully successful run, so a later run
// over fresh data does not resume from stale state.
func (c *checkpoint) remove() {
	if c != nil {
		os.Remove(c.path)
	}
}
