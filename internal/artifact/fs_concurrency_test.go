package artifact

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFSConcurrentProducerAndFollowers drives the replica-cluster access
// pattern: one producer handle commits generations (with retention GC
// evicting old ones) while two independently opened follower handles — the
// moral equivalent of replica daemons on the same directory — concurrently
// poll Latest, List and re-read artifact bytes. Invariants:
//
//   - every Get a follower completes yields exactly the committed bytes
//     (size and CRC-32C match the Info it was listed under);
//   - Latest never goes backwards from any single follower's viewpoint;
//   - the only tolerated failure is ErrNotFound / a vanished file for a
//     generation that retention GC evicted between list and read.
func TestFSConcurrentProducerAndFollowers(t *testing.T) {
	dir := t.TempDir()
	producer, err := OpenFS(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Followers are opened before production starts — the store supports one
	// producer and many readers, and reader handles follow via the manifest,
	// not by re-opening (OpenFS reconciliation is the producer's job).
	followers := make([]*FS, 2)
	for i := range followers {
		if followers[i], err = OpenFS(dir, 0); err != nil {
			t.Fatal(err)
		}
	}

	const gens = 60
	payload := func(gen uint64) string {
		return fmt.Sprintf("generation %d payload %d", gen, gen*gen)
	}

	var produced atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < gens; i++ {
			info, err := producer.Put("soak", func(gen uint64, w io.Writer) error {
				_, err := io.WriteString(w, payload(gen))
				return err
			})
			if err != nil {
				t.Errorf("Put %d: %v", i, err)
				return
			}
			produced.Store(info.Generation)
		}
	}()

	for fi, f := range followers {
		wg.Add(1)
		go func(fi int, f *FS) {
			defer wg.Done()
			var lastSeen uint64
			reads := 0
			for produced.Load() < gens {
				latest, err := f.Latest()
				if errors.Is(err, ErrEmpty) {
					continue
				}
				if err != nil {
					t.Errorf("follower %d: Latest: %v", fi, err)
					return
				}
				if latest.Generation < lastSeen {
					t.Errorf("follower %d: Latest went backwards: %d after %d",
						fi, latest.Generation, lastSeen)
					return
				}
				lastSeen = latest.Generation

				list, err := f.List()
				if err != nil {
					t.Errorf("follower %d: List: %v", fi, err)
					return
				}
				for _, info := range list {
					rc, got, err := f.Get(info.Generation)
					if err != nil {
						// Retention GC may evict a listed generation before the
						// read lands; anything else is a real failure.
						if errors.Is(err, ErrNotFound) || errors.Is(err, os.ErrNotExist) {
							continue
						}
						t.Errorf("follower %d: Get(%d): %v", fi, info.Generation, err)
						return
					}
					b, err := io.ReadAll(rc)
					rc.Close()
					if err != nil {
						t.Errorf("follower %d: read gen %d: %v", fi, info.Generation, err)
						return
					}
					// Committed bytes are immutable: a follower never observes a
					// torn or partially written generation.
					if want := payload(info.Generation); string(b) != want {
						t.Errorf("follower %d: gen %d bytes = %q, want %q", fi, info.Generation, b, want)
						return
					}
					if crc := crc32.Checksum(b, castagnoli); crc != got.CRC32 || int64(len(b)) != got.Size {
						t.Errorf("follower %d: gen %d crc/size mismatch (%x/%d vs %x/%d)",
							fi, info.Generation, crc, len(b), got.CRC32, got.Size)
						return
					}
					reads++
				}
			}
			if reads == 0 {
				t.Errorf("follower %d finished without completing a single read", fi)
			}
		}(fi, f)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: both followers agree with the producer on the final state,
	// and retention kept exactly the last 4 generations.
	want, err := producer.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 4 || want[len(want)-1].Generation != gens {
		t.Fatalf("final producer state = %+v", want)
	}
	for fi, f := range followers {
		got, err := f.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("follower %d sees %d generations, producer %d", fi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("follower %d entry %d = %+v, producer %+v", fi, i, got[i], want[i])
			}
		}
	}
}

// TestFSRetentionGCRacesLatest pins the window the seglog replication
// follower lives in: a producer churning generations under the tightest
// retention (keep 1) while followers chain Latest → Get(latest). The
// freshest generation is the one retention must never evict, so a follower's
// Get(Latest().Generation) may fail with not-found ONLY when the producer
// has already committed a newer generation by the time the read lands —
// never because GC collected the newest one.
func TestFSRetentionGCRacesLatest(t *testing.T) {
	dir := t.TempDir()
	producer, err := OpenFS(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}

	const gens = 120
	payload := func(gen uint64) string { return fmt.Sprintf("gen %d", gen) }

	var produced atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < gens; i++ {
			info, err := producer.Put("churn", func(gen uint64, w io.Writer) error {
				_, err := io.WriteString(w, payload(gen))
				return err
			})
			if err != nil {
				t.Errorf("Put %d: %v", i, err)
				return
			}
			produced.Store(info.Generation)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		reads, evicted := 0, 0
		for produced.Load() < gens {
			latest, err := follower.Latest()
			if errors.Is(err, ErrEmpty) {
				continue
			}
			if err != nil {
				t.Errorf("Latest: %v", err)
				return
			}
			rc, info, err := follower.Get(latest.Generation)
			if err != nil {
				if errors.Is(err, ErrNotFound) || errors.Is(err, os.ErrNotExist) {
					// Legal only when the race was lost forwards: GC may take
					// this generation solely because a newer one committed, so
					// the store itself must already report a newer Latest.
					now, lerr := follower.Latest()
					if lerr != nil {
						t.Errorf("Latest after evicted Get(%d): %v", latest.Generation, lerr)
						return
					}
					if now.Generation <= latest.Generation {
						t.Errorf("Get(%d) lost to GC but store Latest is still %d",
							latest.Generation, now.Generation)
						return
					}
					evicted++
					continue
				}
				t.Errorf("Get(%d): %v", latest.Generation, err)
				return
			}
			b, err := io.ReadAll(rc)
			rc.Close()
			if err != nil {
				t.Errorf("read gen %d: %v", latest.Generation, err)
				return
			}
			if want := payload(latest.Generation); string(b) != want {
				t.Errorf("gen %d bytes = %q, want %q", latest.Generation, b, want)
				return
			}
			if crc := crc32.Checksum(b, castagnoli); crc != info.CRC32 {
				t.Errorf("gen %d CRC = %x, want %x", latest.Generation, crc, info.CRC32)
				return
			}
			reads++
		}
		if reads == 0 {
			t.Error("follower finished without one successful Latest→Get chain")
		}
		t.Logf("follower: %d reads, %d lost to retention GC", reads, evicted)
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: exactly one generation retained, and it is the newest.
	list, err := follower.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Generation != gens {
		t.Fatalf("final retained generations = %+v, want just %d", list, gens)
	}
}
