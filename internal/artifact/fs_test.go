package artifact

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"

	"negmine/internal/atomicio"
	"negmine/internal/fault"
)

func put(t *testing.T, s *FS, source, content string) Info {
	t.Helper()
	info, err := s.Put(source, func(gen uint64, w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s:gen%d", content, gen)
		return err
	})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	return info
}

func readGen(t *testing.T, s *FS, gen uint64) string {
	t.Helper()
	rc, _, err := s.Get(gen)
	if err != nil {
		t.Fatalf("Get(%d): %v", gen, err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read gen %d: %v", gen, err)
	}
	return string(b)
}

func TestFSPutGetLatest(t *testing.T) {
	s, err := OpenFS(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Latest on empty store: %v", err)
	}

	i1 := put(t, s, "mined", "alpha")
	i2 := put(t, s, "ingest", "beta")
	if i1.Generation != 1 || i2.Generation != 2 {
		t.Fatalf("generations = %d, %d", i1.Generation, i2.Generation)
	}
	if got := readGen(t, s, 1); got != "alpha:gen1" {
		t.Errorf("gen 1 = %q", got)
	}
	if got := readGen(t, s, 2); got != "beta:gen2" {
		t.Errorf("gen 2 = %q", got)
	}
	want := crc32.Checksum([]byte("beta:gen2"), castagnoli)
	if i2.CRC32 != want || i2.Size != int64(len("beta:gen2")) || i2.Source != "ingest" {
		t.Errorf("info = %+v", i2)
	}
	latest, err := s.Latest()
	if err != nil || latest.Generation != 2 {
		t.Errorf("Latest = %+v, %v", latest, err)
	}
	list, _ := s.List()
	if len(list) != 2 || list[0].Generation != 1 || list[1].Generation != 2 {
		t.Errorf("List = %+v", list)
	}

	path, info, err := s.Localize(2)
	if err != nil || info.Generation != 2 {
		t.Fatalf("Localize: %+v, %v", info, err)
	}
	if b, _ := os.ReadFile(path); string(b) != "beta:gen2" {
		t.Errorf("localized file = %q", b)
	}

	if _, _, err := s.Get(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(99): %v", err)
	}
}

func TestFSDelete(t *testing.T) {
	s, _ := OpenFS(t.TempDir(), 0)
	put(t, s, "m", "a")
	put(t, s, "m", "b")
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted generation still readable: %v", err)
	}
	if err := s.Delete(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	// Generation numbers keep increasing past deletions.
	if info := put(t, s, "m", "c"); info.Generation != 3 {
		t.Errorf("generation after delete = %d", info.Generation)
	}
}

func TestFSRetention(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenFS(dir, 2)
	for i := 0; i < 5; i++ {
		put(t, s, "m", "x")
	}
	list, _ := s.List()
	if len(list) != 2 || list[0].Generation != 4 || list[1].Generation != 5 {
		t.Fatalf("retained = %+v", list)
	}
	entries, _ := os.ReadDir(dir)
	var snaps int
	for _, e := range entries {
		if filepath.Ext(e.Name()) == Ext {
			snaps++
		}
	}
	if snaps != 2 {
		t.Errorf("%d snapshot files on disk, want 2", snaps)
	}
}

func TestFSReopenResumesGenerations(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenFS(dir, 0)
	put(t, s, "m", "a")
	put(t, s, "m", "b")

	s2, err := OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if latest, _ := s2.Latest(); latest.Generation != 2 {
		t.Fatalf("reopened latest = %+v", latest)
	}
	if got := readGen(t, s2, 1); got != "a:gen1" {
		t.Errorf("gen 1 after reopen = %q", got)
	}
	if info := put(t, s2, "m", "c"); info.Generation != 3 {
		t.Errorf("generation after reopen = %d", info.Generation)
	}
}

// TestFSOrphanCleanup models a producer crash between artifact write and
// manifest commit: the orphan must be invisible and removed at next open.
func TestFSOrphanCleanup(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenFS(dir, 0)
	put(t, s, "m", "a")

	// Forge an uncommitted artifact and a stale temp file.
	orphan := filepath.Join(dir, fmt.Sprintf("%020d%s", 2, Ext))
	os.WriteFile(orphan, []byte("torn"), 0o644)
	stale := filepath.Join(dir, "x.nsnap.tmp-123")
	os.WriteFile(stale, []byte("tmp"), 0o644)

	s2, err := OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if latest, _ := s2.Latest(); latest.Generation != 1 {
		t.Fatalf("orphan visible: latest = %+v", latest)
	}
	for _, p := range []string{orphan, stale} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s not cleaned up", p)
		}
	}
}

// TestFSPutFailpoint arms the commit-window failpoint: Put must fail, the
// store must be unchanged, and the next Put must reuse the generation.
func TestFSPutFailpoint(t *testing.T) {
	s, _ := OpenFS(t.TempDir(), 0)
	put(t, s, "m", "a")

	defer fault.Enable(PointPut, fault.Error("crashed before commit"))()
	_, err := s.Put("m", func(gen uint64, w io.Writer) error {
		_, err := io.WriteString(w, "doomed")
		return err
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Put under failpoint: %v", err)
	}
	fault.Disable(PointPut)

	if latest, _ := s.Latest(); latest.Generation != 1 {
		t.Fatalf("failed Put changed the store: %+v", latest)
	}
	if info := put(t, s, "m", "b"); info.Generation != 2 {
		t.Errorf("generation after failed Put = %d", info.Generation)
	}
}

// TestFSTornArtifactWrite arms the atomicio failpoint so the artifact write
// itself dies mid-stream: no file, no manifest change.
func TestFSTornArtifactWrite(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenFS(dir, 0)
	put(t, s, "m", "a")

	defer fault.Enable(atomicio.PointWrite, fault.Error("disk died"))()
	_, err := s.Put("m", func(gen uint64, w io.Writer) error {
		_, err := io.WriteString(w, "doomed")
		return err
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Put under torn write: %v", err)
	}
	fault.Disable(atomicio.PointWrite)

	if latest, _ := s.Latest(); latest.Generation != 1 {
		t.Fatalf("torn write changed the store: %+v", latest)
	}
	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("%020d%s", 2, Ext))); !os.IsNotExist(err) {
		t.Error("torn write left an artifact file")
	}
}

func TestFSManifestVanishedFile(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenFS(dir, 0)
	put(t, s, "m", "a")
	put(t, s, "m", "b")
	// Someone removed gen 1's file behind our back; reopen drops the entry.
	os.Remove(filepath.Join(dir, fmt.Sprintf("%020d%s", 1, Ext)))
	s2, err := OpenFS(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	list, _ := s2.List()
	if len(list) != 1 || list[0].Generation != 2 {
		t.Fatalf("list after vanish = %+v", list)
	}
}
