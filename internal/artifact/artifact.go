// Package artifact stores versioned build artifacts — above all .nsnap
// serving snapshots — as an append-only sequence of generations with
// checksum metadata. The Store interface is deliberately small (Put, Get,
// List, Latest, Delete) so that an object-store or KV backend can drop in
// behind the same call sites later; the one implementation today is FS, a
// local directory managed with crash-safe writes (internal/atomicio), a
// manifest as the commit point, orphan cleanup, and retention GC.
//
// Stores assign generations: Put hands the chosen generation to the writer
// callback before any byte is produced, because formats like snapfmt embed
// the generation in their header. Stores whose artifacts are plain local
// files additionally implement Localizer, which is what lets a consumer
// mmap the artifact instead of streaming it.
package artifact

import (
	"errors"
	"io"
	"time"
)

// PointPut is the failpoint evaluated after an artifact's bytes are durably
// written but before its manifest entry is committed; arming it with an
// error models a crash in the commit window (the orphaned file must be
// invisible to readers and cleaned up on the next open).
const PointPut = "artifact.put"

// ErrNotFound reports that the requested generation is not in the store.
var ErrNotFound = errors.New("artifact: generation not found")

// ErrEmpty reports that the store holds no generations at all.
var ErrEmpty = errors.New("artifact: store is empty")

// Info is one stored generation's metadata.
type Info struct {
	Generation uint64 `json:"generation"`
	Size       int64  `json:"size"`
	CRC32      uint32 `json:"crc32"` // CRC-32C of the full artifact bytes
	CreatedNs  int64  `json:"createdNs"`
	Source     string `json:"source,omitempty"` // producer hint ("mined", "ingest", ...)
}

// Created returns the generation's creation time.
func (i Info) Created() time.Time { return time.Unix(0, i.CreatedNs) }

// Store is a generation-versioned artifact store. Implementations must make
// Put atomic: a reader never observes a partially written generation, and a
// producer crash leaves at worst an orphan that the store cleans up itself.
type Store interface {
	// Put stores the bytes produced by write as a new generation (chosen by
	// the store, strictly increasing) and returns its metadata. The artifact
	// is durable when Put returns.
	Put(source string, write func(gen uint64, w io.Writer) error) (Info, error)

	// Get opens generation gen for reading.
	Get(gen uint64) (io.ReadCloser, Info, error)

	// List returns every stored generation in ascending order.
	List() ([]Info, error)

	// Latest returns the newest generation, or ErrEmpty.
	Latest() (Info, error)

	// Delete removes generation gen (ErrNotFound if absent).
	Delete(gen uint64) error
}

// Localizer is implemented by stores whose artifacts exist as local files.
// Localize returns a path valid until the generation is deleted — the mmap
// fast path for snapshot loading.
type Localizer interface {
	Localize(gen uint64) (string, Info, error)
}
