package artifact

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"negmine/internal/atomicio"
	"negmine/internal/fault"
)

// ManifestName is the manifest file inside an FS store directory. The
// manifest is the store's commit point: a generation exists exactly when it
// is listed there, and the file is only ever replaced atomically — so it
// doubles as the path a watcher polls to notice new generations.
const ManifestName = "MANIFEST.json"

// Ext is the artifact file extension used by FS.
const Ext = ".nsnap"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// manifest is the on-disk commit record.
type manifest struct {
	UpdatedNs   int64  `json:"updatedNs"`
	Generations []Info `json:"generations"` // ascending
}

// FS is the filesystem Store: one file per generation (%020d.nsnap, so the
// lexical order is the numeric order) plus an atomically replaced manifest.
// All methods are safe for concurrent use within one process, and every
// operation re-reads the manifest from disk first, so a reader handle (a
// replica daemon) follows a producer writing into the same directory —
// even from another process. Concurrent cross-process *writers* are not
// supported (one producer, many readers).
type FS struct {
	dir  string
	keep int

	mu sync.Mutex
	m  manifest
}

// OpenFS opens (creating if necessary) the store rooted at dir. keep bounds
// how many generations are retained after each Put (older ones are
// garbage-collected); keep <= 0 retains everything. Opening reconciles the
// directory against the manifest: entries whose file vanished are dropped,
// and files no manifest entry claims (a producer crashed between writing
// the artifact and committing the manifest) are removed.
func OpenFS(dir string, keep int) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &FS{dir: dir, keep: keep}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	if err := s.reconcile(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *FS) Dir() string { return s.dir }

// ManifestPath returns the manifest file path (the thing to watch for new
// generations).
func (s *FS) ManifestPath() string { return filepath.Join(s.dir, ManifestName) }

func (s *FS) genPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%020d%s", gen, Ext))
}

// loadManifest replaces the in-memory manifest with the on-disk one. Called
// with s.mu held (or before the store is shared). The manifest file is only
// ever swapped atomically, so a read observes a complete old or new state.
func (s *FS) loadManifest() error {
	s.m = manifest{}
	b, err := os.ReadFile(s.ManifestPath())
	if os.IsNotExist(err) {
		return nil // fresh store
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, &s.m); err != nil {
		return fmt.Errorf("artifact: corrupt manifest %s: %w", s.ManifestPath(), err)
	}
	sort.Slice(s.m.Generations, func(i, j int) bool {
		return s.m.Generations[i].Generation < s.m.Generations[j].Generation
	})
	return nil
}

// reconcile drops manifest entries whose file is gone and deletes files the
// manifest does not claim (orphans from a crashed Put, stale temp files).
// Called with no lock needed — only from OpenFS.
func (s *FS) reconcile() error {
	listed := map[string]bool{}
	kept := s.m.Generations[:0]
	changed := false
	for _, g := range s.m.Generations {
		p := s.genPath(g.Generation)
		if _, err := os.Stat(p); err != nil {
			changed = true
			continue
		}
		listed[filepath.Base(p)] = true
		kept = append(kept, g)
	}
	s.m.Generations = kept
	if changed {
		if err := s.writeManifest(); err != nil {
			return err
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if name == ManifestName || e.IsDir() {
			continue
		}
		orphanArtifact := strings.HasSuffix(name, Ext) && !listed[name]
		staleTemp := strings.Contains(name, ".tmp-")
		if orphanArtifact || staleTemp {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// writeManifest atomically replaces the manifest with the in-memory state.
// Called with s.mu held (or from OpenFS before the store is shared).
func (s *FS) writeManifest() error {
	s.m.UpdatedNs = time.Now().UnixNano()
	return atomicio.WriteFile(s.ManifestPath(), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&s.m)
	})
}

// crcWriter tees the artifact bytes through a CRC-32C and a byte count.
type crcWriter struct {
	w    io.Writer
	crc  uint32
	size int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.size += int64(n)
	return n, err
}

// Put implements Store. The artifact file is written crash-safely first,
// then the manifest entry is committed; a crash between the two leaves an
// orphan file that the next OpenFS removes, never a manifest entry without
// bytes. Retention GC runs after the commit.
func (s *FS) Put(source string, write func(gen uint64, w io.Writer) error) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadManifest(); err != nil {
		return Info{}, err
	}

	gen := uint64(1)
	if n := len(s.m.Generations); n > 0 {
		gen = s.m.Generations[n-1].Generation + 1
	}
	cw := &crcWriter{}
	path := s.genPath(gen)
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		cw.w = w
		return write(gen, cw)
	})
	if err != nil {
		return Info{}, err
	}
	info := Info{
		Generation: gen,
		Size:       cw.size,
		CRC32:      cw.crc,
		CreatedNs:  time.Now().UnixNano(),
		Source:     source,
	}
	if err := fault.Hit(PointPut); err != nil {
		// Crash window: artifact written, manifest not committed. Remove the
		// orphan eagerly; a real crash leaves it for OpenFS to clean.
		os.Remove(path)
		return Info{}, err
	}
	s.m.Generations = append(s.m.Generations, info)

	// Retention: trim the manifest first, commit, then delete the files —
	// a crash mid-GC leaves orphans (cleaned at next open), never dangling
	// manifest entries.
	var evict []uint64
	if s.keep > 0 && len(s.m.Generations) > s.keep {
		cut := len(s.m.Generations) - s.keep
		for _, g := range s.m.Generations[:cut] {
			evict = append(evict, g.Generation)
		}
		s.m.Generations = append([]Info(nil), s.m.Generations[cut:]...)
	}
	if err := s.writeManifest(); err != nil {
		s.m.Generations = nil
		if lerr := s.loadManifest(); lerr != nil {
			return Info{}, err
		}
		return Info{}, err
	}
	for _, g := range evict {
		if err := os.Remove(s.genPath(g)); err != nil && !os.IsNotExist(err) {
			return Info{}, err
		}
	}
	return info, nil
}

func (s *FS) find(gen uint64) (Info, bool) {
	for _, g := range s.m.Generations {
		if g.Generation == gen {
			return g, true
		}
	}
	return Info{}, false
}

// Get implements Store.
func (s *FS) Get(gen uint64) (io.ReadCloser, Info, error) {
	s.mu.Lock()
	if err := s.loadManifest(); err != nil {
		s.mu.Unlock()
		return nil, Info{}, err
	}
	info, ok := s.find(gen)
	s.mu.Unlock()
	if !ok {
		return nil, Info{}, fmt.Errorf("generation %d: %w", gen, ErrNotFound)
	}
	f, err := os.Open(s.genPath(gen))
	if err != nil {
		return nil, Info{}, err
	}
	return f, info, nil
}

// List implements Store.
func (s *FS) List() ([]Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	return append([]Info(nil), s.m.Generations...), nil
}

// Latest implements Store.
func (s *FS) Latest() (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadManifest(); err != nil {
		return Info{}, err
	}
	if n := len(s.m.Generations); n > 0 {
		return s.m.Generations[n-1], nil
	}
	return Info{}, ErrEmpty
}

// Delete implements Store. The manifest commit precedes the file removal,
// preserving the "no entry without bytes" invariant.
func (s *FS) Delete(gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadManifest(); err != nil {
		return err
	}
	kept := make([]Info, 0, len(s.m.Generations))
	found := false
	for _, g := range s.m.Generations {
		if g.Generation == gen {
			found = true
			continue
		}
		kept = append(kept, g)
	}
	if !found {
		return fmt.Errorf("generation %d: %w", gen, ErrNotFound)
	}
	s.m.Generations = kept
	if err := s.writeManifest(); err != nil {
		return err
	}
	if err := os.Remove(s.genPath(gen)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Localize implements Localizer: FS artifacts are already local files.
func (s *FS) Localize(gen uint64) (string, Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadManifest(); err != nil {
		return "", Info{}, err
	}
	info, ok := s.find(gen)
	if !ok {
		return "", Info{}, fmt.Errorf("generation %d: %w", gen, ErrNotFound)
	}
	return s.genPath(gen), info, nil
}

var (
	_ Store     = (*FS)(nil)
	_ Localizer = (*FS)(nil)
)
