package apriori

import (
	"math/rand"
	"testing"

	"negmine/internal/item"
	"negmine/internal/txdb"
)

func TestMineHybridMatchesMine(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		db := &txdb.MemDB{}
		for i := 0; i < 60+r.Intn(100); i++ {
			n := 1 + r.Intn(7)
			raw := make([]item.Item, n)
			for j := range raw {
				raw[j] = item.Item(r.Intn(14))
			}
			db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
		}
		minSup := 0.05 + r.Float64()*0.2
		want, err := Mine(db, Options{MinSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int{1, 50, 1 << 20} {
			got, err := MineHybrid(db, HybridOptions{
				Options:      Options{MinSupport: minSup},
				SwitchBudget: budget,
			})
			if err != nil {
				t.Fatal(err)
			}
			a, b := want.Large(), got.Large()
			if len(a) != len(b) {
				t.Fatalf("trial %d budget %d: %d vs %d itemsets", trial, budget, len(b), len(a))
			}
			for i := range a {
				if !a[i].Set.Equal(b[i].Set) || a[i].Count != b[i].Count {
					t.Fatalf("trial %d budget %d itemset %d: %v/%d vs %v/%d",
						trial, budget, i, b[i].Set, b[i].Count, a[i].Set, a[i].Count)
				}
			}
		}
	}
}

func TestMineHybridSwitchSavesPasses(t *testing.T) {
	db := txdb.Instrument(classicDB())
	// Unlimited budget: switch at the first opportunity (pass 2); passes
	// afterwards run on id lists. L3 exists, so plain Apriori needs 3 scans
	// while hybrid needs 2.
	res, err := MineHybrid(db, HybridOptions{
		Options:      Options{MinSupport: 0.5},
		SwitchBudget: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(res.Levels))
	}
	if got := db.Passes(); got != 2 {
		t.Errorf("hybrid scanned %d times, want 2", got)
	}

	db.Reset()
	if _, err := Mine(db, Options{MinSupport: 0.5}); err != nil {
		t.Fatal(err)
	}
	// Apriori scans once per level plus the final empty-candidate check
	// does not scan; 3 levels → 3 scans (C4 generation is empty).
	if got := db.Passes(); got != 3 {
		t.Errorf("apriori scanned %d times, want 3", got)
	}
}

func TestMineHybridTinyBudgetNeverSwitches(t *testing.T) {
	db := txdb.Instrument(classicDB())
	res, err := MineHybrid(db, HybridOptions{
		Options:      Options{MinSupport: 0.5},
		SwitchBudget: 1, // entries estimate always exceeds this
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("levels = %d", len(res.Levels))
	}
	if got := db.Passes(); got != 3 {
		t.Errorf("no-switch hybrid scanned %d times, want 3 (pure Apriori)", got)
	}
}

func TestMineHybridEdgeCases(t *testing.T) {
	res, err := MineHybrid(txdb.FromItemsets(), HybridOptions{Options: Options{MinSupport: 0.5}})
	if err != nil || len(res.Levels) != 0 {
		t.Errorf("empty db: %v, %d levels", err, len(res.Levels))
	}
	if _, err := MineHybrid(classicDB(), HybridOptions{Options: Options{MinSupport: -1}}); err == nil {
		t.Error("invalid options accepted")
	}
	resK, err := MineHybrid(classicDB(), HybridOptions{Options: Options{MinSupport: 0.5, MaxK: 2}})
	if err != nil || len(resK.Levels) != 2 {
		t.Errorf("MaxK=2: %v, %d levels", err, len(resK.Levels))
	}
}
