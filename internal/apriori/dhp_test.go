package apriori

import (
	"math/rand"
	"testing"

	"negmine/internal/item"
	"negmine/internal/txdb"
)

func TestMineDHPMatchesMine(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		db := &txdb.MemDB{}
		for i := 0; i < 80+r.Intn(100); i++ {
			n := 1 + r.Intn(7)
			raw := make([]item.Item, n)
			for j := range raw {
				raw[j] = item.Item(r.Intn(20))
			}
			db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
		}
		minSup := 0.05 + r.Float64()*0.2
		want, err := Mine(db, Options{MinSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		// Exercise both roomy and collision-heavy tables: exactness must
		// hold regardless (small tables just prune less).
		for _, buckets := range []int{8, 1 << 12} {
			got, err := MineDHP(db, DHPOptions{
				Options: Options{MinSupport: minSup},
				Buckets: buckets,
			})
			if err != nil {
				t.Fatal(err)
			}
			a, b := want.Large(), got.Large()
			if len(a) != len(b) {
				t.Fatalf("trial %d buckets %d: %d vs %d itemsets", trial, buckets, len(b), len(a))
			}
			for i := range a {
				if !a[i].Set.Equal(b[i].Set) || a[i].Count != b[i].Count {
					t.Fatalf("trial %d buckets %d itemset %d: %v/%d vs %v/%d",
						trial, buckets, i, b[i].Set, b[i].Count, a[i].Set, a[i].Count)
				}
			}
		}
	}
}

func TestDHPPrunesCandidates(t *testing.T) {
	// Construct data where most pairs are infrequent: 30 items, but only
	// {0,1} co-occurs often. DHP must prune nearly all of C2 before
	// counting.
	db := &txdb.MemDB{}
	tid := int64(0)
	add := func(items ...item.Item) {
		tid++
		db.Append(txdb.Transaction{TID: tid, Items: item.New(items...)})
	}
	for i := 0; i < 50; i++ {
		add(0, 1)
	}
	// Every other item appears alone often enough to be a large
	// 1-itemset, so apriori-gen would produce C(30,2)=435 pair candidates.
	for x := item.Item(2); x < 30; x++ {
		for i := 0; i < 20; i++ {
			add(x)
		}
	}
	res, err := MineDHP(db, DHPOptions{Options: Options{MinSupport: 0.03}, Buckets: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Table.Count(item.New(0, 1)); got != 50 {
		t.Errorf("sup({0,1}) = %d", got)
	}
	if len(res.Levels) != 2 || len(res.Levels[1]) != 1 {
		t.Errorf("levels = %v", res.Levels)
	}
}

func TestDHPEdgeCases(t *testing.T) {
	res, err := MineDHP(txdb.FromItemsets(), DHPOptions{Options: Options{MinSupport: 0.5}})
	if err != nil || len(res.Levels) != 0 {
		t.Errorf("empty db: %v, %d levels", err, len(res.Levels))
	}
	if _, err := MineDHP(classicDB(), DHPOptions{Options: Options{MinSupport: 0}}); err == nil {
		t.Error("invalid options accepted")
	}
	// Classic dataset, default buckets.
	got, err := MineDHP(classicDB(), DHPOptions{Options: Options{MinSupport: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Mine(classicDB(), Options{MinSupport: 0.5})
	if len(got.Large()) != len(want.Large()) {
		t.Errorf("classic: %d vs %d", len(got.Large()), len(want.Large()))
	}
}

func TestBucketOfDeterministic(t *testing.T) {
	a := bucketOf(item.New(3, 7), 64)
	b := bucketOf(item.New(3, 7), 64)
	if a != b || a < 0 || a >= 64 {
		t.Errorf("bucketOf unstable or out of range: %d, %d", a, b)
	}
	if bucketOf(item.New(3, 7), 64) == bucketOf(item.New(3, 8), 64) &&
		bucketOf(item.New(4, 7), 64) == bucketOf(item.New(4, 8), 64) &&
		bucketOf(item.New(5, 7), 64) == bucketOf(item.New(5, 8), 64) {
		t.Error("hash suspiciously collides on consecutive sets")
	}
}
