package apriori

import (
	"math/rand"
	"testing"

	"negmine/internal/count"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// classicDB is the worked example from Agrawal–Srikant style tutorials.
func classicDB() *txdb.MemDB {
	return txdb.FromItemsets(
		[]item.Item{1, 3, 4},
		[]item.Item{2, 3, 5},
		[]item.Item{1, 2, 3, 5},
		[]item.Item{2, 5},
	)
}

func TestMineClassic(t *testing.T) {
	res, err := Mine(classicDB(), Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinCount != 2 {
		t.Fatalf("MinCount = %d, want 2", res.MinCount)
	}
	wantCounts := map[string]int{
		"{1}":     2,
		"{2}":     3,
		"{3}":     3,
		"{5}":     3,
		"{1 3}":   2,
		"{2 3}":   2,
		"{2 5}":   3,
		"{3 5}":   2,
		"{2 3 5}": 2,
	}
	got := map[string]int{}
	for _, cs := range res.Large() {
		got[cs.Set.String()] = cs.Count
	}
	if len(got) != len(wantCounts) {
		t.Errorf("mined %d large itemsets, want %d: %v", len(got), len(wantCounts), got)
	}
	for s, c := range wantCounts {
		if got[s] != c {
			t.Errorf("support(%s) = %d, want %d", s, got[s], c)
		}
	}
	if len(res.Levels) != 3 {
		t.Errorf("levels = %d, want 3", len(res.Levels))
	}
}

func TestMineOptionsValidation(t *testing.T) {
	for _, opt := range []Options{
		{MinSupport: 0},
		{MinSupport: -0.5},
		{MinSupport: 1.5},
		{MinSupport: 0.5, MaxK: -1},
	} {
		if _, err := Mine(classicDB(), opt); err == nil {
			t.Errorf("Options %+v accepted", opt)
		}
	}
}

func TestMineMaxK(t *testing.T) {
	res, err := Mine(classicDB(), Options{MinSupport: 0.5, MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 1 {
		t.Errorf("MaxK=1 mined %d levels", len(res.Levels))
	}
}

func TestMineEmptyAndNoFrequent(t *testing.T) {
	res, err := Mine(txdb.FromItemsets(), Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 0 {
		t.Error("empty db produced itemsets")
	}
	// All items unique: nothing reaches 50%.
	db := txdb.FromItemsets([]item.Item{1}, []item.Item{2}, []item.Item{3})
	res, err = Mine(db, Options{MinSupport: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 0 {
		t.Errorf("Levels = %v", res.Levels)
	}
}

func TestMinCount(t *testing.T) {
	cases := []struct {
		minSup float64
		n      int
		want   int
	}{
		{0.5, 4, 2},
		{0.5, 5, 3},   // ceil(2.5)
		{0.01, 10, 1}, // ceil(0.1) at least 1
		{1, 7, 7},
		{0.001, 100, 1},
	}
	for _, c := range cases {
		if got := MinCount(c.minSup, c.n); got != c.want {
			t.Errorf("MinCount(%v, %d) = %d, want %d", c.minSup, c.n, got, c.want)
		}
	}
}

func TestGen(t *testing.T) {
	// L2 = {12, 13, 14, 23, 24, 34} → C3 should be all 3-subsets of {1..4}.
	prev := []item.Itemset{
		item.New(1, 2), item.New(1, 3), item.New(1, 4),
		item.New(2, 3), item.New(2, 4), item.New(3, 4),
	}
	got := Gen(prev)
	want := []item.Itemset{
		item.New(1, 2, 3), item.New(1, 2, 4), item.New(1, 3, 4), item.New(2, 3, 4),
	}
	if len(got) != len(want) {
		t.Fatalf("Gen produced %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("Gen[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Prune: {1,2},{1,3} without {2,3} must not yield {1,2,3}.
	got = Gen([]item.Itemset{item.New(1, 2), item.New(1, 3)})
	if len(got) != 0 {
		t.Errorf("prune failed: %v", got)
	}
	if Gen(nil) != nil {
		t.Error("Gen(nil) non-nil")
	}
}

func TestGenOutputSorted(t *testing.T) {
	prev := []item.Itemset{
		item.New(1, 2), item.New(1, 3), item.New(1, 5),
		item.New(2, 3), item.New(2, 5), item.New(3, 5),
	}
	got := Gen(prev)
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) >= 0 {
			t.Fatalf("Gen output unsorted at %d: %v", i, got)
		}
	}
}

// bruteForce mines all frequent itemsets by enumerating subsets of each
// transaction — the correctness oracle.
func bruteForce(db *txdb.MemDB, minCount int) map[item.Key]int {
	counts := map[item.Key]int{}
	db.Scan(func(tx txdb.Transaction) error {
		tx.Items.AllSubsets(false, func(s item.Itemset) {
			counts[s.Key()]++
		})
		return nil
	})
	for k, c := range counts {
		if c < minCount {
			delete(counts, k)
		}
	}
	return counts
}

func TestMineAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		db := &txdb.MemDB{}
		nTx := 40 + r.Intn(40)
		for i := 0; i < nTx; i++ {
			n := 1 + r.Intn(6)
			raw := make([]item.Item, n)
			for j := range raw {
				raw[j] = item.Item(r.Intn(12))
			}
			db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
		}
		minSup := 0.05 + r.Float64()*0.3
		res, err := Mine(db, Options{MinSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(db, res.MinCount)
		got := map[item.Key]int{}
		for _, cs := range res.Large() {
			got[cs.Set.Key()] = cs.Count
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: mined %d itemsets, want %d", trial, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("trial %d: %v count %d, want %d", trial, k.Itemset(), got[k], c)
			}
		}
	}
}

func TestMineParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := &txdb.MemDB{}
	for i := 0; i < 300; i++ {
		n := 2 + r.Intn(8)
		raw := make([]item.Item, n)
		for j := range raw {
			raw[j] = item.Item(r.Intn(25))
		}
		db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
	}
	seq, err := Mine(db, Options{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(db, Options{MinSupport: 0.05, Count: count.Options{Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := seq.Large(), par.Large()
	if len(a) != len(b) {
		t.Fatalf("parallel mined %d, sequential %d", len(b), len(a))
	}
	for i := range a {
		if !a[i].Set.Equal(b[i].Set) || a[i].Count != b[i].Count {
			t.Fatalf("mismatch at %d: %v/%d vs %v/%d", i, a[i].Set, a[i].Count, b[i].Set, b[i].Count)
		}
	}
}

func TestMineWithTransform(t *testing.T) {
	// A transform that maps every item to item%2 lets us test the hook.
	db := txdb.FromItemsets(
		[]item.Item{2, 4}, // → {0}
		[]item.Item{3, 5}, // → {1}
		[]item.Item{2, 3}, // → {0,1}
	)
	res, err := Mine(db, Options{
		MinSupport: 0.6,
		Count: count.Options{Transform: func(s item.Itemset) item.Itemset {
			out := make([]item.Item, len(s))
			for i, x := range s {
				out[i] = x % 2
			}
			return item.New(out...)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, cs := range res.Large() {
		got[cs.Set.String()] = cs.Count
	}
	if got["{0}"] != 2 || got["{1}"] != 2 {
		t.Errorf("transformed counts = %v", got)
	}
}

func TestGenRulesClassic(t *testing.T) {
	res, err := Mine(classicDB(), Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := GenRules(res, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Confidence-1 rules from the classic example.
	want := map[string]bool{
		"{1} => {3}":   true,
		"{2} => {5}":   true,
		"{5} => {2}":   true,
		"{2 3} => {5}": true,
		"{3 5} => {2}": true,
	}
	got := map[string]bool{}
	for _, r := range rules {
		got[r.Antecedent.String()+" => "+r.Consequent.String()] = true
		if r.Confidence < 1.0 {
			t.Errorf("rule %v has confidence %v < minConf", r, r.Confidence)
		}
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing rule %s (got %v)", w, got)
		}
	}
}

func TestGenRulesAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	db := &txdb.MemDB{}
	for i := 0; i < 80; i++ {
		n := 1 + r.Intn(5)
		raw := make([]item.Item, n)
		for j := range raw {
			raw[j] = item.Item(r.Intn(10))
		}
		db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
	}
	res, err := Mine(db, Options{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	minConf := 0.6
	rules, err := GenRules(res, minConf)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force: every split of every large itemset.
	wantRules := map[string]float64{}
	for _, cs := range res.Large() {
		if cs.Set.Len() < 2 {
			continue
		}
		cs.Set.AllSubsets(true, func(a item.Itemset) {
			ante := a.Clone()
			anteCount, _ := res.Table.Count(ante)
			conf := float64(cs.Count) / float64(anteCount)
			if conf >= minConf {
				cons := cs.Set.Minus(ante)
				wantRules[ante.String()+"=>"+cons.String()] = conf
			}
		})
	}
	gotRules := map[string]float64{}
	for _, rl := range rules {
		gotRules[rl.Antecedent.String()+"=>"+rl.Consequent.String()] = rl.Confidence
	}
	if len(gotRules) != len(wantRules) {
		t.Fatalf("got %d rules, want %d", len(gotRules), len(wantRules))
	}
	for k, conf := range wantRules {
		if g, ok := gotRules[k]; !ok || g != conf {
			t.Errorf("rule %s: got conf %v (present=%v), want %v", k, g, ok, conf)
		}
	}
}

func TestGenRulesValidation(t *testing.T) {
	res, _ := Mine(classicDB(), Options{MinSupport: 0.5})
	if _, err := GenRules(res, -0.1); err == nil {
		t.Error("negative minConf accepted")
	}
	if _, err := GenRules(res, 1.1); err == nil {
		t.Error("minConf > 1 accepted")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Antecedent: item.New(1), Consequent: item.New(2), Support: 0.5, Confidence: 0.75}
	if got := r.String(); got != "{1} => {2} (sup=0.5000 conf=0.7500)" {
		t.Errorf("String = %q", got)
	}
	name := func(i item.Item) string {
		return map[item.Item]string{1: "bread", 2: "milk"}[i]
	}
	if got := r.Format(name); got != "{bread} => {milk} (sup=0.5000 conf=0.7500)" {
		t.Errorf("Format = %q", got)
	}
}
