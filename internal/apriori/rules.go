package apriori

import (
	"fmt"
	"sort"

	"negmine/internal/item"
)

// Rule is a positive association rule Antecedent => Consequent with its
// measures: Support is the relative support of Antecedent ∪ Consequent,
// Confidence is sup(A ∪ C)/sup(A).
type Rule struct {
	Antecedent item.Itemset
	Consequent item.Itemset
	Support    float64
	Confidence float64
}

// String renders the rule with raw item ids.
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup=%.4f conf=%.4f)", r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// Format renders the rule with item names.
func (r Rule) Format(name func(item.Item) string) string {
	return fmt.Sprintf("%s => %s (sup=%.4f conf=%.4f)",
		r.Antecedent.Format(name), r.Consequent.Format(name), r.Support, r.Confidence)
}

// GenRules implements ap-genrules: for every large itemset of size ≥ 2 it
// emits all rules A => (l − A) with confidence ≥ minConf, growing consequents
// level-wise and pruning by the anti-monotonicity of confidence (if a rule
// with consequent c fails, every rule with a superset consequent fails too).
func GenRules(res *Result, minConf float64) ([]Rule, error) {
	if minConf < 0 || minConf > 1 {
		return nil, fmt.Errorf("apriori: minConf = %v, want [0, 1]", minConf)
	}
	var rules []Rule
	emit := func(l item.Itemset, lCount int, consequent item.Itemset) bool {
		ante := l.Minus(consequent)
		anteCount, ok := res.Table.Count(ante)
		if !ok || anteCount == 0 {
			// Cannot happen for large l (subsets of large sets are large);
			// defensive for tables built by hand.
			return false
		}
		conf := float64(lCount) / float64(anteCount)
		if conf < minConf {
			return false
		}
		rules = append(rules, Rule{
			Antecedent: ante,
			Consequent: consequent.Clone(),
			Support:    float64(lCount) / float64(res.N),
			Confidence: conf,
		})
		return true
	}

	for k := 2; k <= len(res.Levels); k++ {
		for _, cs := range res.Levels[k-1] {
			l, lCount := cs.Set, cs.Count
			// H1: 1-item consequents that pass.
			var h []item.Itemset
			l.Subsets(1, func(c item.Itemset) {
				if emit(l, lCount, c) {
					h = append(h, c.Clone())
				}
			})
			// Grow consequents with apriori-gen while they stay proper.
			for m := 2; m < k && len(h) > 0; m++ {
				next := Gen(h)
				h = h[:0]
				for _, c := range next {
					if emit(l, lCount, c) {
						h = append(h, c)
					}
				}
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if c := rules[i].Antecedent.Compare(rules[j].Antecedent); c != 0 {
			return c < 0
		}
		return rules[i].Consequent.Compare(rules[j].Consequent) < 0
	})
	return rules, nil
}
