package apriori

import (
	"sort"

	"negmine/internal/hashtree"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// HybridOptions extends Options with the AprioriHybrid switch budget.
type HybridOptions struct {
	Options
	// SwitchBudget is the maximum number of candidate-id entries (across
	// all transactions) the algorithm is willing to materialize. Once the
	// measured size of the next id-list representation fits, the remaining
	// passes run AprioriTid-style on id lists instead of rescanning the
	// data. 0 selects a default of one million entries.
	SwitchBudget int
}

// defaultSwitchBudget bounds the id-list memory at roughly 4 MB.
const defaultSwitchBudget = 1 << 20

// MineHybrid implements AprioriHybrid (Agrawal & Srikant, VLDB 1994 §2.4):
// run Apriori's hash-tree passes while the id-list representation would be
// too large, then switch to AprioriTid for the remaining levels. The switch
// pass both counts level k and materializes the per-transaction candidate
// ids, after which the database is never scanned again.
//
// MineHybrid returns exactly the same Result as Mine and MineTid.
func MineHybrid(db txdb.DB, opt HybridOptions) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	budget := opt.SwitchBudget
	if budget <= 0 {
		budget = defaultSwitchBudget
	}
	n := db.Count()
	res := &Result{Table: item.NewSupportTable(n), N: n, MinCount: MinCount(opt.MinSupport, n)}

	singles, err := singletonLevel(db, opt.Options, res)
	if err != nil || singles == nil {
		return res, err
	}
	prev := singles

	// estimatedEntries tracks Σ counts of the previous level's large
	// itemsets: an upper bound on the id-list entries the next pass's
	// AddCollect would materialize (every containment of a candidate
	// implies containment of each generating large itemset).
	estimatedEntries := 0
	for _, cs := range res.Levels[0] {
		estimatedEntries += cs.Count
	}

	var tidLists [][]int32 // nil until switched
	switched := false

	for k := 2; opt.MaxK == 0 || k <= opt.MaxK; k++ {
		if !switched {
			cands := Gen(prev)
			if len(cands) == 0 {
				break
			}
			tree, err := hashtree.Build(cands, opt.Count.MaxLeaf)
			if err != nil {
				return nil, err
			}
			counter := tree.NewCounter()
			collect := estimatedEntries <= budget
			var lists [][]int32
			scanErr := db.Scan(func(tx txdb.Transaction) error {
				s := tx.Items
				if opt.Count.Transform != nil {
					s = opt.Count.Transform(s)
				}
				if !collect {
					counter.Add(s)
					return nil
				}
				var ids []int32
				counter.AddCollect(s, func(idx int32) { ids = append(ids, idx) })
				if len(ids) > 0 {
					sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
					lists = append(lists, ids)
				}
				return nil
			})
			if scanErr != nil {
				return nil, scanErr
			}
			level, idMap := harvest(cands, counter.Counts(), res)
			if len(level) == 0 {
				break
			}
			prev = setsOf(level)
			estimatedEntries = 0
			for _, cs := range level {
				estimatedEntries += cs.Count
			}
			if collect {
				// Remap candidate ids to large ids and switch.
				tidLists = remap(lists, idMap)
				switched = true
			}
			continue
		}

		// AprioriTid regime: derive level k from id lists alone.
		cands := genWithParents(prev)
		if len(cands) == 0 {
			break
		}
		byGen1 := make(map[int32][]int32)
		for ci, c := range cands {
			byGen1[c.gen1] = append(byGen1[c.gen1], int32(ci))
		}
		counts := make([]int, len(cands))
		next := tidLists[:0]
		for _, ids := range tidLists {
			present := make(map[int32]struct{}, len(ids))
			for _, id := range ids {
				present[id] = struct{}{}
			}
			var newIDs []int32
			for _, id := range ids {
				for _, ci := range byGen1[id] {
					if _, ok := present[cands[ci].gen2]; ok {
						counts[ci]++
						newIDs = append(newIDs, ci)
					}
				}
			}
			if len(newIDs) > 0 {
				sort.Slice(newIDs, func(i, j int) bool { return newIDs[i] < newIDs[j] })
				next = append(next, newIDs)
			}
		}
		tidLists = next

		sets := make([]item.Itemset, len(cands))
		for i, c := range cands {
			sets[i] = c.set
		}
		level, idMap := harvest(sets, counts, res)
		if len(level) == 0 {
			break
		}
		prev = setsOf(level)
		tidLists = remap(tidLists, idMap)
	}
	return res, nil
}

// singletonLevel runs pass 1 and records L1; it returns the sorted L1 sets
// (nil if none are large).
func singletonLevel(db txdb.DB, opt Options, res *Result) ([]item.Itemset, error) {
	tmp, err := Mine(db, Options{MinSupport: opt.MinSupport, MaxK: 1, Count: opt.Count})
	if err != nil {
		return nil, err
	}
	if len(tmp.Levels) == 0 {
		return nil, nil
	}
	res.Levels = append(res.Levels, tmp.Levels[0])
	sets := make([]item.Itemset, len(tmp.Levels[0]))
	for i, cs := range tmp.Levels[0] {
		res.Table.Put(cs.Set, cs.Count)
		sets[i] = cs.Set
	}
	return sets, nil
}

// harvest filters candidates by minimum count, appends the level to res and
// returns it along with the candidate-id → large-id remapping.
func harvest(cands []item.Itemset, counts []int, res *Result) ([]item.CountedSet, map[int32]int32) {
	var level []item.CountedSet
	idMap := make(map[int32]int32)
	for ci, c := range cands {
		if counts[ci] >= res.MinCount {
			idMap[int32(ci)] = int32(len(level))
			level = append(level, item.CountedSet{Set: c, Count: counts[ci]})
		}
	}
	if len(level) > 0 {
		res.Levels = append(res.Levels, level)
		for _, cs := range level {
			res.Table.Put(cs.Set, cs.Count)
		}
	}
	return level, idMap
}

func setsOf(level []item.CountedSet) []item.Itemset {
	sets := make([]item.Itemset, len(level))
	for i, cs := range level {
		sets[i] = cs.Set
	}
	return sets
}

// remap rewrites id lists through idMap, dropping unmapped (small) ids and
// empty transactions.
func remap(lists [][]int32, idMap map[int32]int32) [][]int32 {
	out := lists[:0]
	for _, ids := range lists {
		w := 0
		for _, id := range ids {
			if nid, ok := idMap[id]; ok {
				ids[w] = nid
				w++
			}
		}
		if w > 0 {
			out = append(out, ids[:w])
		}
	}
	return out
}
