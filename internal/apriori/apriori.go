// Package apriori implements the classic Apriori algorithm of Agrawal &
// Srikant (VLDB 1994): level-wise frequent-itemset mining with the
// apriori-gen candidate generator (join + prune), hash-tree support
// counting, and the ap-genrules positive rule generator.
//
// The paper under reproduction uses Apriori twice: its generalized miners
// (package gen) reuse Gen and the counting engine, and its negative rule
// generator (package negative) extends GenRules.
package apriori

import (
	"fmt"
	"sort"

	"negmine/internal/count"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// Options configures a mining run.
type Options struct {
	// MinSupport is the relative minimum support in (0, 1].
	MinSupport float64
	// MaxK caps the itemset size mined (0 = unlimited).
	MaxK int
	// Count holds pass-level options (parallelism, hash tree tuning,
	// transaction transform).
	Count count.Options
}

// Validate checks option sanity.
func (o Options) Validate() error {
	if o.MinSupport <= 0 || o.MinSupport > 1 {
		return fmt.Errorf("apriori: MinSupport = %v, want (0, 1]", o.MinSupport)
	}
	if o.MaxK < 0 {
		return fmt.Errorf("apriori: MaxK = %d, want ≥ 0", o.MaxK)
	}
	return nil
}

// Result is the outcome of a frequent-itemset mining run.
type Result struct {
	// Levels[k-1] holds the large k-itemsets with their absolute support
	// counts, each level sorted lexicographically.
	Levels [][]item.CountedSet
	// Table maps every large itemset to its absolute support count.
	Table *item.SupportTable
	// N is the number of transactions scanned.
	N int
	// MinCount is the absolute support threshold used (ceil of
	// MinSupport·N, but at least 1).
	MinCount int
}

// Large returns all large itemsets of every size, level by level.
func (r *Result) Large() []item.CountedSet {
	var out []item.CountedSet
	for _, lvl := range r.Levels {
		out = append(out, lvl...)
	}
	return out
}

// LevelSets returns just the itemsets of level k (1-based), nil if none.
func (r *Result) LevelSets(k int) []item.Itemset {
	if k < 1 || k > len(r.Levels) {
		return nil
	}
	out := make([]item.Itemset, len(r.Levels[k-1]))
	for i, cs := range r.Levels[k-1] {
		out[i] = cs.Set
	}
	return out
}

// MinCount converts a relative support into the absolute transaction count
// threshold used throughout the library: ceil(minSup·n), at least 1.
func MinCount(minSup float64, n int) int {
	mc := int(minSup * float64(n))
	if float64(mc) < minSup*float64(n) {
		mc++
	}
	if mc < 1 {
		mc = 1
	}
	return mc
}

// Mine runs level-wise Apriori over db.
func Mine(db txdb.DB, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := db.Count()
	res := &Result{Table: item.NewSupportTable(n), N: n, MinCount: MinCount(opt.MinSupport, n)}

	// Pass 1: singletons.
	singles, err := count.Singletons(db, opt.Count)
	if err != nil {
		return nil, err
	}
	var l1 []item.CountedSet
	singles.Each(func(s item.Itemset, c int) {
		if c >= res.MinCount {
			l1 = append(l1, item.CountedSet{Set: s, Count: c})
		}
	})
	sort.Slice(l1, func(i, j int) bool { return l1[i].Set.Compare(l1[j].Set) < 0 })
	if len(l1) == 0 {
		return res, nil
	}
	res.Levels = append(res.Levels, l1)
	for _, cs := range l1 {
		res.Table.Put(cs.Set, cs.Count)
	}

	// Passes k ≥ 2.
	prev := res.LevelSets(1)
	for k := 2; opt.MaxK == 0 || k <= opt.MaxK; k++ {
		cands := Gen(prev)
		if len(cands) == 0 {
			break
		}
		counts, err := count.Candidates(db, cands, opt.Count)
		if err != nil {
			return nil, err
		}
		var level []item.CountedSet
		for i, c := range cands {
			if counts[i] >= res.MinCount {
				level = append(level, item.CountedSet{Set: c, Count: counts[i]})
			}
		}
		if len(level) == 0 {
			break
		}
		sort.Slice(level, func(i, j int) bool { return level[i].Set.Compare(level[j].Set) < 0 })
		res.Levels = append(res.Levels, level)
		prev = prev[:0]
		for _, cs := range level {
			res.Table.Put(cs.Set, cs.Count)
			prev = append(prev, cs.Set)
		}
	}
	return res, nil
}

// Gen is apriori-gen: given the sorted large (k-1)-itemsets, it returns the
// candidate k-itemsets — the join of pairs sharing a (k-2)-prefix, pruned of
// candidates with any small (k-1)-subset.
func Gen(prev []item.Itemset) []item.Itemset {
	if len(prev) == 0 {
		return nil
	}
	k1 := prev[0].Len() // k-1
	prevSet := make(map[item.Key]struct{}, len(prev))
	for _, p := range prev {
		prevSet[p.Key()] = struct{}{}
	}
	var out []item.Itemset
	// Join step: prev is sorted, so itemsets sharing a (k-2)-prefix are
	// adjacent runs.
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			if !samePrefix(prev[i], prev[j], k1-1) {
				break
			}
			cand := prev[i].With(prev[j][k1-1])
			if hasAllSubsets(cand, prevSet) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b item.Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasAllSubsets implements the prune step: every (k-1)-subset of cand must
// be a previously large itemset.
func hasAllSubsets(cand item.Itemset, prev map[item.Key]struct{}) bool {
	ok := true
	cand.Subsets(cand.Len()-1, func(sub item.Itemset) {
		if !ok {
			return
		}
		if _, found := prev[sub.Key()]; !found {
			ok = false
		}
	})
	return ok
}
