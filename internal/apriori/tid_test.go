package apriori

import (
	"math/rand"
	"testing"

	"negmine/internal/count"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

func TestMineTidClassic(t *testing.T) {
	res, err := MineTid(classicDB(), Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Mine(classicDB(), Options{MinSupport: 0.5})
	a, b := want.Large(), res.Large()
	if len(a) != len(b) {
		t.Fatalf("MineTid found %d itemsets, Mine found %d", len(b), len(a))
	}
	for i := range a {
		if !a[i].Set.Equal(b[i].Set) || a[i].Count != b[i].Count {
			t.Errorf("itemset %d: %v/%d vs %v/%d", i, b[i].Set, b[i].Count, a[i].Set, a[i].Count)
		}
	}
}

func TestMineTidMatchesMineRandom(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		db := &txdb.MemDB{}
		nTx := 50 + r.Intn(100)
		for i := 0; i < nTx; i++ {
			n := 1 + r.Intn(7)
			raw := make([]item.Item, n)
			for j := range raw {
				raw[j] = item.Item(r.Intn(15))
			}
			db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
		}
		minSup := 0.05 + r.Float64()*0.25
		want, err := Mine(db, Options{MinSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		got, err := MineTid(db, Options{MinSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		a, b := want.Large(), got.Large()
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d itemsets", trial, len(b), len(a))
		}
		for i := range a {
			if !a[i].Set.Equal(b[i].Set) || a[i].Count != b[i].Count {
				t.Fatalf("trial %d itemset %d: %v/%d vs %v/%d",
					trial, i, b[i].Set, b[i].Count, a[i].Set, a[i].Count)
			}
		}
	}
}

func TestMineTidSingleDataPass(t *testing.T) {
	// AprioriTid reads the raw data during pass 1 only (Singletons + the
	// id-list build = 2 scans); every later level works on id lists.
	db := txdb.Instrument(classicDB())
	if _, err := MineTid(db, Options{MinSupport: 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := db.Passes(); got != 2 {
		t.Errorf("MineTid scanned the data %d times, want 2", got)
	}
}

func TestMineTidTransform(t *testing.T) {
	db := txdb.FromItemsets([]item.Item{10}, []item.Item{10}, []item.Item{12})
	res, err := MineTid(db, Options{
		MinSupport: 0.5,
		Count: count.Options{Transform: func(s item.Itemset) item.Itemset {
			out := make([]item.Item, len(s))
			for i, x := range s {
				out[i] = x / 2
			}
			return item.New(out...)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := res.Table.Count(item.New(5)); c != 2 {
		t.Errorf("transformed count = %d, want 2", c)
	}
}

func TestMineTidEmptyAndValidation(t *testing.T) {
	res, err := MineTid(txdb.FromItemsets(), Options{MinSupport: 0.5})
	if err != nil || len(res.Levels) != 0 {
		t.Errorf("empty db: %v, %d levels", err, len(res.Levels))
	}
	if _, err := MineTid(classicDB(), Options{MinSupport: 0}); err == nil {
		t.Error("invalid options accepted")
	}
	resK, err := MineTid(classicDB(), Options{MinSupport: 0.5, MaxK: 1})
	if err != nil || len(resK.Levels) != 1 {
		t.Errorf("MaxK=1: %v, %d levels", err, len(resK.Levels))
	}
}

func BenchmarkMineApriori(b *testing.B) {
	db := benchDB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(db, Options{MinSupport: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineAprioriTid(b *testing.B) {
	db := benchDB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineTid(db, Options{MinSupport: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDB() *txdb.MemDB {
	r := rand.New(rand.NewSource(3))
	db := &txdb.MemDB{}
	for i := 0; i < 2000; i++ {
		n := 2 + r.Intn(8)
		raw := make([]item.Item, n)
		for j := range raw {
			raw[j] = item.Item(r.Intn(60))
		}
		db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(raw...)})
	}
	return db
}
