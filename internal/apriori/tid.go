package apriori

import (
	"sort"

	"negmine/internal/count"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// MineTid implements AprioriTid (Agrawal & Srikant, VLDB 1994 §2.2): after
// the first pass, the raw database is never read again. Instead each
// transaction is represented by the set of candidate ids it contains, and
// pass k derives containment of a k-candidate from containment of its two
// generating (k-1)-candidates. Transactions whose candidate set becomes
// empty drop out entirely, so later passes can be dramatically cheaper on
// sparse data — at the price of materializing the id lists in memory.
//
// MineTid returns exactly the same Result as Mine.
func MineTid(db txdb.DB, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := db.Count()
	res := &Result{Table: item.NewSupportTable(n), N: n, MinCount: MinCount(opt.MinSupport, n)}

	// Pass 1 over the real data: count singletons and build the initial
	// per-transaction id lists.
	singles, err := count.Singletons(db, opt.Count)
	if err != nil {
		return nil, err
	}
	var l1 []item.CountedSet
	singles.Each(func(s item.Itemset, c int) {
		if c >= res.MinCount {
			l1 = append(l1, item.CountedSet{Set: s, Count: c})
		}
	})
	if len(l1) == 0 {
		return res, nil
	}
	sort.Slice(l1, func(i, j int) bool { return l1[i].Set.Compare(l1[j].Set) < 0 })
	res.Levels = append(res.Levels, l1)
	idOf := make(map[item.Item]int32, len(l1))
	prevSets := make([]item.Itemset, len(l1))
	for i, cs := range l1 {
		res.Table.Put(cs.Set, cs.Count)
		idOf[cs.Set[0]] = int32(i)
		prevSets[i] = cs.Set
	}

	// tidLists[t] holds the sorted ids of the previous level's large
	// itemsets contained in transaction t. Transactions with no ids are
	// dropped from the slice.
	var tidLists [][]int32
	if err := db.Scan(func(tx txdb.Transaction) error {
		s := tx.Items
		if opt.Count.Transform != nil {
			s = opt.Count.Transform(s)
		}
		var ids []int32
		for _, x := range s {
			if id, ok := idOf[x]; ok {
				ids = append(ids, id)
			}
		}
		if len(ids) > 0 {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			tidLists = append(tidLists, ids)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	for k := 2; opt.MaxK == 0 || k <= opt.MaxK; k++ {
		cands := genWithParents(prevSets)
		if len(cands) == 0 {
			break
		}
		// Index candidates by their first generator so each transaction
		// only examines candidates with at least one generator present.
		byGen1 := make(map[int32][]int32) // gen1 id → candidate ids
		for ci, c := range cands {
			byGen1[c.gen1] = append(byGen1[c.gen1], int32(ci))
		}
		counts := make([]int, len(cands))
		next := tidLists[:0]
		for _, ids := range tidLists {
			present := make(map[int32]struct{}, len(ids))
			for _, id := range ids {
				present[id] = struct{}{}
			}
			var newIDs []int32
			for _, id := range ids {
				for _, ci := range byGen1[id] {
					if _, ok := present[cands[ci].gen2]; ok {
						counts[ci]++
						newIDs = append(newIDs, ci)
					}
				}
			}
			if len(newIDs) > 0 {
				sort.Slice(newIDs, func(i, j int) bool { return newIDs[i] < newIDs[j] })
				next = append(next, newIDs)
			}
		}
		tidLists = next

		var level []item.CountedSet
		idMap := make(map[int32]int32, len(cands)) // old candidate id → new large id
		prevSets = prevSets[:0]
		for ci, c := range cands {
			if counts[ci] >= res.MinCount {
				idMap[int32(ci)] = int32(len(level))
				level = append(level, item.CountedSet{Set: c.set, Count: counts[ci]})
				prevSets = append(prevSets, c.set)
			}
		}
		if len(level) == 0 {
			break
		}
		res.Levels = append(res.Levels, level)
		for _, cs := range level {
			res.Table.Put(cs.Set, cs.Count)
		}
		// Re-map transaction id lists from candidate ids to large ids,
		// dropping ids of small candidates.
		remapped := tidLists[:0]
		for _, ids := range tidLists {
			w := 0
			for _, id := range ids {
				if nid, ok := idMap[id]; ok {
					ids[w] = nid
					w++
				}
			}
			if w > 0 {
				remapped = append(remapped, ids[:w])
			}
		}
		tidLists = remapped
	}
	return res, nil
}

// tidCand is a candidate with the ids of its two generating (k-1)-itemsets.
type tidCand struct {
	set        item.Itemset
	gen1, gen2 int32
}

// genWithParents is apriori-gen (join + prune) that additionally records
// which two previous-level itemsets joined into each candidate. prev must
// be sorted; candidate generator ids are indices into prev.
func genWithParents(prev []item.Itemset) []tidCand {
	if len(prev) == 0 {
		return nil
	}
	k1 := prev[0].Len()
	prevSet := make(map[item.Key]struct{}, len(prev))
	for _, p := range prev {
		prevSet[p.Key()] = struct{}{}
	}
	var out []tidCand
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			if !samePrefix(prev[i], prev[j], k1-1) {
				break
			}
			cand := prev[i].With(prev[j][k1-1])
			if hasAllSubsets(cand, prevSet) {
				out = append(out, tidCand{set: cand, gen1: int32(i), gen2: int32(j)})
			}
		}
	}
	return out
}
