package apriori

import (
	"sort"

	"negmine/internal/count"
	"negmine/internal/hashtree"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// DHPOptions extends Options with the hash-pruning table size.
type DHPOptions struct {
	Options
	// Buckets is the size of the per-level hash table used to prune
	// candidates (default 1<<16). Larger tables prune more precisely at
	// the cost of memory.
	Buckets int
}

// MineDHP implements the candidate-pruning core of the DHP algorithm of
// Park, Chen & Yu ("An Effective Hash Based Algorithm for Mining
// Association Rules", SIGMOD 1995) — citation [8] of the reproduced paper.
//
// While counting level k, every (k+1)-subset of each transaction is hashed
// into a bucket counter; a level-(k+1) candidate can only be frequent if
// its bucket total reaches the support threshold, so apriori-gen's output
// is filtered through the table before any counting. On skewed data this
// eliminates most of C2, the dominant cost of classic Apriori.
//
// The original also progressively trims transactions; this implementation
// keeps the hash-pruning contribution and the cheap size-based skip
// (transactions shorter than k cannot support a k-candidate), which
// preserves exactness. MineDHP returns the same Result as Mine.
func MineDHP(db txdb.DB, opt DHPOptions) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	buckets := opt.Buckets
	if buckets <= 0 {
		buckets = 1 << 16
	}
	n := db.Count()
	res := &Result{Table: item.NewSupportTable(n), N: n, MinCount: MinCount(opt.MinSupport, n)}

	transform := func(s item.Itemset) item.Itemset {
		if opt.Count.Transform != nil {
			return opt.Count.Transform(s)
		}
		return s
	}

	// Pass 1: singleton counts + hash table over 2-subsets.
	singles, err := count.Singletons(db, opt.Count)
	if err != nil {
		return nil, err
	}
	var l1 []item.CountedSet
	singles.Each(func(s item.Itemset, c int) {
		if c >= res.MinCount {
			l1 = append(l1, item.CountedSet{Set: s, Count: c})
		}
	})
	if len(l1) == 0 {
		return res, nil
	}
	sort.Slice(l1, func(i, j int) bool { return l1[i].Set.Compare(l1[j].Set) < 0 })
	res.Levels = append(res.Levels, l1)
	prev := make([]item.Itemset, len(l1))
	for i, cs := range l1 {
		res.Table.Put(cs.Set, cs.Count)
		prev[i] = cs.Set
	}

	table := make([]int32, buckets)
	if err := db.Scan(func(tx txdb.Transaction) error {
		hashSubsets(transform(tx.Items), 2, table)
		return nil
	}); err != nil {
		return nil, err
	}

	for k := 2; opt.MaxK == 0 || k <= opt.MaxK; k++ {
		cands := Gen(prev)
		if len(cands) == 0 {
			break
		}
		// DHP prune: keep only candidates whose bucket could be frequent.
		kept := cands[:0]
		for _, c := range cands {
			if int(table[bucketOf(c, buckets)]) >= res.MinCount {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			break
		}
		tree, err := hashtree.Build(kept, opt.Count.MaxLeaf)
		if err != nil {
			return nil, err
		}
		counter := tree.NewCounter()
		next := make([]int32, buckets)
		if err := db.Scan(func(tx txdb.Transaction) error {
			s := transform(tx.Items)
			if s.Len() < k {
				return nil // size prune: cannot support any k-candidate
			}
			counter.Add(s)
			hashSubsets(s, k+1, next)
			return nil
		}); err != nil {
			return nil, err
		}
		table = next

		var level []item.CountedSet
		for i, c := range kept {
			if counter.Count(i) >= res.MinCount {
				level = append(level, item.CountedSet{Set: c, Count: counter.Count(i)})
			}
		}
		if len(level) == 0 {
			break
		}
		sort.Slice(level, func(i, j int) bool { return level[i].Set.Compare(level[j].Set) < 0 })
		res.Levels = append(res.Levels, level)
		prev = prev[:0]
		for _, cs := range level {
			res.Table.Put(cs.Set, cs.Count)
			prev = append(prev, cs.Set)
		}
	}
	return res, nil
}

// hashSubsets adds every k-subset of s into the bucket table.
func hashSubsets(s item.Itemset, k int, table []int32) {
	if s.Len() < k {
		return
	}
	s.Subsets(k, func(sub item.Itemset) {
		table[bucketOf(sub, len(table))]++
	})
}

// bucketOf hashes an itemset into [0, buckets) with an FNV-style mix.
func bucketOf(s item.Itemset, buckets int) int {
	h := uint64(1469598103934665603)
	for _, x := range s {
		h ^= uint64(uint32(x))
		h *= 1099511628211
	}
	return int(h % uint64(buckets))
}
