package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// ingestBackend is a fake negmined write node: it records the /ingest
// bodies it receives and answers with a configurable status.
type ingestBackend struct {
	srv      *httptest.Server
	status   atomic.Int64
	hits     atomic.Int64
	lastBody atomic.Value // string
}

func newIngestBackend(t *testing.T, status int) *ingestBackend {
	b := &ingestBackend{}
	b.status.Store(int64(status))
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/ingest" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		b.hits.Add(1)
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b.lastBody.Store(buf.String())
		code := int(b.status.Load())
		switch code {
		case http.StatusAccepted:
			writeJSON(w, code, map[string]any{"first": 1, "last": 2, "count": 2})
		case http.StatusOK:
			writeJSON(w, code, map[string]any{"first": 1, "last": 2, "count": 2, "duplicate": true})
		default:
			writeJSON(w, code, map[string]any{"error": "not the ingest primary"})
		}
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func (b *ingestBackend) addr() string { return strings.TrimPrefix(b.srv.URL, "http://") }

func ingestHB(node, addr, role string) Heartbeat {
	return Heartbeat{Node: node, Addr: addr, Shard: 0, Shards: 1, IngestRole: role}
}

func postIngest(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func routerMetricsDoc(t *testing.T, h http.Handler) routerMetricsJSON {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", rec.Code)
	}
	var doc routerMetricsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestRouterIngestForwardsToPrimary(t *testing.T) {
	primary := newIngestBackend(t, http.StatusAccepted)
	rt, err := NewRouter(RouterConfig{Shards: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Pool().Heartbeat(ingestHB("p", primary.addr(), "primary")); err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()

	// A keyed body is relayed byte-for-byte and the 202 comes back verbatim.
	rec := postIngest(t, h, `{"baskets":[["beer","chips"]],"key":"w1","seq":7}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("keyed ingest: HTTP %d: %s", rec.Code, rec.Body)
	}
	var relayed ingestReq
	if err := json.Unmarshal([]byte(primary.lastBody.Load().(string)), &relayed); err != nil {
		t.Fatal(err)
	}
	if relayed.Key != "w1" || relayed.Seq != 7 {
		t.Fatalf("client key not preserved: %+v", relayed)
	}
	var resp struct {
		First, Last, Count int64
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.First != 1 || resp.Last != 2 || resp.Count != 2 {
		t.Fatalf("relayed response = %+v", resp)
	}

	// An unkeyed body gets a router-generated key before forwarding, so the
	// router's own retries cannot double-apply.
	rec = postIngest(t, h, `{"baskets":[["milk"]]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("unkeyed ingest: HTTP %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal([]byte(primary.lastBody.Load().(string)), &relayed); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(relayed.Key, "negrouter-") || relayed.Seq != 1 {
		t.Fatalf("router did not inject an idempotency key: %+v", relayed)
	}

	// Duplicate acks (200) relay verbatim too — the client sees the same
	// contract it would talking to the primary directly.
	primary.status.Store(http.StatusOK)
	rec = postIngest(t, h, `{"baskets":[["milk"]],"key":"w1","seq":7}`)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"duplicate": true`) {
		t.Fatalf("duplicate relay: HTTP %d: %s", rec.Code, rec.Body)
	}

	m := routerMetricsDoc(t, h)
	if m.Ingest.Forwarded != 3 || m.Ingest.Rerouted != 0 || m.Ingest.NoPrimary != 0 {
		t.Fatalf("ingest metrics = %+v", m.Ingest)
	}
}

func TestRouterIngestReroutesOn409(t *testing.T) {
	// The fenced node still advertises "primary" (stale heartbeat); its 409
	// must bounce the write to the real primary, invisibly to the client.
	fenced := newIngestBackend(t, http.StatusConflict)
	real := newIngestBackend(t, http.StatusAccepted)
	rt, err := NewRouter(RouterConfig{Shards: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Pool().Heartbeat(ingestHB("old", fenced.addr(), "primary")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Pool().Heartbeat(ingestHB("new", real.addr(), "primary")); err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()

	rec := postIngest(t, h, `{"baskets":[["beer"]],"key":"w1","seq":1}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest through failover: HTTP %d: %s", rec.Code, rec.Body)
	}
	if real.hits.Load() != 1 {
		t.Fatalf("real primary hits = %d, want 1", real.hits.Load())
	}
	m := routerMetricsDoc(t, h)
	// One of the two picks hit the fenced node first (heartbeat order is
	// racy by a nanosecond clock, so allow 0 or 1 reroutes) but the write
	// was forwarded exactly once either way.
	if m.Ingest.Forwarded != 1 {
		t.Fatalf("forwarded = %d, want 1 (rerouted %d)", m.Ingest.Forwarded, m.Ingest.Rerouted)
	}
	if fenced.hits.Load() > 0 && m.Ingest.Rerouted != 1 {
		t.Fatalf("fenced node was hit but rerouted = %d", m.Ingest.Rerouted)
	}
}

func TestRouterIngestNoPrimary503(t *testing.T) {
	standbyOnly := newIngestBackend(t, http.StatusAccepted)
	rt, err := NewRouter(RouterConfig{Shards: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Pool().Heartbeat(ingestHB("s", standbyOnly.addr(), "standby")); err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()

	rec := postIngest(t, h, `{"baskets":[["beer"]]}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no-primary ingest: HTTP %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After hint")
	}
	if standbyOnly.hits.Load() != 0 {
		t.Fatal("standby received a forwarded write")
	}
	m := routerMetricsDoc(t, h)
	if m.Ingest.NoPrimary != 1 || m.Ingest.Forwarded != 0 {
		t.Fatalf("ingest metrics = %+v", m.Ingest)
	}

	// Bad requests are rejected at the router, not forwarded.
	if rec := postIngest(t, h, `{"baskets":[]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty baskets: HTTP %d", rec.Code)
	}
	if rec := postIngest(t, h, `{nope`); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d", rec.Code)
	}
}

func TestRouterHealthzReportsIngestTopology(t *testing.T) {
	primary := newIngestBackend(t, http.StatusAccepted)
	rt, err := NewRouter(RouterConfig{Shards: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Pool().Heartbeat(ingestHB("p", primary.addr(), "primary")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Pool().Heartbeat(ingestHB("s", "127.0.0.1:1", "standby")); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var doc struct {
		IngestPrimary  string `json:"ingestPrimary"`
		IngestStandbys int    `json:"ingestStandbys"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.IngestPrimary != "p" || doc.IngestStandbys != 1 {
		t.Fatalf("healthz ingest topology = %+v", doc)
	}
}
