package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"negmine/internal/fault"
)

// State is one replica's position in the health state machine.
type State int

const (
	// Healthy replicas heartbeat on time and answer requests; they are the
	// first choice for routing.
	Healthy State = iota
	// Suspect replicas missed a heartbeat or failed a request; they are
	// still routable (last choice) while probes decide their fate.
	Suspect
	// Down replicas failed repeatedly or let their heartbeat expire; they
	// receive no traffic and are probed with exponential backoff.
	Down
	// Recovering replicas answered a probe (or heartbeat) after being down;
	// one more success promotes them back to healthy. They are routable so
	// a recovered shard starts taking traffic within one probe interval.
	Recovering
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// PoolConfig tunes the shard pool. The zero value of every field falls back
// to the default documented on it; Shards is required.
type PoolConfig struct {
	// Shards is the cluster width: shard ids run [0, Shards).
	Shards int
	// HeartbeatTTL is how stale a replica's heartbeat may grow before the
	// sweep demotes it to suspect; at 2×TTL it goes down (default 3s).
	HeartbeatTTL time.Duration
	// ProbeInterval is the base probe/sweep cadence (default 500ms).
	ProbeInterval time.Duration
	// ProbeBackoffMax caps the exponential probe backoff for down replicas
	// (default 16×ProbeInterval).
	ProbeBackoffMax time.Duration
	// DownAfter is how many consecutive request/probe failures take a
	// replica from suspect to down (default 3).
	DownAfter int
	// BreakerAfter is how many consecutive request failures open a
	// replica's circuit breaker (default 3, like the serve watch breaker).
	BreakerAfter int
	// BreakerMax caps the breaker's exponential cool-down (default
	// 16×ProbeInterval).
	BreakerMax time.Duration
	// Probe checks one replica's health (default: GET /healthz). It must
	// honor ctx.
	Probe func(ctx context.Context, addr string) error
	// Now is the pool's clock (default time.Now); injectable for tests.
	Now func() time.Time
	// Logf receives state-transition logs (default: discard).
	Logf func(format string, args ...any)
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.HeartbeatTTL <= 0 {
		c.HeartbeatTTL = 3 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeBackoffMax <= 0 {
		c.ProbeBackoffMax = 16 * c.ProbeInterval
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.BreakerAfter <= 0 {
		c.BreakerAfter = 3
	}
	if c.BreakerMax <= 0 {
		c.BreakerMax = 16 * c.ProbeInterval
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// replica is one registered node's pool entry. All fields are guarded by
// the pool mutex.
type replica struct {
	node  string
	addr  string
	shard int

	state    State
	fails    int       // consecutive request/probe failures
	okStreak int       // consecutive successes while recovering
	lastBeat time.Time // last accepted heartbeat

	// Advertised serving state, from the last heartbeat.
	generation uint64
	ageSeconds float64
	freshness  float64
	rules      int
	sourceKind string
	degraded   bool
	ingestRole string
	replLag    int

	// Probe scheduling (down/suspect replicas only).
	nextProbe    time.Time
	probeBackoff time.Duration
	probing      bool // an async probe is in flight

	// Circuit breaker: consecutive failures open it; while open the replica
	// is skipped until openUntil, when one trial request is let through.
	brFails     int
	brOpenUntil time.Time
	brBackoff   time.Duration
	brOpens     int64

	// Counters for /cluster/status and /metrics.
	requests int64
	failures int64
	rr       int64 // round-robin tiebreaker
}

// breakerOpen reports whether the breaker currently blocks the replica.
func (r *replica) breakerOpen(now time.Time) bool {
	return r.brFails >= 1 && now.Before(r.brOpenUntil)
}

// Pool is the router's health-checked replica registry: every registered
// node, grouped by shard, with its health state, breaker, and advertised
// snapshot freshness. All methods are safe for concurrent use.
type Pool struct {
	cfg PoolConfig

	mu       sync.Mutex
	replicas map[string]*replica // by node id
	byShard  [][]*replica
	rrSeq    int64

	heartbeats    int64 // accepted heartbeats
	heartbeatErrs int64 // rejected heartbeats (bad shard, failpoint)
}

// NewPool builds an empty pool for a cluster of cfg.Shards shards.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	return &Pool{
		cfg:      cfg,
		replicas: map[string]*replica{},
		byShard:  make([][]*replica, cfg.Shards),
	}
}

// Shards returns the cluster width.
func (p *Pool) Shards() int { return p.cfg.Shards }

// Heartbeat ingests one node heartbeat: the first registers the replica,
// later ones refresh liveness and advertised state. A heartbeat from a down
// replica starts recovery; from a recovering one, completes it.
func (p *Pool) Heartbeat(hb Heartbeat) error {
	if err := fault.Hit(PointHeartbeat); err != nil {
		p.mu.Lock()
		p.heartbeatErrs++
		p.mu.Unlock()
		return err
	}
	if hb.Node == "" || hb.Addr == "" {
		return fmt.Errorf("cluster: heartbeat missing node or addr")
	}
	if hb.Shard < 0 || hb.Shard >= p.cfg.Shards {
		p.mu.Lock()
		p.heartbeatErrs++
		p.mu.Unlock()
		return fmt.Errorf("cluster: heartbeat shard %d out of range [0,%d)", hb.Shard, p.cfg.Shards)
	}
	if hb.Shards != 0 && hb.Shards != p.cfg.Shards {
		p.mu.Lock()
		p.heartbeatErrs++
		p.mu.Unlock()
		return fmt.Errorf("cluster: heartbeat claims %d shards, router runs %d", hb.Shards, p.cfg.Shards)
	}
	now := p.cfg.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.heartbeats++
	r := p.replicas[hb.Node]
	if r == nil {
		r = &replica{node: hb.Node, state: Healthy, shard: hb.Shard}
		p.replicas[hb.Node] = r
		p.byShard[hb.Shard] = append(p.byShard[hb.Shard], r)
		p.cfg.Logf("cluster: shard %d replica %s registered (%s)", hb.Shard, hb.Node, hb.Addr)
	} else if r.shard != hb.Shard {
		// A node restarted with a different shard assignment: move it.
		p.byShard[r.shard] = removeReplica(p.byShard[r.shard], r)
		r.shard = hb.Shard
		p.byShard[hb.Shard] = append(p.byShard[hb.Shard], r)
	}
	r.addr = hb.Addr
	r.lastBeat = now
	r.generation = hb.Generation
	r.ageSeconds = hb.AgeSeconds
	r.freshness = hb.FreshnessSeconds
	r.rules = hb.Rules
	r.sourceKind = hb.SourceKind
	r.degraded = hb.Degraded
	r.ingestRole = hb.IngestRole
	r.replLag = hb.ReplLagSegments
	switch r.state {
	case Down:
		p.transition(r, Recovering, "heartbeat after down")
		r.okStreak = 1
	case Recovering:
		r.okStreak++
		if r.okStreak >= 2 {
			p.promote(r, "heartbeat")
		}
	case Suspect:
		// A heartbeat proves the process is alive, but only request/probe
		// success clears the failure streak that made it suspect.
		if r.fails == 0 {
			p.transition(r, Healthy, "heartbeat")
		}
	}
	return nil
}

func removeReplica(rs []*replica, r *replica) []*replica {
	out := rs[:0]
	for _, x := range rs {
		if x != r {
			out = append(out, x)
		}
	}
	return out
}

// transition moves r to state and logs the edge. Called with p.mu held.
func (p *Pool) transition(r *replica, s State, why string) {
	if r.state == s {
		return
	}
	p.cfg.Logf("cluster: shard %d replica %s %s → %s (%s)", r.shard, r.node, r.state, s, why)
	r.state = s
}

// promote returns r to healthy and resets every failure ledger. Called with
// p.mu held.
func (p *Pool) promote(r *replica, why string) {
	p.transition(r, Healthy, why)
	r.fails = 0
	r.okStreak = 0
	r.brFails = 0
	r.brBackoff = 0
	r.probeBackoff = 0
}

// ReportSuccess records a successful proxied request to node.
func (p *Pool) ReportSuccess(node string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.replicas[node]
	if r == nil {
		return
	}
	r.requests++
	r.fails = 0
	r.brFails = 0
	r.brBackoff = 0
	switch r.state {
	case Suspect:
		p.transition(r, Healthy, "request ok")
	case Recovering:
		p.promote(r, "request ok")
	case Down:
		// A request reached a down replica only as a breaker trial; treat
		// success like a probe success.
		p.transition(r, Recovering, "request ok")
		r.okStreak = 1
	}
}

// ReportFailure records a failed proxied request to node: it advances the
// health state machine (healthy → suspect → down) and the circuit breaker.
func (p *Pool) ReportFailure(node string) {
	now := p.cfg.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.replicas[node]
	if r == nil {
		return
	}
	r.requests++
	r.failures++
	r.fails++
	r.okStreak = 0
	switch {
	case r.state == Healthy || r.state == Recovering:
		p.transition(r, Suspect, "request failed")
	case r.state == Suspect && r.fails >= p.cfg.DownAfter:
		p.markDown(r, now, "request failures")
	}
	// Breaker: consecutive failures open it with exponential cool-down.
	r.brFails++
	if r.brFails >= p.cfg.BreakerAfter {
		if r.brBackoff == 0 {
			r.brBackoff = p.cfg.ProbeInterval
		} else if !now.Before(r.brOpenUntil) {
			// The trial request after a cool-down failed: back off further.
			r.brBackoff *= 2
			if r.brBackoff > p.cfg.BreakerMax {
				r.brBackoff = p.cfg.BreakerMax
			}
		}
		if !r.breakerOpen(now) {
			r.brOpens++
			p.cfg.Logf("cluster: shard %d replica %s breaker open for %v", r.shard, r.node, r.brBackoff)
		}
		r.brOpenUntil = now.Add(r.brBackoff)
	}
}

// markDown demotes r to down and schedules its first recovery probe.
// Called with p.mu held.
func (p *Pool) markDown(r *replica, now time.Time, why string) {
	p.transition(r, Down, why)
	r.probeBackoff = p.cfg.ProbeInterval
	r.nextProbe = now // probe immediately on the next sweep
}

// Sweep advances time-driven transitions: heartbeats older than the TTL
// demote a replica to suspect, older than twice the TTL to down. Exposed so
// tests can drive the state machine with a fake clock; Run calls it every
// probe interval.
func (p *Pool) Sweep(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.replicas {
		if r.lastBeat.IsZero() {
			continue
		}
		age := now.Sub(r.lastBeat)
		switch {
		case age > 2*p.cfg.HeartbeatTTL && r.state != Down:
			p.markDown(r, now, "heartbeat expired")
		case age > p.cfg.HeartbeatTTL && r.state == Healthy:
			p.transition(r, Suspect, "heartbeat late")
		}
	}
}

// dueProbes returns the replicas whose next probe is due, marking them
// in-flight.
func (p *Pool) dueProbes(now time.Time) []*replica {
	p.mu.Lock()
	defer p.mu.Unlock()
	var due []*replica
	for _, r := range p.replicas {
		if r.state != Down && r.state != Suspect && r.state != Recovering {
			continue
		}
		if r.probing || now.Before(r.nextProbe) {
			continue
		}
		r.probing = true
		due = append(due, r)
	}
	return due
}

// ProbeOnce sweeps and fires one round of due health probes, waiting for
// them to finish. Exposed for deterministic tests; Run wraps it in a ticker.
func (p *Pool) ProbeOnce(ctx context.Context) {
	now := p.cfg.Now()
	p.Sweep(now)
	probe := p.cfg.Probe
	if probe == nil {
		probe = p.httpProbe
	}
	due := p.dueProbes(now)
	var wg sync.WaitGroup
	for _, r := range due {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			p.mu.Lock()
			addr := r.addr
			p.mu.Unlock()
			pctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeInterval)
			err := probe(pctx, addr)
			cancel()
			p.recordProbe(r, err)
		}(r)
	}
	wg.Wait()
}

// recordProbe applies one probe outcome to r's state machine.
func (p *Pool) recordProbe(r *replica, err error) {
	now := p.cfg.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	r.probing = false
	if err != nil {
		r.fails++
		r.okStreak = 0
		if r.state == Suspect && r.fails >= p.cfg.DownAfter {
			p.markDown(r, now, "probe failures")
		}
		// Exponential backoff: a dead replica is probed less and less often.
		if r.probeBackoff == 0 {
			r.probeBackoff = p.cfg.ProbeInterval
		} else {
			r.probeBackoff *= 2
			if r.probeBackoff > p.cfg.ProbeBackoffMax {
				r.probeBackoff = p.cfg.ProbeBackoffMax
			}
		}
		r.nextProbe = now.Add(r.probeBackoff)
		return
	}
	r.fails = 0
	r.probeBackoff = p.cfg.ProbeInterval
	r.nextProbe = now.Add(p.cfg.ProbeInterval)
	switch r.state {
	case Down:
		p.transition(r, Recovering, "probe ok")
		r.okStreak = 1
	case Recovering:
		r.okStreak++
		if r.okStreak >= 2 {
			p.promote(r, "probe ok")
		}
	case Suspect:
		p.transition(r, Healthy, "probe ok")
	}
}

// Run drives the sweep/probe loop until ctx is cancelled.
func (p *Pool) Run(ctx context.Context) {
	t := time.NewTicker(p.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.ProbeOnce(ctx)
		}
	}
}

// Pick selects the best routable replica of shard, skipping the node ids in
// tried (earlier attempts of the same request) and replicas whose breaker is
// open. Preference: healthiest state first, then freshest snapshot (highest
// generation, lowest age), round-robin across equals. Returns ("", "") when
// the shard has no routable replica — the partial-response path.
func (p *Pool) Pick(shard int, tried map[string]bool) (node, addr string) {
	now := p.cfg.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if shard < 0 || shard >= len(p.byShard) {
		return "", ""
	}
	var best *replica
	for _, r := range p.byShard[shard] {
		if tried[r.node] || r.state == Down || r.breakerOpen(now) {
			continue
		}
		if best == nil || p.better(r, best) {
			best = r
		}
	}
	if best == nil {
		return "", ""
	}
	p.rrSeq++
	best.rr = p.rrSeq
	return best.node, best.addr
}

// PickIngestPrimary selects the replica to forward a write to: the one
// whose latest heartbeat advertises the "primary" ingest role, skipping
// down replicas, open breakers, and the node ids in tried. When several
// qualify (a failover just moved the role), the freshest heartbeat wins —
// it reflects the newest role assignment. Returns ok=false when no primary
// is currently known, the write-unavailable (503) path.
func (p *Pool) PickIngestPrimary(tried map[string]bool) (node, addr string, ok bool) {
	now := p.cfg.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *replica
	for _, r := range p.replicas {
		if r.ingestRole != "primary" || tried[r.node] || r.state == Down || r.breakerOpen(now) {
			continue
		}
		if best == nil || r.lastBeat.After(best.lastBeat) {
			best = r
		}
	}
	if best == nil {
		return "", "", false
	}
	return best.node, best.addr, true
}

// IngestTopology summarizes the write path for /healthz: the advertised
// primary (empty when none) and how many standbys are registered and alive.
func (p *Pool) IngestTopology() (primary string, standbys int) {
	now := p.cfg.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	var freshest time.Time
	for _, r := range p.replicas {
		switch r.ingestRole {
		case "primary":
			if r.state != Down && !r.breakerOpen(now) && r.lastBeat.After(freshest) {
				primary, freshest = r.node, r.lastBeat
			}
		case "standby":
			if r.state != Down {
				standbys++
			}
		}
	}
	return primary, standbys
}

// better reports whether a should be preferred over b. Called with p.mu held.
func (p *Pool) better(a, b *replica) bool {
	if ra, rb := stateRank(a.state), stateRank(b.state); ra != rb {
		return ra < rb
	}
	if a.generation != b.generation {
		return a.generation > b.generation
	}
	if a.ageSeconds != b.ageSeconds {
		return a.ageSeconds < b.ageSeconds
	}
	// Round-robin: least-recently-picked first.
	return a.rr < b.rr
}

// stateRank orders states by routing preference.
func stateRank(s State) int {
	switch s {
	case Healthy:
		return 0
	case Recovering:
		return 1
	case Suspect:
		return 2
	default:
		return 3
	}
}

// ReplicaStatus is one replica's row in the /cluster/status document.
type ReplicaStatus struct {
	Node             string  `json:"node"`
	Addr             string  `json:"addr"`
	State            string  `json:"state"`
	Generation       uint64  `json:"generation"`
	AgeSeconds       float64 `json:"snapshotAgeSeconds"`
	FreshnessSeconds float64 `json:"freshnessSeconds"`
	Rules            int     `json:"rules"`
	SourceKind       string  `json:"sourceKind,omitempty"`
	Degraded         bool    `json:"degraded,omitempty"`
	IngestRole       string  `json:"ingestRole,omitempty"`
	ReplLagSegments  int     `json:"replLagSegments,omitempty"`
	LastHeartbeatAgo float64 `json:"lastHeartbeatAgoSeconds"`
	Failures         int64   `json:"failures"`
	Requests         int64   `json:"requests"`
	BreakerOpen      bool    `json:"breakerOpen"`
	BreakerOpens     int64   `json:"breakerOpens"`
}

// ShardStatus is one shard's row in the /cluster/status document.
type ShardStatus struct {
	Shard    int             `json:"shard"`
	Routable bool            `json:"routable"` // at least one non-down, breaker-closed replica
	Replicas []ReplicaStatus `json:"replicas"`
}

// Status is the /cluster/status document: the router's full view of the
// fleet, consumed by `nmtx cluster status` and the chaos tests.
type Status struct {
	Shards        int           `json:"shards"`
	Routable      int           `json:"routableShards"`
	Registered    int           `json:"registeredReplicas"`
	Heartbeats    int64         `json:"heartbeats"`
	HeartbeatErrs int64         `json:"heartbeatErrors,omitempty"`
	Table         []ShardStatus `json:"table"`
}

// Status snapshots the pool.
func (p *Pool) Status() Status {
	now := p.cfg.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	doc := Status{
		Shards:        p.cfg.Shards,
		Registered:    len(p.replicas),
		Heartbeats:    p.heartbeats,
		HeartbeatErrs: p.heartbeatErrs,
		Table:         make([]ShardStatus, p.cfg.Shards),
	}
	for shard := range p.byShard {
		row := ShardStatus{Shard: shard, Replicas: []ReplicaStatus{}}
		for _, r := range p.byShard[shard] {
			rs := ReplicaStatus{
				Node:             r.node,
				Addr:             r.addr,
				State:            r.state.String(),
				Generation:       r.generation,
				AgeSeconds:       r.ageSeconds,
				FreshnessSeconds: r.freshness,
				Rules:            r.rules,
				SourceKind:       r.sourceKind,
				Degraded:         r.degraded,
				IngestRole:       r.ingestRole,
				ReplLagSegments:  r.replLag,
				Failures:         r.failures,
				Requests:         r.requests,
				BreakerOpen:      r.breakerOpen(now),
				BreakerOpens:     r.brOpens,
			}
			if !r.lastBeat.IsZero() {
				rs.LastHeartbeatAgo = now.Sub(r.lastBeat).Seconds()
			}
			if r.state != Down && !r.breakerOpen(now) {
				row.Routable = true
			}
			row.Replicas = append(row.Replicas, rs)
		}
		sort.Slice(row.Replicas, func(i, j int) bool { return row.Replicas[i].Node < row.Replicas[j].Node })
		if row.Routable {
			doc.Routable++
		}
		doc.Table[shard] = row
	}
	return doc
}
