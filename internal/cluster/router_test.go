package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"negmine/internal/fault"
)

// pickItems returns one item name per shard id (names whose ShardOfItem is
// exactly that shard), so tests can aim baskets at specific shards.
func pickItems(t *testing.T, shards int) []string {
	t.Helper()
	out := make([]string, shards)
	found := 0
	for i := 0; found < shards && i < 10000; i++ {
		name := fmt.Sprintf("item-%d", i)
		s := ShardOfItem(name, shards)
		if out[s] == "" {
			out[s] = name
			found++
		}
	}
	if found != shards {
		t.Fatalf("could not find one item per shard")
	}
	return out
}

// shardBackend is a fake negmined shard serving canned /score and /rules
// documents.
type shardBackend struct {
	t       *testing.T
	srv     *httptest.Server
	matches []WireMatch
	rules   []WireRule
	fail    atomic.Bool  // every request answers 500
	delay   atomic.Int64 // nanoseconds to stall before answering
	hits    atomic.Int64
}

func newShardBackend(t *testing.T) *shardBackend {
	b := &shardBackend{t: t}
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		if d := b.delay.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
		}
		if b.fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		switch r.URL.Path {
		case "/score":
			var req scoreReq
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			minRI := 0.0
			if req.MinRI != nil {
				minRI = *req.MinRI
			}
			m := b.matches
			if m == nil {
				m = []WireMatch{}
			}
			writeJSON(w, http.StatusOK, ScoreDoc{Basket: req.Basket, MinRI: minRI, Matches: m})
		case "/rules":
			rs := b.rules
			if rs == nil {
				rs = []WireRule{}
			}
			q := r.URL.Query()
			writeJSON(w, http.StatusOK, RulesDoc{
				Item:     q.Get("item"),
				Expanded: []string{q.Get("item")},
				Rules:    rs,
			})
		case "/healthz":
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func (b *shardBackend) addr() string { return strings.TrimPrefix(b.srv.URL, "http://") }

// testRouter builds a router with the given backends registered, one per
// shard slot (nil slots stay unregistered).
func testRouter(t *testing.T, cfg RouterConfig, backends ...[]*shardBackend) *Router {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = len(backends)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for shard, reps := range backends {
		for i, b := range reps {
			hb := Heartbeat{
				Node:   fmt.Sprintf("s%d-r%d", shard, i),
				Addr:   b.addr(),
				Shard:  shard,
				Shards: cfg.Shards,
			}
			if err := rt.Pool().Heartbeat(hb); err != nil {
				t.Fatalf("register shard %d replica %d: %v", shard, i, err)
			}
		}
	}
	return rt
}

func match(ri float64, ante, cons string) WireMatch {
	return WireMatch{
		WireRule: WireRule{Antecedent: []string{ante}, Consequent: []string{cons}, RuleInterest: ri},
		Triggers: map[string]string{ante: ante},
	}
}

func postScore(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, ScoreDoc) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/score", bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var doc ScoreDoc
	if rec.Code == http.StatusOK || rec.Code == http.StatusPartialContent {
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("bad score body: %v\n%s", err, rec.Body.Bytes())
		}
	}
	return rec, doc
}

func TestRouterScoreMergesAcrossShards(t *testing.T) {
	items := pickItems(t, 2)
	b0, b1 := newShardBackend(t), newShardBackend(t)
	b0.matches = []WireMatch{match(0.9, items[0], "x"), match(0.3, items[0], "y")}
	b1.matches = []WireMatch{match(0.5, items[1], "z")}
	rt := testRouter(t, RouterConfig{Logf: t.Logf}, []*shardBackend{b0}, []*shardBackend{b1})
	h := rt.Handler()

	body := fmt.Sprintf(`{"basket": [%q, %q]}`, items[0], items[1])
	rec, doc := postScore(t, h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", rec.Code, rec.Body.Bytes())
	}
	if doc.Partial || len(doc.MissingShards) != 0 {
		t.Fatalf("healthy merge marked partial: %+v", doc)
	}
	if len(doc.Matches) != 3 {
		t.Fatalf("merged %d matches, want 3", len(doc.Matches))
	}
	// Interleaved by RI: 0.9 (shard 0), 0.5 (shard 1), 0.3 (shard 0).
	ris := []float64{doc.Matches[0].RuleInterest, doc.Matches[1].RuleInterest, doc.Matches[2].RuleInterest}
	if ris[0] != 0.9 || ris[1] != 0.5 || ris[2] != 0.3 {
		t.Fatalf("merge order = %v", ris)
	}
	// A single-shard basket only fans out to its own shard.
	b0.hits.Store(0)
	b1.hits.Store(0)
	rec, _ = postScore(t, h, fmt.Sprintf(`{"basket": [%q]}`, items[0]))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if b1.hits.Load() != 0 {
		t.Fatal("single-shard basket touched the other shard")
	}
}

func TestRouterScorePartialOnDeadShard(t *testing.T) {
	items := pickItems(t, 2)
	b0 := newShardBackend(t)
	b0.matches = []WireMatch{match(0.9, items[0], "x")}
	// Shard 1 has no registered replica at all.
	rt := testRouter(t, RouterConfig{Shards: 2, Logf: t.Logf}, []*shardBackend{b0})
	h := rt.Handler()

	body := fmt.Sprintf(`{"basket": [%q, %q]}`, items[0], items[1])
	rec, doc := postScore(t, h, body)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206\n%s", rec.Code, rec.Body.Bytes())
	}
	if !doc.Partial || len(doc.MissingShards) != 1 || doc.MissingShards[0] != 1 {
		t.Fatalf("partial doc = %+v", doc)
	}
	if len(doc.Matches) != 1 || doc.Matches[0].RuleInterest != 0.9 {
		t.Fatalf("surviving shard's matches missing: %+v", doc.Matches)
	}
}

func TestRouterRetriesAgainstSiblingReplica(t *testing.T) {
	items := pickItems(t, 1)
	bad, good := newShardBackend(t), newShardBackend(t)
	bad.fail.Store(true)
	good.matches = []WireMatch{match(0.7, items[0], "x")}
	rt := testRouter(t, RouterConfig{Logf: t.Logf}, []*shardBackend{bad, good})
	h := rt.Handler()

	// Whichever replica is tried first, a 500 must be retried on the sibling
	// within the retry budget, yielding a full (not partial) answer.
	for i := 0; i < 2; i++ {
		rec, doc := postScore(t, h, fmt.Sprintf(`{"basket": [%q]}`, items[0]))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d\n%s", rec.Code, rec.Body.Bytes())
		}
		if doc.Partial || len(doc.Matches) != 1 {
			t.Fatalf("doc = %+v", doc)
		}
	}
	if bad.hits.Load() == 0 {
		t.Fatal("failing replica was never tried — retry path not exercised")
	}
	m := rt.metrics
	if m.retries.Load() == 0 {
		t.Fatalf("retries = 0, attempts = %d", m.attempts.Load())
	}
	// The failure was reported: the bad replica is now suspect.
	if got := replicaState(t, rt.Pool(), "s0-r0"); got == "healthy" {
		t.Fatal("failing replica still marked healthy")
	}
}

func TestRouterHedgesSlowReplica(t *testing.T) {
	items := pickItems(t, 1)
	slow, fast := newShardBackend(t), newShardBackend(t)
	slow.delay.Store(int64(2 * time.Second))
	want := []WireMatch{match(0.7, items[0], "x")}
	slow.matches = want
	fast.matches = want
	rt := testRouter(t, RouterConfig{
		HedgeAfter:   20 * time.Millisecond,
		ShardTimeout: 5 * time.Second,
		Logf:         t.Logf,
	}, []*shardBackend{slow, fast})
	h := rt.Handler()

	start := time.Now()
	rec, doc := postScore(t, h, fmt.Sprintf(`{"basket": [%q]}`, items[0]))
	if rec.Code != http.StatusOK || doc.Partial {
		t.Fatalf("status = %d, doc = %+v", rec.Code, doc)
	}
	if d := time.Since(start); d > 1500*time.Millisecond {
		t.Fatalf("hedge did not rescue the request: took %v", d)
	}
	// Run once more in case the fast replica was picked first the first time.
	rec, _ = postScore(t, h, fmt.Sprintf(`{"basket": [%q]}`, items[0]))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if rt.metrics.hedges.Load() == 0 {
		t.Fatal("no hedge was dispatched")
	}
}

func TestRouterDialFailpointDegradesNever500(t *testing.T) {
	items := pickItems(t, 2)
	b0, b1 := newShardBackend(t), newShardBackend(t)
	rt := testRouter(t, RouterConfig{Logf: t.Logf}, []*shardBackend{b0}, []*shardBackend{b1})
	h := rt.Handler()

	defer fault.Enable(PointDial, fault.Error("replica unreachable"))()
	body := fmt.Sprintf(`{"basket": [%q, %q]}`, items[0], items[1])
	rec, doc := postScore(t, h, body)
	if rec.Code >= 500 {
		t.Fatalf("injected dial failure surfaced as %d — must degrade, not fail", rec.Code)
	}
	if rec.Code != http.StatusPartialContent || !doc.Partial {
		t.Fatalf("status = %d, doc = %+v, want 206 partial", rec.Code, doc)
	}
	if len(doc.MissingShards) != 2 {
		t.Fatalf("missingShards = %v, want both", doc.MissingShards)
	}
	if len(doc.Matches) != 0 {
		t.Fatalf("matches = %v, want none", doc.Matches)
	}
}

func TestRouterMergeFailpointIs500(t *testing.T) {
	items := pickItems(t, 1)
	b0 := newShardBackend(t)
	rt := testRouter(t, RouterConfig{Logf: t.Logf}, []*shardBackend{b0})
	h := rt.Handler()

	defer fault.Enable(PointMerge, fault.Error("merge bug"))()
	rec, _ := postScore(t, h, fmt.Sprintf(`{"basket": [%q]}`, items[0]))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (merge is the router's own fault)", rec.Code)
	}
}

func TestRouterRulesFansToAllShards(t *testing.T) {
	b0, b1 := newShardBackend(t), newShardBackend(t)
	b0.rules = []WireRule{{Antecedent: []string{"a"}, Consequent: []string{"q"}, RuleInterest: 0.2}}
	b1.rules = []WireRule{{Antecedent: []string{"b"}, Consequent: []string{"q"}, RuleInterest: 0.8}}
	rt := testRouter(t, RouterConfig{Logf: t.Logf}, []*shardBackend{b0}, []*shardBackend{b1})
	h := rt.Handler()

	req := httptest.NewRequest(http.MethodGet, "/rules?item=q&minri=0.1", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d\n%s", rec.Code, rec.Body.Bytes())
	}
	var doc RulesDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Item != "q" || doc.MinRI != 0.1 || doc.Partial {
		t.Fatalf("doc = %+v", doc)
	}
	if len(doc.Rules) != 2 || doc.Rules[0].RuleInterest != 0.8 || doc.Rules[1].RuleInterest != 0.2 {
		t.Fatalf("rules = %+v", doc.Rules)
	}
	if b0.hits.Load() == 0 || b1.hits.Load() == 0 {
		t.Fatal("/rules did not fan out to every shard")
	}

	// Missing item parameter is the router's own 400, no fan-out.
	b0.hits.Store(0)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/rules", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if b0.hits.Load() != 0 {
		t.Fatal("invalid request reached a shard")
	}
}

func TestRouterHeartbeatAndStatusEndpoints(t *testing.T) {
	rt := testRouter(t, RouterConfig{Shards: 2, Logf: t.Logf})
	h := rt.Handler()

	hb := `{"node": "n0", "addr": "127.0.0.1:9", "shard": 1, "shards": 2, "generation": 4, "rules": 11}`
	req := httptest.NewRequest(http.MethodPost, "/cluster/heartbeat", bytes.NewReader([]byte(hb)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("heartbeat status = %d\n%s", rec.Code, rec.Body.Bytes())
	}

	// Mismatched width is rejected.
	bad := `{"node": "n1", "addr": "127.0.0.1:9", "shard": 0, "shards": 3}`
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/cluster/heartbeat", bytes.NewReader([]byte(bad))))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad heartbeat status = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cluster/status", nil))
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.Registered != 1 || st.Routable != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Table[1].Replicas[0].Generation != 4 || st.Table[1].Replicas[0].Rules != 11 {
		t.Fatalf("replica row = %+v", st.Table[1].Replicas[0])
	}

	// /healthz reports degraded while a shard has no replica.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health routerHealth
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Routable != 1 {
		t.Fatalf("health = %+v", health)
	}

	// /metrics exports fan-out counters and the cluster table.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var metrics routerMetricsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Cluster.Registered != 1 {
		t.Fatalf("metrics cluster block = %+v", metrics.Cluster)
	}
}

func TestRouterRejectsBadScoreRequests(t *testing.T) {
	b0 := newShardBackend(t)
	rt := testRouter(t, RouterConfig{Logf: t.Logf}, []*shardBackend{b0})
	h := rt.Handler()

	for _, body := range []string{``, `{}`, `{"basket": []}`, `{"basket": ["a"], "bogus": 1}`} {
		rec, _ := postScore(t, h, body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400", body, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/score", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /score = %d, want 405", rec.Code)
	}
	if b0.hits.Load() != 0 {
		t.Fatal("invalid requests reached the shard")
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Fatal("zero-shard router accepted")
	}
	if _, err := NewRouter(RouterConfig{Shards: -1}); err == nil {
		t.Fatal("negative-shard router accepted")
	}
}

func TestRetryBudgetBounds(t *testing.T) {
	b := &retryBudget{ratio: 0.5, burst: 2, tokens: 2}
	if !b.take() || !b.take() {
		t.Fatal("full bucket refused takes")
	}
	if b.take() {
		t.Fatal("empty bucket granted a take")
	}
	b.earn()
	b.earn() // 1.0 token
	if !b.take() {
		t.Fatal("earned token refused")
	}
	for i := 0; i < 100; i++ {
		b.earn()
	}
	if b.tokens > b.burst {
		t.Fatalf("tokens %v exceeded burst %v", b.tokens, b.burst)
	}
	disabled := &retryBudget{ratio: -1}
	disabled.earn()
	if disabled.take() {
		t.Fatal("disabled budget granted a retry")
	}
	if errors.Is(errNoReplica, fault.ErrInjected) {
		t.Fatal("sentinel confusion")
	}
}
