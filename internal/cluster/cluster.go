// Package cluster is the fault-tolerant coordination layer that scales the
// single-process rule daemon out into a sharded, replicated fleet: negmined
// nodes register with a router and heartbeat their shard identity, snapshot
// generation and load state; the router (cmd/negrouter) maintains a
// health-checked shard pool and fans POST /score and GET /rules out across
// the shards, merging the per-shard ranked results into a response that is
// byte-identical to what one unsharded daemon would have served.
//
// # Sharding contract
//
// Rules are partitioned by antecedent item: a rule belongs to the shard of
// its lexicographically-first antecedent item (ShardOfAntecedent). The
// assignment is a pure function of the rule and the shard count, so every
// producer filtering a snapshot (serve.Meta.Keep) and every router routing a
// query computes the same mapping with no coordination. Because a triggered
// rule's antecedent is a subset of the basket, the shards owning the
// basket's items (ShardsForBasket) are exactly the shards that can own a
// triggered rule — /score fans out only to those; /rules?item=X fans out to
// every shard, since X may sit on any rule's consequent.
//
// # Failure model
//
// Robustness is the point of the package, in the same spirit as the paper's
// Partition guarantee (per-shard results stay exact over disjoint data, so
// a partial answer is still a correct answer over the shards that remain):
//
//   - Every replica runs the health state machine healthy → suspect → down
//     → recovering, driven by heartbeats, request outcomes, and exponential
//     backoff probes (Pool).
//   - Requests get per-shard timeouts, budgeted retries against sibling
//     replicas, and optional hedging for tail latency (Router).
//   - Per-replica circuit breakers (modeled on the serve watch breaker)
//     stop hammering a replica that keeps failing; an open breaker lets one
//     trial request through after an exponentially growing cool-down.
//   - A shard with no usable replica degrades the response instead of
//     failing it: the router answers 206 with "partial": true and the
//     missing shard ids, never a 5xx.
//
// The cluster.* failpoints below make every one of those paths reproducible
// on demand (see internal/fault).
package cluster

import (
	"hash/fnv"
	"sync"
	"time"
)

// Failpoints (see internal/fault). All are no-ops unless armed by a test or
// NEGMINE_FAULTS.
const (
	// PointHeartbeat fires on every heartbeat the router ingests; an error
	// action models lost or rejected heartbeats (a healthy node that the
	// router slowly stops trusting), a sleep action a slow intake path.
	PointHeartbeat = "cluster.heartbeat"

	// PointDial fires before every proxied shard request (fan-out attempts,
	// retries and hedges alike); an error action models an unreachable
	// replica and must drive the retry → breaker → partial-response chain,
	// never a router 5xx.
	PointDial = "cluster.dial"

	// PointMerge fires at the top of every fan-out result merge; an error
	// action models a merge bug and is the one cluster failure that is
	// allowed to surface as a router 500 (it is the router's own fault, not
	// a shard's).
	PointMerge = "cluster.merge"

	// PointPromote fires when a standby decides to promote itself (lease
	// expiry or manual trigger), before any epoch is bumped; an error action
	// models a promotion that cannot proceed yet and must be retried, never
	// a half-promoted node.
	PointPromote = "cluster.promote"
)

// ShardOfItem maps an item name to its owning shard in [0, shards).
// The hash is FNV-1a, pinned here as the cross-process contract: producers
// filtering snapshots and routers routing queries must agree byte-for-byte.
func ShardOfItem(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// ShardOfAntecedent maps a rule to its owning shard: the shard of the
// lexicographically-first antecedent item. Serving-layer entries carry
// their sides pre-sorted, but the minimum is computed defensively so the
// assignment never depends on caller ordering.
func ShardOfAntecedent(antecedent []string, shards int) int {
	if len(antecedent) == 0 || shards <= 1 {
		return 0
	}
	min := antecedent[0]
	for _, name := range antecedent[1:] {
		if name < min {
			min = name
		}
	}
	return ShardOfItem(min, shards)
}

// ShardsForBasket returns the sorted, de-duplicated shard ids that can own
// a rule triggered by the basket (the shards of the basket's items).
func ShardsForBasket(basket []string, shards int) []int {
	if shards <= 1 {
		return []int{0}
	}
	seen := make([]bool, shards)
	out := make([]int, 0, len(basket))
	for _, name := range basket {
		seen[ShardOfItem(name, shards)] = true
	}
	for id, hit := range seen {
		if hit {
			out = append(out, id)
		}
	}
	return out
}

// Heartbeat is the payload a negmined node POSTs to the router's
// /cluster/heartbeat endpoint. The first heartbeat registers the node; every
// later one refreshes its liveness and advertises what it is serving, so the
// router can prefer fresher, less-loaded replicas.
type Heartbeat struct {
	Node  string `json:"node"`  // node identity (negmined -node-id)
	Addr  string `json:"addr"`  // host:port the router should dial
	Shard int    `json:"shard"` // shard this node serves, in [0, shards)
	// Shards is the node's view of the cluster width; the router rejects a
	// heartbeat whose width disagrees with its own -shards so a misconfigured
	// node cannot silently serve a differently-partitioned rule set.
	Shards     int     `json:"shards"`
	Generation uint64  `json:"generation"`         // snapshot generation being served
	AgeSeconds float64 `json:"snapshotAgeSeconds"` // staleness of the served snapshot
	// FreshnessSeconds is the node's rule freshness: now minus the newest
	// ingested transaction visible in its served snapshot (equals the
	// snapshot age on nodes without an ingest watermark — same clock).
	FreshnessSeconds float64 `json:"freshnessSeconds"`
	Rules            int     `json:"rules"`                // rules in the served snapshot
	SourceKind string  `json:"sourceKind,omitempty"` // mined | json | ingest | mmap
	Degraded   bool    `json:"degraded,omitempty"`   // govern degraded mode (shedding expensive work)
	// IngestRole is the node's write-path role: "primary" (accepts
	// /ingest), "standby" (replicating, promotable), "fenced" (deposed
	// primary, rejecting writes), or "replica" (read-only serving node).
	// Empty on heartbeats from pre-HA nodes.
	IngestRole string `json:"ingestRole,omitempty"`
	// ReplLagSegments is how many sealed segments the node's copy of the
	// ingest log trails the primary's (standby only; 0 when caught up).
	ReplLagSegments int `json:"replLagSegments,omitempty"`
}

// nowFunc is the clock the pool runs on; injectable for deterministic tests.
type nowFunc func() time.Time

// Lease is the standby's failure detector on its primary: every successful
// contact renews it, and once TTL elapses with no renewal the holder may
// act (promote). It is a plain deadline, not a distributed lease — the
// fencing epoch in the seglog manifest is what makes a mistaken promotion
// safe. Safe for concurrent use; the zero value is unusable, see NewLease.
type Lease struct {
	ttl time.Duration
	now nowFunc

	mu   sync.Mutex
	last time.Time
}

// NewLease returns a lease with the given TTL, freshly renewed. A nil now
// uses the wall clock.
func NewLease(ttl time.Duration, now nowFunc) *Lease {
	if now == nil {
		now = time.Now
	}
	return &Lease{ttl: ttl, now: now, last: now()}
}

// Renew marks a successful primary contact.
func (l *Lease) Renew() {
	l.mu.Lock()
	l.last = l.now()
	l.mu.Unlock()
}

// Expired reports whether the TTL has elapsed since the last renewal.
func (l *Lease) Expired() bool {
	return l.SinceRenewal() > l.ttl
}

// TTL returns the lease interval.
func (l *Lease) TTL() time.Duration { return l.ttl }

// SinceRenewal returns how long ago the lease was last renewed.
func (l *Lease) SinceRenewal() time.Duration {
	l.mu.Lock()
	last := l.last
	l.mu.Unlock()
	return l.now().Sub(last)
}
