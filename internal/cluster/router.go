package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"negmine/internal/fault"
)

// errNoReplica marks a shard fan-out that found no routable replica: the
// shard is omitted from the response (partial), never turned into a 5xx.
var errNoReplica = errors.New("cluster: no routable replica")

// maxShardBody bounds one proxied shard response.
const maxShardBody = 64 << 20

// maxAttempts bounds attempts (first try + retries + hedges) per shard per
// request; it also sizes the result channel so abandoned attempts can
// always deliver without leaking a goroutine.
const maxAttempts = 16

// RouterConfig tunes the router. Shards is required; every other field's
// zero value falls back to the default documented on it.
type RouterConfig struct {
	// Shards is the cluster width.
	Shards int
	// ShardTimeout bounds one shard's whole fan-out (first attempt, retries
	// and hedges together; default 2s).
	ShardTimeout time.Duration
	// RetryBudget is the retry allowance as a fraction of request volume
	// (default 0.1 = one retry per ten requests, burst 3). Negative
	// disables retries entirely.
	RetryBudget float64
	// RetryBurst is the retry token cap (default 3).
	RetryBurst float64
	// HedgeAfter launches a duplicate request on a second replica when the
	// first has not answered within this delay — the tail-latency hedge.
	// Zero (the default) disables hedging.
	HedgeAfter time.Duration
	// Pool tunes the health-checked replica pool; Pool.Shards defaults to
	// Shards.
	Pool PoolConfig
	// Client performs proxied shard requests (default: a dedicated client
	// with per-attempt dial timeouts; never http.DefaultClient).
	Client *http.Client
	// Logf receives router logs (default: discard).
	Logf func(format string, args ...any)
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 0.1
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 3
	}
	if c.Pool.Shards == 0 {
		c.Pool.Shards = c.Shards
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Pool.Logf == nil {
		c.Pool.Logf = c.Logf
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 1 * time.Second}).DialContext,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return c
}

// retryBudget is a token bucket bounding failure-triggered retries to a
// fraction of request volume, so a dying shard cannot double the fleet's
// load (every request earns ratio tokens, every retry spends one).
type retryBudget struct {
	mu     sync.Mutex
	ratio  float64
	burst  float64
	tokens float64
}

func (b *retryBudget) earn() {
	if b.ratio <= 0 {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

func (b *retryBudget) take() bool {
	if b.ratio <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Router fans /score and /rules out across a health-checked shard pool and
// merges the ranked results. See the package comment for the failure model.
type Router struct {
	cfg     RouterConfig
	pool    *Pool
	budget  *retryBudget
	metrics *routerMetrics
}

// NewRouter builds a router for a cluster of cfg.Shards shards.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("cluster: router needs a positive shard count, got %d", cfg.Shards)
	}
	return &Router{
		cfg:  cfg,
		pool: NewPool(cfg.Pool),
		// The bucket starts full so a failure in a quiet period can still
		// retry; sustained failure drains it down to the earn ratio.
		budget:  &retryBudget{ratio: cfg.RetryBudget, burst: cfg.RetryBurst, tokens: cfg.RetryBurst},
		metrics: newRouterMetrics(),
	}, nil
}

// Pool exposes the router's replica pool (heartbeat intake, status, tests).
func (rt *Router) Pool() *Pool { return rt.pool }

// Run drives the pool's sweep/probe loop until ctx is cancelled.
func (rt *Router) Run(ctx context.Context) { rt.pool.Run(ctx) }

// httpProbe is the default health probe: GET /healthz, any 2xx is alive.
var probeClient = &http.Client{Transport: &http.Transport{
	DialContext: (&net.Dialer{Timeout: 1 * time.Second}).DialContext,
}}

func (p *Pool) httpProbe(ctx context.Context, addr string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := probeClient.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("cluster: probe %s: HTTP %d", addr, resp.StatusCode)
	}
	return nil
}

// Handler returns the router's HTTP handler:
//
//	POST /score              fan out by basket-item shard, merge ranked matches
//	GET  /rules?item=NAME    fan out to every shard, merge ranked rules
//	POST /ingest             forward the write to the current ingest primary
//	GET  /healthz            router liveness + routable-shard summary
//	GET  /metrics            fan-out counters, latency, full cluster status
//	POST /cluster/heartbeat  node registration + liveness (negmined -cluster-join)
//	GET  /cluster/status     the pool's full shard/replica table
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/score", rt.instrument(repScore, http.HandlerFunc(rt.handleScore)))
	mux.Handle("/rules", rt.instrument(repRules, http.HandlerFunc(rt.handleRules)))
	mux.Handle("/ingest", rt.instrument(repIngest, http.HandlerFunc(rt.handleIngest)))
	mux.Handle("/healthz", rt.instrument(repOther, http.HandlerFunc(rt.handleHealthz)))
	mux.Handle("/metrics", rt.instrument(repOther, http.HandlerFunc(rt.handleMetrics)))
	mux.Handle("/cluster/heartbeat", rt.instrument(repHeartbeat, http.HandlerFunc(rt.handleHeartbeat)))
	mux.Handle("/cluster/status", rt.instrument(repStatus, http.HandlerFunc(rt.handleStatus)))
	mux.Handle("/", rt.instrument(repOther, http.NotFoundHandler()))
	return mux
}

type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with metrics and panic recovery: a panicking
// handler produces a 500 and never takes the router down.
func (rt *Router) instrument(ep int, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				rt.cfg.Logf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal error")
				}
			}
			rt.metrics.observe(ep, time.Since(start), sw.status)
		}()
		next.ServeHTTP(sw, r)
	})
}

// writeJSON mirrors internal/serve's encoder settings exactly — the merged
// documents must be byte-identical to a single daemon's.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shardResult is one attempt chain's outcome for one shard.
type shardResult struct {
	status  int
	body    []byte
	node    string
	attempt int // 0 = first attempt, >0 = retry or hedge
	err     error
}

// doAttempt performs one proxied request against one replica.
func (rt *Router) doAttempt(ctx context.Context, node, addr string, attempt int,
	mkReq func(ctx context.Context, addr string) (*http.Request, error)) shardResult {
	res := shardResult{node: node, attempt: attempt}
	if res.err = fault.Hit(PointDial); res.err != nil {
		return res
	}
	req, err := mkReq(ctx, addr)
	if err != nil {
		res.err = err
		return res
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody+1))
	if err != nil {
		res.err = err
		return res
	}
	if len(body) > maxShardBody {
		res.err = fmt.Errorf("cluster: shard %s response exceeds %d bytes", node, maxShardBody)
		return res
	}
	if resp.StatusCode >= 500 {
		// A shard 5xx is a replica failure: retryable, breaker-countable.
		res.err = fmt.Errorf("cluster: shard replica %s: HTTP %d", node, resp.StatusCode)
		return res
	}
	res.status = resp.StatusCode
	res.body = body
	return res
}

// callShard runs one shard's attempt chain: pick the best replica, enforce
// the shard timeout, hedge slow attempts onto a sibling replica, retry
// failures within the retry budget, and report every outcome to the health
// state machine. The first success wins; abandoned attempts drain into the
// buffered channel.
func (rt *Router) callShard(ctx context.Context, shard int,
	mkReq func(ctx context.Context, addr string) (*http.Request, error)) shardResult {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
	defer cancel()
	rt.budget.earn()

	tried := map[string]bool{}
	results := make(chan shardResult, maxAttempts)
	inflight, attempts := 0, 0
	launch := func() bool {
		if attempts >= maxAttempts {
			return false
		}
		node, addr := rt.pool.Pick(shard, tried)
		if node == "" {
			return false
		}
		tried[node] = true
		a := attempts
		attempts++
		inflight++
		rt.metrics.attempts.Add(1)
		go func() { results <- rt.doAttempt(ctx, node, addr, a, mkReq) }()
		return true
	}
	if !launch() {
		rt.metrics.noReplica.Add(1)
		return shardResult{err: errNoReplica}
	}
	var hedge <-chan time.Time
	if rt.cfg.HedgeAfter > 0 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	var last shardResult
	for {
		select {
		case res := <-results:
			inflight--
			if res.err == nil {
				rt.pool.ReportSuccess(res.node)
				if res.attempt > 0 {
					rt.metrics.hedgeWins.Add(1)
				}
				return res
			}
			rt.pool.ReportFailure(res.node)
			last = res
			if !errors.Is(res.err, context.Canceled) && ctx.Err() == nil {
				if rt.budget.take() {
					if launch() {
						rt.metrics.retries.Add(1)
						continue
					}
				} else {
					rt.metrics.retryDenied.Add(1)
				}
			}
			if inflight == 0 {
				return last
			}
		case <-hedge:
			hedge = nil
			if launch() {
				rt.metrics.hedges.Add(1)
			}
		case <-ctx.Done():
			if last.err == nil {
				last.err = ctx.Err()
			}
			return last
		}
	}
}

// fanOut runs callShard for every listed shard concurrently and returns the
// outcomes in shard order.
func (rt *Router) fanOut(ctx context.Context, shards []int,
	mkReq func(ctx context.Context, addr string) (*http.Request, error)) []shardResult {
	out := make([]shardResult, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			out[i] = rt.callShard(ctx, shard, mkReq)
		}(i, shard)
	}
	wg.Wait()
	return out
}

// scoreReq mirrors serve's /score request body.
type scoreReq struct {
	Basket []string `json:"basket"`
	MinRI  *float64 `json:"minRI,omitempty"`
	Limit  int      `json:"limit,omitempty"`
}

func (rt *Router) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, `use POST /score with {"basket": [...]}`)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req scoreReq
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Basket) == 0 {
		writeError(w, http.StatusBadRequest, "basket must contain at least one item")
		return
	}
	minRI := 0.0
	if req.MinRI != nil {
		minRI = *req.MinRI
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "re-encoding request: %v", err)
		return
	}
	shards := ShardsForBasket(req.Basket, rt.pool.Shards())
	results := rt.fanOut(r.Context(), shards, func(ctx context.Context, addr string) (*http.Request, error) {
		sr, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/score", bytes.NewReader(body))
		if err == nil {
			sr.Header.Set("Content-Type", "application/json")
		}
		return sr, err
	})

	if err := fault.Hit(PointMerge); err != nil {
		writeError(w, http.StatusInternalServerError, "merge: %v", err)
		return
	}
	lists := make([][]WireMatch, 0, len(results))
	var missing []int
	for i, res := range results {
		switch {
		case res.err != nil:
			missing = append(missing, shards[i])
		case res.status != http.StatusOK:
			// A non-5xx error from a shard (4xx) would be the router's own
			// request reflected back; relay the first one verbatim.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.status)
			_, _ = w.Write(res.body)
			return
		default:
			var doc ScoreDoc
			if err := json.Unmarshal(res.body, &doc); err != nil {
				missing = append(missing, shards[i])
				rt.cfg.Logf("shard %d replica %s: bad /score body: %v", shards[i], res.node, err)
				continue
			}
			lists = append(lists, doc.Matches)
		}
	}
	out := ScoreDoc{
		Basket:        req.Basket,
		MinRI:         minRI,
		Matches:       MergeMatches(lists, req.Limit),
		Partial:       len(missing) > 0,
		MissingShards: missing,
	}
	status := http.StatusOK
	if out.Partial {
		status = http.StatusPartialContent
		rt.metrics.partials.Add(1)
	}
	writeJSON(w, status, out)
}

func (rt *Router) handleRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET /rules?item=NAME")
		return
	}
	q := r.URL.Query()
	item := q.Get("item")
	if item == "" {
		writeError(w, http.StatusBadRequest, "missing required query parameter: item")
		return
	}
	minRI := 0.0
	if v := q.Get("minri"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad minri %q: %v", v, err)
			return
		}
		minRI = f
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	// Rules can mention the item on either side, so every shard may hold a
	// match: fan out to all of them with the original query.
	shards := make([]int, rt.pool.Shards())
	for i := range shards {
		shards[i] = i
	}
	rawQuery := r.URL.RawQuery
	results := rt.fanOut(r.Context(), shards, func(ctx context.Context, addr string) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/rules?"+rawQuery, nil)
	})

	if err := fault.Hit(PointMerge); err != nil {
		writeError(w, http.StatusInternalServerError, "merge: %v", err)
		return
	}
	lists := make([][]WireRule, 0, len(results))
	var expanded []string
	var missing []int
	for i, res := range results {
		switch {
		case res.err != nil:
			missing = append(missing, shards[i])
		case res.status != http.StatusOK:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.status)
			_, _ = w.Write(res.body)
			return
		default:
			var doc RulesDoc
			if err := json.Unmarshal(res.body, &doc); err != nil {
				missing = append(missing, shards[i])
				rt.cfg.Logf("shard %d replica %s: bad /rules body: %v", shards[i], res.node, err)
				continue
			}
			// Every shard serves the same taxonomy, so the expansion is
			// identical everywhere; keep the first (lowest-shard) answer.
			if expanded == nil {
				expanded = doc.Expanded
			}
			lists = append(lists, doc.Rules)
		}
	}
	if expanded == nil {
		// Every shard is missing: the honest degraded expansion is the item
		// itself (the partial flag below tells the client why).
		expanded = []string{item}
	}
	out := RulesDoc{
		Item:          item,
		Expanded:      expanded,
		MinRI:         minRI,
		Rules:         MergeRules(lists, limit),
		Partial:       len(missing) > 0,
		MissingShards: missing,
	}
	status := http.StatusOK
	if out.Partial {
		status = http.StatusPartialContent
		rt.metrics.partials.Add(1)
	}
	writeJSON(w, status, out)
}

// ingestReq mirrors serve's /ingest request body so the router can
// validate before forwarding and inject an idempotency key when the client
// supplied none.
type ingestReq struct {
	Baskets [][]string `json:"baskets"`
	Key     string     `json:"key,omitempty"`
	Seq     uint64     `json:"seq,omitempty"`
}

// handleIngest forwards a write to the current ingest primary. Client-keyed
// bodies are relayed byte-for-byte (the key makes cross-node retries safe);
// unkeyed bodies get a router-generated key so the router's own failover
// retries cannot double-apply a batch. A 409 from a node means it is not
// (or no longer) the primary — the router re-picks and retries; with no
// routable primary the answer is 503 with a Retry-After hint.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, `use POST /ingest with {"baskets": [[...], ...]}`)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req ingestReq
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Baskets) == 0 {
		writeError(w, http.StatusBadRequest, "baskets must contain at least one basket")
		return
	}
	if req.Key == "" {
		var rnd [12]byte
		if _, err := rand.Read(rnd[:]); err != nil {
			writeError(w, http.StatusInternalServerError, "generating idempotency key: %v", err)
			return
		}
		req.Key, req.Seq = "negrouter-"+hex.EncodeToString(rnd[:]), 1
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "re-encoding request: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ShardTimeout)
	defer cancel()
	mkReq := func(ctx context.Context, addr string) (*http.Request, error) {
		fr, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/ingest", bytes.NewReader(body))
		if err == nil {
			fr.Header.Set("Content-Type", "application/json")
		}
		return fr, err
	}
	tried := map[string]bool{}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		node, addr, ok := rt.pool.PickIngestPrimary(tried)
		if !ok {
			break
		}
		tried[node] = true
		rt.metrics.attempts.Add(1)
		res := rt.doAttempt(ctx, node, addr, attempt, mkReq)
		if res.err != nil {
			rt.pool.ReportFailure(node)
			rt.metrics.ingestRerouted.Add(1)
			continue
		}
		rt.pool.ReportSuccess(node)
		if res.status == http.StatusConflict {
			// The node believes it is not the primary (fenced or demoted):
			// its heartbeat role is out of date. Try any other candidate.
			rt.metrics.ingestRerouted.Add(1)
			continue
		}
		rt.metrics.ingestForwarded.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
		return
	}
	rt.metrics.ingestNoPrimary.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "no routable ingest primary")
}

// routerHealth is the router /healthz payload.
type routerHealth struct {
	Status     string `json:"status"` // ok | degraded
	Shards     int    `json:"shards"`
	Routable   int    `json:"routableShards"`
	Registered int    `json:"registeredReplicas"`
	// IngestPrimary is the node currently advertising the primary ingest
	// role ("" when the cluster has no write path or the primary is down);
	// IngestStandbys counts live standbys ready to take over.
	IngestPrimary  string `json:"ingestPrimary,omitempty"`
	IngestStandbys int    `json:"ingestStandbys,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := rt.pool.Status()
	doc := routerHealth{Status: "ok", Shards: st.Shards, Routable: st.Routable, Registered: st.Registered}
	if st.Routable < st.Shards {
		doc.Status = "degraded"
	}
	doc.IngestPrimary, doc.IngestStandbys = rt.pool.IngestTopology()
	writeJSON(w, http.StatusOK, doc)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.metrics.export(rt.pool))
}

func (rt *Router) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST /cluster/heartbeat")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var hb Heartbeat
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&hb); err != nil {
		writeError(w, http.StatusBadRequest, "bad heartbeat: %v", err)
		return
	}
	if err := rt.pool.Heartbeat(hb); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.pool.Status())
}
