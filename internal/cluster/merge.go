package cluster

import (
	"sort"
	"strings"
)

// The wire types mirror internal/serve's response payloads field-for-field
// (names and order), because the router's merged response must be
// byte-identical to a single unsharded daemon's whenever every shard
// answered. Partial-failure fields are appended with omitempty so a healthy
// merge emits exactly the single-node document.

// WireRule is one rule as served by /rules and inside /score matches.
type WireRule struct {
	Antecedent      []string `json:"antecedent"`
	Consequent      []string `json:"consequent"`
	RuleInterest    float64  `json:"ruleInterest"`
	ExpectedSupport float64  `json:"expectedSupport"`
	ActualSupport   float64  `json:"actualSupport"`
}

// WireMatch is one triggered rule in a /score response.
type WireMatch struct {
	WireRule
	Triggers map[string]string `json:"triggers"`
}

// RulesDoc is the /rules payload, optionally marked partial.
type RulesDoc struct {
	Item     string     `json:"item"`
	Expanded []string   `json:"expanded"`
	MinRI    float64    `json:"minRI"`
	Rules    []WireRule `json:"rules"`
	// Partial marks a degraded response: the shards in MissingShards were
	// unreachable and their rules are absent. Never set on a full answer.
	Partial       bool  `json:"partial,omitempty"`
	MissingShards []int `json:"missingShards,omitempty"`
}

// ScoreDoc is the /score payload, optionally marked partial.
type ScoreDoc struct {
	Basket        []string    `json:"basket"`
	MinRI         float64     `json:"minRI"`
	Matches       []WireMatch `json:"matches"`
	Partial       bool        `json:"partial,omitempty"`
	MissingShards []int       `json:"missingShards,omitempty"`
}

// signature reproduces rulestore.Entry.Signature for a wire rule: the sides
// arrive pre-sorted from the serving layer, so the join alone matches.
func signature(r *WireRule) string {
	return strings.Join(r.Antecedent, "\x1f") + "\x1e" + strings.Join(r.Consequent, "\x1f")
}

// ruleLess is the serving order: descending RI, ties by ascending
// signature. This is exactly the order a single daemon assigns RuleIDs in
// (rulestore signature order, stable-sorted by RI), so merging disjoint
// per-shard ranked lists with it reconstructs the single-node ranking.
func ruleLess(a, b *WireRule) bool {
	if a.RuleInterest != b.RuleInterest {
		return a.RuleInterest > b.RuleInterest
	}
	return signature(a) < signature(b)
}

// MergeRules merges per-shard /rules result lists into serving order,
// truncated to limit (0 = unlimited). Shards partition the rule set, so the
// merge is a pure reorder — no deduplication is needed or performed.
func MergeRules(lists [][]WireRule, limit int) []WireRule {
	out := []WireRule{} // non-nil: an empty result must encode as [], like serve's
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool { return ruleLess(&out[i], &out[j]) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// MergeMatches merges per-shard /score match lists into serving order,
// truncated to limit (0 = unlimited).
func MergeMatches(lists [][]WireMatch, limit int) []WireMatch {
	out := []WireMatch{}
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool { return ruleLess(&out[i].WireRule, &out[j].WireRule) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
