package cluster

import (
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestMergeRulesReconstructsGlobalOrder(t *testing.T) {
	// Build a global rule set, rank it the way a single daemon would
	// (RI desc, signature asc), then shard it and check the merge of the
	// per-shard ranked lists reproduces the global ranking exactly.
	rng := rand.New(rand.NewSource(1))
	items := []string{"bread", "milk", "beer", "eggs", "jam", "tea", "rice", "soda"}
	var all []WireRule
	for i := 0; i < 64; i++ {
		a := items[rng.Intn(len(items))]
		b := items[rng.Intn(len(items))]
		if a == b {
			continue
		}
		// Quantized RI so ties actually occur and exercise the signature
		// tiebreak.
		all = append(all, WireRule{
			Antecedent:   []string{a},
			Consequent:   []string{b},
			RuleInterest: float64(rng.Intn(5)) / 4,
		})
	}
	global := append([]WireRule(nil), all...)
	sort.SliceStable(global, func(i, j int) bool { return ruleLess(&global[i], &global[j]) })

	const shards = 3
	lists := make([][]WireRule, shards)
	for _, r := range all {
		s := ShardOfAntecedent(r.Antecedent, shards)
		lists[s] = append(lists[s], r)
	}
	for s := range lists {
		sort.SliceStable(lists[s], func(i, j int) bool { return ruleLess(&lists[s][i], &lists[s][j]) })
	}

	merged := MergeRules(lists, 0)
	if len(merged) != len(global) {
		t.Fatalf("merged %d rules, want %d", len(merged), len(global))
	}
	for i := range merged {
		if signature(&merged[i]) != signature(&global[i]) || merged[i].RuleInterest != global[i].RuleInterest {
			t.Fatalf("rank %d: merged %v, want %v", i, merged[i], global[i])
		}
	}

	limited := MergeRules(lists, 5)
	if len(limited) != 5 {
		t.Fatalf("limit: got %d rules", len(limited))
	}
	for i := range limited {
		if signature(&limited[i]) != signature(&global[i]) {
			t.Fatalf("limited rank %d diverges from global order", i)
		}
	}
}

func TestMergeEmptyEncodesAsArray(t *testing.T) {
	b, err := json.Marshal(MergeRules(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[]" {
		t.Fatalf("empty rule merge encodes as %s, want []", b)
	}
	b, err = json.Marshal(MergeMatches([][]WireMatch{{}, nil}, 10))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[]" {
		t.Fatalf("empty match merge encodes as %s, want []", b)
	}
}

func TestSignatureMatchesRulestoreFormat(t *testing.T) {
	r := WireRule{Antecedent: []string{"a", "b"}, Consequent: []string{"c"}}
	want := strings.Join(r.Antecedent, "\x1f") + "\x1e" + strings.Join(r.Consequent, "\x1f")
	if got := signature(&r); got != want {
		t.Fatalf("signature = %q, want %q", got, want)
	}
}

func TestMergeTiesBreakBySignature(t *testing.T) {
	a := WireRule{Antecedent: []string{"b"}, Consequent: []string{"x"}, RuleInterest: 0.5}
	b := WireRule{Antecedent: []string{"a"}, Consequent: []string{"x"}, RuleInterest: 0.5}
	merged := MergeRules([][]WireRule{{a}, {b}}, 0)
	if merged[0].Antecedent[0] != "a" || merged[1].Antecedent[0] != "b" {
		t.Fatalf("tie not broken by signature: %v", merged)
	}
}
