package cluster

import (
	"sync/atomic"
	"time"
)

// Latency histogram bucket bounds, matching internal/serve's /metrics
// buckets so router and shard latencies line up in dashboards.
var bucketBounds = [...]time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	1 * time.Second,
}

type histogram struct {
	buckets [len(bucketBounds) + 1]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for ; i < len(bucketBounds); i++ {
		if d <= bucketBounds[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

func (h *histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i < len(bucketBounds) {
				return bucketBounds[i]
			}
			return bucketBounds[len(bucketBounds)-1]
		}
	}
	return bucketBounds[len(bucketBounds)-1]
}

type histogramJSON struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

func (h *histogram) export() histogramJSON {
	out := histogramJSON{Count: h.count.Load()}
	if out.Count > 0 {
		out.MeanMs = float64(h.sumNs.Load()) / float64(out.Count) / 1e6
		out.P50Ms = h.quantile(0.50).Seconds() * 1e3
		out.P99Ms = h.quantile(0.99).Seconds() * 1e3
	}
	return out
}

// Router endpoint ids tracked by routerMetrics.
const (
	repScore = iota
	repRules
	repIngest
	repStatus
	repHeartbeat
	repOther
	repCount
)

var repNames = [repCount]string{"score", "rules", "ingest", "status", "heartbeat", "other"}

// routerMetrics aggregates the router's counters. Everything is atomic: the
// /metrics handler reads while request goroutines write.
type routerMetrics struct {
	requests [repCount]atomic.Int64
	errors   [repCount]atomic.Int64
	latency  [repCount]histogram

	attempts    atomic.Int64 // proxied shard requests, including retries/hedges
	retries     atomic.Int64 // failure-triggered re-dispatches
	retryDenied atomic.Int64 // retries the budget refused
	hedges      atomic.Int64 // latency-triggered duplicate dispatches
	hedgeWins   atomic.Int64 // responses won by a hedge/retry attempt
	partials    atomic.Int64 // degraded responses (206, partial:true)
	noReplica   atomic.Int64 // shard fan-outs that found no routable replica

	ingestForwarded atomic.Int64 // /ingest requests relayed to a primary
	ingestNoPrimary atomic.Int64 // /ingest requests that found no routable primary
	ingestRerouted  atomic.Int64 // /ingest attempts bounced (409/failure) onto another node

	start time.Time
}

func newRouterMetrics() *routerMetrics { return &routerMetrics{start: time.Now()} }

func (m *routerMetrics) observe(ep int, d time.Duration, status int) {
	if ep < 0 || ep >= repCount {
		ep = repOther
	}
	m.requests[ep].Add(1)
	if status >= 400 {
		m.errors[ep].Add(1)
	}
	m.latency[ep].observe(d)
}

// routerMetricsJSON is the router /metrics document (the cluster-level
// counterpart of negmined's /metrics).
type routerMetricsJSON struct {
	UptimeSeconds float64                 `json:"uptimeSeconds"`
	Endpoints     map[string]endpointJSON `json:"endpoints"`
	Fanout        struct {
		Attempts    int64 `json:"attempts"`
		Retries     int64 `json:"retries"`
		RetryDenied int64 `json:"retryDenied"`
		Hedges      int64 `json:"hedges"`
		HedgeWins   int64 `json:"hedgeWins"`
		Partials    int64 `json:"partialResponses"`
		NoReplica   int64 `json:"noReplicaShardMisses"`
	} `json:"fanout"`
	Ingest struct {
		Forwarded int64 `json:"forwarded"`
		NoPrimary int64 `json:"noPrimary"`
		Rerouted  int64 `json:"rerouted"`
	} `json:"ingest"`
	Cluster Status `json:"cluster"`
}

type endpointJSON struct {
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"`
	Latency  histogramJSON `json:"latency"`
}

func (m *routerMetrics) export(pool *Pool) routerMetricsJSON {
	var doc routerMetricsJSON
	doc.UptimeSeconds = time.Since(m.start).Seconds()
	doc.Endpoints = map[string]endpointJSON{}
	for ep := 0; ep < repCount; ep++ {
		if m.requests[ep].Load() == 0 {
			continue
		}
		doc.Endpoints[repNames[ep]] = endpointJSON{
			Requests: m.requests[ep].Load(),
			Errors:   m.errors[ep].Load(),
			Latency:  m.latency[ep].export(),
		}
	}
	doc.Fanout.Attempts = m.attempts.Load()
	doc.Fanout.Retries = m.retries.Load()
	doc.Fanout.RetryDenied = m.retryDenied.Load()
	doc.Fanout.Hedges = m.hedges.Load()
	doc.Fanout.HedgeWins = m.hedgeWins.Load()
	doc.Fanout.Partials = m.partials.Load()
	doc.Fanout.NoReplica = m.noReplica.Load()
	doc.Ingest.Forwarded = m.ingestForwarded.Load()
	doc.Ingest.NoPrimary = m.ingestNoPrimary.Load()
	doc.Ingest.Rerouted = m.ingestRerouted.Load()
	doc.Cluster = pool.Status()
	return doc
}
