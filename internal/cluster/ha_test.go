package cluster

import (
	"testing"
	"time"
)

func TestLeaseRenewalAndExpiry(t *testing.T) {
	clock := newFakeClock()
	l := NewLease(3*time.Second, clock.now)
	if l.Expired() {
		t.Fatal("fresh lease already expired")
	}
	if got := l.TTL(); got != 3*time.Second {
		t.Fatalf("TTL = %v", got)
	}
	clock.advance(2 * time.Second)
	if l.Expired() {
		t.Fatal("lease expired before TTL elapsed")
	}
	if got := l.SinceRenewal(); got != 2*time.Second {
		t.Fatalf("SinceRenewal = %v, want 2s", got)
	}
	// A renewal resets the deadline.
	l.Renew()
	clock.advance(3 * time.Second)
	if l.Expired() {
		t.Fatal("lease expired exactly at TTL (boundary is exclusive)")
	}
	clock.advance(time.Millisecond)
	if !l.Expired() {
		t.Fatal("lease still live past TTL with no renewal")
	}
	// Expiry is not terminal: contact resumes, the lease recovers.
	l.Renew()
	if l.Expired() {
		t.Fatal("renewed lease still expired")
	}
}

func ingestBeat(node, role string, lag int) Heartbeat {
	hb := beat(node, 0)
	hb.Addr = "127.0.0.1:" + node
	hb.IngestRole = role
	hb.ReplLagSegments = lag
	return hb
}

func TestPickIngestPrimary(t *testing.T) {
	clock := newFakeClock()
	p := testPool(t, clock, nil)
	// No primary yet: the write-unavailable path.
	if _, _, ok := p.PickIngestPrimary(nil); ok {
		t.Fatal("picked a primary from an empty pool")
	}
	if err := p.Heartbeat(ingestBeat("a", "standby", 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Heartbeat(ingestBeat("r", "replica", 0)); err != nil {
		t.Fatal(err)
	}
	// Standbys and read replicas are never write targets.
	if _, _, ok := p.PickIngestPrimary(nil); ok {
		t.Fatal("picked a non-primary for ingest")
	}
	if err := p.Heartbeat(ingestBeat("b", "primary", 0)); err != nil {
		t.Fatal(err)
	}
	node, addr, ok := p.PickIngestPrimary(nil)
	if !ok || node != "b" || addr != "127.0.0.1:b" {
		t.Fatalf("PickIngestPrimary = %q %q %v", node, addr, ok)
	}
	// The tried set excludes a primary the caller already failed against.
	if _, _, ok := p.PickIngestPrimary(map[string]bool{"b": true}); ok {
		t.Fatal("re-picked the tried primary")
	}

	// During failover both nodes may briefly advertise "primary"; the
	// freshest heartbeat carries the newest role assignment and must win.
	clock.advance(time.Second)
	if err := p.Heartbeat(ingestBeat("a", "primary", 0)); err != nil {
		t.Fatal(err)
	}
	if node, _, _ := p.PickIngestPrimary(nil); node != "a" {
		t.Fatalf("dual-primary pick = %q, want freshest (a)", node)
	}

	// A breaker-open primary is skipped even when advertised.
	for i := 0; i < 3; i++ {
		p.ReportFailure("a")
	}
	if node, _, ok := p.PickIngestPrimary(nil); ok && node == "a" {
		t.Fatal("picked a primary with an open breaker")
	}
}

func TestPickIngestPrimarySkipsDown(t *testing.T) {
	clock := newFakeClock()
	p := testPool(t, clock, nil)
	if err := p.Heartbeat(ingestBeat("p1", "primary", 0)); err != nil {
		t.Fatal(err)
	}
	// Heartbeats stop; the sweep takes the node down at 2×TTL.
	clock.advance(7 * time.Second)
	p.Sweep(clock.now())
	if _, _, ok := p.PickIngestPrimary(nil); ok {
		t.Fatal("picked a down primary")
	}
}

func TestIngestTopology(t *testing.T) {
	clock := newFakeClock()
	p := testPool(t, clock, nil)
	if primary, standbys := p.IngestTopology(); primary != "" || standbys != 0 {
		t.Fatalf("empty topology = %q/%d", primary, standbys)
	}
	if err := p.Heartbeat(ingestBeat("p1", "primary", 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Heartbeat(ingestBeat("s1", "standby", 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Heartbeat(ingestBeat("r1", "replica", 0)); err != nil {
		t.Fatal(err)
	}
	primary, standbys := p.IngestTopology()
	if primary != "p1" || standbys != 1 {
		t.Fatalf("topology = %q/%d, want p1/1", primary, standbys)
	}
	// The deposed primary re-registers as fenced; its old role is gone.
	if err := p.Heartbeat(ingestBeat("p1", "fenced", 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Heartbeat(ingestBeat("s1", "primary", 0)); err != nil {
		t.Fatal(err)
	}
	primary, standbys = p.IngestTopology()
	if primary != "s1" || standbys != 0 {
		t.Fatalf("post-failover topology = %q/%d, want s1/0", primary, standbys)
	}
}

func TestHeartbeatCarriesIngestRole(t *testing.T) {
	clock := newFakeClock()
	p := testPool(t, clock, nil)
	if err := p.Heartbeat(ingestBeat("s1", "standby", 5)); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, row := range p.Status().Table {
		for _, r := range row.Replicas {
			if r.Node != "s1" {
				continue
			}
			found = true
			if r.IngestRole != "standby" || r.ReplLagSegments != 5 {
				t.Fatalf("status role/lag = %q/%d, want standby/5", r.IngestRole, r.ReplLagSegments)
			}
		}
	}
	if !found {
		t.Fatal("s1 missing from status table")
	}
	// The next heartbeat overwrites both fields — lag is a gauge.
	if err := p.Heartbeat(ingestBeat("s1", "primary", 0)); err != nil {
		t.Fatal(err)
	}
	for _, row := range p.Status().Table {
		for _, r := range row.Replicas {
			if r.Node == "s1" && (r.IngestRole != "primary" || r.ReplLagSegments != 0) {
				t.Fatalf("updated role/lag = %q/%d, want primary/0", r.IngestRole, r.ReplLagSegments)
			}
		}
	}
}
