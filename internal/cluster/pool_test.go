package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"negmine/internal/fault"
)

// fakeClock drives the pool deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testPool(t *testing.T, clock *fakeClock, probe func(ctx context.Context, addr string) error) *Pool {
	t.Helper()
	return NewPool(PoolConfig{
		Shards:        2,
		HeartbeatTTL:  3 * time.Second,
		ProbeInterval: 500 * time.Millisecond,
		DownAfter:     3,
		BreakerAfter:  3,
		Probe:         probe,
		Now:           clock.now,
		Logf:          t.Logf,
	})
}

func beat(node string, shard int) Heartbeat {
	return Heartbeat{Node: node, Addr: "127.0.0.1:1", Shard: shard, Shards: 2}
}

func replicaState(t *testing.T, p *Pool, node string) string {
	t.Helper()
	for _, row := range p.Status().Table {
		for _, r := range row.Replicas {
			if r.Node == node {
				return r.State
			}
		}
	}
	t.Fatalf("replica %s not registered", node)
	return ""
}

func TestHeartbeatRegistersReplica(t *testing.T) {
	clock := newFakeClock()
	p := testPool(t, clock, nil)
	if err := p.Heartbeat(beat("n0", 0)); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if got := replicaState(t, p, "n0"); got != "healthy" {
		t.Fatalf("state = %s, want healthy", got)
	}
	node, addr := p.Pick(0, nil)
	if node != "n0" || addr != "127.0.0.1:1" {
		t.Fatalf("Pick = (%q, %q), want (n0, 127.0.0.1:1)", node, addr)
	}
	if node, _ := p.Pick(1, nil); node != "" {
		t.Fatalf("Pick(1) = %q, want no replica", node)
	}
}

func TestHeartbeatRejectsMisconfiguredNode(t *testing.T) {
	p := testPool(t, newFakeClock(), nil)
	if err := p.Heartbeat(Heartbeat{Node: "x", Addr: "a:1", Shard: 7, Shards: 2}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := p.Heartbeat(Heartbeat{Node: "x", Addr: "a:1", Shard: 0, Shards: 5}); err == nil {
		t.Fatal("mismatched cluster width accepted")
	}
	if err := p.Heartbeat(Heartbeat{Shard: 0}); err == nil {
		t.Fatal("heartbeat without node/addr accepted")
	}
	if st := p.Status(); st.Registered != 0 {
		t.Fatalf("%d replicas registered from rejected heartbeats", st.Registered)
	}
}

func TestHeartbeatFailpoint(t *testing.T) {
	p := testPool(t, newFakeClock(), nil)
	defer fault.Enable(PointHeartbeat, fault.Error("dropped"))()
	err := p.Heartbeat(beat("n0", 0))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if st := p.Status(); st.HeartbeatErrs != 1 {
		t.Fatalf("heartbeatErrors = %d, want 1", st.HeartbeatErrs)
	}
}

func TestSweepDemotesStaleHeartbeats(t *testing.T) {
	clock := newFakeClock()
	p := testPool(t, clock, nil)
	if err := p.Heartbeat(beat("n0", 0)); err != nil {
		t.Fatal(err)
	}

	clock.advance(3500 * time.Millisecond) // > TTL
	p.Sweep(clock.now())
	if got := replicaState(t, p, "n0"); got != "suspect" {
		t.Fatalf("after TTL: state = %s, want suspect", got)
	}
	// Suspect replicas remain routable (last resort).
	if node, _ := p.Pick(0, nil); node != "n0" {
		t.Fatalf("suspect replica not routable, Pick = %q", node)
	}

	clock.advance(3 * time.Second) // total > 2×TTL
	p.Sweep(clock.now())
	if got := replicaState(t, p, "n0"); got != "down" {
		t.Fatalf("after 2×TTL: state = %s, want down", got)
	}
	if node, _ := p.Pick(0, nil); node != "" {
		t.Fatalf("down replica still routable: %q", node)
	}

	// A fresh heartbeat starts recovery; a second completes it.
	if err := p.Heartbeat(beat("n0", 0)); err != nil {
		t.Fatal(err)
	}
	if got := replicaState(t, p, "n0"); got != "recovering" {
		t.Fatalf("after heartbeat: state = %s, want recovering", got)
	}
	if err := p.Heartbeat(beat("n0", 0)); err != nil {
		t.Fatal(err)
	}
	if got := replicaState(t, p, "n0"); got != "healthy" {
		t.Fatalf("after second heartbeat: state = %s, want healthy", got)
	}
}

func TestRequestFailuresDriveStateMachine(t *testing.T) {
	clock := newFakeClock()
	p := testPool(t, clock, nil)
	if err := p.Heartbeat(beat("n0", 0)); err != nil {
		t.Fatal(err)
	}

	p.ReportFailure("n0")
	if got := replicaState(t, p, "n0"); got != "suspect" {
		t.Fatalf("after 1 failure: %s, want suspect", got)
	}
	p.ReportFailure("n0")
	p.ReportFailure("n0") // DownAfter = 3
	if got := replicaState(t, p, "n0"); got != "down" {
		t.Fatalf("after 3 failures: %s, want down", got)
	}

	// Success resets the ledger completely.
	p.ReportSuccess("n0") // down → recovering (breaker trial succeeded)
	p.ReportSuccess("n0") // recovering → healthy
	if got := replicaState(t, p, "n0"); got != "healthy" {
		t.Fatalf("after successes: %s, want healthy", got)
	}
}

func TestBreakerOpensAndCoolsDown(t *testing.T) {
	clock := newFakeClock()
	p := testPool(t, clock, nil)
	if err := p.Heartbeat(beat("n0", 0)); err != nil {
		t.Fatal(err)
	}

	p.ReportFailure("n0")
	p.ReportFailure("n0")
	if node, _ := p.Pick(0, nil); node != "n0" {
		t.Fatalf("breaker tripped before BreakerAfter, Pick = %q", node)
	}
	p.ReportFailure("n0") // third consecutive failure: breaker opens
	if node, _ := p.Pick(0, nil); node != "" {
		t.Fatalf("open breaker still routable: %q", node)
	}

	// After the cool-down one trial request is allowed.
	clock.advance(600 * time.Millisecond) // > ProbeInterval initial cool-down
	// Down state also blocks Pick; recover liveness via heartbeats first.
	if err := p.Heartbeat(beat("n0", 0)); err != nil {
		t.Fatal(err)
	}
	if node, _ := p.Pick(0, nil); node != "n0" {
		t.Fatalf("breaker did not half-open after cool-down, Pick = %q", node)
	}

	// A failed trial doubles the cool-down.
	p.ReportFailure("n0")
	clock.advance(600 * time.Millisecond)
	if node, _ := p.Pick(0, nil); node != "" {
		t.Fatalf("breaker closed after one interval despite doubled backoff: %q", node)
	}
	st := p.Status()
	if st.Table[0].Replicas[0].BreakerOpens == 0 {
		t.Fatal("status does not report breaker opens")
	}
}

func TestProbeRecoversDownReplica(t *testing.T) {
	clock := newFakeClock()
	probeErr := errors.New("still dead")
	var allow bool
	probe := func(ctx context.Context, addr string) error {
		if allow {
			return nil
		}
		return probeErr
	}
	p := testPool(t, clock, probe)
	if err := p.Heartbeat(beat("n0", 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p.ReportFailure("n0")
	}
	if got := replicaState(t, p, "n0"); got != "down" {
		t.Fatalf("state = %s, want down", got)
	}

	// Failing probes back off exponentially: the first is due immediately,
	// the next only after a doubled interval.
	p.ProbeOnce(context.Background())
	p.ProbeOnce(context.Background()) // not due yet: no probe fires
	clock.advance(1 * time.Second)

	allow = true
	p.ProbeOnce(context.Background())
	if got := replicaState(t, p, "n0"); got != "recovering" {
		t.Fatalf("after probe ok: %s, want recovering", got)
	}
	// Recovering replicas are routable immediately — within one probe
	// interval of the shard coming back.
	if node, _ := p.Pick(0, nil); node != "n0" {
		t.Fatalf("recovering replica not routable, Pick = %q", node)
	}
	clock.advance(600 * time.Millisecond)
	p.ProbeOnce(context.Background())
	if got := replicaState(t, p, "n0"); got != "healthy" {
		t.Fatalf("after second probe ok: %s, want healthy", got)
	}
}

func TestPickPrefersHealthierAndFresher(t *testing.T) {
	clock := newFakeClock()
	p := testPool(t, clock, nil)
	hb := beat("a", 0)
	hb.Generation = 5
	if err := p.Heartbeat(hb); err != nil {
		t.Fatal(err)
	}
	hb2 := beat("b", 0)
	hb2.Generation = 7
	if err := p.Heartbeat(hb2); err != nil {
		t.Fatal(err)
	}

	// Fresher snapshot wins among equal states.
	if node, _ := p.Pick(0, nil); node != "b" {
		t.Fatalf("Pick = %q, want b (higher generation)", node)
	}
	// Healthy beats suspect even when staler.
	p.ReportFailure("b")
	if node, _ := p.Pick(0, nil); node != "a" {
		t.Fatalf("Pick = %q, want a (healthy beats suspect)", node)
	}
	// tried excludes earlier attempts, falling through to the sibling.
	if node, _ := p.Pick(0, map[string]bool{"a": true}); node != "b" {
		t.Fatalf("Pick(tried a) = %q, want b", node)
	}
	if node, _ := p.Pick(0, map[string]bool{"a": true, "b": true}); node != "" {
		t.Fatalf("Pick(tried all) = %q, want none", node)
	}
}

func TestPickRoundRobinsEquals(t *testing.T) {
	p := testPool(t, newFakeClock(), nil)
	if err := p.Heartbeat(beat("a", 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Heartbeat(beat("b", 0)); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		node, _ := p.Pick(0, nil)
		seen[node]++
	}
	if seen["a"] != 5 || seen["b"] != 5 {
		t.Fatalf("round-robin split = %v, want 5/5", seen)
	}
}

func TestStatusShape(t *testing.T) {
	p := testPool(t, newFakeClock(), nil)
	hb := beat("n1", 1)
	hb.Rules = 42
	hb.SourceKind = "mmap"
	hb.Degraded = true
	if err := p.Heartbeat(hb); err != nil {
		t.Fatal(err)
	}
	st := p.Status()
	if st.Shards != 2 || st.Registered != 1 || st.Routable != 1 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Table) != 2 {
		t.Fatalf("table rows = %d, want 2", len(st.Table))
	}
	if st.Table[0].Routable {
		t.Fatal("empty shard 0 reported routable")
	}
	r := st.Table[1].Replicas[0]
	if r.Node != "n1" || r.Rules != 42 || r.SourceKind != "mmap" || !r.Degraded {
		t.Fatalf("replica row = %+v", r)
	}
}

func TestShardHashing(t *testing.T) {
	if got := ShardOfItem("anything", 1); got != 0 {
		t.Fatalf("single shard: %d", got)
	}
	const shards = 4
	for _, name := range []string{"bread", "milk", "Home Appliances", ""} {
		s := ShardOfItem(name, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOfItem(%q) = %d out of range", name, s)
		}
		if again := ShardOfItem(name, shards); again != s {
			t.Fatalf("ShardOfItem(%q) unstable: %d vs %d", name, s, again)
		}
	}
	// The rule shard is the shard of the lexicographically-first antecedent
	// item, regardless of caller ordering.
	a := ShardOfAntecedent([]string{"milk", "bread"}, shards)
	b := ShardOfAntecedent([]string{"bread", "milk"}, shards)
	if a != b || a != ShardOfItem("bread", shards) {
		t.Fatalf("antecedent shard: %d vs %d vs %d", a, b, ShardOfItem("bread", shards))
	}
	// Basket shards cover every antecedent shard of its subsets.
	basket := []string{"bread", "milk", "beer"}
	cover := map[int]bool{}
	for _, s := range ShardsForBasket(basket, shards) {
		cover[s] = true
	}
	for _, item := range basket {
		if !cover[ShardOfItem(item, shards)] {
			t.Fatalf("basket shards miss item %q", item)
		}
	}
}
