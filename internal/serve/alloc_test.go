package serve

import (
	"context"
	"testing"
)

// The query and score hot paths are specified allocation-free in steady
// state: result buffers are caller-supplied and scratch comes from pools.
// These tests pin that at 0 allocs/op so a regression fails loudly rather
// than showing up as GC pressure under load.

func TestQueryItemZeroAllocs(t *testing.T) {
	snap := testSnapshot(t)
	dst := make([]RuleID, 0, snap.Len())
	// Warm the cache: the first lookup per key computes and stores.
	dst = snap.QueryItem(dst[:0], "pepsi", 0, 0)
	if allocs := testing.AllocsPerRun(100, func() {
		dst = snap.QueryItem(dst[:0], "pepsi", 0, 0)
	}); allocs != 0 {
		t.Fatalf("QueryItem (cache hit): %v allocs/op, want 0", allocs)
	}
}

func TestQuerySharedZeroAllocs(t *testing.T) {
	snap := testSnapshot(t)
	ctx := context.Background()
	if _, err := snap.QueryShared(ctx, "pepsi", 0, 0); err != nil { // warm the cache
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		ids, _ := snap.QueryShared(ctx, "pepsi", 0, 0)
		if len(ids) == 0 {
			t.Error("no rules")
		}
	}); allocs != 0 {
		t.Fatalf("QueryShared (cache hit): %v allocs/op, want 0", allocs)
	}
}

func TestQueryItemComputeZeroAllocs(t *testing.T) {
	snap := BuildSnapshot(testStore(), testTaxonomy(t), Meta{CacheSize: -1})
	dst := make([]RuleID, 0, snap.Len())
	dst = snap.QueryItem(dst[:0], "pepsi", 0, 0)
	if allocs := testing.AllocsPerRun(100, func() {
		dst = snap.QueryItem(dst[:0], "pepsi", 0, 0)
	}); allocs != 0 {
		t.Fatalf("QueryItem (cache disabled, compute path): %v allocs/op, want 0", allocs)
	}
}

func TestScoreZeroAllocs(t *testing.T) {
	snap := testSnapshot(t)
	dst := make([]RuleID, 0, snap.Len())
	basket := []string{"pepsi", "chips"}
	// Warm the scratch pool.
	dst = snap.Score(dst[:0], basket, 0, 0)
	if allocs := testing.AllocsPerRun(100, func() {
		dst = snap.Score(dst[:0], basket, 0, 0)
	}); allocs != 0 {
		t.Fatalf("Score: %v allocs/op, want 0", allocs)
	}
}

func TestExpandZeroAllocs(t *testing.T) {
	snap := testSnapshot(t)
	dst := make([]string, 0, 16)
	if allocs := testing.AllocsPerRun(100, func() {
		dst = snap.Expand(dst[:0], "pepsi")
	}); allocs != 0 {
		t.Fatalf("Expand: %v allocs/op, want 0", allocs)
	}
}
