package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"negmine/internal/fault"
	"negmine/internal/report"
	"negmine/internal/rulestore"
)

// --- panic recovery -------------------------------------------------------

func TestHandlerPanicRecovered(t *testing.T) {
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(storeN(1), nil, Meta{}), nil
	})
	h := srv.Handler()

	off := fault.Enable(PointHandler, fault.Panic("handler blew up"), fault.OnHit(1))
	defer off()
	code, body := get(t, h, "/rules?item=pepsi")
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: code = %d, want 500 (%s)", code, body)
	}
	if got := srv.Metrics().Panics(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// The process survived; the very next request serves normally.
	if code, body := get(t, h, "/rules?item=pepsi"); code != http.StatusOK {
		t.Fatalf("request after panic: %d %s", code, body)
	}

	// The counter is exported through /metrics.
	_, body = get(t, h, "/metrics")
	var doc struct {
		Panics int64 `json:"panics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || doc.Panics != 1 {
		t.Fatalf("metrics panics = %d (err %v)\n%s", doc.Panics, err, body)
	}
}

func TestHandlerFaultError(t *testing.T) {
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(storeN(1), nil, Meta{}), nil
	})
	defer fault.Enable(PointHandler, fault.Error("injected outage"))()
	if code, _ := get(t, srv.Handler(), "/healthz"); code != http.StatusInternalServerError {
		t.Fatalf("handler fault: code = %d, want 500", code)
	}
}

// --- request deadlines ----------------------------------------------------

func TestRequestTimeoutAbortsQuery(t *testing.T) {
	srv, err := NewServer(context.Background(),
		func(context.Context) (*Snapshot, error) {
			return BuildSnapshot(testStore(), testTaxonomy(t), Meta{}), nil
		},
		WithLogger(func(string, ...any) {}),
		WithRequestTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	// Handler sleep guarantees the deadline expires before the query runs.
	defer fault.Enable(PointHandler, fault.Sleep(5*time.Millisecond))()
	code, body := get(t, srv.Handler(), "/rules?item=pepsi")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: code = %d, want 503 (%s)", code, body)
	}
	code, body = post(t, srv.Handler(), "/score", `{"basket":["pepsi"]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline on /score: code = %d, want 503 (%s)", code, body)
	}
}

func TestQueryCtxCancelled(t *testing.T) {
	snap := BuildSnapshot(bigStore(2000), nil, Meta{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := snap.QueryItemCtx(ctx, nil, "pepsi", 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryItemCtx on cancelled ctx: %v", err)
	}
	if _, err := snap.ScoreCtx(ctx, nil, []string{"pepsi"}, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScoreCtx on cancelled ctx: %v", err)
	}
}

// bigStore builds a store with n distinct rules on one antecedent, so its
// posting list is long enough to cross ctxCheckEvery.
func bigStore(n int) *rulestore.Store {
	rep := &report.NegativeReport{}
	for i := 0; i < n; i++ {
		rep.Rules = append(rep.Rules, report.NegativeRuleRecord{
			Antecedent:   []string{"pepsi"},
			Consequent:   []string{fmt.Sprintf("c%d", i)},
			RuleInterest: 0.5,
		})
	}
	return rulestore.FromReport(rep)
}

// --- load hardening -------------------------------------------------------

func TestPanickingLoaderBecomesReloadError(t *testing.T) {
	var gen atomic.Int64
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		if gen.Add(1) > 1 {
			panic("loader bug")
		}
		return BuildSnapshot(storeN(1), nil, Meta{}), nil
	})
	err := srv.Reload(context.Background())
	if err == nil || !strings.Contains(err.Error(), "load panicked") {
		t.Fatalf("Reload with panicking loader: %v", err)
	}
	// Old snapshot still serves.
	if code, body := get(t, srv.Handler(), "/rules?item=pepsi"); code != http.StatusOK || !strings.Contains(body, "gen-1") {
		t.Fatalf("after panicking reload: %d %s", code, body)
	}
}

func TestNilSnapshotLoaderRejected(t *testing.T) {
	_, err := NewServer(context.Background(),
		func(context.Context) (*Snapshot, error) { return nil, nil },
		WithLogger(func(string, ...any) {}))
	if err == nil || !strings.Contains(err.Error(), "nil snapshot") {
		t.Fatalf("nil-snapshot loader: %v", err)
	}
}

func TestSwapFaultKeepsOldSnapshot(t *testing.T) {
	var gen atomic.Int64
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(storeN(int(gen.Add(1))), nil, Meta{}), nil
	})
	defer fault.Enable(PointSwap, fault.Error("died before swap"))()
	if err := srv.Reload(context.Background()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Reload under swap fault: %v", err)
	}
	if _, body := get(t, srv.Handler(), "/rules?item=pepsi"); !strings.Contains(body, "gen-1") {
		t.Fatalf("snapshot advanced despite failed swap: %s", body)
	}
}

// --- watcher state machine ------------------------------------------------

// watchFixture runs WatchWith against a temp file with fast intervals and
// returns the file path plus a teardown-cancelling context.
func watchFixture(t *testing.T, srv *Server, cfg WatchConfig) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "report.json")
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go srv.WatchWith(ctx, path, cfg)
	return path
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWatchReloadsOnSettledChange(t *testing.T) {
	var gen atomic.Int64
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(storeN(int(gen.Add(1))), nil, Meta{}), nil
	})
	path := watchFixture(t, srv, WatchConfig{Interval: 3 * time.Millisecond})
	// Let the watcher observe the path as missing first, so the write below
	// is seen as a change (not as the startup version).
	waitFor(t, "missing state", func() bool { return srv.Metrics().WatchState() == watchMissing })

	// File appears (missing → settling → reload once stable).
	if err := os.WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reload after file appears", func() bool { return gen.Load() >= 2 })
	waitFor(t, "watching state", func() bool { return srv.Metrics().WatchState() == watchWatching })

	// Unchanged file: no further reloads.
	before := gen.Load()
	time.Sleep(30 * time.Millisecond)
	if gen.Load() != before {
		t.Fatalf("reloaded %d times with no file change", gen.Load()-before)
	}
}

func TestWatchMissingFileIsQuietState(t *testing.T) {
	var logs atomic.Int64
	srv, err := NewServer(context.Background(),
		func(context.Context) (*Snapshot, error) { return BuildSnapshot(storeN(1), nil, Meta{}), nil },
		WithLogger(func(format string, args ...any) { logs.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	watchFixture(t, srv, WatchConfig{Interval: 2 * time.Millisecond})

	waitFor(t, "missing state", func() bool { return srv.Metrics().WatchState() == watchMissing })
	logs.Store(0)
	time.Sleep(40 * time.Millisecond) // ~20 ticks on a missing file
	if n := logs.Load(); n != 0 {
		t.Fatalf("missing file logged %d times after the transition, want 0", n)
	}
}

func TestWatchBreakerOpensAndRecovers(t *testing.T) {
	var loads, fails atomic.Int64
	srv, err := NewServer(context.Background(),
		func(context.Context) (*Snapshot, error) {
			if n := loads.Add(1); n > 1 && fails.Load() > 0 {
				fails.Add(-1)
				return nil, errors.New("bad report")
			}
			return BuildSnapshot(storeN(int(loads.Load())), nil, Meta{}), nil
		},
		WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	fails.Store(1 << 30) // fail every reload until released
	path := watchFixture(t, srv, WatchConfig{Interval: 2 * time.Millisecond, BreakerAfter: 3})
	waitFor(t, "missing state", func() bool { return srv.Metrics().WatchState() == watchMissing })

	if err := os.WriteFile(path, []byte("broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "breaker open", func() bool { return srv.Metrics().WatchState() == watchOpen })
	if srv.Metrics().watchFails.Load() < 3 {
		t.Fatalf("breaker open with %d consecutive failures, want ≥ 3", srv.Metrics().watchFails.Load())
	}

	// Open breaker: the failing version is not retried.
	atOpen := loads.Load()
	time.Sleep(30 * time.Millisecond)
	if loads.Load() != atOpen {
		t.Fatalf("breaker open but loader ran %d more times", loads.Load()-atOpen)
	}

	// A new version closes the breaker and reloads successfully.
	fails.Store(0)
	if err := os.WriteFile(path, []byte("fixed-version"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "recovery", func() bool { return srv.Metrics().WatchState() == watchWatching })
	if loads.Load() <= atOpen {
		t.Fatal("breaker never retried the new version")
	}
}

func TestWatchDebouncesInProgressWrite(t *testing.T) {
	var gen atomic.Int64
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(storeN(int(gen.Add(1))), nil, Meta{}), nil
	})
	// Poll slower than the writer writes: consecutive polls always see a
	// different size, so the debounce must hold the reload back.
	path := watchFixture(t, srv, WatchConfig{Interval: 10 * time.Millisecond})
	waitFor(t, "missing state", func() bool { return srv.Metrics().WatchState() == watchMissing })

	// Simulate a slow writer: the file grows for many poll intervals.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if _, err := f.WriteString("chunk\n"); err != nil {
			t.Fatal(err)
		}
		_ = f.Sync()
		time.Sleep(3 * time.Millisecond)
		if gen.Load() > 1 {
			t.Fatal("reloaded while the file was still being written")
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Once the writer stops, the stable version reloads exactly once.
	waitFor(t, "post-write reload", func() bool { return gen.Load() == 2 })
}
