package serve

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"negmine/internal/snapfmt"
)

// This file bridges the in-memory Snapshot and the .nsnap on-disk format
// (internal/snapfmt). Encoding is a re-labelling, not a re-indexing: the
// arena slices and posting backing arrays are handed to the encoder as-is,
// and the posting descriptors recorded at compress time locate every row in
// those arrays. Decoding runs the direction in reverse — the loaded
// Snapshot's numeric slices alias the validated (typically mmap'd) file
// bytes, and only the item dictionary (strings, intern map) is
// materialized on the heap.

// image converts the snapshot into a snapfmt.Image for encoding. The
// image's numeric slices alias the snapshot's arena — valid as long as s is.
func (s *Snapshot) image(gen uint64) *snapfmt.Image {
	m := len(s.names)
	nameOffs := make([]uint32, m+1)
	size := 0
	for _, nm := range s.names {
		size += len(nm)
	}
	blob := make([]byte, 0, size)
	for i, nm := range s.names {
		nameOffs[i] = uint32(len(blob))
		blob = append(blob, nm...)
	}
	nameOffs[m] = uint32(len(blob))

	createdNs := int64(0)
	if !s.built.IsZero() {
		createdNs = s.built.UnixNano()
	}
	return &snapfmt.Image{
		Header: snapfmt.Header{Generation: gen, CreatedNs: createdNs},
		Meta: snapfmt.Meta{
			Tool:       "negmine",
			Source:     s.source,
			MinSupport: s.minSup,
			MinRI:      s.minRI,
		},
		RI:       s.ri,
		Expected: s.expected,
		Actual:   s.actual,
		Off:      s.off,
		SideIDs:  s.sideIDs,
		NameOffs: nameOffs,
		NameBlob: blob,
		AncOff:   s.ancOff,
		AncIDs:   s.ancIDs,
		Ante:     indexOut(&s.anteIdx),
		Cons:     indexOut(&s.consIdx),
		Reach:    indexOut(&s.reachIdx),
	}
}

func indexOut(pb *postingBacking) snapfmt.PostingIndex {
	descs := make([]snapfmt.PostingDesc, len(pb.descs))
	for i, d := range pb.descs {
		descs[i] = snapfmt.PostingDesc{Off: d.off, Len: d.length, N: d.n, Kind: d.kind}
	}
	return snapfmt.PostingIndex{Descs: descs, IDs: pb.ids, Words: pb.words}
}

// EncodeSnapshot writes s to w in the .nsnap format under the given
// artifact-store generation.
func EncodeSnapshot(w io.Writer, s *Snapshot, gen uint64) error {
	return snapfmt.Encode(w, s.image(gen))
}

// WriteSnapshotFile atomically writes s to path as a .nsnap file.
func WriteSnapshotFile(path string, s *Snapshot, gen uint64) error {
	return snapfmt.WriteFile(path, s.image(gen))
}

// indexIn reconstructs one posting index from its decoded form. The posting
// subslices alias the image's backing arrays.
func indexIn(pi *snapfmt.PostingIndex) ([]posting, postingBacking) {
	m := len(pi.Descs)
	ps := make([]posting, m)
	pb := postingBacking{descs: make([]pdesc, m), ids: pi.IDs, words: pi.Words}
	for i, d := range pi.Descs {
		pb.descs[i] = pdesc{off: d.Off, length: d.Len, n: d.N, kind: d.Kind}
		end := d.Off + d.Len
		switch d.Kind {
		case snapfmt.PostingSparse:
			ps[i] = posting{ids: pi.IDs[d.Off:end:end], n: int32(d.N)}
		case snapfmt.PostingDense:
			ps[i] = posting{bits: pi.Words[d.Off:end:end], n: int32(d.N)}
		}
	}
	return ps, pb
}

// SnapshotFromImage builds a serving snapshot over a decoded image. The
// snapshot's numeric slices alias the image (and therefore the file bytes
// behind it); only the item dictionary and intern map are materialized.
// cacheSize follows Meta.CacheSize semantics (0 = default, < 0 = disabled).
func SnapshotFromImage(img *snapfmt.Image, cacheSize int) (*Snapshot, error) {
	m := img.NumItems()
	s := &Snapshot{
		ri:       img.RI,
		expected: img.Expected,
		actual:   img.Actual,
		off:      img.Off,
		sideIDs:  img.SideIDs,
		ancOff:   img.AncOff,
		ancIDs:   img.AncIDs,
		itemID:   make(map[string]int32, m),
		names:    make([]string, m),
		source:   img.Meta.Source,
		minSup:   img.Meta.MinSupport,
		minRI:    img.Meta.MinRI,
	}
	s.generation = img.Header.Generation
	for i := 0; i < m; i++ {
		name := img.Name(i)
		if _, dup := s.itemID[name]; dup {
			return nil, fmt.Errorf("serve: snapshot image has duplicate item name %q: %w",
				name, snapfmt.ErrFormat)
		}
		s.itemID[name] = int32(i)
		s.names[i] = name
	}
	s.sideNames = make([]string, len(s.sideIDs))
	for i, id := range s.sideIDs {
		s.sideNames[i] = s.names[id]
	}
	s.ante, s.anteIdx = indexIn(&img.Ante)
	s.cons, s.consIdx = indexIn(&img.Cons)
	s.reach, s.reachIdx = indexIn(&img.Reach)

	n := len(s.ri)
	s.ruleWords = (n + 63) / 64
	s.itemWords = (m + 63) / 64
	s.arenaBytes = int64(n)*(3*8) + int64(len(s.off))*4 +
		int64(len(s.sideIDs))*4 + int64(len(s.sideNames))*16 +
		int64(len(s.names))*16 + int64(len(s.ancOff))*4 + int64(len(s.ancIDs))*4
	s.indexBytes = int64(len(s.anteIdx.ids)+len(s.consIdx.ids)+len(s.reachIdx.ids))*4 +
		int64(len(s.anteIdx.words)+len(s.consIdx.words)+len(s.reachIdx.words))*8 +
		int64(3*m)*postingHeaderBytes

	if cacheSize >= 0 {
		if cacheSize == 0 {
			cacheSize = DefaultCacheSize
		}
		s.cache = newQueryCache(cacheSize)
	}
	s.scratch.New = func() any {
		return &queryScratch{
			rules: make([]uint64, s.ruleWords),
			items: make([]uint64, s.itemWords),
			ids:   make([]int32, 0, 64),
		}
	}
	// built reflects when the rules were produced, not when this process
	// loaded them, so Age() keeps measuring rule staleness.
	s.built = img.Header.Created()
	return s, nil
}

// OpenSnapshotFile mmaps (or reads) a .nsnap file, validates it, and builds
// a serving snapshot whose numeric data is served straight from the mapping.
// The mapping's lifetime is tied to the snapshot: when the snapshot becomes
// unreachable (e.g. after an atomic swap retires it and every in-flight
// query drains), a finalizer releases the map. BuildSeconds in the
// snapshot's Info reports the load duration.
func OpenSnapshotFile(path string, cacheSize int) (*Snapshot, error) {
	start := time.Now()
	f, err := snapfmt.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := SnapshotFromImage(f.Image, cacheSize)
	if err != nil {
		f.Close()
		return nil, err
	}
	if s.built.UnixNano() <= 0 {
		// Pre-CreatedNs files (or writers that never stamped one) would leave
		// built at the epoch and Age() reporting decades — which replica-mode
		// daemons then export as snapshot.age_seconds until their first
		// manifest poll. The file's mtime is the honest fallback.
		if fi, statErr := os.Stat(path); statErr == nil {
			s.built = fi.ModTime()
		}
	}
	s.buildDur = time.Since(start)
	s.sourceKind = "mmap"
	runtime.SetFinalizer(s, func(*Snapshot) { f.Close() })
	return s, nil
}
