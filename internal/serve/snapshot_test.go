package serve

import (
	"reflect"
	"testing"

	"negmine/internal/report"
	"negmine/internal/rulestore"
	"negmine/internal/taxonomy"
)

// testTaxonomy builds:
//
//	beverages ─┬─ soft-drinks ─┬─ pepsi
//	           │               └─ coke
//	           └─ juice
//	snacks ──── chips
func testTaxonomy(t *testing.T) *taxonomy.Taxonomy {
	t.Helper()
	b := taxonomy.NewBuilder()
	b.Link("beverages", "soft-drinks")
	b.Link("soft-drinks", "pepsi")
	b.Link("soft-drinks", "coke")
	b.Link("beverages", "juice")
	b.Link("snacks", "chips")
	tax, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tax
}

func testStore() *rulestore.Store {
	return rulestore.FromReport(&report.NegativeReport{
		MinSupport: 0.02,
		MinRI:      0.3,
		Rules: []report.NegativeRuleRecord{
			{Antecedent: []string{"soft-drinks"}, Consequent: []string{"chips"}, RuleInterest: 0.8, ExpectedSupport: 0.10, ActualSupport: 0.02},
			{Antecedent: []string{"pepsi"}, Consequent: []string{"juice"}, RuleInterest: 0.6, ExpectedSupport: 0.08, ActualSupport: 0.03},
			{Antecedent: []string{"chips"}, Consequent: []string{"beverages"}, RuleInterest: 0.4, ExpectedSupport: 0.06, ActualSupport: 0.04},
		},
	})
}

func testSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	return BuildSnapshot(testStore(), testTaxonomy(t), Meta{Source: "test", MinSupport: 0.02, MinRI: 0.3})
}

func consequents(es []rulestore.Entry) []string {
	var out []string
	for _, e := range es {
		out = append(out, e.Consequent[0])
	}
	return out
}

func TestSnapshotQueryItemExpandsAncestors(t *testing.T) {
	snap := testSnapshot(t)

	// pepsi must surface its own rule, the soft-drinks rule (parent) and
	// the beverages rule (grandparent, on the consequent side), by RI desc.
	got := consequents(snap.QueryEntries("pepsi", 0, 0))
	want := []string{"chips", "juice", "beverages"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QueryItem(pepsi) consequents = %v, want %v", got, want)
	}

	// coke shares soft-drinks/beverages ancestry but has no own rule.
	got = consequents(snap.QueryEntries("coke", 0, 0))
	want = []string{"chips", "beverages"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QueryItem(coke) consequents = %v, want %v", got, want)
	}

	// Unknown items match nothing.
	if rs := snap.QueryEntries("caviar", 0, 0); len(rs) != 0 {
		t.Fatalf("QueryItem(caviar) = %v, want none", rs)
	}
}

func TestSnapshotQueryItemThresholdAndLimit(t *testing.T) {
	snap := testSnapshot(t)

	if got := consequents(snap.QueryEntries("pepsi", 0.5, 0)); !reflect.DeepEqual(got, []string{"chips", "juice"}) {
		t.Fatalf("minRI 0.5 consequents = %v", got)
	}
	if got := consequents(snap.QueryEntries("pepsi", 0, 1)); !reflect.DeepEqual(got, []string{"chips"}) {
		t.Fatalf("limit 1 consequents = %v", got)
	}
}

func TestSnapshotExpand(t *testing.T) {
	snap := testSnapshot(t)
	if got := snap.Expand(nil, "pepsi"); !reflect.DeepEqual(got, []string{"pepsi", "soft-drinks", "beverages"}) {
		t.Fatalf("Expand(pepsi) = %v", got)
	}
	if got := snap.Expand(nil, "beverages"); !reflect.DeepEqual(got, []string{"beverages"}) {
		t.Fatalf("Expand(beverages) = %v", got)
	}
	if got := snap.Expand(nil, "nope"); !reflect.DeepEqual(got, []string{"nope"}) {
		t.Fatalf("Expand(nope) = %v", got)
	}
}

func TestSnapshotScore(t *testing.T) {
	snap := testSnapshot(t)

	// A pepsi basket covers {pepsi} and, via ancestors, {soft-drinks} —
	// but not {chips}.
	matches := snap.Matches([]string{"pepsi"}, 0, 0)
	if got := []string{matches[0].Rule.Consequent[0], matches[1].Rule.Consequent[0]}; len(matches) != 2 ||
		got[0] != "chips" || got[1] != "juice" {
		t.Fatalf("Score(pepsi) = %+v", matches)
	}
	// The soft-drinks rule was triggered by the concrete basket item.
	if trig := matches[0].Triggers["soft-drinks"]; trig != "pepsi" {
		t.Fatalf("soft-drinks trigger = %q, want pepsi", trig)
	}

	// Per-request threshold.
	if m := snap.Matches([]string{"pepsi"}, 0.7, 0); len(m) != 1 || m[0].Rule.Consequent[0] != "chips" {
		t.Fatalf("Score(pepsi, 0.7) = %+v", m)
	}

	// chips triggers only its own rule; unknown items are ignored.
	if m := snap.Matches([]string{"chips", "caviar"}, 0, 0); len(m) != 1 || m[0].Rule.Consequent[0] != "beverages" {
		t.Fatalf("Score(chips, caviar) = %+v", m)
	}
}

func TestSnapshotWithoutTaxonomy(t *testing.T) {
	snap := BuildSnapshot(testStore(), nil, Meta{})
	// Exact-name matching still works...
	if got := consequents(snap.QueryEntries("pepsi", 0, 0)); !reflect.DeepEqual(got, []string{"juice"}) {
		t.Fatalf("QueryItem(pepsi) without taxonomy = %v", got)
	}
	// ...but no ancestor expansion happens.
	if got := snap.Expand(nil, "pepsi"); !reflect.DeepEqual(got, []string{"pepsi"}) {
		t.Fatalf("Expand(pepsi) without taxonomy = %v", got)
	}
}

func TestSnapshotInfo(t *testing.T) {
	snap := testSnapshot(t)
	info := snap.Info()
	if info.Rules != 3 {
		t.Fatalf("Rules = %d, want 3", info.Rules)
	}
	// soft-drinks, chips, pepsi, juice, beverages appear in rules.
	if info.IndexedItems != 5 {
		t.Fatalf("IndexedItems = %d, want 5", info.IndexedItems)
	}
	if info.Source != "test" || info.MinSupport != 0.02 || info.MinRI != 0.3 {
		t.Fatalf("meta not carried: %+v", info)
	}
	if info.Built.IsZero() || snap.Age() < 0 {
		t.Fatalf("bad build time: %+v", info)
	}
}
