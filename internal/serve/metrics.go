package serve

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"

	"negmine/internal/govern"
)

// latency histogram bucket upper bounds. The last bucket is +Inf.
// (An array, not a slice, so len() is a compile-time constant below.)
var bucketBounds = [...]time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	1 * time.Second,
}

// histogram is a fixed-bucket latency histogram safe for concurrent use.
type histogram struct {
	buckets [len(bucketBounds) + 1]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for ; i < len(bucketBounds); i++ {
		if d <= bucketBounds[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// quantile estimates q ∈ (0,1] from the bucket counts (upper-bound of the
// bucket containing the q-th observation — the usual Prometheus-style bound).
func (h *histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i < len(bucketBounds) {
				return bucketBounds[i]
			}
			// +Inf bucket: report the largest finite bound.
			return bucketBounds[len(bucketBounds)-1]
		}
	}
	return bucketBounds[len(bucketBounds)-1]
}

type histogramJSON struct {
	Count   int64            `json:"count"`
	MeanMs  float64          `json:"meanMs"`
	P50Ms   float64          `json:"p50Ms"`
	P99Ms   float64          `json:"p99Ms"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

func (h *histogram) export(withBuckets bool) histogramJSON {
	out := histogramJSON{Count: h.count.Load()}
	if out.Count > 0 {
		out.MeanMs = float64(h.sumNs.Load()) / float64(out.Count) / 1e6
		out.P50Ms = h.quantile(0.50).Seconds() * 1e3
		out.P99Ms = h.quantile(0.99).Seconds() * 1e3
	}
	if withBuckets && out.Count > 0 {
		out.Buckets = map[string]int64{}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				label := "+Inf"
				if i < len(bucketBounds) {
					label = "le=" + bucketBounds[i].String()
				}
				out.Buckets[label] = n
			}
		}
	}
	return out
}

// endpoint ids tracked by Metrics.
const (
	epRules = iota
	epScore
	epHealthz
	epMetrics
	epReload
	epIngest
	epOther
	epCount
)

var endpointNames = [epCount]string{"rules", "score", "healthz", "metrics", "reload", "ingest", "other"}

// Metrics aggregates the daemon's counters: per-endpoint request and error
// counts, per-endpoint latency histograms, and reload outcomes. Everything
// is lock-free (atomics) — the /metrics handler reads while request
// goroutines write. Hand-rolled expvar-style JSON, no external deps.
type Metrics struct {
	requests [epCount]atomic.Int64
	errors   [epCount]atomic.Int64 // responses with status ≥ 400
	latency  [epCount]histogram

	reloadOK      atomic.Int64
	reloadFail    atomic.Int64
	lastReloadNs  atomic.Int64 // unix nanos of the last successful swap
	lastReloadErr atomic.Value // string; "" when the last reload succeeded

	panics atomic.Int64 // handler panics caught by the recovery middleware
	sheds  atomic.Int64 // 503s produced by admission control

	watchState      atomic.Value // string; "" until a watcher starts
	watchFails      atomic.Int64 // consecutive reload failures seen by the watcher
	watchIntervalNs atomic.Int64 // current poll interval

	// governStats, when non-nil, snapshots the admission controller for the
	// /metrics govern block. Set once at server construction, before any
	// handler runs.
	governStats func() govern.Stats

	// ingestStats, when non-nil, snapshots the ingest sink for the /metrics
	// ingest block. Set once at server construction, like governStats.
	ingestStats func() IngestStats

	// node is the cluster node identity (serve.WithNodeID), set once at
	// server construction, before any handler runs.
	node string

	start time.Time
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now()}
	m.lastReloadErr.Store("")
	m.watchState.Store("")
	return m
}

func (m *Metrics) observe(ep int, d time.Duration, status int) {
	if ep < 0 || ep >= epCount {
		ep = epOther
	}
	m.requests[ep].Add(1)
	if status >= 400 {
		m.errors[ep].Add(1)
	}
	m.latency[ep].observe(d)
}

func (m *Metrics) recordReload(err error) {
	if err != nil {
		m.reloadFail.Add(1)
		m.lastReloadErr.Store(err.Error())
		return
	}
	m.reloadOK.Add(1)
	m.lastReloadErr.Store("")
	m.lastReloadNs.Store(time.Now().UnixNano())
}

// recordPanic counts a handler panic caught by the recovery middleware.
func (m *Metrics) recordPanic() { m.panics.Add(1) }

// Panics returns how many handler panics have been recovered.
func (m *Metrics) Panics() int64 { return m.panics.Load() }

// recordShed counts a request shed by admission control (a governed 503).
func (m *Metrics) recordShed() { m.sheds.Add(1) }

// Sheds returns how many requests admission control has shed.
func (m *Metrics) Sheds() int64 { return m.sheds.Load() }

// setWatch publishes the watcher's state machine (state name, consecutive
// failures, current poll interval) for /metrics.
func (m *Metrics) setWatch(state string, fails int, interval time.Duration) {
	m.watchState.Store(state)
	m.watchFails.Store(int64(fails))
	m.watchIntervalNs.Store(int64(interval))
}

// WatchState returns the watcher's current state ("" if no watcher runs).
func (m *Metrics) WatchState() string { return m.watchState.Load().(string) }

// watchJSON is the watcher state block of the /metrics document.
type watchJSON struct {
	State           string  `json:"state"`
	ConsecFailures  int64   `json:"consecutiveFailures"`
	IntervalSeconds float64 `json:"intervalSeconds"`
}

// endpointJSON is one endpoint's exported block.
type endpointJSON struct {
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"`
	Latency  histogramJSON `json:"latency"`
}

// metricsJSON is the full /metrics document.
type metricsJSON struct {
	UptimeSeconds float64                 `json:"uptimeSeconds"`
	Node          string                  `json:"node,omitempty"` // cluster node identity
	Panics        int64                   `json:"panics"`
	Endpoints     map[string]endpointJSON `json:"endpoints"`
	Reloads       struct {
		OK        int64   `json:"ok"`
		Failed    int64   `json:"failed"`
		LastError string  `json:"lastError,omitempty"`
		LastOKAgo float64 `json:"lastOkAgeSeconds,omitempty"`
	} `json:"reloads"`
	Watch    *watchJSON `json:"watch,omitempty"`
	Snapshot struct {
		SnapshotInfo
		AgeSeconds float64 `json:"ageSeconds"`
		// AgeSecondsGauge repeats AgeSeconds under the stable snake_case
		// name scrapers alert on: a growing value means reloads (or the
		// replica's snapshot store) have stalled and the node serves stale
		// rules.
		AgeSecondsGauge float64 `json:"age_seconds"`
		// FreshnessSeconds is now minus the append time of the newest
		// ingested transaction visible in the served rules — the rule
		// freshness a client actually experiences. Without a watermark it
		// equals the snapshot age (same clock, see Snapshot.Freshness).
		// The snake_case twin is the scraper-stable gauge name.
		FreshnessSeconds      float64 `json:"freshnessSeconds"`
		FreshnessSecondsGauge float64 `json:"freshness_seconds"`
		// Layout describes the arena + posting-list memory layout; Cache is
		// the hot-item result cache (absent when caching is disabled).
		Layout *LayoutInfo `json:"layout,omitempty"`
		Cache  *CacheStats `json:"cache,omitempty"`
	} `json:"snapshot"`
	// Govern is the admission-controller block: AIMD window, queue depth,
	// degraded state and per-reason shed counters. Absent when no governor
	// is installed.
	Govern *governJSON `json:"govern,omitempty"`
	// Ingest is the segment-log block: segment counts, bytes, pending
	// transactions and last-refresh cost. Absent when ingest is disabled.
	Ingest *ingestJSON `json:"ingest,omitempty"`
}

// ingestJSON is the ingest block of the /metrics document: the sink's own
// counters plus the visible watermark, which is read from the *served*
// snapshot rather than the sink so that a failed reload keeping the old
// snapshot in place reports honestly.
type ingestJSON struct {
	IngestStats
	// VisibleWatermark is the last ingested TID whose effect is visible in
	// the served rules (0 until the first ingest-built snapshot).
	VisibleWatermark int64 `json:"visible_watermark"`
}

// governJSON is the admission block of the /metrics document.
type governJSON struct {
	govern.Stats
	ShedTotal int64 `json:"shedTotal"`
}

// WriteJSON renders the metrics (plus the current snapshot's info) as
// indented JSON.
func (m *Metrics) WriteJSON(w io.Writer, snap *Snapshot) error {
	var doc metricsJSON
	doc.UptimeSeconds = time.Since(m.start).Seconds()
	doc.Node = m.node
	doc.Endpoints = map[string]endpointJSON{}
	for ep := 0; ep < epCount; ep++ {
		if m.requests[ep].Load() == 0 {
			continue
		}
		doc.Endpoints[endpointNames[ep]] = endpointJSON{
			Requests: m.requests[ep].Load(),
			Errors:   m.errors[ep].Load(),
			Latency:  m.latency[ep].export(true),
		}
	}
	doc.Panics = m.panics.Load()
	doc.Reloads.OK = m.reloadOK.Load()
	doc.Reloads.Failed = m.reloadFail.Load()
	doc.Reloads.LastError = m.lastReloadErr.Load().(string)
	if state := m.WatchState(); state != "" {
		doc.Watch = &watchJSON{
			State:           state,
			ConsecFailures:  m.watchFails.Load(),
			IntervalSeconds: time.Duration(m.watchIntervalNs.Load()).Seconds(),
		}
	}
	if ns := m.lastReloadNs.Load(); ns > 0 {
		doc.Reloads.LastOKAgo = time.Since(time.Unix(0, ns)).Seconds()
	}
	if snap != nil {
		doc.Snapshot.SnapshotInfo = snap.Info()
		doc.Snapshot.AgeSeconds = snap.Age().Seconds()
		doc.Snapshot.AgeSecondsGauge = doc.Snapshot.AgeSeconds
		doc.Snapshot.FreshnessSeconds = snap.Freshness().Seconds()
		doc.Snapshot.FreshnessSecondsGauge = doc.Snapshot.FreshnessSeconds
		layout := snap.Layout()
		doc.Snapshot.Layout = &layout
		doc.Snapshot.Cache = snap.CacheStats()
	}
	if m.governStats != nil {
		st := m.governStats()
		doc.Govern = &governJSON{Stats: st, ShedTotal: st.Shed()}
	}
	if m.ingestStats != nil {
		doc.Ingest = &ingestJSON{IngestStats: m.ingestStats()}
		if snap != nil {
			doc.Ingest.VisibleWatermark = snap.VisibleWatermark()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
