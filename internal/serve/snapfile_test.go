package serve

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestSnapshotFileRoundTripOracle is the snapshot-format oracle: build a
// snapshot in the heap, write it to a .nsnap file, load it back through the
// mmap path, and require every query answer — ids, entries, scores,
// expansions, bit patterns of every float — to be identical to the in-heap
// original. Randomized worlds cover sparse/dense/shared postings and RI
// ties.
func TestSnapshotFileRoundTripOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		st, tax, _, pool := randomWorld(t, rng)
		built := BuildSnapshot(st, tax, Meta{Source: "oracle world", MinSupport: 0.01, MinRI: 0.1, CacheSize: -1})

		path := filepath.Join(t.TempDir(), "snap.nsnap")
		if err := WriteSnapshotFile(path, built, 42); err != nil {
			t.Fatalf("trial %d: WriteSnapshotFile: %v", trial, err)
		}
		loaded, err := OpenSnapshotFile(path, -1)
		if err != nil {
			t.Fatalf("trial %d: OpenSnapshotFile: %v", trial, err)
		}
		if loaded.Generation() != 42 || loaded.SourceKind() != "mmap" {
			t.Fatalf("trial %d: provenance = gen %d kind %q", trial, loaded.Generation(), loaded.SourceKind())
		}
		if loaded.Len() != built.Len() {
			t.Fatalf("trial %d: %d rules loaded, want %d", trial, loaded.Len(), built.Len())
		}
		info := loaded.Info()
		if info.Source != "oracle world" || info.MinSupport != 0.01 || info.MinRI != 0.1 {
			t.Fatalf("trial %d: info = %+v", trial, info)
		}
		if !info.Built.Equal(built.Info().Built) {
			t.Fatalf("trial %d: built time drifted: %v vs %v", trial, info.Built, built.Info().Built)
		}

		// Bit-identical rule arena.
		for i := 0; i < built.Len(); i++ {
			id := RuleID(i)
			be, le := built.Entry(id), loaded.Entry(id)
			if !reflect.DeepEqual(be, le) {
				t.Fatalf("trial %d: Entry(%d) = %+v, want %+v", trial, i, le, be)
			}
			if math.Float64bits(built.RI(id)) != math.Float64bits(loaded.RI(id)) {
				t.Fatalf("trial %d: RI(%d) bits differ", trial, i)
			}
		}

		// Identical query answers on every pool item across thresholds.
		minRIs := []float64{0, 0.2, 0.4, 0.8, 1.5}
		queries := append(append([]string(nil), pool...), "unknown-item")
		for _, name := range queries {
			for _, minRI := range minRIs {
				want := built.QueryItem(nil, name, minRI, 0)
				got := loaded.QueryItem(nil, name, minRI, 0)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: QueryItem(%q, %v) = %v, want %v", trial, name, minRI, got, want)
				}
			}
			if got, want := loaded.Expand(nil, name), built.Expand(nil, name); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: Expand(%q) = %v, want %v", trial, name, got, want)
			}
		}
		for q := 0; q < 15; q++ {
			basket := make([]string, 1+rng.Intn(4))
			for i := range basket {
				basket[i] = pool[rng.Intn(len(pool))]
			}
			minRI := minRIs[rng.Intn(len(minRIs))]
			want := built.Score(nil, basket, minRI, 0)
			got := loaded.Score(nil, basket, minRI, 0)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: Score(%v, %v) = %v, want %v", trial, basket, minRI, got, want)
			}
		}

		// Re-encoding the loaded snapshot must reproduce the file byte for
		// byte — proof that descriptors and backing arrays survive the trip.
		var first, second bytes.Buffer
		if err := EncodeSnapshot(&first, built, 42); err != nil {
			t.Fatal(err)
		}
		if err := EncodeSnapshot(&second, loaded, 42); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trial %d: re-encoded snapshot differs from original encoding", trial)
		}
		disk, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(disk, first.Bytes()) {
			t.Fatalf("trial %d: on-disk bytes differ from streamed encoding", trial)
		}
	}
}

// TestSnapshotFileCache checks that a loaded snapshot's cache behaves like a
// built one's: cached and uncached answers agree.
func TestSnapshotFileCache(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st, tax, _, pool := randomWorld(t, rng)
	built := BuildSnapshot(st, tax, Meta{CacheSize: -1})
	path := filepath.Join(t.TempDir(), "snap.nsnap")
	if err := WriteSnapshotFile(path, built, 1); err != nil {
		t.Fatal(err)
	}
	cached, err := OpenSnapshotFile(path, 0) // default cache
	if err != nil {
		t.Fatal(err)
	}
	if cached.CacheStats() == nil {
		t.Fatal("loaded snapshot has no cache")
	}
	for _, name := range pool {
		want := built.QueryItem(nil, name, 0, 0)
		for pass := 0; pass < 2; pass++ { // second pass hits the cache
			got := cached.QueryItem(nil, name, 0, 0)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pass %d: QueryItem(%q) = %v, want %v", pass, name, got, want)
			}
		}
	}
}

// TestOpenSnapshotFileRejectsCorruption flips bits across the file and
// requires OpenSnapshotFile to fail cleanly every time.
func TestOpenSnapshotFileRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st, tax, _, _ := randomWorld(t, rng)
	built := BuildSnapshot(st, tax, Meta{})
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.nsnap")
	if err := WriteSnapshotFile(path, built, 1); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 7, 40, 80, len(pristine) / 3, len(pristine) / 2, len(pristine) - 2} {
		bad := bytes.Clone(pristine)
		bad[pos] ^= 0x40
		p := filepath.Join(dir, "bad.nsnap")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if snap, err := OpenSnapshotFile(p, -1); err == nil {
			t.Fatalf("bit flip at %d: loaded %d rules from corrupt file", pos, snap.Len())
		}
	}
	// Truncations.
	for _, cut := range []int{0, 10, 64, len(pristine) - 1} {
		p := filepath.Join(dir, "trunc.nsnap")
		if err := os.WriteFile(p, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSnapshotFile(p, -1); err == nil {
			t.Fatalf("truncation at %d loaded successfully", cut)
		}
	}
}

// TestOpenSnapshotFileMtimeFallback: a .nsnap whose writer never stamped
// CreatedNs (pre-HA files, or replication paths that rebuild images) must
// not report a built time at the epoch — replica-mode freshness alarms
// would read that as a snapshot decades stale. The file's mtime is the
// fallback birth certificate.
func TestOpenSnapshotFileMtimeFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st, tax, _, _ := randomWorld(t, rng)
	built := BuildSnapshot(st, tax, Meta{})
	built.built = time.Time{} // simulate a writer with no build timestamp
	path := filepath.Join(t.TempDir(), "snap.nsnap")
	if err := WriteSnapshotFile(path, built, 1); err != nil {
		t.Fatal(err)
	}
	// Pin a known mtime well in the past but far from the epoch.
	want := time.Now().Add(-90 * time.Minute).Truncate(time.Second)
	if err := os.Chtimes(path, want, want); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenSnapshotFile(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Info().Built; !got.Equal(want) {
		t.Fatalf("Built = %v, want file mtime %v", got, want)
	}
	if age := loaded.Age(); age < 89*time.Minute || age > 92*time.Minute {
		t.Fatalf("Age = %v, want ≈90m", age)
	}

	// A stamped file keeps its embedded time and ignores mtime entirely.
	stamped := BuildSnapshot(st, tax, Meta{})
	path2 := filepath.Join(t.TempDir(), "stamped.nsnap")
	if err := WriteSnapshotFile(path2, stamped, 2); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path2, want, want); err != nil {
		t.Fatal(err)
	}
	loaded2, err := OpenSnapshotFile(path2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded2.Info().Built; !got.Equal(stamped.Info().Built) {
		t.Fatalf("stamped Built = %v, want %v", got, stamped.Info().Built)
	}
}
