package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"negmine/internal/fault"
	"negmine/internal/govern"
)

// --- POST body bounds -------------------------------------------------------

func newBoundedServer(t *testing.T, maxBody int64) *Server {
	t.Helper()
	srv, err := NewServer(context.Background(),
		func(context.Context) (*Snapshot, error) {
			return BuildSnapshot(testStore(), testTaxonomy(t), Meta{}), nil
		},
		WithLogger(func(string, ...any) {}),
		WithMaxBodyBytes(maxBody))
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestScoreBodyBound413(t *testing.T) {
	h := newBoundedServer(t, 1024).Handler()

	// Oversized body: clean 413 JSON naming the bound, not a hang or a 400.
	big := `{"basket":["pepsi","` + strings.Repeat("x", 4096) + `"]}`
	code, body := post(t, h, "/score", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /score body: code = %d, want 413 (%s)", code, body)
	}
	var resp struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("413 body is not JSON: %v\n%s", err, body)
	}
	if !strings.Contains(resp.Error, "1024 bytes") {
		t.Fatalf("413 error does not name the bound: %q", resp.Error)
	}

	// A body within the bound still serves.
	if code, body := post(t, h, "/score", `{"basket":["pepsi"]}`); code != http.StatusOK {
		t.Fatalf("small /score body under bound: %d %s", code, body)
	}
}

func TestReloadBodyBound413(t *testing.T) {
	h := newBoundedServer(t, 512).Handler()

	code, body := post(t, h, "/reload?wait=1", strings.Repeat("y", 2048))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /reload body: code = %d, want 413 (%s)", code, body)
	}
	var resp struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil || !strings.Contains(resp.Error, "512 bytes") {
		t.Fatalf("413 error = %q (err %v)", resp.Error, err)
	}

	// Empty body (the normal client) still reloads.
	if code, body := post(t, h, "/reload?wait=1", ""); code != http.StatusOK {
		t.Fatalf("/reload with empty body: %d %s", code, body)
	}
}

func TestBodyBoundDisabled(t *testing.T) {
	h := newBoundedServer(t, -1).Handler()
	big := `{"basket":["pepsi","` + strings.Repeat("x", 4096) + `"]}`
	if code, body := post(t, h, "/score", big); code != http.StatusOK {
		t.Fatalf("disabled bound rejected a 4KiB body: %d %s", code, body)
	}
}

// --- watcher state machine through /metrics ---------------------------------

// metricsWatchDoc is the slice of the /metrics document these tests assert
// on: the watch block plus reload outcome counters.
type metricsWatchDoc struct {
	Reloads struct {
		OK     int64 `json:"ok"`
		Failed int64 `json:"failed"`
	} `json:"reloads"`
	Watch *struct {
		State           string  `json:"state"`
		ConsecFailures  int64   `json:"consecutiveFailures"`
		IntervalSeconds float64 `json:"intervalSeconds"`
	} `json:"watch"`
}

func scrapeWatch(t *testing.T, h http.Handler) metricsWatchDoc {
	t.Helper()
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", code, body)
	}
	var doc metricsWatchDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad /metrics JSON: %v\n%s", err, body)
	}
	return doc
}

// TestWatchBackoffExportedInMetrics drives the watcher into persistent
// backoff (breaker threshold set out of reach) and asserts the /metrics
// document shows the state name, the consecutive-failure count, and a poll
// interval stretched beyond the base.
func TestWatchBackoffExportedInMetrics(t *testing.T) {
	var loads atomic.Int64
	srv, err := NewServer(context.Background(),
		func(context.Context) (*Snapshot, error) {
			if loads.Add(1) > 1 {
				return nil, errOf("bad report")
			}
			return BuildSnapshot(storeN(1), nil, Meta{}), nil
		},
		WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	base := 2 * time.Millisecond
	path := watchFixture(t, srv, WatchConfig{
		Interval:     base,
		MaxInterval:  8 * time.Millisecond,
		BreakerAfter: 1 << 20, // never open: stay in backoff forever
	})
	waitFor(t, "missing state in /metrics", func() bool {
		d := scrapeWatch(t, h)
		return d.Watch != nil && d.Watch.State == watchMissing
	})

	if err := os.WriteFile(path, []byte("broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "backoff with counters in /metrics", func() bool {
		d := scrapeWatch(t, h)
		return d.Watch != nil &&
			d.Watch.State == watchBackoff &&
			d.Watch.ConsecFailures >= 2 &&
			d.Watch.IntervalSeconds > base.Seconds() &&
			d.Reloads.Failed >= 2
	})
}

// TestWatchBreakerExportedInMetrics walks the full breaker lifecycle —
// missing → failing version opens the breaker → a fixed version closes it —
// asserting every stage through the /metrics HTTP document rather than the
// in-process accessor.
func TestWatchBreakerExportedInMetrics(t *testing.T) {
	var loads, fails atomic.Int64
	srv, err := NewServer(context.Background(),
		func(context.Context) (*Snapshot, error) {
			if n := loads.Add(1); n > 1 && fails.Load() > 0 {
				fails.Add(-1)
				return nil, errOf("bad report")
			}
			return BuildSnapshot(storeN(int(loads.Load())), nil, Meta{}), nil
		},
		WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	fails.Store(1 << 30)
	path := watchFixture(t, srv, WatchConfig{Interval: 2 * time.Millisecond, BreakerAfter: 3})
	waitFor(t, "missing state in /metrics", func() bool {
		d := scrapeWatch(t, h)
		return d.Watch != nil && d.Watch.State == watchMissing
	})

	if err := os.WriteFile(path, []byte("broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "open breaker in /metrics", func() bool {
		d := scrapeWatch(t, h)
		return d.Watch != nil &&
			d.Watch.State == watchOpen &&
			d.Watch.ConsecFailures >= 3 &&
			d.Reloads.Failed >= 3
	})

	// Recovery: a new version closes the breaker; the exported failure count
	// resets and the reload succeeds.
	fails.Store(0)
	if err := os.WriteFile(path, []byte("fixed-version"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "recovered watching state in /metrics", func() bool {
		d := scrapeWatch(t, h)
		return d.Watch != nil &&
			d.Watch.State == watchWatching &&
			d.Watch.ConsecFailures == 0 &&
			d.Reloads.OK >= 1
	})
}

// errOf avoids importing errors just for New in this file's loaders.
func errOf(msg string) error { return &watchLoadErr{msg} }

type watchLoadErr struct{ msg string }

func (e *watchLoadErr) Error() string { return e.msg }

// --- overload soak ----------------------------------------------------------

// soakDuration is how long TestOverloadSoak drives 4× load: a quick burst by
// default, 30s when CI sets NEGMINE_SOAK.
func soakDuration() time.Duration {
	if v := os.Getenv("NEGMINE_SOAK"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return 300 * time.Millisecond
}

// TestOverloadSoak proves graceful degradation under sustained overload:
// with 4 concurrency slots and an 8-deep queue, 48 synchronous clients are
// roughly 4× what the server can hold. Every response must be 200 or a 503
// carrying Retry-After — never a hang, a drop, or a surprise status — shed
// counters must rise monotonically, admitted latency stays under the request
// deadline, and no goroutines leak once the storm passes.
func TestOverloadSoak(t *testing.T) {
	const (
		maxConcurrent = 4
		maxQueue      = 8
		scoreWorkers  = 40
		rulesWorkers  = 8
		reqTimeout    = time.Second
	)
	gov := govern.NewController(govern.Config{
		MaxConcurrent: maxConcurrent,
		MaxQueue:      maxQueue,
	})
	srv, err := NewServer(context.Background(),
		func(context.Context) (*Snapshot, error) {
			return BuildSnapshot(testStore(), testTaxonomy(t), Meta{}), nil
		},
		WithLogger(func(string, ...any) {}),
		WithGovernor(gov),
		WithRequestTimeout(reqTimeout))
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	// Every admitted request holds its slot for ~2ms so the queue actually
	// fills; shed requests return immediately and the clients retry at once,
	// keeping the offered load pinned at ~4× capacity for the whole soak.
	defer fault.Enable(PointHandler, fault.Sleep(2*time.Millisecond))()

	goroutinesBefore := runtime.NumGoroutine()
	deadline := time.Now().Add(soakDuration())

	var (
		mu        sync.Mutex
		okLatency []time.Duration
		ok200     atomic.Int64
		ok503     atomic.Int64
		rules200  atomic.Int64
	)
	hit := func(fire func() (int, string), isScore bool) {
		start := time.Now()
		code, body := fire()
		switch code {
		case http.StatusOK:
			ok200.Add(1)
			if !isScore {
				rules200.Add(1)
			}
			if isScore {
				mu.Lock()
				okLatency = append(okLatency, time.Since(start))
				mu.Unlock()
			}
		case http.StatusServiceUnavailable:
			ok503.Add(1)
			// A brief pause before retrying keeps the offered load far above
			// capacity without the shed loop starving admitted handlers of
			// CPU (real clients honor Retry-After; a hot spin loop does not).
			time.Sleep(500 * time.Microsecond)
		default:
			t.Errorf("overload produced status %d (%s)", code, body)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < scoreWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				hit(func() (int, string) {
					code, body := postRec(t, h, "/score", `{"basket":["pepsi"]}`)
					return code, body
				}, true)
			}
		}()
	}
	// Cheap reads ride along: degraded mode sheds /score first but must keep
	// /rules answering whenever a slot frees.
	for i := 0; i < rulesWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				hit(func() (int, string) { return get(t, h, "/rules?item=pepsi") }, false)
			}
		}()
	}

	// Shed counters must only ever go up, sampled while the storm rages.
	monotoneDone := make(chan struct{})
	go func() {
		defer close(monotoneDone)
		var prev int64
		for time.Now().Before(deadline) {
			cur := srv.Metrics().Sheds()
			if cur < prev {
				t.Errorf("shed counter went backwards: %d -> %d", prev, cur)
			}
			prev = cur
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-monotoneDone

	total := ok200.Load() + ok503.Load()
	if total == 0 {
		t.Fatal("soak issued no requests")
	}
	sheds := srv.Metrics().Sheds()
	if sheds == 0 {
		t.Fatalf("4x overload shed nothing (%d requests, %d admitted)", total, ok200.Load())
	}
	if rules200.Load() == 0 {
		t.Error("cheap /rules never served during overload")
	}
	st := gov.Stats()
	if got := st.Shed(); got != sheds {
		t.Errorf("controller sheds = %d, metrics sheds = %d", got, sheds)
	}
	if st.Admitted == 0 || st.QueueHighWater == 0 {
		t.Errorf("stats = %+v, want admissions and a non-empty queue high-water", st)
	}
	if st.DegradedEnters == 0 {
		t.Errorf("sustained queue-full overload never entered degraded mode: %+v", st)
	}

	// Admitted p99 stays under the request deadline — shed fast, serve fast.
	mu.Lock()
	lat := append([]time.Duration(nil), okLatency...)
	mu.Unlock()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		if p99 := lat[len(lat)*99/100]; p99 >= reqTimeout {
			t.Errorf("admitted p99 = %v, want < %v", p99, reqTimeout)
		}
	}

	// The governor block is visible to operators even after the storm.
	_, body := get(t, h, "/metrics")
	var doc struct {
		Govern *struct {
			ShedTotal int64 `json:"shedTotal"`
			Admitted  int64 `json:"admitted"`
		} `json:"govern"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || doc.Govern == nil {
		t.Fatalf("metrics govern block missing (err %v)\n%s", err, body)
	}
	if doc.Govern.ShedTotal < sheds || doc.Govern.Admitted == 0 {
		t.Errorf("govern block = %+v, want shedTotal >= %d and admissions", doc.Govern, sheds)
	}

	// No goroutine leak: everything the soak started winds down.
	waitFor(t, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= goroutinesBefore+8
	})
}

// postRec is post with the Retry-After contract enforced on every 503.
func postRec(t *testing.T, h http.Handler, url, body string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, strings.NewReader(body)))
	if rec.Code == http.StatusServiceUnavailable {
		if ra := rec.Header().Get("Retry-After"); ra == "" {
			t.Errorf("503 without Retry-After header: %s", rec.Body.String())
		}
	}
	return rec.Code, rec.Body.String()
}
