package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"negmine/internal/report"
	"negmine/internal/rulestore"
)

func TestCacheHitMissEvictionLRU(t *testing.T) {
	c := newQueryCache(2)
	ctx := context.Background()
	compute := func(ids ...RuleID) func([]RuleID) ([]RuleID, error) {
		return func(dst []RuleID) ([]RuleID, error) { return append(dst, ids...), nil }
	}
	key := func(name string) queryKey { return queryKey{name: name} }

	if _, ok := c.get(key("a")); ok {
		t.Fatal("empty cache reported a hit")
	}
	if got, err := c.do(ctx, key("a"), nil, compute(1, 2)); err != nil || len(got) != 2 {
		t.Fatalf("do(a) = %v, %v", got, err)
	}
	if ids, ok := c.get(key("a")); !ok || len(ids) != 2 || ids[0] != 1 {
		t.Fatalf("get(a) after fill = %v, %v", ids, ok)
	}
	c.do(ctx, key("b"), nil, compute(3))
	c.get(key("a")) // touch a: b becomes LRU
	c.do(ctx, key("c"), nil, compute(4))
	if _, ok := c.get(key("b")); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.get(key("a")); !ok {
		t.Fatal("recently-used entry a was evicted")
	}
	st := c.stats()
	if st.Entries != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 || st.HitRate <= 0 || st.HitRate >= 1 {
		t.Fatalf("counter stats = %+v", st)
	}
}

func TestCacheKeyIncludesThresholdAndLimit(t *testing.T) {
	snap := testSnapshot(t)
	if a, b := snap.QueryItem(nil, "pepsi", 0, 0), snap.QueryItem(nil, "pepsi", 0.5, 0); len(a) == len(b) {
		t.Fatalf("distinct thresholds returned same result sizes: %d vs %d", len(a), len(b))
	}
	if a, b := snap.QueryItem(nil, "pepsi", 0, 0), snap.QueryItem(nil, "pepsi", 0, 1); len(a) <= len(b) {
		t.Fatalf("limit ignored: %d vs %d", len(a), len(b))
	}
}

func TestCacheSingleflightCoalesces(t *testing.T) {
	c := newQueryCache(8)
	key := queryKey{name: "hot"}
	started := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int64

	leaderDone := make(chan []RuleID)
	go func() {
		ids, _ := c.do(context.Background(), key, nil, func(dst []RuleID) ([]RuleID, error) {
			computes.Add(1)
			close(started)
			<-release
			return append(dst, 7), nil
		})
		leaderDone <- ids
	}()
	<-started

	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]RuleID, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids, err := c.do(context.Background(), key, nil, func(dst []RuleID) ([]RuleID, error) {
				computes.Add(1)
				return append(dst, 7), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = ids
		}(i)
	}
	// Wait until every waiter has joined the in-progress flight (coalesced
	// is counted before parking), then release the leader.
	for c.coalesced.Load() < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	ids := <-leaderDone
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("leader result = %v", ids)
	}
	for i, r := range results {
		if len(r) != 1 || r[0] != 7 {
			t.Fatalf("waiter %d result = %v", i, r)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", n)
	}
	if st := c.stats(); st.Coalesced == 0 {
		t.Fatalf("no coalesced lookups recorded: %+v", st)
	}
}

func TestCacheFailedFlightFallsBack(t *testing.T) {
	c := newQueryCache(8)
	key := queryKey{name: "flaky"}
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})

	go func() {
		c.do(context.Background(), key, nil, func(dst []RuleID) ([]RuleID, error) {
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started

	done := make(chan struct{})
	go func() {
		defer close(done)
		// The waiter's own compute succeeds after the leader's failed.
		ids, err := c.do(context.Background(), key, nil, func(dst []RuleID) ([]RuleID, error) {
			return append(dst, 9), nil
		})
		if err != nil || len(ids) != 1 || ids[0] != 9 {
			t.Errorf("fallback compute = %v, %v", ids, err)
		}
	}()
	close(release)
	<-done

	// A cancelled waiter gives up without computing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	release2 := make(chan struct{})
	restarted := make(chan struct{})
	go func() {
		c.do(context.Background(), queryKey{name: "slow"}, nil, func(dst []RuleID) ([]RuleID, error) {
			close(restarted)
			<-release2
			return dst, nil
		})
	}()
	<-restarted
	if _, err := c.do(ctx, queryKey{name: "slow"}, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	close(release2)
}

// TestSwapUnderLoad hammers a Server with concurrent QueryItem/Score readers
// while reloads swap versioned snapshots underneath them. Every observed
// result must be internally consistent with exactly one snapshot version —
// the atomic-swap + per-snapshot-cache coherence contract. Run with -race.
func TestSwapUnderLoad(t *testing.T) {
	// Version v's store has one rule {item} =/=> {v-consequent} per item, so
	// any query result self-identifies its snapshot version.
	buildVersion := func(v int) *rulestore.Store {
		rep := &report.NegativeReport{}
		for i := 0; i < 8; i++ {
			rep.Rules = append(rep.Rules, report.NegativeRuleRecord{
				Antecedent:   []string{fmt.Sprintf("item%d", i)},
				Consequent:   []string{fmt.Sprintf("v%d", v)},
				RuleInterest: 0.5,
			})
		}
		return rulestore.FromReport(rep)
	}
	var version atomic.Int64
	load := func(ctx context.Context) (*Snapshot, error) {
		v := version.Load()
		return BuildSnapshot(buildVersion(int(v)), nil, Meta{Source: fmt.Sprintf("v%d", v)}), nil
	}
	srv, err := NewServer(context.Background(), load, WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]RuleID, 0, 16)
			basket := []string{"item0", "item3"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := srv.Snapshot()
				want := snap.Info().Source // "vN"
				item := fmt.Sprintf("item%d", i%8)
				dst = snap.QueryItem(dst[:0], item, 0, 0)
				if len(dst) != 1 {
					t.Errorf("reader %d: QueryItem(%s) returned %d rules, want 1", g, item, len(dst))
					return
				}
				if got := snap.Entry(dst[0]).Consequent[0]; got != want {
					t.Errorf("reader %d: rule from snapshot %s has consequent %s (torn snapshot)", g, want, got)
					return
				}
				dst = snap.Score(dst[:0], basket, 0, 0)
				for _, id := range dst {
					if got := snap.Entry(id).Consequent[0]; got != want {
						t.Errorf("reader %d: Score on snapshot %s saw %s", g, want, got)
						return
					}
				}
			}
		}(g)
	}
	for v := 1; v <= 30; v++ {
		version.Store(int64(v))
		if err := srv.Reload(context.Background()); err != nil {
			t.Fatalf("reload v%d: %v", v, err)
		}
	}
	close(stop)
	wg.Wait()

	// The final snapshot's cache is private to it and starts cold at swap:
	// its stats must describe only post-swap traffic.
	if st := srv.Snapshot().CacheStats(); st == nil {
		t.Fatal("cache disabled on served snapshot")
	} else if st.Entries > st.Capacity {
		t.Fatalf("cache overflow: %+v", st)
	}
}
