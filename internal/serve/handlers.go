package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"negmine/internal/fault"
	"negmine/internal/govern"
	"negmine/internal/rulestore"
)

// RuleJSON is the wire form of one served rule (field names match the
// report JSON format so downstream tooling parses both).
type RuleJSON struct {
	Antecedent      []string `json:"antecedent"`
	Consequent      []string `json:"consequent"`
	RuleInterest    float64  `json:"ruleInterest"`
	ExpectedSupport float64  `json:"expectedSupport"`
	ActualSupport   float64  `json:"actualSupport"`
}

func ruleJSON(e rulestore.Entry) RuleJSON {
	return RuleJSON{
		Antecedent:      e.Antecedent,
		Consequent:      e.Consequent,
		RuleInterest:    e.RI,
		ExpectedSupport: e.Expected,
		ActualSupport:   e.Actual,
	}
}

// rulesResponse is the /rules payload.
type rulesResponse struct {
	Item     string     `json:"item"`
	Expanded []string   `json:"expanded"` // item + taxonomy ancestors consulted
	MinRI    float64    `json:"minRI"`
	Rules    []RuleJSON `json:"rules"`
}

// MatchJSON is the wire form of one triggered rule.
type MatchJSON struct {
	RuleJSON
	// Triggers maps antecedent items to the basket item that satisfied them.
	Triggers map[string]string `json:"triggers"`
}

// scoreRequest is the /score request body.
type scoreRequest struct {
	Basket []string `json:"basket"`
	MinRI  *float64 `json:"minRI,omitempty"` // per-request threshold; nil = serve all
	Limit  int      `json:"limit,omitempty"`
}

// scoreResponse is the /score payload: the negative rules the basket
// triggers — consequents the customer is unlikely to also buy.
type scoreResponse struct {
	Basket  []string    `json:"basket"`
	MinRI   float64     `json:"minRI"`
	Matches []MatchJSON `json:"matches"`
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status     string       `json:"status"`
	Node       string       `json:"node,omitempty"` // cluster node identity (WithNodeID)
	Snapshot   SnapshotInfo `json:"snapshot"`
	AgeSeconds float64      `json:"snapshotAgeSeconds"`
	// IngestRole is the node's write-path role (primary | standby | fenced,
	// empty on non-HA daemons); ReplLagSegments is a standby's sealed-segment
	// lag behind its primary.
	IngestRole      string `json:"ingestRole,omitempty"`
	ReplLagSegments int    `json:"replLagSegments,omitempty"`
}

// reloadResponse is the /reload payload.
type reloadResponse struct {
	Status string `json:"status"`          // "reloading", "already-reloading" or "ok"
	Error  string `json:"error,omitempty"` // set on synchronous (?wait=1) failure
}

// Handler returns the daemon's HTTP handler:
//
//	GET  /rules?item=NAME[&minri=F][&limit=N]   rules on NAME or its ancestors
//	POST /score   {"basket": [...], "minRI": F} rules the basket triggers
//	GET  /healthz                               liveness + snapshot info
//	GET  /metrics                               counters, latency, reload state
//	POST /reload[?wait=1]                       rebuild + swap the snapshot
//	POST /ingest  {"baskets": [[...], ...]}     append transactions (WithIngest)
//
// Every endpoint serves from one Snapshot pointer loaded at request start,
// so responses are internally consistent even while a reload swaps.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/rules", s.instrument(epRules, http.HandlerFunc(s.handleRules)))
	mux.Handle("/score", s.instrument(epScore, http.HandlerFunc(s.handleScore)))
	mux.Handle("/healthz", s.instrument(epHealthz, http.HandlerFunc(s.handleHealthz)))
	mux.Handle("/metrics", s.instrument(epMetrics, http.HandlerFunc(s.handleMetrics)))
	mux.Handle("/reload", s.instrument(epReload, http.HandlerFunc(s.handleReload)))
	mux.Handle("/ingest", s.instrument(epIngest, http.HandlerFunc(s.handleIngest)))
	for path, h := range s.aux {
		mux.Handle(path, s.instrument(epOther, h))
	}
	mux.Handle("/", s.instrument(epOther, http.NotFoundHandler()))
	return mux
}

// statusWriter captures the response status for metrics and whether
// anything was written yet (so the recovery middleware knows whether a 500
// can still be sent).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// admissionClass maps endpoints to governance classes: /score, /reload and
// /ingest are the expensive work degraded mode sheds first (a shed ingest is
// safe: nothing was appended, the client retries); /healthz and /metrics are
// exempt so operators can always see what an overloaded daemon is doing.
func admissionClass(ep int) (class govern.Class, exempt bool) {
	switch ep {
	case epScore, epReload, epIngest:
		return govern.Expensive, false
	case epHealthz, epMetrics:
		return 0, true
	default:
		return govern.Cheap, false
	}
}

// writeShed turns an admission rejection into the contract every client can
// rely on under overload: 503 with a Retry-After hint, never a hang and
// never a connection drop.
func writeShed(w http.ResponseWriter, shed *govern.ShedError) {
	secs := int(math.Ceil(shed.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable, "overloaded: request shed (%s)", shed.Reason)
}

// instrument wraps every handler with the serving-lifecycle armor: metrics,
// admission control, the POST body bound, the optional per-request deadline,
// the serve.handler failpoint, and panic recovery. A panicking handler
// produces a 500 (when nothing was written yet), bumps the panics counter,
// and never takes the process down; a shed request produces a 503 with
// Retry-After.
func (s *Server) instrument(ep int, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if s.nodeID != "" {
			sw.Header().Set("X-Negmine-Node", s.nodeID)
		}
		if s.reqTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.recordPanic()
				s.logf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal error")
				}
			}
			s.metrics.observe(ep, time.Since(start), sw.status)
		}()
		if r.Method == http.MethodPost {
			if limit := s.bodyLimit(); limit > 0 {
				r.Body = http.MaxBytesReader(sw, r.Body, limit)
			}
		}
		if s.gov != nil {
			if class, exempt := admissionClass(ep); !exempt {
				release, err := s.gov.Acquire(r.Context(), endpointNames[ep], class)
				if err != nil {
					var shed *govern.ShedError
					if errors.As(err, &shed) {
						s.metrics.recordShed()
						writeShed(sw, shed)
						return
					}
					writeError(sw, http.StatusServiceUnavailable, "admission: %v", err)
					return
				}
				defer release()
			}
		}
		if err := fault.Hit(PointHandler); err != nil {
			writeError(sw, http.StatusInternalServerError, "%v", err)
			return
		}
		next.ServeHTTP(sw, r)
	})
}

// bodyLimit resolves the configured POST body bound (see WithMaxBodyBytes).
func (s *Server) bodyLimit() int64 {
	switch {
	case s.maxBody > 0:
		return s.maxBody
	case s.maxBody < 0:
		return 0
	default:
		return DefaultMaxBodyBytes
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET /rules?item=NAME")
		return
	}
	item := r.URL.Query().Get("item")
	if item == "" {
		writeError(w, http.StatusBadRequest, "missing required query parameter: item")
		return
	}
	minRI := 0.0
	if v := r.URL.Query().Get("minri"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad minri %q: %v", v, err)
			return
		}
		minRI = f
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	snap := s.Snapshot()
	// Zero-copy read of the cached result: ids is shared with the snapshot's
	// cache and only iterated here, never retained or modified.
	ids, err := snap.QueryShared(r.Context(), item, minRI, limit)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "query aborted: %v", err)
		return
	}
	resp := rulesResponse{
		Item:     item,
		Expanded: snap.Expand(nil, item),
		MinRI:    minRI,
		Rules:    make([]RuleJSON, len(ids)),
	}
	for i, id := range ids {
		resp.Rules[i] = ruleJSON(snap.Entry(id))
	}
	writeJSON(w, http.StatusOK, resp)
}

// idBufPool recycles the RuleID result buffers of /score, so the snapshot's
// allocation-free score path stays allocation-free across requests (only the
// JSON rendering allocates).
var idBufPool = sync.Pool{New: func() any {
	buf := make([]RuleID, 0, 1024)
	return &buf
}}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, `use POST /score with {"basket": [...]}`)
		return
	}
	// The body is already bounded by instrument (http.MaxBytesReader).
	var req scoreRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Basket) == 0 {
		writeError(w, http.StatusBadRequest, "basket must contain at least one item")
		return
	}
	minRI := 0.0
	if req.MinRI != nil {
		minRI = *req.MinRI
	}
	snap := s.Snapshot()
	buf := idBufPool.Get().(*[]RuleID)
	ids, err := snap.ScoreCtx(r.Context(), (*buf)[:0], req.Basket, minRI, req.Limit)
	*buf = ids[:0]
	if err != nil {
		idBufPool.Put(buf)
		writeError(w, http.StatusServiceUnavailable, "scoring aborted: %v", err)
		return
	}
	resp := scoreResponse{
		Basket:  req.Basket,
		MinRI:   minRI,
		Matches: make([]MatchJSON, len(ids)),
	}
	for i, id := range ids {
		resp.Matches[i] = MatchJSON{
			RuleJSON: ruleJSON(snap.Entry(id)),
			Triggers: snap.Triggers(id, req.Basket),
		}
	}
	idBufPool.Put(buf)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	doc := healthResponse{
		Status:     "ok",
		Node:       s.nodeID,
		Snapshot:   snap.Info(),
		AgeSeconds: snap.Age().Seconds(),
	}
	if s.ingest != nil {
		st := s.ingest.Stats()
		doc.IngestRole = st.Role
		doc.ReplLagSegments = st.ReplLagSegments
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.metrics.WriteJSON(w, s.Snapshot())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST /reload")
		return
	}
	// /reload takes no body, but clients send one anyway; drain it through
	// the bound installed by instrument so an oversized payload gets a clean
	// 413 instead of an unbounded read.
	if _, err := io.Copy(io.Discard, r.Body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		if err := s.Reload(r.Context()); err != nil {
			writeJSON(w, http.StatusInternalServerError, reloadResponse{Status: "failed", Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, reloadResponse{Status: "ok"})
		return
	}
	// The background reload outlives this request; don't tie it to the
	// request context or the swap would be cancelled as the 202 returns.
	if s.TriggerReload(context.Background()) {
		writeJSON(w, http.StatusAccepted, reloadResponse{Status: "reloading"})
	} else {
		writeJSON(w, http.StatusAccepted, reloadResponse{Status: "already-reloading"})
	}
}
