package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// queryKey identifies one cached QueryItem result. The threshold and limit
// are part of the key, so a cached slice is always served verbatim.
type queryKey struct {
	name  string
	minRI float64
	limit int
}

// cacheEnt is one LRU entry; prev/next form an intrusive ring through the
// sentinel, most-recently-used first.
type cacheEnt struct {
	key        queryKey
	ids        []RuleID // immutable once stored
	prev, next *cacheEnt
}

// flight is one in-progress computation that concurrent misses for the same
// key coalesce onto.
type flight struct {
	done chan struct{}
	ids  []RuleID
	ok   bool
}

// CacheStats is the hot-item cache block of /metrics and BENCH_serving.json.
type CacheStats struct {
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Coalesced int64   `json:"coalesced"` // lookups that waited on another's computation
	HitRate   float64 `json:"hitRate"`
}

// queryCache is a bounded LRU of QueryItem results with singleflight
// coalescing: concurrent misses for the same key run the computation once
// and share the result. Each Snapshot owns its cache, so an atomic snapshot
// swap (reload, streaming re-mine) invalidates by construction — readers of
// the old snapshot keep its coherent cache, readers of the new one start
// cold. The hit path takes one mutex and copies ids into the caller's
// buffer; it performs no allocation.
type queryCache struct {
	mu      sync.Mutex
	max     int
	m       map[queryKey]*cacheEnt
	root    cacheEnt // sentinel: root.next = MRU, root.prev = LRU
	flights map[queryKey]*flight

	hits, misses, evictions, coalesced atomic.Int64
}

func newQueryCache(max int) *queryCache {
	if max < 1 {
		max = 1
	}
	c := &queryCache{
		max:     max,
		m:       make(map[queryKey]*cacheEnt, max),
		flights: map[queryKey]*flight{},
	}
	c.root.prev = &c.root
	c.root.next = &c.root
	return c
}

// get returns the cached ids for key, marking it most-recently-used. The
// returned slice is shared and must not be modified.
func (c *queryCache) get(key queryKey) ([]RuleID, bool) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.moveFront(e)
	c.mu.Unlock()
	c.hits.Add(1)
	return e.ids, true
}

// do computes the value for key exactly once across concurrent callers and
// appends the shared result to dst (the copying variant of doShared, for
// callers that own their result buffer).
func (c *queryCache) do(ctx context.Context, key queryKey, dst []RuleID, compute func([]RuleID) ([]RuleID, error)) ([]RuleID, error) {
	ids, err := c.doShared(ctx, key, func() ([]RuleID, error) { return compute(nil) })
	if err != nil {
		return dst, err
	}
	return append(dst, ids...), nil
}

// doShared computes the value for key exactly once across concurrent
// callers: the first caller runs compute and stores the freshly owned
// result; the rest wait and share it. On a failed flight (e.g. the leader's
// context expired) waiters fall back to computing for themselves — their own
// context may still be live. The returned slice is shared and immutable.
func (c *queryCache) doShared(ctx context.Context, key queryKey, compute func() ([]RuleID, error)) ([]RuleID, error) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		// Filled between the caller's get and now: a late hit.
		c.moveFront(e)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.ids, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-f.done:
			if f.ok {
				return f.ids, nil
			}
			return compute()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	ids, err := compute()
	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		f.ids, f.ok = ids, true
		c.insert(key, ids)
	}
	c.mu.Unlock()
	close(f.done)
	return ids, err
}

// insert stores ids under key, evicting the least-recently-used entry when
// full. Callers hold c.mu.
func (c *queryCache) insert(key queryKey, ids []RuleID) {
	if e, ok := c.m[key]; ok {
		e.ids = ids
		c.moveFront(e)
		return
	}
	for len(c.m) >= c.max {
		lru := c.root.prev
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions.Add(1)
	}
	e := &cacheEnt{key: key, ids: ids}
	c.m[key] = e
	c.pushFront(e)
}

func (c *queryCache) unlink(e *cacheEnt) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *queryCache) pushFront(e *cacheEnt) {
	e.prev = &c.root
	e.next = c.root.next
	e.prev.next = e
	e.next.prev = e
}

func (c *queryCache) moveFront(e *cacheEnt) {
	c.unlink(e)
	c.pushFront(e)
}

func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	entries := len(c.m)
	c.mu.Unlock()
	st := CacheStats{
		Entries:   entries,
		Capacity:  c.max,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Coalesced: c.coalesced.Load(),
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}
