package serve

import (
	"context"
	"math/rand"
	"os"
	"time"
)

// WatchConfig tunes WatchWith. The zero value is usable: every field falls
// back to the default documented on it.
type WatchConfig struct {
	// Interval is the base poll period (default 2s).
	Interval time.Duration
	// MaxInterval caps the failure backoff (default 32×Interval).
	MaxInterval time.Duration
	// BreakerAfter is how many consecutive reload failures open the
	// circuit breaker (default 3). An open breaker stops retrying the
	// file version that keeps failing; only a new version closes it.
	BreakerAfter int
	// Jitter spreads each sleep by ±Jitter fraction of the interval
	// (default 0.2) so a fleet of watchers doesn't stat in lockstep.
	Jitter float64
	// Seed seeds the jitter RNG, for deterministic tests (default 1).
	Seed int64
}

func (c WatchConfig) withDefaults() WatchConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 32 * c.Interval
	}
	if c.BreakerAfter <= 0 {
		c.BreakerAfter = 3
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// watch states, exported via /metrics.
const (
	watchWatching = "watching" // serving the latest version, polling for change
	watchSettling = "settling" // a new version appeared but is still changing
	watchBackoff  = "backoff"  // last reload failed; retrying with backoff
	watchOpen     = "open"     // breaker open: waiting for a new file version
	watchMissing  = "missing"  // the watched file does not exist
)

// statKey identifies one version of the watched file. Size+mtime is the
// cheap fingerprint rename-based writers always change; a file that still
// matches the served key needs no reload.
type statKey struct {
	size  int64
	mtime time.Time
}

func statOf(path string) (statKey, bool) {
	fi, err := os.Stat(path)
	if err != nil {
		return statKey{}, false
	}
	return statKey{size: fi.Size(), mtime: fi.ModTime()}, true
}

// WatchWith polls path and reloads the server when the file changes. It is
// the hardened replacement for a bare mtime poll:
//
//   - Debounce: a change is only acted on after two consecutive polls see
//     the same size+mtime, so a writer streaming into the file in place
//     never triggers a reload of a half-written version. (Atomic-rename
//     writers settle in one poll.)
//   - Missing-file tolerance: ENOENT is a state, not an error — logged once
//     on disappearance and once on return, never per tick.
//   - Backoff: a failing reload is retried at Interval<<fails, capped at
//     MaxInterval, with ±Jitter so watchers desynchronize.
//   - Circuit breaker: after BreakerAfter consecutive failures the watcher
//     stops hammering the bad version entirely and waits for the file to
//     change again. The previous snapshot keeps serving throughout.
//
// State, consecutive-failure count and current poll interval are exported
// through the server's /metrics document. WatchWith blocks until ctx is
// cancelled.
func (s *Server) WatchWith(ctx context.Context, path string, cfg WatchConfig) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	state := watchWatching
	served, ok := statOf(path) // version the current snapshot was built from
	if !ok {
		state = watchMissing
		s.logf("watch: %s does not exist yet; waiting for it", path)
	}
	var (
		pending statKey // last non-served version observed (settling)
		failed  statKey // version the breaker is open on
		fails   int     // consecutive reload failures
	)
	interval := cfg.Interval

	timer := time.NewTimer(s.jittered(interval, cfg.Jitter, rng))
	defer timer.Stop()
	for {
		s.metrics.setWatch(state, fails, interval)
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}

		cur, ok := statOf(path)
		switch {
		case !ok:
			if state != watchMissing {
				s.logf("watch: %s disappeared; keeping current snapshot", path)
				state = watchMissing
			}
			interval = cfg.Interval

		case cur == served:
			// Nothing new. A breaker stays open, everything else settles
			// back to plain watching.
			if state == watchMissing {
				s.logf("watch: %s is back, unchanged", path)
			}
			if state != watchOpen {
				state = watchWatching
			}
			interval = cfg.Interval

		case state == watchOpen && cur == failed:
			// Breaker open and the file hasn't changed since the version
			// that kept failing: do not retry, just keep polling.
			interval = cfg.Interval

		case cur != pending:
			// First sight of this version (or it is still growing):
			// debounce — wait for two identical observations.
			if state == watchMissing {
				s.logf("watch: %s is back", path)
			}
			pending = cur
			state = watchSettling
			interval = cfg.Interval

		default:
			// Stable new version: reload.
			s.logf("watch: %s changed, reloading", path)
			if err := s.Reload(ctx); err != nil {
				fails++
				failed = cur
				if fails >= cfg.BreakerAfter {
					state = watchOpen
					interval = cfg.Interval
					s.logf("watch: breaker open after %d failures; waiting for %s to change", fails, path)
				} else {
					state = watchBackoff
					interval = min(cfg.Interval<<fails, cfg.MaxInterval)
				}
			} else {
				served = cur
				fails = 0
				state = watchWatching
				interval = cfg.Interval
			}
		}

		timer.Reset(s.jittered(interval, cfg.Jitter, rng))
	}
}

// jittered spreads d by ±frac so watcher fleets desynchronize.
func (s *Server) jittered(d time.Duration, frac float64, rng *rand.Rand) time.Duration {
	j := 1 + frac*(2*rng.Float64()-1)
	return time.Duration(float64(d) * j)
}
