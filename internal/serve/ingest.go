package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
)

// ErrIngestRejected marks a batch the sink refused for content reasons —
// an unknown item name, an empty basket. The handler maps it to 400; every
// other sink error is a server-side failure and maps to 500.
var ErrIngestRejected = errors.New("batch rejected")

// IngestResult reports what an accepted batch became: the transaction id
// range the log assigned (durable before the sink returns) and whether the
// sink decided the accumulated delta warrants a background re-mine.
type IngestResult struct {
	FirstTID  int64
	LastTID   int64
	Accepted  int
	Refreshed bool // a re-mine was triggered by this batch
}

// IngestStats is the ingest block of the /metrics document, filled by the
// configured IngestSink from its segment log and incremental miner.
type IngestStats struct {
	Segments     int   `json:"segments"`
	SealedTxns   int   `json:"sealedTxns"`
	SealedBytes  int64 `json:"sealedBytes"`
	ActiveTxns   int   `json:"activeTxns"`
	TxnsAppended int64 `json:"txnsAppended"`
	Seals        int64 `json:"seals"`
	Compactions  int64 `json:"compactions"`
	// PendingTxns counts transactions acknowledged but not yet reflected in
	// the served snapshot (appended since the last completed refresh).
	PendingTxns int64 `json:"pendingTxns"`
	// Refreshes counts completed incremental re-mines; the LastRefresh*
	// fields describe the most recent one.
	Refreshes              int64   `json:"refreshes"`
	LastRefreshSeconds     float64 `json:"lastRefreshSeconds,omitempty"`
	LastRefreshNewSegments int     `json:"lastRefreshNewSegments,omitempty"`
	LastRefreshOldScans    int     `json:"lastRefreshOldSegmentScans"`
}

// IngestSink accepts batches of named baskets from POST /ingest. The serve
// layer owns only the HTTP contract; durability (append + fsync before
// return) and refresh scheduling live behind this interface — see
// cmd/negmined for the seglog+incr implementation.
type IngestSink interface {
	// Ingest appends the batch durably and returns the assigned TID range.
	// Content problems (unknown item name, empty basket) are reported with
	// an error wrapping ErrIngestRejected and nothing is appended.
	Ingest(ctx context.Context, baskets [][]string) (IngestResult, error)
	// Stats snapshots the sink's counters for /metrics.
	Stats() IngestStats
}

// WithIngest enables POST /ingest, backed by the given sink. Without this
// option the endpoint answers 404.
func WithIngest(sink IngestSink) Option {
	return func(s *Server) { s.ingest = sink }
}

// ingestRequest is the /ingest request body: a batch of baskets, each a
// list of item names from the snapshot's dictionary.
type ingestRequest struct {
	Baskets [][]string `json:"baskets"`
}

// ingestResponse is the /ingest payload. The TID range is durable (fsync'd
// to the segment log) by the time the client reads it.
type ingestResponse struct {
	Accepted  int   `json:"accepted"`
	FirstTID  int64 `json:"firstTid"`
	LastTID   int64 `json:"lastTid"`
	Refreshed bool  `json:"refreshTriggered"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.ingest == nil {
		writeError(w, http.StatusNotFound, "ingest is not enabled on this server")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, `use POST /ingest with {"baskets": [[...], ...]}`)
		return
	}
	// The body is already bounded by instrument (http.MaxBytesReader).
	var req ingestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Baskets) == 0 {
		writeError(w, http.StatusBadRequest, "baskets must contain at least one basket")
		return
	}
	for i, b := range req.Baskets {
		if len(b) == 0 {
			writeError(w, http.StatusBadRequest, "basket %d is empty", i)
			return
		}
	}
	res, err := s.ingest.Ingest(r.Context(), req.Baskets)
	if err != nil {
		if errors.Is(err, ErrIngestRejected) {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "ingest failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Accepted:  res.Accepted,
		FirstTID:  res.FirstTID,
		LastTID:   res.LastTID,
		Refreshed: res.Refreshed,
	})
}
