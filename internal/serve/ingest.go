package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
)

// ErrIngestRejected marks a batch the sink refused for content reasons —
// an unknown item name, an empty basket. The handler maps it to 400; every
// other sink error is a server-side failure and maps to 500.
var ErrIngestRejected = errors.New("batch rejected")

// Write-path errors for high-availability ingest. The handler maps all
// three refusals to 409 Conflict (the request is well-formed; this node or
// this sequence number is just not allowed to apply it) and unavailability
// to 503 with a Retry-After hint.
var (
	// ErrIngestFenced marks an append refused because the node's fencing
	// epoch is stale: another node was promoted primary past it.
	ErrIngestFenced = errors.New("ingest fenced: a newer primary holds the log")
	// ErrIngestNotPrimary marks a write sent to a standby or replica.
	ErrIngestNotPrimary = errors.New("ingest refused: node is not the primary")
	// ErrIngestStale marks a keyed batch whose sequence number is at or
	// below one already retired from the dedup window.
	ErrIngestStale = errors.New("ingest refused: stale sequence number")
	// ErrIngestUnavailable marks a write the primary could not make safe in
	// time (e.g. replication ack timeout); the client should retry.
	ErrIngestUnavailable = errors.New("ingest unavailable: retry later")
)

// IngestBatch is one write: a batch of named baskets plus an optional
// idempotency identity. When Key is set, (Key, Seq) must be unique per
// batch; retrying the same pair replays the original acknowledgment
// instead of appending twice.
type IngestBatch struct {
	Baskets [][]string
	Key     string
	Seq     uint64
}

// IngestResult reports what an accepted batch became: the transaction id
// range the log assigned (durable before the sink returns) and whether the
// sink decided the accumulated delta warrants a background re-mine.
type IngestResult struct {
	FirstTID  int64
	LastTID   int64
	Accepted  int
	Refreshed bool // a re-mine was triggered by this batch
	Duplicate bool // a keyed retry answered from the dedup window
}

// IngestStats is the ingest block of the /metrics document, filled by the
// configured IngestSink from its segment log and incremental miner.
type IngestStats struct {
	Segments     int   `json:"segments"`
	SealedTxns   int   `json:"sealedTxns"`
	SealedBytes  int64 `json:"sealedBytes"`
	ActiveTxns   int   `json:"activeTxns"`
	TxnsAppended int64 `json:"txnsAppended"`
	Seals        int64 `json:"seals"`
	Compactions  int64 `json:"compactions"`
	// PendingTxns counts transactions acknowledged but not yet reflected in
	// the served snapshot (appended since the last completed refresh).
	PendingTxns int64 `json:"pendingTxns"`
	// Refreshes counts completed incremental re-mines; the LastRefresh*
	// fields describe the most recent one.
	Refreshes              int64   `json:"refreshes"`
	LastRefreshSeconds     float64 `json:"lastRefreshSeconds,omitempty"`
	LastRefreshNewSegments int     `json:"lastRefreshNewSegments,omitempty"`
	LastRefreshOldScans    int     `json:"lastRefreshOldSegmentScans"`
	// High-availability state. Role is primary | standby | fenced (empty on
	// non-HA daemons); the counters mirror the seglog's fencing and dedup
	// activity, and ReplLagSegments is the standby's sealed-segment lag.
	Role            string `json:"role,omitempty"`
	Epoch           int64  `json:"epoch,omitempty"`
	FencedAppends   int64  `json:"fencedAppends,omitempty"`
	DedupHits       int64  `json:"dedupHits,omitempty"`
	DedupEntries    int    `json:"dedupEntries,omitempty"`
	ReplLagSegments int    `json:"replLagSegments,omitempty"`
}

// IngestSink accepts batches of named baskets from POST /ingest. The serve
// layer owns only the HTTP contract; durability (append + fsync before
// return) and refresh scheduling live behind this interface — see
// cmd/negmined for the seglog+incr implementation.
type IngestSink interface {
	// Ingest appends the batch durably and returns the assigned TID range.
	// Content problems (unknown item name, empty basket) are reported with
	// an error wrapping ErrIngestRejected and nothing is appended; keyed
	// retries of an applied batch return the original result with
	// Duplicate set.
	Ingest(ctx context.Context, batch IngestBatch) (IngestResult, error)
	// Stats snapshots the sink's counters for /metrics.
	Stats() IngestStats
}

// WithIngest enables POST /ingest, backed by the given sink. Without this
// option the endpoint answers 404.
func WithIngest(sink IngestSink) Option {
	return func(s *Server) { s.ingest = sink }
}

// ingestRequest is the /ingest request body: a batch of baskets, each a
// list of item names from the snapshot's dictionary, optionally tagged
// with an idempotency key and per-key sequence number.
type ingestRequest struct {
	Baskets [][]string `json:"baskets"`
	Key     string     `json:"key,omitempty"`
	Seq     uint64     `json:"seq,omitempty"`
}

// ingestResponse is the /ingest payload. The TID range is durable (fsync'd
// to the segment log) by the time the client reads it. A fresh append
// answers 202; a keyed retry replays the original range with 200 and
// duplicate set.
type ingestResponse struct {
	Accepted  int   `json:"accepted"`
	FirstTID  int64 `json:"firstTid"`
	LastTID   int64 `json:"lastTid"`
	Refreshed bool  `json:"refreshTriggered"`
	Duplicate bool  `json:"duplicate,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.ingest == nil {
		writeError(w, http.StatusNotFound, "ingest is not enabled on this server")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, `use POST /ingest with {"baskets": [[...], ...]}`)
		return
	}
	// The body is already bounded by instrument (http.MaxBytesReader).
	var req ingestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Baskets) == 0 {
		writeError(w, http.StatusBadRequest, "baskets must contain at least one basket")
		return
	}
	for i, b := range req.Baskets {
		if len(b) == 0 {
			writeError(w, http.StatusBadRequest, "basket %d is empty", i)
			return
		}
	}
	if req.Key == "" && req.Seq != 0 {
		writeError(w, http.StatusBadRequest, "seq requires a key")
		return
	}
	if req.Key != "" && req.Seq == 0 {
		writeError(w, http.StatusBadRequest, "keyed batches need seq >= 1")
		return
	}
	res, err := s.ingest.Ingest(r.Context(), IngestBatch{Baskets: req.Baskets, Key: req.Key, Seq: req.Seq})
	if err != nil {
		switch {
		case errors.Is(err, ErrIngestRejected):
			writeError(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, ErrIngestFenced), errors.Is(err, ErrIngestNotPrimary), errors.Is(err, ErrIngestStale):
			writeError(w, http.StatusConflict, "%v", err)
		case errors.Is(err, ErrIngestUnavailable):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "ingest failed: %v", err)
		}
		return
	}
	status := http.StatusAccepted
	if res.Duplicate {
		status = http.StatusOK
	}
	writeJSON(w, status, ingestResponse{
		Accepted:  res.Accepted,
		FirstTID:  res.FirstTID,
		LastTID:   res.LastTID,
		Refreshed: res.Refreshed,
		Duplicate: res.Duplicate,
	})
}
