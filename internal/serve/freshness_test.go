package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSnapshotWatermark covers the freshness accessors: a watermarked
// snapshot measures freshness from the append time of the last visible
// transaction; without a watermark it falls back to the build clock, so
// freshness and age agree.
func TestSnapshotWatermark(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	st, tax, _, _ := randomWorld(t, rng)
	snap := BuildSnapshot(st, tax, Meta{})

	if snap.VisibleWatermark() != 0 {
		t.Fatalf("fresh snapshot VisibleWatermark = %d, want 0", snap.VisibleWatermark())
	}
	if diff := snap.Freshness() - snap.Age(); diff < -time.Second || diff > time.Second {
		t.Fatalf("unwatermarked Freshness %v and Age %v disagree", snap.Freshness(), snap.Age())
	}

	at := time.Now().Add(-42 * time.Second)
	snap.SetWatermark(1234, at)
	if snap.VisibleWatermark() != 1234 {
		t.Fatalf("VisibleWatermark = %d, want 1234", snap.VisibleWatermark())
	}
	if f := snap.Freshness(); f < 41*time.Second || f > 44*time.Second {
		t.Fatalf("Freshness = %v, want ≈42s", f)
	}
}

// TestReplicaFreshnessClockAgreement is the satellite-3 regression: a
// replica that has never mined locally serves an mmap snapshot with no
// watermark, and its .nsnap may predate CreatedNs stamping — the case where
// OpenSnapshotFile falls back to the file mtime. The freshness gauge must
// read the exact same fallback clock as -watch/replica snapshot age; if the
// two ever use different sources, a replica would alarm on freshness while
// reporting a healthy age (or vice versa).
func TestReplicaFreshnessClockAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	st, tax, _, _ := randomWorld(t, rng)
	built := BuildSnapshot(st, tax, Meta{})
	built.built = time.Time{} // writer that never stamped CreatedNs
	path := filepath.Join(t.TempDir(), "replica.nsnap")
	if err := WriteSnapshotFile(path, built, 1); err != nil {
		t.Fatal(err)
	}
	mtime := time.Now().Add(-30 * time.Minute).Truncate(time.Second)
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenSnapshotFile(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.VisibleWatermark() != 0 {
		t.Fatalf("replica snapshot has watermark %d", loaded.VisibleWatermark())
	}
	age, fresh := loaded.Age(), loaded.Freshness()
	if age < 29*time.Minute || age > 32*time.Minute {
		t.Fatalf("Age = %v, want ≈30m from mtime", age)
	}
	if diff := fresh - age; diff < -time.Second || diff > time.Second {
		t.Fatalf("Freshness %v disagrees with Age %v on the mtime-fallback clock", fresh, age)
	}

	// And a stamped replica file: both read the embedded CreatedNs.
	stamped := BuildSnapshot(st, tax, Meta{})
	path2 := filepath.Join(t.TempDir(), "stamped.nsnap")
	if err := WriteSnapshotFile(path2, stamped, 2); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path2, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	loaded2, err := OpenSnapshotFile(path2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if diff := loaded2.Freshness() - loaded2.Age(); diff < -time.Second || diff > time.Second {
		t.Fatalf("stamped Freshness %v disagrees with Age %v", loaded2.Freshness(), loaded2.Age())
	}
	if loaded2.Age() > time.Minute {
		t.Fatalf("stamped Age = %v, should read CreatedNs (just built), not mtime", loaded2.Age())
	}
}

// TestMetricsFreshnessGauges: the /metrics document must export
// snapshot.freshness_seconds and ingest.visible_watermark, read from the
// served snapshot (not the sink), alongside the existing age_seconds gauge.
func TestMetricsFreshnessGauges(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	st, tax, _, _ := randomWorld(t, rng)
	snap := BuildSnapshot(st, tax, Meta{})
	snap.SetWatermark(777, time.Now().Add(-5*time.Second))

	m := NewMetrics()
	m.ingestStats = func() IngestStats { return IngestStats{Segments: 1} }
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Snapshot struct {
			AgeSeconds       float64 `json:"age_seconds"`
			FreshnessSeconds float64 `json:"freshness_seconds"`
		} `json:"snapshot"`
		Ingest struct {
			Segments         int   `json:"segments"`
			VisibleWatermark int64 `json:"visible_watermark"`
		} `json:"ingest"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Ingest.VisibleWatermark != 777 {
		t.Fatalf("ingest.visible_watermark = %d, want 777", doc.Ingest.VisibleWatermark)
	}
	if doc.Ingest.Segments != 1 {
		t.Fatalf("ingest stats lost in wrapping: %+v", doc.Ingest)
	}
	if f := doc.Snapshot.FreshnessSeconds; f < 4 || f > 8 {
		t.Fatalf("snapshot.freshness_seconds = %v, want ≈5", f)
	}
	if doc.Snapshot.AgeSeconds > 60 {
		t.Fatalf("snapshot.age_seconds = %v for a just-built snapshot", doc.Snapshot.AgeSeconds)
	}
}
