// Package serve is the online rule-serving layer: it turns a mined negative
// rule set into an immutable, item-indexed Snapshot and exposes it over HTTP
// (cmd/negmined) to concurrent readers — the "which customers who buy X are
// unlikely to buy Y?" workflow the paper motivates.
//
// The design is read-optimized: a Snapshot is built once, never mutated, and
// shared by any number of goroutines without locks. Re-mining produces a
// fresh Snapshot that the Server swaps in with an atomic pointer store, so
// queries never observe a half-built index and never block on a writer. A
// failed re-mine keeps the previous Snapshot serving.
//
// Memory layout. Rules live in a flat struct-of-arrays arena: every
// rulestore.Entry field is packed into parallel slices indexed by RuleID,
// with item names interned to dense int32 ids and both rule sides stored in
// two shared flat slices — no per-rule heap objects, no pointer chasing.
// RuleID order is serving-rank order (descending RI, ties by signature), so
// "all rules with RI ≥ t" is the id prefix [0, k) found by one binary
// search, and enumerating a posting list in ascending id order yields rank
// order for free.
//
// The three per-item indexes — antecedent, consequent, and the
// taxonomy-ancestor "reach" index (ante ∪ cons closed over ancestor
// chains) — are compressed bitmap posting lists over RuleIDs built with
// internal/bitmat: dense word-packed rows for frequent items, sorted id
// arrays for rare ones, and structure-shared rows for taxonomy nodes whose
// reach equals an ancestor's. QueryItem is a rank-select walk of one reach
// posting; Score ORs antecedent postings into a pooled scratch bitmap and
// subset-checks candidates against a bitset of basket-satisfied items. Both
// paths are allocation-free in steady state: callers supply result buffers
// and scratch comes from a sync.Pool.
package serve

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"negmine/internal/bitmat"
	"negmine/internal/item"
	"negmine/internal/rulestore"
	"negmine/internal/taxonomy"
)

// RuleID identifies one rule in a Snapshot. Ids are dense and assigned in
// serving-rank order: RuleID 0 is the highest-RI rule, ties broken by
// signature, so sorting ids is sorting by rank.
type RuleID int32

// posting is one item's compressed posting list over RuleIDs: either a
// sorted id array (sparse) or a word-packed bitmap trimmed of trailing zero
// words (dense), whichever is smaller. Both forms are subslices of shared
// per-index backing arrays; taxonomy nodes without rules of their own share
// their nearest indexed ancestor's posting outright (same subslice).
type posting struct {
	ids  []int32  // sparse form: ascending rule ids; nil when dense
	bits []uint64 // dense form: trimmed word-packed bitmap; nil when sparse
	n    int32    // set bits (list length)
}

// empty reports whether the posting matches no rules.
func (p posting) empty() bool { return p.n == 0 }

// Snapshot is one immutable, fully-indexed rule set. All methods are safe
// for concurrent use; none mutate the receiver.
type Snapshot struct {
	// Rule arena: parallel slices indexed by RuleID (struct-of-arrays).
	ri       []float64
	expected []float64
	actual   []float64
	// off has 2n+1 entries: rule i's antecedent occupies
	// side[off[2i]:off[2i+1]] and its consequent side[off[2i+1]:off[2i+2]]
	// of the two flat side arrays (names sorted within each side, ids
	// parallel to names).
	off       []uint32
	sideIDs   []int32
	sideNames []string

	// Item intern table and the flattened taxonomy-ancestor chains:
	// item id x's ancestors (nearest-first) are ancIDs[ancOff[x]:ancOff[x+1]].
	itemID map[string]int32
	names  []string
	ancOff []uint32
	ancIDs []int32

	// Posting-list indexes, all indexed by interned item id:
	// ante/cons match rules mentioning the item on that side; reach is the
	// taxonomy-ancestor index (ante ∪ cons of the item and every ancestor),
	// making QueryItem a single-posting walk.
	ante  []posting
	cons  []posting
	reach []posting

	// Per-index posting descriptors plus the final shared backing arrays,
	// retained for serialization (internal/snapfmt): a posting compressed
	// before a backing-array reallocation aliases a stale (value-identical)
	// copy, so the offsets recorded at compress time are the only reliable
	// map into the final arrays.
	anteIdx, consIdx, reachIdx postingBacking

	ruleWords  int   // words per rule bitmap: ceil(len(ri)/64)
	itemWords  int   // words per item bitset: ceil(len(names)/64)
	arenaBytes int64 // arena slice footprint (headers + payload, excl. string bytes)
	indexBytes int64 // posting-list footprint

	scratch sync.Pool   // *queryScratch
	cache   *queryCache // hot-item result cache; nil when disabled

	built    time.Time     // when the snapshot finished building
	buildDur time.Duration // how long indexing (or snapshot loading) took
	source   string        // human-readable provenance ("report foo.json", "mined baskets.txt")
	minSup   float64       // thresholds the rule set was mined at (0 if unknown)
	minRI    float64

	generation uint64 // artifact-store generation (0 when not from/in a store)
	sourceKind string // "mined", "json", "ingest" or "mmap"
	shard      string // cluster shard label "k/n" ("" when unsharded)

	// Ingest watermark: the last transaction id whose effect is visible in
	// this snapshot's rules and the wall-clock time it was appended. Zero
	// for snapshots not built from a live log (batch mines, mmap boots).
	wmTID int64
	wmAt  time.Time
}

// pdesc mirrors snapfmt.PostingDesc (same field meaning and kind values)
// without importing the format package into the query path.
type pdesc struct{ off, length, n, kind uint32 }

// Posting kinds in a pdesc, numerically identical to the snapfmt constants.
const (
	pdEmpty  uint32 = 0
	pdSparse uint32 = 1
	pdDense  uint32 = 2
)

// postingBacking is one index's encoded form: m descriptors over the two
// shared backing arrays.
type postingBacking struct {
	descs []pdesc
	ids   []int32
	words []uint64
}

// queryScratch is the pooled per-query working set: a rule bitmap for
// accumulating candidate ids, an item bitset for the basket-satisfied set,
// and the list of marked item ids (so Score walks only what it set).
type queryScratch struct {
	rules []uint64
	items []uint64
	ids   []int32
}

// SnapshotInfo is the metadata block surfaced by /healthz and /metrics.
type SnapshotInfo struct {
	Rules        int       `json:"rules"`
	IndexedItems int       `json:"indexedItems"`
	ArenaBytes   int64     `json:"arenaBytes"`
	IndexBytes   int64     `json:"indexBytes"`
	Built        time.Time `json:"built"`
	BuildSeconds float64   `json:"buildSeconds"` // index-build time, or snapshot-load time for mmap sources
	Source       string    `json:"source,omitempty"`
	SourceKind   string    `json:"sourceKind,omitempty"` // mined | json | ingest | mmap
	Generation   uint64    `json:"generation,omitempty"` // artifact-store generation
	Shard        string    `json:"shard,omitempty"`      // cluster shard label "k/n"
	MinSupport   float64   `json:"minSupport,omitempty"`
	MinRI        float64   `json:"minRI,omitempty"`
}

// IndexInfo describes one posting-list index for /metrics: how many items
// have entries, total posting entries (set bits), the dense/sparse/shared
// row split, and resident bytes.
type IndexInfo struct {
	Items      int   `json:"items"`
	Postings   int64 `json:"postings"`
	DenseRows  int   `json:"denseRows"`
	SparseRows int   `json:"sparseRows"`
	SharedRows int   `json:"sharedRows"`
	Bytes      int64 `json:"bytes"`
}

// LayoutInfo is the /metrics block describing the snapshot's memory layout.
type LayoutInfo struct {
	ArenaBytes int64     `json:"arenaBytes"`
	Antecedent IndexInfo `json:"antecedent"`
	Consequent IndexInfo `json:"consequent"`
	Reach      IndexInfo `json:"reach"`
}

// Meta carries snapshot provenance recorded at build time.
type Meta struct {
	Source     string  // where the rules came from
	MinSupport float64 // mining thresholds, if known
	MinRI      float64
	// CacheSize bounds the hot-item result cache in entries: 0 selects
	// DefaultCacheSize, negative disables caching entirely.
	CacheSize int
	// Keep filters rules into the snapshot: a rule is indexed only when
	// Keep(antecedent, consequent) returns true; nil keeps everything.
	// Cluster sharding passes the shard-ownership predicate here so each
	// shard's snapshot holds exactly its partition of the rule set, while
	// the taxonomy is still interned in full (expansion answers stay
	// identical on every shard).
	Keep func(antecedent, consequent []string) bool
}

// DefaultCacheSize is the hot-item result cache bound used when
// Meta.CacheSize is zero.
const DefaultCacheSize = 4096

// BuildSnapshot indexes a rule store into the flat arena + posting-list
// layout. tax supplies the ancestor index and may be nil (queries then match
// exact item names only). meta describes provenance; its zero value is fine.
func BuildSnapshot(st *rulestore.Store, tax *taxonomy.Taxonomy, meta Meta) *Snapshot {
	start := time.Now()
	entries := make([]rulestore.Entry, 0, st.Len())
	st.Each(func(e rulestore.Entry) bool {
		if meta.Keep == nil || meta.Keep(e.Antecedent, e.Consequent) {
			entries = append(entries, e)
		}
		return true
	})
	// Each yields signature order; re-sort by descending RI so that id order
	// is rank order (the stable sort keeps signature order across RI ties,
	// keeping results deterministic).
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].RI > entries[j].RI })

	s := &Snapshot{
		itemID: map[string]int32{},
		source: meta.Source,
		minSup: meta.MinSupport,
		minRI:  meta.MinRI,
	}

	// Intern taxonomy names first, in taxonomy id order, so expansion works
	// for every node the hierarchy knows (a leaf with no rules of its own
	// still reaches its category's rules); rule-only names follow.
	if tax != nil {
		for id := 0; id < tax.Size(); id++ {
			s.intern(tax.Name(item.Item(id)))
		}
	}
	for _, e := range entries {
		for _, n := range e.Antecedent {
			s.intern(n)
		}
		for _, n := range e.Consequent {
			s.intern(n)
		}
	}

	// Flattened ancestor chains. Interning in taxonomy id order above makes
	// interned id == taxonomy id for every taxonomy member, so chains map 1:1.
	m := len(s.names)
	s.ancOff = make([]uint32, m+1)
	if tax != nil {
		for id := 0; id < tax.Size(); id++ {
			s.ancOff[id] = uint32(len(s.ancIDs))
			for _, a := range tax.AncestorsOf(item.Item(id)) {
				s.ancIDs = append(s.ancIDs, int32(a))
			}
		}
		for id := tax.Size(); id <= m; id++ {
			s.ancOff[id] = uint32(len(s.ancIDs))
		}
	}

	s.buildArena(entries)
	s.buildIndexes(entries, m)
	if size := meta.CacheSize; size >= 0 {
		if size == 0 {
			size = DefaultCacheSize
		}
		s.cache = newQueryCache(size)
	}
	s.scratch.New = func() any {
		return &queryScratch{
			rules: make([]uint64, s.ruleWords),
			items: make([]uint64, s.itemWords),
			ids:   make([]int32, 0, 64),
		}
	}
	s.buildDur = time.Since(start)
	s.built = time.Now()
	return s
}

// intern assigns (or returns) the dense id of an item name.
func (s *Snapshot) intern(name string) int32 {
	if id, ok := s.itemID[name]; ok {
		return id
	}
	id := int32(len(s.names))
	s.itemID[name] = id
	s.names = append(s.names, name)
	return id
}

// ancChain returns item id x's interned ancestor ids, nearest-first
// (shared subslice).
func (s *Snapshot) ancChain(x int32) []int32 {
	return s.ancIDs[s.ancOff[x]:s.ancOff[x+1]]
}

// buildArena packs every entry field into the parallel arena slices.
func (s *Snapshot) buildArena(entries []rulestore.Entry) {
	n := len(entries)
	total := 0
	for _, e := range entries {
		total += len(e.Antecedent) + len(e.Consequent)
	}
	s.ri = make([]float64, n)
	s.expected = make([]float64, n)
	s.actual = make([]float64, n)
	s.off = make([]uint32, 2*n+1)
	s.sideIDs = make([]int32, 0, total)
	s.sideNames = make([]string, 0, total)
	for i, e := range entries {
		s.ri[i] = e.RI
		s.expected[i] = e.Expected
		s.actual[i] = e.Actual
		s.off[2*i] = uint32(len(s.sideIDs))
		for _, name := range e.Antecedent {
			s.sideIDs = append(s.sideIDs, s.itemID[name])
			s.sideNames = append(s.sideNames, name)
		}
		s.off[2*i+1] = uint32(len(s.sideIDs))
		for _, name := range e.Consequent {
			s.sideIDs = append(s.sideIDs, s.itemID[name])
			s.sideNames = append(s.sideNames, name)
		}
	}
	s.off[2*n] = uint32(len(s.sideIDs))
	s.arenaBytes = int64(n)*(3*8) + int64(len(s.off))*4 +
		int64(len(s.sideIDs))*4 + int64(len(s.sideNames))*16 +
		int64(len(s.names))*16 + int64(len(s.ancOff))*4 + int64(len(s.ancIDs))*4
}

// buildIndexes stages the three posting-list indexes as uncompressed bitmat
// rows over RuleIDs, then compresses every row into its smaller form.
// m is the interned item count.
func (s *Snapshot) buildIndexes(entries []rulestore.Entry, m int) {
	n := len(entries)
	s.ruleWords = (n + 63) / 64
	s.itemWords = (m + 63) / 64

	// Vocabulary: items that appear in at least one rule side. Only they get
	// staged bitmap rows; everything else shares or stays empty.
	inVocab := make([]bool, m)
	for _, id := range s.sideIDs {
		inVocab[id] = true
	}
	vocab := make(item.Itemset, 0, m)
	for id := 0; id < m; id++ {
		if inVocab[id] {
			vocab = append(vocab, item.Item(id))
		}
	}
	anteM := bitmat.New(vocab, n)
	consM := bitmat.New(vocab, n)
	for i := 0; i < n; i++ {
		for _, id := range s.sideIDs[s.off[2*i]:s.off[2*i+1]] {
			anteM.Set(item.Item(id), i)
		}
		for _, id := range s.sideIDs[s.off[2*i+1]:s.off[2*i+2]] {
			consM.Set(item.Item(id), i)
		}
	}

	// Compress ante/cons rows. Postings share two flat backing arrays per
	// index (one for sparse ids, one for dense words) — the compressed form
	// of the paper-scale reality that a few category-level items are dense
	// while the long tail of leaves is sparse.
	s.ante = make([]posting, m)
	s.cons = make([]posting, m)
	s.anteIdx.descs = make([]pdesc, m)
	s.consIdx.descs = make([]pdesc, m)
	s.reachIdx.descs = make([]pdesc, m)
	var anteC, consC, reachC compressor
	for _, x := range vocab {
		s.ante[x], s.anteIdx.descs[x] = anteC.compress(anteM.Row(x))
		s.cons[x], s.consIdx.descs[x] = consC.compress(consM.Row(x))
	}

	// Reach index: item x's posting is the union of ante|cons over x and all
	// its ancestors. Only vocabulary items produce distinct rows; a taxonomy
	// node with no rules of its own has exactly its nearest in-vocabulary
	// ancestor's reach, so it shares that posting (no copied bits).
	s.reach = make([]posting, m)
	scratchRow := make([]uint64, s.ruleWords)
	for _, x := range vocab {
		copy(scratchRow, anteM.Row(x))
		bitmat.OrInto(scratchRow, consM.Row(x))
		for _, a := range s.ancChain(int32(x)) {
			if inVocab[a] {
				bitmat.OrInto(scratchRow, anteM.Row(item.Item(a)))
				bitmat.OrInto(scratchRow, consM.Row(item.Item(a)))
			}
		}
		s.reach[x], s.reachIdx.descs[x] = reachC.compress(scratchRow)
	}
	for id := 0; id < m; id++ {
		if inVocab[id] {
			continue
		}
		for _, a := range s.ancChain(int32(id)) {
			if inVocab[a] {
				s.reach[id] = s.reach[a]
				s.reachIdx.descs[id] = s.reachIdx.descs[a]
				break
			}
		}
	}
	// Retain the final backing arrays: the descriptors recorded above index
	// into exactly these, regardless of interim reallocations.
	s.anteIdx.ids, s.anteIdx.words = anteC.ids, anteC.words
	s.consIdx.ids, s.consIdx.words = consC.ids, consC.words
	s.reachIdx.ids, s.reachIdx.words = reachC.ids, reachC.words
	s.indexBytes = anteC.bytes() + consC.bytes() + reachC.bytes() + int64(3*m)*postingHeaderBytes
}

// postingHeaderBytes is the resident size of one posting struct (two slice
// headers + count), used for the /metrics byte accounting.
const postingHeaderBytes = 2*24 + 8

// compressor packs posting lists for one index into shared flat backing
// arrays, choosing the smaller of the sparse (sorted ids) and dense
// (trimmed word-packed bitmap) forms per row.
type compressor struct {
	ids   []int32
	words []uint64
}

// compress packs one bitmap row into the smaller of its sparse and dense
// forms, appending to the shared backing arrays. Alongside the posting it
// returns the row's descriptor — the (offset, length, kind) triple into the
// final backing arrays that serialization uses, since the posting's own
// subslice may alias a pre-reallocation copy of the backing.
func (c *compressor) compress(row []uint64) (posting, pdesc) {
	n := bitmat.PopCount(row)
	if n == 0 {
		return posting{}, pdesc{}
	}
	last := len(row) - 1
	for row[last] == 0 {
		last--
	}
	trimmed := last + 1
	if 4*n < 8*trimmed {
		// Sparse: the id array is smaller than the trimmed bitmap.
		lo := len(c.ids)
		for i := bitmat.NextSet(row, 0); i >= 0; i = bitmat.NextSet(row, i+1) {
			c.ids = append(c.ids, int32(i))
		}
		return posting{ids: c.ids[lo:len(c.ids):len(c.ids)], n: int32(n)},
			pdesc{off: uint32(lo), length: uint32(n), n: uint32(n), kind: pdSparse}
	}
	lo := len(c.words)
	c.words = append(c.words, row[:trimmed]...)
	return posting{bits: c.words[lo:len(c.words):len(c.words)], n: int32(n)},
		pdesc{off: uint32(lo), length: uint32(trimmed), n: uint32(n), kind: pdDense}
}

func (c *compressor) bytes() int64 { return int64(len(c.ids))*4 + int64(len(c.words))*8 }

// indexInfo summarizes one posting-list index (indexed by item id) for
// /metrics. Rows that share a backing subslice (taxonomy nodes reusing an
// ancestor's reach) are counted once as dense/sparse and thereafter as
// shared, so Bytes reflects resident memory, not the sum over items.
func indexInfo(ps []posting) IndexInfo {
	var out IndexInfo
	seenSparse := map[*int32]bool{}
	seenDense := map[*uint64]bool{}
	for i := range ps {
		p := &ps[i]
		if p.empty() {
			continue
		}
		out.Items++
		out.Postings += int64(p.n)
		switch {
		case p.ids != nil && seenSparse[&p.ids[0]], p.bits != nil && seenDense[&p.bits[0]]:
			out.SharedRows++
		case p.ids != nil:
			seenSparse[&p.ids[0]] = true
			out.SparseRows++
			out.Bytes += int64(len(p.ids)) * 4
		default:
			seenDense[&p.bits[0]] = true
			out.DenseRows++
			out.Bytes += int64(len(p.bits)) * 8
		}
	}
	return out
}

// Len returns the number of rules in the snapshot.
func (s *Snapshot) Len() int { return len(s.ri) }

// Entry materializes rule id as a rulestore.Entry. The side slices are
// shared subslices of the arena — callers must not modify them. Entry is
// allocation-free.
func (s *Snapshot) Entry(id RuleID) rulestore.Entry {
	a, b, c := s.off[2*id], s.off[2*id+1], s.off[2*id+2]
	return rulestore.Entry{
		Antecedent: s.sideNames[a:b:b],
		Consequent: s.sideNames[b:c:c],
		RI:         s.ri[id],
		Expected:   s.expected[id],
		Actual:     s.actual[id],
	}
}

// RI returns rule id's rule interest.
func (s *Snapshot) RI(id RuleID) float64 { return s.ri[id] }

// Rules returns all rules in serving order (descending RI, ties by
// signature). The entries' side slices are shared with the arena; callers
// must not modify them.
func (s *Snapshot) Rules() []rulestore.Entry {
	out := make([]rulestore.Entry, s.Len())
	for i := range out {
		out[i] = s.Entry(RuleID(i))
	}
	return out
}

// Info summarizes the snapshot for health and metrics endpoints.
func (s *Snapshot) Info() SnapshotInfo {
	items := 0
	for id := range s.ante {
		if !s.ante[id].empty() || !s.cons[id].empty() {
			items++
		}
	}
	return SnapshotInfo{
		Rules:        s.Len(),
		IndexedItems: items,
		ArenaBytes:   s.arenaBytes,
		IndexBytes:   s.indexBytes,
		Built:        s.built,
		BuildSeconds: s.buildDur.Seconds(),
		Source:       s.source,
		SourceKind:   s.sourceKind,
		Generation:   s.generation,
		Shard:        s.shard,
		MinSupport:   s.minSup,
		MinRI:        s.minRI,
	}
}

// SetProvenance stamps the snapshot's artifact-store generation and source
// kind ("mined", "json", "ingest", "mmap"). It must be called before the
// snapshot is published to concurrent readers — typically right after
// BuildSnapshot, inside the load function.
func (s *Snapshot) SetProvenance(gen uint64, kind string) {
	s.generation = gen
	s.sourceKind = kind
}

// SetShard stamps the snapshot with its cluster shard label ("shard/width").
// Like SetProvenance it must be called before the snapshot is published to
// concurrent readers; the label is in-memory only (an .nsnap file re-loaded
// elsewhere is re-stamped by whoever loads it).
func (s *Snapshot) SetShard(shard, width int) {
	s.shard = fmt.Sprintf("%d/%d", shard, width)
}

// Generation returns the snapshot's artifact-store generation (0 when the
// snapshot neither came from nor was persisted to a store).
func (s *Snapshot) Generation() uint64 { return s.generation }

// SourceKind returns how the snapshot came to be: "mined", "json",
// "ingest" or "mmap".
func (s *Snapshot) SourceKind() string { return s.sourceKind }

// Layout describes the arena and posting-list indexes for /metrics.
func (s *Snapshot) Layout() LayoutInfo {
	return LayoutInfo{
		ArenaBytes: s.arenaBytes,
		Antecedent: indexInfo(s.ante),
		Consequent: indexInfo(s.cons),
		Reach:      indexInfo(s.reach),
	}
}

// CacheStats reports the hot-item cache counters, or nil when caching is
// disabled.
func (s *Snapshot) CacheStats() *CacheStats {
	if s.cache == nil {
		return nil
	}
	st := s.cache.stats()
	return &st
}

// Age returns how long ago the snapshot was built.
func (s *Snapshot) Age() time.Duration { return time.Since(s.built) }

// SetWatermark stamps the snapshot with the ingest watermark it covers: the
// last transaction id visible in this snapshot's rules and the wall-clock
// time that transaction was appended. Like SetProvenance it must be called
// before the snapshot is published to concurrent readers.
func (s *Snapshot) SetWatermark(tid int64, at time.Time) {
	s.wmTID = tid
	s.wmAt = at
}

// VisibleWatermark returns the last ingested transaction id visible in the
// snapshot's rules, or 0 when unknown (batch mines, mmap boots).
func (s *Snapshot) VisibleWatermark() int64 { return s.wmTID }

// Freshness returns how stale the served rules are: now minus the append
// time of the newest ingested transaction visible in the snapshot. A
// snapshot without a watermark — a batch mine, an mmap boot, a replica that
// has never mined locally — falls back to its build time, which is exactly
// the clock Age reads (including the .nsnap CreatedNs/mtime fallback), so
// age and freshness can never disagree about which clock they are on.
func (s *Snapshot) Freshness() time.Duration {
	if !s.wmAt.IsZero() {
		return time.Since(s.wmAt)
	}
	return time.Since(s.built)
}

// Expand appends name and its taxonomy ancestors (nearest-first) to dst and
// returns the extended slice. Unknown names expand to themselves. Expand is
// allocation-free when dst has capacity.
func (s *Snapshot) Expand(dst []string, name string) []string {
	dst = append(dst, name)
	if id, ok := s.itemID[name]; ok {
		for _, a := range s.ancChain(id) {
			dst = append(dst, s.names[a])
		}
	}
	return dst
}

// riPrefix returns the number of leading rules with RI ≥ minRI. Rules are
// RI-descending, so [0, k) is exactly the id range any query at this
// threshold may return.
func (s *Snapshot) riPrefix(minRI float64) int {
	lo, hi := 0, len(s.ri)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ri[mid] >= minRI {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ctxCheckEvery is how many posting-list words a query scans between
// deadline polls: often enough that a cancelled request stops promptly,
// rarely enough that the check is free on small snapshots.
const ctxCheckEvery = 1024

// QueryItem appends the ids of rules mentioning name — or any taxonomy
// ancestor of name — on either side, with RI ≥ minRI, to dst in serving
// order (descending RI, ties by signature) and returns the extended slice.
// limit ≤ 0 means unlimited. The call is allocation-free in steady state
// when dst has capacity.
func (s *Snapshot) QueryItem(dst []RuleID, name string, minRI float64, limit int) []RuleID {
	out, _ := s.QueryItemCtx(context.Background(), dst, name, minRI, limit)
	return out
}

// QueryItemCtx is QueryItem honoring a request deadline: a query over a huge
// snapshot checks ctx periodically and aborts with ctx.Err() instead of
// holding a handler goroutine past its budget.
func (s *Snapshot) QueryItemCtx(ctx context.Context, dst []RuleID, name string, minRI float64, limit int) ([]RuleID, error) {
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	if s.cache == nil {
		return s.queryCompute(ctx, dst, name, minRI, limit)
	}
	key := queryKey{name: name, minRI: minRI, limit: limit}
	if ids, ok := s.cache.get(key); ok {
		return append(dst, ids...), nil
	}
	return s.cache.do(ctx, key, dst, func(buf []RuleID) ([]RuleID, error) {
		return s.queryCompute(ctx, buf, name, minRI, limit)
	})
}

// QueryShared is QueryItemCtx without the result copy: the returned slice is
// shared and immutable — owned by the snapshot's cache, valid for the
// snapshot's lifetime, and must not be modified or appended to. It is the
// zero-copy hot path the /rules handler serves from: a cache hit costs one
// map lookup regardless of result size, so a heavily-ruled taxonomy (Tall)
// answers as fast as a sparse one (Short). With caching disabled the result
// is computed into a fresh slice per call.
func (s *Snapshot) QueryShared(ctx context.Context, name string, minRI float64, limit int) ([]RuleID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.cache == nil {
		return s.queryCompute(ctx, nil, name, minRI, limit)
	}
	key := queryKey{name: name, minRI: minRI, limit: limit}
	if ids, ok := s.cache.get(key); ok {
		return ids, nil
	}
	return s.cache.doShared(ctx, key, func() ([]RuleID, error) {
		return s.queryCompute(ctx, nil, name, minRI, limit)
	})
}

// queryCompute is the uncached query path: one rank-select walk over the
// item's reach posting, bounded by the RI prefix.
func (s *Snapshot) queryCompute(ctx context.Context, dst []RuleID, name string, minRI float64, limit int) ([]RuleID, error) {
	id, ok := s.itemID[name]
	if !ok {
		return dst, nil
	}
	k := s.riPrefix(minRI)
	if k == 0 {
		return dst, nil
	}
	p := s.reach[id]
	if p.empty() {
		return dst, nil
	}
	count := 0
	if p.ids != nil {
		for j, i := range p.ids {
			if int(i) >= k || (limit > 0 && count >= limit) {
				break
			}
			if j&(ctxCheckEvery-1) == ctxCheckEvery-1 {
				if err := ctx.Err(); err != nil {
					return dst, err
				}
			}
			dst = append(dst, RuleID(i))
			count++
		}
		return dst, nil
	}
	kw := (k + 63) / 64
	if kw > len(p.bits) {
		kw = len(p.bits)
	}
	for w := 0; w < kw; w++ {
		if w&(ctxCheckEvery-1) == ctxCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return dst, err
			}
		}
		word := p.bits[w]
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			if i >= k || (limit > 0 && count >= limit) {
				return dst, nil
			}
			dst = append(dst, RuleID(i))
			count++
			word &= word - 1
		}
	}
	return dst, nil
}

// Score appends the ids of rules whose full antecedent is covered by the
// basket — extended with taxonomy ancestors, so a basket containing pepsi
// supports soft-drinks — and whose RI ≥ minRI, to dst in serving order.
// limit ≤ 0 means unlimited. The call is allocation-free in steady state
// when dst has capacity (scratch bitmaps come from a pool).
func (s *Snapshot) Score(dst []RuleID, basket []string, minRI float64, limit int) []RuleID {
	out, _ := s.ScoreCtx(context.Background(), dst, basket, minRI, limit)
	return out
}

// ScoreCtx is Score honoring a request deadline, like QueryItemCtx.
func (s *Snapshot) ScoreCtx(ctx context.Context, dst []RuleID, basket []string, minRI float64, limit int) ([]RuleID, error) {
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	k := s.riPrefix(minRI)
	if k == 0 || len(s.names) == 0 {
		return dst, nil
	}
	sc := s.scratch.Get().(*queryScratch)
	defer s.scratch.Put(sc)
	clear(sc.items)
	sc.ids = sc.ids[:0]

	// Satisfied set: every item id the basket supports (items + ancestors),
	// recorded both as a bitset (for O(1) coverage checks) and as the marked
	// id list (so the candidate OR walks only satisfied postings).
	mark := func(id int32) {
		w, b := id>>6, uint(id&63)
		if sc.items[w]&(1<<b) == 0 {
			sc.items[w] |= 1 << b
			sc.ids = append(sc.ids, id)
		}
	}
	for _, bname := range basket {
		id, ok := s.itemID[bname]
		if !ok {
			continue
		}
		mark(id)
		for _, a := range s.ancChain(id) {
			mark(a)
		}
	}
	if len(sc.ids) == 0 {
		return dst, nil
	}

	// Candidate rules: the OR of the satisfied items' antecedent postings,
	// restricted to the RI prefix.
	kw := (k + 63) / 64
	acc := sc.rules[:kw]
	clear(acc)
	for _, id := range sc.ids {
		orPostingInto(acc, s.ante[id], k)
	}

	// Walk candidates in ascending id (= rank) order; a candidate matches
	// when every antecedent item id is in the satisfied bitset.
	count := 0
	for w := 0; w < kw; w++ {
		if w&(ctxCheckEvery-1) == ctxCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return dst, err
			}
		}
		word := acc[w]
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if i >= k {
				return dst, nil
			}
			if !s.covered(RuleID(i), sc.items) {
				continue
			}
			dst = append(dst, RuleID(i))
			if count++; limit > 0 && count >= limit {
				return dst, nil
			}
		}
	}
	return dst, nil
}

// covered reports whether every antecedent item of rule id is set in the
// satisfied-item bitset.
func (s *Snapshot) covered(id RuleID, items []uint64) bool {
	for _, a := range s.sideIDs[s.off[2*id]:s.off[2*id+1]] {
		if items[a>>6]&(1<<uint(a&63)) == 0 {
			return false
		}
	}
	return true
}

// orPostingInto folds posting p into the accumulator bitmap, ignoring rule
// ids ≥ k (acc has ceil(k/64) words).
func orPostingInto(acc []uint64, p posting, k int) {
	if p.empty() {
		return
	}
	if p.ids != nil {
		for _, i := range p.ids {
			if int(i) >= k {
				return
			}
			acc[i>>6] |= 1 << uint(i&63)
		}
		return
	}
	n := len(p.bits)
	if n > len(acc) {
		n = len(acc)
	}
	for w := 0; w < n; w++ {
		acc[w] |= p.bits[w]
	}
	// Bits of the last word beyond k are cleared lazily: the candidate walk
	// stops at k, so stray high bits in word k/64 are never emitted.
}

// Match is one rule triggered by a basket: the customer's basket covers the
// whole antecedent, so the rule predicts they are unlikely to also buy the
// consequent.
type Match struct {
	Rule rulestore.Entry
	// Triggers maps each antecedent item to the basket item that satisfied
	// it (the item itself, or the basket descendant whose ancestor chain
	// reached it).
	Triggers map[string]string
}

// Triggers maps each antecedent item of rule id to the first basket item
// (in basket order) that satisfies it — the item itself or a descendant.
// It allocates; use it on render paths, after Score picked the rule.
func (s *Snapshot) Triggers(id RuleID, basket []string) map[string]string {
	lo, hi := s.off[2*id], s.off[2*id+1]
	trig := make(map[string]string, hi-lo)
	for j := lo; j < hi; j++ {
		a := s.sideIDs[j]
		for _, b := range basket {
			if s.supports(b, a) {
				trig[s.sideNames[j]] = b
				break
			}
		}
	}
	return trig
}

// supports reports whether basket item b satisfies item id a: b is a itself
// or a descendant of a.
func (s *Snapshot) supports(b string, a int32) bool {
	id, ok := s.itemID[b]
	if !ok {
		return false
	}
	if id == a {
		return true
	}
	for _, y := range s.ancChain(id) {
		if y == a {
			return true
		}
	}
	return false
}

// QueryEntries is QueryItem materialized as entries — the allocating
// convenience for callers outside the hot path.
func (s *Snapshot) QueryEntries(name string, minRI float64, limit int) []rulestore.Entry {
	ids := s.QueryItem(nil, name, minRI, limit)
	out := make([]rulestore.Entry, len(ids))
	for i, id := range ids {
		out[i] = s.Entry(id)
	}
	return out
}

// Matches is Score materialized as Match values with trigger attribution —
// the allocating convenience for callers outside the hot path.
func (s *Snapshot) Matches(basket []string, minRI float64, limit int) []Match {
	ids := s.Score(nil, basket, minRI, limit)
	out := make([]Match, len(ids))
	for i, id := range ids {
		out[i] = Match{Rule: s.Entry(id), Triggers: s.Triggers(id, basket)}
	}
	return out
}
