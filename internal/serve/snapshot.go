// Package serve is the online rule-serving layer: it turns a mined negative
// rule set into an immutable, item-indexed Snapshot and exposes it over HTTP
// (cmd/negmined) to concurrent readers — the "which customers who buy X are
// unlikely to buy Y?" workflow the paper motivates.
//
// The design is read-optimized: a Snapshot is built once, never mutated, and
// shared by any number of goroutines without locks. Re-mining produces a
// fresh Snapshot that the Server swaps in with an atomic pointer store, so
// queries never observe a half-built index and never block on a writer. A
// failed re-mine keeps the previous Snapshot serving.
package serve

import (
	"context"
	"sort"
	"time"

	"negmine/internal/item"
	"negmine/internal/rulestore"
	"negmine/internal/taxonomy"
)

// Snapshot is one immutable, fully-indexed rule set. All methods are safe
// for concurrent use; none mutate the receiver.
//
// Rules are indexed three ways:
//
//   - by antecedent item: every name appearing on a rule's left side,
//   - by consequent item: every name on the right side,
//   - by taxonomy ancestor: each item name maps to its ancestor names, so a
//     query for a leaf (pepsi) also surfaces rules mined at category level
//     (soft-drinks) — the generalized rules the paper's stage 1 produces.
type Snapshot struct {
	// rules are presorted by descending RI (ties by signature), so index
	// order is serving-rank order: queries union posting lists and sort
	// plain ints instead of comparing rules.
	rules  []rulestore.Entry
	byAnte map[string][]int // item name → indexes into rules, ascending
	byCons map[string][]int
	anc    map[string][]string // item name → ancestor names, nearest-first

	built    time.Time     // when the snapshot finished building
	buildDur time.Duration // how long indexing took
	source   string        // human-readable provenance ("report foo.json", "mined baskets.txt")
	minSup   float64       // thresholds the rule set was mined at (0 if unknown)
	minRI    float64
}

// SnapshotInfo is the metadata block surfaced by /healthz and /metrics.
type SnapshotInfo struct {
	Rules        int       `json:"rules"`
	IndexedItems int       `json:"indexedItems"`
	Built        time.Time `json:"built"`
	BuildSeconds float64   `json:"buildSeconds"`
	Source       string    `json:"source,omitempty"`
	MinSupport   float64   `json:"minSupport,omitempty"`
	MinRI        float64   `json:"minRI,omitempty"`
}

// BuildSnapshot indexes a rule store. tax supplies the ancestor index and
// may be nil (queries then match exact item names only). meta describes
// provenance; its zero value is fine.
func BuildSnapshot(st *rulestore.Store, tax *taxonomy.Taxonomy, meta Meta) *Snapshot {
	start := time.Now()
	s := &Snapshot{
		rules:  make([]rulestore.Entry, 0, st.Len()),
		byAnte: map[string][]int{},
		byCons: map[string][]int{},
		anc:    map[string][]string{},
		source: meta.Source,
		minSup: meta.MinSupport,
		minRI:  meta.MinRI,
	}
	st.Each(func(e rulestore.Entry) bool {
		s.rules = append(s.rules, e)
		return true
	})
	// Each yields signature order; re-sort by descending RI so that index
	// order is rank order (the signature order from Each breaks RI ties,
	// keeping the result deterministic).
	sort.SliceStable(s.rules, func(i, j int) bool { return s.rules[i].RI > s.rules[j].RI })
	for i, e := range s.rules {
		for _, n := range e.Antecedent {
			s.byAnte[n] = append(s.byAnte[n], i)
		}
		for _, n := range e.Consequent {
			s.byCons[n] = append(s.byCons[n], i)
		}
	}
	if tax != nil {
		// Ancestor chains for every node the taxonomy knows. Chains are
		// resolved to names once at build time so queries are pure map hits.
		for id := 0; id < tax.Size(); id++ {
			ancs := tax.AncestorsOf(item.Item(id))
			if len(ancs) == 0 {
				continue
			}
			names := make([]string, len(ancs))
			for j, a := range ancs {
				names[j] = tax.Name(a)
			}
			s.anc[tax.Name(item.Item(id))] = names
		}
	}
	s.buildDur = time.Since(start)
	s.built = time.Now()
	return s
}

// Meta carries snapshot provenance recorded at build time.
type Meta struct {
	Source     string  // where the rules came from
	MinSupport float64 // mining thresholds, if known
	MinRI      float64
}

// Len returns the number of rules in the snapshot.
func (s *Snapshot) Len() int { return len(s.rules) }

// Rules returns all rules in serving order (descending RI, ties by
// signature). The slice is shared; callers must not modify it.
func (s *Snapshot) Rules() []rulestore.Entry { return s.rules }

// Info summarizes the snapshot for health and metrics endpoints.
func (s *Snapshot) Info() SnapshotInfo {
	items := map[string]struct{}{}
	for n := range s.byAnte {
		items[n] = struct{}{}
	}
	for n := range s.byCons {
		items[n] = struct{}{}
	}
	return SnapshotInfo{
		Rules:        len(s.rules),
		IndexedItems: len(items),
		Built:        s.built,
		BuildSeconds: s.buildDur.Seconds(),
		Source:       s.source,
		MinSupport:   s.minSup,
		MinRI:        s.minRI,
	}
}

// Age returns how long ago the snapshot was built.
func (s *Snapshot) Age() time.Duration { return time.Since(s.built) }

// Expand returns name followed by its taxonomy ancestors (nearest-first).
// Unknown names expand to themselves.
func (s *Snapshot) Expand(name string) []string {
	out := make([]string, 0, 1+len(s.anc[name]))
	out = append(out, name)
	out = append(out, s.anc[name]...)
	return out
}

// ctxCheckEvery is how many posting-list entries a query walks between
// deadline polls: often enough that a cancelled request stops promptly,
// rarely enough that the check is free on small snapshots.
const ctxCheckEvery = 1024

// QueryItem returns the rules mentioning name — or any taxonomy ancestor of
// name — on either side, with RI ≥ minRI, ordered by descending RI (ties
// broken by signature order for determinism). limit ≤ 0 means unlimited.
func (s *Snapshot) QueryItem(name string, minRI float64, limit int) []rulestore.Entry {
	out, _ := s.QueryItemCtx(context.Background(), name, minRI, limit)
	return out
}

// QueryItemCtx is QueryItem honoring a request deadline: a query over a huge
// snapshot checks ctx periodically and aborts with ctx.Err() instead of
// holding a handler goroutine past its budget.
func (s *Snapshot) QueryItemCtx(ctx context.Context, name string, minRI float64, limit int) ([]rulestore.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hit := map[int]struct{}{}
	idx := make([]int, 0, 16)
	walked := 0
	for _, n := range s.Expand(name) {
		for _, lists := range [2]map[string][]int{s.byAnte, s.byCons} {
			if walked += len(lists[n]); walked >= ctxCheckEvery {
				walked = 0
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			for _, i := range lists[n] {
				// Posting lists are ascending and rules RI-descending, so
				// everything after the first miss also misses.
				if s.rules[i].RI < minRI {
					break
				}
				if _, ok := hit[i]; !ok {
					hit[i] = struct{}{}
					idx = append(idx, i)
				}
			}
		}
	}
	// Ascending index = descending RI: rank order with an integer sort.
	sort.Ints(idx)
	if limit > 0 && len(idx) > limit {
		idx = idx[:limit]
	}
	out := make([]rulestore.Entry, len(idx))
	for i, j := range idx {
		out[i] = s.rules[j]
	}
	return out, nil
}

// Match is one rule triggered by a basket: the customer's basket covers the
// whole antecedent, so the rule predicts they are unlikely to also buy the
// consequent.
type Match struct {
	Rule rulestore.Entry
	// Triggers maps each antecedent item to the basket item that satisfied
	// it (the item itself, or the basket descendant whose ancestor chain
	// reached it).
	Triggers map[string]string
}

// Score evaluates a basket against the snapshot: it extends the basket with
// taxonomy ancestors (a basket containing pepsi supports soft-drinks) and
// returns every rule whose full antecedent is covered by the extended basket
// and whose RI meets the per-request threshold. Results are ordered by
// descending RI, ties by signature order. limit ≤ 0 means unlimited.
func (s *Snapshot) Score(basket []string, minRI float64, limit int) []Match {
	out, _ := s.ScoreCtx(context.Background(), basket, minRI, limit)
	return out
}

// ScoreCtx is Score honoring a request deadline, like QueryItemCtx.
func (s *Snapshot) ScoreCtx(ctx context.Context, basket []string, minRI float64, limit int) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// satisfies maps every name the basket supports to the concrete basket
	// item that produced it.
	satisfies := map[string]string{}
	for _, b := range basket {
		for _, n := range s.Expand(b) {
			if _, ok := satisfies[n]; !ok {
				satisfies[n] = b
			}
		}
	}
	// Candidate rules: any rule whose antecedent mentions a supported name.
	cand := map[int]struct{}{}
	idx := make([]int, 0, 16)
	walked := 0
	for n := range satisfies {
		if walked += len(s.byAnte[n]); walked >= ctxCheckEvery {
			walked = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, i := range s.byAnte[n] {
			if s.rules[i].RI < minRI {
				break // RI-descending posting list: the rest miss too
			}
			if _, ok := cand[i]; ok {
				continue
			}
			cand[i] = struct{}{}
			covered := true
			for _, a := range s.rules[i].Antecedent {
				if _, ok := satisfies[a]; !ok {
					covered = false
					break
				}
			}
			if covered {
				idx = append(idx, i)
			}
		}
	}
	// Ascending index = descending RI.
	sort.Ints(idx)
	if limit > 0 && len(idx) > limit {
		idx = idx[:limit]
	}
	out := make([]Match, len(idx))
	for i, j := range idx {
		trig := make(map[string]string, len(s.rules[j].Antecedent))
		for _, a := range s.rules[j].Antecedent {
			trig[a] = satisfies[a]
		}
		out[i] = Match{Rule: s.rules[j], Triggers: trig}
	}
	return out, nil
}
