package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"negmine/internal/report"
	"negmine/internal/rulestore"
)

// storeN builds a one-rule store whose consequent encodes generation n, so
// tests can tell which snapshot served a response.
func storeN(n int) *rulestore.Store {
	return rulestore.FromReport(&report.NegativeReport{
		Rules: []report.NegativeRuleRecord{
			{Antecedent: []string{"pepsi"}, Consequent: []string{fmt.Sprintf("gen-%d", n)}, RuleInterest: 0.9},
		},
	})
}

func newTestServer(t *testing.T, load LoadFunc) *Server {
	t.Helper()
	srv, err := NewServer(context.Background(), load, WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec.Code, rec.Body.String()
}

func post(t *testing.T, h http.Handler, url, body string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, strings.NewReader(body)))
	return rec.Code, rec.Body.String()
}

func TestHandlerRules(t *testing.T) {
	tax := testTaxonomy(t)
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(testStore(), tax, Meta{Source: "test"}), nil
	})
	h := srv.Handler()

	code, body := get(t, h, "/rules?item=pepsi&minri=0.5")
	if code != http.StatusOK {
		t.Fatalf("GET /rules: %d %s", code, body)
	}
	var resp struct {
		Item     string   `json:"item"`
		Expanded []string `json:"expanded"`
		Rules    []struct {
			Consequent   []string `json:"consequent"`
			RuleInterest float64  `json:"ruleInterest"`
		} `json:"rules"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(resp.Expanded) != 3 || resp.Expanded[1] != "soft-drinks" {
		t.Fatalf("expanded = %v", resp.Expanded)
	}
	if len(resp.Rules) != 2 || resp.Rules[0].Consequent[0] != "chips" || resp.Rules[0].RuleInterest != 0.8 {
		t.Fatalf("rules = %+v", resp.Rules)
	}

	// Validation.
	if code, _ := get(t, h, "/rules"); code != http.StatusBadRequest {
		t.Fatalf("missing item: %d", code)
	}
	if code, _ := get(t, h, "/rules?item=x&minri=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad minri: %d", code)
	}
	if code, _ := post(t, h, "/rules?item=x", ""); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /rules: %d", code)
	}
}

func TestHandlerScore(t *testing.T) {
	tax := testTaxonomy(t)
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(testStore(), tax, Meta{}), nil
	})
	h := srv.Handler()

	code, body := post(t, h, "/score", `{"basket":["pepsi"],"minRI":0.7}`)
	if code != http.StatusOK {
		t.Fatalf("POST /score: %d %s", code, body)
	}
	var resp struct {
		Matches []struct {
			Consequent []string          `json:"consequent"`
			Triggers   map[string]string `json:"triggers"`
		} `json:"matches"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].Consequent[0] != "chips" {
		t.Fatalf("matches = %+v", resp.Matches)
	}
	if resp.Matches[0].Triggers["soft-drinks"] != "pepsi" {
		t.Fatalf("triggers = %v", resp.Matches[0].Triggers)
	}

	// Validation.
	if code, _ := post(t, h, "/score", `{}`); code != http.StatusBadRequest {
		t.Fatalf("empty basket: %d", code)
	}
	if code, _ := post(t, h, "/score", `{nope`); code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", code)
	}
	if code, _ := get(t, h, "/score"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /score: %d", code)
	}
}

func TestHandlerHealthzAndMetrics(t *testing.T) {
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(testStore(), nil, Meta{Source: "test"}), nil
	})
	h := srv.Handler()

	code, body := get(t, h, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("GET /healthz: %d %s", code, body)
	}

	// Generate some traffic, then check it shows up in /metrics.
	get(t, h, "/rules?item=pepsi")
	get(t, h, "/rules?item=pepsi")
	get(t, h, "/nope")
	code, body = get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	var m struct {
		Endpoints map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
			Latency  struct {
				Count int64 `json:"count"`
			} `json:"latency"`
		} `json:"endpoints"`
		Snapshot struct {
			Rules      int     `json:"rules"`
			AgeSeconds float64 `json:"ageSeconds"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("bad metrics JSON: %v\n%s", err, body)
	}
	if m.Endpoints["rules"].Requests != 2 || m.Endpoints["rules"].Latency.Count != 2 {
		t.Fatalf("rules endpoint metrics = %+v", m.Endpoints["rules"])
	}
	if m.Endpoints["other"].Errors != 1 {
		t.Fatalf("404s not counted as errors: %+v", m.Endpoints["other"])
	}
	if m.Snapshot.Rules != 3 {
		t.Fatalf("snapshot info = %+v", m.Snapshot)
	}
}

func TestReloadSwapsSnapshot(t *testing.T) {
	var gen atomic.Int64
	tax := testTaxonomy(t)
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(storeN(int(gen.Add(1))), tax, Meta{}), nil
	})
	h := srv.Handler()

	_, body := get(t, h, "/rules?item=pepsi")
	if !strings.Contains(body, "gen-1") {
		t.Fatalf("initial snapshot: %s", body)
	}
	code, body := post(t, h, "/reload?wait=1", "")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("POST /reload?wait=1: %d %s", code, body)
	}
	if _, body = get(t, h, "/rules?item=pepsi"); !strings.Contains(body, "gen-2") {
		t.Fatalf("after reload: %s", body)
	}
}

func TestFailedReloadKeepsSnapshotAndSurfacesError(t *testing.T) {
	var calls atomic.Int64
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		if calls.Add(1) > 1 {
			return nil, fmt.Errorf("synthetic mining failure")
		}
		return BuildSnapshot(storeN(1), testTaxonomy(t), Meta{}), nil
	})
	h := srv.Handler()

	code, body := post(t, h, "/reload?wait=1", "")
	if code != http.StatusInternalServerError || !strings.Contains(body, "synthetic mining failure") {
		t.Fatalf("failed reload: %d %s", code, body)
	}
	// Old snapshot still serves.
	if _, body := get(t, h, "/rules?item=pepsi"); !strings.Contains(body, "gen-1") {
		t.Fatalf("old snapshot gone: %s", body)
	}
	// Failure is surfaced in /metrics.
	_, body = get(t, h, "/metrics")
	if !strings.Contains(body, `"failed": 1`) || !strings.Contains(body, "synthetic mining failure") {
		t.Fatalf("metrics missing reload failure: %s", body)
	}
	// A later successful reload clears the error.
	calls.Store(0)
	if code, _ := post(t, h, "/reload?wait=1", ""); code != http.StatusOK {
		t.Fatalf("recovery reload failed")
	}
	_, body = get(t, h, "/metrics")
	if strings.Contains(body, "synthetic mining failure") {
		t.Fatalf("stale reload error still in metrics: %s", body)
	}
}

func TestInitialLoadFailure(t *testing.T) {
	_, err := NewServer(context.Background(), func(context.Context) (*Snapshot, error) {
		return nil, fmt.Errorf("no rules")
	}, WithLogger(func(string, ...any) {}))
	if err == nil || !strings.Contains(err.Error(), "no rules") {
		t.Fatalf("NewServer error = %v", err)
	}
}

// TestConcurrentSwapUnderLoad hammers /rules and /score from many
// goroutines while /reload swaps snapshots in a tight loop. Run with -race
// (CI does): it proves readers never block on, or tear with, the swap.
// Every response must be internally consistent — a whole gen-N rule set,
// never a mix.
func TestConcurrentSwapUnderLoad(t *testing.T) {
	var gen atomic.Int64
	tax := testTaxonomy(t)
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(storeN(int(gen.Add(1))), tax, Meta{}), nil
	})
	h := srv.Handler()

	const (
		readers = 8
		queries = 300
		reloads = 50
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	checkBody := func(kind, body string) error {
		if !strings.Contains(body, "gen-") {
			return fmt.Errorf("%s response lost its rule: %s", kind, body)
		}
		return nil
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				if r%2 == 0 {
					code, body := get(t, h, "/rules?item=pepsi")
					if code != http.StatusOK {
						errc <- fmt.Errorf("/rules status %d", code)
						return
					}
					if err := checkBody("/rules", body); err != nil {
						errc <- err
						return
					}
				} else {
					code, body := post(t, h, "/score", `{"basket":["pepsi"]}`)
					if code != http.StatusOK {
						errc <- fmt.Errorf("/score status %d", code)
						return
					}
					if err := checkBody("/score", body); err != nil {
						errc <- err
						return
					}
				}
				if q%20 == 0 {
					get(t, h, "/metrics")
					get(t, h, "/healthz")
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			code, body := post(t, h, "/reload?wait=1", "")
			if code != http.StatusOK {
				errc <- fmt.Errorf("/reload status %d: %s", code, body)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// All reloads landed: the final snapshot is the last generation built.
	if got := srv.Snapshot().Rules()[0].Consequent[0]; got != fmt.Sprintf("gen-%d", gen.Load()) {
		t.Fatalf("final snapshot %s, want gen-%d", got, gen.Load())
	}
	var buf bytes.Buffer
	if err := srv.Metrics().WriteJSON(&buf, srv.Snapshot()); err != nil {
		t.Fatalf("metrics after load: %v", err)
	}
	if !strings.Contains(buf.String(), fmt.Sprintf(`"ok": %d`, reloads)) {
		t.Fatalf("expected %d ok reloads:\n%s", reloads, buf.String())
	}
}

func TestTriggerReloadAsync(t *testing.T) {
	var gen atomic.Int64
	release := make(chan struct{})
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		if gen.Add(1) > 1 {
			<-release // hold the reload in flight
		}
		return BuildSnapshot(storeN(int(gen.Load())), testTaxonomy(t), Meta{}), nil
	})
	h := srv.Handler()

	code, body := post(t, h, "/reload", "")
	if code != http.StatusAccepted || !strings.Contains(body, "reloading") {
		t.Fatalf("POST /reload: %d %s", code, body)
	}
	// While the first reload is blocked, further triggers coalesce.
	for i := 0; i < 10 && !srv.reloading.Load(); i++ {
		// Wait for the background goroutine to enter Reload.
		post(t, h, "/rules?item=x", "") // arbitrary traffic; gives the scheduler a beat
	}
	close(release)
	// Queries keep the old snapshot until the swap lands; they never hang.
	if code, _ := get(t, h, "/rules?item=pepsi"); code != http.StatusOK {
		t.Fatalf("query during reload: %d", code)
	}
}
