package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func TestBuildSnapshotKeepPartitionsRules(t *testing.T) {
	tax := testTaxonomy(t)
	full := BuildSnapshot(testStore(), tax, Meta{})

	// Partition by first antecedent letter — a stand-in for the cluster's
	// shard predicate. The two halves must tile the full rule set exactly.
	keepLow := func(ante, cons []string) bool { return ante[0] < "m" }
	low := BuildSnapshot(testStore(), tax, Meta{Keep: keepLow})
	high := BuildSnapshot(testStore(), tax, Meta{
		Keep: func(ante, cons []string) bool { return !keepLow(ante, cons) },
	})

	if low.Len()+high.Len() != full.Len() || low.Len() == 0 || high.Len() == 0 {
		t.Fatalf("partition sizes %d + %d, full %d", low.Len(), high.Len(), full.Len())
	}
	seen := map[string]bool{}
	for _, s := range []*Snapshot{low, high} {
		for _, e := range s.Rules() {
			key := strings.Join(e.Antecedent, ",") + "=>" + strings.Join(e.Consequent, ",")
			if seen[key] {
				t.Fatalf("rule %s appears in both shards", key)
			}
			seen[key] = true
		}
	}
	if len(seen) != full.Len() {
		t.Fatalf("union has %d rules, full snapshot %d", len(seen), full.Len())
	}

	// The taxonomy is interned in full regardless of the filter, so ancestor
	// expansion answers identically on every shard.
	want := full.Expand(nil, "pepsi")
	for _, s := range []*Snapshot{low, high} {
		if got := s.Expand(nil, "pepsi"); !reflect.DeepEqual(got, want) {
			t.Fatalf("sharded Expand(pepsi) = %v, want %v", got, want)
		}
	}
}

func TestSnapshotShardLabel(t *testing.T) {
	snap := testSnapshot(t)
	if got := snap.Info().Shard; got != "" {
		t.Fatalf("unsharded snapshot labeled %q", got)
	}
	snap.SetShard(0, 3)
	if got := snap.Info().Shard; got != "0/3" {
		t.Fatalf("shard label = %q, want 0/3", got)
	}
}

func TestNodeIDSurfacesEverywhere(t *testing.T) {
	tax := testTaxonomy(t)
	srv, err := NewServer(context.Background(), func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(testStore(), tax, Meta{}), nil
	}, WithLogger(func(string, ...any) {}), WithNodeID("shard0-a"))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if got := rec.Header().Get("X-Negmine-Node"); got != "shard0-a" {
		t.Fatalf("X-Negmine-Node = %q", got)
	}
	var health struct {
		Node string `json:"node"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Node != "shard0-a" {
		t.Fatalf("/healthz node = %q", health.Node)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var metrics map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &metrics); err != nil {
		t.Fatal(err)
	}
	if string(metrics["node"]) != `"shard0-a"` {
		t.Fatalf("/metrics node = %s", metrics["node"])
	}
	// The header rides on every endpoint, not just /healthz.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/rules?item=pepsi", nil))
	if got := rec.Header().Get("X-Negmine-Node"); got != "shard0-a" {
		t.Fatalf("/rules X-Negmine-Node = %q", got)
	}
}

func TestMetricsSnapshotAgeGauge(t *testing.T) {
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return testSnapshot(t), nil
	})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var doc struct {
		Snapshot struct {
			AgeSeconds      float64  `json:"ageSeconds"`
			AgeSecondsGauge *float64 `json:"age_seconds"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Snapshot.AgeSecondsGauge == nil {
		t.Fatal("/metrics snapshot block lacks the age_seconds gauge")
	}
	if *doc.Snapshot.AgeSecondsGauge != doc.Snapshot.AgeSeconds {
		t.Fatalf("age_seconds = %v, ageSeconds = %v — gauges diverge",
			*doc.Snapshot.AgeSecondsGauge, doc.Snapshot.AgeSeconds)
	}
}
