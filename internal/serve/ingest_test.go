package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// fakeSink is an in-memory IngestSink: it assigns sequential TIDs, rejects
// any item name outside its dictionary, and replays keyed retries from a
// map the way the real dedup window does.
type fakeSink struct {
	known   map[string]bool
	nextTID int64
	batches int
	txns    int64
	seen    map[string]IngestResult // key:seq → first result
	fail    error                   // forced server-side failure when set
}

func newFakeSink(names ...string) *fakeSink {
	known := map[string]bool{}
	for _, n := range names {
		known[n] = true
	}
	return &fakeSink{known: known, nextTID: 1, seen: map[string]IngestResult{}}
}

func (f *fakeSink) Ingest(_ context.Context, batch IngestBatch) (IngestResult, error) {
	if f.fail != nil {
		return IngestResult{}, f.fail
	}
	ks := fmt.Sprintf("%s:%d", batch.Key, batch.Seq)
	if batch.Key != "" {
		if res, ok := f.seen[ks]; ok {
			res.Duplicate = true
			return res, nil
		}
	}
	for _, b := range batch.Baskets {
		for _, name := range b {
			if !f.known[name] {
				return IngestResult{}, fmt.Errorf("%w: unknown item %q", ErrIngestRejected, name)
			}
		}
	}
	res := IngestResult{FirstTID: f.nextTID, Accepted: len(batch.Baskets)}
	f.nextTID += int64(len(batch.Baskets))
	res.LastTID = f.nextTID - 1
	f.batches++
	f.txns += int64(len(batch.Baskets))
	if batch.Key != "" {
		f.seen[ks] = res
	}
	return res, nil
}

func (f *fakeSink) Stats() IngestStats {
	return IngestStats{TxnsAppended: f.txns, Segments: f.batches}
}

func newIngestServer(t *testing.T, sink IngestSink, extra ...Option) *Server {
	t.Helper()
	opts := append([]Option{
		WithLogger(func(string, ...any) {}),
		WithIngest(sink),
	}, extra...)
	srv, err := NewServer(context.Background(), func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(testStore(), testTaxonomy(t), Meta{Source: "test"}), nil
	}, opts...)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv
}

func TestHandlerIngest(t *testing.T) {
	sink := newFakeSink("pepsi", "chips")
	h := newIngestServer(t, sink).Handler()

	code, body := post(t, h, "/ingest", `{"baskets":[["pepsi","chips"],["pepsi"]]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /ingest: %d %s", code, body)
	}
	var resp struct {
		Accepted int   `json:"accepted"`
		FirstTID int64 `json:"firstTid"`
		LastTID  int64 `json:"lastTid"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if resp.Accepted != 2 || resp.FirstTID != 1 || resp.LastTID != 2 {
		t.Fatalf("response = %+v", resp)
	}

	// TIDs keep advancing across batches.
	code, body = post(t, h, "/ingest", `{"baskets":[["chips"]]}`)
	if code != http.StatusAccepted {
		t.Fatalf("second POST /ingest: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.FirstTID != 3 || resp.LastTID != 3 {
		t.Fatalf("second response = %+v", resp)
	}
}

func TestHandlerIngestValidation(t *testing.T) {
	sink := newFakeSink("pepsi")
	h := newIngestServer(t, sink).Handler()

	cases := []struct {
		name, body string
		want       int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"not json", `{`, http.StatusBadRequest},
		{"unknown field", `{"basket":[["pepsi"]]}`, http.StatusBadRequest},
		{"no baskets", `{"baskets":[]}`, http.StatusBadRequest},
		{"empty basket", `{"baskets":[["pepsi"],[]]}`, http.StatusBadRequest},
		{"unknown item", `{"baskets":[["coke-zero-max"]]}`, http.StatusBadRequest},
		{"seq without key", `{"baskets":[["pepsi"]],"seq":1}`, http.StatusBadRequest},
		{"key without seq", `{"baskets":[["pepsi"]],"key":"k"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, body := post(t, h, "/ingest", tc.body); code != tc.want {
			t.Errorf("%s: got %d %s, want %d", tc.name, code, body, tc.want)
		}
	}
	if code, _ := get(t, h, "/ingest"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: want 405")
	}
	if sink.txns != 0 {
		t.Fatalf("rejected batches were appended: %d txns", sink.txns)
	}

	// A sink failure that is not a content rejection is a 500.
	sink.fail = fmt.Errorf("disk on fire")
	if code, body := post(t, h, "/ingest", `{"baskets":[["pepsi"]]}`); code != http.StatusInternalServerError {
		t.Errorf("sink failure: got %d %s, want 500", code, body)
	}
}

func TestHandlerIngestDisabled(t *testing.T) {
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(testStore(), testTaxonomy(t), Meta{}), nil
	})
	if code, body := post(t, srv.Handler(), "/ingest", `{"baskets":[["x"]]}`); code != http.StatusNotFound {
		t.Fatalf("ingest without sink: %d %s, want 404", code, body)
	}
}

func TestHandlerIngestBodyBound(t *testing.T) {
	sink := newFakeSink("pepsi")
	h := newIngestServer(t, sink, WithMaxBodyBytes(128)).Handler()

	big := `{"baskets":[["pepsi"` + strings.Repeat(`,"pepsi"`, 64) + `]]}`
	if code, body := post(t, h, "/ingest", big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: %d %s, want 413", code, body)
	}
	if code, _ := post(t, h, "/ingest", `{"baskets":[["pepsi"]]}`); code != http.StatusAccepted {
		t.Fatalf("small ingest after 413 rejected")
	}
}

func TestHandlerIngestKeyedReplay(t *testing.T) {
	sink := newFakeSink("pepsi")
	h := newIngestServer(t, sink).Handler()

	const body = `{"baskets":[["pepsi"]],"key":"writer-1","seq":7}`
	code, first := post(t, h, "/ingest", body)
	if code != http.StatusAccepted {
		t.Fatalf("keyed POST /ingest: %d %s", code, first)
	}
	// Retrying the same (key, seq) replays the original TID range with 200
	// and the duplicate marker, and appends nothing.
	code, second := post(t, h, "/ingest", body)
	if code != http.StatusOK {
		t.Fatalf("keyed retry: %d %s", code, second)
	}
	var a, b struct {
		FirstTID  int64 `json:"firstTid"`
		LastTID   int64 `json:"lastTid"`
		Duplicate bool  `json:"duplicate"`
	}
	if err := json.Unmarshal([]byte(first), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(second), &b); err != nil {
		t.Fatal(err)
	}
	if a.Duplicate || !b.Duplicate {
		t.Fatalf("duplicate flags: first=%v second=%v", a.Duplicate, b.Duplicate)
	}
	if a.FirstTID != b.FirstTID || a.LastTID != b.LastTID {
		t.Fatalf("replay changed the TID range: %+v vs %+v", a, b)
	}
	if sink.txns != 1 {
		t.Fatalf("retry appended: %d txns", sink.txns)
	}
}

func TestHandlerIngestHAErrors(t *testing.T) {
	sink := newFakeSink("pepsi")
	h := newIngestServer(t, sink).Handler()

	cases := []struct {
		err  error
		want int
	}{
		{ErrIngestFenced, http.StatusConflict},
		{ErrIngestNotPrimary, http.StatusConflict},
		{ErrIngestStale, http.StatusConflict},
		{ErrIngestUnavailable, http.StatusServiceUnavailable},
	}
	for _, tc := range cases {
		sink.fail = fmt.Errorf("wrapped: %w", tc.err)
		if code, body := post(t, h, "/ingest", `{"baskets":[["pepsi"]]}`); code != tc.want {
			t.Errorf("%v: got %d %s, want %d", tc.err, code, body, tc.want)
		}
	}
}

func TestMetricsIngestBlock(t *testing.T) {
	sink := newFakeSink("pepsi")
	h := newIngestServer(t, sink).Handler()
	if code, _ := post(t, h, "/ingest", `{"baskets":[["pepsi"]]}`); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}

	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	var doc struct {
		Endpoints map[string]json.RawMessage `json:"endpoints"`
		Ingest    *struct {
			TxnsAppended int64 `json:"txnsAppended"`
		} `json:"ingest"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if doc.Ingest == nil || doc.Ingest.TxnsAppended != 1 {
		t.Fatalf("ingest block = %+v", doc.Ingest)
	}
	if _, ok := doc.Endpoints["ingest"]; !ok {
		t.Fatalf("no ingest endpoint stats in %v", body)
	}
}
