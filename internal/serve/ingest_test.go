package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// fakeSink is an in-memory IngestSink: it assigns sequential TIDs and
// rejects any item name outside its dictionary.
type fakeSink struct {
	known   map[string]bool
	nextTID int64
	batches int
	txns    int64
	fail    error // forced server-side failure when set
}

func newFakeSink(names ...string) *fakeSink {
	known := map[string]bool{}
	for _, n := range names {
		known[n] = true
	}
	return &fakeSink{known: known, nextTID: 1}
}

func (f *fakeSink) Ingest(_ context.Context, baskets [][]string) (IngestResult, error) {
	if f.fail != nil {
		return IngestResult{}, f.fail
	}
	for _, b := range baskets {
		for _, name := range b {
			if !f.known[name] {
				return IngestResult{}, fmt.Errorf("%w: unknown item %q", ErrIngestRejected, name)
			}
		}
	}
	res := IngestResult{FirstTID: f.nextTID, Accepted: len(baskets)}
	f.nextTID += int64(len(baskets))
	res.LastTID = f.nextTID - 1
	f.batches++
	f.txns += int64(len(baskets))
	return res, nil
}

func (f *fakeSink) Stats() IngestStats {
	return IngestStats{TxnsAppended: f.txns, Segments: f.batches}
}

func newIngestServer(t *testing.T, sink IngestSink, extra ...Option) *Server {
	t.Helper()
	opts := append([]Option{
		WithLogger(func(string, ...any) {}),
		WithIngest(sink),
	}, extra...)
	srv, err := NewServer(context.Background(), func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(testStore(), testTaxonomy(t), Meta{Source: "test"}), nil
	}, opts...)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv
}

func TestHandlerIngest(t *testing.T) {
	sink := newFakeSink("pepsi", "chips")
	h := newIngestServer(t, sink).Handler()

	code, body := post(t, h, "/ingest", `{"baskets":[["pepsi","chips"],["pepsi"]]}`)
	if code != http.StatusOK {
		t.Fatalf("POST /ingest: %d %s", code, body)
	}
	var resp struct {
		Accepted int   `json:"accepted"`
		FirstTID int64 `json:"firstTid"`
		LastTID  int64 `json:"lastTid"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if resp.Accepted != 2 || resp.FirstTID != 1 || resp.LastTID != 2 {
		t.Fatalf("response = %+v", resp)
	}

	// TIDs keep advancing across batches.
	code, body = post(t, h, "/ingest", `{"baskets":[["chips"]]}`)
	if code != http.StatusOK {
		t.Fatalf("second POST /ingest: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.FirstTID != 3 || resp.LastTID != 3 {
		t.Fatalf("second response = %+v", resp)
	}
}

func TestHandlerIngestValidation(t *testing.T) {
	sink := newFakeSink("pepsi")
	h := newIngestServer(t, sink).Handler()

	cases := []struct {
		name, body string
		want       int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"not json", `{`, http.StatusBadRequest},
		{"unknown field", `{"basket":[["pepsi"]]}`, http.StatusBadRequest},
		{"no baskets", `{"baskets":[]}`, http.StatusBadRequest},
		{"empty basket", `{"baskets":[["pepsi"],[]]}`, http.StatusBadRequest},
		{"unknown item", `{"baskets":[["coke-zero-max"]]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, body := post(t, h, "/ingest", tc.body); code != tc.want {
			t.Errorf("%s: got %d %s, want %d", tc.name, code, body, tc.want)
		}
	}
	if code, _ := get(t, h, "/ingest"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: want 405")
	}
	if sink.txns != 0 {
		t.Fatalf("rejected batches were appended: %d txns", sink.txns)
	}

	// A sink failure that is not a content rejection is a 500.
	sink.fail = fmt.Errorf("disk on fire")
	if code, body := post(t, h, "/ingest", `{"baskets":[["pepsi"]]}`); code != http.StatusInternalServerError {
		t.Errorf("sink failure: got %d %s, want 500", code, body)
	}
}

func TestHandlerIngestDisabled(t *testing.T) {
	srv := newTestServer(t, func(context.Context) (*Snapshot, error) {
		return BuildSnapshot(testStore(), testTaxonomy(t), Meta{}), nil
	})
	if code, body := post(t, srv.Handler(), "/ingest", `{"baskets":[["x"]]}`); code != http.StatusNotFound {
		t.Fatalf("ingest without sink: %d %s, want 404", code, body)
	}
}

func TestHandlerIngestBodyBound(t *testing.T) {
	sink := newFakeSink("pepsi")
	h := newIngestServer(t, sink, WithMaxBodyBytes(128)).Handler()

	big := `{"baskets":[["pepsi"` + strings.Repeat(`,"pepsi"`, 64) + `]]}`
	if code, body := post(t, h, "/ingest", big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: %d %s, want 413", code, body)
	}
	if code, _ := post(t, h, "/ingest", `{"baskets":[["pepsi"]]}`); code != http.StatusOK {
		t.Fatalf("small ingest after 413 rejected")
	}
}

func TestMetricsIngestBlock(t *testing.T) {
	sink := newFakeSink("pepsi")
	h := newIngestServer(t, sink).Handler()
	if code, _ := post(t, h, "/ingest", `{"baskets":[["pepsi"]]}`); code != http.StatusOK {
		t.Fatal("ingest failed")
	}

	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	var doc struct {
		Endpoints map[string]json.RawMessage `json:"endpoints"`
		Ingest    *struct {
			TxnsAppended int64 `json:"txnsAppended"`
		} `json:"ingest"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if doc.Ingest == nil || doc.Ingest.TxnsAppended != 1 {
		t.Fatalf("ingest block = %+v", doc.Ingest)
	}
	if _, ok := doc.Endpoints["ingest"]; !ok {
		t.Fatalf("no ingest endpoint stats in %v", body)
	}
}
