package serve

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"negmine/internal/fault"
	"negmine/internal/govern"
)

// Failpoints in the serving lifecycle (see internal/fault). All are no-ops
// unless armed by a test or NEGMINE_FAULTS.
const (
	// PointReload fires at the top of every snapshot load (initial and
	// reload); an error action models a re-mine or report read that fails.
	PointReload = "serve.reload"
	// PointSwap fires after a successful load, just before the pointer
	// swap; a sleep action widens the build→swap window for chaos tests,
	// an error action models a build that dies at the last moment.
	PointSwap = "serve.swap"
	// PointHandler fires at the top of every instrumented HTTP handler; a
	// panic action exercises the recovery middleware, a sleep action makes
	// an in-flight request slow for drain tests.
	PointHandler = "serve.handler"
)

// LoadFunc produces a fresh Snapshot — by re-reading a report file, or by
// running the full mining pipeline. It is called once at startup and again
// on every reload; it must not mutate any previously returned Snapshot.
type LoadFunc func(ctx context.Context) (*Snapshot, error)

// Server owns the current Snapshot and swaps it atomically on reload.
// Readers call Snapshot() and get an immutable value they can use for the
// whole request without holding any lock; a concurrent reload builds the
// next snapshot off to the side and publishes it with a single pointer
// store. A failed reload publishes nothing: the old snapshot keeps serving
// and the error is surfaced through Metrics and the log.
type Server struct {
	load       LoadFunc
	snap       atomic.Pointer[Snapshot]
	metrics    *Metrics
	logf       func(format string, args ...any)
	reqTimeout time.Duration      // per-request deadline (0 = none)
	gov        *govern.Controller // admission control (nil = admit everything)
	maxBody    int64              // POST body bound in bytes (0 = default, <0 = none)
	ingest     IngestSink         // POST /ingest backend (nil = endpoint disabled)
	nodeID     string             // cluster node identity ("" = unnamed)
	aux        map[string]http.Handler

	reloadMu  sync.Mutex  // serializes loads; readers never touch it
	reloading atomic.Bool // a reload is in flight (coalesces triggers)
}

// Option configures a Server.
type Option func(*Server)

// WithLogger replaces the default stderr logger.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// WithMetrics supplies an external metrics set (the default is fresh).
func WithMetrics(m *Metrics) Option {
	return func(s *Server) { s.metrics = m }
}

// WithRequestTimeout bounds every HTTP request: handlers get a context that
// expires after d, and snapshot queries abort with 503 when it does. Zero
// (the default) means no per-request deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// WithGovernor installs an admission controller in front of every handler:
// /rules is admitted as cheap work, /score and /reload as expensive work
// that degraded mode sheds first, and /healthz and /metrics bypass admission
// entirely so operators can always see what an overloaded daemon is doing.
// Shed requests get 503 with a Retry-After header. Nil (the default) admits
// everything.
func WithGovernor(c *govern.Controller) Option {
	return func(s *Server) { s.gov = c }
}

// WithNodeID names this daemon for cluster operation: the id is echoed as
// the X-Negmine-Node header on every response and in the /healthz and
// /metrics documents, so a client of a routed fleet can always tell which
// node answered. Empty (the default) leaves responses unmarked.
func WithNodeID(id string) Option {
	return func(s *Server) { s.nodeID = id }
}

// WithAuxHandler mounts an extra handler at path on the server's mux, wrapped
// in the same instrumentation armor (metrics under "other", panic recovery,
// body bound, request timeout) as the built-in endpoints. The daemon layer
// uses this for endpoints whose logic lives above serve — the replication
// tail stream and the manual-promotion trigger.
func WithAuxHandler(path string, h http.Handler) Option {
	return func(s *Server) {
		if s.aux == nil {
			s.aux = map[string]http.Handler{}
		}
		s.aux[path] = h
	}
}

// DefaultMaxBodyBytes bounds POST request bodies when WithMaxBodyBytes is
// not used.
const DefaultMaxBodyBytes int64 = 1 << 20

// WithMaxBodyBytes bounds every POST request body with http.MaxBytesReader;
// an oversized body gets 413. Zero (the default) selects
// DefaultMaxBodyBytes; a negative value disables the bound.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) { s.maxBody = n }
}

// NewServer builds a server and performs the initial load synchronously —
// the daemon refuses to start without a serveable snapshot.
func NewServer(ctx context.Context, load LoadFunc, opts ...Option) (*Server, error) {
	s := &Server{load: load}
	for _, o := range opts {
		o(s)
	}
	if s.metrics == nil {
		s.metrics = NewMetrics()
	}
	if s.logf == nil {
		logger := log.New(os.Stderr, "negmined: ", log.LstdFlags)
		s.logf = logger.Printf
	}
	if s.gov != nil {
		s.metrics.governStats = s.gov.Stats
	}
	s.metrics.node = s.nodeID
	if s.ingest != nil {
		s.metrics.ingestStats = s.ingest.Stats
	}
	snap, err := s.loadChecked(ctx)
	if err != nil {
		return nil, fmt.Errorf("serve: initial load: %w", err)
	}
	s.snap.Store(snap)
	return s, nil
}

// loadChecked runs the LoadFunc defensively: the serve.reload failpoint can
// veto it, a panicking loader is converted into an error instead of killing
// the daemon, and a nil snapshot (a loader bug) is rejected — the swap path
// must never publish one.
func (s *Server) loadChecked(ctx context.Context) (snap *Snapshot, err error) {
	if err := fault.Hit(PointReload); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer func() {
		if r := recover(); r != nil {
			snap, err = nil, fmt.Errorf("serve: load panicked: %v", r)
		}
	}()
	snap, err = s.load(ctx)
	if err == nil && snap == nil {
		return nil, fmt.Errorf("serve: load returned nil snapshot without error")
	}
	return snap, err
}

// Snapshot returns the current snapshot. The result is immutable and stays
// valid (and correct for its point in time) even if a reload swaps in a
// newer one mid-request.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Metrics exposes the server's metrics set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// NodeID returns the cluster node identity ("" when unnamed).
func (s *Server) NodeID() string { return s.nodeID }

// Governor exposes the installed admission controller (nil without one).
func (s *Server) Governor() *govern.Controller { return s.gov }

// Reload synchronously builds a fresh snapshot and swaps it in. On error
// the current snapshot is left in place, the failure is counted in metrics
// with the error text retained, and the error is returned. Concurrent
// Reload calls serialize; readers are never blocked either way.
func (s *Server) Reload(ctx context.Context) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.reloading.Store(true)
	defer s.reloading.Store(false)

	start := time.Now()
	snap, err := s.loadChecked(ctx)
	if err == nil {
		// serve.swap sits between "snapshot fully built" and "snapshot
		// visible": a sleep here stretches the window chaos tests probe
		// for torn state, an error models dying with the swap un-done.
		err = fault.Hit(PointSwap)
	}
	s.metrics.recordReload(err)
	if err != nil {
		s.logf("reload failed after %v (keeping snapshot of %d rules): %v",
			time.Since(start).Round(time.Millisecond), s.Snapshot().Len(), err)
		return err
	}
	old := s.snap.Swap(snap)
	s.logf("reload ok in %v: %d rules (was %d)",
		time.Since(start).Round(time.Millisecond), snap.Len(), old.Len())
	return nil
}

// TriggerReload starts a reload in the background unless one is already in
// flight (triggers coalesce, best-effort; Reload itself fully serializes).
// It reports whether a reload was started.
func (s *Server) TriggerReload(ctx context.Context) bool {
	if s.reloading.Load() {
		return false
	}
	go func() { _ = s.Reload(ctx) }()
	return true
}

// Watch polls path for changes and reloads when it settles — the "drop a
// fresh report/data file in place" workflow. It blocks until ctx is
// cancelled, so callers run it in a goroutine. See WatchWith for the full
// behavior (debounce, backoff, circuit breaker); Watch uses the defaults.
func (s *Server) Watch(ctx context.Context, path string, interval time.Duration) {
	s.WatchWith(ctx, path, WatchConfig{Interval: interval})
}
