package serve

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"negmine/internal/report"
	"negmine/internal/rulestore"
	"negmine/internal/taxonomy"
)

// reference is a deliberately naive serving implementation used as the
// oracle for the arena/bitmap Snapshot: linear scans over a ranked entry
// slice and name-based ancestor walks, no interning, no bitmaps. Any
// divergence between the two layouts is a bug in the fast one.
type reference struct {
	ranked []rulestore.Entry // descending RI, ties in signature order
	parent map[string]string
}

func newReference(st *rulestore.Store, parent map[string]string) *reference {
	r := &reference{parent: parent}
	st.Each(func(e rulestore.Entry) bool {
		r.ranked = append(r.ranked, e)
		return true
	})
	sort.SliceStable(r.ranked, func(i, j int) bool { return r.ranked[i].RI > r.ranked[j].RI })
	return r
}

func (r *reference) expand(name string) []string {
	out := []string{name}
	for p, ok := r.parent[name]; ok; p, ok = r.parent[p] {
		out = append(out, p)
	}
	return out
}

func (r *reference) query(name string, minRI float64, limit int) []rulestore.Entry {
	exp := map[string]bool{}
	for _, n := range r.expand(name) {
		exp[n] = true
	}
	var out []rulestore.Entry
	for _, e := range r.ranked {
		if e.RI < minRI {
			break
		}
		hit := false
		for _, n := range e.Antecedent {
			if exp[n] {
				hit = true
			}
		}
		for _, n := range e.Consequent {
			if exp[n] {
				hit = true
			}
		}
		if !hit {
			continue
		}
		out = append(out, e)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

func (r *reference) score(basket []string, minRI float64, limit int) []Match {
	satisfied := map[string]bool{}
	for _, b := range basket {
		for _, n := range r.expand(b) {
			satisfied[n] = true
		}
	}
	var out []Match
	for _, e := range r.ranked {
		if e.RI < minRI {
			break
		}
		covered := true
		for _, n := range e.Antecedent {
			if !satisfied[n] {
				covered = false
			}
		}
		if !covered {
			continue
		}
		trig := map[string]string{}
		for _, a := range e.Antecedent {
			for _, b := range basket {
				sup := false
				for _, n := range r.expand(b) {
					if n == a {
						sup = true
					}
				}
				if sup {
					trig[a] = b
					break
				}
			}
		}
		out = append(out, Match{Rule: e, Triggers: trig})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// randomWorld builds a random taxonomy (a forest over tN names), a pool of
// extra non-taxonomy names, and a random rule store with heavy RI ties.
func randomWorld(t *testing.T, rng *rand.Rand) (*rulestore.Store, *taxonomy.Taxonomy, map[string]string, []string) {
	t.Helper()
	nTax := 8 + rng.Intn(20)
	parent := map[string]string{}
	b := taxonomy.NewBuilder()
	names := make([]string, nTax)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	for i := 1; i < nTax; i++ {
		if rng.Float64() < 0.8 {
			p := names[rng.Intn(i)]
			b.Link(p, names[i])
			parent[names[i]] = p
		}
	}
	// A taxonomy needs at least one edge; guarantee it.
	if len(parent) == 0 {
		b.Link(names[0], names[1])
		parent[names[1]] = names[0]
	}
	tax, err := b.Build()
	if err != nil {
		t.Fatalf("taxonomy.Build: %v", err)
	}

	pool := append([]string(nil), names...)
	for i := 0; i < 4; i++ {
		pool = append(pool, fmt.Sprintf("x%d", i)) // rule-only names, no ancestors
	}
	riLevels := []float64{0.2, 0.4, 0.6, 0.8} // few levels → many rank ties
	rep := &report.NegativeReport{}
	nRules := 20 + rng.Intn(60)
	for i := 0; i < nRules; i++ {
		side := func(n int) []string {
			seen := map[string]bool{}
			var out []string
			for len(out) < n {
				x := pool[rng.Intn(len(pool))]
				if !seen[x] {
					seen[x] = true
					out = append(out, x)
				}
			}
			return out
		}
		rep.Rules = append(rep.Rules, report.NegativeRuleRecord{
			Antecedent:      side(1 + rng.Intn(3)),
			Consequent:      side(1 + rng.Intn(2)),
			RuleInterest:    riLevels[rng.Intn(len(riLevels))],
			ExpectedSupport: rng.Float64(),
			ActualSupport:   rng.Float64(),
		})
	}
	return rulestore.FromReport(rep), tax, parent, pool
}

// TestSnapshotMatchesNaiveReference cross-checks the arena/bitmap snapshot
// against the naive reference on randomized stores: every QueryItem, Score,
// and Expand answer must be identical, with the cache enabled (asked twice,
// so the second answer is served from cache) and disabled.
func TestSnapshotMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		st, tax, parent, pool := randomWorld(t, rng)
		ref := newReference(st, parent)
		cached := BuildSnapshot(st, tax, Meta{})
		uncached := BuildSnapshot(st, tax, Meta{CacheSize: -1})

		minRIs := []float64{0, 0.2, 0.4, 0.5, 0.8, 1.1}
		limits := []int{0, 1, 3, 1000}
		queries := append(append([]string(nil), pool...), "unknown-item")
		for _, name := range queries {
			minRI := minRIs[rng.Intn(len(minRIs))]
			limit := limits[rng.Intn(len(limits))]
			want := ref.query(name, minRI, limit)
			for pass := 0; pass < 2; pass++ { // second pass hits the cache
				if got := cached.QueryEntries(name, minRI, limit); !entriesEqual(got, want) {
					t.Fatalf("trial %d pass %d: QueryEntries(%q, %v, %d) =\n%v\nwant\n%v",
						trial, pass, name, minRI, limit, got, want)
				}
			}
			if got := uncached.QueryEntries(name, minRI, limit); !entriesEqual(got, want) {
				t.Fatalf("trial %d: uncached QueryEntries(%q, %v, %d) =\n%v\nwant\n%v",
					trial, name, minRI, limit, got, want)
			}
			// The zero-copy path must agree too, on both layouts.
			for _, snap := range []*Snapshot{cached, uncached} {
				ids, err := snap.QueryShared(context.Background(), name, minRI, limit)
				if err != nil {
					t.Fatal(err)
				}
				got := make([]rulestore.Entry, len(ids))
				for i, id := range ids {
					got[i] = snap.Entry(id)
				}
				if !entriesEqual(got, want) {
					t.Fatalf("trial %d: QueryShared(%q, %v, %d) =\n%v\nwant\n%v",
						trial, name, minRI, limit, got, want)
				}
			}
			if got, want := cached.Expand(nil, name), ref.expand(name); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: Expand(%q) = %v, want %v", trial, name, got, want)
			}
		}

		for q := 0; q < 20; q++ {
			basket := make([]string, 1+rng.Intn(4))
			for i := range basket {
				basket[i] = pool[rng.Intn(len(pool))]
			}
			if rng.Float64() < 0.3 {
				basket = append(basket, "caviar") // unknown basket item
			}
			minRI := minRIs[rng.Intn(len(minRIs))]
			limit := limits[rng.Intn(len(limits))]
			want := ref.score(basket, minRI, limit)
			for _, snap := range []*Snapshot{cached, uncached} {
				got := snap.Matches(basket, minRI, limit)
				if !matchesEqual(got, want) {
					t.Fatalf("trial %d: Matches(%v, %v, %d) =\n%v\nwant\n%v",
						trial, basket, minRI, limit, got, want)
				}
			}
		}
	}
}

func entriesEqual(a, b []rulestore.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Rule, b[i].Rule) || !reflect.DeepEqual(a[i].Triggers, b[i].Triggers) {
			return false
		}
	}
	return true
}
