package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"negmine/internal/fault"
	"negmine/internal/report"
	"negmine/internal/rulestore"
)

// chaosPointLoad lets the chaos loader fail probabilistically, independent
// of the serve-internal failpoints.
const chaosPointLoad = "chaos.load"

// chaosStore builds a generation-tagged store: every rule's consequent
// carries the generation, so a response mixing generations would be proof
// of a torn snapshot.
func chaosStore(gen int, rules int) *rulestore.Store {
	rep := &report.NegativeReport{}
	for i := 0; i < rules; i++ {
		rep.Rules = append(rep.Rules, report.NegativeRuleRecord{
			Antecedent:   []string{"pepsi"},
			Consequent:   []string{fmt.Sprintf("gen%d-rule%d", gen, i)},
			RuleInterest: 0.9 - float64(i)*0.001,
		})
	}
	return rulestore.FromReport(rep)
}

// TestChaosReloadUnderFire is the headline robustness test: failpoints fire
// across snapshot load and swap while client goroutines hammer every
// endpoint and a reloader rebuilds continuously. Run under -race in CI.
//
// Invariants checked:
//   - no request ever fails (every /rules, /score, /healthz, /metrics is 200),
//   - no response ever mixes rules from two generations (snapshots swap
//     atomically, never serve partially built state),
//   - a failed re-mine keeps the previous snapshot serving and is counted,
//   - both reload outcomes actually occurred, so the test exercised what it
//     claims to.
func TestChaosReloadUnderFire(t *testing.T) {
	const (
		clients    = 8
		reloads    = 40
		rulesPer   = 50
		loadFailP  = 0.3
		swapSleep  = 200 * time.Microsecond
		loadsSleep = time.Millisecond
	)

	var gen atomic.Int64
	load := func(ctx context.Context) (*Snapshot, error) {
		if err := fault.Hit(chaosPointLoad); err != nil {
			return nil, err
		}
		// A slow build stretches the window between "old snapshot still
		// serving" and "new snapshot ready".
		time.Sleep(loadsSleep)
		return BuildSnapshot(chaosStore(int(gen.Add(1)), rulesPer), nil, Meta{}), nil
	}

	srv, err := NewServer(context.Background(), load, WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	// Arm the chaos: loads fail with probability loadFailP, and the swap
	// window is stretched so torn-snapshot bugs would have room to show.
	offLoad := fault.Enable(chaosPointLoad, fault.Error("chaotic load failure"), fault.Prob(loadFailP, 42))
	defer offLoad()
	offSwap := fault.Enable(PointSwap, fault.Sleep(swapSleep))
	defer offSwap()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	// Client goroutines: hammer all read endpoints and check invariants.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 4 {
				case 0:
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/rules?item=pepsi", nil))
					if rec.Code != http.StatusOK {
						fail("client %d: /rules = %d: %s", c, rec.Code, rec.Body.String())
						return
					}
					var resp struct {
						Rules []struct {
							Consequent []string `json:"consequent"`
						} `json:"rules"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						fail("client %d: bad /rules JSON: %v", c, err)
						return
					}
					if len(resp.Rules) != rulesPer {
						fail("client %d: partial snapshot: %d rules, want %d", c, len(resp.Rules), rulesPer)
						return
					}
					seen := map[string]bool{}
					for _, r := range resp.Rules {
						seen[strings.SplitN(r.Consequent[0], "-", 2)[0]] = true
					}
					if len(seen) != 1 {
						fail("client %d: torn snapshot mixes generations: %v", c, seen)
						return
					}
				case 1:
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/score",
						strings.NewReader(`{"basket":["pepsi"]}`)))
					if rec.Code != http.StatusOK {
						fail("client %d: /score = %d: %s", c, rec.Code, rec.Body.String())
						return
					}
				case 2:
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
					if rec.Code != http.StatusOK {
						fail("client %d: /healthz = %d", c, rec.Code)
						return
					}
				case 3:
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
					if rec.Code != http.StatusOK {
						fail("client %d: /metrics = %d", c, rec.Code)
						return
					}
				}
			}
		}(c)
	}

	// The reloader: synchronous reloads, some of which the failpoint kills.
	var okCount, failCount int
	for i := 0; i < reloads && failures.Load() == 0; i++ {
		if err := srv.Reload(context.Background()); err != nil {
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("reload %d failed for a non-injected reason: %v", i, err)
			}
			failCount++
		} else {
			okCount++
		}
	}
	close(stop)
	wg.Wait()

	if okCount == 0 || failCount == 0 {
		t.Fatalf("chaos did not exercise both outcomes: %d ok, %d failed (tune loadFailP)", okCount, failCount)
	}
	if got := srv.Metrics().reloadFail.Load(); got != int64(failCount) {
		t.Errorf("metrics reloadFail = %d, want %d", got, failCount)
	}
	if got := srv.Metrics().reloadOK.Load(); got != int64(okCount) {
		t.Errorf("metrics reloadOK = %d, want %d", got, okCount)
	}
	// After the dust settles the daemon serves a complete, single-generation
	// snapshot.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/rules?item=pepsi", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-chaos /rules = %d", rec.Code)
	}
}

// TestChaosWatchWithFlappingFile drives the watcher against a file that is
// rewritten and corrupted while clients read: the server must always serve
// a full snapshot and end up healthy once the file stabilizes.
func TestChaosWatchWithFlappingFile(t *testing.T) {
	var gen atomic.Int64
	var loadOK atomic.Bool
	loadOK.Store(true)
	srv, err := NewServer(context.Background(),
		func(context.Context) (*Snapshot, error) {
			if !loadOK.Load() {
				return nil, errors.New("source file corrupt")
			}
			return BuildSnapshot(chaosStore(int(gen.Add(1)), 10), nil, Meta{}), nil
		},
		WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	path := t.TempDir() + "/report.json"
	go srv.WatchWith(ctx, path, WatchConfig{Interval: 2 * time.Millisecond, BreakerAfter: 3})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/rules?item=pepsi", nil))
			if rec.Code != http.StatusOK {
				t.Errorf("/rules under watch chaos = %d", rec.Code)
				return
			}
		}
	}()

	// Flap the file: write, corrupt (loader fails), write again.
	for round := 0; round < 5; round++ {
		loadOK.Store(round%2 == 0)
		if err := writeFileAndSettle(path, fmt.Sprintf("content-%d", round)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	loadOK.Store(true)
	if err := writeFileAndSettle(path, "final-good-content"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "healthy watcher after flapping", func() bool {
		return srv.Metrics().WatchState() == watchWatching
	})
	close(stop)
	wg.Wait()
}

// writeFileAndSettle writes path with distinct content so the watcher's
// size+mtime fingerprint always changes.
func writeFileAndSettle(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
