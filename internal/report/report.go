// Package report serializes mining results — negative rules, negative
// itemsets and positive rules — as JSON or CSV for downstream tooling
// (spreadsheets, dashboards, rule stores).
//
// All writers resolve item ids through a name function so output is
// human-readable; records are emitted in the deterministic order the miners
// produce.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"negmine/internal/apriori"
	"negmine/internal/fault"
	"negmine/internal/item"
	"negmine/internal/negative"
)

// PointRead is the failpoint evaluated at the top of ReadNegativeJSON;
// arming it models a report file that cannot be read back (torn disk,
// permission flap) without having to corrupt a real file.
const PointRead = "report.read"

// NegativeRuleRecord is the exported form of one negative rule.
type NegativeRuleRecord struct {
	Antecedent      []string `json:"antecedent"`
	Consequent      []string `json:"consequent"`
	RuleInterest    float64  `json:"ruleInterest"`
	ExpectedSupport float64  `json:"expectedSupport"`
	ActualSupport   float64  `json:"actualSupport"`
	NegConfidence   float64  `json:"negConfidence"`
	DerivedFrom     []string `json:"derivedFrom,omitempty"`
	Via             string   `json:"via,omitempty"`
}

// NegativeItemsetRecord is the exported form of one negative itemset.
type NegativeItemsetRecord struct {
	Items           []string `json:"items"`
	ExpectedSupport float64  `json:"expectedSupport"`
	ActualSupport   float64  `json:"actualSupport"`
	ActualCount     int      `json:"actualCount"`
	DerivedFrom     []string `json:"derivedFrom,omitempty"`
	Via             string   `json:"via,omitempty"`
}

// PositiveRuleRecord is the exported form of one positive rule.
type PositiveRuleRecord struct {
	Antecedent []string `json:"antecedent"`
	Consequent []string `json:"consequent"`
	Support    float64  `json:"support"`
	Confidence float64  `json:"confidence"`
}

// NegativeReport bundles a whole negative mining run for JSON export.
type NegativeReport struct {
	MinSupport float64                 `json:"minSupport"`
	MinRI      float64                 `json:"minRI"`
	Rules      []NegativeRuleRecord    `json:"rules"`
	Itemsets   []NegativeItemsetRecord `json:"negativeItemsets"`
}

func names(s item.Itemset, name func(item.Item) string) []string {
	out := make([]string, s.Len())
	for i, x := range s {
		out[i] = name(x)
	}
	return out
}

// BuildNegative converts a mining result into its exportable form.
func BuildNegative(res *negative.Result, minSup, minRI float64, name func(item.Item) string) *NegativeReport {
	rep := &NegativeReport{MinSupport: minSup, MinRI: minRI}
	for _, r := range res.Rules {
		rep.Rules = append(rep.Rules, NegativeRuleRecord{
			Antecedent:      names(r.Antecedent, name),
			Consequent:      names(r.Consequent, name),
			RuleInterest:    r.RI,
			ExpectedSupport: r.Expected,
			ActualSupport:   r.Actual,
			NegConfidence:   r.NegConfidence,
			DerivedFrom:     names(r.Source, name),
			Via:             r.Via.String(),
		})
	}
	for _, n := range res.Negatives {
		rep.Itemsets = append(rep.Itemsets, NegativeItemsetRecord{
			Items:           names(n.Set, name),
			ExpectedSupport: n.Expected,
			ActualSupport:   n.Actual(),
			ActualCount:     n.Count,
			DerivedFrom:     names(n.Source, name),
			Via:             n.Via.String(),
		})
	}
	return rep
}

// WriteNegativeJSON writes a full negative mining run as indented JSON.
func WriteNegativeJSON(w io.Writer, res *negative.Result, minSup, minRI float64, name func(item.Item) string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildNegative(res, minSup, minRI, name))
}

// WriteNegativeCSV writes the negative rules as CSV with the header
// antecedent,consequent,ruleInterest,expectedSupport,actualSupport. Itemset
// sides are space-joined.
func WriteNegativeCSV(w io.Writer, res *negative.Result, name func(item.Item) string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"antecedent", "consequent", "ruleInterest", "expectedSupport", "actualSupport"}); err != nil {
		return err
	}
	for _, r := range res.Rules {
		rec := []string{
			strings.Join(names(r.Antecedent, name), " "),
			strings.Join(names(r.Consequent, name), " "),
			formatFloat(r.RI),
			formatFloat(r.Expected),
			formatFloat(r.Actual),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePositiveJSON writes positive rules as an indented JSON array.
func WritePositiveJSON(w io.Writer, rules []apriori.Rule, name func(item.Item) string) error {
	recs := make([]PositiveRuleRecord, 0, len(rules))
	for _, r := range rules {
		recs = append(recs, PositiveRuleRecord{
			Antecedent: names(r.Antecedent, name),
			Consequent: names(r.Consequent, name),
			Support:    r.Support,
			Confidence: r.Confidence,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// WritePositiveCSV writes positive rules as CSV.
func WritePositiveCSV(w io.Writer, rules []apriori.Rule, name func(item.Item) string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"antecedent", "consequent", "support", "confidence"}); err != nil {
		return err
	}
	for _, r := range rules {
		rec := []string{
			strings.Join(names(r.Antecedent, name), " "),
			strings.Join(names(r.Consequent, name), " "),
			formatFloat(r.Support),
			formatFloat(r.Confidence),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadNegativeJSON parses a report previously written by WriteNegativeJSON
// (round-trip support for rule stores). Spurious rules mined from partial
// or corrupt data are indistinguishable from real ones downstream, so the
// reader fails loudly: truncated documents, trailing garbage, and
// structurally invalid records are all errors rather than best-effort
// partial loads.
func ReadNegativeJSON(r io.Reader) (*NegativeReport, error) {
	if err := fault.Hit(PointRead); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	var rep NegativeReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("report: decoding: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("report: trailing data after document")
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Validate checks the structural invariants every well-formed report has:
// no rule with an empty side, no empty negative itemset, and supports and
// rule-interest values inside sane ranges. It is what keeps a daemon from
// hot-loading a syntactically valid but semantically garbage report.
func (r *NegativeReport) Validate() error {
	for i, rule := range r.Rules {
		if len(rule.Antecedent) == 0 || len(rule.Consequent) == 0 {
			return fmt.Errorf("report: rule %d: empty antecedent or consequent", i)
		}
		if rule.ExpectedSupport < 0 || rule.ExpectedSupport > 1 ||
			rule.ActualSupport < 0 || rule.ActualSupport > 1 {
			return fmt.Errorf("report: rule %d: support out of [0, 1]", i)
		}
	}
	for i, n := range r.Itemsets {
		if len(n.Items) == 0 {
			return fmt.Errorf("report: negative itemset %d: no items", i)
		}
		if n.ActualCount < 0 {
			return fmt.Errorf("report: negative itemset %d: negative count", i)
		}
	}
	return nil
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', 10, 64) }
