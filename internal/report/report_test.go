package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"negmine/internal/apriori"
	"negmine/internal/item"
	"negmine/internal/negative"
)

func sampleResult() (*negative.Result, func(item.Item) string) {
	name := func(i item.Item) string {
		return map[item.Item]string{1: "pepsi", 2: "chips", 3: "salsa"}[i]
	}
	res := &negative.Result{
		Negatives: []negative.Itemset{
			{Set: item.New(1, 2), Expected: 0.2, Count: 5, N: 100},
		},
		Rules: []negative.Rule{
			{Antecedent: item.New(1), Consequent: item.New(2), RI: 0.75, Expected: 0.2, Actual: 0.05},
			{Antecedent: item.New(1), Consequent: item.New(2, 3), RI: 0.6, Expected: 0.18, Actual: 0.02},
		},
	}
	return res, name
}

func TestNegativeJSONRoundTrip(t *testing.T) {
	res, name := sampleResult()
	var buf bytes.Buffer
	if err := WriteNegativeJSON(&buf, res, 0.1, 0.5, name); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadNegativeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinSupport != 0.1 || rep.MinRI != 0.5 {
		t.Errorf("thresholds = %v/%v", rep.MinSupport, rep.MinRI)
	}
	if len(rep.Rules) != 2 || len(rep.Itemsets) != 1 {
		t.Fatalf("rules=%d itemsets=%d", len(rep.Rules), len(rep.Itemsets))
	}
	r := rep.Rules[0]
	if r.Antecedent[0] != "pepsi" || r.Consequent[0] != "chips" || r.RuleInterest != 0.75 {
		t.Errorf("rule 0 = %+v", r)
	}
	if rep.Rules[1].Consequent[1] != "salsa" {
		t.Errorf("rule 1 consequent = %v", rep.Rules[1].Consequent)
	}
	it := rep.Itemsets[0]
	if it.ActualCount != 5 || it.ActualSupport != 0.05 || it.ExpectedSupport != 0.2 {
		t.Errorf("itemset = %+v", it)
	}
}

func TestNegativeCSV(t *testing.T) {
	res, name := sampleResult()
	var buf bytes.Buffer
	if err := WriteNegativeCSV(&buf, res, name); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[0][0] != "antecedent" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][0] != "pepsi" || records[1][1] != "chips" || records[1][2] != "0.75" {
		t.Errorf("row 1 = %v", records[1])
	}
	if records[2][1] != "chips salsa" {
		t.Errorf("multi-item consequent = %q", records[2][1])
	}
}

func TestPositiveWriters(t *testing.T) {
	name := func(i item.Item) string {
		return map[item.Item]string{1: "bread", 2: "milk"}[i]
	}
	rules := []apriori.Rule{
		{Antecedent: item.New(1), Consequent: item.New(2), Support: 0.4, Confidence: 0.8},
	}
	var buf bytes.Buffer
	if err := WritePositiveJSON(&buf, rules, name); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"confidence": 0.8`) {
		t.Errorf("JSON = %s", buf.String())
	}
	buf.Reset()
	if err := WritePositiveCSV(&buf, rules, name); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil || len(records) != 2 {
		t.Fatalf("CSV: %v, %d rows", err, len(records))
	}
	if records[1][3] != "0.8" {
		t.Errorf("confidence column = %q", records[1][3])
	}
}

func TestReadNegativeJSONErrors(t *testing.T) {
	// Corrupt inputs a daemon might hot-load after a torn write or an
	// operator mistake: every one must be rejected, never best-effort
	// loaded (spurious rules are indistinguishable downstream).
	cases := map[string]string{
		"malformed":        `{not json`,
		"truncated":        `{"minSupport": 0.1, "rules": [{"antecedent": ["a"]`,
		"garbage":          `PK\x03\x04 this is a zip file`,
		"trailing data":    `{"minSupport": 0.1} {"another": "doc"}`,
		"empty antecedent": `{"rules": [{"antecedent": [], "consequent": ["x"]}]}`,
		"empty consequent": `{"rules": [{"antecedent": ["x"], "consequent": []}]}`,
		"support above 1":  `{"rules": [{"antecedent": ["a"], "consequent": ["b"], "actualSupport": 2.5}]}`,
		"negative support": `{"rules": [{"antecedent": ["a"], "consequent": ["b"], "expectedSupport": -0.1}]}`,
		"empty itemset":    `{"negativeItemsets": [{"items": []}]}`,
		"negative count":   `{"negativeItemsets": [{"items": ["a"], "actualCount": -3}]}`,
		"wrong value type": `{"rules": "not an array"}`,
	}
	for name, in := range cases {
		if _, err := ReadNegativeJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted: %s", name, in)
		}
	}
	// Structural errors identify the offending record.
	_, err := ReadNegativeJSON(strings.NewReader(
		`{"rules": [{"antecedent": ["a"], "consequent": ["b"]}, {"antecedent": [], "consequent": ["x"]}]}`))
	if err == nil || !strings.Contains(err.Error(), "rule 1") {
		t.Errorf("invalid record not located: %v", err)
	}
}

func TestEmptyResult(t *testing.T) {
	var buf bytes.Buffer
	empty := &negative.Result{}
	if err := WriteNegativeJSON(&buf, empty, 0.1, 0.5, func(item.Item) string { return "" }); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadNegativeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rules) != 0 || len(rep.Itemsets) != 0 {
		t.Errorf("empty report = %+v", rep)
	}
	buf.Reset()
	if err := WriteNegativeCSV(&buf, empty, func(item.Item) string { return "" }); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1 {
		t.Errorf("empty CSV has %d lines", lines)
	}
}
