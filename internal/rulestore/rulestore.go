// Package rulestore manages collections of mined negative rules across
// mining runs: persistence (via the report JSON format), indexed lookups by
// item, and diffing two runs — the marketing workflow the paper motivates
// ("which negative associations appeared since last quarter?").
package rulestore

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"negmine/internal/item"
	"negmine/internal/negative"
	"negmine/internal/report"
)

// Store holds one run's negative rules with name-based identity (so two
// runs over differently-interned dictionaries still compare correctly).
type Store struct {
	rules map[string]Entry // keyed by canonical "a…=/=>c…" signature
}

// Entry is one stored rule with name-resolved sides.
type Entry struct {
	Antecedent []string
	Consequent []string
	RI         float64
	Expected   float64
	Actual     float64
}

// Signature returns the canonical identity of the rule (sorted names).
func (e Entry) Signature() string {
	return signature(e.Antecedent, e.Consequent)
}

func signature(ante, cons []string) string {
	a := append([]string(nil), ante...)
	c := append([]string(nil), cons...)
	sort.Strings(a)
	sort.Strings(c)
	return strings.Join(a, "\x1f") + "\x1e" + strings.Join(c, "\x1f")
}

// String renders the entry.
func (e Entry) String() string {
	return fmt.Sprintf("{%s} =/=> {%s} (RI=%.4f)",
		strings.Join(e.Antecedent, " "), strings.Join(e.Consequent, " "), e.RI)
}

// New builds a store from a mining result.
func New(res *negative.Result, name func(item.Item) string) *Store {
	s := &Store{rules: map[string]Entry{}}
	for _, r := range res.Rules {
		e := Entry{
			Antecedent: sortedNames(r.Antecedent, name),
			Consequent: sortedNames(r.Consequent, name),
			RI:         r.RI,
			Expected:   r.Expected,
			Actual:     r.Actual,
		}
		s.rules[e.Signature()] = e
	}
	return s
}

func sortedNames(set item.Itemset, name func(item.Item) string) []string {
	out := make([]string, set.Len())
	for i, x := range set {
		out[i] = name(x)
	}
	sort.Strings(out)
	return out
}

// Load reads a store from the report JSON format (WriteNegativeJSON).
func Load(r io.Reader) (*Store, error) {
	rep, err := report.ReadNegativeJSON(r)
	if err != nil {
		return nil, err
	}
	return FromReport(rep), nil
}

// FromReport indexes an already-parsed report (the in-process hook used by
// the serving layer, which holds a report rather than a JSON stream).
func FromReport(rep *report.NegativeReport) *Store {
	s := &Store{rules: map[string]Entry{}}
	for _, rr := range rep.Rules {
		e := Entry{
			Antecedent: append([]string(nil), rr.Antecedent...),
			Consequent: append([]string(nil), rr.Consequent...),
			RI:         rr.RuleInterest,
			Expected:   rr.ExpectedSupport,
			Actual:     rr.ActualSupport,
		}
		sort.Strings(e.Antecedent)
		sort.Strings(e.Consequent)
		s.rules[e.Signature()] = e
	}
	return s
}

// Len returns the number of stored rules.
func (s *Store) Len() int { return len(s.rules) }

// All returns the rules sorted by signature (deterministic).
func (s *Store) All() []Entry {
	out := make([]Entry, 0, len(s.rules))
	for _, e := range s.rules {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signature() < out[j].Signature() })
	return out
}

// Each calls fn for every rule in deterministic (signature) order, stopping
// early when fn returns false. It is the iteration hook consumers that build
// their own indexes (e.g. the serving snapshot) use: unlike All it lets them
// stop early, and its ordering contract is pinned by tests.
func (s *Store) Each(fn func(Entry) bool) {
	for _, e := range s.All() {
		if !fn(e) {
			return
		}
	}
}

// Lookup returns the stored entry matching the given sides, if any.
func (s *Store) Lookup(ante, cons []string) (Entry, bool) {
	e, ok := s.rules[signature(ante, cons)]
	return e, ok
}

// ByItem returns all rules mentioning the named item on either side.
func (s *Store) ByItem(name string) []Entry {
	var out []Entry
	for _, e := range s.All() {
		if contains(e.Antecedent, name) || contains(e.Consequent, name) {
			out = append(out, e)
		}
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Diff compares two runs (typically two time periods of the same store's
// data). Thresholding noise is absorbed by riTolerance: a rule present in
// both runs counts as Changed only when |ΔRI| exceeds it.
type Diff struct {
	Appeared    []Entry  // in new, not in old
	Disappeared []Entry  // in old, not in new
	Changed     []Change // in both, RI moved beyond tolerance
	Unchanged   int
}

// Change pairs a rule's old and new measurements.
type Change struct {
	Old, New Entry
}

// Compare diffs old → new.
func Compare(old, new *Store, riTolerance float64) *Diff {
	d := &Diff{}
	for sig, ne := range new.rules {
		oe, ok := old.rules[sig]
		switch {
		case !ok:
			d.Appeared = append(d.Appeared, ne)
		case abs(ne.RI-oe.RI) > riTolerance:
			d.Changed = append(d.Changed, Change{Old: oe, New: ne})
		default:
			d.Unchanged++
		}
	}
	for sig, oe := range old.rules {
		if _, ok := new.rules[sig]; !ok {
			d.Disappeared = append(d.Disappeared, oe)
		}
	}
	sortEntries(d.Appeared)
	sortEntries(d.Disappeared)
	sort.Slice(d.Changed, func(i, j int) bool {
		return d.Changed[i].New.Signature() < d.Changed[j].New.Signature()
	})
	return d
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Signature() < es[j].Signature() })
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Print renders the diff as a human-readable changelog.
func (d *Diff) Print(w io.Writer) {
	fmt.Fprintf(w, "rule diff: %d appeared, %d disappeared, %d changed, %d unchanged\n",
		len(d.Appeared), len(d.Disappeared), len(d.Changed), d.Unchanged)
	for _, e := range d.Appeared {
		fmt.Fprintf(w, "  + %s\n", e)
	}
	for _, e := range d.Disappeared {
		fmt.Fprintf(w, "  - %s\n", e)
	}
	for _, c := range d.Changed {
		fmt.Fprintf(w, "  ~ %s (RI %.4f → %.4f)\n", c.New, c.Old.RI, c.New.RI)
	}
}
