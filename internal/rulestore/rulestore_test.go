package rulestore

import (
	"bytes"
	"strings"
	"testing"

	"negmine/internal/item"
	"negmine/internal/negative"
	"negmine/internal/report"
)

func names() func(item.Item) string {
	m := map[item.Item]string{1: "pepsi", 2: "chips", 3: "salsa", 4: "water"}
	return func(i item.Item) string { return m[i] }
}

func resultA() *negative.Result {
	return &negative.Result{Rules: []negative.Rule{
		{Antecedent: item.New(1), Consequent: item.New(2), RI: 0.8, Expected: 0.2, Actual: 0.01},
		{Antecedent: item.New(1), Consequent: item.New(3), RI: 0.6, Expected: 0.15, Actual: 0.03},
	}}
}

func resultB() *negative.Result {
	return &negative.Result{Rules: []negative.Rule{
		{Antecedent: item.New(1), Consequent: item.New(2), RI: 0.82, Expected: 0.2, Actual: 0.008}, // tiny drift
		{Antecedent: item.New(1), Consequent: item.New(3), RI: 0.3, Expected: 0.15, Actual: 0.1},   // big drop
		{Antecedent: item.New(4), Consequent: item.New(2), RI: 0.7, Expected: 0.1, Actual: 0},      // new
	}}
}

func TestStoreBasics(t *testing.T) {
	s := New(resultA(), names())
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	e, ok := s.Lookup([]string{"pepsi"}, []string{"chips"})
	if !ok || e.RI != 0.8 {
		t.Errorf("Lookup = %+v, %v", e, ok)
	}
	if _, ok := s.Lookup([]string{"chips"}, []string{"pepsi"}); ok {
		t.Error("reversed rule found")
	}
	byPepsi := s.ByItem("pepsi")
	if len(byPepsi) != 2 {
		t.Errorf("ByItem(pepsi) = %d", len(byPepsi))
	}
	if got := s.ByItem("salsa"); len(got) != 1 {
		t.Errorf("ByItem(salsa) = %d", len(got))
	}
	if got := s.ByItem("unknown"); len(got) != 0 {
		t.Errorf("ByItem(unknown) = %d", len(got))
	}
	all := s.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Signature() >= all[i].Signature() {
			t.Error("All not sorted")
		}
	}
}

func TestCompare(t *testing.T) {
	old := New(resultA(), names())
	new_ := New(resultB(), names())
	d := Compare(old, new_, 0.05)
	if len(d.Appeared) != 1 || d.Appeared[0].Antecedent[0] != "water" {
		t.Errorf("Appeared = %v", d.Appeared)
	}
	if len(d.Disappeared) != 0 {
		t.Errorf("Disappeared = %v", d.Disappeared)
	}
	if len(d.Changed) != 1 || d.Changed[0].New.RI != 0.3 {
		t.Errorf("Changed = %v", d.Changed)
	}
	if d.Unchanged != 1 {
		t.Errorf("Unchanged = %d", d.Unchanged)
	}
	// Reverse direction: the water rule disappears.
	rd := Compare(new_, old, 0.05)
	if len(rd.Disappeared) != 1 || len(rd.Appeared) != 0 {
		t.Errorf("reverse diff: %+v", rd)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	out := buf.String()
	for _, want := range []string{"1 appeared", "+ {water}", "(RI 0.6000 → 0.3000)"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadFromJSON(t *testing.T) {
	// Persist run A through the report writer, then load it back and diff
	// against the in-memory run B.
	var buf bytes.Buffer
	if err := report.WriteNegativeJSON(&buf, resultA(), 0.1, 0.5, names()); err != nil {
		t.Fatal(err)
	}
	old, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if old.Len() != 2 {
		t.Fatalf("loaded %d rules", old.Len())
	}
	d := Compare(old, New(resultB(), names()), 0.05)
	if len(d.Appeared) != 1 || len(d.Changed) != 1 || d.Unchanged != 1 {
		t.Errorf("diff after JSON round trip: %+v", d)
	}
	if _, err := Load(strings.NewReader("{bad")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestDiffDeterministic pins that Diff output ordering is independent of
// Go's randomized map iteration: many stores with many rules, compared
// repeatedly, must render byte-identical diffs every time.
func TestDiffDeterministic(t *testing.T) {
	// Enough rules that map iteration order would visibly scramble an
	// unsorted implementation on nearly every run.
	wideResult := func(ris func(i int) float64) *negative.Result {
		res := &negative.Result{}
		for i := 0; i < 60; i++ {
			res.Rules = append(res.Rules, negative.Rule{
				Antecedent: item.New(item.Item(i)),
				Consequent: item.New(item.Item(100 + i%7)),
				RI:         ris(i),
			})
		}
		return res
	}
	wideNames := func(i item.Item) string { return "item-" + string(rune('a'+int(i)%26)) + itoa(int(i)) }
	old := New(wideResult(func(i int) float64 { return 0.5 }), wideNames)
	// Half the rules drift, a few disappear (filtered), a few appear.
	newRes := wideResult(func(i int) float64 {
		if i%2 == 0 {
			return 0.9
		}
		return 0.5
	})
	newRes.Rules = newRes.Rules[:50] // 10 disappear
	for i := 200; i < 210; i++ {     // 10 appear
		newRes.Rules = append(newRes.Rules, negative.Rule{
			Antecedent: item.New(item.Item(i)),
			Consequent: item.New(item.Item(300)),
			RI:         0.7,
		})
	}
	new_ := New(newRes, wideNames)

	var first string
	for run := 0; run < 20; run++ {
		d := Compare(old, new_, 0.05)
		var buf bytes.Buffer
		d.Print(&buf)
		if run == 0 {
			first = buf.String()
			if len(d.Appeared) == 0 || len(d.Disappeared) == 0 || len(d.Changed) == 0 {
				t.Fatalf("degenerate diff: %+v", d)
			}
			continue
		}
		if buf.String() != first {
			t.Fatalf("diff output varies across runs:\n--- run 0:\n%s\n--- run %d:\n%s", first, run, buf.String())
		}
	}
	// The sections themselves are sorted by signature.
	d := Compare(old, new_, 0.05)
	for i := 1; i < len(d.Appeared); i++ {
		if d.Appeared[i-1].Signature() >= d.Appeared[i].Signature() {
			t.Fatal("Appeared not sorted by signature")
		}
	}
	for i := 1; i < len(d.Disappeared); i++ {
		if d.Disappeared[i-1].Signature() >= d.Disappeared[i].Signature() {
			t.Fatal("Disappeared not sorted by signature")
		}
	}
	for i := 1; i < len(d.Changed); i++ {
		if d.Changed[i-1].New.Signature() >= d.Changed[i].New.Signature() {
			t.Fatal("Changed not sorted by signature")
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

// TestEachOrderAndStop pins the Each hook's contract: signature order,
// early stop.
func TestEachOrderAndStop(t *testing.T) {
	s := New(resultB(), names())
	var sigs []string
	s.Each(func(e Entry) bool {
		sigs = append(sigs, e.Signature())
		return true
	})
	if len(sigs) != 3 {
		t.Fatalf("Each visited %d rules", len(sigs))
	}
	for i := 1; i < len(sigs); i++ {
		if sigs[i-1] >= sigs[i] {
			t.Fatal("Each not in signature order")
		}
	}
	n := 0
	s.Each(func(Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each ignored early stop: %d visits", n)
	}
}

// TestFromReport pins that the in-process hook matches the JSON round trip.
func TestFromReport(t *testing.T) {
	var buf bytes.Buffer
	if err := report.WriteNegativeJSON(&buf, resultA(), 0.1, 0.5, names()); err != nil {
		t.Fatal(err)
	}
	viaJSON, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := report.ReadNegativeJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	direct := FromReport(rep)
	d := Compare(viaJSON, direct, 0)
	if len(d.Appeared) != 0 || len(d.Disappeared) != 0 || len(d.Changed) != 0 || d.Unchanged != 2 {
		t.Fatalf("FromReport diverges from Load: %+v", d)
	}
}

func TestNameOrderIrrelevant(t *testing.T) {
	// Two runs over dictionaries with different interning orders must
	// still match by name signature.
	res := &negative.Result{Rules: []negative.Rule{
		{Antecedent: item.New(5, 9), Consequent: item.New(7), RI: 0.5},
	}}
	nameA := func(i item.Item) string { return map[item.Item]string{5: "a", 9: "b", 7: "c"}[i] }
	res2 := &negative.Result{Rules: []negative.Rule{
		{Antecedent: item.New(9, 5), Consequent: item.New(7), RI: 0.5},
	}}
	nameB := func(i item.Item) string { return map[item.Item]string{9: "a", 5: "b", 7: "c"}[i] }
	d := Compare(New(res, nameA), New(res2, nameB), 0.01)
	if len(d.Appeared) != 0 || len(d.Disappeared) != 0 || d.Unchanged != 1 {
		t.Errorf("name identity broken: %+v", d)
	}
}
