package seglog

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"negmine/internal/item"
	"negmine/internal/txdb"
)

// basket builds an itemset for tests.
func basket(ids ...int) item.Itemset {
	s := make(item.Itemset, len(ids))
	for i, id := range ids {
		s[i] = item.Item(id)
	}
	return item.New(s...)
}

// openTest opens a log in a fresh temp dir and closes it at cleanup.
func openTest(t *testing.T, opt Options) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, dir
}

// collect scans every transaction out of a DB.
func collect(t *testing.T, db txdb.DB) []txdb.Transaction {
	t.Helper()
	var txs []txdb.Transaction
	err := db.Scan(func(tx txdb.Transaction) error {
		txs = append(txs, txdb.Transaction{TID: tx.TID, Items: tx.Items.Clone()})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return txs
}

func TestAppendAssignsTIDsAndScans(t *testing.T) {
	l, _ := openTest(t, Options{})
	first, last, err := l.Append([]item.Itemset{basket(1, 2), basket(3)})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != 2 {
		t.Fatalf("TIDs [%d, %d], want [1, 2]", first, last)
	}
	first, last, err = l.Append([]item.Itemset{basket(2, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 || last != 3 {
		t.Fatalf("second batch TIDs [%d, %d], want [3, 3]", first, last)
	}
	txs := collect(t, l)
	if len(txs) != 3 || l.Count() != 3 {
		t.Fatalf("scan found %d txs, Count %d, want 3", len(txs), l.Count())
	}
	for i, tx := range txs {
		if tx.TID != int64(i+1) {
			t.Fatalf("tx %d has TID %d", i, tx.TID)
		}
	}
	if !txs[2].Items.Equal(basket(2, 5)) {
		t.Fatalf("third tx items %v", txs[2].Items)
	}
}

func TestAppendRejectsBadInput(t *testing.T) {
	l, _ := openTest(t, Options{})
	if _, _, err := l.Append(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, _, err := l.Append([]item.Itemset{{3, 1}}); err == nil {
		t.Fatal("unsorted itemset accepted")
	}
	if got := l.Count(); got != 0 {
		t.Fatalf("rejected appends changed Count to %d", got)
	}
}

func TestSealAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(1), basket(2, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	// Sealing an empty active segment is a no-op.
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(7)}); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Segments != 1 || st.SealedTxns != 2 || st.ActiveTxns != 1 || st.Seals != 1 {
		t.Fatalf("stats after seal: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	txs := collect(t, l2)
	if len(txs) != 3 {
		t.Fatalf("reopened log has %d txs, want 3", len(txs))
	}
	// TIDs keep increasing across the reopen.
	if first, _, err := l2.Append([]item.Itemset{basket(9)}); err != nil || first != 4 {
		t.Fatalf("append after reopen: first=%d err=%v, want 4/nil", first, err)
	}
}

func TestAutoSeal(t *testing.T) {
	l, _ := openTest(t, Options{SealTxns: 2})
	for i := 0; i < 5; i++ {
		if _, _, err := l.Append([]item.Itemset{basket(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments != 2 || st.SealedTxns != 4 || st.ActiveTxns != 1 {
		t.Fatalf("auto-seal stats: %+v", st)
	}
	if got := len(l.SealedViews()); got != 2 {
		t.Fatalf("SealedViews returned %d segments", got)
	}
}

func TestSealedViewsScanIndependently(t *testing.T) {
	l, _ := openTest(t, Options{})
	if _, _, err := l.Append([]item.Itemset{basket(1), basket(2)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(3)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	views := l.SealedViews()
	if len(views) != 2 {
		t.Fatalf("%d views", len(views))
	}
	if views[0].Entry.MinTID != 1 || views[0].Entry.MaxTID != 2 ||
		views[1].Entry.MinTID != 3 || views[1].Entry.MaxTID != 3 {
		t.Fatalf("view TID ranges: %+v / %+v", views[0].Entry, views[1].Entry)
	}
	a := collect(t, views[0].DB)
	b := collect(t, views[1].DB)
	if len(a) != 2 || len(b) != 1 || views[0].DB.Count() != 2 {
		t.Fatalf("per-view scans: %d and %d txs", len(a), len(b))
	}
}

func TestCompactMergesSmallRun(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{CompactUnder: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := l.Append([]item.Itemset{basket(i), basket(i, i+10)}); err != nil {
			t.Fatal(err)
		}
		if err := l.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	before := collect(t, l)
	did, err := l.Compact()
	if err != nil || !did {
		t.Fatalf("Compact: did=%v err=%v", did, err)
	}
	st := l.Stats()
	if st.Segments != 1 || st.Compactions != 1 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
	after := collect(t, l)
	if len(after) != len(before) {
		t.Fatalf("compaction changed tx count: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i].TID != before[i].TID || !after[i].Items.Equal(before[i].Items) {
			t.Fatalf("tx %d changed by compaction: %v vs %v", i, after[i], before[i])
		}
	}
	// Idempotent: a single merged segment has no run of two to merge.
	if did, err := l.Compact(); err != nil || did {
		t.Fatalf("second Compact: did=%v err=%v", did, err)
	}
	// The merged result survives a verified reopen; old files are gone.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != len(before) {
		t.Fatalf("reopen after compaction: %d txs", len(got))
	}
}

func TestCompactSkipsLargeSegments(t *testing.T) {
	l, _ := openTest(t, Options{CompactUnder: 1})
	for i := 0; i < 3; i++ {
		if _, _, err := l.Append([]item.Itemset{basket(i)}); err != nil {
			t.Fatal(err)
		}
		if err := l.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if did, err := l.Compact(); err != nil || did {
		t.Fatalf("Compact merged segments above the threshold: did=%v err=%v", did, err)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage half-frame at the active tail.
	path := segmentPath(dir, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.RecoveredDrop != 3 {
		t.Fatalf("RecoveredDrop = %d, want 3", st.RecoveredDrop)
	}
	txs := collect(t, l2)
	if len(txs) != 1 || txs[0].TID != 1 {
		t.Fatalf("recovered txs: %v", txs)
	}
	// The truncated log accepts appends again.
	if first, _, err := l2.Append([]item.Itemset{basket(5)}); err != nil || first != 2 {
		t.Fatalf("append after recovery: first=%d err=%v", first, err)
	}
}

func TestCorruptSealedSegmentFailsVerifiedOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(1, 2), basket(3)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := segmentPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{VerifyOnOpen: true}); err == nil {
		t.Fatal("verified open accepted a corrupt sealed segment")
	}
	// The cheap open succeeds (size matches) but scanning must fail loudly.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Scan(func(txdb.Transaction) error { return nil }); err == nil {
		t.Fatal("scan silently passed over a corrupt sealed segment")
	}
}

func TestMidFileCorruptionInActiveIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(1)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(2)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := segmentPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the FIRST frame's payload: acknowledged data strictly
	// inside the file. Recovery must refuse, not truncate.
	raw[segHeaderSize+frameHeaderSize] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open silently dropped acknowledged mid-file data")
	}
}

func TestOrphanSegmentsRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A compaction killed before its manifest swap leaves a full segment
	// file with an id the manifest never heard of.
	orphan := segmentPath(dir, 99)
	if err := os.WriteFile(orphan, segmentHeader(), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "manifest.json.tmp-123")
	if err := os.WriteFile(tmp, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, p := range []string{orphan, tmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s survived reopen", p)
		}
	}
	if txs := collect(t, l2); len(txs) != 1 {
		t.Fatalf("recovered %d txs", len(txs))
	}
}

func TestManifestCorruptionRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	for name, content := range map[string]string{
		"not json":     "}{",
		"bad version":  `{"version": 99, "nextId": 3, "active": 2}`,
		"dup id":       `{"version": 1, "nextId": 3, "active": 1, "sealed": [{"id": 1, "txns": 1, "bytes": 10, "minTid": 1, "maxTid": 1}]}`,
		"stale nextId": `{"version": 1, "nextId": 2, "active": 2}`,
	} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Errorf("%s: open accepted a corrupt manifest", name)
		}
	}
}

func TestScanSnapshotIgnoresConcurrentAppend(t *testing.T) {
	l, _ := openTest(t, Options{})
	if _, _, err := l.Append([]item.Itemset{basket(1), basket(2)}); err != nil {
		t.Fatal(err)
	}
	n := 0
	err := l.Scan(func(tx txdb.Transaction) error {
		n++
		if n == 1 {
			// Appending mid-scan must not extend this scan's view.
			if _, _, err := l.Append([]item.Itemset{basket(9)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scan saw %d txs, want the 2 present at scan start", n)
	}
	if l.Count() != 3 {
		t.Fatalf("Count = %d after mid-scan append", l.Count())
	}
}

func TestConcurrentAppendAndScan(t *testing.T) {
	l, _ := openTest(t, Options{SealTxns: 16, NoSync: true})
	done := make(chan error, 2)
	go func() {
		for i := 0; i < 100; i++ {
			if _, _, err := l.Append([]item.Itemset{basket(i % 7), basket(i%7, 9)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 50; i++ {
			prev := int64(0)
			err := l.Scan(func(tx txdb.Transaction) error {
				if tx.TID <= prev {
					return fmt.Errorf("TID %d after %d", tx.TID, prev)
				}
				prev = tx.TID
				return nil
			})
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Count(); got != 200 {
		t.Fatalf("Count = %d, want 200", got)
	}
}

// TestTornTailRecoveryWithConcurrentReader opens a log whose active tail was
// torn by a crash and immediately puts it under concurrent load: readers
// scan in a loop while a writer appends and seals. Recovery truncation must
// be complete before Open returns — no scan may ever observe the torn bytes
// or a gap — and the post-recovery TID sequence must continue exactly where
// the last durable frame left off.
func TestTornTailRecoveryWithConcurrentReader(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One sealed segment plus a surviving frame in the active tail.
	if _, _, err := l.Append([]item.Itemset{basket(1, 2), basket(3)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(4)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segmentPath(dir, 2), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0xde, 0xad, 0xbe}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.RecoveredDrop != int64(len(torn)) {
		t.Fatalf("RecoveredDrop = %d, want %d", st.RecoveredDrop, len(torn))
	}

	const appends = 60
	var wg sync.WaitGroup
	errc := make(chan error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if _, _, err := l2.Append([]item.Itemset{basket(i%7 + 1)}); err != nil {
				errc <- fmt.Errorf("append %d: %w", i, err)
				return
			}
			if i%20 == 19 {
				if err := l2.Seal(); err != nil {
					errc <- fmt.Errorf("seal at %d: %w", i, err)
					return
				}
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				prev := int64(0)
				err := l2.Scan(func(tx txdb.Transaction) error {
					if tx.TID != prev+1 {
						return fmt.Errorf("TID %d after %d (gap or torn frame surfaced)", tx.TID, prev)
					}
					if len(tx.Items) == 0 {
						return fmt.Errorf("TID %d scanned with no items", tx.TID)
					}
					prev = tx.TID
					return nil
				})
				if err != nil {
					errc <- fmt.Errorf("reader %d scan %d: %w", r, i, err)
					return
				}
				if prev < 3 {
					errc <- fmt.Errorf("reader %d scan %d ended at TID %d, want ≥ 3 (recovered prefix)", r, i, prev)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// 3 durable pre-crash txns + the post-recovery appends, TIDs unbroken.
	if got := l2.Count(); got != 3+appends {
		t.Fatalf("Count = %d, want %d", got, 3+appends)
	}
	txs := collect(t, l2)
	for i, tx := range txs {
		if tx.TID != int64(i+1) {
			t.Fatalf("tx %d has TID %d", i, tx.TID)
		}
	}
}
