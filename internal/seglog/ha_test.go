package seglog

import (
	"errors"
	"fmt"
	"testing"

	"negmine/internal/artifact"
	"negmine/internal/fault"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// --- Epoch fencing -------------------------------------------------------

func TestEpochFencing(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Epoch(); got != 0 {
		t.Fatalf("fresh log epoch = %d", got)
	}
	// Epoch -1 opts out of fencing (solo writers); epoch 0 matches a fresh log.
	if _, _, err := l.Append([]item.Itemset{basket(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(2)}, Epoch: 0}); err != nil {
		t.Fatal(err)
	}

	if err := l.AdvanceEpoch(2); err != nil {
		t.Fatal(err)
	}
	// The old token is now fenced — and the rejection is counted.
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(3)}, Epoch: 0}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch append: %v, want ErrFenced", err)
	}
	if st := l.Stats(); st.FencedAppends != 1 || st.Epoch != 2 {
		t.Fatalf("stats after fence = %+v", st)
	}
	// The new token writes; epoch -1 still bypasses.
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(4)}, Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(5)}, Epoch: -1}); err != nil {
		t.Fatal(err)
	}
	// Epochs are forward-only and idempotent at the current value.
	if err := l.AdvanceEpoch(2); err != nil {
		t.Fatalf("same-epoch advance: %v", err)
	}
	if err := l.AdvanceEpoch(1); err == nil {
		t.Fatal("lowering the epoch must fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The epoch is durable: a reopened log still fences the old token.
	l2 := reopen(t, dir)
	if got := l2.Epoch(); got != 2 {
		t.Fatalf("epoch after reopen = %d, want 2", got)
	}
	if _, err := l2.AppendBatch(Batch{Baskets: []item.Itemset{basket(6)}, Epoch: 0}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch append after reopen: %v, want ErrFenced", err)
	}
}

func TestFencePointBlocksAppend(t *testing.T) {
	l, _ := openTest(t, Options{})
	defer fault.Reset()
	fault.Enable(PointFence, fault.Error("injected fence check failure"))
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(1)}, Epoch: 0}); err == nil {
		t.Fatal("armed seglog.fence failpoint did not block the append")
	}
	fault.Reset()
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(1)}, Epoch: 0}); err != nil {
		t.Fatalf("append after disarm: %v", err)
	}
}

// --- Exactly-once dedup window ------------------------------------------

func TestDedupKeyedReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{DedupWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	b := Batch{Baskets: []item.Itemset{basket(1), basket(2)}, Epoch: -1, Key: "w1", Seq: 1}
	first, err := l.AppendBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if first.Duplicate || first.First != 1 || first.Last != 2 {
		t.Fatalf("first append = %+v", first)
	}
	// Retrying the same (key, seq) replays the original TID range without
	// appending, even with different payload bytes (the ack is the identity).
	second, err := l.AppendBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Duplicate || second.First != 1 || second.Last != 2 {
		t.Fatalf("replayed append = %+v", second)
	}
	if got := l.Count(); got != 2 {
		t.Fatalf("Count = %d after replay, want 2", got)
	}
	st := l.Stats()
	if st.DedupHits != 1 || st.DedupEntries != 1 {
		t.Fatalf("dedup stats = hits %d entries %d", st.DedupHits, st.DedupEntries)
	}
	// A seq at or below the highest applied for the key is stale, not new.
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(9)}, Epoch: -1, Key: "w1", Seq: 0}); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("seq 0 after seq 1: %v, want ErrStaleSeq", err)
	}
	// Independent keys do not interfere.
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(3)}, Epoch: -1, Key: "w2", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The window is journaled: replay protection survives a restart.
	l2, err := Open(dir, Options{DedupWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	res, err := l2.AppendBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate || res.First != 1 || res.Last != 2 {
		t.Fatalf("replay after reopen = %+v", res)
	}
	if got := l2.Count(); got != 3 {
		t.Fatalf("Count = %d after reopen replay, want 3", got)
	}
}

func TestDedupWindowEviction(t *testing.T) {
	l, _ := openTest(t, Options{DedupWindow: 2})
	for seq := uint64(1); seq <= 3; seq++ {
		key := fmt.Sprintf("w%d", seq)
		if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(int(seq))}, Epoch: -1, Key: key, Seq: 1}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.DedupEntries != 2 {
		t.Fatalf("window holds %d entries, want 2 (FIFO bound)", st.DedupEntries)
	}
	// w1 was evicted, but its per-key high-water mark survives: the retry is
	// refused as stale rather than silently applied twice.
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(1)}, Epoch: -1, Key: "w1", Seq: 1}); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("evicted-key replay: %v, want ErrStaleSeq", err)
	}
	// A fresh seq on the evicted key is fine.
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(4)}, Epoch: -1, Key: "w1", Seq: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestDedupDisabledWindowIgnoresKeys(t *testing.T) {
	l, _ := openTest(t, Options{}) // DedupWindow 0: keys accepted, not tracked
	b := Batch{Baskets: []item.Itemset{basket(1)}, Epoch: -1, Key: "w", Seq: 1}
	if _, err := l.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	res, err := l.AppendBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicate {
		t.Fatal("disabled window reported a duplicate")
	}
	if got := l.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2 (both applied)", got)
	}
}

// --- Replicated appends and segment adoption ----------------------------

func mkTxs(startTID int64, n int) []txdb.Transaction {
	txs := make([]txdb.Transaction, n)
	for i := range txs {
		txs[i] = txdb.Transaction{TID: startTID + int64(i), Items: basket(i + 1)}
	}
	return txs
}

func TestAppendReplicatedContinuity(t *testing.T) {
	l, _ := openTest(t, Options{})
	res, err := l.AppendReplicated(mkTxs(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.First != 1 || res.Last != 3 {
		t.Fatalf("replicated append = %+v", res)
	}
	// A gap (or a replay) is out of sync, and nothing is applied.
	if _, err := l.AppendReplicated(mkTxs(5, 2)); !errors.Is(err, ErrOutOfSync) {
		t.Fatalf("gapped replicated append: %v, want ErrOutOfSync", err)
	}
	if _, err := l.AppendReplicated(mkTxs(2, 2)); !errors.Is(err, ErrOutOfSync) {
		t.Fatalf("replayed replicated append: %v, want ErrOutOfSync", err)
	}
	if got := l.Count(); got != 3 {
		t.Fatalf("Count = %d after rejected appends, want 3", got)
	}
	// Interior discontinuity inside one batch is rejected before any append.
	bad := mkTxs(4, 2)
	bad[1].TID = 9
	if _, err := l.AppendReplicated(bad); !errors.Is(err, ErrOutOfSync) {
		t.Fatalf("interior-gap batch: %v, want ErrOutOfSync", err)
	}
	wantTIDs(t, l, 1, 2, 3)
}

// TestShipperFollowerRoundTrip replicates a primary's log into a standby
// through a shared FS artifact store and asserts the transported segments
// are byte-identical facts: same TIDs, same items, same seal boundaries.
func TestShipperFollowerRoundTrip(t *testing.T) {
	store, err := artifact.OpenFS(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	primary, _ := openTest(t, Options{})
	standby, _ := openTest(t, Options{})

	for seg := 0; seg < 3; seg++ {
		if _, _, err := primary.Append([]item.Itemset{basket(seg + 1), basket(seg+1, 9)}); err != nil {
			t.Fatal(err)
		}
		if err := primary.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	sh := &Shipper{Log: primary, Store: store, Node: "p", Epoch: 0}
	if n, err := sh.Sync(); err != nil || n != 3 {
		t.Fatalf("Shipper.Sync = %d, %v; want 3 segments", n, err)
	}
	// Re-syncing ships nothing new.
	if n, err := sh.Sync(); err != nil || n != 0 {
		t.Fatalf("idempotent re-sync = %d, %v", n, err)
	}

	fo := &Follower{Log: standby, Store: store}
	if n, _, err := fo.Sync(); err != nil || n != 3 {
		t.Fatalf("Follower.Sync = %d, %v; want 3 adopted", n, err)
	}
	var want, got []string
	fmtTx := func(tx txdb.Transaction) string { return fmt.Sprintf("%d:%v", tx.TID, tx.Items) }
	if err := primary.Scan(func(tx txdb.Transaction) error { want = append(want, fmtTx(tx)); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := standby.Scan(func(tx txdb.Transaction) error { got = append(got, fmtTx(tx)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("standby holds %d txns, primary %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("txn %d differs: primary %s standby %s", i, want[i], got[i])
		}
	}
	if lp, ls := len(primary.SealedEntries()), len(standby.SealedEntries()); lp != ls {
		t.Fatalf("seal boundaries differ: primary %d standby %d", lp, ls)
	}

	// A restarted shipper (fresh high-water state) re-scans the store and
	// does not double-ship.
	sh2 := &Shipper{Log: primary, Store: store, Node: "p", Epoch: 0}
	if n, err := sh2.Sync(); err != nil || n != 0 {
		t.Fatalf("restarted shipper re-shipped: %d, %v", n, err)
	}
}

// TestShipperSelfFences is the deposed-primary path: a promotion epoch in
// the store fences the shipper, durably advances its log's epoch, and its
// held token stops writing.
func TestShipperSelfFences(t *testing.T) {
	store, err := artifact.OpenFS(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := openTest(t, Options{})
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(1)}, Epoch: 0}); err != nil {
		t.Fatal(err)
	}
	if err := PublishEpoch(store, 3, "standby-b"); err != nil {
		t.Fatal(err)
	}
	sh := &Shipper{Log: l, Store: store, Node: "p", Epoch: 0}
	if _, err := sh.Sync(); !errors.Is(err, ErrFenced) {
		t.Fatalf("Sync against a promoted store: %v, want ErrFenced", err)
	}
	if got := l.Epoch(); got != 3 {
		t.Fatalf("log epoch after self-fence = %d, want 3", got)
	}
	// The in-flight token is now rejected — and counted.
	if _, err := l.AppendBatch(Batch{Baskets: []item.Itemset{basket(2)}, Epoch: 0}); !errors.Is(err, ErrFenced) {
		t.Fatalf("append with deposed token: %v, want ErrFenced", err)
	}
	if st := l.Stats(); st.FencedAppends != 1 {
		t.Fatalf("FencedAppends = %d, want 1", st.FencedAppends)
	}
	if e, err := StoreEpoch(store); err != nil || e != 3 {
		t.Fatalf("StoreEpoch = %d, %v", e, err)
	}
}

// TestFollowerStopsAtGap: a follower must not adopt a sealed segment that
// would leave a TID hole (the open tail between cursor and segment has not
// arrived), and must resume once the gap is filled.
func TestFollowerStopsAtGap(t *testing.T) {
	store, err := artifact.OpenFS(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	primary, _ := openTest(t, Options{})
	standby, _ := openTest(t, Options{})

	// Two sealed segments; ship only the second by syncing after dropping
	// the first from the shipper's view (simulate: seal 1, don't ship, seal 2,
	// ship both, then make the standby's cursor lag).
	if _, _, err := primary.Append([]item.Itemset{basket(1), basket(2)}); err != nil {
		t.Fatal(err)
	}
	if err := primary.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := primary.Append([]item.Itemset{basket(3)}); err != nil {
		t.Fatal(err)
	}
	if err := primary.Seal(); err != nil {
		t.Fatal(err)
	}
	// Ship only the later segment first: pre-mark the first as covered.
	sh := &Shipper{Log: primary, Store: store, Node: "p", Epoch: 0, shippedMax: 2}
	if n, err := sh.Sync(); err != nil || n != 1 {
		t.Fatalf("partial ship = %d, %v; want 1", n, err)
	}

	fo := &Follower{Log: standby, Store: store}
	if n, _, err := fo.Sync(); err != nil || n != 0 {
		t.Fatalf("gap adoption = %d, %v; want 0 (segment starts at TID 3, log at 1)", n, err)
	}
	if got := standby.NextTID(); got != 1 {
		t.Fatalf("standby NextTID = %d after refusing the gap", got)
	}

	// The tail stream delivers the missing range; the same store generation
	// is then consumable.
	if _, err := standby.AppendReplicated(mkTxs(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := standby.Seal(); err != nil {
		t.Fatal(err)
	}
	if n, _, err := fo.Sync(); err != nil || n != 1 {
		t.Fatalf("post-fill adoption = %d, %v; want 1", n, err)
	}
	wantTIDs(t, standby, 1, 2, 3)
}

// TestReplicatePointBlocksShipping: the seglog.replicate failpoint vetoes
// segment publication without corrupting shipper state — the next healthy
// round ships everything.
func TestReplicatePointBlocksShipping(t *testing.T) {
	store, err := artifact.OpenFS(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := openTest(t, Options{})
	if _, _, err := l.Append([]item.Itemset{basket(1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	fault.Enable(PointReplicate, fault.Error("injected replication failure"))
	sh := &Shipper{Log: l, Store: store, Node: "p", Epoch: 0}
	if n, err := sh.Sync(); err == nil || n != 0 {
		t.Fatalf("armed seglog.replicate: shipped %d, err %v", n, err)
	}
	fault.Reset()
	if n, err := sh.Sync(); err != nil || n != 1 {
		t.Fatalf("post-disarm sync = %d, %v; want 1", n, err)
	}
}

// TestDedupEntriesReplication: the dedup window itself replicates, so a
// promoted standby keeps refusing duplicates of batches the old primary
// acknowledged.
func TestDedupEntriesReplication(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	primary, err := Open(dirA, Options{DedupWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	standby, err := Open(dirB, Options{DedupWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()

	b := Batch{Baskets: []item.Itemset{basket(1), basket(2)}, Epoch: -1, Key: "w1", Seq: 4}
	if _, err := primary.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	// Tail replication: data first, then the dedup entries covering it.
	var txs []txdb.Transaction
	if err := primary.ScanFrom(0, func(tx txdb.Transaction) error {
		txs = append(txs, txdb.Transaction{TID: tx.TID, Items: tx.Items.Clone()})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := standby.AppendReplicated(txs); err != nil {
		t.Fatal(err)
	}
	entries := primary.DedupEntriesAfter(0)
	if len(entries) != 1 {
		t.Fatalf("primary exports %d dedup entries, want 1", len(entries))
	}
	if err := standby.AdoptDedup(entries); err != nil {
		t.Fatal(err)
	}
	// The standby (now promoted, say) replays the retry instead of re-applying.
	res, err := standby.AppendBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate || res.First != 1 || res.Last != 2 {
		t.Fatalf("standby replay = %+v", res)
	}
	if got := standby.Count(); got != 2 {
		t.Fatalf("standby Count = %d, want 2", got)
	}
	// Entries whose data has not arrived yet are NOT adopted (they would
	// acknowledge transactions the standby does not hold).
	b2 := Batch{Baskets: []item.Itemset{basket(3)}, Epoch: -1, Key: "w2", Seq: 1}
	if _, err := primary.AppendBatch(b2); err != nil {
		t.Fatal(err)
	}
	ahead := primary.DedupEntriesAfter(2)
	if err := standby.AdoptDedup(ahead); err != nil {
		t.Fatal(err)
	}
	if res, err := standby.AppendBatch(b2); err != nil || res.Duplicate {
		t.Fatalf("ahead-of-data entry was adopted: res=%+v err=%v", res, err)
	}
}
