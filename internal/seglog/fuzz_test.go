package seglog

import (
	"encoding/json"
	"testing"

	"negmine/internal/txdb"
)

// fuzzSeedSegment builds a valid two-frame active segment for the corpus.
func fuzzSeedSegment(f *testing.F) []byte {
	f.Helper()
	var enc txdb.Encoder
	raw := segmentHeader()
	p1, err := enc.AppendRecord(nil, txdb.Transaction{TID: 1, Items: basket(1, 2, 3)})
	if err != nil {
		f.Fatal(err)
	}
	p1, err = enc.AppendRecord(p1, txdb.Transaction{TID: 2, Items: basket(5)})
	if err != nil {
		f.Fatal(err)
	}
	raw = append(raw, frame(p1)...)
	p2, err := enc.AppendRecord(nil, txdb.Transaction{TID: 9, Items: basket(0, 4)})
	if err != nil {
		f.Fatal(err)
	}
	return append(raw, frame(p2)...)
}

// FuzzSeglogRecover feeds arbitrary bytes to the active-segment recovery
// path and the manifest loader. The recovery must never panic; when it
// accepts a prefix, that prefix must re-scan as a fully valid sealed
// segment yielding the same transactions — a committed transaction inside
// the accepted prefix can never be silently dropped or rewritten.
func FuzzSeglogRecover(f *testing.F) {
	seed := fuzzSeedSegment(f)
	f.Add(seed, []byte(`{"version":1,"nextId":2,"active":1}`))
	f.Add(seed[:len(seed)-3], []byte(`{"version":1,"nextId":3,"active":2,"sealed":[{"id":1,"txns":2,"bytes":40,"crc":1,"minTid":1,"maxTid":2}]}`))
	f.Add([]byte("NMSL"), []byte("}{"))
	f.Add([]byte{}, []byte{})

	f.Fuzz(func(t *testing.T, segRaw, manRaw []byte) {
		rec, err := recoverActiveBytes(segRaw, "fuzz")
		if err == nil {
			if rec.size < 0 || rec.size > int64(len(segRaw)) {
				t.Fatalf("recovered size %d outside [0, %d]", rec.size, len(segRaw))
			}
			prev := int64(0)
			for _, tx := range rec.txs {
				if tx.TID <= prev {
					t.Fatalf("recovered TIDs not strictly increasing: %d after %d", tx.TID, prev)
				}
				if err := tx.Items.Validate(); err != nil {
					t.Fatalf("recovered invalid itemset: %v", err)
				}
				prev = tx.TID
			}
			// Differential check: the accepted prefix must be a completely
			// valid segment holding exactly the recovered transactions.
			if rec.size > 0 {
				var got []txdb.Transaction
				n, err := scanSegmentBytes(segRaw[:rec.size], "fuzz", func(tx txdb.Transaction) error {
					got = append(got, txdb.Transaction{TID: tx.TID, Items: tx.Items.Clone()})
					return nil
				})
				if err != nil {
					t.Fatalf("accepted prefix does not rescan: %v", err)
				}
				if n != len(rec.txs) {
					t.Fatalf("rescan found %d txs, recovery reported %d", n, len(rec.txs))
				}
				for i := range got {
					if got[i].TID != rec.txs[i].TID || !got[i].Items.Equal(rec.txs[i].Items) {
						t.Fatalf("tx %d differs between recovery and rescan", i)
					}
				}
			}
		}

		// The sealed-segment scanner must also never panic, and a bounded
		// callback count guards against absurd-allocation loops.
		calls := 0
		_, _ = scanSegmentBytes(segRaw, "fuzz", func(tx txdb.Transaction) error {
			calls++
			if calls > 1<<20 {
				t.Fatal("unbounded segment scan")
			}
			return nil
		})

		// Manifest bytes: parse + validate must reject garbage, never panic.
		var m manifest
		if err := json.Unmarshal(manRaw, &m); err == nil {
			_ = m.validate()
		}
	})
}
