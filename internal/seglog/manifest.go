package seglog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"negmine/internal/atomicio"
)

// manifestName is the manifest file inside a log directory.
const manifestName = "manifest.json"

// manifestVersion is the current manifest format version.
const manifestVersion = 1

// SegmentEntry describes one sealed, immutable segment. Bytes and CRC cover
// the whole segment file (header and frames), so a sealed segment can be
// verified without trusting anything but the manifest.
type SegmentEntry struct {
	ID     int64  `json:"id"`
	Txns   int    `json:"txns"`
	Bytes  int64  `json:"bytes"`
	CRC    uint32 `json:"crc"`
	MinTID int64  `json:"minTid"`
	MaxTID int64  `json:"maxTid"`
}

// manifest is the log's source of truth: the ordered list of sealed
// segments, the id of the active segment, and the next id to allocate. It
// is only ever replaced atomically (atomicio), so a reader observes either
// the old or the new log state — never a mix.
type manifest struct {
	Version int   `json:"version"`
	NextID  int64 `json:"nextId"`
	Active  int64 `json:"active"`
	// Epoch is the log's fencing token. Every append made on behalf of a
	// writer carries the epoch the writer believes it owns; a mismatch is
	// rejected with ErrFenced. Promotion (HA failover) bumps the epoch, so
	// a deposed primary's late writes can never land after the standby has
	// taken over. Absent in pre-HA manifests, which decode as epoch 0.
	Epoch  int64          `json:"epoch,omitempty"`
	Sealed []SegmentEntry `json:"sealed"`
}

// validate checks the structural invariants a well-formed manifest has.
// Violations mean the manifest bytes were corrupted (or hand-edited), and
// the log refuses to open rather than guess which transactions survive.
func (m *manifest) validate() error {
	if m.Version != manifestVersion {
		return fmt.Errorf("seglog: unsupported manifest version %d", m.Version)
	}
	if m.Active <= 0 {
		return fmt.Errorf("seglog: manifest has no active segment")
	}
	if m.Epoch < 0 {
		return fmt.Errorf("seglog: manifest has negative epoch %d", m.Epoch)
	}
	seen := map[int64]bool{m.Active: true}
	maxID := m.Active
	for i, e := range m.Sealed {
		if e.ID <= 0 || seen[e.ID] {
			return fmt.Errorf("seglog: manifest sealed entry %d: bad or duplicate id %d", i, e.ID)
		}
		seen[e.ID] = true
		if e.ID > maxID {
			maxID = e.ID
		}
		if e.Txns <= 0 || e.Bytes <= 0 {
			return fmt.Errorf("seglog: manifest sealed entry %d (id %d): empty segment", i, e.ID)
		}
		if e.MinTID <= 0 || e.MaxTID < e.MinTID {
			return fmt.Errorf("seglog: manifest sealed entry %d (id %d): bad TID range [%d, %d]", i, e.ID, e.MinTID, e.MaxTID)
		}
	}
	if m.NextID <= maxID {
		return fmt.Errorf("seglog: manifest nextId %d not above max segment id %d", m.NextID, maxID)
	}
	return nil
}

// loadManifest reads and validates dir's manifest. os.ErrNotExist is
// returned verbatim when none exists yet (a fresh log directory).
func loadManifest(dir string) (*manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("seglog: %s: %w", manifestName, err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// storeManifest atomically replaces dir's manifest.
func storeManifest(dir string, m *manifest) error {
	return atomicio.WriteFile(filepath.Join(dir, manifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}
