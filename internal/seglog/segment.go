package seglog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"negmine/internal/txdb"
)

// Segment file format
//
//	header:  magic "NMSL" | uvarint version (1)
//	frame:   uint32le payloadLen | uint32le crc32c(payload) | payload
//
// Each payload is a batch of transactions in the txdb uvarint record
// encoding (see txdb.Encoder); the encoder's TID-delta state runs across
// frame boundaries within a segment, so a segment decodes to exactly the
// stream that was appended to it. The per-frame CRC is what makes a torn
// append detectable: recovery truncates the active segment at the first
// frame whose bytes do not reach EOF intact.

const (
	segMagic   = "NMSL"
	segVersion = 1
	// segHeaderSize is the fixed header length (magic + version byte).
	segHeaderSize = len(segMagic) + 1
	// frameHeaderSize prefixes every frame: payload length + CRC.
	frameHeaderSize = 8
	// maxFramePayload bounds a single frame. Appends larger than this are
	// split by the caller; lengths above it in a file mean corruption.
	maxFramePayload = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segmentPath names segment id inside dir.
func segmentPath(dir string, id int64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.nmsl", id))
}

// segmentHeader returns the fixed file header.
func segmentHeader() []byte {
	hdr := make([]byte, 0, segHeaderSize)
	hdr = append(hdr, segMagic...)
	return binary.AppendUvarint(hdr, segVersion)
}

// frame assembles a complete frame (header + payload) around payload.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// scanSegmentFile streams every transaction of a complete (sealed) segment
// file, verifying the header and every frame CRC. Any violation is an
// error: sealed segments are immutable, so damage here is corruption of
// acknowledged data and must never be skipped silently.
func scanSegmentFile(path string, fn func(txdb.Transaction) error) (txns int, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return scanSegmentBytes(raw, path, fn)
}

func scanSegmentBytes(raw []byte, name string, fn func(txdb.Transaction) error) (txns int, err error) {
	if len(raw) < segHeaderSize || string(raw[:len(segMagic)]) != segMagic {
		return 0, fmt.Errorf("seglog: %s: bad segment header", name)
	}
	if ver, n := binary.Uvarint(raw[len(segMagic):]); n <= 0 || ver != segVersion {
		return 0, fmt.Errorf("seglog: %s: unsupported segment version", name)
	}
	var dec txdb.Decoder
	pos := segHeaderSize
	for frameIdx := 0; pos < len(raw); frameIdx++ {
		if len(raw)-pos < frameHeaderSize {
			return txns, fmt.Errorf("seglog: %s: frame %d: truncated header", name, frameIdx)
		}
		ln := int(binary.LittleEndian.Uint32(raw[pos : pos+4]))
		sum := binary.LittleEndian.Uint32(raw[pos+4 : pos+8])
		if ln > maxFramePayload {
			return txns, fmt.Errorf("seglog: %s: frame %d: absurd payload length %d", name, frameIdx, ln)
		}
		pos += frameHeaderSize
		if len(raw)-pos < ln {
			return txns, fmt.Errorf("seglog: %s: frame %d: truncated payload", name, frameIdx)
		}
		payload := raw[pos : pos+ln]
		if crc32.Checksum(payload, crcTable) != sum {
			return txns, fmt.Errorf("seglog: %s: frame %d: CRC mismatch", name, frameIdx)
		}
		n, err := dec.DecodeAll(payload, fn)
		txns += n
		if err != nil {
			return txns, fmt.Errorf("seglog: %s: frame %d: %w", name, frameIdx, err)
		}
		pos += ln
	}
	return txns, nil
}

// segDB is a read-only txdb.DB view of one sealed segment. Every Scan
// re-reads the file (sealed segments are immutable, so the content cannot
// change under the reader).
type segDB struct {
	path string
	txns int
}

func (s *segDB) Count() int { return s.txns }

func (s *segDB) Scan(fn func(txdb.Transaction) error) error {
	n, err := scanSegmentFile(s.path, fn)
	if err != nil {
		return err
	}
	if n != s.txns {
		return fmt.Errorf("seglog: %s: scanned %d transactions, manifest says %d", s.path, n, s.txns)
	}
	return nil
}

// recovered is the result of recovering an active segment file.
type recovered struct {
	txs     []txdb.Transaction // decoded transactions (cloned)
	size    int64              // valid byte length after truncation
	crc     uint32             // running CRC over the valid bytes
	dropped int64              // torn-tail bytes discarded
	minTID  int64
	maxTID  int64
}

// recoverActiveBytes classifies an active segment's bytes into a valid
// prefix and (possibly) a torn tail. Only a tail that cannot contain a
// complete acknowledged frame may be dropped: a damaged frame strictly
// inside the file — acknowledged bytes — is an error, never a silent
// truncation.
func recoverActiveBytes(raw []byte, name string) (*recovered, error) {
	rec := &recovered{}
	hdr := segmentHeader()
	switch {
	case len(raw) == 0:
		// Fresh or just-created file killed before the header landed.
		return rec, nil
	case len(raw) < len(hdr):
		// Torn header write: nothing could have been acknowledged.
		rec.dropped = int64(len(raw))
		return rec, nil
	case string(raw[:len(hdr)]) != string(hdr):
		return nil, fmt.Errorf("seglog: %s: bad segment header", name)
	}
	var dec txdb.Decoder
	pos := len(hdr)
	for frameIdx := 0; pos < len(raw); frameIdx++ {
		rest := len(raw) - pos
		if rest < frameHeaderSize {
			break // torn frame header at the tail
		}
		ln := int(binary.LittleEndian.Uint32(raw[pos : pos+4]))
		sum := binary.LittleEndian.Uint32(raw[pos+4 : pos+8])
		end := pos + frameHeaderSize + ln
		if ln > maxFramePayload {
			// A torn append leaves a strict prefix of a valid frame; with the
			// full header present the length is authentic, so a bound above
			// what the writer ever produces is corruption, not tearing.
			return nil, fmt.Errorf("seglog: %s: frame %d: absurd payload length %d", name, frameIdx, ln)
		}
		if end > len(raw) {
			break // payload did not land completely: torn tail
		}
		payload := raw[pos+frameHeaderSize : end]
		if crc32.Checksum(payload, crcTable) != sum {
			if end == len(raw) {
				break // last frame, payload bytes torn
			}
			return nil, fmt.Errorf("seglog: %s: frame %d: CRC mismatch in acknowledged data", name, frameIdx)
		}
		// The frame is intact; decode failures past the CRC mean the writer
		// never produced these bytes — corruption, not tearing.
		nBefore := len(rec.txs)
		_, err := dec.DecodeAll(payload, func(tx txdb.Transaction) error {
			rec.txs = append(rec.txs, txdb.Transaction{TID: tx.TID, Items: tx.Items.Clone()})
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("seglog: %s: frame %d: %w", name, frameIdx, err)
		}
		if len(rec.txs) > nBefore && rec.minTID == 0 {
			rec.minTID = rec.txs[nBefore].TID
		}
		pos = end
	}
	rec.size = int64(pos)
	rec.crc = crc32.Checksum(raw[:pos], crcTable)
	rec.dropped += int64(len(raw) - pos)
	if len(rec.txs) > 0 {
		rec.maxTID = rec.txs[len(rec.txs)-1].TID
	}
	return rec, nil
}

// verifySegment fully reads a sealed segment and checks it against its
// manifest entry (size, CRC, transaction count, TID range).
func verifySegment(dir string, e SegmentEntry) error {
	path := segmentPath(dir, e.ID)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if int64(len(raw)) != e.Bytes {
		return fmt.Errorf("seglog: %s: %d bytes on disk, manifest says %d", path, len(raw), e.Bytes)
	}
	if sum := crc32.Checksum(raw, crcTable); sum != e.CRC {
		return fmt.Errorf("seglog: %s: file CRC %08x, manifest says %08x", path, sum, e.CRC)
	}
	n, err := scanSegmentBytes(raw, path, func(txdb.Transaction) error { return nil })
	if err != nil {
		return err
	}
	if n != e.Txns {
		return fmt.Errorf("seglog: %s: %d transactions, manifest says %d", path, n, e.Txns)
	}
	return nil
}

// statSegment is the cheap open-time check: existence and size.
func statSegment(dir string, e SegmentEntry) error {
	path := segmentPath(dir, e.ID)
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() != e.Bytes {
		return fmt.Errorf("seglog: %s: %d bytes on disk, manifest says %d", path, fi.Size(), e.Bytes)
	}
	return nil
}
