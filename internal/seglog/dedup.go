package seglog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"negmine/internal/atomicio"
)

// The dedup window makes keyed appends exactly-once across crashes. Every
// fresh (key, seq) is journaled to dedup.log — reserve record, fsync —
// *before* its data frame is appended, and the in-memory entry is committed
// only after the data is durable. Recovery replays the journal and drops any
// reservation whose TID range did not survive into the log (a crash between
// reserve and append), so journal and log can never disagree about whether a
// batch happened. A failed (not crashed) append cancels its reservation with
// a second journal record; if even the cancel cannot be made durable the log
// marks itself broken rather than risk a TID range being claimed twice.
//
// The window is bounded: entries beyond Options.DedupWindow are evicted
// FIFO in memory, and the journal is compacted (rewritten with only live
// entries) once it accumulates several windows' worth of records.

// dedupLogName is the journal file inside a log directory.
const dedupLogName = "dedup.log"

// dedupEntry mirrors DedupEntry; the unexported form is what the journal
// and window store.
type dedupEntry struct {
	Key   string `json:"key"`
	Seq   uint64 `json:"seq"`
	First int64  `json:"first"`
	Last  int64  `json:"last"`
	Txns  int    `json:"txns"`
}

// dedupRecord is one journal frame's payload.
type dedupRecord struct {
	Op string `json:"op"` // "r" reserve, "c" cancel
	dedupEntry
}

type dedupState int

const (
	dedupFresh     dedupState = iota // unseen (key, seq): append it
	dedupDuplicate                   // retained entry: answer from the window
	dedupStale                       // seq at or below a retired one: reject
)

type keySeq struct {
	key string
	seq uint64
}

// dedupWindow is the bounded idempotency window plus its journal handle.
// All methods are called with the owning Log's mutex held.
type dedupWindow struct {
	path   string
	max    int
	noSync bool

	f       *os.File
	entries map[keySeq]dedupEntry
	maxSeq  map[string]uint64 // highest seq ever committed per key
	fifo    []keySeq          // insertion order of live entries
	frames  int               // journal frames since the last compaction
}

// openDedupWindow replays (and compacts) dir's dedup journal. Reservations
// whose TID range reaches at or past nextTID describe batches that did not
// survive the crash and are dropped.
func openDedupWindow(dir string, max int, nextTID int64, noSync bool) (*dedupWindow, error) {
	w := &dedupWindow{
		path:    filepath.Join(dir, dedupLogName),
		max:     max,
		noSync:  noSync,
		entries: map[keySeq]dedupEntry{},
		maxSeq:  map[string]uint64{},
	}
	raw, err := os.ReadFile(w.path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	recs, err := parseDedupJournal(raw, w.path)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		ks := keySeq{r.Key, r.Seq}
		switch r.Op {
		case "r":
			if r.Last >= nextTID {
				continue // reserved, but the data append never became durable
			}
			w.insert(r.dedupEntry)
		case "c":
			if _, ok := w.entries[ks]; ok {
				delete(w.entries, ks)
				for i, f := range w.fifo {
					if f == ks {
						w.fifo = append(w.fifo[:i], w.fifo[i+1:]...)
						break
					}
				}
			}
		default:
			return nil, fmt.Errorf("seglog: %s: unknown dedup op %q", w.path, r.Op)
		}
	}
	// Start from a compact journal so recovery cost stays proportional to
	// the window, not to history.
	if err := w.compact(); err != nil {
		return nil, err
	}
	return w, nil
}

// parseDedupJournal decodes the journal's frames, tolerating a torn tail
// (the only damage a crash can produce) and rejecting interior corruption.
func parseDedupJournal(raw []byte, name string) ([]dedupRecord, error) {
	var recs []dedupRecord
	off := 0
	for off < len(raw) {
		rest := raw[off:]
		if len(rest) < frameHeaderSize {
			break // torn frame header at EOF
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		if n > maxFramePayload {
			if off+frameHeaderSize+n >= len(raw) {
				break // torn length bytes at EOF
			}
			return nil, fmt.Errorf("seglog: %s: absurd dedup frame length %d at offset %d", name, n, off)
		}
		if len(rest) < frameHeaderSize+n {
			break // torn payload at EOF
		}
		payload := rest[frameHeaderSize : frameHeaderSize+n]
		want := binary.LittleEndian.Uint32(rest[4:8])
		if crc32.Checksum(payload, crcTable) != want {
			if off+frameHeaderSize+n == len(raw) {
				break // garbled final frame: torn mid-sector
			}
			return nil, fmt.Errorf("seglog: %s: dedup frame CRC mismatch at offset %d", name, off)
		}
		var r dedupRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return nil, fmt.Errorf("seglog: %s: dedup frame at offset %d: %w", name, off, err)
		}
		recs = append(recs, r)
		off += frameHeaderSize + n
	}
	return recs, nil
}

// insert registers a committed entry in memory, evicting FIFO past the
// bound. Journal writes are the caller's business.
func (w *dedupWindow) insert(e dedupEntry) {
	ks := keySeq{e.Key, e.Seq}
	if _, ok := w.entries[ks]; !ok {
		w.fifo = append(w.fifo, ks)
	}
	w.entries[ks] = e
	if e.Seq > w.maxSeq[e.Key] {
		w.maxSeq[e.Key] = e.Seq
	}
	for len(w.fifo) > w.max {
		old := w.fifo[0]
		w.fifo = w.fifo[1:]
		delete(w.entries, old)
		// maxSeq survives eviction on purpose: a retry older than the whole
		// retained window is rejected as stale, not silently re-applied.
	}
}

// lookup classifies a (key, seq) against the window.
func (w *dedupWindow) lookup(key string, seq uint64) (dedupEntry, dedupState) {
	ks := keySeq{key, seq}
	if e, ok := w.entries[ks]; ok {
		return e, dedupDuplicate
	}
	if maxSeq, ok := w.maxSeq[key]; ok && seq <= maxSeq {
		return dedupEntry{}, dedupStale
	}
	return dedupEntry{}, dedupFresh
}

// reserve durably journals an entry before its data append.
func (w *dedupWindow) reserve(e dedupEntry) error {
	return w.appendRecord(dedupRecord{Op: "r", dedupEntry: e})
}

// cancel durably journals that a reservation's append failed.
func (w *dedupWindow) cancel(key string, seq uint64) error {
	return w.appendRecord(dedupRecord{Op: "c", dedupEntry: dedupEntry{Key: key, Seq: seq}})
}

// commit registers a reserved entry whose data append became durable, and
// compacts the journal when it has outgrown the window severalfold.
func (w *dedupWindow) commit(e dedupEntry) {
	w.insert(e)
	if w.frames > 4*w.max {
		// Best-effort: a failed compaction keeps the (larger, still correct)
		// journal; the next commit retries.
		_ = w.compact()
	}
}

func (w *dedupWindow) appendRecord(r dedupRecord) error {
	if w.f == nil {
		f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		w.f = f
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(frame(payload)); err != nil {
		return err
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	w.frames++
	return nil
}

// compact atomically rewrites the journal with only the live entries.
func (w *dedupWindow) compact() error {
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	err := atomicio.WriteFile(w.path, func(out io.Writer) error {
		for _, ks := range w.fifo {
			payload, err := json.Marshal(dedupRecord{Op: "r", dedupEntry: w.entries[ks]})
			if err != nil {
				return err
			}
			if _, err := out.Write(frame(payload)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	w.frames = len(w.fifo)
	return nil
}

// ordered returns the live entries in insertion order.
func (w *dedupWindow) ordered() []dedupEntry {
	out := make([]dedupEntry, 0, len(w.fifo))
	for _, ks := range w.fifo {
		out = append(out, w.entries[ks])
	}
	return out
}

func (w *dedupWindow) len() int { return len(w.fifo) }

func (w *dedupWindow) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
