package seglog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"negmine/internal/fault"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// mustPanic runs fn and asserts it panics with the fault package's message.
func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected an injected panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "killed") {
			panic(r) // a real bug, not the injection — re-raise
		}
	}()
	fn()
}

// reopen abandons a (possibly wedged) log and opens the directory fresh,
// which is what a restarted process does after a kill.
func reopen(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir, Options{VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// tids collects every TID in the log, asserting a clean scan.
func tids(t *testing.T, l *Log) []int64 {
	t.Helper()
	var got []int64
	if err := l.Scan(func(tx txdb.Transaction) error {
		got = append(got, tx.TID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func wantTIDs(t *testing.T, l *Log, want ...int64) {
	t.Helper()
	got := tids(t, l)
	if len(got) != len(want) {
		t.Fatalf("log holds TIDs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("log holds TIDs %v, want %v", got, want)
		}
	}
}

// TestChaosKilledMidAppend kills the process between the two halves of the
// frame write, leaving a genuinely torn frame on disk. The batch was never
// acknowledged, so losing it is correct; every previously acknowledged
// transaction must survive, and the log must accept appends again.
func TestChaosKilledMidAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(1, 2)}); err != nil {
		t.Fatal(err)
	}

	// Second evaluation of the point = the mid-write window.
	off := fault.Enable(PointAppend, fault.Panic("killed"), fault.OnHit(2))
	mustPanic(t, func() { l.Append([]item.Itemset{basket(3), basket(4, 5)}) })
	off()

	l2 := reopen(t, dir)
	if st := l2.Stats(); st.RecoveredDrop == 0 {
		t.Fatal("no torn bytes dropped — the kill window did not tear the frame")
	}
	wantTIDs(t, l2, 1)
	if first, last, err := l2.Append([]item.Itemset{basket(3), basket(4, 5)}); err != nil || first != 2 || last != 3 {
		t.Fatalf("retry after recovery: [%d, %d] err=%v", first, last, err)
	}
	wantTIDs(t, l2, 1, 2, 3)
}

// TestChaosAppendErrorIsAtomic injects a plain error (not a kill) at the
// mid-write point: Append must claw back the partial frame in-process so
// the very next append lands on a clean tail.
func TestChaosAppendErrorIsAtomic(t *testing.T) {
	l, _ := openTest(t, Options{})
	if _, _, err := l.Append([]item.Itemset{basket(1)}); err != nil {
		t.Fatal(err)
	}
	off := fault.Enable(PointAppend, fault.Error("disk gone"), fault.OnHit(2))
	if _, _, err := l.Append([]item.Itemset{basket(2)}); err == nil {
		t.Fatal("append swallowed the injected error")
	}
	off()
	if first, _, err := l.Append([]item.Itemset{basket(2)}); err != nil || first != 2 {
		t.Fatalf("append after in-process failure: first=%d err=%v", first, err)
	}
	wantTIDs(t, l, 1, 2)
}

// TestChaosKilledBeforeSealCommit kills the process after the segment file
// is fsynced but before the manifest swap. The segment stays active on
// recovery; nothing is lost and a later seal succeeds.
func TestChaosKilledBeforeSealCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]item.Itemset{basket(1), basket(2)}); err != nil {
		t.Fatal(err)
	}
	off := fault.Enable(PointSeal, fault.Panic("killed"), fault.OnHit(2))
	mustPanic(t, func() { l.Seal() })
	off()

	l2 := reopen(t, dir)
	wantTIDs(t, l2, 1, 2)
	if st := l2.Stats(); st.Segments != 0 || st.ActiveTxns != 2 {
		t.Fatalf("segment sealed despite the kill: %+v", st)
	}
	if err := l2.Seal(); err != nil {
		t.Fatal(err)
	}
	if st := l2.Stats(); st.Segments != 1 || st.SealedTxns != 2 {
		t.Fatalf("re-issued seal: %+v", st)
	}
}

// TestChaosKilledMidCompaction kills the process after the merged segment
// file is written but before the manifest swap. Recovery must keep the
// original segments, reap the orphan merged file, and let a re-issued
// compaction succeed.
func TestChaosKilledMidCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, _, err := l.Append([]item.Itemset{basket(i)}); err != nil {
			t.Fatal(err)
		}
		if err := l.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	off := fault.Enable(PointCompact, fault.Panic("killed"), fault.OnHit(2))
	mustPanic(t, func() { l.Compact() })
	off()

	// The merged file exists as an orphan until reopen removes it.
	orphans, err := filepath.Glob(filepath.Join(dir, "seg-*.nmsl"))
	if err != nil {
		t.Fatal(err)
	}
	l2 := reopen(t, dir)
	after, err := filepath.Glob(filepath.Join(dir, "seg-*.nmsl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(orphans) {
		t.Fatalf("orphan merged segment not reaped: %d files before reopen, %d after", len(orphans), len(after))
	}
	wantTIDs(t, l2, 1, 2, 3)
	if st := l2.Stats(); st.Segments != 3 {
		t.Fatalf("manifest changed despite the kill: %+v", st)
	}
	if did, err := l2.Compact(); err != nil || !did {
		t.Fatalf("re-issued compaction: did=%v err=%v", did, err)
	}
	wantTIDs(t, l2, 1, 2, 3)
	if st := l2.Stats(); st.Segments != 1 {
		t.Fatalf("stats after re-issued compaction: %+v", st)
	}
}

// TestChaosKilledAfterSealCommit kills between the manifest swap and...
// nothing: the swap IS the commit point, so enabling the point on its
// first evaluation (entry) simply refuses the seal with everything intact.
func TestChaosSealEntryErrorLeavesLogUsable(t *testing.T) {
	l, _ := openTest(t, Options{})
	if _, _, err := l.Append([]item.Itemset{basket(1)}); err != nil {
		t.Fatal(err)
	}
	off := fault.Enable(PointSeal, fault.Error("refused"), fault.OnHit(1))
	if err := l.Seal(); err == nil {
		t.Fatal("seal swallowed the injected error")
	}
	off()
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	wantTIDs(t, l, 1)
}

// TestChaosTornWriteAcrossReopenCycle runs several kill/recover/append
// cycles and checks that exactly the acknowledged transactions survive
// every time.
func TestChaosTornWriteAcrossReopenCycle(t *testing.T) {
	dir := t.TempDir()
	var acked []int64
	l, err := Open(dir, Options{SealTxns: 3})
	if err != nil {
		t.Fatal(err)
	}
	next := 1
	for cycle := 0; cycle < 4; cycle++ {
		// A few acknowledged appends...
		for i := 0; i < 2; i++ {
			first, last, err := l.Append([]item.Itemset{basket(next), basket(next, next+1)})
			if err != nil {
				t.Fatal(err)
			}
			for tid := first; tid <= last; tid++ {
				acked = append(acked, tid)
			}
			next += 2
		}
		// ...then a kill mid-append.
		off := fault.Enable(PointAppend, fault.Panic("killed"), fault.OnHit(2))
		mustPanic(t, func() { l.Append([]item.Itemset{basket(next)}) })
		off()
		l = reopen(t, dir)
		wantTIDs(t, l, acked...)
	}
	if st := l.Stats(); st.Segments == 0 {
		t.Fatalf("auto-seal never fired across cycles: %+v", st)
	}
}

// TestChaosFaultSpecEnv exercises the NEGMINE_FAULTS wire-up for the new
// points, mirroring how the chaos CI job arms them.
func TestChaosFaultSpecEnv(t *testing.T) {
	if err := fault.ParseSpec(PointAppend + "=error(injected)"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable(PointAppend)
	l, _ := openTest(t, Options{})
	if _, _, err := l.Append([]item.Itemset{basket(1)}); err == nil {
		t.Fatal("spec-armed failpoint did not fire")
	}
	if _, err := os.Stat(l.Dir()); err != nil {
		t.Fatal(err)
	}
}
